#!/usr/bin/env bash
# Policy gate: every sanitizer-suppression entry must carry a reason.
#
# The ci/*-suppressions.txt files are the one place where the sanitizer
# jobs can be quietly weakened, so each non-comment entry must be
# followed (or trailed) by a `# justified:` comment explaining why the
# suppression is sound and why the underlying report is not a bug in
# src/. An entry without one fails CI.
#
# Usage: ci/check_suppressions.sh [suppressions-file...]
# With no arguments, checks every ci/*-suppressions.txt.
set -u

cd "$(dirname "$0")/.."

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
  for f in ci/*-suppressions.txt; do
    files+=("$f")
  done
fi

status=0
for f in "${files[@]}"; do
  if [ ! -f "$f" ]; then
    echo "check_suppressions: no such file: $f" >&2
    status=1
    continue
  fi
  # An entry is justified if the entry line itself, the line directly
  # above it, or the line directly below it contains `# justified:`.
  awk -v file="$f" '
    { lines[NR] = $0 }
    END {
      bad = 0
      for (i = 1; i <= NR; ++i) {
        line = lines[i]
        sub(/^[ \t]+/, "", line)
        if (line == "" || line ~ /^#/) continue
        ok = 0
        if (lines[i] ~ /# justified:/) ok = 1
        if (i > 1 && lines[i - 1] ~ /^[ \t]*# justified:/) ok = 1
        if (i < NR && lines[i + 1] ~ /^[ \t]*# justified:/) ok = 1
        if (!ok) {
          printf "%s:%d: suppression entry without a \x27# justified:\x27 comment: %s\n", file, i, line
          bad = 1
        }
      }
      exit bad
    }
  ' "$f" || status=1
done

if [ "$status" -eq 0 ]; then
  echo "check_suppressions: ${#files[@]} file(s) OK"
fi
exit "$status"
