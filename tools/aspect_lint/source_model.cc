#include "source_model.h"

namespace aspect_lint {
namespace {

// Keywords that look like `ident (` but never begin a function
// definition.
bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "noexcept" || s == "operator" ||
         s == "assert" || s == "static_assert" || s == "alignas";
}

bool IsPunct(const Token& t, const char* s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}

}  // namespace

SourceModel::SourceModel(LexedFile file) : file_(std::move(file)) {
  MatchBrackets();
  FindFunctions();
}

void SourceModel::MatchBrackets() {
  const auto& toks = file_.tokens;
  match_.assign(toks.size(), kNpos);
  std::vector<size_t> stack;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "(" || t == "[" || t == "{") {
      stack.push_back(i);
    } else if (t == ")" || t == "]" || t == "}") {
      // Pop to the nearest matching opener; mismatched pairs (which
      // only arise from angle-bracket confusion or truncated input)
      // are left unmatched rather than guessed at.
      const char open = (t == ")") ? '(' : (t == "]") ? '[' : '{';
      while (!stack.empty() && toks[stack.back()].text[0] != open) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        match_[stack.back()] = i;
        match_[i] = stack.back();
        stack.pop_back();
      }
    }
  }
}

size_t SourceModel::Match(size_t tok) const {
  return tok < match_.size() ? match_[tok] : kNpos;
}

void SourceModel::FindFunctions() {
  const auto& toks = file_.tokens;
  for (size_t i = 1; i < toks.size(); ++i) {
    if (!IsPunct(toks[i], "(")) continue;
    const Token& prev = toks[i - 1];
    if (prev.kind != Token::Kind::kIdent || IsControlKeyword(prev.text)) {
      continue;
    }
    const size_t close = Match(i);
    if (close == kNpos) continue;
    // Walk the declarator trailer after ')': cv/ref qualifiers,
    // noexcept(...), override/final, trailing return, ctor-init list.
    size_t j = close + 1;
    bool give_up = false;
    while (j < toks.size()) {
      const Token& t = toks[j];
      if (t.IsIdent("const") || t.IsIdent("override") ||
          t.IsIdent("final") || t.IsIdent("mutable") ||
          t.IsIdent("volatile") || IsPunct(t, "&") || IsPunct(t, "&&")) {
        ++j;
        continue;
      }
      if (t.IsIdent("noexcept")) {
        ++j;
        if (j < toks.size() && IsPunct(toks[j], "(")) {
          const size_t m = Match(j);
          if (m == kNpos) {
            give_up = true;
            break;
          }
          j = m + 1;
        }
        continue;
      }
      if (IsPunct(t, "->")) {
        // Trailing return type: advance over type-ish tokens.
        ++j;
        while (j < toks.size() &&
               (toks[j].kind == Token::Kind::kIdent ||
                IsPunct(toks[j], "::") || IsPunct(toks[j], "*") ||
                IsPunct(toks[j], "&") || IsPunct(toks[j], "<") ||
                IsPunct(toks[j], ">") || IsPunct(toks[j], ","))) {
          ++j;
        }
        continue;
      }
      if (IsPunct(t, ":")) {
        // Constructor initializer list: members followed by (...) or
        // {...} groups, comma-separated, until the body brace.
        ++j;
        while (j < toks.size() && !IsPunct(toks[j], "{")) {
          if (IsPunct(toks[j], "(")) {
            const size_t m = Match(j);
            if (m == kNpos) break;
            j = m + 1;
            // A brace group right after ')' would be the body only if
            // no comma follows — handled by the loop condition on the
            // next init entry's tokens.
            if (j < toks.size() && IsPunct(toks[j], ",")) ++j;
            // After the last (...) initializer the next '{' is the
            // body; the loop exits on it.
          } else if (IsPunct(toks[j], "{")) {
            break;
          } else {
            // Member name, '::', template args of a base class, or a
            // brace-init `member{...}` — the brace case needs a peek.
            if (toks[j].kind == Token::Kind::kIdent && j + 1 < toks.size() &&
                IsPunct(toks[j + 1], "{")) {
              const size_t m = Match(j + 1);
              if (m == kNpos) break;
              j = m + 1;
              if (j < toks.size() && IsPunct(toks[j], ",")) ++j;
            } else {
              ++j;
            }
          }
        }
        continue;
      }
      break;
    }
    if (give_up || j >= toks.size() || !IsPunct(toks[j], "{")) continue;
    const size_t body_end = Match(j);
    if (body_end == kNpos) continue;

    FunctionDef fn;
    fn.params_begin = i;
    fn.params_end = close;
    fn.body_begin = j;
    fn.body_end = body_end;
    fn.line = prev.line;
    // Qualified name: walk back over `ident ::` pairs.
    size_t k = i - 1;
    fn.name = toks[k].text;
    while (k >= 2 && IsPunct(toks[k - 1], "::") &&
           toks[k - 2].kind == Token::Kind::kIdent) {
      fn.name = toks[k - 2].text + "::" + fn.name;
      k -= 2;
    }
    functions_.push_back(std::move(fn));
  }
}

size_t SourceModel::EnclosingFunction(size_t tok) const {
  size_t best = kNpos;
  size_t best_span = kNpos;
  for (size_t f = 0; f < functions_.size(); ++f) {
    const FunctionDef& fn = functions_[f];
    if (fn.body_begin < tok && tok < fn.body_end) {
      const size_t span = fn.body_end - fn.body_begin;
      if (span < best_span) {
        best = f;
        best_span = span;
      }
    }
  }
  return best;
}

std::vector<LambdaArg> SourceModel::LambdasPassedTo(
    const std::set<std::string>& callees) const {
  std::vector<LambdaArg> out;
  const auto& toks = file_.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        callees.count(toks[i].text) == 0 || !IsPunct(toks[i + 1], "(")) {
      continue;
    }
    const size_t close = Match(i + 1);
    if (close == kNpos) continue;
    for (size_t j = i + 2; j < close; ++j) {
      if (!IsPunct(toks[j], "[")) continue;
      const size_t capture_end = Match(j);
      if (capture_end == kNpos || capture_end >= close) continue;
      LambdaArg lam;
      lam.callee = toks[i].text;
      lam.capture_begin = j;
      lam.line = toks[j].line;
      size_t k = capture_end + 1;
      if (k < close && IsPunct(toks[k], "(")) {
        lam.params_begin = k;
        lam.params_end = Match(k);
        if (lam.params_end == kNpos) continue;
        k = lam.params_end + 1;
      }
      while (k < close &&
             (toks[k].IsIdent("mutable") || toks[k].IsIdent("noexcept"))) {
        ++k;
      }
      if (k < close && IsPunct(toks[k], "->")) {
        ++k;
        while (k < close && !IsPunct(toks[k], "{")) ++k;
      }
      if (k >= close || !IsPunct(toks[k], "{")) continue;
      lam.body_begin = k;
      lam.body_end = Match(k);
      if (lam.body_end == kNpos) continue;
      lam.enclosing_fn = EnclosingFunction(j);
      out.push_back(lam);
      j = lam.body_end;  // don't re-report nested lambdas separately
    }
  }
  return out;
}

bool SourceModel::RangeHasIdent(size_t begin, size_t end,
                                const char* ident) const {
  const auto& toks = file_.tokens;
  for (size_t i = begin; i <= end && i < toks.size(); ++i) {
    if (toks[i].IsIdent(ident)) return true;
  }
  return false;
}

}  // namespace aspect_lint
