// aspect_lint driver.
//
// Usage:
//   aspect_lint [--allowlist FILE] [--verify] FILE...
//
// Default mode prints diagnostics and exits 1 if any fired (0 when
// clean) — the CI contract. --verify compares produced diagnostics
// against `aspect-lint-expect:` annotations in the inputs and exits 2
// on any mismatch in either direction — the fixture contract, so a
// check that silently stops firing fails the build just as loudly as
// a false positive.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.h"
#include "lexer.h"
#include "source_model.h"

namespace aspect_lint {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: aspect_lint [--allowlist FILE] [--verify] FILE...\n"
               "checks:\n");
  for (const std::string& c : KnownChecks()) {
    std::fprintf(stderr, "  %s\n", c.c_str());
  }
  return 64;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

struct Expected {
  std::string file;
  int line;
  std::string check;

  bool operator<(const Expected& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return check < o.check;
  }
  bool operator==(const Expected& o) const {
    return file == o.file && line == o.line && check == o.check;
  }
};

int Run(int argc, char** argv) {
  bool verify = false;
  std::string allowlist_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      verify = true;
    } else if (arg == "--allowlist") {
      if (i + 1 >= argc) return Usage();
      allowlist_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "aspect_lint: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return Usage();

  Allowlist allowlist;
  const bool have_allowlist = !allowlist_path.empty();
  if (have_allowlist) {
    std::string content;
    if (!ReadFile(allowlist_path, &content)) {
      std::fprintf(stderr, "aspect_lint: cannot read allowlist '%s'\n",
                   allowlist_path.c_str());
      return 66;
    }
    allowlist = ParseAllowlist(allowlist_path, content);
  }

  std::vector<SourceModel> project;
  project.reserve(files.size());
  for (const std::string& path : files) {
    std::string content;
    if (!ReadFile(path, &content)) {
      std::fprintf(stderr, "aspect_lint: cannot read '%s'\n", path.c_str());
      return 66;
    }
    project.emplace_back(Lex(path, content));
  }

  const std::vector<Diagnostic> diags =
      RunChecks(project, have_allowlist ? &allowlist : nullptr);

  if (!verify) {
    for (const Diagnostic& d : diags) {
      std::fprintf(stderr, "%s:%d: error: [%s] %s\n", d.file.c_str(), d.line,
                   d.check.c_str(), d.message.c_str());
    }
    if (!diags.empty()) {
      std::fprintf(stderr, "aspect_lint: %zu diagnostic(s) in %zu file(s)\n",
                   diags.size(), files.size());
      return 1;
    }
    std::fprintf(stderr, "aspect_lint: %zu file(s) clean\n", files.size());
    return 0;
  }

  // --verify: expected-vs-actual, both directions.
  std::vector<Expected> expected;
  for (const SourceModel& model : project) {
    for (const auto& [line, check] : model.file().directives.expects) {
      if (KnownChecks().count(check) == 0) {
        std::fprintf(stderr, "%s:%d: error: unknown check '%s' in expect\n",
                     model.file().path.c_str(), line, check.c_str());
        return 2;
      }
      expected.push_back({model.file().path, line, check});
    }
  }
  if (have_allowlist) {
    for (const auto& [line, check] : allowlist.expects) {
      expected.push_back({allowlist_path, line, check});
    }
  }
  std::vector<Expected> actual;
  actual.reserve(diags.size());
  for (const Diagnostic& d : diags) {
    actual.push_back({d.file, d.line, d.check});
  }
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());

  int mismatches = 0;
  // Multiset difference in both directions.
  std::vector<Expected> missing, unexpected;
  std::set_difference(expected.begin(), expected.end(), actual.begin(),
                      actual.end(), std::back_inserter(missing));
  std::set_difference(actual.begin(), actual.end(), expected.begin(),
                      expected.end(), std::back_inserter(unexpected));
  for (const Expected& e : missing) {
    std::fprintf(stderr, "%s:%d: missing expected diagnostic [%s]\n",
                 e.file.c_str(), e.line, e.check.c_str());
    ++mismatches;
  }
  for (const Expected& e : unexpected) {
    std::fprintf(stderr, "%s:%d: unexpected diagnostic [%s]\n",
                 e.file.c_str(), e.line, e.check.c_str());
    ++mismatches;
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "aspect_lint: verify FAILED (%d mismatch(es))\n",
                 mismatches);
    return 2;
  }
  std::fprintf(stderr,
               "aspect_lint: verified %zu expected diagnostic(s) across "
               "%zu file(s)\n",
               expected.size(), files.size());
  return 0;
}

}  // namespace
}  // namespace aspect_lint

int main(int argc, char** argv) { return aspect_lint::Run(argc, argv); }
