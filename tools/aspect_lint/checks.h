// aspect_lint check families. Catalog and rationale: DESIGN.md §13.
#ifndef ASPECT_LINT_CHECKS_H_
#define ASPECT_LINT_CHECKS_H_

#include <set>
#include <string>
#include <vector>

#include "source_model.h"

namespace aspect_lint {

struct Diagnostic {
  std::string file;
  int line;
  std::string check;
  std::string message;
};

// One entry of the probe allowlist: a qualified public member of
// Column/Table that is allowed to touch row/cell storage without a
// probe sink (capacity-only or metadata-only accessors).
struct AllowlistEntry {
  std::string name;  // e.g. "Column::Reserve"
  int line;
};

struct Allowlist {
  std::string path;
  std::vector<AllowlistEntry> entries;
  // `# aspect-lint-expect: <check>` lines, for fixture allowlists.
  std::vector<std::pair<int, std::string>> expects;
};

// Allowlist format: one qualified name per line; `#` starts a comment.
Allowlist ParseAllowlist(const std::string& path, const std::string& content);

// Runs every check family over the whole project (cross-file: a member
// declared in a header may be defined in a .cc). Diagnostics already
// suppressed by `aspect-lint:` markers are not returned.
std::vector<Diagnostic> RunChecks(const std::vector<SourceModel>& project,
                                  const Allowlist* allowlist);

// All check names, for --help and directive validation.
const std::set<std::string>& KnownChecks();

}  // namespace aspect_lint

#endif  // ASPECT_LINT_CHECKS_H_
