#include "checks.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace aspect_lint {
namespace {

bool IsPunct(const Token& t, const char* s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// A marker on line L or L-1 suppresses a diagnostic at line L, so a
// directive comment may trail the statement or sit on its own line
// directly above it.
bool Suppressed(const SourceModel& model, int line, const std::string& check) {
  const auto& allows = model.file().directives.allows;
  for (const int l : {line, line - 1}) {
    auto it = allows.find(l);
    if (it != allows.end() && it->second.count(check)) return true;
  }
  return false;
}

void Emit(std::vector<Diagnostic>* diags, const SourceModel& model, int line,
          const std::string& check, std::string message) {
  if (Suppressed(model, line, check)) return;
  diags->push_back({model.file().path, line, check, std::move(message)});
}

std::string Format(const char* fmt, const std::string& a,
                   const std::string& b = std::string()) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, a.c_str(), b.c_str());
  return buf;
}

// ---------------------------------------------------------------------------
// Check family 1: determinism discipline.
//
// Deterministic contexts are (a) bodies of functions that take
// GenOptions — the generation entry points whose output must be
// bitwise thread-count-invariant — and (b) shard callbacks passed to
// sharding::RunShards / GenerateRowsSharded. Inside them:
//   determinism-banned-call   wall-clock / global-generator draws
//   determinism-hwconc-partition  thread-count queries (also flagged
//     anywhere a function mixes PartitionRows with a thread-count
//     query — partition grain must never depend on machine width)
//   determinism-unforked-rng  a parent Rng captured from the enclosing
//     scope used for anything but an immediate .Fork(...)
// ---------------------------------------------------------------------------

struct DetContext {
  size_t begin;  // token range (exclusive of the braces themselves)
  size_t end;
  std::string what;
};

const char* const kShardCallees[] = {"RunShards", "GenerateRowsSharded"};

bool IsBannedSource(const std::string& s) {
  return s == "random_device" || s == "system_clock";
}

bool IsBannedCall(const std::string& s) {
  return s == "rand" || s == "srand" || s == "time" || s == "clock";
}

bool IsThreadCountQuery(const std::string& s) {
  return s == "hardware_concurrency" || s == "HardwareThreads";
}

void ScanDeterministicRange(const SourceModel& model, const DetContext& ctx,
                            std::vector<Diagnostic>* diags) {
  const auto& toks = model.tokens();
  for (size_t i = ctx.begin; i <= ctx.end && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if (IsBannedSource(t.text)) {
      Emit(diags, model, t.line, "determinism-banned-call",
           Format("'%s' in %s: draws from outside the forked Rng streams",
                  t.text, ctx.what));
      continue;
    }
    if (IsBannedCall(t.text) && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "(") &&
        !(i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->")))) {
      Emit(diags, model, t.line, "determinism-banned-call",
           Format("'%s()' in %s: wall-clock/global state breaks replay",
                  t.text, ctx.what));
      continue;
    }
    if (IsThreadCountQuery(t.text)) {
      Emit(diags, model, t.line, "determinism-hwconc-partition",
           Format("'%s' in %s: thread count may size pools, never shape "
                  "deterministic output",
                  t.text, ctx.what));
    }
  }
}

// Collects names declared with type Rng (params or locals) in
// [begin, end], skipping [skip_begin, skip_end].
std::set<std::string> RngNamesIn(const SourceModel& model, size_t begin,
                                 size_t end, size_t skip_begin,
                                 size_t skip_end) {
  std::set<std::string> names;
  const auto& toks = model.tokens();
  for (size_t i = begin; i <= end && i < toks.size(); ++i) {
    if (skip_begin != kNpos && i >= skip_begin && i <= skip_end) {
      i = skip_end;
      continue;
    }
    if (!toks[i].IsIdent("Rng")) continue;
    size_t j = i + 1;
    while (j <= end && (IsPunct(toks[j], "&") || IsPunct(toks[j], "*") ||
                        toks[j].IsIdent("const"))) {
      ++j;
    }
    if (j <= end && toks[j].kind == Token::Kind::kIdent) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

void CheckDeterminism(const SourceModel& model,
                      std::vector<Diagnostic>* diags) {
  const auto& toks = model.tokens();
  const auto& fns = model.functions();

  std::vector<DetContext> contexts;
  for (const FunctionDef& fn : fns) {
    if (model.RangeHasIdent(fn.params_begin, fn.params_end, "GenOptions")) {
      contexts.push_back({fn.body_begin + 1, fn.body_end - 1,
                          Format("'%s' (takes GenOptions)", fn.name)});
    }
  }
  std::set<std::string> callees(std::begin(kShardCallees),
                                std::end(kShardCallees));
  const std::vector<LambdaArg> lambdas = model.LambdasPassedTo(callees);
  for (const LambdaArg& lam : lambdas) {
    contexts.push_back({lam.body_begin + 1, lam.body_end - 1,
                        Format("shard callback passed to %s", lam.callee)});
  }
  for (const DetContext& ctx : contexts) {
    ScanDeterministicRange(model, ctx, diags);
  }

  // Unforked parent Rng inside a shard callback.
  for (const LambdaArg& lam : lambdas) {
    if (lam.enclosing_fn == kNpos) continue;
    const FunctionDef& fn = fns[lam.enclosing_fn];
    std::set<std::string> outer = RngNamesIn(
        model, fn.params_begin, fn.body_end, lam.capture_begin, lam.body_end);
    if (outer.empty()) continue;
    std::set<std::string> shadowed;
    if (lam.params_begin != kNpos) {
      for (const std::string& s :
           RngNamesIn(model, lam.params_begin, lam.params_end, kNpos, kNpos)) {
        shadowed.insert(s);
      }
    }
    for (const std::string& s : RngNamesIn(model, lam.body_begin + 1,
                                           lam.body_end - 1, kNpos, kNpos)) {
      shadowed.insert(s);
    }
    for (size_t i = lam.body_begin + 1; i < lam.body_end; ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdent || outer.count(t.text) == 0 ||
          shadowed.count(t.text) != 0) {
        continue;
      }
      const bool forked =
          i + 2 < toks.size() &&
          (IsPunct(toks[i + 1], ".") || IsPunct(toks[i + 1], "->")) &&
          toks[i + 2].IsIdent("Fork");
      if (!forked) {
        Emit(diags, model, t.line, "determinism-unforked-rng",
             Format("parent Rng '%s' used inside a shard callback without "
                    "an immediate .Fork(label): shard draws must come from "
                    "a per-shard stream",
                    t.text));
      }
    }
  }

  // Partition grain shaped by machine width, anywhere.
  for (const FunctionDef& fn : fns) {
    if (!model.RangeHasIdent(fn.body_begin, fn.body_end, "PartitionRows")) {
      continue;
    }
    for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (toks[i].kind == Token::Kind::kIdent &&
          IsThreadCountQuery(toks[i].text)) {
        Emit(diags, model, toks[i].line, "determinism-hwconc-partition",
             Format("'%s' and PartitionRows in '%s': shard boundaries must "
                    "not depend on hardware concurrency",
                    toks[i].text, fn.name));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check family 2: probe coverage.
//
// Every public member of Column/Table whose body touches row/cell
// storage must report through the probe sinks (src/analysis/probe.h),
// or appear in the allowlist with a reason. Allowlist entries that no
// longer name a public member are flagged stale.
// ---------------------------------------------------------------------------

const char* const kStorageMembers[] = {"ints_",    "doubles_",  "strings_",
                                       "state_",   "live_",     "num_live_",
                                       "columns_", "cols_"};
const char* const kProbeSinks[] = {"ProbeRead", "ProbeWrite", "ProbeInstalled"};

struct MemberBody {
  size_t model;  // index into project
  std::string qualified;
  size_t begin;  // body token range
  size_t end;
  int line;      // definition line
};

bool RangeHasAny(const SourceModel& model, size_t begin, size_t end,
                 const char* const* names, size_t count) {
  for (size_t k = 0; k < count; ++k) {
    if (model.RangeHasIdent(begin, end, names[k])) return true;
  }
  return false;
}

void CheckProbes(const std::vector<SourceModel>& project,
                 const Allowlist* allowlist,
                 std::vector<Diagnostic>* diags) {
  std::set<std::string> public_members;  // "Column::Get"
  std::vector<MemberBody> bodies;

  // Pass 1: class bodies — collect public member names and inline
  // bodies.
  for (size_t m = 0; m < project.size(); ++m) {
    const SourceModel& model = project[m];
    const auto& toks = model.tokens();
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!toks[i].IsIdent("class") ||
          toks[i + 1].kind != Token::Kind::kIdent) {
        continue;
      }
      const std::string cls = toks[i + 1].text;
      if (cls != "Column" && cls != "Table") continue;
      // Skip to the class body brace; a ';' first means forward decl.
      size_t j = i + 2;
      while (j < toks.size() && !IsPunct(toks[j], "{") &&
             !IsPunct(toks[j], ";")) {
        ++j;
      }
      if (j >= toks.size() || !IsPunct(toks[j], "{")) continue;
      const size_t body_end = model.Match(j);
      if (body_end == kNpos) continue;
      bool is_public = false;  // class default
      for (size_t k = j + 1; k < body_end; ++k) {
        const Token& t = toks[k];
        if ((t.IsIdent("public") || t.IsIdent("private") ||
             t.IsIdent("protected")) &&
            k + 1 < body_end && IsPunct(toks[k + 1], ":")) {
          is_public = t.text == "public";
          ++k;
          continue;
        }
        if (IsPunct(t, "{")) {
          // Nested struct/enum body or a default brace-initializer —
          // either way not a member declaration site.
          const size_t match = model.Match(k);
          if (match == kNpos || match > body_end) break;
          k = match;
          continue;
        }
        if (!is_public || t.kind != Token::Kind::kIdent ||
            k + 1 >= body_end || !IsPunct(toks[k + 1], "(")) {
          continue;
        }
        // `name (` at class level: a member function declaration,
        // unless it is the constructor, a call inside a default
        // initializer (`= f()`), or a macro invocation.
        if (t.text == cls || IsPunct(toks[k - 1], "~") ||
            IsPunct(toks[k - 1], "=") || IsPunct(toks[k - 1], "(") ||
            IsPunct(toks[k - 1], ",")) {
          continue;
        }
        const size_t close = model.Match(k + 1);
        if (close == kNpos || close > body_end) continue;
        public_members.insert(cls + "::" + t.text);
        // Inline body?
        size_t e = close + 1;
        while (e < body_end &&
               (toks[e].IsIdent("const") || toks[e].IsIdent("noexcept") ||
                toks[e].IsIdent("override") || toks[e].IsIdent("final") ||
                IsPunct(toks[e], "&") || IsPunct(toks[e], "&&"))) {
          ++e;
        }
        if (e < body_end && IsPunct(toks[e], "{")) {
          const size_t inline_end = model.Match(e);
          if (inline_end != kNpos && inline_end <= body_end) {
            bodies.push_back(
                {m, cls + "::" + t.text, e, inline_end, t.line});
            k = inline_end;
            continue;
          }
        }
        k = close;
      }
      i = body_end;
    }
  }

  // Pass 2: out-of-line definitions Column::X / Table::X anywhere in
  // the project.
  for (size_t m = 0; m < project.size(); ++m) {
    for (const FunctionDef& fn : project[m].functions()) {
      if (public_members.count(fn.name)) {
        bodies.push_back({m, fn.name, fn.body_begin, fn.body_end, fn.line});
      }
    }
  }

  std::set<std::string> allowlisted;
  if (allowlist != nullptr) {
    for (const AllowlistEntry& e : allowlist->entries) {
      allowlisted.insert(e.name);
    }
  }

  for (const MemberBody& b : bodies) {
    const SourceModel& model = project[b.model];
    const bool touches =
        RangeHasAny(model, b.begin, b.end, kStorageMembers,
                    sizeof(kStorageMembers) / sizeof(kStorageMembers[0]));
    const bool probes =
        RangeHasAny(model, b.begin, b.end, kProbeSinks,
                    sizeof(kProbeSinks) / sizeof(kProbeSinks[0]));
    if (touches && !probes && allowlisted.count(b.qualified) == 0) {
      Emit(diags, model, b.line, "probe-missing",
           Format("public accessor '%s' touches row/cell storage without "
                  "an access probe (ProbeRead/ProbeWrite) and is not "
                  "allowlisted",
                  b.qualified));
    }
  }

  if (allowlist != nullptr) {
    for (const AllowlistEntry& e : allowlist->entries) {
      if (public_members.count(e.name) == 0) {
        diags->push_back(
            {allowlist->path, e.line, "probe-allowlist-stale",
             Format("allowlist entry '%s' matches no public Column/Table "
                    "member — remove it",
                    e.name)});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check family 3: lease/write discipline.
//
// Semantic mutations of Table/Column must flow through
// Database::Apply/ApplyBatch (or undo/rebase internals) so write
// leases, the modification log, and undo stay coherent. Direct
// mutator calls elsewhere need an explicit
// `// aspect-lint: framework-write` marker.
// ---------------------------------------------------------------------------

const char* const kMutators[] = {
    "Set",        "SetBroadcast", "SetInt",          "SetDouble",
    "Erase",      "Append",       "AppendRows",      "AppendBatch",
    "PopBack",    "CopyRowsFrom", "CopyColumnsFrom", "Delete",
    "Undelete",   "ResizeEmpty"};

bool IsMutator(const std::string& s) {
  for (const char* m : kMutators) {
    if (s == m) return true;
  }
  return false;
}

// Functions allowed to mutate directly: the lease-holding Database
// internals and the undo/rebase machinery.
bool IsFrameworkWriter(const std::string& fn) {
  static const std::set<std::string>* const kAllowed =
      new std::set<std::string>{
          "Database::Apply",     "Database::ApplyBatch",
          "Database::ApplyOne",  "Database::ApplyCellOp",
          "Database::Undo",      "Database::CloneAtoms",
          "Database::CopyContentFrom"};
  if (kAllowed->count(fn)) return true;
  return EndsWith(fn, "::Rebase") || EndsWith(fn, "UndoOnto");
}

// The storage classes' own translation units implement the mutators;
// the discipline applies to their callers.
bool IsStorageFile(const std::string& path) {
  return path.find("relational/column.") != std::string::npos ||
         path.find("relational/table.") != std::string::npos;
}

void CheckLeases(const SourceModel& model, std::vector<Diagnostic>* diags) {
  if (IsStorageFile(model.file().path)) return;
  const auto& toks = model.tokens();
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || !IsMutator(t.text) ||
        !IsPunct(toks[i + 1], "(")) {
      continue;
    }
    // Member-call form only: `expr.M(...)` / `expr->M(...)`. Static
    // factories like Modification::DeleteTuple(...) are descriptions
    // of writes, not writes.
    if (!IsPunct(toks[i - 1], ".") && !IsPunct(toks[i - 1], "->")) continue;
    const size_t fi = model.EnclosingFunction(i);
    if (fi != kNpos && IsFrameworkWriter(model.functions()[fi].name)) {
      continue;
    }
    Emit(diags, model, t.line, "lease-unmanaged-write",
         Format("direct '%s' mutation outside Database::Apply/ApplyBatch "
                "and the undo/rebase internals — route through the write "
                "lease, or mark `// aspect-lint: framework-write` with a "
                "justification",
                t.text));
  }
}

// ---------------------------------------------------------------------------
// Check family 4: vote-routing contract.
//
// A tool whose DeclaredScope narrows its footprint to a row range
// (AddReadRange / AddWriteRange) licenses the vote router to skip its
// ValidationPenalty for proposals outside that range. Skipping is
// sound only if the penalty really is zero out there — the
// zero-penalty-outside-scope contract, enforced in every shipped tool
// by an InRange guard on the penalty paths. A penalty may guard
// through a same-class helper (NullCountTool prices via DeltaOf,
// DomainBoundsTool via AccumulateDeltas), so a method counts as
// guarded when its body mentions InRange or any guarded same-class
// method, transitively. Flag a ranged class whose defined penalty
// overrides are not all guarded — or that defines none in this file,
// leaving no visible guard at all; a tool that upholds the contract
// some other way vouches with `// aspect-lint:
// allow(routing-contract)` on the DeclaredScope definition.
// ---------------------------------------------------------------------------

void CheckRoutingContract(const SourceModel& model,
                          std::vector<Diagnostic>* diags) {
  struct Body {
    size_t begin;
    size_t end;
  };
  struct ToolInfo {
    int scope_line = 0;   // line of the ranged DeclaredScope definition
    bool ranged = false;  // DeclaredScope body declares a row range
    std::map<std::string, Body> methods;
  };
  std::map<std::string, ToolInfo> tools;
  for (const FunctionDef& fn : model.functions()) {
    const size_t sep = fn.name.rfind("::");
    if (sep == std::string::npos) continue;
    const std::string cls = fn.name.substr(0, sep);
    const std::string method = fn.name.substr(sep + 2);
    ToolInfo& info = tools[cls];
    info.methods[method] = {fn.body_begin, fn.body_end};
    if (method == "DeclaredScope" &&
        (model.RangeHasIdent(fn.body_begin, fn.body_end, "AddReadRange") ||
         model.RangeHasIdent(fn.body_begin, fn.body_end, "AddWriteRange"))) {
      info.ranged = true;
      info.scope_line = fn.line;
    }
  }
  for (const auto& [cls, info] : tools) {
    if (!info.ranged) continue;
    // Fixed point: guarded = mentions InRange, or mentions a guarded
    // same-class method.
    std::set<std::string> guarded;
    bool grew = true;
    while (grew) {
      grew = false;
      for (const auto& [name, body] : info.methods) {
        if (guarded.count(name)) continue;
        bool ok = model.RangeHasIdent(body.begin, body.end, "InRange");
        for (auto it = guarded.begin(); !ok && it != guarded.end(); ++it) {
          ok = model.RangeHasIdent(body.begin, body.end, it->c_str());
        }
        if (ok) {
          guarded.insert(name);
          grew = true;
        }
      }
    }
    bool defined = false, all_guarded = true;
    for (const char* penalty : {"ValidationPenalty", "ValidationPenaltyBatch"}) {
      if (!info.methods.count(penalty)) continue;
      defined = true;
      all_guarded = all_guarded && guarded.count(penalty) > 0;
    }
    if (defined && all_guarded) continue;
    Emit(diags, model, info.scope_line, "routing-contract",
         Format("'%s' declares a row-range scope but its ValidationPenalty/"
                "ValidationPenaltyBatch paths never consult InRange — routed "
                "voting would prune votes the tool may not return zero for; "
                "add the guard or mark `// aspect-lint: "
                "allow(routing-contract)` with a justification",
                cls));
  }
}

}  // namespace

Allowlist ParseAllowlist(const std::string& path, const std::string& content) {
  Allowlist out;
  out.path = path;
  int line = 0;
  size_t pos = 0;
  while (pos <= content.size()) {
    const size_t eol = content.find('\n', pos);
    std::string raw = content.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    ++line;
    pos = eol == std::string::npos ? content.size() + 1 : eol + 1;
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      static const std::string kExpectKey = "aspect-lint-expect:";
      const size_t ek = raw.find(kExpectKey, hash);
      if (ek != std::string::npos) {
        std::string name = raw.substr(ek + kExpectKey.size());
        const size_t b = name.find_first_not_of(" \t");
        const size_t e = name.find_last_not_of(" \t\r");
        if (b != std::string::npos) {
          out.expects.emplace_back(line, name.substr(b, e - b + 1));
        }
      }
      raw = raw.substr(0, hash);
    }
    const size_t b = raw.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const size_t e = raw.find_last_not_of(" \t\r");
    out.entries.push_back({raw.substr(b, e - b + 1), line});
  }
  return out;
}

const std::set<std::string>& KnownChecks() {
  static const std::set<std::string>* const kChecks = new std::set<std::string>{
      "determinism-banned-call", "determinism-unforked-rng",
      "determinism-hwconc-partition", "probe-missing",
      "probe-allowlist-stale", "lease-unmanaged-write",
      "routing-contract"};
  return *kChecks;
}

std::vector<Diagnostic> RunChecks(const std::vector<SourceModel>& project,
                                  const Allowlist* allowlist) {
  std::vector<Diagnostic> diags;
  for (const SourceModel& model : project) {
    CheckDeterminism(model, &diags);
    CheckLeases(model, &diags);
    CheckRoutingContract(model, &diags);
  }
  CheckProbes(project, allowlist, &diags);
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.check != b.check) return a.check < b.check;
              return a.message < b.message;
            });
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return a.file == b.file && a.line == b.line &&
                                   a.check == b.check &&
                                   a.message == b.message;
                          }),
              diags.end());
  return diags;
}

}  // namespace aspect_lint
