#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace aspect_lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Splits "a, b , c" into trimmed names.
std::vector<std::string> SplitNames(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// Parses lint directives out of one comment's text.
void ParseDirectives(const std::string& comment, int line, Directives* dirs) {
  static const std::string kAllowKey = "aspect-lint:";
  static const std::string kExpectKey = "aspect-lint-expect:";
  size_t pos = comment.find(kExpectKey);
  if (pos != std::string::npos) {
    for (const std::string& name :
         SplitNames(comment.substr(pos + kExpectKey.size()))) {
      dirs->expects.emplace_back(line, name);
    }
    return;
  }
  pos = comment.find(kAllowKey);
  if (pos == std::string::npos) return;
  std::string rest = comment.substr(pos + kAllowKey.size());
  // Trim and normalize: either `framework-write` or `allow(a, b)`.
  size_t b = rest.find_first_not_of(" \t");
  if (b == std::string::npos) return;
  size_t e = rest.find_last_not_of(" \t\r");
  rest = rest.substr(b, e - b + 1);
  // `framework-write` may carry a trailing justification — that is
  // the expected idiom ("framework-write -- why this bypass is safe").
  static const std::string kFw = "framework-write";
  if (rest.rfind(kFw, 0) == 0 &&
      (rest.size() == kFw.size() || rest[kFw.size()] == ' ' ||
       rest[kFw.size()] == '\t' || rest[kFw.size()] == '-')) {
    dirs->allows[line].insert("lease-unmanaged-write");
    return;
  }
  if (rest.rfind("allow(", 0) == 0 && rest.back() == ')') {
    for (const std::string& name :
         SplitNames(rest.substr(6, rest.size() - 7))) {
      dirs->allows[line].insert(name);
    }
  }
}

}  // namespace

LexedFile Lex(const std::string& path, const std::string& content) {
  LexedFile out;
  out.path = path;
  int line = 1;
  size_t i = 0;
  const size_t n = content.size();
  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor line (with continuations); the checks are
    // macro-blind by design, so the whole line is dropped.
    if (c == '#' &&
        (out.tokens.empty() || out.tokens.back().line != line)) {
      while (i < n && content[i] != '\n') {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const size_t start = i + 2;
      while (i < n && content[i] != '\n') ++i;
      ParseDirectives(content.substr(start, i - start), line, &out.directives);
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const int start_line = line;
      const size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') ++line;
        ++i;
      }
      ParseDirectives(content.substr(start, i - start), start_line,
                      &out.directives);
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      // Raw strings would need delimiter tracking; the codebase does
      // not use them, so a plain escape-aware scan is enough.
      std::string text;
      ++i;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\' && i + 1 < n) {
          text.push_back(content[i + 1]);
          i += 2;
          continue;
        }
        if (content[i] == '\n') ++line;
        text.push_back(content[i]);
        ++i;
      }
      ++i;  // closing quote
      out.tokens.push_back({Token::Kind::kString, text, line});
      continue;
    }
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(content[i])) ++i;
      out.tokens.push_back(
          {Token::Kind::kIdent, content.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const size_t start = i;
      while (i < n && (IsIdentChar(content[i]) || content[i] == '.' ||
                       ((content[i] == '+' || content[i] == '-') &&
                        (content[i - 1] == 'e' || content[i - 1] == 'E')))) {
        ++i;
      }
      out.tokens.push_back(
          {Token::Kind::kNumber, content.substr(start, i - start), line});
      continue;
    }
    // Punctuation. `::` `->` `.*` `->*` become single tokens so the
    // checks can test "is this a member access" in one comparison.
    size_t len = 1;
    if (c == ':' && i + 1 < n && content[i + 1] == ':') {
      len = 2;
    } else if (c == '-' && i + 1 < n && content[i + 1] == '>') {
      len = (i + 2 < n && content[i + 2] == '*') ? 3 : 2;
    } else if (c == '.' && i + 1 < n && content[i + 1] == '*') {
      len = 2;
    }
    out.tokens.push_back(
        {Token::Kind::kPunct, content.substr(i, len), line});
    i += len;
  }
  return out;
}

}  // namespace aspect_lint
