// Fixture: banned nondeterminism sources inside a GenOptions function.
// Every line below marked with aspect-lint-expect must produce exactly
// that diagnostic; DrawFine must stay clean (no GenOptions parameter,
// so it is not a deterministic context).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

struct GenOptions {
  int threads = 1;
};

int DrawBad(const GenOptions& gen) {
  int x = std::rand();  // aspect-lint-expect: determinism-banned-call
  x += static_cast<int>(time(nullptr));  // aspect-lint-expect: determinism-banned-call
  std::random_device rd;  // aspect-lint-expect: determinism-banned-call
  auto now = std::chrono::system_clock::now();  // aspect-lint-expect: determinism-banned-call
  (void)gen;
  (void)rd;
  (void)now;
  return x;
}

int DrawFine(int threads) {
  // Outside a deterministic context the same calls are legal (e.g.
  // benchmark drivers timing themselves).
  return threads + static_cast<int>(std::rand());
}
