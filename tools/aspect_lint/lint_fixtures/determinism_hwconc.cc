// Fixture: hardware concurrency shaping partition boundaries. Thread
// count may size a pool, but the shard grain is a fixed constant
// (kGenShardRows) precisely so output never depends on machine width.
#include <cstdint>
#include <thread>
#include <vector>

struct RowShard {
  int64_t begin = 0;
  int64_t end = 0;
  uint64_t index = 0;
};

std::vector<RowShard> PartitionRows(int64_t rows, int64_t grain);

std::vector<RowShard> BadPartition(int64_t rows) {
  const int64_t grain =
      rows / std::thread::hardware_concurrency();  // aspect-lint-expect: determinism-hwconc-partition
  return PartitionRows(rows, grain);
}

unsigned FinePoolSizing() {
  // Sizing a worker pool from machine width is fine — it only changes
  // who does the work, never what is produced.
  return std::thread::hardware_concurrency();
}
