// Fixture: semantic Table mutations outside the lease-holding
// Database internals. Apply-family members may mutate; everyone else
// either routes through Database or carries an explicit
// `aspect-lint: framework-write` marker with a justification.
#include <cstdint>

struct Value {};

class Table {
 public:
  int64_t Append(const Value* row, int n);
  void Delete(int64_t tuple);
};

class Database {
 public:
  int64_t ApplyOne(Table* table, const Value* row, int n);
};

int64_t Database::ApplyOne(Table* table, const Value* row, int n) {
  return table->Append(row, n);  // clean: lease-holding internals
}

int64_t GrowDirectly(Table* table, const Value* row, int n) {
  return table->Append(row, n);  // aspect-lint-expect: lease-unmanaged-write
}

void ShrinkDirectly(Table* table, int64_t tuple) {
  table->Delete(tuple);  // aspect-lint-expect: lease-unmanaged-write
}

int64_t SeedTable(Table* table, const Value* row, int n) {
  // A marker suppresses on its own line and the next one, so it may
  // sit directly above the call with a justification attached.
  // aspect-lint: framework-write -- construction-time load, no lease yet
  return table->Append(row, n);
}
