// Fixture: the vote-routing contract. A DeclaredScope that narrows to
// a row range (AddReadRange / AddWriteRange) licenses the router to
// prune the tool's votes outside that range, which is sound only when
// the penalty paths guard with InRange. A ranged declaration whose
// penalties never consult InRange is a routing hazard unless the tool
// vouches with an allow marker.
#include <cstdint>

struct AccessScope {
  void AddWrite(int t, int c);
  void AddWriteRange(int t, int c, int64_t lo, int64_t hi);
  void AddReadRange(int t, int c, int64_t lo, int64_t hi);
};
struct Modification {};

// Clean: ranged declaration, InRange guard in the penalty body.
class GuardedTool {
 public:
  AccessScope DeclaredScope() const;
  double ValidationPenalty(const Modification& mod) const;
  bool InRange(int64_t tid) const;
};

AccessScope GuardedTool::DeclaredScope() const {
  AccessScope s;
  s.AddWriteRange(0, 0, 0, 7);
  return s;
}

double GuardedTool::ValidationPenalty(const Modification& mod) const {
  (void)mod;
  return InRange(0) ? 1.0 : 0.0;
}

// Clean: the guard lives in a same-class pricing helper the penalty
// delegates to (the NullCountTool::DeltaOf shape).
class HelperGuardedTool {
 public:
  AccessScope DeclaredScope() const;
  double ValidationPenalty(const Modification& mod) const;
  int64_t DeltaOf(const Modification& mod) const;
  bool InRange(int64_t tid) const;
};

AccessScope HelperGuardedTool::DeclaredScope() const {
  AccessScope s;
  s.AddWriteRange(0, 0, 0, 7);
  return s;
}

int64_t HelperGuardedTool::DeltaOf(const Modification& mod) const {
  (void)mod;
  return InRange(0) ? 1 : 0;
}

double HelperGuardedTool::ValidationPenalty(const Modification& mod) const {
  return static_cast<double>(DeltaOf(mod));
}

// Violation: range declared, no penalty body consults InRange.
class UnguardedTool {
 public:
  AccessScope DeclaredScope() const;
  double ValidationPenalty(const Modification& mod) const;
};

AccessScope UnguardedTool::DeclaredScope() const {  // aspect-lint-expect: routing-contract
  AccessScope s;
  s.AddReadRange(0, 0, 0, 7);
  return s;
}

double UnguardedTool::ValidationPenalty(const Modification& mod) const {
  (void)mod;
  return 1.0;
}

// Vouched: the contract is upheld some other way, and the marker on
// the DeclaredScope definition says so.
class VouchedTool {
 public:
  AccessScope DeclaredScope() const;
  double ValidationPenalty(const Modification& mod) const;
};

// Penalty is structurally zero off-range, no InRange call needed:
// aspect-lint: allow(routing-contract)
AccessScope VouchedTool::DeclaredScope() const {
  AccessScope s;
  s.AddWriteRange(0, 0, 8, 15);
  return s;
}

double VouchedTool::ValidationPenalty(const Modification& mod) const {
  (void)mod;
  return 0.0;
}

// Unranged scope never triggers the check, guard or no guard: a
// whole-column reader is consulted on every write to its column.
class WholeColumnTool {
 public:
  AccessScope DeclaredScope() const;
  double ValidationPenalty(const Modification& mod) const;
};

AccessScope WholeColumnTool::DeclaredScope() const {
  AccessScope s;
  s.AddWrite(0, 0);
  return s;
}

double WholeColumnTool::ValidationPenalty(const Modification& mod) const {
  (void)mod;
  return 1.0;
}
