// Fixture: the vote-routing contract. A DeclaredScope that narrows to
// a row range (AddReadRange / AddWriteRange) licenses the router to
// prune the tool's votes outside that range, which is sound only when
// the penalty paths guard with InRange. A ranged declaration whose
// penalties never consult InRange is a routing hazard unless the tool
// vouches with an allow marker.
#include <cstdint>

struct AccessScope {
  void AddWrite(int t, int c);
  void AddWriteRange(int t, int c, int64_t lo, int64_t hi);
  void AddReadRange(int t, int c, int64_t lo, int64_t hi);
};
struct Modification {};

// Clean: ranged declaration, InRange guard in the penalty body.
class GuardedTool {
 public:
  AccessScope DeclaredScope() const;
  double ValidationPenalty(const Modification& mod) const;
  bool InRange(int64_t tid) const;
};

AccessScope GuardedTool::DeclaredScope() const {
  AccessScope s;
  s.AddWriteRange(0, 0, 0, 7);
  return s;
}

double GuardedTool::ValidationPenalty(const Modification& mod) const {
  (void)mod;
  return InRange(0) ? 1.0 : 0.0;
}

// Clean: the guard lives in a same-class pricing helper the penalty
// delegates to (the NullCountTool::DeltaOf shape).
class HelperGuardedTool {
 public:
  AccessScope DeclaredScope() const;
  double ValidationPenalty(const Modification& mod) const;
  int64_t DeltaOf(const Modification& mod) const;
  bool InRange(int64_t tid) const;
};

AccessScope HelperGuardedTool::DeclaredScope() const {
  AccessScope s;
  s.AddWriteRange(0, 0, 0, 7);
  return s;
}

int64_t HelperGuardedTool::DeltaOf(const Modification& mod) const {
  (void)mod;
  return InRange(0) ? 1 : 0;
}

double HelperGuardedTool::ValidationPenalty(const Modification& mod) const {
  return static_cast<double>(DeltaOf(mod));
}

// Violation: range declared, no penalty body consults InRange.
class UnguardedTool {
 public:
  AccessScope DeclaredScope() const;
  double ValidationPenalty(const Modification& mod) const;
};

AccessScope UnguardedTool::DeclaredScope() const {  // aspect-lint-expect: routing-contract
  AccessScope s;
  s.AddReadRange(0, 0, 0, 7);
  return s;
}

double UnguardedTool::ValidationPenalty(const Modification& mod) const {
  (void)mod;
  return 1.0;
}

// Vouched: the contract is upheld some other way, and the marker on
// the DeclaredScope definition says so.
class VouchedTool {
 public:
  AccessScope DeclaredScope() const;
  double ValidationPenalty(const Modification& mod) const;
};

// Penalty is structurally zero off-range, no InRange call needed:
// aspect-lint: allow(routing-contract)
AccessScope VouchedTool::DeclaredScope() const {
  AccessScope s;
  s.AddWriteRange(0, 0, 8, 15);
  return s;
}

double VouchedTool::ValidationPenalty(const Modification& mod) const {
  (void)mod;
  return 0.0;
}

// Clean: the composite early-veto shape. The capped batch vote prices
// through a partial-sum helper that both applies the veto_cap bound
// and guards each member with InRange, so the batch override is
// guarded transitively (the fixed point walks batch -> helper ->
// InRange).
class CappedCompositeTool {
 public:
  AccessScope DeclaredScope() const;
  double ValidationPenalty(const Modification& mod) const;
  double ValidationPenaltyBatch(const Modification* mods, int n,
                                double veto_cap) const;
  double BoundedPartialSum(const Modification* mods, int n,
                           double veto_cap) const;
  bool InRange(int64_t tid) const;
};

AccessScope CappedCompositeTool::DeclaredScope() const {
  AccessScope s;
  s.AddReadRange(0, 0, 0, 7);
  return s;
}

double CappedCompositeTool::BoundedPartialSum(const Modification* mods,
                                              int n,
                                              double veto_cap) const {
  double total = 0;
  for (int i = 0; i < n; ++i) {
    (void)mods[i];
    total += InRange(i) ? 1.0 : 0.0;
    const double bound_left = static_cast<double>(n - 1 - i);
    if (total - bound_left > veto_cap) return total;  // provably above
  }
  return total;
}

double CappedCompositeTool::ValidationPenalty(const Modification& mod) const {
  (void)mod;
  return InRange(0) ? 1.0 : 0.0;
}

double CappedCompositeTool::ValidationPenaltyBatch(const Modification* mods,
                                                   int n,
                                                   double veto_cap) const {
  return BoundedPartialSum(mods, n, veto_cap);
}

// Violation: the single-vote path is guarded, but the capped batch
// override prices members with no InRange (directly or through a
// guarded helper) — routed voting prunes batch votes the tool may not
// return zero for.
class UnguardedBatchTool {
 public:
  AccessScope DeclaredScope() const;
  double ValidationPenalty(const Modification& mod) const;
  double ValidationPenaltyBatch(const Modification* mods, int n,
                                double veto_cap) const;
  bool InRange(int64_t tid) const;
};

AccessScope UnguardedBatchTool::DeclaredScope() const {  // aspect-lint-expect: routing-contract
  AccessScope s;
  s.AddWriteRange(0, 0, 0, 7);
  return s;
}

double UnguardedBatchTool::ValidationPenalty(const Modification& mod) const {
  (void)mod;
  return InRange(0) ? 1.0 : 0.0;
}

double UnguardedBatchTool::ValidationPenaltyBatch(const Modification* mods,
                                                  int n,
                                                  double veto_cap) const {
  (void)veto_cap;
  double total = 0;
  for (int i = 0; i < n; ++i) {
    (void)mods[i];
    total += 1.0;
  }
  return total;
}

// Unranged scope never triggers the check, guard or no guard: a
// whole-column reader is consulted on every write to its column.
class WholeColumnTool {
 public:
  AccessScope DeclaredScope() const;
  double ValidationPenalty(const Modification& mod) const;
};

AccessScope WholeColumnTool::DeclaredScope() const {
  AccessScope s;
  s.AddWrite(0, 0);
  return s;
}

double WholeColumnTool::ValidationPenalty(const Modification& mod) const {
  (void)mod;
  return 1.0;
}
