// Fixture: parent Rng streams leaking into shard callbacks. A shard
// callback may name a parent stream only to Fork it; any draw from the
// parent would make output depend on shard execution order.
#include <cstdint>
#include <vector>

struct Rng {
  explicit Rng(uint64_t seed);
  Rng Fork(uint64_t label) const;
  double UniformDouble();
};

struct RowShard {
  int64_t begin = 0;
  int64_t end = 0;
  uint64_t index = 0;
};

class ThreadPool;
void RunShards(const std::vector<RowShard>& shards, ThreadPool* pool,
               void (*fn)(const RowShard&));

void Generate(const std::vector<RowShard>& shards, ThreadPool* pool,
              const Rng& parent) {
  Rng scratch = parent.Fork(7);
  RunShards(shards, pool, [&](const RowShard& shard) {
    Rng rng = parent.Fork(shard.index);  // ok: forked at the boundary
    double a = rng.UniformDouble();
    double b = scratch.UniformDouble();  // aspect-lint-expect: determinism-unforked-rng
    double c = parent.UniformDouble();  // aspect-lint-expect: determinism-unforked-rng
    (void)a;
    (void)b;
    (void)c;
  });
}
