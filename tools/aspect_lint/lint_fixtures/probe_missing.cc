// Fixture: public Column accessors bypassing the probe sinks. The
// companion allowlist (probe_allowlist_fixture.txt) admits Reserve
// (capacity-only) and carries one deliberately stale entry.
#include <cstdint>
#include <vector>

void ProbeRead(int table, int col, int64_t row);

class Column {
 public:
  int64_t GetRaw(int64_t row) const { return ints_[static_cast<size_t>(row)]; }  // aspect-lint-expect: probe-missing

  int64_t GetProbed(int64_t row) const {
    ProbeRead(probe_table_, probe_col_, row);
    return ints_[static_cast<size_t>(row)];
  }

  void Reserve(int64_t n);  // allowlisted: capacity only

  int probe_table() const { return probe_table_; }

 private:
  std::vector<int64_t> ints_;
  std::vector<uint8_t> state_;
  int probe_table_ = -1;
  int probe_col_ = -1;
};

void Column::Reserve(int64_t n) {
  ints_.reserve(static_cast<size_t>(n));
  state_.reserve(static_cast<size_t>(n));
}
