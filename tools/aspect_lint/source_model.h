// aspect_lint: structural view over a lexed file.
//
// Recovers the two structures every check needs: function definitions
// (qualified name + parameter and body token ranges) and lambdas passed
// as arguments to named calls (the shard-callback sites). Recovery is
// heuristic — a construct the matcher cannot parse is silently skipped,
// which fails safe for a linter that runs green over a known codebase:
// missed structure can only hide a diagnostic in code that never
// compiles here anyway, not invent one.
#ifndef ASPECT_LINT_SOURCE_MODEL_H_
#define ASPECT_LINT_SOURCE_MODEL_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace aspect_lint {

constexpr size_t kNpos = static_cast<size_t>(-1);

struct FunctionDef {
  std::string name;     // qualified when out-of-line: "Database::Apply"
  size_t params_begin;  // token index of '('
  size_t params_end;    // token index of ')'
  size_t body_begin;    // token index of '{'
  size_t body_end;      // token index of '}'
  int line;
};

// A lambda literal appearing in the argument list of `callee(...)`.
struct LambdaArg {
  std::string callee;
  size_t capture_begin = kNpos;  // '[' of the capture list
  size_t params_begin = kNpos;   // '(' of the lambda, if present
  size_t params_end = kNpos;
  size_t body_begin = kNpos;    // '{'
  size_t body_end = kNpos;      // '}'
  size_t enclosing_fn = kNpos;  // index into functions(), if any
  int line = 0;
};

class SourceModel {
 public:
  explicit SourceModel(LexedFile file);

  const LexedFile& file() const { return file_; }
  const std::vector<Token>& tokens() const { return file_.tokens; }

  // Matching close bracket for an open bracket token (or the reverse);
  // kNpos when unbalanced.
  size_t Match(size_t tok) const;

  const std::vector<FunctionDef>& functions() const { return functions_; }

  // Innermost function whose body contains token `tok`, else kNpos.
  size_t EnclosingFunction(size_t tok) const;

  // Lambdas appearing directly in the argument lists of the named
  // callees.
  std::vector<LambdaArg> LambdasPassedTo(
      const std::set<std::string>& callees) const;

  // True if any token in [begin, end] is the given identifier.
  bool RangeHasIdent(size_t begin, size_t end, const char* ident) const;

 private:
  void MatchBrackets();
  void FindFunctions();

  LexedFile file_;
  std::vector<size_t> match_;
  std::vector<FunctionDef> functions_;
};

}  // namespace aspect_lint

#endif  // ASPECT_LINT_SOURCE_MODEL_H_
