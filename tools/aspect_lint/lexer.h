// aspect_lint: a tiny C++ token stream with lint-directive capture.
//
// The linter does not need a full C++ frontend: every contract it
// enforces (see DESIGN.md §13) is phrased over identifiers, bracket
// structure, and comments. The lexer produces exactly that — a token
// vector with line numbers, plus the `aspect-lint` directives found in
// comments. Preprocessor lines and comments are consumed here so the
// structural passes never see them.
#ifndef ASPECT_LINT_LEXER_H_
#define ASPECT_LINT_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace aspect_lint {

struct Token {
  enum class Kind {
    kIdent,   // identifiers and keywords
    kNumber,  // numeric literals (value irrelevant to the checks)
    kString,  // string/char literals, quotes stripped
    kPunct,   // operators; `::` `->` `.*` `->*` are single tokens
  };
  Kind kind;
  std::string text;
  int line;

  bool IsIdent(const char* s) const {
    return kind == Kind::kIdent && text == s;
  }
};

// Directives collected from comments, keyed by source line:
//   // aspect-lint: framework-write
//   // aspect-lint: allow(check-name[, check-name...])
//   // aspect-lint-expect: check-name[, check-name...]
// `framework-write` is shorthand for allow(lease-unmanaged-write).
// An allow on line L suppresses diagnostics on L and L+1, so a marker
// may sit on its own line directly above the flagged statement.
struct Directives {
  std::map<int, std::set<std::string>> allows;
  // (line, check) pairs a fixture expects the linter to produce.
  std::vector<std::pair<int, std::string>> expects;
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  Directives directives;
};

LexedFile Lex(const std::string& path, const std::string& content);

}  // namespace aspect_lint

#endif  // ASPECT_LINT_LEXER_H_
