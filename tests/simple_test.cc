// Tests for the simple property tools, including the Theorem 6-8
// same-column frequency-distribution results.
#include <gtest/gtest.h>

#include "aspect/coordinator.h"
#include "properties/simple.h"
#include "relational/integrity.h"
#include "workload/generator.h"

namespace aspect {
namespace {

Schema OneTableSchema() {
  Schema s;
  s.name = "one";
  s.tables.push_back({"T",
                      {{"v", ColumnType::kInt64, ""},
                       {"w", ColumnType::kInt64, ""}}});
  return s;
}

std::unique_ptr<Database> OneTableDb(const std::vector<int64_t>& vs) {
  auto db = Database::Create(OneTableSchema()).ValueOrAbort();
  for (const int64_t v : vs) {
    db->FindTable("T")->Append({Value(v), Value(v % 2)}).status().Check();
  }
  return db;
}

FrequencyDistribution Dist(std::initializer_list<std::pair<int64_t, int64_t>>
                               entries) {
  FrequencyDistribution d(1);
  for (const auto& [v, c] : entries) d.Add({v}, c);
  return d;
}

TEST(ColumnFreqTest, ExtractAndError) {
  auto db = OneTableDb({1, 1, 2, 3});
  ColumnFreqTool tool(db->schema(), "T", "v");
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  EXPECT_EQ(tool.Current().Count({1}), 2);
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  ASSERT_TRUE(
      tool.SetTargetDistribution(Dist({{1, 1}, {2, 2}, {3, 1}})).ok());
  // L1 = |2-1| + |1-2| = 2, population 4 -> 0.5.
  EXPECT_DOUBLE_EQ(tool.Error(), 0.5);
  tool.Unbind();
}

TEST(ColumnFreqTest, TweakReachesTargetExactly) {
  auto db = OneTableDb({1, 1, 1, 1, 2, 2, 3, 3});
  ColumnFreqTool tool(db->schema(), "T", "v");
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  ASSERT_TRUE(
      tool.SetTargetDistribution(Dist({{1, 2}, {2, 2}, {3, 2}, {9, 2}}))
          .ok());
  ASSERT_TRUE(tool.CheckTargetFeasible().ok());
  Rng rng(1);
  TweakContext ctx(db.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  EXPECT_EQ(tool.Current().Count({9}), 2);
  tool.Unbind();
}

TEST(ColumnFreqTest, RepairRescalesTotals) {
  auto db = OneTableDb({1, 1, 2, 3});  // population 4
  auto truth = OneTableDb({1, 1, 1, 1, 2, 2, 3, 3});  // population 8
  ColumnFreqTool tool(db->schema(), "T", "v");
  ASSERT_TRUE(tool.SetTargetFromDataset(*truth).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  EXPECT_FALSE(tool.CheckTargetFeasible().ok());
  ASSERT_TRUE(tool.RepairTarget().ok());
  EXPECT_TRUE(tool.CheckTargetFeasible().ok());
  EXPECT_EQ(tool.Target().TotalMass(), 4);
  tool.Unbind();
}

TEST(ColumnFreqTest, IncrementalTracking) {
  auto db = OneTableDb({1, 2, 3});
  ColumnFreqTool tool(db->schema(), "T", "v");
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues("T", {0}, {0},
                                                    {Value(int64_t{7})}))
                  .ok());
  EXPECT_EQ(tool.Current().Count({7}), 1);
  EXPECT_EQ(tool.Current().Count({1}), 0);
  TupleId nt;
  ASSERT_TRUE(db->Apply(Modification::InsertTuple(
                            "T", {Value(int64_t{7}), Value(int64_t{0})}),
                        &nt)
                  .ok());
  EXPECT_EQ(tool.Current().Count({7}), 2);
  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("T", nt)).ok());
  EXPECT_EQ(tool.Current().Count({7}), 1);
  tool.Unbind();
}

// Theorem 6: if pi_1..pi_{n+1} are frequency distributions of the same
// column and T_{n+1} runs last, the total error is
// sum_{i<=n} ||pi_i - pi_{n+1}||.
TEST(TheoremSixTest, SameColumnErrorFormula) {
  auto db = OneTableDb({1, 1, 1, 2, 2, 2});
  const FrequencyDistribution pi1 = Dist({{1, 4}, {2, 2}});
  const FrequencyDistribution pi2 = Dist({{1, 2}, {2, 4}});
  const FrequencyDistribution pi3 = Dist({{1, 3}, {2, 3}});

  Coordinator coordinator;
  auto t1 = std::make_unique<ColumnFreqTool>(db->schema(), "T", "v", "f1");
  auto t2 = std::make_unique<ColumnFreqTool>(db->schema(), "T", "v", "f2");
  auto t3 = std::make_unique<ColumnFreqTool>(db->schema(), "T", "v", "f3");
  t1->SetTargetDistribution(pi1).Check();
  t2->SetTargetDistribution(pi2).Check();
  t3->SetTargetDistribution(pi3).Check();
  ColumnFreqTool* p1 = t1.get();
  ColumnFreqTool* p2 = t2.get();
  ColumnFreqTool* p3 = t3.get();
  coordinator.AddTool(std::move(t1));
  coordinator.AddTool(std::move(t2));
  coordinator.AddTool(std::move(t3));

  CoordinatorOptions opts;
  opts.validate = false;  // raw sequential enforcement
  opts.repair_targets = false;
  auto report = coordinator.Run(db.get(), {0, 1, 2}, opts).ValueOrAbort();

  // The last tool's property holds exactly; the earlier two sit at
  // ||pi_i - pi_3|| / |T|.
  ASSERT_TRUE(p3->Bind(db.get()).ok());
  EXPECT_DOUBLE_EQ(p3->Error(), 0.0);
  p3->Unbind();
  ASSERT_TRUE(p1->Bind(db.get()).ok());
  EXPECT_DOUBLE_EQ(p1->Error(),
                   static_cast<double>(pi1.L1Distance(pi3)) / 6.0);
  p1->Unbind();
  ASSERT_TRUE(p2->Bind(db.get()).ok());
  EXPECT_DOUBLE_EQ(p2->Error(),
                   static_cast<double>(pi2.L1Distance(pi3)) / 6.0);
  p2->Unbind();
  EXPECT_EQ(report.steps.size(), 3u);
}

// Theorem 8: total error is minimized when the tool whose target has
// the minimum total difference to the others runs last.
TEST(TheoremEightTest, BestOrderPutsMedianLast) {
  const FrequencyDistribution pi1 = Dist({{1, 6}, {2, 0}});
  const FrequencyDistribution pi2 = Dist({{1, 0}, {2, 6}});
  const FrequencyDistribution pi3 = Dist({{1, 3}, {2, 3}});  // the median
  const std::vector<const FrequencyDistribution*> pis = {&pi1, &pi2, &pi3};

  double best_error = 1e18;
  int best_last = -1;
  for (int last = 0; last < 3; ++last) {
    auto db = OneTableDb({1, 1, 1, 2, 2, 2});
    Coordinator coordinator;
    std::vector<ColumnFreqTool*> raw;
    for (int i = 0; i < 3; ++i) {
      auto t = std::make_unique<ColumnFreqTool>(
          db->schema(), "T", "v", "f" + std::to_string(i));
      t->SetTargetDistribution(*pis[static_cast<size_t>(i)]).Check();
      raw.push_back(t.get());
      coordinator.AddTool(std::move(t));
    }
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
      if (i != last) order.push_back(i);
    }
    order.push_back(last);
    CoordinatorOptions opts;
    opts.validate = false;
    opts.repair_targets = false;
    coordinator.Run(db.get(), order, opts).ValueOrAbort();
    double total = 0;
    for (ColumnFreqTool* t : raw) {
      ASSERT_TRUE(t->Bind(db.get()).ok());
      total += t->Error();
      t->Unbind();
    }
    if (total < best_error) {
      best_error = total;
      best_last = last;
    }
  }
  EXPECT_EQ(best_last, 2);  // pi3 has the minimum total difference
}

TEST(NullCountTest, TweakAndTrack) {
  auto db = OneTableDb({1, 2, 3, 4, 5, 6});
  NullCountTool tool(db->schema(), "T", "w");
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  tool.SetTargetCount(3);
  ASSERT_TRUE(tool.CheckTargetFeasible().ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.5);
  Rng rng(2);
  TweakContext ctx(db.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  // And back down to zero nulls.
  tool.SetTargetCount(0);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  tool.Unbind();
}

TEST(NullCountTest, RejectsForeignKeyColumns) {
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 3).ValueOrAbort();
  auto db = gen.Materialize(1).ValueOrAbort();
  NullCountTool tool(db->schema(), "Album", "fk_Artist_0");
  EXPECT_FALSE(tool.Bind(db.get()).ok());
}

TEST(TupleCountTest, GrowsAndShrinksToTarget) {
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 14).ValueOrAbort();
  auto db = gen.Materialize(2).ValueOrAbort();
  TupleCountTool tool(db->schema());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  std::vector<int64_t> targets;
  for (int t = 0; t < db->num_tables(); ++t) {
    targets.push_back(db->table(t).NumTuples());
  }
  targets[0] += 5;   // grow User
  // Shrink a leaf activity table (nothing references it).
  const int fan = db->schema().TableIndex("User_Fan");
  targets[static_cast<size_t>(fan)] -= 5;
  ASSERT_TRUE(tool.SetTargetSizes(targets).ok());
  EXPECT_GT(tool.Error(), 0.0);
  Rng rng(4);
  TweakContext ctx(db.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  EXPECT_TRUE(CheckIntegrity(*db).ok());
  tool.Unbind();
}


TEST(DomainBoundsTest, ExtractClampAndPin) {
  auto db = OneTableDb({5, 9, 14, 3, 22});
  auto truth = OneTableDb({4, 6, 8, 10, 12});
  DomainBoundsTool tool(db->schema(), "T", "v");
  ASSERT_TRUE(tool.SetTargetFromDataset(*truth).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  ASSERT_TRUE(tool.CheckTargetFeasible().ok());
  // 3 and 22 are outside [4, 12]; neither bound value is present.
  EXPECT_GT(tool.Error(), 0.0);
  Rng rng(3);
  TweakContext ctx(db.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  // Every value in range, both bounds realized.
  const Table* t = db->FindTable("T");
  int64_t mn = 1000, mx = -1000;
  t->ForEachLive([&](TupleId tid) {
    mn = std::min(mn, t->column(0).GetInt(tid));
    mx = std::max(mx, t->column(0).GetInt(tid));
  });
  EXPECT_EQ(mn, 4);
  EXPECT_EQ(mx, 12);
  tool.Unbind();
}

TEST(DomainBoundsTest, PenaltyAndIncrementalTracking) {
  auto db = OneTableDb({4, 6, 12});
  DomainBoundsTool tool(db->schema(), "T", "v");
  tool.SetTargetBounds(4, 12);
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  // Moving the only minimum away is penalized.
  EXPECT_GT(tool.ValidationPenalty(Modification::ReplaceValues(
                "T", {0}, {0}, {Value(int64_t{6})})),
            0.0);
  // Moving an interior value stays free.
  EXPECT_DOUBLE_EQ(tool.ValidationPenalty(Modification::ReplaceValues(
                       "T", {1}, {0}, {Value(int64_t{7})})),
                   0.0);
  // Incremental tracking through the database.
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "T", {1}, {0}, {Value(int64_t{99})}))
                  .ok());
  EXPECT_GT(tool.Error(), 0.0);
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "T", {1}, {0}, {Value(int64_t{6})}))
                  .ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  tool.Unbind();
}

TEST(DomainBoundsTest, RejectsNonIntColumns) {
  Schema s;
  s.name = "x";
  s.tables.push_back({"T", {{"s", ColumnType::kString, ""}}});
  auto db = Database::Create(s).ValueOrAbort();
  DomainBoundsTool tool(s, "T", "s");
  EXPECT_FALSE(tool.Bind(db.get()).ok());
}

// Observation O3: conflicting overlapping properties. Two tools demand
// incompatible frequency distributions of the same column; ASPECT
// resolves the conflict in favour of the later tool ("ASPECT modifies
// the properties that are applied earlier").
TEST(ObservationO3Test, LaterToolWinsConflicts) {
  auto db = OneTableDb({1, 1, 1, 2, 2, 2});
  Coordinator coordinator;
  auto majority_ones =
      std::make_unique<ColumnFreqTool>(db->schema(), "T", "v", "men");
  auto majority_twos =
      std::make_unique<ColumnFreqTool>(db->schema(), "T", "v", "women");
  majority_ones->SetTargetDistribution(Dist({{1, 5}, {2, 1}})).Check();
  majority_twos->SetTargetDistribution(Dist({{1, 1}, {2, 5}})).Check();
  ColumnFreqTool* first = majority_ones.get();
  ColumnFreqTool* second = majority_twos.get();
  coordinator.AddTool(std::move(majority_ones));
  coordinator.AddTool(std::move(majority_twos));
  CoordinatorOptions opts;
  opts.repair_targets = false;
  coordinator.Run(db.get(), {0, 1}, opts).ValueOrAbort();
  ASSERT_TRUE(second->Bind(db.get()).ok());
  EXPECT_DOUBLE_EQ(second->Error(), 0.0);  // the later property holds
  second->Unbind();
  ASSERT_TRUE(first->Bind(db.get()).ok());
  EXPECT_GT(first->Error(), 0.0);  // the earlier one was sacrificed
  first->Unbind();
}

TEST(CoordinatorConvergenceTest, EpsilonStopsEarly) {
  auto db = OneTableDb({1, 1, 1, 2, 2, 2});
  Coordinator coordinator;
  auto t = std::make_unique<ColumnFreqTool>(db->schema(), "T", "v");
  t->SetTargetDistribution(Dist({{1, 2}, {2, 4}})).Check();
  coordinator.AddTool(std::move(t));
  CoordinatorOptions opts;
  opts.repair_targets = false;
  opts.iterations = 10;
  opts.converge_epsilon = 1e-9;
  auto report = coordinator.Run(db.get(), {0}, opts).ValueOrAbort();
  // One pass reaches zero; the epsilon check stops after pass 2 sees
  // no further improvement instead of running all 10.
  EXPECT_LE(report.steps.size(), 2u);
  EXPECT_DOUBLE_EQ(report.final_errors[0], 0.0);
}

}  // namespace
}  // namespace aspect
