// Tests for the extension modules: chronological snapshot extraction,
// the sampling scaler, and the schema text format.
#include <gtest/gtest.h>

#include "relational/integrity.h"
#include "relational/schema_text.h"
#include "scaler/sampling_scaler.h"
#include "workload/chronological.h"
#include "workload/generator.h"

namespace aspect {
namespace {

class ChronologicalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto gen = GenerateDataset(DoubanMusicLike(0.4), 47);
    ASSERT_TRUE(gen.ok());
    set_ = std::make_unique<SnapshotSet>(std::move(gen).ValueOrDie());
    full_ = set_->Materialize(6).ValueOrAbort();
  }
  std::unique_ptr<SnapshotSet> set_;
  std::unique_ptr<Database> full_;
};

TEST_F(ChronologicalTest, CutsProduceGrowingFkClosedSnapshots) {
  // Activity tables carry a "ts" column holding the snapshot index.
  const auto snaps =
      ChronologicalSnapshots(*full_, "ts", {2, 4, 6}).ValueOrAbort();
  ASSERT_EQ(snaps.size(), 3u);
  int64_t prev = 0;
  for (const auto& s : snaps) {
    EXPECT_TRUE(CheckIntegrity(*s).ok());
    EXPECT_GE(s->TotalTuples(), prev);
    prev = s->TotalTuples();
  }
  // The largest cut keeps every tuple.
  EXPECT_EQ(snaps[2]->TotalTuples(), full_->TotalTuples());
}

TEST_F(ChronologicalTest, TimestampFilterIsExact) {
  const auto snaps =
      ChronologicalSnapshots(*full_, "ts", {3}).ValueOrAbort();
  const Table* heard = snaps[0]->FindTable("Album_Heard");
  const int ts = heard->ColumnIndex("ts");
  heard->ForEachLive([&](TupleId t) {
    EXPECT_LE(heard->column(ts).GetInt(t), 3);
  });
  // Tables without a ts column (User) are copied whole.
  EXPECT_EQ(snaps[0]->FindTable("User")->NumTuples(),
            full_->FindTable("User")->NumTuples());
}

TEST_F(ChronologicalTest, UnknownColumnKeepsEverything) {
  const auto snaps =
      ChronologicalSnapshots(*full_, "no_such_col", {1}).ValueOrAbort();
  EXPECT_EQ(snaps[0]->TotalTuples(), full_->TotalTuples());
}


TEST_F(ChronologicalTest, UnsortedCutsHonoured) {
  const auto snaps =
      ChronologicalSnapshots(*full_, "ts", {5, 1, 3}).ValueOrAbort();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_GT(snaps[0]->TotalTuples(), snaps[2]->TotalTuples());
  EXPECT_GT(snaps[2]->TotalTuples(), snaps[1]->TotalTuples());
}

class SamplingScalerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto gen = GenerateDataset(DoubanMusicLike(0.4), 53);
    ASSERT_TRUE(gen.ok());
    set_ = std::make_unique<SnapshotSet>(std::move(gen).ValueOrDie());
    source_ = set_->Materialize(5).ValueOrAbort();
  }
  std::unique_ptr<SnapshotSet> set_;
  std::unique_ptr<Database> source_;
};

TEST_F(SamplingScalerTest, ScaleDownHitsExactSizesWithValidFks) {
  SamplingScaler scaler;
  const auto targets = set_->SnapshotSizes(2);
  auto scaled = scaler.Scale(*source_, targets, 3).ValueOrAbort();
  for (int t = 0; t < scaled->num_tables(); ++t) {
    EXPECT_EQ(scaled->table(t).NumTuples(), targets[static_cast<size_t>(t)])
        << scaled->table(t).name();
  }
  EXPECT_TRUE(CheckIntegrity(*scaled).ok());
}

TEST_F(SamplingScalerTest, SampledTuplesComeFromSource) {
  // Attribute columns of sampled tuples must exist in the source
  // domain (they are copied, not invented).
  SamplingScaler scaler;
  auto scaled =
      scaler.Scale(*source_, set_->SnapshotSizes(2), 5).ValueOrAbort();
  const Table* src_users = source_->FindTable("User");
  const Table* dst_users = scaled->FindTable("User");
  std::set<std::string> countries;
  src_users->ForEachLive([&](TupleId t) {
    countries.insert(src_users->column(0).GetString(t));
  });
  dst_users->ForEachLive([&](TupleId t) {
    EXPECT_TRUE(countries.count(dst_users->column(0).GetString(t)))
        << dst_users->column(0).GetString(t);
  });
}

TEST_F(SamplingScalerTest, ScaleUpToppedUpByCloning) {
  SamplingScaler scaler;
  const auto targets = set_->SnapshotSizes(6);
  auto scaled = scaler.Scale(*source_, targets, 7).ValueOrAbort();
  for (int t = 0; t < scaled->num_tables(); ++t) {
    EXPECT_EQ(scaled->table(t).NumTuples(), targets[static_cast<size_t>(t)]);
  }
  EXPECT_TRUE(CheckIntegrity(*scaled).ok());
}

TEST(SchemaTextTest, RoundTrip) {
  const Schema original = DoubanMusicLike(1.0).ToSchema();
  const std::string text = FormatSchemaText(original);
  const Schema parsed = ParseSchemaText(text).ValueOrAbort();
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.user_table, original.user_table);
  ASSERT_EQ(parsed.tables.size(), original.tables.size());
  for (size_t t = 0; t < parsed.tables.size(); ++t) {
    EXPECT_EQ(parsed.tables[t].name, original.tables[t].name);
    ASSERT_EQ(parsed.tables[t].columns.size(),
              original.tables[t].columns.size());
    for (size_t c = 0; c < parsed.tables[t].columns.size(); ++c) {
      EXPECT_EQ(parsed.tables[t].columns[c].name,
                original.tables[t].columns[c].name);
      EXPECT_EQ(parsed.tables[t].columns[c].type,
                original.tables[t].columns[c].type);
      EXPECT_EQ(parsed.tables[t].columns[c].ref_table,
                original.tables[t].columns[c].ref_table);
    }
  }
  ASSERT_EQ(parsed.responses.size(), original.responses.size());
  for (size_t r = 0; r < parsed.responses.size(); ++r) {
    EXPECT_EQ(parsed.responses[r].response_table,
              original.responses[r].response_table);
    EXPECT_EQ(parsed.responses[r].post_col, original.responses[r].post_col);
    EXPECT_EQ(parsed.responses[r].responder_col,
              original.responses[r].responder_col);
    EXPECT_EQ(parsed.responses[r].author_col,
              original.responses[r].author_col);
  }
}

TEST(SchemaTextTest, CommentsAndWhitespaceIgnored) {
  const auto schema = ParseSchemaText(R"(
# a library
dataset demo
table A
  col x int64   # payload
table B
  col a fk A
)")
                          .ValueOrAbort();
  EXPECT_EQ(schema.name, "demo");
  ASSERT_EQ(schema.tables.size(), 2u);
  EXPECT_EQ(schema.tables[1].columns[0].ref_table, "A");
}

TEST(SchemaTextTest, ErrorsCarryLineNumbers) {
  const auto r1 = ParseSchemaText("table A\ncol x float32\n");
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("line 2"), std::string::npos);
  EXPECT_FALSE(ParseSchemaText("col x int64\n").ok());  // col before table
  EXPECT_FALSE(ParseSchemaText("bogus\n").ok());
  EXPECT_FALSE(
      ParseSchemaText("table A\ncol x fk Missing\n").ok());  // validation
  EXPECT_FALSE(
      ParseSchemaText("table A\nresponse A x y A z\n").ok());
}

TEST(SchemaTextTest, LoadFileMissing) {
  EXPECT_FALSE(LoadSchemaFile("/no/such/schema.txt").ok());
}

}  // namespace
}  // namespace aspect
