// Tests for src/stats: frequency distributions, fitting, sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "relational/integrity.h"
#include "stats/fitting.h"
#include "stats/freq_dist.h"
#include "stats/sampler.h"
#include "workload/generator.h"

namespace aspect {
namespace {

TEST(FreqDistTest, AddAndCount) {
  FrequencyDistribution f(2);
  f.Add({1, 2});
  f.Add({1, 2});
  f.Add({3, 4}, 5);
  EXPECT_EQ(f.Count({1, 2}), 2);
  EXPECT_EQ(f.Count({3, 4}), 5);
  EXPECT_EQ(f.Count({9, 9}), 0);
  EXPECT_EQ(f.NumKeys(), 2);
  EXPECT_EQ(f.TotalMass(), 7);
}

TEST(FreqDistTest, ZeroEntriesErased) {
  FrequencyDistribution f(1);
  f.Add({5}, 3);
  f.Add({5}, -3);
  EXPECT_EQ(f.NumKeys(), 0);
  EXPECT_EQ(f.Count({5}), 0);
}

TEST(FreqDistTest, NegativeCountsAllowed) {
  FrequencyDistribution f(1);
  f.Add({1}, -4);
  EXPECT_EQ(f.TotalMass(), -4);
  EXPECT_EQ(f.TotalAbsMass(), 4);
}

TEST(FreqDistTest, WeightedSum) {
  FrequencyDistribution f(2);
  f.Add({2, 3}, 4);  // contributes 8 to dim0, 12 to dim1
  f.Add({1, 0}, 2);  // contributes 2 to dim0, 0
  EXPECT_EQ(f.WeightedSum(0), 10);
  EXPECT_EQ(f.WeightedSum(1), 12);
}

TEST(FreqDistTest, L1Distance) {
  FrequencyDistribution f(1), g(1);
  f.Add({1}, 3);
  f.Add({2}, 1);
  g.Add({1}, 1);
  g.Add({3}, 2);
  // |3-1| + |1-0| + |0-2| = 5.
  EXPECT_EQ(f.L1Distance(g), 5);
  EXPECT_EQ(g.L1Distance(f), 5);
  EXPECT_EQ(f.L1Distance(f), 0);
}

TEST(FreqDistTest, Difference) {
  FrequencyDistribution f(1), g(1);
  f.Add({1}, 3);
  g.Add({1}, 1);
  g.Add({2}, 2);
  const FrequencyDistribution d = f.Difference(g);
  EXPECT_EQ(d.Count({1}), 2);
  EXPECT_EQ(d.Count({2}), -2);
}

TEST(FreqDistTest, EqualityAndToString) {
  FrequencyDistribution f(2), g(2);
  f.Add({1, 2});
  g.Add({1, 2});
  EXPECT_EQ(f, g);
  g.Add({0, 0});
  EXPECT_FALSE(f == g);
  EXPECT_EQ(f.ToString(), "{(1,2):1}");
}

TEST(FreqDistTest, ManhattanDistance) {
  EXPECT_EQ(ManhattanDistance({1, 2, 3}, {4, 0, 3}), 5);
  EXPECT_EQ(ManhattanDistance({}, {}), 0);
}

TEST(FittingTest, ExactPolynomialRecovered) {
  // y = 2 + 3x - x^2
  std::vector<double> xs, ys;
  for (int i = 0; i < 8; ++i) {
    const double x = i;
    xs.push_back(x);
    ys.push_back(2 + 3 * x - x * x);
  }
  const auto fit = PolyFit(xs, ys, 2).ValueOrAbort();
  ASSERT_EQ(fit.size(), 3u);
  EXPECT_NEAR(fit[0], 2.0, 1e-6);
  EXPECT_NEAR(fit[1], 3.0, 1e-6);
  EXPECT_NEAR(fit[2], -1.0, 1e-6);
  EXPECT_NEAR(PolyEval(fit, 10.0), 2 + 30 - 100, 1e-5);
}

TEST(FittingTest, UnderdeterminedRejected) {
  EXPECT_FALSE(PolyFit({1.0}, {2.0}, 2).ok());
}

TEST(FittingTest, SingularRejected) {
  // All x equal: Vandermonde is rank deficient for degree >= 1.
  EXPECT_FALSE(PolyFit({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0}, 1).ok());
}

TEST(FittingTest, PoissonMle) {
  EXPECT_DOUBLE_EQ(PoissonMle({}), 0.0);
  EXPECT_DOUBLE_EQ(PoissonMle({2, 4, 6}), 4.0);
}

TEST(FittingTest, PowerLawFit) {
  // y = 5 * x^1.5
  std::vector<double> xs, ys;
  for (double x : {1.0, 2.0, 4.0, 8.0}) {
    xs.push_back(x);
    ys.push_back(5.0 * std::pow(x, 1.5));
  }
  const auto fit = PowerLawFit(xs, ys).ValueOrAbort();
  EXPECT_NEAR(fit[0], 5.0, 1e-6);
  EXPECT_NEAR(fit[1], 1.5, 1e-6);
}

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto gen = GenerateDataset(DoubanMusicLike(0.5), 42);
    ASSERT_TRUE(gen.ok()) << gen.status();
    set_ = std::make_unique<SnapshotSet>(std::move(gen).ValueOrDie());
  }
  std::unique_ptr<SnapshotSet> set_;
};

TEST_F(SamplerTest, SamplesAreFkClosedAndShrinking) {
  const auto samples =
      NestedSamples(set_->full(), {0.2, 0.5, 0.9}, 7).ValueOrAbort();
  ASSERT_EQ(samples.size(), 3u);
  int64_t prev = 0;
  for (const auto& s : samples) {
    EXPECT_TRUE(CheckIntegrity(*s).ok());
    EXPECT_GT(s->TotalTuples(), prev);
    prev = s->TotalTuples();
  }
  EXPECT_LT(samples[2]->TotalTuples(), set_->full().TotalTuples());
}

TEST_F(SamplerTest, FractionRoughlyHitsRootTables) {
  const auto samples =
      NestedSamples(set_->full(), {0.5}, 11).ValueOrAbort();
  const double got =
      static_cast<double>(samples[0]->FindTable("User")->NumTuples()) /
      static_cast<double>(set_->full().FindTable("User")->NumTuples());
  EXPECT_NEAR(got, 0.5, 0.15);
}

TEST_F(SamplerTest, BadFractionRejected) {
  EXPECT_FALSE(NestedSamples(set_->full(), {0.0}, 1).ok());
  EXPECT_FALSE(NestedSamples(set_->full(), {1.5}, 1).ok());
}

}  // namespace
}  // namespace aspect
