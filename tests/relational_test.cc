// Tests for src/relational: columns, tables, database ops, schema
// validation, reference-graph analysis, integrity, CSV round-trip.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/thread_pool.h"
#include "relational/csv.h"
#include "relational/database.h"
#include "relational/fingerprint.h"
#include "relational/integrity.h"
#include "relational/refgraph.h"
#include "relational/rowgen.h"

namespace aspect {
namespace {

// A small sonSchema-flavoured test schema:
//   User(country)
//   Post(author -> User, kind)
//   Comment(responder -> User, post -> Post)
//   Like(responder -> User, post -> Post)
Schema TestSchema() {
  Schema s;
  s.name = "test";
  s.tables.push_back(
      {"User", {{"country", ColumnType::kString, ""}}});
  s.tables.push_back({"Post",
                      {{"author", ColumnType::kForeignKey, "User"},
                       {"kind", ColumnType::kInt64, ""}}});
  s.tables.push_back({"Comment",
                      {{"responder", ColumnType::kForeignKey, "User"},
                       {"post", ColumnType::kForeignKey, "Post"}}});
  s.tables.push_back({"Like",
                      {{"responder", ColumnType::kForeignKey, "User"},
                       {"post", ColumnType::kForeignKey, "Post"}}});
  s.user_table = "User";
  ResponseSpec r;
  r.response_table = "Comment";
  r.responder_col = 0;
  r.post_col = 1;
  r.post_table = "Post";
  r.author_col = 0;
  s.responses.push_back(r);
  return s;
}

std::unique_ptr<Database> MakeDb() {
  auto db = Database::Create(TestSchema()).ValueOrAbort();
  Table* user = db->FindTable("User");
  for (int i = 0; i < 4; ++i) {
    user->Append({Value(std::string(1, static_cast<char>('a' + i)))})
        .status()
        .Check();
  }
  Table* post = db->FindTable("Post");
  post->Append({Value(int64_t{0}), Value(int64_t{1})}).status().Check();
  post->Append({Value(int64_t{1}), Value(int64_t{2})}).status().Check();
  post->Append({Value(int64_t{1}), Value(int64_t{1})}).status().Check();
  Table* comment = db->FindTable("Comment");
  comment->Append({Value(int64_t{2}), Value(int64_t{0})}).status().Check();
  comment->Append({Value(int64_t{3}), Value(int64_t{1})}).status().Check();
  Table* like = db->FindTable("Like");
  like->Append({Value(int64_t{0}), Value(int64_t{2})}).status().Check();
  return db;
}

TEST(ValueTest, TypesAndEquality) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{3}).int64(), 3);
  EXPECT_EQ(Value(2.5).dbl(), 2.5);
  EXPECT_EQ(Value(std::string("x")).str(), "x");
  EXPECT_EQ(Value(int64_t{3}), Value(int64_t{3}));
  EXPECT_NE(Value(int64_t{3}), Value(3.0));
  EXPECT_EQ(Value().ToString(), "");
  EXPECT_EQ(Value(int64_t{-7}).ToString(), "-7");
}

TEST(ColumnTest, AppendGetSet) {
  Column col("c", ColumnType::kInt64);
  ASSERT_TRUE(col.Append(Value(int64_t{5})).ok());
  ASSERT_TRUE(col.Append(Value::Null()).ok());
  EXPECT_EQ(col.size(), 2);
  EXPECT_EQ(col.Get(0), Value(int64_t{5}));
  EXPECT_TRUE(col.IsNull(1));
  ASSERT_TRUE(col.Set(1, Value(int64_t{9})).ok());
  EXPECT_EQ(col.GetInt(1), 9);
}

TEST(ColumnTest, TypeMismatchRejected) {
  Column col("c", ColumnType::kInt64);
  ASSERT_TRUE(col.Append(Value(int64_t{1})).ok());
  EXPECT_FALSE(col.Set(0, Value(std::string("no"))).ok());
  EXPECT_FALSE(col.Set(0, Value(1.5)).ok());
}

TEST(ColumnTest, EraseMakesEmpty) {
  Column col("c", ColumnType::kForeignKey, "User");
  ASSERT_TRUE(col.Append(Value(int64_t{0})).ok());
  col.Erase(0);
  EXPECT_TRUE(col.IsEmpty(0));
  EXPECT_TRUE(col.Get(0).is_null());
}

TEST(SchemaTest, ValidSchemaPasses) {
  EXPECT_TRUE(TestSchema().Validate().ok());
}

TEST(SchemaTest, DuplicateTableRejected) {
  Schema s = TestSchema();
  s.tables.push_back({"User", {}});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, UnknownFkTargetRejected) {
  Schema s = TestSchema();
  s.tables.push_back(
      {"Bad", {{"x", ColumnType::kForeignKey, "Nope"}}});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, FkRefTableConsistencyEnforced) {
  Schema s = TestSchema();
  s.tables.push_back({"Bad", {{"x", ColumnType::kInt64, "User"}}});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, BadResponseAnnotationRejected) {
  Schema s = TestSchema();
  s.responses[0].post_col = 0;  // points at the responder FK, not Post
  EXPECT_FALSE(s.Validate().ok());
}

TEST(TableTest, AppendDeleteAndLiveness) {
  auto db = MakeDb();
  Table* post = db->FindTable("Post");
  EXPECT_EQ(post->NumTuples(), 3);
  ASSERT_TRUE(post->Delete(1).ok());
  EXPECT_EQ(post->NumTuples(), 2);
  EXPECT_FALSE(post->IsLive(1));
  EXPECT_TRUE(post->IsLive(0));
  EXPECT_FALSE(post->Delete(1).ok());  // double delete
  EXPECT_EQ(post->LiveTuples(), (std::vector<TupleId>{0, 2}));
  // Ids remain stable after a delete: appends go to the end.
  const TupleId t = post->Append({Value(int64_t{2}), Value(int64_t{9})})
                        .ValueOrAbort();
  EXPECT_EQ(t, 3);
}

TEST(TableTest, AppendArityChecked) {
  auto db = MakeDb();
  EXPECT_FALSE(db->FindTable("User")->Append({}).ok());
}

TEST(TableTest, AppendIsAtomicOnTypeErrors) {
  auto db = MakeDb();
  Table* post = db->FindTable("Post");
  const int64_t slots = post->NumSlots();
  // The second value has the wrong type: no column may grow, or the
  // table would be left ragged.
  EXPECT_FALSE(
      post->Append({Value(int64_t{0}), Value(std::string("bad"))}).ok());
  EXPECT_EQ(post->NumSlots(), slots);
  EXPECT_EQ(post->column(0).size(), slots);
  EXPECT_EQ(post->column(1).size(), slots);
}

TEST(RowBlockTest, AppendRowsSplicesWholeBlock) {
  auto db = MakeDb();
  Table* post = db->FindTable("Post");
  const int64_t before = post->NumTuples();
  RowBlock block(post->spec());
  block.Reserve(3);
  for (int64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        block.PushRow({Value(int64_t{i % 4}), Value(int64_t{7})}).ok());
  }
  EXPECT_EQ(block.num_rows(), 3);
  ASSERT_TRUE(post->AppendRows(std::move(block)).ok());
  EXPECT_EQ(post->NumTuples(), before + 3);
  EXPECT_TRUE(post->IsLive(before));
  EXPECT_EQ(post->column(0).GetInt(before + 2), 2);
  EXPECT_EQ(post->column(1).GetInt(before), 7);
}

TEST(RowBlockTest, PushRowIsAtomicOnTypeErrors) {
  RowBlock block(TestSchema().tables[1]);  // Post(author, kind)
  ASSERT_TRUE(
      block.PushRow({Value(int64_t{0}), Value(int64_t{1})}).ok());
  // Bad type in the second column: the first column must not grow
  // either, or the block (and later the table) would go ragged.
  EXPECT_FALSE(
      block.PushRow({Value(int64_t{0}), Value(std::string("bad"))}).ok());
  EXPECT_FALSE(block.PushRow({Value(int64_t{0})}).ok());  // arity
  EXPECT_EQ(block.num_rows(), 1);
}

TEST(RowBlockTest, AppendRowsChecksColumnCount) {
  auto db = MakeDb();
  RowBlock block(TestSchema().tables[0]);  // User(country): 1 column
  ASSERT_TRUE(block.PushRow({Value(std::string("z"))}).ok());
  EXPECT_FALSE(db->FindTable("Post")->AppendRows(std::move(block)).ok());
}

TEST(RowGenTest, ShardedGenerationMatchesInlineBitwise) {
  // The same generation, once inline (no pool) and once on 4 workers,
  // must produce byte-identical databases: shard streams depend only
  // on (parent stream, shard index), never on the worker count.
  const int64_t kRows = 5000;  // several kGenShardRows-sized shards
  auto make = [&](ThreadPool* pool) {
    auto db = MakeDb();
    const Rng stream(123);
    GenerateRowsSharded(
        db->FindTable("Post"), kRows, stream, pool,
        [](int64_t /*row*/, Rng* rng, std::vector<Value>* out) {
          (*out)[0] = Value(rng->UniformInt(0, 3));
          (*out)[1] = Value(rng->UniformInt(0, 9));
          return Status::OK();
        })
        .Check();
    return db;
  };
  auto inline_db = make(nullptr);
  ThreadPool pool(4);
  auto pooled_db = make(&pool);
  EXPECT_EQ(inline_db->FindTable("Post")->NumTuples(), 3 + kRows);
  EXPECT_EQ(ContentHash(*inline_db), ContentHash(*pooled_db));
  EXPECT_TRUE(CheckIntegrity(*pooled_db).ok());
}

TEST(DatabaseTest, FindTable) {
  auto db = MakeDb();
  EXPECT_NE(db->FindTable("User"), nullptr);
  EXPECT_EQ(db->FindTable("Nope"), nullptr);
  EXPECT_EQ(db->TotalTuples(), 4 + 3 + 2 + 1);
}

TEST(DatabaseTest, DeleteInsertValuesLifecycle) {
  auto db = MakeDb();
  // Fig. 6 of the paper: delete some cells, then insert into the holes.
  ASSERT_TRUE(
      db->Apply(Modification::DeleteValues("Comment", {0}, {0, 1})).ok());
  const Table* c = db->FindTable("Comment");
  EXPECT_TRUE(c->column(0).IsEmpty(0));
  EXPECT_TRUE(c->column(1).IsEmpty(0));
  // Double delete of the same cell is rejected.
  EXPECT_FALSE(
      db->Apply(Modification::DeleteValues("Comment", {0}, {0})).ok());
  // Insert into non-empty cells is rejected.
  EXPECT_FALSE(db->Apply(Modification::InsertValues(
                             "Comment", {1}, {0}, {Value(int64_t{1})}))
                   .ok());
  // Filling the holes succeeds.
  ASSERT_TRUE(db->Apply(Modification::InsertValues(
                            "Comment", {0}, {0, 1},
                            {Value(int64_t{1}), Value(int64_t{2})}))
                  .ok());
  EXPECT_EQ(c->column(0).GetInt(0), 1);
  EXPECT_EQ(c->column(1).GetInt(0), 2);
}

TEST(DatabaseTest, ReplaceValuesBroadcasts) {
  auto db = MakeDb();
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Comment", {0, 1}, {0}, {Value(int64_t{0})}))
                  .ok());
  const Table* c = db->FindTable("Comment");
  EXPECT_EQ(c->column(0).GetInt(0), 0);
  EXPECT_EQ(c->column(0).GetInt(1), 0);
  // replaceValues on an empty cell is rejected.
  ASSERT_TRUE(
      db->Apply(Modification::DeleteValues("Comment", {0}, {0})).ok());
  EXPECT_FALSE(db->Apply(Modification::ReplaceValues(
                             "Comment", {0}, {0}, {Value(int64_t{1})}))
                   .ok());
}

TEST(DatabaseTest, InsertAndDeleteTuple) {
  auto db = MakeDb();
  TupleId nt = kInvalidTuple;
  ASSERT_TRUE(db->Apply(Modification::InsertTuple(
                            "Like", {Value(int64_t{1}), Value(int64_t{0})}),
                        &nt)
                  .ok());
  EXPECT_EQ(nt, 1);
  EXPECT_EQ(db->FindTable("Like")->NumTuples(), 2);
  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("Like", 0)).ok());
  EXPECT_EQ(db->FindTable("Like")->NumTuples(), 1);
  EXPECT_FALSE(db->Apply(Modification::DeleteTuple("Like", 0)).ok());
}

TEST(DatabaseTest, BadTableAndColumnRejected) {
  auto db = MakeDb();
  EXPECT_FALSE(
      db->Apply(Modification::DeleteValues("Nope", {0}, {0})).ok());
  EXPECT_FALSE(
      db->Apply(Modification::DeleteValues("User", {0}, {5})).ok());
  EXPECT_FALSE(
      db->Apply(Modification::DeleteValues("User", {99}, {0})).ok());
}


TEST(DatabaseTest, CellOpsAreAtomicOnTypeErrors) {
  auto db = MakeDb();
  const Table* c = db->FindTable("Comment");
  const int64_t before0 = c->column(0).GetInt(0);
  // Second value has the wrong type: nothing may be applied.
  EXPECT_FALSE(db->Apply(Modification::ReplaceValues(
                             "Comment", {0}, {0, 1},
                             {Value(int64_t{1}), Value(std::string("x"))}))
                   .ok());
  EXPECT_EQ(c->column(0).GetInt(0), before0);
  EXPECT_TRUE(c->column(1).IsValue(0));
}

class RecordingListener : public ModificationListener {
 public:
  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override {
    kinds.push_back(mod.kind);
    last_old = old_values;
    last_new_tuple = new_tuple;
  }
  std::vector<OpKind> kinds;
  std::vector<Value> last_old;
  TupleId last_new_tuple = kInvalidTuple;
};

TEST(DatabaseTest, ListenerSeesOldValues) {
  auto db = MakeDb();
  RecordingListener listener;
  db->AddListener(&listener);
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Comment", {0}, {0}, {Value(int64_t{0})}))
                  .ok());
  ASSERT_EQ(listener.kinds.size(), 1u);
  EXPECT_EQ(listener.kinds[0], OpKind::kReplaceValues);
  ASSERT_EQ(listener.last_old.size(), 1u);
  EXPECT_EQ(listener.last_old[0], Value(int64_t{2}));

  TupleId nt = kInvalidTuple;
  ASSERT_TRUE(db->Apply(Modification::InsertTuple(
                            "Like", {Value(int64_t{2}), Value(int64_t{1})}),
                        &nt)
                  .ok());
  EXPECT_EQ(listener.last_new_tuple, nt);

  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("Like", 0)).ok());
  ASSERT_EQ(listener.last_old.size(), 2u);  // the deleted row
  EXPECT_EQ(listener.last_old[0], Value(int64_t{0}));

  db->RemoveListener(&listener);
  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("Like", nt)).ok());
  EXPECT_EQ(listener.kinds.size(), 3u);  // no further notifications
}

TEST(DatabaseTest, ApplyBatchRevertsAppliedPrefixOnFailure) {
  auto db = MakeDb();
  auto pristine = db->Clone();
  RecordingListener listener;
  db->AddListener(&listener);
  // Two valid modifications followed by a failing one (wrong type in
  // the inserted row): the prefix must be reverted, nothing notified.
  const std::vector<Modification> batch = {
      Modification::ReplaceValues("Post", {0}, {1}, {Value(int64_t{7})}),
      Modification::InsertTuple("Post",
                                {Value(int64_t{1}), Value(int64_t{4})}),
      Modification::InsertTuple(
          "Post", {Value(int64_t{0}), Value(std::string("bad"))}),
  };
  std::vector<TupleId> new_tuples;
  EXPECT_FALSE(db->ApplyBatch(batch, &new_tuples).ok());
  EXPECT_TRUE(listener.kinds.empty());
  EXPECT_EQ(new_tuples, std::vector<TupleId>(3, kInvalidTuple));
  const Table* post = db->FindTable("Post");
  const Table* orig = pristine->FindTable("Post");
  ASSERT_EQ(post->NumSlots(), orig->NumSlots());
  EXPECT_EQ(post->column(0).size(), orig->column(0).size());
  EXPECT_EQ(post->column(1).size(), orig->column(1).size());
  for (TupleId t = 0; t < orig->NumSlots(); ++t) {
    EXPECT_EQ(post->column(0).Get(t), orig->column(0).Get(t)) << t;
    EXPECT_EQ(post->column(1).Get(t), orig->column(1).Get(t)) << t;
  }
}

TEST(DatabaseTest, FailedOpDoesNotNotify) {
  auto db = MakeDb();
  RecordingListener listener;
  db->AddListener(&listener);
  EXPECT_FALSE(
      db->Apply(Modification::DeleteValues("Nope", {0}, {0})).ok());
  EXPECT_TRUE(listener.kinds.empty());
}

TEST(DatabaseTest, CloneIsDeepAndDetached) {
  auto db = MakeDb();
  auto copy = db->Clone();
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Comment", {0}, {0}, {Value(int64_t{0})}))
                  .ok());
  EXPECT_EQ(copy->FindTable("Comment")->column(0).GetInt(0), 2);
  EXPECT_EQ(db->FindTable("Comment")->column(0).GetInt(0), 0);
}

TEST(RefGraphTest, EdgesAndAcyclic) {
  ReferenceGraph g(TestSchema());
  EXPECT_EQ(g.edges().size(), 5u);
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_EQ(g.OutEdges(0).size(), 0u);  // User
  EXPECT_EQ(g.InEdges(0).size(), 3u);   // referenced by Post x1, C, L
}

TEST(RefGraphTest, CyclicDetected) {
  Schema s;
  s.name = "cyc";
  s.tables.push_back({"A", {{"b", ColumnType::kForeignKey, "B"}}});
  s.tables.push_back({"B", {{"a", ColumnType::kForeignKey, "A"}}});
  ReferenceGraph g(s);
  EXPECT_FALSE(g.IsAcyclic());
  EXPECT_TRUE(g.MaximalChains().empty());
}

TEST(RefGraphTest, MaximalChains) {
  ReferenceGraph g(TestSchema());
  const auto chains = g.MaximalChains();
  // Comment->User, Comment->Post->User, Like->User, Like->Post->User.
  ASSERT_EQ(chains.size(), 4u);
  std::set<std::string> rendered;
  for (const auto& c : chains) rendered.insert(c.ToString(g.schema()));
  EXPECT_TRUE(rendered.count("Comment -> User"));
  EXPECT_TRUE(rendered.count("Comment -> Post -> User"));
  EXPECT_TRUE(rendered.count("Like -> User"));
  EXPECT_TRUE(rendered.count("Like -> Post -> User"));
}

TEST(RefGraphTest, ChainStoredBottomUp) {
  ReferenceGraph g(TestSchema());
  for (const auto& c : g.MaximalChains()) {
    // tables[0] must be the root (User = table 0).
    EXPECT_EQ(c.tables[0], 0);
    EXPECT_EQ(c.fk_cols.size(), c.tables.size() - 1);
  }
}

TEST(RefGraphTest, CoappearGroups) {
  ReferenceGraph g(TestSchema());
  const auto groups = g.CoappearGroups();
  // Comment and Like both reference (User, Post).
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].member_tables.size(), 2u);
  EXPECT_EQ(groups[0].parent_tables.size(), 2u);
}

TEST(RefGraphTest, SelfPairParents) {
  Schema s;
  s.name = "fan";
  s.tables.push_back({"User", {{"x", ColumnType::kInt64, ""}}});
  s.tables.push_back({"Fan",
                      {{"from", ColumnType::kForeignKey, "User"},
                       {"to", ColumnType::kForeignKey, "User"}}});
  ReferenceGraph g(s);
  const auto groups = g.CoappearGroups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].parent_tables, (std::vector<int>{0, 0}));
  // Two distinct maximal chains via the two FK columns.
  EXPECT_EQ(g.MaximalChains().size(), 2u);
}

TEST(IntegrityTest, ValidDatabasePasses) {
  auto db = MakeDb();
  EXPECT_TRUE(CheckIntegrity(*db).ok());
}

TEST(IntegrityTest, DanglingFkDetected) {
  auto db = MakeDb();
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Comment", {0}, {0}, {Value(int64_t{99})}))
                  .ok());
  EXPECT_FALSE(CheckIntegrity(*db).ok());
}

TEST(IntegrityTest, DeletedParentDetected) {
  auto db = MakeDb();
  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("User", 2)).ok());
  // Comment[0].responder references User 2.
  EXPECT_FALSE(CheckIntegrity(*db).ok());
}

TEST(IntegrityTest, EmptyCellPolicy) {
  auto db = MakeDb();
  ASSERT_TRUE(
      db->Apply(Modification::DeleteValues("Comment", {0}, {0})).ok());
  EXPECT_FALSE(CheckIntegrity(*db).ok());
  IntegrityOptions opts;
  opts.forbid_empty_cells = false;
  EXPECT_TRUE(CheckIntegrity(*db, opts).ok());
}

TEST(CsvTest, RoundTrip) {
  auto db = MakeDb();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "aspect_csv_test").string();
  ASSERT_TRUE(ExportCsv(*db, dir).ok());
  auto loaded = ImportCsv(TestSchema(), dir).ValueOrAbort();
  ASSERT_EQ(loaded->num_tables(), db->num_tables());
  for (int ti = 0; ti < db->num_tables(); ++ti) {
    const Table& a = db->table(ti);
    const Table& b = loaded->table(ti);
    ASSERT_EQ(a.NumTuples(), b.NumTuples()) << a.name();
    a.ForEachLive([&](TupleId t) {
      EXPECT_EQ(a.GetRow(t), b.GetRow(t)) << a.name() << " tuple " << t;
    });
  }
  std::filesystem::remove_all(dir);
}

TEST(CsvTest, TombstonesCompactedOnRoundTrip) {
  auto db = MakeDb();
  // Delete Post tuple 1 and rewire its referencing comment to Post 2 so
  // integrity holds.
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Comment", {1}, {1}, {Value(int64_t{2})}))
                  .ok());
  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("Post", 1)).ok());
  ASSERT_TRUE(CheckIntegrity(*db).ok());

  const std::string dir =
      (std::filesystem::temp_directory_path() / "aspect_csv_test2").string();
  ASSERT_TRUE(ExportCsv(*db, dir).ok());
  auto loaded = ImportCsv(TestSchema(), dir).ValueOrAbort();
  EXPECT_EQ(loaded->FindTable("Post")->NumTuples(), 2);
  EXPECT_TRUE(CheckIntegrity(*loaded).ok());
  // Remapped FK must point at the densified id of the old Post 2.
  EXPECT_EQ(loaded->FindTable("Comment")->column(1).GetInt(1), 1);
  std::filesystem::remove_all(dir);
}


TEST(CsvTest, QuotedFieldsRoundTrip) {
  Schema s;
  s.name = "quoted";
  s.tables.push_back({"T", {{"s", ColumnType::kString, ""}}});
  auto db = Database::Create(s).ValueOrAbort();
  for (const char* v : {"plain", "with,comma", "with\"quote\"",
                        "\"both\", yes"}) {
    db->FindTable("T")->Append({Value(std::string(v))}).status().Check();
  }
  const std::string dir =
      (std::filesystem::temp_directory_path() / "aspect_csv_quoted").string();
  ASSERT_TRUE(ExportCsv(*db, dir).ok());
  auto loaded = ImportCsv(s, dir).ValueOrAbort();
  const Table* t = loaded->FindTable("T");
  ASSERT_EQ(t->NumTuples(), 4);
  EXPECT_EQ(t->column(0).GetString(1), "with,comma");
  EXPECT_EQ(t->column(0).GetString(2), "with\"quote\"");
  EXPECT_EQ(t->column(0).GetString(3), "\"both\", yes");
  std::filesystem::remove_all(dir);
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ImportCsv(TestSchema(), "/nonexistent/dir").ok());
}

}  // namespace
}  // namespace aspect
