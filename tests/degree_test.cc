// Tests for the degree-distribution tool (the contributed fourth
// complex property).
#include <gtest/gtest.h>

#include "aspect/coordinator.h"
#include "aspect/tweak_context.h"
#include "properties/degree.h"
#include "relational/integrity.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

namespace aspect {
namespace {

Schema TwoTableSchema() {
  Schema s;
  s.name = "deg";
  s.tables.push_back({"P", {{"x", ColumnType::kInt64, ""}}});
  s.tables.push_back({"C", {{"p", ColumnType::kForeignKey, "P"}}});
  return s;
}

std::unique_ptr<Database> TwoTableDb(const std::vector<int64_t>& fks,
                                     int64_t parents) {
  auto db = Database::Create(TwoTableSchema()).ValueOrAbort();
  for (int64_t i = 0; i < parents; ++i) {
    db->FindTable("P")->Append({Value(i)}).status().Check();
  }
  for (const int64_t p : fks) {
    db->FindTable("C")->Append({Value(p)}).status().Check();
  }
  return db;
}

TEST(DegreeTest, ExtractionMatchesHandCount) {
  // Degrees: p0:3, p1:1, p2:0, p3:2.
  auto db = TwoTableDb({0, 0, 0, 1, 3, 3}, 4);
  DegreeDistributionTool tool(db->schema());
  ASSERT_EQ(tool.edges().size(), 1u);
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  EXPECT_EQ(tool.TargetDist(0).Count({3}), 1);
  EXPECT_EQ(tool.TargetDist(0).Count({2}), 1);
  EXPECT_EQ(tool.TargetDist(0).Count({1}), 1);
  EXPECT_EQ(tool.TargetDist(0).Count({0}), 0);  // implicit
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  EXPECT_TRUE(tool.CheckTargetFeasible().ok());
  tool.Unbind();
}

TEST(DegreeTest, TweakReachesExactSequence) {
  auto db = TwoTableDb({0, 0, 0, 0, 0, 0, 1, 2}, 5);  // degrees 6,1,1,0,0
  DegreeDistributionTool tool(db->schema());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  // Target: degrees {2, 2, 2, 1, 1}.
  FrequencyDistribution f(1);
  f.Add({2}, 3);
  f.Add({1}, 2);
  ASSERT_TRUE(tool.SetTargetDistributions({f}, {5}).ok());
  ASSERT_TRUE(tool.CheckTargetFeasible().ok()) << tool.CheckTargetFeasible();
  EXPECT_GT(tool.Error(), 0.0);
  Rng rng(1);
  TweakContext ctx(db.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  EXPECT_TRUE(CheckIntegrity(*db).ok());
  tool.Unbind();
}

TEST(DegreeTest, InfeasibleTargetsDetectedAndRepaired) {
  auto db = TwoTableDb({0, 0, 1}, 3);
  DegreeDistributionTool tool(db->schema());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  FrequencyDistribution f(1);
  f.Add({5}, 2);  // weighted sum 10 != |C| = 3
  ASSERT_TRUE(tool.SetTargetDistributions({f}, {3}).ok());
  EXPECT_FALSE(tool.CheckTargetFeasible().ok());
  ASSERT_TRUE(tool.RepairTarget().ok());
  EXPECT_TRUE(tool.CheckTargetFeasible().ok()) << tool.CheckTargetFeasible();
  tool.Unbind();
}

class DegreeTweakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DegreeTweakTest, TweaksRandScaledDatasetToGroundTruth) {
  const uint64_t seed = GetParam();
  auto gen = GenerateDataset(DoubanMusicLike(0.3), seed).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(2).ValueOrAbort(),
                           gen.SnapshotSizes(4), seed)
                    .ValueOrAbort();
  DegreeDistributionTool tool(truth->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*truth).ok());
  ASSERT_TRUE(tool.Bind(scaled.get()).ok());
  ASSERT_TRUE(tool.CheckTargetFeasible().ok()) << tool.CheckTargetFeasible();
  const double before = tool.Error();
  EXPECT_GT(before, 0.05);
  Rng rng(seed);
  TweakContext ctx(scaled.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  EXPECT_LT(tool.Error(), 1e-9);
  EXPECT_TRUE(CheckIntegrity(*scaled).ok());
  tool.Unbind();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegreeTweakTest,
                         ::testing::Values(51u, 52u, 53u));

TEST(DegreeTest, IncrementalMatchesRebuild) {
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 3).ValueOrAbort();
  auto db = gen.Materialize(3).ValueOrAbort();
  DegreeDistributionTool tool(db->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  Rng rng(9);
  Table* t = db->FindTable("Album_Comment");
  for (int step = 0; step < 60; ++step) {
    const TupleId tid = rng.UniformInt(0, t->NumTuples() - 1);
    const int col = static_cast<int>(rng.UniformInt(0, 1));
    const Table* p = col == 0 ? db->FindTable("Album") : db->FindTable("User");
    ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                              "Album_Comment", {tid}, {col},
                              {Value(rng.UniformInt(0, p->NumTuples() - 1))}))
                    .ok());
  }
  DegreeDistributionTool fresh(db->schema());
  ASSERT_TRUE(fresh.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(fresh.Bind(db.get()).ok());
  for (size_t e = 0; e < tool.edges().size(); ++e) {
    EXPECT_EQ(tool.CurrentDist(static_cast<int>(e)),
              fresh.CurrentDist(static_cast<int>(e)))
        << e;
  }
  fresh.Unbind();
  tool.Unbind();
}

TEST(DegreeTest, ValidationPenaltySigns) {
  auto db = TwoTableDb({0, 0, 1}, 3);
  DegreeDistributionTool tool(db->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  // Moving c2 from p1 to p0 turns degrees {2,1} into {3}: positive.
  EXPECT_GT(tool.ValidationPenalty(Modification::ReplaceValues(
                "C", {2}, {0}, {Value(int64_t{0})})),
            0.0);
  // No-op move: zero.
  EXPECT_DOUBLE_EQ(tool.ValidationPenalty(Modification::ReplaceValues(
                       "C", {2}, {0}, {Value(int64_t{1})})),
                   0.0);
  tool.Unbind();
}

TEST(DegreeTest, ComposesWithOtherToolsInCoordinator) {
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 19).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(2).ValueOrAbort(),
                           gen.SnapshotSizes(4), 19)
                    .ValueOrAbort();
  Coordinator coordinator;
  const int deg = coordinator.AddTool(
      std::make_unique<DegreeDistributionTool>(truth->schema()));
  coordinator.SetTargetsFromDataset(*truth).Check();
  CoordinatorOptions opts;
  opts.seed = 21;
  auto report =
      coordinator.Run(scaled.get(), {deg}, opts).ValueOrAbort();
  EXPECT_LT(report.final_errors[static_cast<size_t>(deg)], 1e-9);
}

}  // namespace
}  // namespace aspect
