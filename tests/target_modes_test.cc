// Tests for the three Target Generator modes of Sec. III-C as exposed
// by the tools: (a) user input, (b) developer generation (extraction
// from a ground-truth dataset), (c) statistical extrapolation across
// snapshots.
#include <gtest/gtest.h>

#include "aspect/target_generator.h"
#include "aspect/tweak_context.h"
#include "properties/degree.h"
#include "properties/simple.h"
#include "workload/generator.h"

namespace aspect {
namespace {

class TargetModesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto gen = GenerateDataset(DoubanMusicLike(0.4), 61);
    ASSERT_TRUE(gen.ok());
    set_ = std::make_unique<SnapshotSet>(std::move(gen).ValueOrDie());
    for (int s = 1; s <= 4; ++s) {
      snapshots_.push_back(set_->Materialize(s).ValueOrAbort());
      views_.push_back(snapshots_.back().get());
    }
    future_ = set_->Materialize(6).ValueOrAbort();
  }
  std::unique_ptr<SnapshotSet> set_;
  std::vector<std::unique_ptr<Database>> snapshots_;
  std::vector<const Database*> views_;
  std::unique_ptr<Database> future_;
};

TEST_F(TargetModesTest, ColumnFreqExtrapolationApproximatesFuture) {
  ColumnFreqTool tool(set_->schema(), "User", "gender");
  ASSERT_TRUE(tool.SetTargetByExtrapolation(
                      views_, static_cast<double>(future_->TotalTuples()))
                  .ok());
  // Compare against the actual future distribution.
  ColumnFreqTool oracle(set_->schema(), "User", "gender");
  ASSERT_TRUE(oracle.SetTargetFromDataset(*future_).ok());
  const double rel =
      static_cast<double>(tool.Target().L1Distance(oracle.Target())) /
      static_cast<double>(oracle.Target().TotalMass());
  EXPECT_LT(rel, 0.15);
}

TEST_F(TargetModesTest, DegreeExtrapolationIsUsableAfterRepair) {
  DegreeDistributionTool tool(set_->schema());
  ASSERT_TRUE(tool.SetTargetByExtrapolation(
                      views_, static_cast<double>(future_->TotalTuples()))
                  .ok());
  // Extrapolated targets rarely satisfy D1 exactly; repair must fix
  // them for the bound database, then the tweak runs to zero.
  auto db = set_->Materialize(6).ValueOrAbort();
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  ASSERT_TRUE(tool.RepairTarget().ok());
  ASSERT_TRUE(tool.CheckTargetFeasible().ok()) << tool.CheckTargetFeasible();
  Rng rng(2);
  TweakContext ctx(db.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  EXPECT_LT(tool.Error(), 1e-9);
  tool.Unbind();
}

TEST_F(TargetModesTest, ExtrapolationNeedsEnoughSnapshots) {
  ColumnFreqTool tool(set_->schema(), "User", "gender");
  const std::vector<const Database*> one = {views_[0]};
  EXPECT_FALSE(tool.SetTargetByExtrapolation(one, 1e4).ok());
}

TEST_F(TargetModesTest, UserInputModeOverridesExtraction) {
  ColumnFreqTool tool(set_->schema(), "User", "gender");
  ASSERT_TRUE(tool.SetTargetFromDataset(*future_).ok());
  FrequencyDistribution manual(1);
  manual.Add({0}, 7);
  ASSERT_TRUE(tool.SetTargetDistribution(manual).ok());
  EXPECT_EQ(tool.Target().Count({0}), 7);
  EXPECT_EQ(tool.Target().NumKeys(), 1);
}

TEST_F(TargetModesTest, GenericExtrapolatorDropsVanishingKeys) {
  // A key that shrinks across snapshots extrapolates below min_count
  // and is dropped.
  FrequencyDistribution d1(1), d2(1), d3(1);
  d1.Add({1}, 30);
  d2.Add({1}, 20);
  d3.Add({1}, 10);
  // Fake databases are overkill here; exercise the poly-fit direction
  // using the stats API via databases of different size.
  std::vector<const Database*> views = {views_[0], views_[1], views_[2]};
  int call = 0;
  auto extract = [&](const Database&) {
    return call++ == 0 ? d1 : (call == 2 ? d2 : d3);
  };
  const double big = static_cast<double>(views_[2]->TotalTuples()) * 10;
  const auto predicted =
      ExtrapolateDistribution(views, extract, big).ValueOrAbort();
  EXPECT_EQ(predicted.Count({1}), 0);  // extrapolates negative -> dropped
}

}  // namespace
}  // namespace aspect
