// Tests for the modification log (audit/replay) and the coordinator's
// rollback-on-regression policy.
#include <gtest/gtest.h>

#include "aspect/coordinator.h"
#include "properties/coappear.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "relational/modlog.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

namespace aspect {
namespace {

TEST(ModLogTest, RecordsAndSummarizes) {
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 5).ValueOrAbort();
  auto db = gen.Materialize(2).ValueOrAbort();
  ModificationLog log(db.get());
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Album_Heard", {0, 1}, {0},
                            {Value(int64_t{0})}))
                  .ok());
  TupleId nt = kInvalidTuple;
  ASSERT_TRUE(db->Apply(Modification::InsertTuple(
                            "User_Fan",
                            {Value(int64_t{0}), Value(int64_t{1}),
                             Value(int64_t{1})}),
                        &nt)
                  .ok());
  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("User_Fan", nt)).ok());
  EXPECT_EQ(log.size(), 3);
  const auto summary = log.Summarize();
  EXPECT_EQ(summary.at("Album_Heard").cells_written, 2);
  EXPECT_EQ(summary.at("User_Fan").rows_inserted, 1);
  EXPECT_EQ(summary.at("User_Fan").rows_deleted, 1);
  EXPECT_NE(log.ToString().find("Album_Heard"), std::string::npos);
}

TEST(ModLogTest, PauseResume) {
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 5).ValueOrAbort();
  auto db = gen.Materialize(2).ValueOrAbort();
  ModificationLog log(db.get());
  log.Pause();
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Album_Heard", {0}, {0}, {Value(int64_t{0})}))
                  .ok());
  EXPECT_EQ(log.size(), 0);
  log.Resume();
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Album_Heard", {0}, {0}, {Value(int64_t{1})}))
                  .ok());
  EXPECT_EQ(log.size(), 1);
}

TEST(ModLogTest, ReplayReproducesTweakedDatabase) {
  // Record a whole tweaking run, replay it on a clone of the starting
  // state, and compare every table cell.
  auto gen = GenerateDataset(DoubanMusicLike(0.25), 15).ValueOrAbort();
  auto truth = gen.Materialize(3).ValueOrAbort();
  RandScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(1).ValueOrAbort(),
                           gen.SnapshotSizes(3), 15)
                    .ValueOrAbort();
  auto start = scaled->Clone();

  ModificationLog log(scaled.get());
  Coordinator coordinator;
  coordinator.AddTool(std::make_unique<LinearPropertyTool>(truth->schema()));
  coordinator.AddTool(
      std::make_unique<CoappearPropertyTool>(truth->schema()));
  coordinator.SetTargetsFromDataset(*truth).Check();
  CoordinatorOptions opts;
  opts.seed = 2;
  coordinator.Run(scaled.get(), {1, 0}, opts).ValueOrAbort();
  ASSERT_GT(log.size(), 0);

  ASSERT_TRUE(log.ReplayOnto(start.get()).ok());
  for (int t = 0; t < scaled->num_tables(); ++t) {
    const Table& a = scaled->table(t);
    const Table& b = start->table(t);
    ASSERT_EQ(a.NumSlots(), b.NumSlots()) << a.name();
    for (TupleId tid = 0; tid < a.NumSlots(); ++tid) {
      ASSERT_EQ(a.IsLive(tid), b.IsLive(tid)) << a.name() << " " << tid;
      if (a.IsLive(tid)) {
        ASSERT_EQ(a.GetRow(tid), b.GetRow(tid)) << a.name() << " " << tid;
      }
    }
  }
}

TEST(RollbackTest, RegressionStepsAreUndone) {
  // Order P-C-L on Rand data: without rollback, the middle tools can
  // leave earlier-enforced properties worse; with rollback the summed
  // guarded error never increases across steps.
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 17).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(1).ValueOrAbort(),
                           gen.SnapshotSizes(4), 17)
                    .ValueOrAbort();
  Coordinator coordinator;
  const int li = coordinator.AddTool(
      std::make_unique<LinearPropertyTool>(truth->schema()));
  const int co = coordinator.AddTool(
      std::make_unique<CoappearPropertyTool>(truth->schema()));
  const int pa = coordinator.AddTool(
      std::make_unique<PairwisePropertyTool>(truth->schema()));
  coordinator.SetTargetsFromDataset(*truth).Check();
  CoordinatorOptions opts;
  opts.seed = 23;
  opts.iterations = 2;
  opts.rollback_on_regression = true;
  const auto report =
      coordinator.Run(scaled.get(), {pa, co, li}, opts).ValueOrAbort();
  // Every accepted step ends at most at its starting error.
  for (const ToolReport& step : report.steps) {
    EXPECT_LE(step.error_after, step.error_before + 1e-9) << step.tool;
  }
  EXPECT_LT(report.final_errors[static_cast<size_t>(li)], 0.05);
  (void)co;
}

TEST(DatabaseCopyTest, CopyContentFromRestoresState) {
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 9).ValueOrAbort();
  auto db = gen.Materialize(2).ValueOrAbort();
  auto snapshot = db->Clone();
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Album_Heard", {0}, {0}, {Value(int64_t{0})}))
                  .ok());
  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("User_Fan", 0)).ok());
  ASSERT_TRUE(db->CopyContentFrom(*snapshot).ok());
  EXPECT_EQ(db->FindTable("User_Fan")->NumTuples(),
            snapshot->FindTable("User_Fan")->NumTuples());
  EXPECT_TRUE(db->FindTable("User_Fan")->IsLive(0));
}

}  // namespace
}  // namespace aspect
