// Tests for the modification log (audit/replay) and the coordinator's
// rollback-on-regression policy.
#include <gtest/gtest.h>

#include "aspect/coordinator.h"
#include "properties/coappear.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "relational/modlog.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

namespace aspect {
namespace {

// Byte-level equality: slots, tombstones, and every cell's state (a
// kNull cell is not a kEmpty cell even though both read back as Null).
void ExpectDatabasesIdentical(const Database& a, const Database& b) {
  ASSERT_EQ(a.num_tables(), b.num_tables());
  for (int t = 0; t < a.num_tables(); ++t) {
    const Table& ta = a.table(t);
    const Table& tb = b.table(t);
    ASSERT_EQ(ta.NumSlots(), tb.NumSlots()) << ta.name();
    ASSERT_EQ(ta.NumTuples(), tb.NumTuples()) << ta.name();
    for (TupleId tid = 0; tid < ta.NumSlots(); ++tid) {
      ASSERT_EQ(ta.IsLive(tid), tb.IsLive(tid)) << ta.name() << " " << tid;
      for (int c = 0; c < ta.num_columns(); ++c) {
        ASSERT_EQ(static_cast<int>(ta.column(c).state(tid)),
                  static_cast<int>(tb.column(c).state(tid)))
            << ta.name() << " " << tid << " col " << c;
        if (ta.column(c).IsValue(tid)) {
          ASSERT_EQ(ta.column(c).Get(tid), tb.column(c).Get(tid))
              << ta.name() << " " << tid << " col " << c;
        }
      }
    }
  }
}

TEST(ModLogTest, RecordsAndSummarizes) {
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 5).ValueOrAbort();
  auto db = gen.Materialize(2).ValueOrAbort();
  ModificationLog log(db.get());
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Album_Heard", {0, 1}, {0},
                            {Value(int64_t{0})}))
                  .ok());
  TupleId nt = kInvalidTuple;
  ASSERT_TRUE(db->Apply(Modification::InsertTuple(
                            "User_Fan",
                            {Value(int64_t{0}), Value(int64_t{1}),
                             Value(int64_t{1})}),
                        &nt)
                  .ok());
  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("User_Fan", nt)).ok());
  EXPECT_EQ(log.size(), 3);
  const auto summary = log.Summarize();
  EXPECT_EQ(summary.at("Album_Heard").cells_written, 2);
  EXPECT_EQ(summary.at("User_Fan").rows_inserted, 1);
  EXPECT_EQ(summary.at("User_Fan").rows_deleted, 1);
  EXPECT_NE(log.ToString().find("Album_Heard"), std::string::npos);
}

TEST(ModLogTest, PauseResume) {
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 5).ValueOrAbort();
  auto db = gen.Materialize(2).ValueOrAbort();
  ModificationLog log(db.get());
  log.Pause();
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Album_Heard", {0}, {0}, {Value(int64_t{0})}))
                  .ok());
  EXPECT_EQ(log.size(), 0);
  log.Resume();
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Album_Heard", {0}, {0}, {Value(int64_t{1})}))
                  .ok());
  EXPECT_EQ(log.size(), 1);
}

TEST(ModLogTest, ReplayReproducesTweakedDatabase) {
  // Record a whole tweaking run, replay it on a clone of the starting
  // state, and compare every table cell.
  auto gen = GenerateDataset(DoubanMusicLike(0.25), 15).ValueOrAbort();
  auto truth = gen.Materialize(3).ValueOrAbort();
  RandScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(1).ValueOrAbort(),
                           gen.SnapshotSizes(3), 15)
                    .ValueOrAbort();
  auto start = scaled->Clone();

  ModificationLog log(scaled.get());
  Coordinator coordinator;
  coordinator.AddTool(std::make_unique<LinearPropertyTool>(truth->schema()));
  coordinator.AddTool(
      std::make_unique<CoappearPropertyTool>(truth->schema()));
  coordinator.SetTargetsFromDataset(*truth).Check();
  CoordinatorOptions opts;
  opts.seed = 2;
  coordinator.Run(scaled.get(), {1, 0}, opts).ValueOrAbort();
  ASSERT_GT(log.size(), 0);

  ASSERT_TRUE(log.ReplayOnto(start.get()).ok());
  for (int t = 0; t < scaled->num_tables(); ++t) {
    const Table& a = scaled->table(t);
    const Table& b = start->table(t);
    ASSERT_EQ(a.NumSlots(), b.NumSlots()) << a.name();
    for (TupleId tid = 0; tid < a.NumSlots(); ++tid) {
      ASSERT_EQ(a.IsLive(tid), b.IsLive(tid)) << a.name() << " " << tid;
      if (a.IsLive(tid)) {
        ASSERT_EQ(a.GetRow(tid), b.GetRow(tid)) << a.name() << " " << tid;
      }
    }
  }
}

TEST(ModLogTest, UndoOntoRevertsAllOpKinds) {
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 5).ValueOrAbort();
  auto db = gen.Materialize(2).ValueOrAbort();
  auto original = db->Clone();

  ModificationLog log(db.get());
  // One of each op kind, including an erase/re-fill pair on the same
  // cell so the undo has to restore the intermediate kEmpty state.
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Album_Heard", {0, 1}, {0},
                            {Value(int64_t{7})}))
                  .ok());
  ASSERT_TRUE(
      db->Apply(Modification::DeleteValues("Album_Heard", {0}, {0})).ok());
  ASSERT_TRUE(db->Apply(Modification::InsertValues(
                            "Album_Heard", {0}, {0}, {Value(int64_t{9})}))
                  .ok());
  TupleId nt = kInvalidTuple;
  ASSERT_TRUE(db->Apply(Modification::InsertTuple(
                            "User_Fan",
                            {Value(int64_t{0}), Value(int64_t{1}),
                             Value(int64_t{1})}),
                        &nt)
                  .ok());
  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("User_Fan", 0)).ok());
  ASSERT_EQ(log.size(), 5);

  ASSERT_TRUE(log.UndoOnto(db.get()).ok());
  ExpectDatabasesIdentical(*db, *original);
}

TEST(ModLogTest, UndoOntoRevertsATweakingRun) {
  // Record a whole tweaking run, undo it in place, and expect the
  // starting state back byte for byte.
  auto gen = GenerateDataset(DoubanMusicLike(0.25), 15).ValueOrAbort();
  auto truth = gen.Materialize(3).ValueOrAbort();
  RandScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(1).ValueOrAbort(),
                           gen.SnapshotSizes(3), 15)
                    .ValueOrAbort();
  auto start = scaled->Clone();

  ModificationLog log(scaled.get());
  Coordinator coordinator;
  coordinator.AddTool(std::make_unique<LinearPropertyTool>(truth->schema()));
  coordinator.AddTool(
      std::make_unique<CoappearPropertyTool>(truth->schema()));
  coordinator.SetTargetsFromDataset(*truth).Check();
  CoordinatorOptions opts;
  opts.seed = 2;
  coordinator.Run(scaled.get(), {1, 0}, opts).ValueOrAbort();
  ASSERT_GT(log.size(), 0);

  ASSERT_TRUE(log.UndoOnto(scaled.get()).ok());
  ExpectDatabasesIdentical(*scaled, *start);
}

TEST(RollbackTest, RegressionStepsAreUndone) {
  // Order P-C-L on Rand data: without rollback, the middle tools can
  // leave earlier-enforced properties worse; with rollback the summed
  // guarded error never increases across steps.
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 17).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(1).ValueOrAbort(),
                           gen.SnapshotSizes(4), 17)
                    .ValueOrAbort();
  Coordinator coordinator;
  const int li = coordinator.AddTool(
      std::make_unique<LinearPropertyTool>(truth->schema()));
  const int co = coordinator.AddTool(
      std::make_unique<CoappearPropertyTool>(truth->schema()));
  const int pa = coordinator.AddTool(
      std::make_unique<PairwisePropertyTool>(truth->schema()));
  coordinator.SetTargetsFromDataset(*truth).Check();
  CoordinatorOptions opts;
  opts.seed = 23;
  opts.iterations = 2;
  opts.rollback_on_regression = true;
  const auto report =
      coordinator.Run(scaled.get(), {pa, co, li}, opts).ValueOrAbort();
  // Every accepted step ends at most at its starting error.
  for (const ToolReport& step : report.steps) {
    EXPECT_LE(step.error_after, step.error_before + 1e-9) << step.tool;
  }
  EXPECT_LT(report.final_errors[static_cast<size_t>(li)], 0.05);
  (void)co;
}

TEST(RollbackTest, UndoLogMatchesCloneRollback) {
  // The undo-log restore must be indistinguishable from the deep-copy
  // restore: same per-step reports, same final errors, and the two
  // final databases byte-identical.
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 17).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler scaler;
  auto base = scaler
                  .Scale(*gen.Materialize(1).ValueOrAbort(),
                         gen.SnapshotSizes(4), 17)
                  .ValueOrAbort();

  auto run_with = [&](RollbackMode mode, std::unique_ptr<Database>* out) {
    Coordinator coordinator;
    const int li = coordinator.AddTool(
        std::make_unique<LinearPropertyTool>(truth->schema()));
    const int co = coordinator.AddTool(
        std::make_unique<CoappearPropertyTool>(truth->schema()));
    const int pa = coordinator.AddTool(
        std::make_unique<PairwisePropertyTool>(truth->schema()));
    coordinator.SetTargetsFromDataset(*truth).Check();
    CoordinatorOptions opts;
    opts.seed = 23;
    opts.iterations = 2;
    opts.rollback_on_regression = true;
    opts.rollback_mode = mode;
    *out = base->Clone();
    (void)co;
    return coordinator.Run(out->get(), {pa, co, li}, opts).ValueOrAbort();
  };

  std::unique_ptr<Database> via_clone, via_undo;
  const RunReport clone_report = run_with(RollbackMode::kClone, &via_clone);
  const RunReport undo_report = run_with(RollbackMode::kUndoLog, &via_undo);

  ASSERT_EQ(clone_report.steps.size(), undo_report.steps.size());
  bool any_rolled_back = false;
  for (size_t i = 0; i < clone_report.steps.size(); ++i) {
    const ToolReport& a = clone_report.steps[i];
    const ToolReport& b = undo_report.steps[i];
    EXPECT_EQ(a.tool, b.tool) << i;
    EXPECT_EQ(a.error_before, b.error_before) << i;
    EXPECT_EQ(a.error_after, b.error_after) << i;
    EXPECT_EQ(a.applied, b.applied) << i;
    EXPECT_EQ(a.vetoed, b.vetoed) << i;
    EXPECT_EQ(a.rolled_back, b.rolled_back) << i;
    any_rolled_back = any_rolled_back || b.rolled_back;
  }
  EXPECT_TRUE(any_rolled_back)
      << "scenario never exercised the rollback path";
  EXPECT_EQ(clone_report.final_errors, undo_report.final_errors);
  ExpectDatabasesIdentical(*via_clone, *via_undo);
}

TEST(DatabaseCopyTest, CopyContentFromRestoresState) {
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 9).ValueOrAbort();
  auto db = gen.Materialize(2).ValueOrAbort();
  auto snapshot = db->Clone();
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Album_Heard", {0}, {0}, {Value(int64_t{0})}))
                  .ok());
  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("User_Fan", 0)).ok());
  ASSERT_TRUE(db->CopyContentFrom(*snapshot).ok());
  EXPECT_EQ(db->FindTable("User_Fan")->NumTuples(),
            snapshot->FindTable("User_Fan")->NumTuples());
  EXPECT_TRUE(db->FindTable("User_Fan")->IsLive(0));
}

}  // namespace
}  // namespace aspect
