// Tests for the query engine and the per-dataset Q1-Q4 suites.
#include <gtest/gtest.h>

#include "query/engine.h"
#include "query/queries.h"
#include "workload/generator.h"

namespace aspect {
namespace {

// Tiny hand-checked dataset: User, Post(author), Comment(post, user).
Schema QSchema() {
  Schema s;
  s.name = "q";
  s.tables.push_back({"User", {{"g", ColumnType::kInt64, ""}}});
  s.tables.push_back({"Post", {{"author", ColumnType::kForeignKey, "User"}}});
  s.tables.push_back({"Comment",
                      {{"post", ColumnType::kForeignKey, "Post"},
                       {"user", ColumnType::kForeignKey, "User"}}});
  s.user_table = "User";
  ResponseSpec r;
  r.response_table = "Comment";
  r.post_col = 0;
  r.responder_col = 1;
  r.post_table = "Post";
  r.author_col = 0;
  s.responses.push_back(r);
  return s;
}

std::unique_ptr<Database> QDb() {
  auto db = Database::Create(QSchema()).ValueOrAbort();
  for (int i = 0; i < 5; ++i) {
    db->FindTable("User")->Append({Value(int64_t{0})}).status().Check();
  }
  // Posts: p0 by u0, p1 by u0, p2 by u1, p3 by u2.
  for (const int64_t a : {0, 0, 1, 2}) {
    db->FindTable("Post")->Append({Value(a)}).status().Check();
  }
  // Comments: (p0,u1), (p0,u2), (p2,u0), (p2,u0), (p3,u3).
  const std::pair<int64_t, int64_t> comments[] = {
      {0, 1}, {0, 2}, {2, 0}, {2, 0}, {3, 3}};
  for (const auto& [p, u] : comments) {
    db->FindTable("Comment")->Append({Value(p), Value(u)}).status().Check();
  }
  return db;
}

TEST(EngineTest, CountDistinctFk) {
  auto db = QDb();
  EXPECT_EQ(CountDistinctFk(*db, "Comment", "post").ValueOrAbort(), 3);
  EXPECT_EQ(CountDistinctFk(*db, "Comment", "user").ValueOrAbort(), 4);
  EXPECT_FALSE(CountDistinctFk(*db, "Nope", "x").ok());
  EXPECT_FALSE(CountDistinctFk(*db, "Comment", "nope").ok());
}

TEST(EngineTest, FanOut) {
  auto db = QDb();
  const auto fan = FanOut(*db, "Comment", "post").ValueOrAbort();
  EXPECT_EQ(fan.at(0), 2);
  EXPECT_EQ(fan.at(2), 2);
  EXPECT_EQ(fan.at(3), 1);
  EXPECT_EQ(fan.count(1), 0u);
}

TEST(EngineTest, DistinctPerGroup) {
  auto db = QDb();
  const auto d =
      DistinctPerGroup(*db, "Comment", "post", "user").ValueOrAbort();
  EXPECT_EQ(d.at(0), 2);  // p0 commented by u1, u2
  EXPECT_EQ(d.at(2), 1);  // p2 commented by u0 twice
}

TEST(EngineTest, UsersWithRespondedPost) {
  auto db = QDb();
  // Authors of commented posts: u0 (p0), u1 (p2), u2 (p3) -> 3.
  EXPECT_EQ(CountUsersWithRespondedPost(*db, db->schema().responses[0])
                .ValueOrAbort(),
            3);
}

TEST(EngineTest, AtMostKUsers) {
  auto db = QDb();
  EXPECT_EQ(CountEntitiesWithAtMostKUsers(*db, "Comment", "post", "user", 1)
                .ValueOrAbort(),
            2);  // p2, p3
  EXPECT_EQ(CountEntitiesWithAtMostKUsers(*db, "Comment", "post", "user", 10)
                .ValueOrAbort(),
            3);
}

TEST(EngineTest, AvgDistinctUsersPerEntity) {
  auto db = QDb();
  // Distinct commenters: p0:2, p1:0, p2:1, p3:1 -> 4/4 = 1.0.
  EXPECT_DOUBLE_EQ(
      AvgDistinctUsersPerEntity(*db, "Post", "Comment", "post", "user")
          .ValueOrAbort(),
      1.0);
}

TEST(EngineTest, InteractingUserPairs) {
  auto db = QDb();
  // Pairs: {u1,u0} (p0 author u0), {u2,u0}, {u0,u1} (p2) = same as
  // {u0,u1}!, {u3,u2}. Unordered distinct: {0,1}, {0,2}, {2,3} -> 3.
  EXPECT_EQ(
      CountInteractingUserPairs(*db, db->schema().responses[0])
          .ValueOrAbort(),
      3);
}

TEST(QuerySuiteTest, AllDatasetsHaveFourQueries) {
  for (const auto factory :
       {&XiamiLike, &DoubanMovieLike, &DoubanMusicLike, &DoubanBookLike,
        &RetailLike}) {
    const Schema schema = factory(0.3).ToSchema();
    const auto suite = QuerySuiteFor(schema).ValueOrAbort();
    ASSERT_EQ(suite.size(), 4u) << schema.name;
    auto gen = GenerateDataset(factory(0.3), 17).ValueOrAbort();
    auto db = gen.Materialize(2).ValueOrAbort();
    for (const NamedQuery& q : suite) {
      const auto v = q.eval(*db);
      ASSERT_TRUE(v.ok()) << schema.name << " " << q.name << ": "
                          << v.status();
      EXPECT_GE(v.ValueOrDie(), 0.0) << schema.name << " " << q.name;
    }
  }
}

TEST(QuerySuiteTest, UnknownSchemaRejected) {
  Schema s;
  s.name = "mystery";
  EXPECT_FALSE(QuerySuiteFor(s).ok());
}

TEST(QuerySuiteTest, QueryErrorRelative) {
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 23).ValueOrAbort();
  auto d2 = gen.Materialize(2).ValueOrAbort();
  auto d4 = gen.Materialize(4).ValueOrAbort();
  const auto suite = QuerySuiteFor(gen.schema()).ValueOrAbort();
  for (const NamedQuery& q : suite) {
    // Identical datasets: zero error.
    EXPECT_DOUBLE_EQ(QueryError(q, *d4, *d4).ValueOrAbort(), 0.0) << q.name;
    // Different snapshots: non-trivial error for counting queries.
    EXPECT_GE(QueryError(q, *d4, *d2).ValueOrAbort(), 0.0) << q.name;
  }
}

}  // namespace
}  // namespace aspect
