// Tests for src/scaler: the size-scaler contract (exact sizes for
// Dscaler/Rand, integer factor for ReX; valid FKs for all).
#include <gtest/gtest.h>

#include "relational/integrity.h"
#include "properties/degree.h"
#include "scaler/sampling_scaler.h"
#include "scaler/size_scaler.h"
#include "scaler/upsizer.h"
#include "workload/generator.h"

namespace aspect {
namespace {

class ScalerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto gen = GenerateDataset(DoubanMusicLike(0.5), 21);
    ASSERT_TRUE(gen.ok()) << gen.status();
    set_ = std::make_unique<SnapshotSet>(std::move(gen).ValueOrDie());
    source_ = set_->Materialize(2).ValueOrAbort();
    targets_ = set_->SnapshotSizes(4);
  }
  std::unique_ptr<SnapshotSet> set_;
  std::unique_ptr<Database> source_;
  std::vector<int64_t> targets_;
};

TEST_F(ScalerTest, RandHitsExactSizesWithValidFks) {
  RandScaler scaler;
  auto scaled = scaler.Scale(*source_, targets_, 3).ValueOrAbort();
  for (int t = 0; t < scaled->num_tables(); ++t) {
    EXPECT_EQ(scaled->table(t).NumTuples(),
              targets_[static_cast<size_t>(t)])
        << scaled->table(t).name();
  }
  EXPECT_TRUE(CheckIntegrity(*scaled).ok());
}

TEST_F(ScalerTest, DscalerHitsExactSizesWithValidFks) {
  DscalerScaler scaler;
  auto scaled = scaler.Scale(*source_, targets_, 3).ValueOrAbort();
  for (int t = 0; t < scaled->num_tables(); ++t) {
    EXPECT_EQ(scaled->table(t).NumTuples(),
              targets_[static_cast<size_t>(t)]);
  }
  EXPECT_TRUE(CheckIntegrity(*scaled).ok());
}

TEST_F(ScalerTest, RexScalesByIntegerFactor) {
  RexScaler scaler;
  const int64_t s = RexScaler::Factor(*source_, targets_);
  EXPECT_GE(s, 2);
  auto scaled = scaler.Scale(*source_, targets_, 3).ValueOrAbort();
  for (int t = 0; t < scaled->num_tables(); ++t) {
    EXPECT_EQ(scaled->table(t).NumTuples(),
              source_->table(t).NumTuples() * s);
  }
  EXPECT_TRUE(CheckIntegrity(*scaled).ok());
}

TEST_F(ScalerTest, RexReplicaWiringPreservesDegrees) {
  // Replica r of a child references replica r of its parent, so each
  // parent replica's fan-out equals the source parent's fan-out.
  RexScaler scaler;
  auto scaled = scaler.Scale(*source_, targets_, 3).ValueOrAbort();
  const int64_t s = RexScaler::Factor(*source_, targets_);
  const Table* src_child = source_->FindTable("Album_Comment");
  const Table* dst_child = scaled->FindTable("Album_Comment");
  // Count fan-out of source Album 0 and of its replica 0 (new id 0).
  auto fanout = [](const Table* t, TupleId album) {
    int64_t n = 0;
    t->ForEachLive([&](TupleId tid) {
      if (t->column(0).GetInt(tid) == album) ++n;
    });
    return n;
  };
  EXPECT_EQ(fanout(src_child, 0), fanout(dst_child, 0));
  ASSERT_GE(s, 2);
  EXPECT_EQ(fanout(src_child, 0), fanout(dst_child, 1));
}

TEST_F(ScalerTest, DscalerPreservesJointTemplates) {
  // Synthetic tuple j < |src| reuses source tuple j's template with
  // deterministic proportional remap, so round 0 keeps correlations.
  DscalerScaler scaler;
  auto scaled = scaler.Scale(*source_, targets_, 3).ValueOrAbort();
  const Table* src = source_->FindTable("Review");
  const Table* dst = scaled->FindTable("Review");
  // The "kind" attribute column is copied verbatim from the template.
  const int kind_col = src->ColumnIndex("kind");
  ASSERT_GE(kind_col, 0);
  for (TupleId t = 0; t < std::min<int64_t>(src->NumTuples(), 40); ++t) {
    EXPECT_EQ(src->column(kind_col).GetInt(t),
              dst->column(kind_col).GetInt(t));
  }
}

TEST_F(ScalerTest, ScaleDownWorks) {
  std::vector<int64_t> down = set_->SnapshotSizes(1);
  for (auto& v : down) v = std::max<int64_t>(1, v / 2);
  for (const char* name : {"Dscaler", "Rand"}) {
    std::unique_ptr<SizeScaler> scaler;
    if (std::string(name) == "Dscaler") {
      scaler = std::make_unique<DscalerScaler>();
    } else {
      scaler = std::make_unique<RandScaler>();
    }
    auto scaled = scaler->Scale(*source_, down, 5).ValueOrAbort();
    EXPECT_TRUE(CheckIntegrity(*scaled).ok()) << name;
    for (int t = 0; t < scaled->num_tables(); ++t) {
      EXPECT_EQ(scaled->table(t).NumTuples(), down[static_cast<size_t>(t)]);
    }
  }
}

TEST_F(ScalerTest, BadTargetsRejected) {
  RandScaler scaler;
  EXPECT_FALSE(scaler.Scale(*source_, {1, 2}, 3).ok());
  std::vector<int64_t> zeros(targets_.size(), 0);
  EXPECT_FALSE(scaler.Scale(*source_, zeros, 3).ok());
}

TEST_F(ScalerTest, BuiltinScalersOrdered) {
  const auto scalers = BuiltinScalers();
  ASSERT_EQ(scalers.size(), 3u);
  EXPECT_EQ(scalers[0]->name(), "Dscaler");
  EXPECT_EQ(scalers[1]->name(), "ReX");
  EXPECT_EQ(scalers[2]->name(), "Rand");
}

TEST_F(ScalerTest, DeterministicInSeed) {
  DscalerScaler scaler;
  auto a = scaler.Scale(*source_, targets_, 9).ValueOrAbort();
  auto b = scaler.Scale(*source_, targets_, 9).ValueOrAbort();
  const Table& ta = a->table(4);
  const Table& tb = b->table(4);
  ASSERT_EQ(ta.NumTuples(), tb.NumTuples());
  for (TupleId t = 0; t < std::min<int64_t>(ta.NumTuples(), 50); ++t) {
    EXPECT_EQ(ta.GetRow(t), tb.GetRow(t));
  }
}


TEST_F(ScalerTest, UpSizerHitsExactSizesWithValidFks) {
  UpSizerScaler scaler;
  auto scaled = scaler.Scale(*source_, targets_, 3).ValueOrAbort();
  for (int t = 0; t < scaled->num_tables(); ++t) {
    EXPECT_EQ(scaled->table(t).NumTuples(),
              targets_[static_cast<size_t>(t)]);
  }
  EXPECT_TRUE(CheckIntegrity(*scaled).ok());
}

TEST_F(ScalerTest, UpSizerPreservesPrimaryDegreeShapeBetterThanRand) {
  // UpSizeR regenerates the primary FK edge from its degree
  // distribution, so its initial degree error should beat Rand's.
  auto measure = [&](const SizeScaler& scaler) {
    auto scaled = scaler.Scale(*source_, targets_, 9).ValueOrAbort();
    DegreeDistributionTool tool(source_->schema());
    tool.SetTargetFromDataset(*set_->Materialize(4).ValueOrAbort()).Check();
    tool.Bind(scaled.get()).Check();
    tool.RepairTarget().Check();
    const double err = tool.Error();
    tool.Unbind();
    return err;
  };
  UpSizerScaler upsizer;
  RandScaler rand;
  EXPECT_LT(measure(upsizer), measure(rand));
}

TEST_F(ScalerTest, UpSizerDeterministicInSeed) {
  UpSizerScaler scaler;
  auto a = scaler.Scale(*source_, targets_, 5).ValueOrAbort();
  auto b = scaler.Scale(*source_, targets_, 5).ValueOrAbort();
  const Table& ta = a->table(3);
  const Table& tb = b->table(3);
  ASSERT_EQ(ta.NumTuples(), tb.NumTuples());
  for (TupleId t = 0; t < std::min<int64_t>(ta.NumTuples(), 50); ++t) {
    EXPECT_EQ(ta.GetRow(t), tb.GetRow(t));
  }
}

}  // namespace
}  // namespace aspect
