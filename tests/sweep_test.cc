// Parameterized sufficiency sweeps: for each (dataset, scaler, seed)
// cell, the full pipeline must satisfy the framework's invariants -
// the paper's sufficiency theorems say exact enforcement is always
// possible for feasible targets, and the pipeline must never corrupt
// the relational substrate.
#include <gtest/gtest.h>

#include <tuple>

#include "measure/runner.h"
#include "relational/integrity.h"

namespace aspect {
namespace {

using SweepParam = std::tuple<const char*, const char*, uint64_t>;

class PipelineSweep : public ::testing::TestWithParam<SweepParam> {};

DatasetBlueprint BlueprintByName(const std::string& name) {
  if (name == "DoubanMusicLike") return DoubanMusicLike(0.25);
  if (name == "DoubanBookLike") return DoubanBookLike(0.25);
  if (name == "DoubanMovieLike") return DoubanMovieLike(0.25);
  return XiamiLike(0.2);
}

TEST_P(PipelineSweep, InvariantsHoldAcrossTheGrid) {
  const auto& [dataset, scaler, seed] = GetParam();
  ExperimentConfig config;
  config.blueprint = BlueprintByName(dataset);
  config.seed = seed;
  config.scaler = scaler;
  config.order = OrderFromLabel("C-P-L").ValueOrAbort();
  const ExperimentResult r = RunExperiment(config).ValueOrAbort();

  // Sufficiency: the last tool always reaches (near-)zero error.
  // The bound is 1e-3 rather than 0: on these deliberately tiny tables
  // a single off-by-one entry that needs a multi-move composition to
  // fix (which the single-move search does not attempt) costs ~3e-4;
  // at the paper's dataset sizes the same state is unreachable.
  EXPECT_LT(r.after.linear, 1e-3) << "linear ran last";
  // Everything improves (or stays) relative to the baseline.
  EXPECT_LE(r.after.linear, r.before.linear + 1e-12);
  EXPECT_LE(r.after.coappear, r.before.coappear + 1e-12);
  EXPECT_LE(r.after.pairwise, r.before.pairwise + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineSweep,
    ::testing::Combine(::testing::Values("DoubanMusicLike",
                                         "DoubanBookLike",
                                         "DoubanMovieLike", "XiamiLike"),
                       ::testing::Values("Dscaler", "ReX", "Rand"),
                       ::testing::Values(1001u, 1002u)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param) + "_" +
             std::to_string(std::get<2>(info.param));
    });

class OrderSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(OrderSweep, LastToolIsExactForEveryPermutation) {
  ExperimentConfig config;
  config.blueprint = DoubanMusicLike(0.25);
  config.seed = 77;
  config.scaler = "Rand";
  config.order = OrderFromLabel(GetParam()).ValueOrAbort();
  const ExperimentResult r = RunExperiment(config).ValueOrAbort();
  const std::string& last = config.order.back();
  const double last_error = last == "linear"     ? r.after.linear
                            : last == "coappear" ? r.after.coappear
                                                 : r.after.pairwise;
  EXPECT_LT(last_error, 1e-4) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllOrders, OrderSweep,
                         ::testing::Values("L-C-P", "L-P-C", "C-L-P",
                                           "C-P-L", "P-L-C", "P-C-L"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace aspect
