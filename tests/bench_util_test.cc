// Tests for the bench report writer's JSON string escaping: a hostile
// name (embedded quotes, backslashes, newlines, tabs, and raw control
// bytes) must round-trip through Escaped + a standard JSON unescape to
// the original bytes, and the escaped form must contain no raw control
// character (which JSON forbids inside strings).
#include <gtest/gtest.h>

#include <string>

#include "bench_util.h"

namespace aspect {
namespace bench {
namespace {

// Minimal JSON string unescape, the inverse a conforming reader
// applies: handles the two-character escapes Escaped emits plus the
// generic \u00XX form.
std::string Unescaped(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case '"':
        out.push_back('"');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 'b':
        out.push_back('\b');
        break;
      case 'f':
        out.push_back('\f');
        break;
      case 'u': {
        const std::string hex = s.substr(i + 1, 4);
        out.push_back(static_cast<char>(std::stoi(hex, nullptr, 16)));
        i += 4;
        break;
      }
      default:
        ADD_FAILURE() << "unknown escape \\" << s[i];
    }
  }
  return out;
}

TEST(BenchReportEscapeTest, HostileNameRoundTrips) {
  std::string hostile = "say \"hi\"\\ a\nb\tc\rd\be\ff";
  hostile.push_back('\x01');   // raw control byte -> 
  hostile.push_back('\x1f');   // boundary: last forbidden code point
  hostile.push_back('\x7f');   // DEL is legal raw in a JSON string
  const std::string escaped = BenchReport::Escaped(hostile);
  EXPECT_EQ(Unescaped(escaped), hostile);
}

TEST(BenchReportEscapeTest, EscapedFormHasNoRawControlCharacters) {
  std::string hostile;
  for (int c = 0; c < 0x20; ++c) {
    hostile.push_back(static_cast<char>(c == 0 ? 1 : c));
  }
  hostile += "\"\\plain";
  const std::string escaped = BenchReport::Escaped(hostile);
  for (const char c : escaped) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control byte survived escaping";
  }
  // Quotes and backslashes only ever appear as escape sequences.
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '"') {
      ASSERT_GT(i, 0u);
      EXPECT_EQ(escaped[i - 1], '\\');
    }
  }
  EXPECT_EQ(Unescaped(escaped), hostile);
}

TEST(BenchReportEscapeTest, CommonEscapesUseShortForms) {
  EXPECT_EQ(BenchReport::Escaped("a\nb"), "a\\nb");
  EXPECT_EQ(BenchReport::Escaped("a\tb"), "a\\tb");
  EXPECT_EQ(BenchReport::Escaped("a\rb"), "a\\rb");
  EXPECT_EQ(BenchReport::Escaped("a\"b"), "a\\\"b");
  EXPECT_EQ(BenchReport::Escaped("a\\b"), "a\\\\b");
  EXPECT_EQ(BenchReport::Escaped(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(BenchReport::Escaped("plain name-42"), "plain name-42");
}

}  // namespace
}  // namespace bench
}  // namespace aspect
