// Tests for the experiment runner: the full paper pipeline in one call.
#include <gtest/gtest.h>

#include "measure/runner.h"

namespace aspect {
namespace {

TEST(RunnerTest, PermutationLabels) {
  EXPECT_EQ(SixPermutations().size(), 6u);
  const auto order = OrderFromLabel("C-L-P").ValueOrAbort();
  EXPECT_EQ(order,
            (std::vector<std::string>{"coappear", "linear", "pairwise"}));
  EXPECT_FALSE(OrderFromLabel("X-Y-Z").ok());
  EXPECT_FALSE(OrderFromLabel("C-L").ok());
}

TEST(RunnerTest, FullPipelineReducesErrors) {
  ExperimentConfig config;
  config.blueprint = DoubanMusicLike(0.3);
  config.seed = 5;
  config.scaler = "Rand";
  config.order = OrderFromLabel("C-L-P").ValueOrAbort();
  config.run_queries = true;
  const ExperimentResult r = RunExperiment(config).ValueOrAbort();
  EXPECT_GT(r.before.linear, r.after.linear);
  EXPECT_GT(r.before.coappear, r.after.coappear);
  EXPECT_GT(r.before.pairwise, r.after.pairwise);
  EXPECT_LT(r.after.pairwise, 1e-6);  // last tool is exact
  ASSERT_EQ(r.query_errors_after.size(), 4u);
  double sum_before = 0, sum_after = 0;
  for (const auto& [name, err] : r.query_errors_before) sum_before += err;
  for (const auto& [name, err] : r.query_errors_after) sum_after += err;
  EXPECT_LT(sum_after, sum_before);
  EXPECT_GT(r.tweak_seconds, 0.0);
}

TEST(RunnerTest, NoTweakBaseline) {
  ExperimentConfig config;
  config.blueprint = DoubanMusicLike(0.3);
  config.seed = 5;
  config.scaler = "Rand";
  config.tweak = false;
  const ExperimentResult r = RunExperiment(config).ValueOrAbort();
  EXPECT_EQ(r.before.linear, r.after.linear);
  EXPECT_GT(r.before.linear, 0.0);
  EXPECT_TRUE(r.report.steps.empty());
}

TEST(RunnerTest, RexTargetsRepairedAutomatically) {
  ExperimentConfig config;
  config.blueprint = DoubanMusicLike(0.3);
  config.seed = 6;
  config.scaler = "ReX";
  config.order = OrderFromLabel("P-C-L").ValueOrAbort();
  const ExperimentResult r = RunExperiment(config).ValueOrAbort();
  EXPECT_LT(r.after.linear, 0.01);  // linear last: near exact
  EXPECT_LT(r.after.coappear, r.before.coappear + 1e-12);
}

TEST(RunnerTest, UnknownScalerRejected) {
  ExperimentConfig config;
  config.blueprint = DoubanMusicLike(0.2);
  config.scaler = "Magic";
  EXPECT_FALSE(RunExperiment(config).ok());
}

TEST(RunnerTest, UnknownToolRejected) {
  ExperimentConfig config;
  config.blueprint = DoubanMusicLike(0.2);
  config.order = {"linear", "magic", "pairwise"};
  EXPECT_FALSE(RunExperiment(config).ok());
}

TEST(RunnerTest, NegativeGenThreadsRejected) {
  ExperimentConfig config;
  config.blueprint = DoubanMusicLike(0.2);
  config.gen_threads = -1;
  const Result<ExperimentResult> r = RunExperiment(config);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("gen_threads"), std::string::npos);
}

TEST(RunnerTest, NegativePassThreadsRejected) {
  ExperimentConfig config;
  config.blueprint = DoubanMusicLike(0.2);
  config.pass_threads = -2;
  const Result<ExperimentResult> r = RunExperiment(config);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("pass_threads"), std::string::npos);
}

TEST(RunnerTest, ZeroBatchSizeRejected) {
  ExperimentConfig config;
  config.blueprint = DoubanMusicLike(0.2);
  config.batch_size = 0;
  const Result<ExperimentResult> r = RunExperiment(config);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("batch_size"), std::string::npos);
}

TEST(RunnerTest, ZeroIterationsRejected) {
  ExperimentConfig config;
  config.blueprint = DoubanMusicLike(0.2);
  config.iterations = 0;
  const Result<ExperimentResult> r = RunExperiment(config);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("iterations"), std::string::npos);
}

TEST(RunnerTest, DeterministicInSeed) {
  ExperimentConfig config;
  config.blueprint = DoubanMusicLike(0.25);
  config.seed = 9;
  config.scaler = "Dscaler";
  const ExperimentResult a = RunExperiment(config).ValueOrAbort();
  const ExperimentResult b = RunExperiment(config).ValueOrAbort();
  EXPECT_DOUBLE_EQ(a.after.linear, b.after.linear);
  EXPECT_DOUBLE_EQ(a.after.coappear, b.after.coappear);
  EXPECT_DOUBLE_EQ(a.after.pairwise, b.after.pairwise);
}

}  // namespace
}  // namespace aspect
