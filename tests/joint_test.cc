// Tests for the joint-distribution tool, including Theorem 7's
// shared-column lower bound.
#include <gtest/gtest.h>

#include "aspect/coordinator.h"
#include "properties/joint.h"
#include "workload/generator.h"

namespace aspect {
namespace {

Schema ThreeColSchema() {
  Schema s;
  s.name = "joint";
  s.tables.push_back({"T",
                      {{"a", ColumnType::kInt64, ""},
                       {"b", ColumnType::kInt64, ""},
                       {"c", ColumnType::kInt64, ""}}});
  return s;
}

std::unique_ptr<Database> ThreeColDb(
    const std::vector<std::array<int64_t, 3>>& rows) {
  auto db = Database::Create(ThreeColSchema()).ValueOrAbort();
  for (const auto& r : rows) {
    db->FindTable("T")
        ->Append({Value(r[0]), Value(r[1]), Value(r[2])})
        .status()
        .Check();
  }
  return db;
}

TEST(JointTest, ExtractAndTweakToExactTarget) {
  auto db = ThreeColDb({{0, 0, 0}, {0, 0, 0}, {1, 1, 0}, {1, 0, 0}});
  JointDistributionTool tool(db->schema(), "T", {"a", "b"});
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  EXPECT_EQ(tool.Current().Count({0, 0}), 2);
  EXPECT_EQ(tool.Current().Count({1, 1}), 1);

  FrequencyDistribution target(2);
  target.Add({0, 1}, 2);
  target.Add({1, 0}, 2);
  ASSERT_TRUE(tool.SetTargetDistribution(target).ok());
  ASSERT_TRUE(tool.CheckTargetFeasible().ok());
  Rng rng(1);
  TweakContext ctx(db.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  EXPECT_EQ(tool.Current().Count({0, 1}), 2);
  EXPECT_EQ(tool.Current().Count({1, 0}), 2);
  tool.Unbind();
}

TEST(JointTest, IncrementalTrackingAndPenalty) {
  auto db = ThreeColDb({{0, 0, 0}, {1, 1, 0}});
  JointDistributionTool tool(db->schema(), "T", {"a", "b"});
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  // A damaging proposal has positive penalty.
  EXPECT_GT(tool.ValidationPenalty(Modification::ReplaceValues(
                "T", {0}, {0}, {Value(int64_t{1})})),
            0.0);
  // Changing the uninvolved column c is free.
  EXPECT_DOUBLE_EQ(tool.ValidationPenalty(Modification::ReplaceValues(
                       "T", {0}, {2}, {Value(int64_t{5})})),
                   0.0);
  // Incremental tracking through real modifications.
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "T", {0}, {0}, {Value(int64_t{1})}))
                  .ok());
  EXPECT_EQ(tool.Current().Count({1, 0}), 1);
  EXPECT_GT(tool.Error(), 0.0);
  TupleId nt = kInvalidTuple;
  ASSERT_TRUE(db->Apply(Modification::InsertTuple(
                            "T", {Value(int64_t{0}), Value(int64_t{0}),
                                  Value(int64_t{0})}),
                        &nt)
                  .ok());
  EXPECT_EQ(tool.Current().Count({0, 0}), 1);
  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("T", nt)).ok());
  EXPECT_EQ(tool.Current().Count({0, 0}), 0);
  tool.Unbind();
}

TEST(JointTest, MarginalProjection) {
  FrequencyDistribution d(2);
  d.Add({1, 7}, 2);
  d.Add({1, 8}, 3);
  d.Add({2, 7}, 1);
  const FrequencyDistribution m0 = JointDistributionTool::Marginal(d, 0);
  EXPECT_EQ(m0.Count({1}), 5);
  EXPECT_EQ(m0.Count({2}), 1);
  const FrequencyDistribution m1 = JointDistributionTool::Marginal(d, 1);
  EXPECT_EQ(m1.Count({7}), 3);
}

// Theorem 7: two joint properties over (a, b) and (a, c) share column
// a. After the second runs, the first's error is at least the L1
// difference of the targets' a-marginals (normalized).
TEST(TheoremSevenTest, SharedColumnLowerBound) {
  auto db = ThreeColDb({{0, 0, 0}, {0, 0, 1}, {1, 1, 0}, {1, 1, 1},
                        {2, 0, 0}, {2, 1, 1}});
  // pi1 over (a,b): wants a-marginal {0:4, 1:2, 2:0}.
  FrequencyDistribution pi1(2);
  pi1.Add({0, 0}, 4);
  pi1.Add({1, 1}, 2);
  // pi2 over (a,c): wants a-marginal {0:1, 1:1, 2:4}.
  FrequencyDistribution pi2(2);
  pi2.Add({0, 0}, 1);
  pi2.Add({1, 1}, 1);
  pi2.Add({2, 0}, 4);

  Coordinator coordinator;
  auto t1 = std::make_unique<JointDistributionTool>(
      db->schema(), "T", std::vector<std::string>{"a", "b"}, "j1");
  auto t2 = std::make_unique<JointDistributionTool>(
      db->schema(), "T", std::vector<std::string>{"a", "c"}, "j2");
  t1->SetTargetDistribution(pi1).Check();
  t2->SetTargetDistribution(pi2).Check();
  JointDistributionTool* p1 = t1.get();
  JointDistributionTool* p2 = t2.get();
  coordinator.AddTool(std::move(t1));
  coordinator.AddTool(std::move(t2));
  CoordinatorOptions opts;
  opts.validate = false;
  opts.repair_targets = false;
  coordinator.Run(db.get(), {0, 1}, opts).ValueOrAbort();

  ASSERT_TRUE(p2->Bind(db.get()).ok());
  EXPECT_DOUBLE_EQ(p2->Error(), 0.0);  // ran last: exact
  p2->Unbind();
  ASSERT_TRUE(p1->Bind(db.get()).ok());
  const double err1 = p1->Error();
  p1->Unbind();
  // Theorem 7 bound: ||pi1 - pi2||_{a} / |T|.
  const double bound =
      static_cast<double>(JointDistributionTool::Marginal(pi1, 0)
                              .L1Distance(
                                  JointDistributionTool::Marginal(pi2, 0))) /
      6.0;
  EXPECT_GE(err1 + 1e-12, bound);
  EXPECT_GT(bound, 0.0);
}

TEST(JointTest, RepairRescales) {
  auto db = ThreeColDb({{0, 0, 0}, {1, 1, 0}});
  auto truth = ThreeColDb({{0, 0, 0}, {0, 0, 0}, {1, 1, 0}, {1, 1, 0}});
  JointDistributionTool tool(db->schema(), "T", {"a", "b"});
  ASSERT_TRUE(tool.SetTargetFromDataset(*truth).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  EXPECT_FALSE(tool.CheckTargetFeasible().ok());
  ASSERT_TRUE(tool.RepairTarget().ok());
  EXPECT_TRUE(tool.CheckTargetFeasible().ok());
  tool.Unbind();
}

TEST(JointTest, RejectsBadColumns) {
  auto db = ThreeColDb({{0, 0, 0}});
  JointDistributionTool missing(db->schema(), "T", {"a", "nope"});
  EXPECT_FALSE(missing.Bind(db.get()).ok());
  JointDistributionTool bad_table(db->schema(), "Nope", {"a"});
  EXPECT_FALSE(bad_table.Bind(db.get()).ok());
}

}  // namespace
}  // namespace aspect
