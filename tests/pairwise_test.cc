// Tests for the pairwise property: Definition 5 extraction, Theorem 4
// conditions/repair, Algorithm 3 tweaking (incl. post stealing and the
// self-response extension of Theorems 10-11).
#include <gtest/gtest.h>

#include "aspect/tweak_context.h"
#include "properties/pairwise.h"
#include "relational/integrity.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

namespace aspect {
namespace {

// Fig. 11's sonSchema: User, Post (author), Response (responder, post).
Schema Fig11Schema() {
  Schema s;
  s.name = "fig11";
  s.tables.push_back({"User", {{"g", ColumnType::kInt64, ""}}});
  s.tables.push_back({"Post", {{"author", ColumnType::kForeignKey, "User"}}});
  s.tables.push_back({"Resp",
                      {{"post", ColumnType::kForeignKey, "Post"},
                       {"responder", ColumnType::kForeignKey, "User"}}});
  s.user_table = "User";
  ResponseSpec r;
  r.response_table = "Resp";
  r.post_col = 0;
  r.responder_col = 1;
  r.post_table = "Post";
  r.author_col = 0;
  s.responses.push_back(r);
  return s;
}

std::unique_ptr<Database> Fig11Db() {
  auto db = Database::Create(Fig11Schema()).ValueOrAbort();
  for (int i = 0; i < 4; ++i) {
    db->FindTable("User")->Append({Value(int64_t{0})}).status().Check();
  }
  // p0, p1 by u0; p2 by u1.
  for (const int64_t a : {0, 0, 1}) {
    db->FindTable("Post")->Append({Value(a)}).status().Check();
  }
  // u0 responds twice to u1's post p2; u1 responds 4 times to u0's
  // posts p0/p1 (Fig. 11): rho(2,4) pair.
  auto resp = [&](int64_t post, int64_t user) {
    db->FindTable("Resp")
        ->Append({Value(post), Value(user)})
        .status()
        .Check();
  };
  resp(2, 0);
  resp(2, 0);
  resp(0, 1);
  resp(0, 1);
  resp(1, 1);
  resp(1, 1);
  // u3 responds once to his own post... u3 has no post; give u2 a
  // self-response via p2's author u1 -> make u1 self-respond once.
  resp(2, 1);
  return db;
}

TEST(PairwiseTest, Fig11DistributionExtracted) {
  auto db = Fig11Db();
  PairwisePropertyTool tool(db->schema());
  ASSERT_EQ(tool.num_specs(), 1);
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  const FrequencyDistribution& rho = tool.TargetRho(0);
  // Ordered entries: (2,4) for (u0,u1) and (4,2) for (u1,u0).
  EXPECT_EQ(rho.Count({2, 4}), 1);
  EXPECT_EQ(rho.Count({4, 2}), 1);
  EXPECT_EQ(rho.NumKeys(), 2);
}

TEST(PairwiseTest, SelfResponsesSeparated) {
  auto db = Fig11Db();
  PairwisePropertyTool tool(db->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  // u1 responded once to his own post p2.
  EXPECT_EQ(tool.CurrentRhoSelf(0).Count({1}), 1);
  // Self responses are not in the pair distribution.
  EXPECT_EQ(tool.CurrentRho(0).Count({1, 1}), 0);
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  EXPECT_TRUE(tool.CheckTargetFeasible().ok()) << tool.CheckTargetFeasible();
  tool.Unbind();
}

TEST(PairwiseTest, IncrementalMatchesRebuild) {
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 91).ValueOrAbort();
  auto db = gen.Materialize(3).ValueOrAbort();
  PairwisePropertyTool tool(db->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());

  Rng rng(12);
  const ResponseSpec& spec = db->schema().responses[0];
  Table* resp = db->FindTable(spec.response_table);
  Table* post = db->FindTable(spec.post_table);
  for (int step = 0; step < 60; ++step) {
    const TupleId rid = rng.UniformInt(0, resp->NumTuples() - 1);
    if (step % 3 == 0) {
      // Re-aim a response at another post.
      ASSERT_TRUE(
          db->Apply(Modification::ReplaceValues(
                        spec.response_table, {rid}, {spec.post_col},
                        {Value(rng.UniformInt(0, post->NumTuples() - 1))}))
              .ok());
    } else if (step % 3 == 1) {
      // Change a responder.
      ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                                spec.response_table, {rid},
                                {spec.responder_col},
                                {Value(rng.UniformInt(
                                    0, db->FindTable("User")->NumTuples() -
                                           1))}))
                      .ok());
    } else {
      // Re-author a post (moves every response on it between pairs).
      const TupleId pid = rng.UniformInt(0, post->NumTuples() - 1);
      ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                                spec.post_table, {pid}, {spec.author_col},
                                {Value(rng.UniformInt(
                                    0, db->FindTable("User")->NumTuples() -
                                           1))}))
                      .ok());
    }
  }
  PairwisePropertyTool fresh(db->schema());
  ASSERT_TRUE(fresh.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(fresh.Bind(db.get()).ok());
  EXPECT_EQ(tool.CurrentRho(0), fresh.CurrentRho(0));
  EXPECT_EQ(tool.CurrentRhoSelf(0), fresh.CurrentRhoSelf(0));
  fresh.Unbind();
  tool.Unbind();
}

class PairwiseTweakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairwiseTweakTest, TweaksRandScaledDatasetToGroundTruth) {
  const uint64_t seed = GetParam();
  auto gen = GenerateDataset(DoubanMusicLike(0.3), seed).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(2).ValueOrAbort(),
                           gen.SnapshotSizes(4), seed)
                    .ValueOrAbort();

  PairwisePropertyTool tool(truth->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*truth).ok());
  ASSERT_TRUE(tool.Bind(scaled.get()).ok());
  ASSERT_TRUE(tool.CheckTargetFeasible().ok()) << tool.CheckTargetFeasible();

  const double before = tool.Error();
  EXPECT_GT(before, 1e-5);
  Rng rng(seed + 1);
  TweakContext ctx(scaled.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  const double after = tool.Error();
  EXPECT_LT(after, before / 10.0);
  EXPECT_LT(after, 1e-5);
  EXPECT_TRUE(CheckIntegrity(*scaled).ok());
  tool.Unbind();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairwiseTweakTest,
                         ::testing::Values(71u, 72u, 73u));

TEST(PairwiseTest, PostStealingGivesPostlessUsersAPost) {
  // Force a deficit pair whose target author has no posts: the tool
  // must steal or create a post (Theorem 5) without changing rho of
  // unrelated pairs.
  auto db = Fig11Db();
  auto truth = db->Clone();
  // Target: make u2 (who has no post) receive one response from u3.
  truth->FindTable("Post")->Append({Value(int64_t{2})}).status().Check();
  truth->FindTable("Resp")
      ->Append({Value(int64_t{3}), Value(int64_t{3})})
      .status()
      .Check();
  // Keep |Resp| equal between truth and db for P2: remove one of u1's
  // responses in the truth.
  truth->FindTable("Resp")->Delete(6).Check();

  PairwisePropertyTool tool(db->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*truth).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  ASSERT_TRUE(tool.CheckTargetFeasible().ok()) << tool.CheckTargetFeasible();
  Rng rng(3);
  TweakContext ctx(db.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  EXPECT_LT(tool.Error(), 1e-9);
  EXPECT_TRUE(CheckIntegrity(*db).ok());
  tool.Unbind();
}

TEST(PairwiseTest, RepairEstablishesFeasibility) {
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 81).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RexScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(2).ValueOrAbort(),
                           gen.SnapshotSizes(4), 81)
                    .ValueOrAbort();
  PairwisePropertyTool tool(truth->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*truth).ok());
  ASSERT_TRUE(tool.Bind(scaled.get()).ok());
  EXPECT_FALSE(tool.CheckTargetFeasible().ok());
  ASSERT_TRUE(tool.RepairTarget().ok());
  EXPECT_TRUE(tool.CheckTargetFeasible().ok()) << tool.CheckTargetFeasible();
  Rng rng(9);
  TweakContext ctx(scaled.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  EXPECT_LT(tool.Error(), 1e-5);
  tool.Unbind();
}

TEST(PairwiseTest, ValidationPenaltySigns) {
  auto db = Fig11Db();
  PairwisePropertyTool tool(db->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  // Deleting a response breaks the enforced (2,4) pair: positive.
  EXPECT_GT(tool.ValidationPenalty(Modification::DeleteTuple("Resp", 0)),
            0.0);
  // Changing a user attribute: no penalty.
  EXPECT_DOUBLE_EQ(tool.ValidationPenalty(Modification::ReplaceValues(
                       "User", {0}, {0}, {Value(int64_t{1})})),
                   0.0);
  tool.Unbind();
}

}  // namespace
}  // namespace aspect
