// Tests for target persistence: save every tool's targets, reload them
// into fresh tools, and verify the tweak outcome is identical to using
// the ground truth directly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "aspect/targets_io.h"
#include "properties/coappear.h"
#include "properties/degree.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "properties/simple.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

namespace aspect {
namespace {

std::string TempFile(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Coordinator MakeCoordinator(const Schema& schema) {
  Coordinator c;
  c.AddTool(std::make_unique<LinearPropertyTool>(schema));
  c.AddTool(std::make_unique<CoappearPropertyTool>(schema));
  c.AddTool(std::make_unique<PairwisePropertyTool>(schema));
  c.AddTool(std::make_unique<DegreeDistributionTool>(schema));
  return c;
}

TEST(TargetsIoTest, RoundTripPreservesTargets) {
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 71).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  Coordinator original = MakeCoordinator(truth->schema());
  original.SetTargetsFromDataset(*truth).Check();
  const std::string path = TempFile("aspect_targets_roundtrip.txt");
  ASSERT_TRUE(SaveTargets(original, path).ok());

  Coordinator restored = MakeCoordinator(truth->schema());
  ASSERT_TRUE(LoadTargets(&restored, path).ok());

  // Targets must be byte-identical when re-serialized.
  const std::string again = TempFile("aspect_targets_roundtrip2.txt");
  ASSERT_TRUE(SaveTargets(restored, again).ok());
  std::ifstream a(path), b(again);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_GT(sa.str().size(), 100u);
  std::filesystem::remove(path);
  std::filesystem::remove(again);
}

TEST(TargetsIoTest, LoadedTargetsDriveTweakingLikeGroundTruth) {
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 73).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler scaler;
  auto scaled_a = scaler
                      .Scale(*gen.Materialize(2).ValueOrAbort(),
                             gen.SnapshotSizes(4), 73)
                      .ValueOrAbort();
  auto scaled_b = scaled_a->Clone();

  const std::string path = TempFile("aspect_targets_drive.txt");
  Coordinator with_truth = MakeCoordinator(truth->schema());
  with_truth.SetTargetsFromDataset(*truth).Check();
  ASSERT_TRUE(SaveTargets(with_truth, path).ok());

  Coordinator with_file = MakeCoordinator(truth->schema());
  ASSERT_TRUE(LoadTargets(&with_file, path).ok());

  CoordinatorOptions opts;
  opts.seed = 9;
  const auto ra =
      with_truth.Run(scaled_a.get(), {1, 2, 0}, opts).ValueOrAbort();
  const auto rb =
      with_file.Run(scaled_b.get(), {1, 2, 0}, opts).ValueOrAbort();
  ASSERT_EQ(ra.final_errors.size(), rb.final_errors.size());
  for (size_t i = 0; i < ra.final_errors.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.final_errors[i], rb.final_errors[i]) << i;
  }
  std::filesystem::remove(path);
}

TEST(TargetsIoTest, ErrorsDiagnosed) {
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 3).ValueOrAbort();
  Coordinator c = MakeCoordinator(gen.schema());
  EXPECT_FALSE(LoadTargets(&c, "/no/such/file").ok());
  // Corrupt file.
  const std::string path = TempFile("aspect_targets_bad.txt");
  {
    std::ofstream out(path);
    out << "aspect-targets v1\ntool nonsense\n";
  }
  EXPECT_FALSE(LoadTargets(&c, path).ok());
  {
    std::ofstream out(path);
    out << "wrong header\n";
  }
  EXPECT_FALSE(LoadTargets(&c, path).ok());
  std::filesystem::remove(path);
}

TEST(TargetsIoTest, ToolsWithoutPersistenceAreSkipped) {
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 4).ValueOrAbort();
  auto truth = gen.Materialize(2).ValueOrAbort();
  Coordinator c;
  c.AddTool(std::make_unique<LinearPropertyTool>(truth->schema()));
  // NullCountTool has no SaveTarget: it must be skipped, not fail.
  c.AddTool(std::make_unique<NullCountTool>(truth->schema(), "User",
                                            "gender"));
  c.SetTargetsFromDataset(*truth).Check();
  const std::string path = TempFile("aspect_targets_skip.txt");
  ASSERT_TRUE(SaveTargets(c, path).ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("tool linear"), std::string::npos);
  EXPECT_EQ(ss.str().find("nulls:"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(FreqDistIoTest, WriteReadRoundTrip) {
  FrequencyDistribution d(3);
  d.Add({1, 2, 3}, 4);
  d.Add({0, 0, 9}, -2);
  std::stringstream ss;
  d.Write(&ss);
  const auto back = FrequencyDistribution::Read(&ss).ValueOrAbort();
  EXPECT_EQ(back, d);
  // Corrupt input.
  std::stringstream bad("dist x");
  EXPECT_FALSE(FrequencyDistribution::Read(&bad).ok());
  std::stringstream truncated("dist 2 3\n1 2 5\n");
  EXPECT_FALSE(FrequencyDistribution::Read(&truncated).ok());
}

}  // namespace
}  // namespace aspect
