// Tests for the SQL subset, including cross-validation against the
// hand-written query engine on the Q1/Q2/Q4 patterns.
#include <gtest/gtest.h>

#include "query/engine.h"
#include "query/sql.h"
#include "workload/generator.h"

namespace aspect {
namespace {

Schema MiniSchema() {
  Schema s;
  s.name = "mini";
  s.tables.push_back({"User", {{"age", ColumnType::kInt64, ""}}});
  s.tables.push_back({"Post",
                      {{"author", ColumnType::kForeignKey, "User"},
                       {"score", ColumnType::kDouble, ""}}});
  s.tables.push_back({"Comment",
                      {{"post", ColumnType::kForeignKey, "Post"},
                       {"user", ColumnType::kForeignKey, "User"}}});
  s.user_table = "User";
  ResponseSpec r;
  r.response_table = "Comment";
  r.post_col = 0;
  r.responder_col = 1;
  r.post_table = "Post";
  r.author_col = 0;
  s.responses.push_back(r);
  return s;
}

std::unique_ptr<Database> MiniDb() {
  auto db = Database::Create(MiniSchema()).ValueOrAbort();
  for (const int64_t age : {20, 30, 40, 30}) {
    db->FindTable("User")->Append({Value(age)}).status().Check();
  }
  // Posts: (author, score).
  const std::pair<int64_t, double> posts[] = {
      {0, 1.5}, {0, 2.5}, {1, 4.0}, {2, 0.5}};
  for (const auto& [a, s] : posts) {
    db->FindTable("Post")->Append({Value(a), Value(s)}).status().Check();
  }
  // Comments: (post, user).
  const std::pair<int64_t, int64_t> comments[] = {
      {0, 1}, {0, 2}, {2, 0}, {2, 0}, {3, 3}};
  for (const auto& [p, u] : comments) {
    db->FindTable("Comment")->Append({Value(p), Value(u)}).status().Check();
  }
  return db;
}

double Q(const Database& db, const std::string& sql) {
  auto r = ExecuteScalarQuery(db, sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
  return r.ok() ? r.ValueOrDie() : -1;
}

TEST(SqlTest, CountStar) {
  auto db = MiniDb();
  EXPECT_DOUBLE_EQ(Q(*db, "SELECT COUNT(*) FROM User"), 4);
  EXPECT_DOUBLE_EQ(Q(*db, "select count(*) from Comment"), 5);
}

TEST(SqlTest, WhereFilters) {
  auto db = MiniDb();
  EXPECT_DOUBLE_EQ(Q(*db, "SELECT COUNT(*) FROM User WHERE age >= 30"), 3);
  EXPECT_DOUBLE_EQ(
      Q(*db, "SELECT COUNT(*) FROM User WHERE age >= 30 AND age < 40"), 2);
  EXPECT_DOUBLE_EQ(Q(*db, "SELECT COUNT(*) FROM Post WHERE score > 1"), 3);
}

TEST(SqlTest, AggregatesOverColumns) {
  auto db = MiniDb();
  EXPECT_DOUBLE_EQ(Q(*db, "SELECT SUM(age) FROM User"), 120);
  EXPECT_DOUBLE_EQ(Q(*db, "SELECT AVG(age) FROM User"), 30);
  EXPECT_DOUBLE_EQ(Q(*db, "SELECT MIN(score) FROM Post"), 0.5);
  EXPECT_DOUBLE_EQ(Q(*db, "SELECT MAX(score) FROM Post"), 4.0);
  EXPECT_DOUBLE_EQ(Q(*db, "SELECT COUNT(DISTINCT age) FROM User"), 3);
  EXPECT_DOUBLE_EQ(Q(*db, "SELECT COUNT(DISTINCT user) FROM Comment"), 4);
}

TEST(SqlTest, JoinOnTupleId) {
  auto db = MiniDb();
  // Comments on posts by user 0: comments on p0 (2) + p1 (0) = 2.
  EXPECT_DOUBLE_EQ(
      Q(*db,
        "SELECT COUNT(*) FROM Comment JOIN Post ON Comment.post = Post.id "
        "WHERE Post.author = 0"),
      2);
  // Q1 pattern: distinct authors of commented posts.
  EXPECT_DOUBLE_EQ(
      Q(*db,
        "SELECT COUNT(DISTINCT Post.author) FROM Comment "
        "JOIN Post ON Comment.post = Post.id"),
      3);
}

TEST(SqlTest, GroupByHavingSubquery) {
  auto db = MiniDb();
  // Q2 pattern: posts with at most 1 distinct commenter.
  EXPECT_DOUBLE_EQ(
      Q(*db,
        "SELECT COUNT(*) FROM (SELECT post FROM Comment GROUP BY post "
        "HAVING COUNT(DISTINCT user) <= 1) sub"),
      2);  // p2 (u0 twice) and p3 (u3)
  // Average distinct commenters over commented posts.
  EXPECT_DOUBLE_EQ(
      Q(*db,
        "SELECT AVG(c) FROM (SELECT post, COUNT(DISTINCT user) AS c "
        "FROM Comment GROUP BY post) sub"),
      (2 + 1 + 1) / 3.0);
}

TEST(SqlTest, MultiJoinChain) {
  auto db = MiniDb();
  // Distinct ages of users whose posts received comments.
  EXPECT_DOUBLE_EQ(
      Q(*db,
        "SELECT COUNT(DISTINCT User.age) FROM Comment "
        "JOIN Post ON Comment.post = Post.id "
        "JOIN User ON Post.author = User.id"),
      3);  // authors u0 (20), u1 (30), u2 (40)
}

TEST(SqlTest, ErrorsAreDiagnosed) {
  auto db = MiniDb();
  EXPECT_FALSE(ExecuteScalarQuery(*db, "SELEC COUNT(*) FROM User").ok());
  EXPECT_FALSE(ExecuteScalarQuery(*db, "SELECT COUNT(*) FROM Nope").ok());
  EXPECT_FALSE(
      ExecuteScalarQuery(*db, "SELECT COUNT(*) FROM User WHERE nope = 1")
          .ok());
  EXPECT_FALSE(
      ExecuteScalarQuery(*db, "SELECT age FROM User").ok());  // not scalar
  EXPECT_FALSE(ExecuteScalarQuery(
                   *db, "SELECT COUNT(*) FROM User trailing garbage")
                   .ok());
  // Ambiguous unqualified column across joined tables.
  EXPECT_FALSE(
      ExecuteScalarQuery(
          *db,
          "SELECT COUNT(DISTINCT id) FROM Comment JOIN Post ON "
          "Comment.post = Post.id")
          .ok());
  // Aggregates are not allowed in WHERE.
  EXPECT_FALSE(ExecuteScalarQuery(
                   *db, "SELECT COUNT(*) FROM User WHERE COUNT(*) = 1")
                   .ok());
}


TEST(SqlTest, ProjectionSubqueryAndMoreAggregates) {
  auto db = MiniDb();
  // Plain projection in a subquery, aggregated outside.
  EXPECT_DOUBLE_EQ(
      Q(*db, "SELECT COUNT(DISTINCT a) FROM (SELECT age AS a FROM User) s"),
      3);
  // COUNT(col) counts non-null values only.
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "User", {0}, {0}, {Value()}))
                  .ok());
  EXPECT_DOUBLE_EQ(Q(*db, "SELECT COUNT(age) FROM User"), 3);
  EXPECT_DOUBLE_EQ(Q(*db, "SELECT COUNT(*) FROM User"), 4);
  // MIN/MAX inside HAVING.
  EXPECT_DOUBLE_EQ(
      Q(*db,
        "SELECT COUNT(*) FROM (SELECT post FROM Comment GROUP BY post "
        "HAVING MAX(user) >= 2) s"),
      2);  // p0 (users 1,2) and p3 (user 3)
  // SUM inside HAVING.
  EXPECT_DOUBLE_EQ(
      Q(*db,
        "SELECT COUNT(*) FROM (SELECT post FROM Comment GROUP BY post "
        "HAVING SUM(user) = 3) s"),
      2);  // p0 (1+2) and p3 (3)
}

TEST(SqlTest, GroupColumnProjectedWithAggregate) {
  auto db = MiniDb();
  // Mixed select list under GROUP BY, consumed by an outer aggregate.
  EXPECT_DOUBLE_EQ(
      Q(*db,
        "SELECT MAX(c) FROM (SELECT post, COUNT(*) AS c FROM Comment "
        "GROUP BY post) s"),
      2);
}

TEST(SqlTest, CrossValidatesHandWrittenEngine) {
  auto gen = GenerateDataset(DoubanMusicLike(0.4), 33).ValueOrAbort();
  auto db = gen.Materialize(4).ValueOrAbort();
  const ResponseSpec& spec = db->schema().responses[0];

  // Q1 family.
  const double sql_q1 = Q(
      *db,
      "SELECT COUNT(DISTINCT Review.fk_User_0) FROM Review_Comment "
      "JOIN Review ON Review_Comment.fk_Review_0 = Review.id");
  EXPECT_DOUBLE_EQ(
      sql_q1,
      static_cast<double>(
          CountUsersWithRespondedPost(*db, spec).ValueOrAbort()));

  // Q2 family.
  const double sql_q2 = Q(
      *db,
      "SELECT COUNT(*) FROM (SELECT fk_Artist_0 FROM Artist_Fan GROUP BY "
      "fk_Artist_0 HAVING COUNT(DISTINCT fk_User_1) <= 10) sub");
  EXPECT_DOUBLE_EQ(sql_q2,
                   static_cast<double>(
                       CountEntitiesWithAtMostKUsers(
                           *db, "Artist_Fan", "fk_Artist_0", "fk_User_1", 10)
                           .ValueOrAbort()));

  // Fan-out totals.
  EXPECT_DOUBLE_EQ(
      Q(*db, "SELECT COUNT(*) FROM Album_Heard"),
      static_cast<double>(db->FindTable("Album_Heard")->NumTuples()));
}

}  // namespace
}  // namespace aspect
