// Tests for src/common: Status/Result, RNG distributions, strings.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/sharding.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace aspect {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Invalid("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::KeyError("missing");
  Status copy = st;
  EXPECT_EQ(copy.code(), StatusCode::kKeyError);
  EXPECT_EQ(copy.message(), "missing");
  EXPECT_EQ(st.message(), "missing");
}

TEST(StatusTest, MoveTransfersState) {
  Status st = Status::Infeasible("no");
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsInfeasible());
}

TEST(StatusTest, PredicateHelpers) {
  EXPECT_TRUE(Status::Infeasible("x").IsInfeasible());
  EXPECT_TRUE(Status::ValidationFailed("x").IsValidationFailed());
  EXPECT_FALSE(Status::OK().IsInfeasible());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("index"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, OkStatusNormalizedToInternalError) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  ASPECT_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseHalf(3, &out).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(7);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 5000; ++i) counts[rng.UniformInt(0, 9)]++;
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [v, c] : counts) EXPECT_GT(c, 300) << v;
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(13);
  for (const double mean : {0.5, 3.0, 20.0, 100.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(mean));
    EXPECT_NEAR(sum / n, mean, 0.05 * mean + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(17);
  const double p = 0.25;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Geometric(p));
  // Mean of failures-before-success is (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(19);
  std::map<int64_t, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const int64_t v = rng.Zipf(100, 1.2);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 100);
    counts[v]++;
  }
  // Rank 1 should dominate rank 10 roughly by 10^1.2 ~ 15.8.
  const double ratio =
      static_cast<double>(counts[1]) / std::max(1, counts[10]);
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 32.0);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(23);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[rng.Zipf(10, 0.0)]++;
  for (int64_t v = 1; v <= 10; ++v) {
    EXPECT_GT(counts[v], 1500) << v;
    EXPECT_LT(counts[v], 2500) << v;
  }
}

TEST(RngTest, WeightedIndexProportional) {
  Rng rng(29);
  const std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    counts[rng.WeightedIndex(w).ValueOrDie()]++;
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, WeightedIndexRejectsDegenerateWeights) {
  Rng rng(29);
  EXPECT_FALSE(rng.WeightedIndex({}).ok());
  EXPECT_FALSE(rng.WeightedIndex({0.0, 0.0, 0.0}).ok());
  EXPECT_FALSE(rng.WeightedIndex({1.0, -2.0}).ok());
  EXPECT_FALSE(
      rng.WeightedIndex({1.0, std::numeric_limits<double>::quiet_NaN()})
          .ok());
  // A single positive entry among zeros is always chosen.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.WeightedIndex({0.0, 5.0, 0.0}).ValueOrDie(), 1u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be equal
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(37);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(RngTest, LabeledForkDoesNotPerturbParent) {
  Rng a(37);
  Rng b(37);
  // Forking any number of labeled streams consumes no parent output.
  for (uint64_t label = 0; label < 16; ++label) a.Fork(label);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, LabeledForkIsDeterministicAndOrderFree) {
  const Rng parent(37);
  // Same (parent state, label) -> same stream, in any fork order.
  Rng c1 = parent.Fork(7);
  Rng c2 = parent.Fork(3);
  Rng c3 = parent.Fork(7);
  EXPECT_EQ(c1.Next(), c3.Next());
  EXPECT_EQ(c1.Next(), c3.Next());
  EXPECT_NE(c1.Next(), c2.Next());
}

TEST(RngTest, LabeledForkStreamsDiffer) {
  const Rng parent(37);
  // Adjacent labels (the per-shard pattern) must give distinct,
  // uncorrelated streams; so must the same label under different
  // parent states.
  std::vector<uint64_t> firsts;
  for (uint64_t label = 0; label < 64; ++label) {
    firsts.push_back(parent.Fork(label).Next());
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::unique(firsts.begin(), firsts.end()), firsts.end());
  const Rng other(38);
  EXPECT_NE(parent.Fork(5).Next(), other.Fork(5).Next());
}

TEST(RngTest, LabeledForkIsStable) {
  // Golden values: the labeled fork derivation is part of the on-disk
  // determinism contract (golden-hash tests, --gen-threads identity),
  // so its outputs must never change across refactors. If this test
  // fails, the derivation changed and every generated dataset with it.
  const Rng parent(12345);
  EXPECT_EQ(parent.Fork(0).Next(), 11106151217992182933ull);
  EXPECT_EQ(parent.Fork(1).Next(), 7280569886622911147ull);
  EXPECT_EQ(parent.Fork(0xA5FEC75E71A1ull).Next(),
            8305977673997498004ull);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter++; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // The pool stays usable after Wait.
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter++; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 110);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter++; });
    }
    // No Wait: destruction must finish every submitted task first.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter++; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(SharedPoolTest, ConsecutivePhasesReuseTheSameWorkers) {
  ThreadPool* pool = ThreadPool::Shared(2);
  ASSERT_NE(pool, nullptr);
  EXPECT_GE(pool->num_threads(), 2);
  const int64_t created = ThreadPool::PoolsCreated();

  // Two consecutive "phases": each submits one barrier task per
  // worker, so every worker of the phase's pool must show up. Both
  // phases must observe the identical worker set, with no new pool
  // constructed in between.
  const auto collect_workers = [](ThreadPool* p) {
    const int n = p->num_threads();
    std::set<std::thread::id> ids;
    std::mutex mu;
    std::condition_variable cv;
    int arrived = 0;
    for (int i = 0; i < n; ++i) {
      p->Submit([&] {
        std::unique_lock<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
        if (++arrived == n) {
          cv.notify_all();
        } else {
          cv.wait(lock, [&] { return arrived == n; });
        }
      });
    }
    p->Wait();
    return ids;
  };
  const std::set<std::thread::id> phase1 =
      collect_workers(ThreadPool::Shared(2));
  const std::set<std::thread::id> phase2 =
      collect_workers(ThreadPool::Shared(2));
  EXPECT_EQ(ThreadPool::Shared(2), pool);
  EXPECT_EQ(ThreadPool::PoolsCreated(), created);
  EXPECT_EQ(phase1.size(), static_cast<size_t>(pool->num_threads()));
  EXPECT_EQ(phase1, phase2);
}

TEST(SharedPoolTest, GrowsButNeverShrinks) {
  ThreadPool* big = ThreadPool::Shared(3);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(big->num_threads(), 3);
  // A smaller request reuses the bigger pool instead of replacing it.
  const int64_t created = ThreadPool::PoolsCreated();
  EXPECT_EQ(ThreadPool::Shared(2), big);
  EXPECT_EQ(ThreadPool::PoolsCreated(), created);
}

TEST(SharedPoolTest, NullFromWorkerThreadsSoNestedPhasesRunInline) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool* pool = ThreadPool::Shared(2);
  ASSERT_NE(pool, nullptr);
  std::atomic<bool> nested_null{false}, on_worker{false};
  pool->Submit([&] {
    on_worker = ThreadPool::OnWorkerThread();
    nested_null = ThreadPool::Shared(2) == nullptr;
  });
  pool->Wait();
  EXPECT_TRUE(on_worker.load());
  EXPECT_TRUE(nested_null.load());
}

namespace {

/// Asserts `shards` exactly tiles [0, rows) in order with dense
/// indices (no overlap, no gap).
void ExpectCovers(const std::vector<RowShard>& shards, int64_t rows) {
  int64_t next = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].begin, next);
    EXPECT_LT(shards[i].begin, shards[i].end);
    EXPECT_EQ(shards[i].index, static_cast<uint64_t>(i));
    next = shards[i].end;
  }
  EXPECT_EQ(next, rows);
}

}  // namespace

TEST(ShardingTest, PartitionRowsZeroOrNegativeRowsIsEmpty) {
  EXPECT_TRUE(PartitionRows(0).empty());
  EXPECT_TRUE(PartitionRows(-7).empty());
}

TEST(ShardingTest, PartitionRowsBelowGrainIsOneShard) {
  const std::vector<RowShard> shards = PartitionRows(kGenShardRows - 1);
  ASSERT_EQ(shards.size(), 1u);
  ExpectCovers(shards, kGenShardRows - 1);
  EXPECT_EQ(shards[0].end - shards[0].begin, kGenShardRows - 1);
}

TEST(ShardingTest, PartitionRowsExactGrainMultiple) {
  const std::vector<RowShard> shards = PartitionRows(3 * kGenShardRows);
  ASSERT_EQ(shards.size(), 3u);
  ExpectCovers(shards, 3 * kGenShardRows);
  for (const RowShard& s : shards) {
    EXPECT_EQ(s.end - s.begin, kGenShardRows);
  }
}

TEST(ShardingTest, PartitionRowsGrainPlusOneSpillsOneRow) {
  const std::vector<RowShard> shards = PartitionRows(kGenShardRows + 1);
  ASSERT_EQ(shards.size(), 2u);
  ExpectCovers(shards, kGenShardRows + 1);
  EXPECT_EQ(shards[0].end - shards[0].begin, kGenShardRows);
  EXPECT_EQ(shards[1].end - shards[1].begin, 1);
}

TEST(ShardingTest, PartitionRowsCustomGrainClampedToOne) {
  const std::vector<RowShard> shards = PartitionRows(4, 0);
  ASSERT_EQ(shards.size(), 4u);
  ExpectCovers(shards, 4);
}

TEST(StringTest, JoinAndSplitRoundTrip) {
  const std::vector<std::string> parts = {"a", "bb", "", "ccc"};
  EXPECT_EQ(Join(parts, ","), "a,bb,,ccc");
  EXPECT_EQ(Split("a,bb,,ccc", ','), parts);
}

TEST(StringTest, SplitSingleField) {
  EXPECT_EQ(Split("abc", ','), std::vector<std::string>{"abc"});
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
}

TEST(StringTest, Trim) {
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  ASPECT_LOG(Info) << "should not crash nor print";
  SetLogLevel(prev);
}

}  // namespace
}  // namespace aspect
