// Tests for the linear property: ChainStats (incremental join-matrix
// maintenance), Theorem 1 feasibility/repair, and Algorithm 1 tweaking.
#include <gtest/gtest.h>

#include "aspect/tweak_context.h"
#include "properties/chain_stats.h"
#include "properties/linear.h"
#include "relational/integrity.h"
#include "relational/refgraph.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

namespace aspect {
namespace {

// Four-table chain D -> C -> B -> A, mirroring Fig. 9's shape.
Schema ChainSchema() {
  Schema s;
  s.name = "chain4";
  s.tables.push_back({"A", {{"x", ColumnType::kInt64, ""}}});
  s.tables.push_back({"B", {{"a", ColumnType::kForeignKey, "A"}}});
  s.tables.push_back({"C", {{"b", ColumnType::kForeignKey, "B"}}});
  s.tables.push_back({"D", {{"c", ColumnType::kForeignKey, "C"}}});
  return s;
}

std::unique_ptr<Database> ChainDb() {
  auto db = Database::Create(ChainSchema()).ValueOrAbort();
  Table* a = db->FindTable("A");
  for (int i = 0; i < 4; ++i) a->Append({Value(int64_t{i})}).status().Check();
  // B: b0->a0, b1->a1, b2->a1, b3->a2, b4->a3 (roots of B->A: all 4).
  Table* b = db->FindTable("B");
  for (const int64_t p : {0, 1, 1, 2, 3}) {
    b->Append({Value(p)}).status().Check();
  }
  // C: c0->b1, c1->b2, c2->b3 (roots of C->B->A: a1, a2).
  Table* c = db->FindTable("C");
  for (const int64_t p : {1, 2, 3}) c->Append({Value(p)}).status().Check();
  // D: d0->c0, d1->c0 (roots of D->..->A: a1 only).
  Table* d = db->FindTable("D");
  for (const int64_t p : {0, 0}) d->Append({Value(p)}).status().Check();
  return db;
}

ReferenceChain TheChain(const Schema& s) {
  ReferenceGraph g(s);
  auto chains = g.MaximalChains();
  EXPECT_EQ(chains.size(), 1u);
  return chains[0];
}

TEST(ChainStatsTest, HandComputedMatrix) {
  auto db = ChainDb();
  const JoinMatrix h = ComputeJoinMatrix(*db, TheChain(db->schema()));
  ASSERT_EQ(h.k(), 4);
  EXPECT_EQ(h.at(1, 0), 4);  // roots of B->A
  EXPECT_EQ(h.at(2, 0), 2);  // roots of C->B->A: a1, a2
  EXPECT_EQ(h.at(2, 1), 3);  // b's with C children: b1, b2, b3
  EXPECT_EQ(h.at(3, 0), 1);  // roots of D->C->B->A: a1
  EXPECT_EQ(h.at(3, 1), 1);  // b's reaching D: b1
  EXPECT_EQ(h.at(3, 2), 1);  // c's with D children: c0
}

TEST(ChainStatsTest, ReachAndNavigation) {
  auto db = ChainDb();
  ChainStats s(TheChain(db->schema()));
  s.Build(*db);
  EXPECT_TRUE(s.Reaches(0, 1, 3));   // a1 reaches D level
  EXPECT_FALSE(s.Reaches(0, 0, 2));  // a0 has no C descendant
  EXPECT_EQ(s.MaxReach(0, 1), 3);
  EXPECT_EQ(s.MaxReach(0, 0), 1);
  EXPECT_EQ(s.AncestorAt(3, 0, 0), 1);   // d0 -> c0 -> b1 -> a1
  EXPECT_EQ(s.DescendantAt(0, 1, 3), 0);  // a1's D descendant d0 or d1
  EXPECT_EQ(s.Parent(2, 0), 1);
  EXPECT_EQ(s.Children(0, 1).size(), 2u);  // a1 has b1, b2
}

TEST(ChainStatsTest, IncrementalMatchesRebuildUnderRandomMoves) {
  auto gen = GenerateDataset(DoubanMusicLike(0.4), 77).ValueOrAbort();
  auto db = gen.Materialize(3).ValueOrAbort();
  ReferenceGraph g(db->schema());
  const auto chains = g.MaximalChains();
  // Pick the longest chain for a strong test.
  const ReferenceChain* chain = &chains[0];
  for (const auto& c : chains) {
    if (c.length() > chain->length()) chain = &c;
  }
  ASSERT_GE(chain->length(), 3);
  ChainStats s(*chain);
  s.Build(*db);
  Rng rng(5);
  for (int step = 0; step < 300; ++step) {
    // Move a random tuple at a random level to a random parent.
    const int level =
        static_cast<int>(rng.UniformInt(1, chain->length() - 1));
    Table& t = *db->FindTable(
        db->schema().tables[static_cast<size_t>(
            chain->tables[static_cast<size_t>(level)])].name);
    Table& p = *db->FindTable(
        db->schema().tables[static_cast<size_t>(
            chain->tables[static_cast<size_t>(level - 1)])].name);
    const TupleId child = rng.UniformInt(0, t.NumTuples() - 1);
    const TupleId parent = rng.UniformInt(0, p.NumTuples() - 1);
    const int col = chain->fk_cols[static_cast<size_t>(level - 1)];
    const TupleId old_parent = t.column(col).GetInt(child);
    t.column(col).SetInt(child, parent);
    if (old_parent != kInvalidTuple) s.Detach(level, child);
    s.Attach(level, child, parent);
    if (step % 50 == 0) {
      EXPECT_EQ(s.matrix(), ComputeJoinMatrix(*db, *chain))
          << "step " << step;
    }
  }
  EXPECT_EQ(s.matrix(), ComputeJoinMatrix(*db, *chain));
}

TEST(JoinMatrixTest, ErrorAgainstPaperExample) {
  // Sec. VI-C1's example: eps_H = (1/3)(1/4 + 1/3 + 1/4) = 5/18.
  JoinMatrix tweaked(3), truth(3);
  tweaked.set(1, 0, 5);
  tweaked.set(2, 0, 2);
  tweaked.set(2, 1, 3);
  truth.set(1, 0, 4);
  truth.set(2, 0, 3);
  truth.set(2, 1, 4);
  EXPECT_NEAR(tweaked.ErrorAgainst(truth), 5.0 / 18.0, 1e-12);
  EXPECT_DOUBLE_EQ(truth.ErrorAgainst(truth), 0.0);
}

TEST(LinearFeasibilityTest, RealizedMatrixIsFeasible) {
  auto db = ChainDb();
  const JoinMatrix h = ComputeJoinMatrix(*db, TheChain(db->schema()));
  const std::vector<int64_t> sizes = {4, 5, 3, 2};
  EXPECT_TRUE(LinearPropertyTool::CheckMatrixFeasible(h, sizes).ok());
}

TEST(LinearFeasibilityTest, ViolationsDetected) {
  const std::vector<int64_t> sizes = {4, 5, 3, 2};
  JoinMatrix m(4);
  auto feasible_base = [&]() {
    JoinMatrix b(4);
    b.set(1, 0, 4);
    b.set(2, 0, 2);
    b.set(2, 1, 3);
    b.set(3, 0, 1);
    b.set(3, 1, 1);
    b.set(3, 2, 1);
    return b;
  };
  m = feasible_base();
  m.set(1, 0, 6);  // L1: exceeds |B| window
  EXPECT_FALSE(LinearPropertyTool::CheckMatrixFeasible(m, sizes).ok());
  m = feasible_base();
  m.set(2, 0, 5);  // L2: column increases with j (5 > 4) and L1
  EXPECT_FALSE(LinearPropertyTool::CheckMatrixFeasible(m, sizes).ok());
  m = feasible_base();
  m.set(2, 1, 1);  // L3: row decreasing (h(2,1)=1 < h(2,0)=2)
  EXPECT_FALSE(LinearPropertyTool::CheckMatrixFeasible(m, sizes).ok());
}

TEST(LinearFeasibilityTest, RepairProducesFeasible) {
  Rng rng(123);
  const std::vector<int64_t> sizes = {40, 50, 30, 20};
  for (int trial = 0; trial < 50; ++trial) {
    JoinMatrix m(4);
    for (int j = 1; j < 4; ++j) {
      for (int i = 0; i < j; ++i) {
        m.set(j, i, rng.UniformInt(0, 80));
      }
    }
    LinearPropertyTool::RepairMatrix(&m, sizes);
    EXPECT_TRUE(LinearPropertyTool::CheckMatrixFeasible(m, sizes).ok())
        << "trial " << trial << ": " << m.ToString();
  }
}

class LinearTweakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinearTweakTest, TweaksRandScaledDatasetToGroundTruth) {
  const uint64_t seed = GetParam();
  auto gen = GenerateDataset(DoubanMusicLike(0.3), seed).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler scaler;
  auto scaled =
      scaler.Scale(*gen.Materialize(2).ValueOrAbort(),
                   gen.SnapshotSizes(4), seed)
          .ValueOrAbort();

  LinearPropertyTool tool(truth->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*truth).ok());
  ASSERT_TRUE(tool.Bind(scaled.get()).ok());
  ASSERT_TRUE(tool.CheckTargetFeasible().ok());

  const double before = tool.Error();
  EXPECT_GT(before, 0.05);

  Rng rng(seed + 1);
  TweakContext ctx(scaled.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  const double after = tool.Error();
  EXPECT_LT(after, before / 20.0);
  EXPECT_LT(after, 0.01);
  // Tweaking must never corrupt referential integrity.
  EXPECT_TRUE(CheckIntegrity(*scaled).ok());
  tool.Unbind();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearTweakTest,
                         ::testing::Values(11u, 22u, 33u));

TEST(LinearToolTest, ValidationPenaltySigns) {
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 9).ValueOrAbort();
  auto db = gen.Materialize(3).ValueOrAbort();
  LinearPropertyTool tool(db->schema());
  // Target = the dataset itself: error 0, any structural change hurts.
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);

  // Find a chain FK modification that actually changes some matrix.
  const Table* fan = db->FindTable("User_Fan");
  ASSERT_NE(fan, nullptr);
  double worst = 0;
  for (TupleId t = 0; t < 20; ++t) {
    const int64_t cur = fan->column(0).GetInt(t);
    const Modification mod = Modification::ReplaceValues(
        "User_Fan", {t}, {0}, {Value((cur + 1) % 5)});
    worst = std::max(worst, tool.ValidationPenalty(mod));
  }
  EXPECT_GT(worst, 0.0);
  // A no-op move has zero penalty.
  const Modification noop = Modification::ReplaceValues(
      "User_Fan", {0}, {0}, {Value(fan->column(0).GetInt(0))});
  EXPECT_DOUBLE_EQ(tool.ValidationPenalty(noop), 0.0);
  // Non-FK columns are never penalized.
  const Modification attr = Modification::ReplaceValues(
      "User", {0}, {1}, {Value(int64_t{1})});
  EXPECT_DOUBLE_EQ(tool.ValidationPenalty(attr), 0.0);
  tool.Unbind();
}

TEST(LinearToolTest, BatchPenaltyGivesDistinctIdsToBatchedInserts) {
  // Two inserts in one batch land at consecutive tuple ids. The batch
  // validator must simulate them at those ids: collapsing both onto
  // the next-slot prediction double-attaches one ChainStats slot and
  // corrupts the join matrix (this crashed the CLI's --batch mode).
  auto db = ChainDb();
  LinearPropertyTool tool(db->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);

  // d2->c1 and d3->c2 turn b2 and b3 (and a2) into D-reaching tuples.
  const std::vector<Modification> mods = {
      Modification::InsertTuple("D", {Value(int64_t{1})}),
      Modification::InsertTuple("D", {Value(int64_t{2})}),
  };
  const double penalty = tool.ValidationPenaltyBatch(mods);
  EXPECT_GT(penalty, 0.0);
  // The simulation must have been fully reverted...
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  // ...and its verdict must equal the error delta of really applying
  // the batch (the incremental update sees the true ids).
  ASSERT_TRUE(db->ApplyBatch(mods).ok());
  EXPECT_DOUBLE_EQ(penalty, tool.Error());
  EXPECT_EQ(tool.CurrentMatrix(0),
            ComputeJoinMatrix(*db, tool.chains()[0]));
  tool.Unbind();
}

TEST(LinearToolTest, StatsFollowForeignModifications) {
  // The Statistics Updater must track modifications made by *other*
  // tools (here: simulated by direct Database::Apply calls).
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 13).ValueOrAbort();
  auto db = gen.Materialize(3).ValueOrAbort();
  LinearPropertyTool tool(db->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());

  Rng rng(4);
  Table* comment = db->FindTable("Album_Comment");
  for (int step = 0; step < 50; ++step) {
    const TupleId t = rng.UniformInt(0, comment->NumTuples() - 1);
    const int64_t album = rng.UniformInt(
        0, db->FindTable("Album")->NumTuples() - 1);
    ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                              "Album_Comment", {t}, {0}, {Value(album)}))
                    .ok());
  }
  // Insert and delete tuples too.
  TupleId nt = kInvalidTuple;
  ASSERT_TRUE(
      db->Apply(Modification::InsertTuple(
                    "Album_Comment",
                    {Value(int64_t{0}), Value(int64_t{0}), Value(int64_t{1})}),
                &nt)
          .ok());
  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("Album_Comment", nt)).ok());

  // Incremental state must equal a from-scratch recomputation.
  for (size_t ci = 0; ci < tool.chains().size(); ++ci) {
    EXPECT_EQ(tool.CurrentMatrix(static_cast<int>(ci)),
              ComputeJoinMatrix(*db, tool.chains()[ci]))
        << tool.chains()[ci].ToString(db->schema());
  }
  tool.Unbind();
}

}  // namespace
}  // namespace aspect
