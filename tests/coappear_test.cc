// Tests for the coappear property: Definition 4 extraction, Theorem 2
// conditions/repair, Algorithm 2 tweaking, incremental maintenance.
#include <gtest/gtest.h>

#include "aspect/tweak_context.h"
#include "properties/coappear.h"
#include "relational/integrity.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

namespace aspect {
namespace {

// Fig. 10's shape: T_A, T_B, T_C all reference T_K and T_H.
Schema Fig10Schema() {
  Schema s;
  s.name = "fig10";
  s.tables.push_back({"K", {{"x", ColumnType::kInt64, ""}}});
  s.tables.push_back({"H", {{"x", ColumnType::kInt64, ""}}});
  for (const char* n : {"A", "B", "C"}) {
    s.tables.push_back({n,
                        {{"k", ColumnType::kForeignKey, "K"},
                         {"h", ColumnType::kForeignKey, "H"}}});
  }
  return s;
}

std::unique_ptr<Database> Fig10Db() {
  auto db = Database::Create(Fig10Schema()).ValueOrAbort();
  for (const char* n : {"K", "H"}) {
    for (int i = 0; i < 3; ++i) {
      db->FindTable(n)->Append({Value(int64_t{i})}).status().Check();
    }
  }
  auto add = [&](const char* t, int64_t k, int64_t h, int times) {
    for (int i = 0; i < times; ++i) {
      db->FindTable(t)->Append({Value(k), Value(h)}).status().Check();
    }
  };
  // <k0,h1> appears 3x in A, 3x in B, 1x in C -> xi(3,3,1) = 1.
  add("A", 0, 1, 3);
  add("B", 0, 1, 3);
  add("C", 0, 1, 1);
  // <k1,h2> and <k2,h0> each 1x in A, 1x in B, 2x in C -> xi(1,1,2)=2.
  add("A", 1, 2, 1);
  add("B", 1, 2, 1);
  add("C", 1, 2, 2);
  add("A", 2, 0, 1);
  add("B", 2, 0, 1);
  add("C", 2, 0, 2);
  return db;
}

TEST(CoappearTest, Fig10DistributionExtracted) {
  auto db = Fig10Db();
  CoappearPropertyTool tool(db->schema());
  ASSERT_EQ(tool.groups().size(), 1u);
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  const FrequencyDistribution& xi = tool.TargetXi(0);
  EXPECT_EQ(xi.Count({3, 3, 1}), 1);
  EXPECT_EQ(xi.Count({1, 1, 2}), 2);
  EXPECT_EQ(xi.NumKeys(), 2);
}

TEST(CoappearTest, TheoremTwoConditionsHoldForExtraction) {
  auto db = Fig10Db();
  CoappearPropertyTool tool(db->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  // C1/C2 hold for a target extracted from the same-size dataset.
  EXPECT_TRUE(tool.CheckTargetFeasible().ok());
  // Error against self is zero.
  EXPECT_DOUBLE_EQ(tool.Error(), 0.0);
  tool.Unbind();
}

TEST(CoappearTest, IncrementalMatchesRebuild) {
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 31).ValueOrAbort();
  auto db = gen.Materialize(3).ValueOrAbort();
  CoappearPropertyTool tool(db->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());

  Rng rng(6);
  Table* t = db->FindTable("Album_Heard");
  for (int step = 0; step < 80; ++step) {
    const TupleId tid = rng.UniformInt(0, t->NumTuples() - 1);
    const int col = static_cast<int>(rng.UniformInt(0, 1));
    const int64_t max_parent =
        (col == 0 ? db->FindTable("Album") : db->FindTable("User"))
            ->NumTuples() -
        1;
    ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                              "Album_Heard", {tid}, {col},
                              {Value(rng.UniformInt(0, max_parent))}))
                    .ok());
  }
  TupleId nt = kInvalidTuple;
  ASSERT_TRUE(db->Apply(Modification::InsertTuple(
                            "Album_Heard",
                            {Value(int64_t{0}), Value(int64_t{1}),
                             Value(int64_t{1})}),
                        &nt)
                  .ok());
  ASSERT_TRUE(db->Apply(Modification::DeleteTuple("Album_Heard", nt)).ok());

  // Compare with a freshly bound tool.
  CoappearPropertyTool fresh(db->schema());
  ASSERT_TRUE(fresh.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(fresh.Bind(db.get()).ok());
  for (int g = 0; g < static_cast<int>(tool.groups().size()); ++g) {
    EXPECT_EQ(tool.CurrentXi(g), fresh.CurrentXi(g)) << "group " << g;
  }
  fresh.Unbind();
  tool.Unbind();
}

class CoappearTweakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoappearTweakTest, TweaksRandScaledDatasetToGroundTruth) {
  const uint64_t seed = GetParam();
  auto gen = GenerateDataset(DoubanMusicLike(0.3), seed).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(2).ValueOrAbort(),
                           gen.SnapshotSizes(4), seed)
                    .ValueOrAbort();

  CoappearPropertyTool tool(truth->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*truth).ok());
  ASSERT_TRUE(tool.Bind(scaled.get()).ok());
  // Same sizes, so the extracted target is feasible without repair.
  ASSERT_TRUE(tool.CheckTargetFeasible().ok()) << tool.CheckTargetFeasible();

  const double before = tool.Error();
  EXPECT_GT(before, 0.001);
  Rng rng(seed + 1);
  TweakContext ctx(scaled.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  const double after = tool.Error();
  EXPECT_LT(after, before / 20.0);
  EXPECT_LT(after, 1e-6);
  EXPECT_TRUE(CheckIntegrity(*scaled).ok());
  tool.Unbind();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoappearTweakTest,
                         ::testing::Values(41u, 42u, 43u));

TEST(CoappearTest, TweakPreservesTableSizes) {
  // Theorem 2 C1: the tweak must leave every member table's size
  // unchanged (insertions balance deletions).
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 55).ValueOrAbort();
  auto truth = gen.Materialize(3).ValueOrAbort();
  RandScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(2).ValueOrAbort(),
                           gen.SnapshotSizes(3), 55)
                    .ValueOrAbort();
  std::vector<int64_t> sizes_before;
  for (int t = 0; t < scaled->num_tables(); ++t) {
    sizes_before.push_back(scaled->table(t).NumTuples());
  }
  CoappearPropertyTool tool(truth->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*truth).ok());
  ASSERT_TRUE(tool.Bind(scaled.get()).ok());
  Rng rng(7);
  TweakContext ctx(scaled.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  for (int t = 0; t < scaled->num_tables(); ++t) {
    EXPECT_EQ(scaled->table(t).NumTuples(),
              sizes_before[static_cast<size_t>(t)])
        << scaled->table(t).name();
  }
  tool.Unbind();
}

TEST(CoappearTest, RepairEstablishesFeasibility) {
  // Scale to *different* sizes than the ground truth (like ReX does):
  // the raw target violates C1 until repaired.
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 61).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RexScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(2).ValueOrAbort(),
                           gen.SnapshotSizes(4), 61)
                    .ValueOrAbort();
  CoappearPropertyTool tool(truth->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*truth).ok());
  ASSERT_TRUE(tool.Bind(scaled.get()).ok());
  EXPECT_FALSE(tool.CheckTargetFeasible().ok());
  ASSERT_TRUE(tool.RepairTarget().ok());
  EXPECT_TRUE(tool.CheckTargetFeasible().ok()) << tool.CheckTargetFeasible();
  // And the repaired target is reachable.
  Rng rng(8);
  TweakContext ctx(scaled.get(), {}, &rng);
  ASSERT_TRUE(tool.Tweak(&ctx).ok());
  EXPECT_LT(tool.Error(), 1e-6);
  tool.Unbind();
}

TEST(CoappearTest, ValidationPenaltySigns) {
  auto db = Fig10Db();
  CoappearPropertyTool tool(db->schema());
  ASSERT_TRUE(tool.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(tool.Bind(db.get()).ok());
  // Moving a tuple of combo <k0,h1> to <k0,h0> splits the (3,3,1)
  // combo: positive penalty.
  const Modification bad = Modification::ReplaceValues(
      "A", {0}, {1}, {Value(int64_t{0})});
  EXPECT_GT(tool.ValidationPenalty(bad), 0.0);
  // Touching a non-FK column of an unrelated table: no penalty.
  const Modification neutral =
      Modification::ReplaceValues("K", {0}, {0}, {Value(int64_t{9})});
  EXPECT_DOUBLE_EQ(tool.ValidationPenalty(neutral), 0.0);
  tool.Unbind();
}

}  // namespace
}  // namespace aspect
