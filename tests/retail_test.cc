// Tests for the retail blueprint and dataset profiling: the framework
// is not social-network specific - linear / coappear / degree tools
// run unchanged on a TPC-H-flavoured schema without sonSchema roles.
#include <gtest/gtest.h>

#include "aspect/coordinator.h"
#include "measure/profile.h"
#include "properties/coappear.h"
#include "properties/degree.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "relational/integrity.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

namespace aspect {
namespace {

TEST(RetailTest, SchemaShape) {
  const Schema s = RetailLike(1.0).ToSchema();
  ASSERT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.tables.size(), 8u);
  EXPECT_TRUE(s.user_table.empty());
  EXPECT_TRUE(s.responses.empty());
  ReferenceGraph graph(s);
  // The 5-deep chain exists.
  bool deep = false;
  for (const auto& chain : graph.MaximalChains()) {
    deep |= chain.ToString(s) ==
            "Lineitem -> Orders -> Customer -> Nation -> Region";
  }
  EXPECT_TRUE(deep);
  // PartSupp(Part, Supplier) and Lineitem(Orders, Part) each form a
  // single-member coappear group.
  EXPECT_EQ(graph.CoappearGroups().size(), 2u);
}

TEST(RetailTest, FullPipelineWithoutPairwise) {
  auto gen = GenerateDataset(RetailLike(0.4), 99).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(1).ValueOrAbort(),
                           gen.SnapshotSizes(4), 99)
                    .ValueOrAbort();
  Coordinator coordinator;
  const int li = coordinator.AddTool(
      std::make_unique<LinearPropertyTool>(truth->schema()));
  const int co = coordinator.AddTool(
      std::make_unique<CoappearPropertyTool>(truth->schema()));
  const int de = coordinator.AddTool(
      std::make_unique<DegreeDistributionTool>(truth->schema()));
  // Pairwise binds trivially (no response2post instantiations).
  const int pa = coordinator.AddTool(
      std::make_unique<PairwisePropertyTool>(truth->schema()));
  coordinator.SetTargetsFromDataset(*truth).Check();
  CoordinatorOptions opts;
  opts.seed = 3;
  const auto report =
      coordinator.Run(scaled.get(), {pa, co, de, li}, opts).ValueOrAbort();
  EXPECT_DOUBLE_EQ(report.final_errors[static_cast<size_t>(pa)], 0.0);
  EXPECT_LT(report.final_errors[static_cast<size_t>(li)], 1e-3);
  EXPECT_LT(report.final_errors[static_cast<size_t>(de)], 0.05);
  // Coappear runs second of four here and every later tool rewrites
  // the same two FK columns (Lineitem/PartSupp are the whole schema's
  // activity surface), so its residual is the largest - the retail
  // schema is an extreme-overlap stress case.
  EXPECT_LT(report.final_errors[static_cast<size_t>(co)], 0.25);
  EXPECT_TRUE(CheckIntegrity(*scaled).ok());
}

TEST(ProfileTest, SummarizesStructureAndStatistics) {
  auto gen = GenerateDataset(RetailLike(0.4), 7).ValueOrAbort();
  auto db = gen.Materialize(3).ValueOrAbort();
  const DatasetProfile profile = ProfileDataset(*db).ValueOrAbort();
  EXPECT_EQ(profile.name, "RetailLike");
  EXPECT_EQ(profile.table_sizes.size(), 8u);
  EXPECT_EQ(profile.total_tuples, db->TotalTuples());
  ASSERT_FALSE(profile.edges.empty());
  for (const EdgeProfile& e : profile.edges) {
    EXPECT_GE(e.max_fanout, 1) << e.child;
    EXPECT_LE(e.parents_hit, e.parents) << e.child;
    EXPECT_GT(e.children, 0) << e.child;
  }
  EXPECT_FALSE(profile.chains.empty());
  EXPECT_EQ(profile.coappear_groups.size(), 2u);
  EXPECT_TRUE(profile.response_specs.empty());
  const std::string text = profile.ToString();
  EXPECT_NE(text.find("Lineitem"), std::string::npos);
  EXPECT_NE(text.find("maximal reference chains"), std::string::npos);
}

TEST(ProfileTest, SocialProfileListsResponses) {
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 8).ValueOrAbort();
  auto db = gen.Materialize(2).ValueOrAbort();
  const DatasetProfile profile = ProfileDataset(*db).ValueOrAbort();
  EXPECT_EQ(profile.response_specs.size(), 1u);
  EXPECT_NE(profile.ToString().find("Review_Comment"), std::string::npos);
}

}  // namespace
}  // namespace aspect
