// Tests for the scope-conformance analyzer (src/analysis): the
// directional disturbance predicates, the FootprintRecorder, the
// ScopeChecker's conformance rules — in particular that an observed
// (reads_complete == false) scope is never reported conformant — and
// the coordinator integration: a deliberately under-declaring tool
// must be caught by the checker, fail a strict run, and be kept off
// the parallel fast path for the rest of the run.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/access_scope.h"
#include "analysis/probe.h"
#include "analysis/row_intervals.h"
#include "analysis/scope_checker.h"
#include "aspect/access_monitor.h"
#include "aspect/coordinator.h"
#include "aspect/lease.h"
#include "aspect/tweak_context.h"
#include "properties/simple.h"
#include "relational/database.h"
#include "relational/schema.h"

namespace aspect {
namespace {

using analysis::Conformance;
using analysis::FootprintRecorder;
using analysis::RowIntervalSet;
using analysis::ScopeChecker;
using analysis::ScopeCheckMode;
using analysis::ScopeViolation;

// ---------------------------------------------------------------------
// Directional disturbance predicates
// ---------------------------------------------------------------------

TEST(AccessScopeTest, WriteAtomDisturbsReadIsDirectional) {
  const AccessScope::Atom cell_a{0, 0};
  const AccessScope::Atom cell_b{0, 1};
  const AccessScope::Atom whole{0, AccessScope::kWholeTable};
  const AccessScope::Atom rows{0, AccessScope::kRowStructure};
  const AccessScope::Atom other_table{1, 0};

  // Distinct cells never disturb each other.
  EXPECT_FALSE(WriteAtomDisturbsRead(cell_a, cell_b));
  EXPECT_TRUE(WriteAtomDisturbsRead(cell_a, cell_a));
  // A row-structure write (insert/delete) carries cells in every
  // column, so it disturbs every reader of the table...
  EXPECT_TRUE(WriteAtomDisturbsRead(rows, cell_a));
  EXPECT_TRUE(WriteAtomDisturbsRead(rows, whole));
  EXPECT_TRUE(WriteAtomDisturbsRead(rows, rows));
  // ...but a cell write cannot disturb a pure row-structure reader:
  // it moves no tuple in or out of the live set.
  EXPECT_FALSE(WriteAtomDisturbsRead(cell_a, rows));
  // Whole-table writes and reads are maximal on their side.
  EXPECT_TRUE(WriteAtomDisturbsRead(whole, cell_b));
  EXPECT_TRUE(WriteAtomDisturbsRead(cell_a, whole));
  // Different tables never interact.
  EXPECT_FALSE(WriteAtomDisturbsRead(rows, other_table));
  EXPECT_FALSE(WriteAtomDisturbsRead(whole, other_table));
}

TEST(AccessScopeTest, AtomCoveredBySentinels) {
  const std::set<AccessScope::Atom> whole = {{0, AccessScope::kWholeTable}};
  const std::set<AccessScope::Atom> rows = {{0, AccessScope::kRowStructure}};
  // Whole-table covers every atom of the table, including sentinels.
  EXPECT_TRUE(AtomCoveredBy({0, 2}, whole));
  EXPECT_TRUE(AtomCoveredBy({0, AccessScope::kRowStructure}, whole));
  EXPECT_FALSE(AtomCoveredBy({1, 2}, whole));
  // Row-structure covers only row-structure, never cells.
  EXPECT_TRUE(AtomCoveredBy({0, AccessScope::kRowStructure}, rows));
  EXPECT_FALSE(AtomCoveredBy({0, 0}, rows));
}

// ---------------------------------------------------------------------
// RowIntervalSet
// ---------------------------------------------------------------------

TEST(RowIntervalSetTest, AddMergesAndCoalescesAdjacent) {
  RowIntervalSet s;
  EXPECT_TRUE(s.empty());
  s.Add(5);
  s.Add(7);
  s.Add(6);  // bridges [5,5] and [7,7]
  EXPECT_EQ(s.NumIntervals(), 1);
  EXPECT_EQ(s.ToString(), "[5-7]");
  s.AddRange(10, 12);
  s.AddRange(1, 2);
  EXPECT_EQ(s.NumIntervals(), 3);
  EXPECT_EQ(s.ToString(), "[1-2] [5-7] [10-12]");
  // A hull insert swallows everything it touches.
  s.AddRange(3, 11);
  EXPECT_EQ(s.NumIntervals(), 1);
  EXPECT_EQ(s.ToString(), "[1-12]");
}

TEST(RowIntervalSetTest, TailAppendFastPathStaysSorted) {
  // The common probe pattern: mostly-ascending row ids.
  RowIntervalSet s;
  for (int64_t row = 0; row < 100; row += 2) s.Add(row);
  EXPECT_EQ(s.NumIntervals(), 50);
  for (int64_t row = 1; row < 100; row += 2) s.Add(row);
  EXPECT_EQ(s.NumIntervals(), 1);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(99));
  EXPECT_FALSE(s.Contains(100));
}

TEST(RowIntervalSetTest, PredicatesAndFirstOutside) {
  RowIntervalSet s;
  s.AddRange(2, 4);
  s.AddRange(8, 9);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(5));
  EXPECT_TRUE(s.OverlapsRange(4, 8));
  EXPECT_FALSE(s.OverlapsRange(5, 7));
  EXPECT_TRUE(s.Within(2, 9));
  EXPECT_FALSE(s.Within(2, 8));
  EXPECT_EQ(s.FirstOutside(2, 9), -1);
  EXPECT_EQ(s.FirstOutside(3, 9), 2);   // escapes below
  EXPECT_EQ(s.FirstOutside(2, 8), 9);   // escapes above
  EXPECT_EQ(s.FirstOutside(0, 100), -1);

  RowIntervalSet other;
  other.AddRange(5, 7);
  EXPECT_FALSE(s.Overlaps(other));
  other.Add(9);
  EXPECT_TRUE(s.Overlaps(other));

  // MergeFrom unions and coalesces: [2-4]+[8-9] with [5-7]+[9] closes
  // every gap ([4|5] and [7|8] are adjacent), leaving one interval.
  RowIntervalSet merged;
  merged.MergeFrom(s);
  merged.MergeFrom(other);
  EXPECT_EQ(merged.ToString(), "[2-9]");
  EXPECT_TRUE(merged.Within(2, 9));
}

// ---------------------------------------------------------------------
// FootprintRecorder
// ---------------------------------------------------------------------

TEST(FootprintRecorderTest, RecordsReadsWritesAndSentinels) {
  FootprintRecorder rec({3, 2});
  EXPECT_TRUE(rec.Empty());
  rec.OnRead(0, 1);
  rec.OnRead(0, analysis::kProbeRowStructure);
  rec.OnWrite(1, 0);
  rec.OnWrite(0, analysis::kProbeRowStructure);
  EXPECT_FALSE(rec.Empty());
  const std::set<AccessScope::Atom> reads = rec.ReadAtoms();
  EXPECT_EQ(reads.size(), 2u);
  EXPECT_TRUE(reads.count({0, 1}));
  EXPECT_TRUE(reads.count({0, AccessScope::kRowStructure}));
  const std::set<AccessScope::Atom> writes = rec.WriteAtoms();
  EXPECT_EQ(writes.size(), 2u);
  EXPECT_TRUE(writes.count({1, 0}));
  EXPECT_TRUE(writes.count({0, AccessScope::kRowStructure}));
  rec.Clear();
  EXPECT_TRUE(rec.Empty());
}

TEST(FootprintRecorderTest, ScopedProbeInstallsAndSuppresses) {
  FootprintRecorder rec({2});
  {
    analysis::ScopedAccessProbe probe(&rec);
    analysis::ProbeRead(0, 1);
    {
      // Framework internals (validator votes, undo, listener
      // notification) run under suppression and must stay invisible.
      analysis::ScopedProbeSuppress suppress;
      analysis::ProbeRead(0, 0);
      analysis::ProbeWrite(0, 0);
    }
    analysis::ProbeWrite(0, 1);
  }
  // Outside the scope, probes are no-ops again.
  analysis::ProbeRead(0, 0);
  EXPECT_EQ(rec.ReadAtoms(), (std::set<AccessScope::Atom>{{0, 1}}));
  EXPECT_EQ(rec.WriteAtoms(), (std::set<AccessScope::Atom>{{0, 1}}));
}

// ---------------------------------------------------------------------
// ScopeChecker conformance rules
// ---------------------------------------------------------------------

TEST(ScopeCheckerTest, ObservedScopesAreNeverConformant) {
  // Regression guarantee: a scope whose read set is a lower bound
  // (reads_complete == false, as AccessMonitor::ObservedScope
  // produces) must never be certified conformant, even when the
  // observed footprint matches it exactly.
  AccessScope observed;
  observed.known = true;
  observed.reads_complete = false;
  observed.AddWrite(0, 0);
  EXPECT_FALSE(ScopeChecker::CanCertify(observed));

  ScopeChecker checker(ScopeCheckMode::kStrict, 1);
  FootprintRecorder rec({1});
  rec.OnWrite(0, 0);
  rec.OnRead(0, 0);
  checker.CheckStep(0, "observed-tool", observed, rec, 0);
  EXPECT_EQ(checker.ToolConformance(0), Conformance::kNotCertifiable);
  EXPECT_TRUE(checker.ok());  // no violation either: nothing checkable

  // The real AccessMonitor output goes through the same gate.
  AccessMonitor monitor(1);
  monitor.Record(0, 0, Modification::DeleteTuple("T", 0));
  EXPECT_FALSE(ScopeChecker::CanCertify(monitor.ObservedScope(0)));
}

TEST(ScopeCheckerTest, UndeclaredReadAndWriteAreFlagged) {
  AccessScope declared;
  declared.known = true;
  declared.AddWrite(0, 0);
  declared.AddRead(0, AccessScope::kRowStructure);

  ScopeChecker checker(ScopeCheckMode::kWarn, 2);
  FootprintRecorder rec({3});
  rec.OnRead(0, AccessScope::kRowStructure);
  rec.OnRead(0, 0);
  rec.OnWrite(0, 0);
  checker.CheckStep(0, "honest", declared, rec, 0);
  EXPECT_EQ(checker.ToolConformance(0), Conformance::kConformant);
  EXPECT_FALSE(checker.IsDistrusted(0));

  rec.Clear();
  rec.OnRead(0, 2);   // undeclared read
  rec.OnWrite(0, 1);  // undeclared write
  checker.CheckStep(1, "liar", declared, rec, 3);
  EXPECT_EQ(checker.ToolConformance(1), Conformance::kViolating);
  EXPECT_TRUE(checker.IsDistrusted(1));
  const std::vector<ScopeViolation> violations = checker.violations();
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].kind, ScopeViolation::Kind::kUndeclaredRead);
  EXPECT_EQ(violations[0].table, 0);
  EXPECT_EQ(violations[0].column, 2);
  EXPECT_EQ(violations[0].first_pass, 3);
  EXPECT_EQ(violations[1].kind, ScopeViolation::Kind::kUndeclaredWrite);
  EXPECT_EQ(violations[1].column, 1);

  // Repeats in later passes deduplicate onto the first sighting.
  checker.CheckStep(1, "liar", declared, rec, 7);
  EXPECT_EQ(checker.violations().size(), 2u);
  EXPECT_EQ(checker.violations()[0].first_pass, 3);
}

TEST(ScopeCheckerTest, GroupDisjointCrossCheckIsDirectional) {
  ScopeChecker checker(ScopeCheckMode::kWarn, 2);
  FootprintRecorder a({2}), b({2});
  a.OnWrite(0, 0);  // writes the cell b reads
  b.OnRead(0, 0);
  b.OnWrite(0, 1);  // b's write does not disturb a (a reads nothing)
  checker.CheckGroupDisjoint({0, 1}, {"a", "b"}, {&a, &b}, 0);
  const std::vector<ScopeViolation> violations = checker.violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ScopeViolation::Kind::kGroupOverlap);
  EXPECT_EQ(violations[0].tool, 0);
  EXPECT_EQ(violations[0].other_tool, 1);
}

// ---------------------------------------------------------------------
// Row-ranged scope declarations and interval-aware checking
// ---------------------------------------------------------------------

TEST(AccessScopeRangeTest, UnrangedDeclarationSupersedesRanges) {
  AccessScope s;
  s.AddWriteRange(0, 0, 5, 9);
  ASSERT_NE(s.RangeOf({0, 0}), nullptr);
  // A later whole-column declaration widens the atom to unrestricted.
  s.AddWrite(0, 0);
  EXPECT_EQ(s.RangeOf({0, 0}), nullptr);
  // And once unrestricted, a range cannot narrow it back down.
  s.AddWriteRange(0, 0, 5, 9);
  EXPECT_EQ(s.RangeOf({0, 0}), nullptr);

  // Repeated ranged declarations widen to the hull.
  AccessScope h;
  h.AddReadRange(0, 1, 2, 4);
  h.AddReadRange(0, 1, 8, 10);
  ASSERT_NE(h.RangeOf({0, 1}), nullptr);
  EXPECT_EQ(h.RangeOf({0, 1})->first, 2);
  EXPECT_EQ(h.RangeOf({0, 1})->second, 10);
}

TEST(AccessScopeRangeTest, MergeFromHullsRangesAndDropsMixed) {
  AccessScope a, b;
  a.AddWriteRange(0, 0, 0, 4);
  a.AddWriteRange(0, 1, 0, 4);
  b.AddWriteRange(0, 0, 3, 9);  // both ranged -> hull
  b.AddWrite(0, 1);             // one side unranged -> unrestricted
  b.AddWriteRange(1, 2, 7, 8);  // only b touches it -> kept
  a.MergeFrom(b);
  ASSERT_NE(a.RangeOf({0, 0}), nullptr);
  EXPECT_EQ(a.RangeOf({0, 0})->first, 0);
  EXPECT_EQ(a.RangeOf({0, 0})->second, 9);
  EXPECT_EQ(a.RangeOf({0, 1}), nullptr);
  ASSERT_NE(a.RangeOf({1, 2}), nullptr);
  EXPECT_EQ(a.RangeOf({1, 2})->first, 7);
}

TEST(AccessScopeRangeTest, DisjointRangesOfOneColumnDoNotConflict) {
  AccessScope lo, hi;
  lo.known = hi.known = true;
  lo.AddWriteRange(0, 0, 0, 4);
  lo.AddRead(0, AccessScope::kRowStructure);
  hi.AddWriteRange(0, 0, 5, 9);
  hi.AddRead(0, AccessScope::kRowStructure);
  // The interval exemption: same cell atom, certified-disjoint ranges.
  EXPECT_FALSE(WritesDisturb(lo, hi));
  EXPECT_FALSE(WritesDisturb(hi, lo));
  EXPECT_FALSE(ScopesConflict(lo, hi));
  EXPECT_FALSE(ValidationDisturb(lo, hi));

  // Overlapping ranges conflict like any shared cell.
  AccessScope mid;
  mid.known = true;
  mid.AddWriteRange(0, 0, 4, 6);
  EXPECT_TRUE(ScopesConflict(lo, mid));

  // The exemption never crosses granularities: a row-structure writer
  // still disturbs a ranged cell reader of the same table.
  AccessScope rows;
  rows.known = true;
  rows.AddWrite(0, AccessScope::kRowStructure);
  EXPECT_TRUE(WritesDisturb(rows, lo));
  EXPECT_TRUE(ScopesConflict(rows, lo));
  // And the coarse atom-set helpers stay interval-blind.
  EXPECT_TRUE(AtomSetsOverlap(lo.writes, hi.writes));
}

TEST(FootprintRecorderTest, AttributesRowsAndAllRowsSeparately) {
  FootprintRecorder rec({2});
  rec.OnRead(0, 0, 3);
  rec.OnRead(0, 0, 4);
  rec.OnWrite(0, 1, 7);
  rec.OnWrite(0, 1);  // no row attribution: the all-rows bit
  ASSERT_NE(rec.ReadRows(0, 0), nullptr);
  EXPECT_EQ(rec.ReadRows(0, 0)->ToString(), "[3-4]");
  EXPECT_FALSE(rec.ReadAllRows(0, 0));
  ASSERT_NE(rec.WriteRows(0, 1), nullptr);
  EXPECT_EQ(rec.WriteRows(0, 1)->ToString(), "[7]");
  EXPECT_TRUE(rec.WriteAllRows(0, 1));
  // Sentinel atoms never carry rows.
  rec.OnRead(0, analysis::kProbeRowStructure, 5);
  EXPECT_EQ(rec.ReadRows(0, analysis::kProbeRowStructure), nullptr);
  rec.Clear();
  EXPECT_EQ(rec.ReadRows(0, 0), nullptr);
  EXPECT_EQ(rec.WriteRows(0, 1), nullptr);
}

TEST(ScopeCheckerTest, RangedDeclarationFlagsEscapingRows) {
  AccessScope declared;
  declared.known = true;
  declared.AddWriteRange(0, 0, 0, 4);
  declared.AddRead(0, AccessScope::kRowStructure);

  // Inside the interval: conformant.
  ScopeChecker ok_checker(ScopeCheckMode::kWarn, 1);
  FootprintRecorder rec({2});
  rec.OnRead(0, analysis::kProbeRowStructure);
  rec.OnRead(0, 0, 2);
  rec.OnWrite(0, 0, 4);
  ok_checker.CheckStep(0, "ranged", declared, rec, 0);
  EXPECT_EQ(ok_checker.ToolConformance(0), Conformance::kConformant);

  // A write of row 9 escapes [0, 4] even though the atom is declared.
  ScopeChecker bad_checker(ScopeCheckMode::kWarn, 1);
  rec.Clear();
  rec.OnRead(0, analysis::kProbeRowStructure);
  rec.OnWrite(0, 0, 9);
  bad_checker.CheckStep(0, "ranged", declared, rec, 0);
  EXPECT_TRUE(bad_checker.IsDistrusted(0));
  const std::vector<ScopeViolation> bad = bad_checker.violations();
  ASSERT_EQ(bad.size(), 1u);
  const ScopeViolation& v = bad[0];
  EXPECT_EQ(v.kind, ScopeViolation::Kind::kUndeclaredWrite);
  EXPECT_EQ(v.row, 9);
  EXPECT_NE(v.ToString().find("row 9 outside declared range"),
            std::string::npos);

  // A non-attributable all-rows access cannot be proven in range.
  ScopeChecker all_checker(ScopeCheckMode::kWarn, 1);
  rec.Clear();
  rec.OnRead(0, analysis::kProbeRowStructure);
  rec.OnWrite(0, 0);
  all_checker.CheckStep(0, "ranged", declared, rec, 0);
  EXPECT_TRUE(all_checker.IsDistrusted(0));
}

TEST(ScopeCheckerTest, GroupDisjointExemptsDisjointObservedRows) {
  // Same cell atom on both sides, but the observed row sets are
  // disjoint: the pair did not interact.
  ScopeChecker checker(ScopeCheckMode::kWarn, 2);
  FootprintRecorder a({1}), b({1});
  a.OnWrite(0, 0, 1);
  a.OnRead(0, 0, 1);
  b.OnWrite(0, 0, 5);
  b.OnRead(0, 0, 5);
  checker.CheckGroupDisjoint({0, 1}, {"lo", "hi"}, {&a, &b}, 0);
  EXPECT_TRUE(checker.violations().empty());

  // Overlapping rows are still a group overlap...
  ScopeChecker overlap(ScopeCheckMode::kWarn, 2);
  b.OnRead(0, 0, 1);
  overlap.CheckGroupDisjoint({0, 1}, {"lo", "hi"}, {&a, &b}, 0);
  EXPECT_FALSE(overlap.violations().empty());

  // ...and an all-rows access forfeits the exemption.
  ScopeChecker allrows(ScopeCheckMode::kWarn, 2);
  FootprintRecorder c({1}), d({1});
  c.OnWrite(0, 0, 1);
  d.OnRead(0, 0);  // no row attribution
  allrows.CheckGroupDisjoint({0, 1}, {"c", "d"}, {&c, &d}, 0);
  EXPECT_FALSE(allrows.violations().empty());
}

TEST(ScopeCheckModeTest, ParsesSampled) {
  ScopeCheckMode mode = ScopeCheckMode::kOff;
  EXPECT_TRUE(analysis::ParseScopeCheckMode("sampled", &mode));
  EXPECT_EQ(mode, ScopeCheckMode::kSampled);
  EXPECT_STREQ(analysis::ScopeCheckModeToString(ScopeCheckMode::kSampled),
               "sampled");
  EXPECT_FALSE(analysis::ParseScopeCheckMode("nonsense", &mode));
}

// ---------------------------------------------------------------------
// Row-ranged write leases
// ---------------------------------------------------------------------

TEST(WriteLeaseTest, RangedCoverageDemandsAttributedInRangeRows) {
  AccessScope lo;
  lo.known = true;
  lo.AddWriteRange(0, 0, 0, 4);
  std::vector<WriteLease> leases;
  ASSERT_TRUE(PartitionWriteLeases({7}, {lo}, &leases));
  ASSERT_EQ(leases.size(), 1u);
  EXPECT_EQ(leases[0].tool_id, 7);
  EXPECT_TRUE(leases[0].Covers(0, 0, 0));
  EXPECT_TRUE(leases[0].Covers(0, 0, 4));
  EXPECT_FALSE(leases[0].Covers(0, 0, 5));
  EXPECT_FALSE(leases[0].Covers(0, 1, 2));
  // A ranged atom rejects writes it cannot attribute to a row.
  EXPECT_FALSE(leases[0].Covers(0, 0, analysis::kProbeAllRows));
}

TEST(WriteLeaseTest, PartitionAcceptsDisjointRangesOfOneColumn) {
  AccessScope lo, hi;
  lo.known = hi.known = true;
  lo.AddWriteRange(0, 0, 0, 4);
  hi.AddWriteRange(0, 0, 5, 9);
  std::vector<WriteLease> leases;
  EXPECT_TRUE(PartitionWriteLeases({0, 1}, {lo, hi}, &leases));

  // Overlapping ranges of the same column fail the certificate.
  AccessScope mid;
  mid.known = true;
  mid.AddWriteRange(0, 0, 4, 6);
  EXPECT_FALSE(PartitionWriteLeases({0, 1}, {lo, mid}, &leases));
  // So does an unranged co-writer of the column.
  AccessScope whole;
  whole.known = true;
  whole.AddWrite(0, 0);
  EXPECT_FALSE(PartitionWriteLeases({0, 1}, {lo, whole}, &leases));
}

TEST(WriteLeaseTest, SampledSinkAlwaysChecksTheFirstWrite) {
  AccessScope ranged;
  ranged.known = true;
  ranged.AddWriteRange(0, 0, 0, 4);
  std::vector<WriteLease> leases;
  ASSERT_TRUE(PartitionWriteLeases({0}, {ranged}, &leases));

  // Full mode latches any out-of-lease write with its row.
  LeaseProbeSink full(&leases[0], nullptr);
  full.OnWrite(0, 0, 2);
  EXPECT_FALSE(full.violated());
  full.OnWrite(0, 0, 9);
  EXPECT_TRUE(full.violated());
  EXPECT_EQ(full.violation(), (AccessScope::Atom{0, 0}));
  EXPECT_EQ(full.violation_row(), 9);

  // Sampled mode checks write 0 unconditionally: a first-write lie is
  // caught even at 1/64 sampling.
  LeaseProbeSink sampled(&leases[0], nullptr, /*sampled=*/true);
  sampled.OnWrite(0, 0, 9);
  EXPECT_TRUE(sampled.violated());

  // And the strided writes are really skipped: 63 bad writes after a
  // good first one go unchecked until the stride comes around.
  LeaseProbeSink strided(&leases[0], nullptr, /*sampled=*/true);
  strided.OnWrite(0, 0, 1);
  for (int i = 0; i < LeaseProbeSink::kSampleStride - 1; ++i) {
    strided.OnWrite(0, 0, 9);
  }
  EXPECT_FALSE(strided.violated());
  strided.OnWrite(0, 0, 9);  // write #64: sampled again
  EXPECT_TRUE(strided.violated());
}

// ---------------------------------------------------------------------
// TupleCountTool's narrowed declaration (satellite)
// ---------------------------------------------------------------------

Schema TwoTableSchema() {
  Schema s;
  s.name = "narrow";
  s.tables.push_back({"P", {{"x", ColumnType::kInt64, ""}}});
  s.tables.push_back({"C",
                      {{"p", ColumnType::kForeignKey, "P"},
                       {"y", ColumnType::kInt64, ""}}});
  return s;
}

TEST(TupleCountScopeTest, DeclaresRowStructureWritesOnly) {
  TupleCountTool tool(TwoTableSchema());
  const AccessScope scope = tool.DeclaredScope();
  ASSERT_TRUE(scope.known);
  EXPECT_TRUE(scope.reads_complete);
  for (const AccessScope::Atom& w : scope.writes) {
    EXPECT_EQ(w.second, AccessScope::kRowStructure)
        << "table " << w.first << " declares a non-row-structure write";
  }
  // The template-row reads and FK reads are declared (the checker
  // needs them covered) ...
  EXPECT_TRUE(AtomCoveredBy({0, 0}, scope.reads));
  EXPECT_TRUE(AtomCoveredBy({1, 0}, scope.reads));
  // ... but they are Tweak-only: the statistics read set stays pure
  // row structure, so cell writes cannot change the tool's votes.
  for (const AccessScope::Atom& r : scope.stats_reads) {
    EXPECT_EQ(r.second, AccessScope::kRowStructure);
  }
}

TEST(TupleCountScopeTest, CellToolsStayEligibleUnderTupleCountValidator) {
  TupleCountTool tool(TwoTableSchema());
  const AccessScope count_scope = tool.DeclaredScope();
  AccessScope cell;  // a ColumnFreq-like tool on C.y
  cell.known = true;
  cell.AddWrite(1, 1);
  cell.AddRead(1, AccessScope::kRowStructure);
  // Cell writes cannot disturb tuple-count's statistics (the old
  // whole-table declaration serialized every pass after tuple-count
  // was enforced)...
  EXPECT_FALSE(ValidationDisturb(cell, count_scope));
  // ...while tuple-count's row inserts/deletes still rightly disturb
  // the cell tool's statistics, and the two genuinely conflict for
  // grouping purposes.
  EXPECT_TRUE(ValidationDisturb(count_scope, cell));
  EXPECT_TRUE(ScopesConflict(count_scope, cell));
}

// ---------------------------------------------------------------------
// Coordinator integration: the under-declaring tool
// ---------------------------------------------------------------------

Schema WideSchema() {
  Schema s;
  s.name = "wide";
  s.tables.push_back({"T",
                      {{"a", ColumnType::kInt64, ""},
                       {"b", ColumnType::kInt64, ""},
                       {"c", ColumnType::kInt64, ""},
                       {"d", ColumnType::kInt64, ""}}});
  return s;
}

std::unique_ptr<Database> WideDatabase() {
  auto db = Database::Create(WideSchema()).ValueOrAbort();
  Table* t = db->FindTable("T");
  for (int64_t i = 0; i < 8; ++i) {
    t->Append({Value(i), Value(i * 2), Value(i * 3), Value(i * 5)})
        .status()
        .Check();
  }
  return db;
}

/// A minimal tool that rewrites one column. When `sneaky_col` >= 0 its
/// Tweak also reads that column WITHOUT declaring it - the
/// under-declaration the checker exists to catch.
class ProbeTool : public PropertyTool {
 public:
  ProbeTool(std::string name, int write_col, int sneaky_col = -1)
      : name_(std::move(name)),
        write_col_(write_col),
        sneaky_col_(sneaky_col) {}

  std::string name() const override { return name_; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0.0; }
  double ValidationPenalty(const Modification&) const override { return 0.0; }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}

  AccessScope DeclaredScope() const override {
    AccessScope scope;
    scope.known = true;
    scope.AddWrite(0, write_col_);
    scope.AddRead(0, AccessScope::kRowStructure);
    // sneaky_col_ is deliberately NOT declared.
    return scope;
  }

  Status Tweak(TweakContext* ctx) override {
    Table& t = db_->table(0);
    TupleId first = kInvalidTuple;
    int64_t seen = 0;
    t.ForEachLive([&](TupleId tid) {
      if (first == kInvalidTuple) first = tid;
      if (sneaky_col_ >= 0 && t.column(sneaky_col_).IsValue(tid)) {
        seen += t.column(sneaky_col_).GetInt(tid);  // the undeclared read
      }
    });
    if (first == kInvalidTuple) return Status::OK();
    Modification mod = Modification::ReplaceValues(
        t.name(), {first}, {write_col_}, {Value(int64_t{100} + seen % 7)});
    return ctx->TryApply(mod);
  }

 private:
  std::string name_;
  int write_col_;
  int sneaky_col_;
  Database* db_ = nullptr;
};

TEST(ScopeCheckIntegrationTest, StrictRunFailsOnUnderDeclaredRead) {
  auto db = WideDatabase();
  Coordinator coordinator;
  const int liar =
      coordinator.AddTool(std::make_unique<ProbeTool>("liar", 2, 3));
  CoordinatorOptions options;
  options.check_scopes = ScopeCheckMode::kStrict;
  const auto result = coordinator.Run(db.get(), {liar}, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("scope check"), std::string::npos)
      << result.status().ToString();
  ASSERT_NE(coordinator.last_checker(), nullptr);
  EXPECT_TRUE(coordinator.last_checker()->IsDistrusted(liar));
}

TEST(ScopeCheckIntegrationTest, HonestToolsPassStrict) {
  auto db = WideDatabase();
  Coordinator coordinator;
  const int a = coordinator.AddTool(std::make_unique<ProbeTool>("a", 0));
  const int b = coordinator.AddTool(std::make_unique<ProbeTool>("b", 1));
  CoordinatorOptions options;
  options.check_scopes = ScopeCheckMode::kStrict;
  options.iterations = 2;
  const auto result = coordinator.Run(db.get(), {a, b}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.ValueOrDie().scope_violations.empty());
  EXPECT_EQ(coordinator.last_checker()->ToolConformance(a),
            Conformance::kConformant);
  EXPECT_EQ(coordinator.last_checker()->ToolConformance(b),
            Conformance::kConformant);
}

TEST(ScopeCheckIntegrationTest, CaughtToolIsKeptOffTheParallelFastPath) {
  auto db = WideDatabase();
  Coordinator coordinator;
  const int a = coordinator.AddTool(std::make_unique<ProbeTool>("a", 0));
  const int b = coordinator.AddTool(std::make_unique<ProbeTool>("b", 1));
  const int liar =
      coordinator.AddTool(std::make_unique<ProbeTool>("liar", 2, 3));
  CoordinatorOptions options;
  options.check_scopes = ScopeCheckMode::kWarn;
  options.parallel_pass = true;
  options.pass_threads = 2;
  options.iterations = 2;
  // Focus on the scheduling effect of distrust, not validator votes.
  options.validate = false;
  const auto result = coordinator.Run(db.get(), {a, b, liar}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RunReport report = result.ValueOrDie();

  // The lie was recorded (an undeclared read of T.d in pass 1)...
  ASSERT_FALSE(report.scope_violations.empty());
  EXPECT_EQ(report.scope_violations[0].kind,
            ScopeViolation::Kind::kUndeclaredRead);
  EXPECT_EQ(report.scope_violations[0].tool, liar);
  EXPECT_EQ(report.scope_violations[0].table, 0);
  EXPECT_EQ(report.scope_violations[0].column, 3);
  EXPECT_EQ(report.scope_violations[0].first_pass, 0);
  EXPECT_TRUE(coordinator.last_checker()->IsDistrusted(liar));

  // ...and from then on the liar's declaration is distrusted: its
  // observed scope (reads_complete == false) cannot join a group, so
  // its pass-2 step ran serially while the honest pair stayed grouped.
  ASSERT_EQ(report.steps.size(), 6u);
  EXPECT_TRUE(report.steps[3].parallel) << "honest tool a, pass 2";
  EXPECT_TRUE(report.steps[4].parallel) << "honest tool b, pass 2";
  EXPECT_FALSE(report.steps[5].parallel) << "distrusted liar, pass 2";
}

}  // namespace
}  // namespace aspect
