// Tests for src/workload: blueprints, snapshot generation, and the
// structural counts that match the paper's datasets.
#include <gtest/gtest.h>

#include "relational/integrity.h"
#include "relational/refgraph.h"
#include "workload/blueprint.h"
#include "workload/generator.h"

namespace aspect {
namespace {

struct DatasetCounts {
  const char* name;
  DatasetBlueprint (*factory)(double);
  size_t tables, chains, coappear, pairwise;
};

class BlueprintCountTest : public ::testing::TestWithParam<DatasetCounts> {};

TEST_P(BlueprintCountTest, StructuralCountsMatchDesign) {
  const DatasetCounts& c = GetParam();
  const DatasetBlueprint bp = c.factory(1.0);
  const Schema schema = bp.ToSchema();
  ASSERT_TRUE(schema.Validate().ok()) << schema.Validate();
  EXPECT_EQ(schema.tables.size(), c.tables);
  ReferenceGraph graph(schema);
  EXPECT_TRUE(graph.IsAcyclic());
  EXPECT_EQ(graph.MaximalChains().size(), c.chains);
  EXPECT_EQ(graph.CoappearGroups().size(), c.coappear);
  EXPECT_EQ(schema.responses.size(), c.pairwise);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, BlueprintCountTest,
    ::testing::Values(
        DatasetCounts{"XiamiLike", &XiamiLike, 31, 42, 12, 4},
        DatasetCounts{"DoubanMovieLike", &DoubanMovieLike, 17, 24, 6, 2},
        DatasetCounts{"DoubanBookLike", &DoubanBookLike, 12, 16, 4, 2},
        DatasetCounts{"DoubanMusicLike", &DoubanMusicLike, 11, 15, 4, 1}),
    [](const ::testing::TestParamInfo<DatasetCounts>& info) {
      return info.param.name;
    });

TEST(BlueprintTest, ResponseAnnotationsWired) {
  const Schema s = XiamiLike(1.0).ToSchema();
  ASSERT_EQ(s.responses.size(), 4u);
  for (const ResponseSpec& r : s.responses) {
    EXPECT_GE(r.author_col, 0) << r.response_table;
    EXPECT_EQ(r.post_col, 0);
    EXPECT_EQ(r.responder_col, 1);
  }
  EXPECT_EQ(s.user_table, "User");
}

TEST(BlueprintTest, ScaleMultipliesSizes) {
  const DatasetBlueprint small = XiamiLike(0.5);
  const DatasetBlueprint big = XiamiLike(2.0);
  EXPECT_LT(small.tables[0].base_size, big.tables[0].base_size);
}

class GeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto gen = GenerateDataset(DoubanBookLike(0.5), 99);
    ASSERT_TRUE(gen.ok()) << gen.status();
    set_ = std::make_unique<SnapshotSet>(std::move(gen).ValueOrDie());
  }
  std::unique_ptr<SnapshotSet> set_;
};

TEST_F(GeneratorTest, SixSnapshotsGrowing) {
  EXPECT_EQ(set_->num_snapshots(), 6);
  for (int t = 0; t < static_cast<int>(set_->schema().tables.size()); ++t) {
    for (int s = 2; s <= 6; ++s) {
      EXPECT_GE(set_->TableSize(t, s), set_->TableSize(t, s - 1))
          << "table " << t << " snapshot " << s;
    }
    EXPECT_GT(set_->TableSize(t, 6), set_->TableSize(t, 1)) << t;
  }
}

TEST_F(GeneratorTest, FullDatasetHasIntegrity) {
  EXPECT_TRUE(CheckIntegrity(set_->full()).ok());
}

TEST_F(GeneratorTest, SnapshotsArePrefixesAndFkClosed) {
  for (int s = 1; s <= 6; s += 2) {
    auto snap = set_->Materialize(s).ValueOrAbort();
    EXPECT_TRUE(CheckIntegrity(*snap).ok()) << "snapshot " << s;
    for (int t = 0; t < snap->num_tables(); ++t) {
      EXPECT_EQ(snap->table(t).NumTuples(), set_->TableSize(t, s));
      // Prefix property: rows agree with the full dataset.
      if (snap->table(t).NumTuples() > 0) {
        EXPECT_EQ(snap->table(t).GetRow(0), set_->full().table(t).GetRow(0));
      }
    }
  }
}

TEST_F(GeneratorTest, MaterializeOutOfRangeRejected) {
  EXPECT_FALSE(set_->Materialize(0).ok());
  EXPECT_FALSE(set_->Materialize(7).ok());
}

TEST_F(GeneratorTest, DeterministicInSeed) {
  auto again = GenerateDataset(DoubanBookLike(0.5), 99).ValueOrAbort();
  const Table& a = set_->full().table(3);
  const Table& b = again.full().table(3);
  ASSERT_EQ(a.NumTuples(), b.NumTuples());
  for (TupleId t = 0; t < std::min<int64_t>(a.NumTuples(), 50); ++t) {
    EXPECT_EQ(a.GetRow(t), b.GetRow(t)) << t;
  }
}

TEST_F(GeneratorTest, DifferentSeedsDiffer) {
  auto other = GenerateDataset(DoubanBookLike(0.5), 100).ValueOrAbort();
  const Table& a = set_->full().table(3);
  const Table& b = other.full().table(3);
  int diffs = 0;
  for (TupleId t = 0; t < std::min<int64_t>(a.NumTuples(), 50); ++t) {
    diffs += (a.GetRow(t) != b.GetRow(t));
  }
  EXPECT_GT(diffs, 0);
}

TEST_F(GeneratorTest, NonUniformGrowthAcrossTables) {
  // The paper stresses that real tables do not scale uniformly; check
  // that at least two tables have visibly different D6/D1 ratios.
  double min_ratio = 1e9, max_ratio = 0;
  for (int t = 0; t < static_cast<int>(set_->schema().tables.size()); ++t) {
    const double r = static_cast<double>(set_->TableSize(t, 6)) /
                     static_cast<double>(set_->TableSize(t, 1));
    min_ratio = std::min(min_ratio, r);
    max_ratio = std::max(max_ratio, r);
  }
  EXPECT_GT(max_ratio / min_ratio, 1.5);
}

TEST(GeneratorSelfResponseTest, SelfResponsesGenerated) {
  DatasetBlueprint bp = DoubanMusicLike(1.0);
  bp.self_response_rate = 0.3;
  auto set = GenerateDataset(bp, 5).ValueOrAbort();
  const Database& db = set.full();
  const ResponseSpec& r = db.schema().responses[0];
  const Table* resp = db.FindTable(r.response_table);
  const Table* post = db.FindTable(r.post_table);
  int64_t self = 0;
  resp->ForEachLive([&](TupleId t) {
    const TupleId p = resp->column(r.post_col).GetInt(t);
    const TupleId responder = resp->column(r.responder_col).GetInt(t);
    if (post->column(r.author_col).GetInt(p) == responder) ++self;
  });
  EXPECT_GT(self, resp->NumTuples() / 5);
}

TEST(GeneratorErrorTest, ParentDeclaredLaterRejected) {
  DatasetBlueprint bp;
  bp.name = "bad";
  bp.user_table = "A";
  TableBlueprint a;
  a.name = "A";
  a.kind = TableKind::kActivity;
  a.parents = {"B"};
  TableBlueprint b;
  b.name = "B";
  bp.tables = {a, b};
  EXPECT_FALSE(GenerateDataset(bp, 1).ok());
}

}  // namespace
}  // namespace aspect
