// Tests for the batched modification pipeline and the O1-parallel
// pass: applying a batch through TweakContext::TryApplyBatch must
// leave the database, the modification log, and every listening tool's
// statistics byte-identical to applying the same modifications one at
// a time, and a parallel pass must match the serial pass error for
// error at any thread count.
#include <gtest/gtest.h>

#include <cmath>

#include "aspect/coordinator.h"
#include "aspect/tweak_context.h"
#include "properties/coappear.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "properties/simple.h"
#include "relational/modlog.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

namespace aspect {
namespace {

// Byte-level equality: slots, tombstones, and every cell's state (a
// kNull cell is not a kEmpty cell even though both read back as Null).
void ExpectDatabasesIdentical(const Database& a, const Database& b) {
  ASSERT_EQ(a.num_tables(), b.num_tables());
  for (int t = 0; t < a.num_tables(); ++t) {
    const Table& ta = a.table(t);
    const Table& tb = b.table(t);
    ASSERT_EQ(ta.NumSlots(), tb.NumSlots()) << ta.name();
    ASSERT_EQ(ta.NumTuples(), tb.NumTuples()) << ta.name();
    for (TupleId tid = 0; tid < ta.NumSlots(); ++tid) {
      ASSERT_EQ(ta.IsLive(tid), tb.IsLive(tid)) << ta.name() << " " << tid;
      for (int c = 0; c < ta.num_columns(); ++c) {
        ASSERT_EQ(static_cast<int>(ta.column(c).state(tid)),
                  static_cast<int>(tb.column(c).state(tid)))
            << ta.name() << " " << tid << " col " << c;
        if (ta.column(c).IsValue(tid)) {
          ASSERT_EQ(ta.column(c).Get(tid), tb.column(c).Get(tid))
              << ta.name() << " " << tid << " col " << c;
        }
      }
    }
  }
}

// Entry-level equality of two modification logs: same modifications,
// same order, same pre-images, same assigned tuple ids.
void ExpectLogsIdentical(const ModificationLog& a, const ModificationLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    const ModificationLog::Entry& ea = a.entries()[static_cast<size_t>(i)];
    const ModificationLog::Entry& eb = b.entries()[static_cast<size_t>(i)];
    ASSERT_EQ(static_cast<int>(ea.mod.kind), static_cast<int>(eb.mod.kind))
        << "entry " << i;
    ASSERT_EQ(ea.mod.table, eb.mod.table) << "entry " << i;
    ASSERT_EQ(ea.mod.tuples, eb.mod.tuples) << "entry " << i;
    ASSERT_EQ(ea.mod.cols, eb.mod.cols) << "entry " << i;
    ASSERT_EQ(ea.mod.values, eb.mod.values) << "entry " << i;
    ASSERT_EQ(ea.old_values, eb.old_values) << "entry " << i;
    ASSERT_EQ(ea.new_tuple, eb.new_tuple) << "entry " << i;
  }
}

std::vector<TupleId> LiveTuples(const Table& t) {
  std::vector<TupleId> live;
  t.ForEachLive([&](TupleId tid) { live.push_back(tid); });
  return live;
}

// Builds one randomized batch of modifications of the given kind
// against the current state of `db`, touching pairwise-disjoint tuples
// (the ApplyBatch contract). Replacement values are sampled from donor
// tuples of the same column, so they are type-correct and stay in the
// column's observed domain.
std::vector<Modification> RandomBatch(const Database& db, int table_index,
                                      OpKind kind, Rng* rng) {
  const Table& t = db.table(table_index);
  std::vector<TupleId> live = LiveTuples(t);
  std::vector<Modification> batch;
  if (live.size() < 4) return batch;
  rng->Shuffle(&live);
  const size_t n =
      static_cast<size_t>(rng->UniformInt(2, 9)) % (live.size() / 2) + 2;
  for (size_t i = 0; i < n; ++i) {
    const TupleId victim = live[i];
    switch (kind) {
      case OpKind::kReplaceValues: {
        if (t.num_columns() == 0) break;  // attribute-less root table
        const int c =
            static_cast<int>(rng->UniformInt(0, t.num_columns() - 1));
        const TupleId donor = live[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(live.size()) - 1))];
        if (!t.column(c).IsValue(victim) || !t.column(c).IsValue(donor)) {
          continue;
        }
        batch.push_back(Modification::ReplaceValues(
            t.name(), {victim}, {c}, {t.column(c).Get(donor)}));
        break;
      }
      case OpKind::kInsertTuple: {
        std::vector<Value> row;
        bool full = true;
        for (int c = 0; c < t.num_columns(); ++c) {
          if (!t.column(c).IsValue(victim)) {
            full = false;
            break;
          }
          row.push_back(t.column(c).Get(victim));
        }
        if (full) {
          batch.push_back(Modification::InsertTuple(t.name(), std::move(row)));
        }
        break;
      }
      case OpKind::kDeleteTuple:
        batch.push_back(Modification::DeleteTuple(t.name(), victim));
        break;
      default:
        break;
    }
  }
  return batch;
}

// The per-converted-tool equivalence check: bind one instance of the
// tool to each of two identical databases, push randomized batches of
// every modification kind through TryApplyBatch on one side and
// one-at-a-time TryApply on the other, and require the databases, the
// modification logs, the context counters, and the tools' statistics
// (error and validation votes) to come out identical. This exercises
// the tool's OnAppliedBatch fast path against its OnApplied loop.
void CheckBatchMatchesSingles(PropertyTool* tool_a, PropertyTool* tool_b,
                              const Database& truth, uint64_t seed) {
  ASSERT_TRUE(tool_a->SetTargetFromDataset(truth).ok());
  ASSERT_TRUE(tool_b->SetTargetFromDataset(truth).ok());
  std::unique_ptr<Database> a = truth.Clone();
  std::unique_ptr<Database> b = truth.Clone();
  ModificationLog log_a(a.get());
  ModificationLog log_b(b.get());
  ASSERT_TRUE(tool_a->Bind(a.get()).ok());
  ASSERT_TRUE(tool_b->Bind(b.get()).ok());

  Rng rng_mods(seed);  // drives batch construction, shared by design
  Rng rng_a(seed + 1), rng_b(seed + 1);
  TweakContext ctx_a(a.get(), {}, &rng_a);
  TweakContext ctx_b(b.get(), {}, &rng_b);

  const OpKind kKinds[] = {OpKind::kReplaceValues, OpKind::kInsertTuple,
                           OpKind::kDeleteTuple};
  int64_t batches_applied = 0;
  for (int round = 0; round < 6; ++round) {
    for (int ti = 0; ti < a->num_tables(); ++ti) {
      for (const OpKind kind : kKinds) {
        // Both sides receive the same batch; construct it from side A
        // (the sides are identical by induction).
        const std::vector<Modification> batch =
            RandomBatch(*a, ti, kind, &rng_mods);
        if (batch.empty()) continue;
        ASSERT_TRUE(ctx_a.TryApplyBatch(batch).ok());
        for (const Modification& m : batch) {
          ASSERT_TRUE(ctx_b.TryApply(m).ok());
        }
        ++batches_applied;
      }
    }
  }
  ASSERT_GT(batches_applied, 0);
  EXPECT_EQ(ctx_a.applied(), ctx_b.applied());
  EXPECT_EQ(ctx_a.vetoed(), ctx_b.vetoed());
  ExpectDatabasesIdentical(*a, *b);
  ExpectLogsIdentical(log_a, log_b);
  // The batch side must have delivered one segment per batch; the
  // single side, none.
  EXPECT_EQ(log_a.num_batches(), batches_applied);
  EXPECT_EQ(log_b.num_batches(), 0);
  // Tool statistics: identical error and identical votes on a probe.
  EXPECT_EQ(tool_a->Error(), tool_b->Error());
  for (int ti = 0; ti < a->num_tables(); ++ti) {
    const std::vector<Modification> probe =
        RandomBatch(*a, ti, OpKind::kDeleteTuple, &rng_mods);
    if (probe.empty()) continue;
    EXPECT_EQ(tool_a->ValidationPenalty(probe[0]),
              tool_b->ValidationPenalty(probe[0]));
    const double exact = tool_a->ValidationPenaltyBatch(probe);
    EXPECT_EQ(exact, tool_b->ValidationPenaltyBatch(probe));
    // The capped batch vote (cap 0 is what the vote loops pass) must
    // reach the same veto decision as the exact sum — the early-veto
    // contract every overrider is held to.
    EXPECT_EQ(tool_a->ValidationPenaltyBatch(probe, 0.0) > 0.0, exact > 0.0);
  }
  tool_a->Unbind();
  tool_b->Unbind();
}

std::unique_ptr<Database> MusicDataset(uint64_t seed) {
  auto gen = GenerateDataset(DoubanMusicLike(0.3), seed).ValueOrAbort();
  return gen.Materialize(2).ValueOrAbort();
}

TEST(BatchPipelineTest, LinearBatchMatchesSingles) {
  auto truth = MusicDataset(17);
  LinearPropertyTool a(truth->schema()), b(truth->schema());
  CheckBatchMatchesSingles(&a, &b, *truth, 91);
}

TEST(BatchPipelineTest, CoappearBatchMatchesSingles) {
  auto truth = MusicDataset(18);
  CoappearPropertyTool a(truth->schema()), b(truth->schema());
  CheckBatchMatchesSingles(&a, &b, *truth, 92);
}

TEST(BatchPipelineTest, PairwiseBatchMatchesSingles) {
  auto truth = MusicDataset(19);
  PairwisePropertyTool a(truth->schema()), b(truth->schema());
  CheckBatchMatchesSingles(&a, &b, *truth, 93);
}

TEST(BatchPipelineTest, ColumnFreqBatchMatchesSingles) {
  auto gen = GenerateDataset(XiamiLike(1.0), 20).ValueOrAbort();
  auto truth = gen.Materialize(2).ValueOrAbort();
  ColumnFreqTool a(truth->schema(), "User", "gender");
  ColumnFreqTool b(truth->schema(), "User", "gender");
  CheckBatchMatchesSingles(&a, &b, *truth, 94);
}

// Large composite batches against caps on both sides of the exact
// penalty: when the exact penalty does not exceed the cap no sound
// early exit exists, so a capped call must return the exact value bit
// for bit; when it does, the capped call may stop early but must still
// land above the cap (the same veto decision either way) and leave the
// tool's statistics untouched for the next vote.
void CheckCappedMatchesExact(PropertyTool* tool, const Database& truth,
                             uint64_t seed) {
  ASSERT_TRUE(tool->SetTargetFromDataset(truth).ok());
  std::unique_ptr<Database> db = truth.Clone();
  ASSERT_TRUE(tool->Bind(db.get()).ok());
  Rng rng(seed);
  int64_t batches = 0;
  for (int ti = 0; ti < db->num_tables(); ++ti) {
    const Table& t = db->table(ti);
    std::vector<TupleId> live = LiveTuples(t);
    if (live.size() < 8) continue;
    rng.Shuffle(&live);
    // A big disjoint delete batch: enough modifications to clear the
    // chunked-apply threshold of the linear tool and to move the
    // coappear / pairwise numerators far past small caps.
    std::vector<Modification> batch;
    const size_t n = std::min<size_t>(40, live.size() / 2);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(Modification::DeleteTuple(t.name(), live[i]));
    }
    const double exact = tool->ValidationPenaltyBatch(batch);
    const double caps[] = {-1.0,      0.0,         exact / 2,
                           exact,     exact + 1.0, std::fabs(exact) * 2 + 1.0};
    for (const double cap : caps) {
      const double capped = tool->ValidationPenaltyBatch(batch, cap);
      if (exact <= cap) {
        EXPECT_EQ(capped, exact) << t.name() << " cap " << cap;
      } else {
        EXPECT_GT(capped, cap) << t.name() << " cap " << cap;
      }
      EXPECT_EQ(capped > cap, exact > cap) << t.name() << " cap " << cap;
    }
    // Whatever path each capped call took, the statistics must be
    // restored: exact pricing still lands on the same value bitwise.
    EXPECT_EQ(tool->ValidationPenaltyBatch(batch), exact) << t.name();
    ++batches;
  }
  EXPECT_GT(batches, 0);
  tool->Unbind();
}

TEST(BatchPipelineTest, CappedCompositeVoteMatchesExactDecision) {
  auto truth = MusicDataset(21);
  LinearPropertyTool linear(truth->schema());
  CheckCappedMatchesExact(&linear, *truth, 95);
  CoappearPropertyTool coappear(truth->schema());
  CheckCappedMatchesExact(&coappear, *truth, 96);
  PairwisePropertyTool pairwise(truth->schema());
  CheckCappedMatchesExact(&pairwise, *truth, 97);
}

// A batch the validators object to must be rejected as one composite
// proposal: nothing applies, nothing is logged, and the veto counts
// once. ForceApplyBatch then applies the same batch wholesale.
TEST(BatchPipelineTest, VetoedBatchLeavesDatabaseUntouched) {
  auto gen = GenerateDataset(XiamiLike(1.0), 21).ValueOrAbort();
  auto db = gen.Materialize(2).ValueOrAbort();
  auto pristine = db->Clone();

  // Target equals the current distribution, so any gender change has a
  // strictly positive penalty.
  ColumnFreqTool validator(db->schema(), "User", "gender");
  ASSERT_TRUE(validator.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(validator.Bind(db.get()).ok());
  ASSERT_EQ(validator.Error(), 0.0);

  ModificationLog log(db.get());
  Rng rng(7);
  TweakContext ctx(db.get(), {&validator}, &rng);

  const Table* user = db->FindTable("User");
  ASSERT_NE(user, nullptr);
  const int gender = user->ColumnIndex("gender");
  std::vector<TupleId> live = LiveTuples(*user);
  ASSERT_GE(live.size(), 3u);
  std::vector<Modification> batch;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(user->column(gender).IsValue(live[static_cast<size_t>(i)]));
    batch.push_back(Modification::ReplaceValues(
        "User", {live[static_cast<size_t>(i)]}, {gender},
        {Value(int64_t{777})}));
  }

  EXPECT_FALSE(ctx.TryApplyBatch(batch).ok());
  EXPECT_EQ(ctx.vetoed(), 1);
  EXPECT_EQ(ctx.applied(), 0);
  EXPECT_EQ(log.size(), 0);
  EXPECT_EQ(validator.Error(), 0.0);
  ExpectDatabasesIdentical(*db, *pristine);

  // Forcing applies the whole batch despite the objection.
  ASSERT_TRUE(ctx.ForceApplyBatch(batch).ok());
  EXPECT_EQ(ctx.forced(), 1);
  EXPECT_EQ(ctx.applied(), 3);
  EXPECT_EQ(log.size(), 3);
  EXPECT_GT(validator.Error(), 0.0);
}

// The O1-parallel pass must be bitwise deterministic: for a fixed seed
// it produces the same per-step errors, the same counters, and the
// same final database as the serial pass, at every thread count.
TEST(BatchPipelineTest, ParallelPassMatchesSerialAcrossThreads) {
  auto gen = GenerateDataset(XiamiLike(2.0), 11).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler rand;
  auto base = rand.Scale(*gen.Materialize(1).ValueOrAbort(),
                         gen.SnapshotSizes(4), 11)
                  .ValueOrAbort();
  // Rand clones tuples, so the scaled columns already match the target
  // frequencies; flatten each enforced column to a constant so the
  // tools have real work to do.
  const char* kCols[][2] = {
      {"User", "gender"}, {"Photo", "kind"}, {"Space", "kind"}};
  for (const auto& tc : kCols) {
    Table* table = base->FindTable(tc[0]);
    ASSERT_NE(table, nullptr);
    const int col = table->ColumnIndex(tc[1]);
    std::vector<TupleId> rows = LiveTuples(*table);
    ASSERT_TRUE(base->Apply(Modification::ReplaceValues(
                                tc[0], rows, {col}, {Value(int64_t{0})}))
                    .ok());
  }

  struct Outcome {
    RunReport report;
    std::unique_ptr<Database> db;
  };
  const auto run_with = [&](bool parallel, int threads) {
    Outcome out;
    out.db = base->Clone();
    Coordinator coordinator;
    std::vector<int> order;
    for (const auto& tc : kCols) {
      order.push_back(coordinator.AddTool(std::make_unique<ColumnFreqTool>(
          truth->schema(), tc[0], tc[1])));
    }
    coordinator.SetTargetsFromDataset(*truth).Check();
    CoordinatorOptions opts;
    opts.seed = 5;
    opts.parallel_pass = parallel;
    opts.pass_threads = threads;
    opts.batch_size = 64;
    out.report =
        coordinator.Run(out.db.get(), order, opts).ValueOrAbort();
    return out;
  };

  const Outcome serial = run_with(false, 1);
  for (const int threads : {1, 2, 8}) {
    const Outcome parallel = run_with(true, threads);
    ASSERT_EQ(parallel.report.steps.size(), serial.report.steps.size())
        << threads;
    for (size_t i = 0; i < serial.report.steps.size(); ++i) {
      const ToolReport& p = parallel.report.steps[i];
      const ToolReport& s = serial.report.steps[i];
      EXPECT_EQ(p.tool, s.tool) << threads << " step " << i;
      EXPECT_EQ(p.error_before, s.error_before) << threads << " step " << i;
      EXPECT_EQ(p.error_after, s.error_after) << threads << " step " << i;
      EXPECT_EQ(p.applied, s.applied) << threads << " step " << i;
      EXPECT_EQ(p.vetoed, s.vetoed) << threads << " step " << i;
    }
    EXPECT_EQ(parallel.report.final_errors, serial.report.final_errors)
        << threads;
    ExpectDatabasesIdentical(*parallel.db, *serial.db);
  }
}

// ---------------------------------------------------------------------
// Regression coverage for the parallel-group machinery itself, with
// minimal deterministic tools that exercise paths the shipped tools
// only hit on large workloads.
// ---------------------------------------------------------------------

// Schema: two independent single-column tables plus one two-column
// table for the read-dependency test.
Schema TinySchema() {
  Schema s;
  s.name = "tiny";
  s.tables.push_back({"A", {{"x", ColumnType::kInt64, ""}}});
  s.tables.push_back({"B", {{"x", ColumnType::kInt64, ""}}});
  s.tables.push_back({"T",
                      {{"a", ColumnType::kInt64, ""},
                       {"b", ColumnType::kInt64, ""}}});
  return s;
}

std::unique_ptr<Database> TinyDb() {
  auto db = Database::Create(TinySchema()).ValueOrAbort();
  for (const char* name : {"A", "B"}) {
    Table* t = db->FindTable(name);
    t->Append({Value(int64_t{1})}).status().Check();
    t->Append({Value(int64_t{2})}).status().Check();
  }
  Table* t = db->FindTable("T");
  t->Append({Value(int64_t{0}), Value(int64_t{0})}).status().Check();
  t->Append({Value(int64_t{0}), Value(int64_t{0})}).status().Check();
  return db;
}

// Grows its table to `target` live tuples by cloning row 0, and
// rewrites cell (0, 0) after every insert — so one Tweak records BOTH
// a whole-table atom and a column atom on the same table, the shape
// that must merge as a single table move.
class RowAndCellTool : public PropertyTool {
 public:
  RowAndCellTool(const Schema& schema, std::string table, int64_t target)
      : table_(std::move(table)),
        table_index_(schema.TableIndex(table_)),
        target_(target) {}

  std::string name() const override { return "rowcell:" + table_; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override {
    const Table* t = db_->FindTable(table_);
    return std::abs(static_cast<double>(t->NumTuples() - target_));
  }
  double ValidationPenalty(const Modification&) const override { return 0; }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  AccessScope DeclaredScope() const override {
    AccessScope scope;
    scope.known = true;
    scope.AddWrite(table_index_);  // whole table: row-structure writes
    return scope;
  }
  Status Tweak(TweakContext* ctx) override {
    const Table* t = db_->FindTable(table_);
    while (t->NumTuples() < target_) {
      std::vector<Value> row;
      for (int c = 0; c < t->num_columns(); ++c) {
        row.push_back(t->column(c).Get(0));
      }
      ASPECT_RETURN_NOT_OK(
          ctx->TryApply(Modification::InsertTuple(table_, std::move(row))));
      ASPECT_RETURN_NOT_OK(ctx->TryApply(Modification::ReplaceValues(
          table_, {0}, {0}, {Value(int64_t{t->NumTuples()})})));
    }
    return Status::OK();
  }

 private:
  std::string table_;
  int table_index_;
  int64_t target_;
  Database* db_ = nullptr;
};

// A task that inserts tuples AND rewrites cells on one table records
// both (t, kWholeTable) and (t, c) atoms; the merge must move that
// table exactly once instead of following the whole-table move with a
// per-column move from the moved-from clone.
TEST(BatchPipelineTest, ParallelMergeHandlesWholeTablePlusCellAtoms) {
  const Schema schema = TinySchema();
  const auto run_with = [&](bool parallel) {
    auto db = TinyDb();
    Coordinator coordinator;
    std::vector<int> order = {
        coordinator.AddTool(
            std::make_unique<RowAndCellTool>(schema, "A", 6)),
        coordinator.AddTool(
            std::make_unique<RowAndCellTool>(schema, "B", 5)),
    };
    CoordinatorOptions opts;
    opts.seed = 3;
    opts.parallel_pass = parallel;
    opts.pass_threads = 2;
    RunReport report =
        coordinator.Run(db.get(), order, opts).ValueOrAbort();
    return std::make_pair(std::move(db), std::move(report));
  };

  const auto serial = run_with(false);
  const auto parallel = run_with(true);
  // The group must actually have formed (both scopes are declared and
  // disjoint), or this test exercises nothing.
  ASSERT_EQ(parallel.second.steps.size(), 2u);
  for (const ToolReport& step : parallel.second.steps) {
    EXPECT_TRUE(step.parallel) << step.tool;
    EXPECT_EQ(step.error_after, 0.0) << step.tool;
  }
  EXPECT_EQ(parallel.second.final_errors, serial.second.final_errors);
  ExpectDatabasesIdentical(*parallel.first, *serial.first);
}

// Writes `T.b[0] = T.b[0] + 1`; scope declared.
class WriterTool : public PropertyTool {
 public:
  explicit WriterTool(const Schema& schema)
      : table_index_(schema.TableIndex("T")) {}
  std::string name() const override { return "writer"; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0; }
  double ValidationPenalty(const Modification&) const override { return 0; }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  AccessScope DeclaredScope() const override {
    AccessScope scope;
    scope.known = true;
    scope.AddWrite(table_index_, 1);  // T.b
    return scope;
  }
  Status Tweak(TweakContext* ctx) override {
    const Table* t = db_->FindTable("T");
    return ctx->TryApply(Modification::ReplaceValues(
        "T", {0}, {1}, {Value(t->column(1).GetInt(0) + 1)}));
  }

 private:
  int table_index_;
  Database* db_ = nullptr;
};

// Copies `T.b[0]` into `T.a[1]` — it READS a column it never writes
// and declares nothing, so its observed scope under-reports its reads.
class ShadowReaderTool : public PropertyTool {
 public:
  std::string name() const override { return "shadow"; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0; }
  double ValidationPenalty(const Modification&) const override { return 0; }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  Status Tweak(TweakContext* ctx) override {
    const Table* t = db_->FindTable("T");
    return ctx->TryApply(Modification::ReplaceValues(
        "T", {1}, {0}, {Value(t->column(1).GetInt(0))}));
  }

 private:
  Database* db_ = nullptr;
};

// A tool without a declared scope reads a column it never writes, so
// its observed (write-only) scope must NOT license grouping it with a
// tool that writes that column: serial semantics would see the
// writer's update, a group clone would not. The fix keeps such tools
// on the serial path; results must match the serial run exactly and
// no step may have run in a group.
TEST(BatchPipelineTest, ObservedWriteOnlyScopeStaysSerial) {
  const Schema schema = TinySchema();
  const auto run_with = [&](bool parallel, int threads) {
    auto db = TinyDb();
    Coordinator coordinator;
    std::vector<int> order = {
        coordinator.AddTool(std::make_unique<WriterTool>(schema)),
        coordinator.AddTool(std::make_unique<ShadowReaderTool>()),
    };
    CoordinatorOptions opts;
    opts.seed = 9;
    opts.iterations = 3;
    opts.parallel_pass = parallel;
    opts.pass_threads = threads;
    RunReport report =
        coordinator.Run(db.get(), order, opts).ValueOrAbort();
    return std::make_pair(std::move(db), std::move(report));
  };

  const auto serial = run_with(false, 1);
  // After 3 passes, serially: b[0] = 3 and a[1] holds the value of
  // b[0] at the last shadow step, i.e. 3.
  EXPECT_EQ(serial.first->FindTable("T")->column(1).GetInt(0), 3);
  EXPECT_EQ(serial.first->FindTable("T")->column(0).GetInt(1), 3);
  for (const int threads : {2, 8}) {
    const auto parallel = run_with(true, threads);
    ASSERT_EQ(parallel.second.steps.size(), serial.second.steps.size());
    for (const ToolReport& step : parallel.second.steps) {
      EXPECT_FALSE(step.parallel) << step.tool;
    }
    ExpectDatabasesIdentical(*parallel.first, *serial.first);
  }
}

// ---------------------------------------------------------------------
// Shared-database mode: zero-copy groups with write leases must be
// bitwise indistinguishable from clone-and-merge and from serial — in
// the database AND in the modification log — at every thread count.
// ---------------------------------------------------------------------

// Shared fixture for the mode-equivalence tests: a Rand-scaled Xiami
// dataset with the enforced columns flattened so the tools have real
// work, plus a runner that executes the three ColumnFreq tools in a
// chosen execution mode with a modification log attached.
struct ModeOutcome {
  RunReport report;
  std::unique_ptr<Database> db;
  std::unique_ptr<ModificationLog> log;
};

class SharedModeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gen_ = std::make_unique<SnapshotSet>(
        GenerateDataset(XiamiLike(2.0), 11).ValueOrAbort());
    truth_ = gen_->Materialize(4).ValueOrAbort();
    RandScaler rand;
    base_ = rand.Scale(*gen_->Materialize(1).ValueOrAbort(),
                       gen_->SnapshotSizes(4), 11)
                .ValueOrAbort();
    for (const auto& tc : kCols) {
      Table* table = base_->FindTable(tc[0]);
      ASSERT_NE(table, nullptr);
      const int col = table->ColumnIndex(tc[1]);
      std::vector<TupleId> rows = LiveTuples(*table);
      ASSERT_TRUE(base_->Apply(Modification::ReplaceValues(
                                   tc[0], rows, {col}, {Value(int64_t{0})}))
                      .ok());
    }
  }

  ModeOutcome RunMode(bool parallel, ParallelMode mode, int threads,
                      bool batch_auto = false) {
    ModeOutcome out;
    out.db = base_->Clone();
    out.log = std::make_unique<ModificationLog>(out.db.get());
    Coordinator coordinator;
    std::vector<int> order;
    for (const auto& tc : kCols) {
      order.push_back(coordinator.AddTool(std::make_unique<ColumnFreqTool>(
          truth_->schema(), tc[0], tc[1])));
    }
    coordinator.SetTargetsFromDataset(*truth_).Check();
    CoordinatorOptions opts;
    opts.seed = 5;
    opts.parallel_pass = parallel;
    opts.parallel_mode = mode;
    opts.pass_threads = threads;
    opts.batch_size = batch_auto ? 1 : 64;
    opts.batch_auto = batch_auto;
    out.report = coordinator.Run(out.db.get(), order, opts).ValueOrAbort();
    return out;
  }

  static void ExpectSameSteps(const RunReport& a, const RunReport& b) {
    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (size_t i = 0; i < b.steps.size(); ++i) {
      EXPECT_EQ(a.steps[i].tool, b.steps[i].tool) << "step " << i;
      EXPECT_EQ(a.steps[i].error_before, b.steps[i].error_before)
          << "step " << i;
      EXPECT_EQ(a.steps[i].error_after, b.steps[i].error_after)
          << "step " << i;
      EXPECT_EQ(a.steps[i].applied, b.steps[i].applied) << "step " << i;
      EXPECT_EQ(a.steps[i].vetoed, b.steps[i].vetoed) << "step " << i;
      EXPECT_EQ(a.steps[i].batch_final, b.steps[i].batch_final)
          << "step " << i;
    }
    EXPECT_EQ(a.final_errors, b.final_errors);
  }

  static constexpr const char* kCols[][2] = {
      {"User", "gender"}, {"Photo", "kind"}, {"Space", "kind"}};

  std::unique_ptr<SnapshotSet> gen_;
  std::unique_ptr<Database> truth_;
  std::unique_ptr<Database> base_;
};

TEST_F(SharedModeTest, SharedCloneSerialBitwiseIdenticalAcrossThreads) {
  const ModeOutcome serial = RunMode(false, ParallelMode::kShared, 1);
  EXPECT_EQ(serial.report.parallel_groups, 0);
  for (const ParallelMode mode :
       {ParallelMode::kClone, ParallelMode::kShared}) {
    for (const int threads : {1, 2, 8}) {
      const ModeOutcome run = RunMode(true, mode, threads);
      // The group must actually have formed, or the modes were never
      // exercised.
      EXPECT_GT(run.report.parallel_groups, 0)
          << "mode " << static_cast<int>(mode) << " threads " << threads;
      ExpectSameSteps(run.report, serial.report);
      ExpectDatabasesIdentical(*run.db, *serial.db);
      ExpectLogsIdentical(*run.log, *serial.log);
    }
  }
}

// Veto-rate-driven batch autotuning: trajectories (and therefore the
// produced databases and logs) are identical in serial, clone and
// shared execution, and sustained accepted proposals actually grow the
// hint past the starting size of 1.
TEST_F(SharedModeTest, BatchAutoDeterministicAcrossModesAndGrows) {
  const ModeOutcome serial =
      RunMode(false, ParallelMode::kShared, 1, /*batch_auto=*/true);
  bool grew = false;
  for (const ToolReport& step : serial.report.steps) {
    grew = grew || step.batch_final > 1;
  }
  EXPECT_TRUE(grew);
  for (const ParallelMode mode :
       {ParallelMode::kClone, ParallelMode::kShared}) {
    const ModeOutcome run = RunMode(true, mode, 8, /*batch_auto=*/true);
    EXPECT_GT(run.report.parallel_groups, 0);
    ExpectSameSteps(run.report, serial.report);
    ExpectDatabasesIdentical(*run.db, *serial.db);
    ExpectLogsIdentical(*run.log, *serial.log);
  }
}

// The headline row-range case: two instances of one ColumnFreqTool
// split the SAME (table, column) into disjoint tuple-id halves. Under
// the interval-blind rules they conflict (same cell atom), so the
// group they form exists only thanks to the range declarations — and
// it must still be bitwise indistinguishable from serial, in clone and
// shared mode, at every thread count.
TEST_F(SharedModeTest, RowRangeSplitToolsGroupAndMatchSerial) {
  const Table* user = base_->FindTable("User");
  ASSERT_NE(user, nullptr);
  const int64_t mid = user->NumSlots() / 2;
  ASSERT_GT(mid, 0);
  const int64_t last = user->NumSlots() - 1;

  const auto run_with = [&](bool parallel, ParallelMode mode, int threads) {
    ModeOutcome out;
    out.db = base_->Clone();
    out.log = std::make_unique<ModificationLog>(out.db.get());
    Coordinator coordinator;
    auto lo = std::make_unique<ColumnFreqTool>(truth_->schema(), "User",
                                               "gender");
    lo->SetRowRange(0, mid - 1);
    auto hi = std::make_unique<ColumnFreqTool>(truth_->schema(), "User",
                                               "gender");
    hi->SetRowRange(mid, last);
    std::vector<int> order = {coordinator.AddTool(std::move(lo)),
                              coordinator.AddTool(std::move(hi))};
    coordinator.SetTargetsFromDataset(*truth_).Check();
    CoordinatorOptions opts;
    opts.seed = 5;
    opts.parallel_pass = parallel;
    opts.parallel_mode = mode;
    opts.pass_threads = threads;
    opts.batch_size = 64;
    out.report = coordinator.Run(out.db.get(), order, opts).ValueOrAbort();
    return out;
  };

  const ModeOutcome serial = run_with(false, ParallelMode::kShared, 1);
  EXPECT_EQ(serial.report.parallel_groups, 0);
  for (const ParallelMode mode :
       {ParallelMode::kClone, ParallelMode::kShared}) {
    for (const int threads : {1, 2, 8}) {
      const ModeOutcome run = run_with(true, mode, threads);
      // The split pair really ran as a group, and the group was
      // admitted by the interval exemption, not by coarse disjointness.
      EXPECT_GT(run.report.parallel_groups, 0)
          << "mode " << static_cast<int>(mode) << " threads " << threads;
      EXPECT_GT(run.report.row_range_groups, 0)
          << "mode " << static_cast<int>(mode) << " threads " << threads;
      EXPECT_EQ(run.report.lease_violations, 0);
      int parallel_steps = 0;
      for (const ToolReport& step : run.report.steps) {
        parallel_steps += step.parallel ? 1 : 0;
      }
      EXPECT_GE(parallel_steps, 2)
          << "mode " << static_cast<int>(mode) << " threads " << threads;
      ExpectSameSteps(run.report, serial.report);
      ExpectDatabasesIdentical(*run.db, *serial.db);
      ExpectLogsIdentical(*run.log, *serial.log);
    }
  }
}

// Declares writing only T.b but also writes T.a — an under-declared
// write scope that shared mode must catch (the write lands in the main
// database, outside the task's lease).
class LeaseLiarTool : public PropertyTool {
 public:
  explicit LeaseLiarTool(const Schema& schema)
      : table_index_(schema.TableIndex("T")) {}
  std::string name() const override { return "liar"; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0; }
  double ValidationPenalty(const Modification&) const override { return 0; }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  AccessScope DeclaredScope() const override {
    AccessScope scope;
    scope.known = true;
    scope.AddWrite(table_index_, 1);  // T.b — says nothing about T.a
    return scope;
  }
  Status Tweak(TweakContext* ctx) override {
    const Table* t = db_->FindTable("T");
    ASPECT_RETURN_NOT_OK(ctx->TryApply(Modification::ReplaceValues(
        "T", {0}, {1}, {Value(t->column(1).GetInt(0) + 1)})));
    // The lie: an undeclared write to T.a.
    return ctx->TryApply(Modification::ReplaceValues(
        "T", {0}, {0}, {Value(t->column(1).GetInt(0) + 100)}));
  }

 private:
  int table_index_;
  Database* db_ = nullptr;
};

// A shared-mode group member whose writes escape its lease must be
// caught, its writes undone from the captured pre-images, and the
// whole group redone serially — leaving results identical to the pure
// serial run. With the conformance checker on, the liar is distrusted
// and stays off the parallel fast path in later passes.
TEST(SharedModeLeaseTest, UnderDeclaredWriteIsUndoneAndRedoneSerially) {
  const Schema schema = TinySchema();
  const auto run_with = [&](bool parallel) {
    auto db = TinyDb();
    Coordinator coordinator;
    std::vector<int> order = {
        coordinator.AddTool(std::make_unique<LeaseLiarTool>(schema)),
        coordinator.AddTool(
            std::make_unique<RowAndCellTool>(schema, "A", 6)),
    };
    CoordinatorOptions opts;
    opts.seed = 13;
    opts.iterations = 2;
    opts.parallel_pass = parallel;
    opts.parallel_mode = ParallelMode::kShared;
    opts.pass_threads = 2;
    opts.check_scopes = analysis::ScopeCheckMode::kWarn;
    RunReport report =
        coordinator.Run(db.get(), order, opts).ValueOrAbort();
    return std::make_pair(std::move(db), std::move(report));
  };

  const auto serial = run_with(false);
  const auto parallel = run_with(true);
  // The under-declared write was observed (and survived the discard:
  // violations are checked even for discarded groups).
  EXPECT_FALSE(parallel.second.scope_violations.empty());
  // Every step fell back to the serial path: the first group was
  // discarded and redone, and the distrusted liar's observed scope
  // (write-only) keeps later groups from forming.
  for (const ToolReport& step : parallel.second.steps) {
    EXPECT_FALSE(step.parallel) << step.tool;
  }
  // The undo restored the pre-group bytes exactly, so the serial redo
  // reproduced the serial run bit for bit.
  ExpectDatabasesIdentical(*parallel.first, *serial.first);
  ASSERT_EQ(parallel.second.steps.size(), serial.second.steps.size());
  for (size_t i = 0; i < serial.second.steps.size(); ++i) {
    EXPECT_EQ(parallel.second.steps[i].tool, serial.second.steps[i].tool);
    EXPECT_EQ(parallel.second.steps[i].applied,
              serial.second.steps[i].applied);
  }
}

// Declares T.b restricted to row 0 but writes row 1 — and the lie is
// its FIRST write, the one every sampled-canary sink checks
// unconditionally. This is the shape the release-mode canary is
// guaranteed to catch without --check-scopes.
class RangeLiarTool : public PropertyTool {
 public:
  explicit RangeLiarTool(const Schema& schema)
      : table_index_(schema.TableIndex("T")) {}
  std::string name() const override { return "range-liar"; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0; }
  double ValidationPenalty(const Modification&) const override { return 0; }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  AccessScope DeclaredScope() const override {
    AccessScope scope;
    scope.known = true;
    scope.AddWriteRange(table_index_, 1, 0, 0);  // T.b, row 0 only
    return scope;
  }
  Status Tweak(TweakContext* ctx) override {
    // The lie: row 1 is outside the declared [0, 0] interval.
    return ctx->TryApply(Modification::ReplaceValues(
        "T", {1}, {1}, {Value(int64_t{42})}));
  }

 private:
  int table_index_;
  Database* db_ = nullptr;
};

// The release-build canary (satellite): with --check-scopes=sampled no
// conformance checker exists and no full footprints are recorded, yet
// a tool whose very first write leaves its declared row interval is
// still latched by the sampled lease probe, the group is discarded,
// and the serial redo leaves results identical to the serial run.
TEST(SharedModeLeaseTest, SampledCanaryCatchesFirstWriteRangeLiar) {
  const Schema schema = TinySchema();
  const auto run_with = [&](bool parallel) {
    auto db = TinyDb();
    Coordinator coordinator;
    std::vector<int> order = {
        coordinator.AddTool(std::make_unique<RangeLiarTool>(schema)),
        coordinator.AddTool(
            std::make_unique<RowAndCellTool>(schema, "A", 6)),
    };
    CoordinatorOptions opts;
    opts.seed = 13;
    opts.iterations = 2;
    opts.parallel_pass = parallel;
    opts.parallel_mode = ParallelMode::kShared;
    opts.pass_threads = 2;
    opts.check_scopes = analysis::ScopeCheckMode::kSampled;
    RunReport report =
        coordinator.Run(db.get(), order, opts).ValueOrAbort();
    return std::make_pair(std::move(db), std::move(report));
  };

  const auto serial = run_with(false);
  const auto parallel = run_with(true);
  // The canary latched the out-of-range write — with no checker
  // installed (sampled mode records no conformance violations).
  EXPECT_GT(parallel.second.lease_violations, 0);
  EXPECT_TRUE(parallel.second.scope_violations.empty());
  // The offending group was discarded and the liar kept off the fast
  // path for the rest of the run.
  for (const ToolReport& step : parallel.second.steps) {
    EXPECT_FALSE(step.parallel) << step.tool;
  }
  ExpectDatabasesIdentical(*parallel.first, *serial.first);
}

// Batch autotuning across a mid-run distrust (satellite): when a group
// is discarded because one member lied, the clean members' proposals
// are replayed serially — their per-tool batch hints must come out of
// the run exactly as a pure serial run leaves them (a discarded group
// must never ALSO commit its speculative hint updates, or the serial
// redo would start from a doubled hint and diverge).
TEST(SharedModeLeaseTest, BatchAutoHintsMatchSerialAcrossGroupDiscard) {
  const Schema schema = TinySchema();
  const auto make_db = [&](bool varied) {
    auto db = Database::Create(schema).ValueOrAbort();
    for (const char* name : {"A", "B"}) {
      Table* t = db->FindTable(name);
      const int64_t modulus = name[0] == 'A' ? 8 : 4;
      for (int64_t i = 0; i < 64; ++i) {
        t->Append({Value(varied ? i % modulus : int64_t{0})})
            .status()
            .Check();
      }
    }
    Table* t = db->FindTable("T");
    t->Append({Value(int64_t{0}), Value(int64_t{0})}).status().Check();
    t->Append({Value(int64_t{0}), Value(int64_t{0})}).status().Check();
    return db;
  };
  const auto truth = make_db(true);

  struct Outcome {
    std::unique_ptr<Database> db;
    std::unique_ptr<ModificationLog> log;
    RunReport report;
  };
  const auto run_with = [&](bool parallel) {
    Outcome out;
    out.db = make_db(false);
    out.log = std::make_unique<ModificationLog>(out.db.get());
    Coordinator coordinator;
    std::vector<int> order = {
        coordinator.AddTool(
            std::make_unique<ColumnFreqTool>(schema, "A", "x")),
        coordinator.AddTool(
            std::make_unique<ColumnFreqTool>(schema, "B", "x")),
        coordinator.AddTool(std::make_unique<LeaseLiarTool>(schema)),
    };
    coordinator.SetTargetsFromDataset(*truth).Check();
    CoordinatorOptions opts;
    opts.seed = 13;
    opts.iterations = 3;
    opts.parallel_pass = parallel;
    opts.parallel_mode = ParallelMode::kShared;
    opts.pass_threads = 2;
    opts.batch_size = 1;
    opts.batch_auto = true;
    opts.check_scopes = analysis::ScopeCheckMode::kWarn;
    out.report = coordinator.Run(out.db.get(), order, opts).ValueOrAbort();
    return out;
  };

  const Outcome serial = run_with(false);
  const Outcome parallel = run_with(true);
  // The liar was caught mid-run (its first group was discarded)...
  EXPECT_FALSE(parallel.report.scope_violations.empty());
  // ...and the clean tools' hints really grew past the starting size,
  // so the trajectories compared below are non-trivial.
  bool grew = false;
  for (const ToolReport& step : serial.report.steps) {
    grew = grew || step.batch_final > 1;
  }
  EXPECT_TRUE(grew);
  ASSERT_EQ(parallel.report.steps.size(), serial.report.steps.size());
  for (size_t i = 0; i < serial.report.steps.size(); ++i) {
    EXPECT_EQ(parallel.report.steps[i].tool, serial.report.steps[i].tool)
        << "step " << i;
    EXPECT_EQ(parallel.report.steps[i].batch_final,
              serial.report.steps[i].batch_final)
        << "step " << i;
    EXPECT_EQ(parallel.report.steps[i].applied,
              serial.report.steps[i].applied)
        << "step " << i;
    EXPECT_EQ(parallel.report.steps[i].vetoed,
              serial.report.steps[i].vetoed)
        << "step " << i;
  }
  EXPECT_EQ(parallel.report.final_errors, serial.report.final_errors);
  ExpectDatabasesIdentical(*parallel.db, *serial.db);
  ExpectLogsIdentical(*parallel.log, *serial.log);
}

// Declares a write scope but proposes nothing: its shared-mode modlog
// segment is empty, and the splice must still put every other member's
// entries at the right order-positions.
class NoopDeclaredTool : public PropertyTool {
 public:
  explicit NoopDeclaredTool(const Schema& schema)
      : table_index_(schema.TableIndex("B")) {}
  std::string name() const override { return "noop"; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0; }
  double ValidationPenalty(const Modification&) const override { return 0; }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  AccessScope DeclaredScope() const override {
    AccessScope scope;
    scope.known = true;
    scope.AddWrite(table_index_, 0);  // B.x — never actually written
    return scope;
  }
  Status Tweak(TweakContext*) override { return Status::OK(); }

 private:
  int table_index_;
  Database* db_ = nullptr;
};

// Shared-mode splicing with an empty member segment (satellite): a
// group member that proposes zero modifications contributes an empty
// WriteRecorder segment; the spliced log and the database must still
// match the serial run exactly, with the no-op member in either order
// position, at every thread count.
TEST(SharedModeLeaseTest, EmptyMemberSegmentSplicesCleanly) {
  const Schema schema = TinySchema();
  // The log unregisters from the database on destruction, so it must be
  // declared after (destroyed before) the database it listens to.
  struct Outcome {
    std::unique_ptr<Database> db;
    std::unique_ptr<ModificationLog> log;
    RunReport report;
  };
  const auto run_with = [&](bool parallel, int threads, bool noop_first) {
    auto db = TinyDb();
    auto log = std::make_unique<ModificationLog>(db.get());
    Coordinator coordinator;
    std::vector<int> order;
    if (noop_first) {
      order.push_back(
          coordinator.AddTool(std::make_unique<NoopDeclaredTool>(schema)));
      order.push_back(coordinator.AddTool(
          std::make_unique<RowAndCellTool>(schema, "A", 6)));
    } else {
      order.push_back(coordinator.AddTool(
          std::make_unique<RowAndCellTool>(schema, "A", 6)));
      order.push_back(
          coordinator.AddTool(std::make_unique<NoopDeclaredTool>(schema)));
    }
    CoordinatorOptions opts;
    opts.seed = 3;
    opts.parallel_pass = parallel;
    opts.parallel_mode = ParallelMode::kShared;
    opts.pass_threads = threads;
    RunReport report =
        coordinator.Run(db.get(), order, opts).ValueOrAbort();
    return Outcome{std::move(db), std::move(log), std::move(report)};
  };

  for (const bool noop_first : {true, false}) {
    const auto serial = run_with(false, 1, noop_first);
    for (const int threads : {1, 2, 8}) {
      const auto parallel = run_with(true, threads, noop_first);
      EXPECT_GT(parallel.report.parallel_groups, 0)
          << "noop_first " << noop_first << " threads " << threads;
      ExpectDatabasesIdentical(*parallel.db, *serial.db);
      ExpectLogsIdentical(*parallel.log, *serial.log);
    }
  }
}

}  // namespace
}  // namespace aspect
