// Cross-tool consistency fuzz: drive random modification sequences
// through the uniform API with every complex tool bound, then check
// that each tool's incrementally maintained statistics equal a fresh
// from-scratch rebuild. This is the strongest guard on the Statistics
// Updater contract - any missed or double-counted event shows up here.
#include <gtest/gtest.h>

#include "properties/coappear.h"
#include "properties/degree.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "relational/integrity.h"
#include "relational/refcount.h"
#include "workload/generator.h"

namespace aspect {
namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, IncrementalStatsSurviveRandomOperations) {
  const uint64_t seed = GetParam();
  auto gen = GenerateDataset(DoubanMusicLike(0.3), seed).ValueOrAbort();
  auto db = gen.Materialize(3).ValueOrAbort();

  LinearPropertyTool linear(db->schema());
  CoappearPropertyTool coappear(db->schema());
  PairwisePropertyTool pairwise(db->schema());
  DegreeDistributionTool degree(db->schema());
  for (PropertyTool* t : std::initializer_list<PropertyTool*>{
           &linear, &coappear, &pairwise, &degree}) {
    ASSERT_TRUE(t->SetTargetFromDataset(*db).ok());
    ASSERT_TRUE(t->Bind(db.get()).ok());
  }
  RefCounter refcount(db.get());

  Rng rng(seed * 31 + 7);
  // Tables whose tuples nothing references (safe to delete).
  const std::vector<std::string> leaf_tables = {
      "Album_Comment", "Album_Listening", "Album_Heard", "Album_Wish",
      "Review_Comment", "Artist_Fan", "User_Fan"};
  int64_t applied = 0;
  for (int step = 0; step < 400; ++step) {
    const int kind = static_cast<int>(rng.UniformInt(0, 5));
    switch (kind) {
      case 0:
      case 1: {  // ReplaceValues on a random FK cell
        const int ti = static_cast<int>(
            rng.UniformInt(0, db->num_tables() - 1));
        Table& t = db->table(ti);
        std::vector<int> fk_cols;
        for (int c = 0; c < t.num_columns(); ++c) {
          if (t.column(c).is_foreign_key()) fk_cols.push_back(c);
        }
        if (fk_cols.empty() || t.NumTuples() == 0) break;
        const int col = fk_cols[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(fk_cols.size()) - 1))];
        TupleId victim = rng.UniformInt(0, t.NumSlots() - 1);
        if (!t.IsLive(victim)) break;
        const Table* parent = db->FindTable(t.column(col).ref_table());
        TupleId np = rng.UniformInt(0, parent->NumSlots() - 1);
        if (!parent->IsLive(np)) break;
        applied += db->Apply(Modification::ReplaceValues(
                                 t.name(), {victim}, {col}, {Value(np)}))
                       .ok();
        break;
      }
      case 2: {  // Insert a tuple into a leaf table
        const std::string& name = leaf_tables[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(leaf_tables.size()) - 1))];
        Table* t = db->FindTable(name);
        std::vector<Value> row;
        bool ok = true;
        for (int c = 0; c < t->num_columns(); ++c) {
          const Column& col = t->column(c);
          if (col.is_foreign_key()) {
            const Table* parent = db->FindTable(col.ref_table());
            const TupleId p = rng.UniformInt(0, parent->NumSlots() - 1);
            if (!parent->IsLive(p)) {
              ok = false;
              break;
            }
            row.push_back(Value(static_cast<int64_t>(p)));
          } else {
            row.push_back(Value(int64_t{1}));
          }
        }
        if (ok) {
          applied +=
              db->Apply(Modification::InsertTuple(name, row)).ok();
        }
        break;
      }
      case 3: {  // Delete an unreferenced tuple from a leaf table
        const std::string& name = leaf_tables[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(leaf_tables.size()) - 1))];
        Table* t = db->FindTable(name);
        if (t->NumTuples() <= 1) break;
        const TupleId victim = rng.UniformInt(0, t->NumSlots() - 1);
        const int ti = db->schema().TableIndex(name);
        if (!t->IsLive(victim) || !refcount.Unreferenced(ti, victim)) break;
        applied +=
            db->Apply(Modification::DeleteTuple(name, victim)).ok();
        break;
      }
      case 4: {  // deleteValues then insertValues (the Fig. 6 cycle)
        Table* t = db->FindTable("User_Fan");
        if (t->NumTuples() == 0) break;
        const TupleId victim = rng.UniformInt(0, t->NumSlots() - 1);
        if (!t->IsLive(victim) || !t->column(0).IsValue(victim)) break;
        ASSERT_TRUE(db->Apply(Modification::DeleteValues("User_Fan",
                                                         {victim}, {0}))
                        .ok());
        const Table* users = db->FindTable("User");
        TupleId nu = rng.UniformInt(0, users->NumSlots() - 1);
        while (!users->IsLive(nu)) {
          nu = rng.UniformInt(0, users->NumSlots() - 1);
        }
        ASSERT_TRUE(db->Apply(Modification::InsertValues(
                                  "User_Fan", {victim}, {0},
                                  {Value(static_cast<int64_t>(nu))}))
                        .ok());
        applied += 2;
        break;
      }
      case 5: {  // Re-author a post (the pairwise-heavy structural op)
        const ResponseSpec& spec = db->schema().responses[0];
        Table* post = db->FindTable(spec.post_table);
        const TupleId pid = rng.UniformInt(0, post->NumSlots() - 1);
        if (!post->IsLive(pid)) break;
        const Table* users = db->FindTable("User");
        TupleId na = rng.UniformInt(0, users->NumSlots() - 1);
        if (!users->IsLive(na)) break;
        applied += db->Apply(Modification::ReplaceValues(
                                 spec.post_table, {pid},
                                 {spec.author_col},
                                 {Value(static_cast<int64_t>(na))}))
                       .ok();
        break;
      }
    }
  }
  EXPECT_GT(applied, 100);
  EXPECT_TRUE(CheckIntegrity(*db).ok());

  // Fresh rebuilds must agree with the incrementally maintained state.
  LinearPropertyTool linear2(db->schema());
  ASSERT_TRUE(linear2.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(linear2.Bind(db.get()).ok());
  for (size_t c = 0; c < linear.chains().size(); ++c) {
    EXPECT_EQ(linear.CurrentMatrix(static_cast<int>(c)),
              linear2.CurrentMatrix(static_cast<int>(c)))
        << "chain " << c;
  }
  CoappearPropertyTool coappear2(db->schema());
  ASSERT_TRUE(coappear2.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(coappear2.Bind(db.get()).ok());
  for (size_t g = 0; g < coappear.groups().size(); ++g) {
    EXPECT_EQ(coappear.CurrentXi(static_cast<int>(g)),
              coappear2.CurrentXi(static_cast<int>(g)))
        << "group " << g;
  }
  PairwisePropertyTool pairwise2(db->schema());
  ASSERT_TRUE(pairwise2.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(pairwise2.Bind(db.get()).ok());
  for (int s = 0; s < pairwise.num_specs(); ++s) {
    EXPECT_EQ(pairwise.CurrentRho(s), pairwise2.CurrentRho(s)) << s;
    EXPECT_EQ(pairwise.CurrentRhoSelf(s), pairwise2.CurrentRhoSelf(s)) << s;
  }
  DegreeDistributionTool degree2(db->schema());
  ASSERT_TRUE(degree2.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(degree2.Bind(db.get()).ok());
  for (size_t e = 0; e < degree.edges().size(); ++e) {
    EXPECT_EQ(degree.CurrentDist(static_cast<int>(e)),
              degree2.CurrentDist(static_cast<int>(e)))
        << "edge " << e;
  }

  for (PropertyTool* t : std::initializer_list<PropertyTool*>{
           &linear, &coappear, &pairwise, &degree, &linear2, &coappear2,
           &pairwise2, &degree2}) {
    t->Unbind();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(FuzzXiamiTest, HeavySchemaConsistency) {
  // The same cross-check on the 31-table Xiami-like schema (42 chains,
  // 12 coappear groups, 4 pairwise specs) with a shorter op sequence.
  auto gen = GenerateDataset(XiamiLike(0.2), 99).ValueOrAbort();
  auto db = gen.Materialize(2).ValueOrAbort();
  LinearPropertyTool linear(db->schema());
  CoappearPropertyTool coappear(db->schema());
  PairwisePropertyTool pairwise(db->schema());
  for (PropertyTool* t : std::initializer_list<PropertyTool*>{
           &linear, &coappear, &pairwise}) {
    ASSERT_TRUE(t->SetTargetFromDataset(*db).ok());
    ASSERT_TRUE(t->Bind(db.get()).ok());
  }
  Rng rng(4);
  for (int step = 0; step < 150; ++step) {
    const int ti = static_cast<int>(rng.UniformInt(0, db->num_tables() - 1));
    Table& t = db->table(ti);
    std::vector<int> fk_cols;
    for (int c = 0; c < t.num_columns(); ++c) {
      if (t.column(c).is_foreign_key()) fk_cols.push_back(c);
    }
    if (fk_cols.empty() || t.NumTuples() == 0) continue;
    const int col = fk_cols[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(fk_cols.size()) - 1))];
    const TupleId victim = rng.UniformInt(0, t.NumSlots() - 1);
    if (!t.IsLive(victim)) continue;
    const Table* parent = db->FindTable(t.column(col).ref_table());
    const TupleId np = rng.UniformInt(0, parent->NumSlots() - 1);
    if (!parent->IsLive(np)) continue;
    ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                              t.name(), {victim}, {col}, {Value(np)}))
                    .ok());
  }
  LinearPropertyTool linear2(db->schema());
  ASSERT_TRUE(linear2.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(linear2.Bind(db.get()).ok());
  for (size_t c = 0; c < linear.chains().size(); ++c) {
    ASSERT_EQ(linear.CurrentMatrix(static_cast<int>(c)),
              linear2.CurrentMatrix(static_cast<int>(c)))
        << c;
  }
  CoappearPropertyTool coappear2(db->schema());
  ASSERT_TRUE(coappear2.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(coappear2.Bind(db.get()).ok());
  for (size_t g = 0; g < coappear.groups().size(); ++g) {
    ASSERT_EQ(coappear.CurrentXi(static_cast<int>(g)),
              coappear2.CurrentXi(static_cast<int>(g)))
        << g;
  }
  PairwisePropertyTool pairwise2(db->schema());
  ASSERT_TRUE(pairwise2.SetTargetFromDataset(*db).ok());
  ASSERT_TRUE(pairwise2.Bind(db.get()).ok());
  for (int s = 0; s < pairwise.num_specs(); ++s) {
    ASSERT_EQ(pairwise.CurrentRho(s), pairwise2.CurrentRho(s)) << s;
  }
  for (PropertyTool* t : std::initializer_list<PropertyTool*>{
           &linear, &coappear, &pairwise, &linear2, &coappear2,
           &pairwise2}) {
    t->Unbind();
  }
}

TEST(RefCounterTest, TracksAllOperations) {
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 6).ValueOrAbort();
  auto db = gen.Materialize(2).ValueOrAbort();
  RefCounter rc(db.get());
  const int album = db->schema().TableIndex("Album");
  const Table* heard = db->FindTable("Album_Heard");
  // Count references to album 0 by hand.
  int64_t expected = 0;
  for (int ti = 0; ti < db->num_tables(); ++ti) {
    const Table& t = db->table(ti);
    for (int c = 0; c < t.num_columns(); ++c) {
      const Column& col = t.column(c);
      if (!col.is_foreign_key() || col.ref_table() != "Album") continue;
      t.ForEachLive([&](TupleId tid) {
        expected += col.IsValue(tid) && col.GetInt(tid) == 0;
      });
    }
  }
  EXPECT_EQ(rc.Count(album, 0), expected);
  // Point one more tuple at album 0.
  TupleId victim = kInvalidTuple;
  heard->ForEachLive([&](TupleId t) {
    if (victim == kInvalidTuple && heard->column(0).GetInt(t) != 0) {
      victim = t;
    }
  });
  ASSERT_NE(victim, kInvalidTuple);
  ASSERT_TRUE(db->Apply(Modification::ReplaceValues(
                            "Album_Heard", {victim}, {0},
                            {Value(int64_t{0})}))
                  .ok());
  EXPECT_EQ(rc.Count(album, 0), expected + 1);
  ASSERT_TRUE(
      db->Apply(Modification::DeleteTuple("Album_Heard", victim)).ok());
  EXPECT_EQ(rc.Count(album, 0), expected);
}

}  // namespace
}  // namespace aspect
