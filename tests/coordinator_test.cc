// Integration tests for the ASPECT coordinator: the full two-stage
// pipeline (size-scaler + coordinated tweaking) across permutations,
// validator voting, iterations, the registry, and overlap analysis.
#include <gtest/gtest.h>

#include "aspect/coordinator.h"
#include "aspect/overlap.h"
#include "aspect/registry.h"
#include "properties/coappear.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "properties/simple.h"
#include "relational/integrity.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

namespace aspect {
namespace {

struct Pipeline {
  std::unique_ptr<Database> truth;
  std::unique_ptr<Database> scaled;
  std::unique_ptr<Coordinator> coordinator;
  int linear, coappear, pairwise;
};

Pipeline MakePipeline(uint64_t seed, const SizeScaler& scaler) {
  Pipeline p;
  auto gen = GenerateDataset(DoubanMusicLike(0.3), seed).ValueOrAbort();
  p.truth = gen.Materialize(4).ValueOrAbort();
  p.scaled = scaler
                 .Scale(*gen.Materialize(2).ValueOrAbort(),
                        gen.SnapshotSizes(4), seed)
                 .ValueOrAbort();
  p.coordinator = std::make_unique<Coordinator>();
  p.linear = p.coordinator->AddTool(
      std::make_unique<LinearPropertyTool>(p.truth->schema()));
  p.coappear = p.coordinator->AddTool(
      std::make_unique<CoappearPropertyTool>(p.truth->schema()));
  p.pairwise = p.coordinator->AddTool(
      std::make_unique<PairwisePropertyTool>(p.truth->schema()));
  p.coordinator->SetTargetsFromDataset(*p.truth).Check();
  return p;
}

TEST(CoordinatorTest, SinglePassReducesAllErrors) {
  RandScaler rand;
  Pipeline p = MakePipeline(101, rand);
  CoordinatorOptions opts;
  opts.seed = 5;
  auto report = p.coordinator
                    ->Run(p.scaled.get(),
                          {p.coappear, p.linear, p.pairwise}, opts)
                    .ValueOrAbort();
  ASSERT_EQ(report.steps.size(), 3u);
  for (const ToolReport& step : report.steps) {
    EXPECT_LT(step.error_after, step.error_before) << step.tool;
  }
  // The last tool's property is (near-)exact.
  EXPECT_LT(report.final_errors[static_cast<size_t>(p.pairwise)], 1e-6);
  EXPECT_TRUE(CheckIntegrity(*p.scaled).ok());
}

TEST(CoordinatorTest, AllSixPermutationsReduceErrors) {
  RandScaler rand;
  for (const auto& [label, order] :
       [] {
         Pipeline tmp = MakePipeline(1, RandScaler());
         return AllPermutations(*tmp.coordinator,
                                {tmp.linear, tmp.coappear, tmp.pairwise});
       }()) {
    Pipeline p = MakePipeline(103, rand);
    CoordinatorOptions opts;
    opts.seed = 7;
    auto report =
        p.coordinator->Run(p.scaled.get(), order, opts).ValueOrAbort();
    // Every tool's final error is far below its starting error.
    double max_final = 0;
    for (const double e : report.final_errors) {
      max_final = std::max(max_final, e);
    }
    EXPECT_LT(max_final, 0.35) << label;
    // The tool applied last ends at (near) zero.
    EXPECT_LT(report.final_errors[static_cast<size_t>(order.back())], 1e-4)
        << label;
    EXPECT_TRUE(CheckIntegrity(*p.scaled).ok()) << label;
  }
}

TEST(CoordinatorTest, LaterToolsHaveSmallerError) {
  // The paper's headline observation: the later a tool runs in the
  // order, the smaller its final error.
  RandScaler rand;
  Pipeline p = MakePipeline(107, rand);
  CoordinatorOptions opts;
  opts.seed = 11;
  auto report = p.coordinator
                    ->Run(p.scaled.get(),
                          {p.linear, p.coappear, p.pairwise}, opts)
                    .ValueOrAbort();
  EXPECT_LE(report.final_errors[static_cast<size_t>(p.pairwise)],
            report.final_errors[static_cast<size_t>(p.linear)] + 1e-9);
}

TEST(CoordinatorTest, IterationsReduceResidualError) {
  RandScaler rand;
  Pipeline once = MakePipeline(109, rand);
  CoordinatorOptions opts;
  opts.seed = 13;
  auto r1 = once.coordinator
                ->Run(once.scaled.get(),
                      {once.coappear, once.linear, once.pairwise}, opts)
                .ValueOrAbort();
  Pipeline thrice = MakePipeline(109, rand);
  opts.iterations = 3;
  auto r3 = thrice.coordinator
                ->Run(thrice.scaled.get(),
                      {thrice.coappear, thrice.linear, thrice.pairwise},
                      opts)
                .ValueOrAbort();
  double total1 = 0, total3 = 0;
  for (const double e : r1.final_errors) total1 += e;
  for (const double e : r3.final_errors) total3 += e;
  EXPECT_LE(total3, total1 + 1e-9);
  EXPECT_LT(total3, 0.1);
  EXPECT_EQ(r3.steps.size(), 9u);
}

TEST(CoordinatorTest, WorksOnAllThreeScalers) {
  for (const auto& scaler : BuiltinScalers()) {
    Pipeline p = MakePipeline(113, *scaler);
    CoordinatorOptions opts;
    opts.seed = 17;
    opts.iterations = 2;
    auto report = p.coordinator
                      ->Run(p.scaled.get(),
                            {p.coappear, p.pairwise, p.linear}, opts)
                      .ValueOrAbort();
    double total = 0;
    for (const double e : report.final_errors) total += e;
    EXPECT_LT(total, 0.3) << scaler->name();
    EXPECT_TRUE(CheckIntegrity(*p.scaled).ok()) << scaler->name();
  }
}

TEST(CoordinatorTest, ValidationReducesDamageToEarlierTools) {
  // With voting on, a validated run never leaves earlier tools worse
  // than the unvalidated run by more than noise; typically better.
  RandScaler rand;
  CoordinatorOptions with, without;
  with.seed = without.seed = 19;
  without.validate = false;
  Pipeline a = MakePipeline(127, rand);
  auto ra = a.coordinator
                ->Run(a.scaled.get(), {a.coappear, a.linear, a.pairwise},
                      with)
                .ValueOrAbort();
  Pipeline b = MakePipeline(127, rand);
  auto rb = b.coordinator
                ->Run(b.scaled.get(), {b.coappear, b.linear, b.pairwise},
                      without)
                .ValueOrAbort();
  int64_t vetoed = 0;
  for (const ToolReport& s : ra.steps) vetoed += s.vetoed;
  int64_t vetoed_off = 0;
  for (const ToolReport& s : rb.steps) vetoed_off += s.vetoed;
  EXPECT_EQ(vetoed_off, 0);
  (void)vetoed;  // voting may or may not fire depending on seeds
}

TEST(CoordinatorTest, BadOrderRejected) {
  RandScaler rand;
  Pipeline p = MakePipeline(1, rand);
  CoordinatorOptions opts;
  EXPECT_FALSE(p.coordinator->Run(p.scaled.get(), {99}, opts).ok());
}

TEST(CoordinatorTest, PermutationLabels) {
  RandScaler rand;
  Pipeline p = MakePipeline(1, rand);
  const auto perms = AllPermutations(
      *p.coordinator, {p.linear, p.coappear, p.pairwise});
  ASSERT_EQ(perms.size(), 6u);
  EXPECT_EQ(perms[0].first, "L-C-P");
  std::set<std::string> labels;
  for (const auto& [label, order] : labels.empty()
           ? perms
           : decltype(perms){}) {
    labels.insert(label);
  }
  for (const auto& [label, order] : perms) labels.insert(label);
  EXPECT_EQ(labels.size(), 6u);
  EXPECT_TRUE(labels.count("P-C-L"));
}

// A tool whose error sequence is scripted (indexed by completed Tweak
// calls), for exercising the convergence bookkeeping in isolation.
class ScriptedTool : public PropertyTool {
 public:
  ScriptedTool(std::string name, std::vector<double> errors)
      : name_(std::move(name)), errors_(std::move(errors)) {}
  std::string name() const override { return name_; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override {
    return errors_[std::min(calls_, errors_.size() - 1)];
  }
  double ValidationPenalty(const Modification&) const override { return 0; }
  Status Tweak(TweakContext*) override {
    ++calls_;
    return Status::OK();
  }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}

 private:
  std::string name_;
  std::vector<double> errors_;
  size_t calls_ = 0;
  Database* db_ = nullptr;
};

RunReport RunScripted(std::vector<double> errors, int iterations) {
  Schema s;
  s.name = "one";
  s.tables.push_back({"T", {{"a", ColumnType::kInt64, ""}}});
  auto db = Database::Create(s).ValueOrAbort();
  Coordinator coordinator;
  const int id = coordinator.AddTool(
      std::make_unique<ScriptedTool>("scripted", std::move(errors)));
  CoordinatorOptions opts;
  opts.iterations = iterations;
  opts.converge_epsilon = 0.01;
  return coordinator.Run(db.get(), {id}, opts).ValueOrAbort();
}

TEST(CoordinatorTest, StopReasonDistinguishesOutcomes) {
  // Totals after each pass: 0.5, 0.499 -> improvement below epsilon.
  const RunReport converged = RunScripted({1.0, 0.5, 0.499}, 5);
  EXPECT_EQ(converged.stop_reason, RunReport::StopReason::kConverged);
  EXPECT_EQ(converged.steps.size(), 2u);

  // Totals 0.5, 0.7: the second pass made things strictly worse.
  // Before the fix this counted as convergence.
  const RunReport regressed = RunScripted({1.0, 0.5, 0.7}, 5);
  EXPECT_EQ(regressed.stop_reason, RunReport::StopReason::kRegressed);
  EXPECT_EQ(regressed.steps.size(), 2u);

  // Big strict improvements all the way: the loop runs out.
  const RunReport exhausted = RunScripted({4.0, 3.0, 2.0, 1.0, 0.5}, 3);
  EXPECT_EQ(exhausted.stop_reason,
            RunReport::StopReason::kIterationsExhausted);
  EXPECT_EQ(exhausted.steps.size(), 3u);

  EXPECT_STREQ(StopReasonToString(RunReport::StopReason::kConverged),
               "converged");
  EXPECT_STREQ(StopReasonToString(RunReport::StopReason::kRegressed),
               "regressed");
}

TEST(CoordinatorTest, AccessMonitorSeesOverlaps) {
  RandScaler rand;
  Pipeline p = MakePipeline(131, rand);
  CoordinatorOptions opts;
  opts.seed = 23;
  p.coordinator
      ->Run(p.scaled.get(), {p.coappear, p.linear, p.pairwise}, opts)
      .ValueOrAbort();
  const AccessMonitor* monitor = p.coordinator->last_monitor();
  ASSERT_NE(monitor, nullptr);
  // All three tools touched tuples.
  for (int t = 0; t < 3; ++t) EXPECT_GT(monitor->CellsTouched(t), 0) << t;
  // These deliberately overlapping properties share cells (the paper's
  // O2: ASPECT can detect it from the uniform API alone).
  EXPECT_TRUE(monitor->Overlaps(p.linear, p.coappear));
}

TEST(CoordinatorTest, NonOverlappingToolsIndependent) {
  // Two column-frequency tools on different columns never overlap
  // (observation O1) and the overlap graph says so.
  Schema s;
  s.name = "two";
  s.tables.push_back({"T",
                      {{"a", ColumnType::kInt64, ""},
                       {"b", ColumnType::kInt64, ""}}});
  auto db = Database::Create(s).ValueOrAbort();
  Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    db->FindTable("T")
        ->Append({Value(rng.UniformInt(0, 3)), Value(rng.UniformInt(0, 3))})
        .status()
        .Check();
  }
  Coordinator coordinator;
  auto ta = std::make_unique<ColumnFreqTool>(s, "T", "a");
  auto tb = std::make_unique<ColumnFreqTool>(s, "T", "b");
  FrequencyDistribution da(1), dbv(1);
  da.Add({0}, 64);
  dbv.Add({1}, 64);
  ta->SetTargetDistribution(da).Check();
  tb->SetTargetDistribution(dbv).Check();
  const int ia = coordinator.AddTool(std::move(ta));
  const int ib = coordinator.AddTool(std::move(tb));
  CoordinatorOptions opts;
  opts.repair_targets = false;
  auto report =
      coordinator.Run(db.get(), {ia, ib}, opts).ValueOrAbort();
  EXPECT_LT(report.final_errors[0] + report.final_errors[1], 1e-12);
  const AccessMonitor* monitor = coordinator.last_monitor();
  EXPECT_FALSE(monitor->Overlaps(ia, ib));
  const auto classes = IndependentClasses(monitor->OverlapGraph());
  EXPECT_EQ(classes.size(), 1u);  // both tools fit one class
}


TEST(CoordinatorTest, CompareOrdersPicksTheBestOrderWithoutMutating) {
  RandScaler rand;
  Pipeline p = MakePipeline(137, rand);
  const int64_t tuples_before = p.scaled->TotalTuples();
  const auto first_row = p.scaled->table(5).GetRow(0);
  CoordinatorOptions opts;
  opts.seed = 29;
  std::vector<std::vector<int>> orders;
  for (const auto& [label, order] : AllPermutations(
           *p.coordinator, {p.linear, p.coappear, p.pairwise})) {
    orders.push_back(order);
  }
  const auto outcomes =
      p.coordinator->CompareOrders(*p.scaled, orders, opts).ValueOrAbort();
  ASSERT_EQ(outcomes.size(), 6u);
  // Sorted best-first.
  for (size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_LE(outcomes[i - 1].total_error, outcomes[i].total_error);
  }
  // The probed database is untouched.
  EXPECT_EQ(p.scaled->TotalTuples(), tuples_before);
  EXPECT_EQ(p.scaled->table(5).GetRow(0), first_row);
  // And the winning order actually beats the worst by a margin.
  EXPECT_LT(outcomes.front().total_error,
            outcomes.back().total_error + 1e-12);
}

TEST(CoordinatorTest, CompareOrdersDeterministicAcrossThreadCounts) {
  // The acceptance bar for the parallel order search: rankings and
  // errors are exactly the thread-count-independent serial results.
  RandScaler rand;
  auto run_at = [&](int threads) {
    Pipeline p = MakePipeline(137, rand);
    CoordinatorOptions opts;
    opts.seed = 29;
    opts.order_search_threads = threads;
    std::vector<std::vector<int>> orders;
    for (const auto& [label, order] : AllPermutations(
             *p.coordinator, {p.linear, p.coappear, p.pairwise})) {
      orders.push_back(order);
    }
    return p.coordinator->CompareOrders(*p.scaled, orders, opts)
        .ValueOrAbort();
  };
  const auto serial = run_at(1);
  ASSERT_EQ(serial.size(), 6u);
  for (const int threads : {2, 0}) {  // 0 = one per hardware thread
    const auto parallel = run_at(threads);
    ASSERT_EQ(parallel.size(), serial.size()) << threads;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].order, serial[i].order)
          << threads << " rank " << i;
      EXPECT_EQ(parallel[i].total_error, serial[i].total_error)
          << threads << " rank " << i;
      EXPECT_EQ(parallel[i].report.final_errors,
                serial[i].report.final_errors)
          << threads << " rank " << i;
    }
  }
}

TEST(CoordinatorTest, PermutationLabelsUseShortestUniquePrefix) {
  // "chain" and "coappear" share the initial C: labels must extend to
  // the shortest distinguishing prefix instead of colliding.
  Schema s;
  s.name = "two";
  s.tables.push_back({"T",
                      {{"a", ColumnType::kInt64, ""},
                       {"b", ColumnType::kInt64, ""}}});
  Coordinator coordinator;
  const int ch = coordinator.AddTool(
      std::make_unique<ColumnFreqTool>(s, "T", "a", "chain"));
  const int co = coordinator.AddTool(
      std::make_unique<ColumnFreqTool>(s, "T", "b", "coappear"));
  const auto perms = AllPermutations(coordinator, {ch, co});
  ASSERT_EQ(perms.size(), 2u);
  EXPECT_EQ(perms[0].first, "CH-CO");
  EXPECT_EQ(perms[1].first, "CO-CH");

  // Exact duplicates cannot be told apart by any prefix: fall back to
  // the full name tagged with the tool id.
  Coordinator dup;
  const int d0 =
      dup.AddTool(std::make_unique<ColumnFreqTool>(s, "T", "a", "freq"));
  const int d1 =
      dup.AddTool(std::make_unique<ColumnFreqTool>(s, "T", "b", "freq"));
  const auto dperms = AllPermutations(dup, {d0, d1});
  ASSERT_EQ(dperms.size(), 2u);
  EXPECT_EQ(dperms[0].first, "FREQ#0-FREQ#1");
}

TEST(OverlapTest, IndependentClassesGreedyPartition) {
  // Path graph 0-1-2-3-4: first-fit colors it {0,2,4} / {1,3}.
  std::vector<std::vector<bool>> adj(5, std::vector<bool>(5, false));
  for (int i = 0; i + 1 < 5; ++i) {
    adj[static_cast<size_t>(i)][static_cast<size_t>(i + 1)] = true;
    adj[static_cast<size_t>(i + 1)][static_cast<size_t>(i)] = true;
  }
  const auto classes = IndependentClasses(adj);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0], (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(classes[1], (std::vector<int>{1, 3}));
  // Every class is actually independent.
  for (const auto& cls : classes) {
    for (const int u : cls) {
      for (const int v : cls) {
        EXPECT_FALSE(adj[static_cast<size_t>(u)][static_cast<size_t>(v)]);
      }
    }
  }
  // Triangle: three singleton classes.
  std::vector<std::vector<bool>> tri(3, std::vector<bool>(3, true));
  for (int i = 0; i < 3; ++i) {
    tri[static_cast<size_t>(i)][static_cast<size_t>(i)] = false;
  }
  EXPECT_EQ(IndependentClasses(tri).size(), 3u);
}

TEST(OverlapTest, MaximumIndependentSetExact) {
  // Path graph 0-1-2-3-4: MIS = {0, 2, 4}.
  std::vector<std::vector<bool>> adj(5, std::vector<bool>(5, false));
  for (int i = 0; i + 1 < 5; ++i) {
    adj[static_cast<size_t>(i)][static_cast<size_t>(i + 1)] = true;
    adj[static_cast<size_t>(i + 1)][static_cast<size_t>(i)] = true;
  }
  EXPECT_EQ(MaximumIndependentSet(adj), (std::vector<int>{0, 2, 4}));
  // Triangle: MIS size 1.
  std::vector<std::vector<bool>> tri(3, std::vector<bool>(3, true));
  for (int i = 0; i < 3; ++i) tri[static_cast<size_t>(i)][static_cast<size_t>(i)] = false;
  EXPECT_EQ(MaximumIndependentSet(tri).size(), 1u);
  // Empty graph: everything independent.
  std::vector<std::vector<bool>> none(4, std::vector<bool>(4, false));
  EXPECT_EQ(MaximumIndependentSet(none).size(), 4u);
}

TEST(RegistryTest, BuiltinToolsRegistered) {
  RegisterBuiltinTools();
  ToolRegistry& registry = ToolRegistry::Global();
  for (const char* name :
       {"linear", "coappear", "pairwise", "tuple-count"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  auto gen = GenerateDataset(DoubanMusicLike(0.2), 2).ValueOrAbort();
  auto tool = registry.Make("linear", gen.schema()).ValueOrAbort();
  EXPECT_EQ(tool->name(), "linear");
  EXPECT_FALSE(registry.Make("nope", gen.schema()).ok());
}

}  // namespace
}  // namespace aspect
