// Determinism contract of the parallel stage-1 pipeline (DESIGN.md
// §12): generating, materializing, size-scaling, sampling, and
// verifying a dataset must be BITWISE identical at every --gen-threads
// setting. Each case runs the same pipeline at 1, 2, and 8 shard
// workers and compares full-database content hashes; a mismatch means
// a shard stream leaked state across the worker count and would
// silently destroy reproducibility of every experiment.
#include <gtest/gtest.h>

#include <vector>

#include "measure/runner.h"
#include "relational/fingerprint.h"
#include "relational/integrity.h"
#include "scaler/sampling_scaler.h"
#include "scaler/size_scaler.h"
#include "scaler/upsizer.h"
#include "stats/sampler.h"
#include "workload/blueprint.h"
#include "workload/generator.h"

namespace aspect {
namespace {

constexpr int kThreadGrid[] = {1, 2, 8};

/// Runs generate -> materialize(1,3) -> scale -> verify at the given
/// worker count and returns the content hashes of every database the
/// pipeline touched.
std::vector<uint64_t> PipelineHashes(const DatasetBlueprint& blueprint,
                                     const SizeScaler& scaler,
                                     uint64_t seed, int threads) {
  const GenOptions gen{threads};
  auto snapshots = GenerateDataset(blueprint, seed, gen).ValueOrAbort();
  auto source = snapshots.Materialize(1, gen).ValueOrAbort();
  auto truth = snapshots.Materialize(3, gen).ValueOrAbort();
  auto scaled =
      scaler.Scale(*source, snapshots.SnapshotSizes(3), seed, gen)
          .ValueOrAbort();
  IntegrityOptions verify;
  verify.threads = threads;
  CheckIntegrity(*scaled, verify).Check();
  return {ContentHash(*source), ContentHash(*truth),
          ContentHash(*scaled)};
}

void ExpectThreadCountInvariant(const DatasetBlueprint& blueprint,
                                const SizeScaler& scaler, uint64_t seed) {
  const std::vector<uint64_t> golden =
      PipelineHashes(blueprint, scaler, seed, kThreadGrid[0]);
  for (size_t i = 1; i < std::size(kThreadGrid); ++i) {
    EXPECT_EQ(PipelineHashes(blueprint, scaler, seed, kThreadGrid[i]),
              golden)
        << "stage-1 output depends on gen_threads=" << kThreadGrid[i];
  }
}

TEST(GenParallelTest, XiamiRandPipelineIsThreadCountInvariant) {
  ExpectThreadCountInvariant(XiamiLike(1.0), RandScaler(), 41);
}

TEST(GenParallelTest, XiamiDscalerPipelineIsThreadCountInvariant) {
  ExpectThreadCountInvariant(XiamiLike(0.5), DscalerScaler(), 42);
}

TEST(GenParallelTest, DoubanUpsizerPipelineIsThreadCountInvariant) {
  ExpectThreadCountInvariant(DoubanMusicLike(0.5), UpSizerScaler(), 43);
}

TEST(GenParallelTest, DoubanRexPipelineIsThreadCountInvariant) {
  ExpectThreadCountInvariant(DoubanMovieLike(0.5), RexScaler(), 44);
}

TEST(GenParallelTest, SamplingScalerIsThreadCountInvariant) {
  // Downscaling exercises the candidate-filter + top-up path.
  const GenOptions serial{1};
  auto snapshots =
      GenerateDataset(RetailLike(0.5), 45, serial).ValueOrAbort();
  auto source = snapshots.Materialize(3, serial).ValueOrAbort();
  std::vector<int64_t> down = snapshots.SnapshotSizes(1);
  SamplingScaler scaler;
  const uint64_t golden =
      ContentHash(*scaler.Scale(*source, down, 45, serial).ValueOrAbort());
  for (const int threads : {2, 8}) {
    const GenOptions gen{threads};
    EXPECT_EQ(
        ContentHash(
            *scaler.Scale(*source, down, 45, gen).ValueOrAbort()),
        golden);
  }
}

TEST(GenParallelTest, NestedSamplesAreThreadCountInvariant) {
  const GenOptions serial{1};
  auto snapshots =
      GenerateDataset(XiamiLike(0.5), 46, serial).ValueOrAbort();
  auto db = snapshots.Materialize(3, serial).ValueOrAbort();
  const std::vector<double> fractions = {0.25, 0.5, 0.75};
  auto golden = NestedSamples(*db, fractions, 7, serial).ValueOrAbort();
  for (const int threads : {2, 8}) {
    const GenOptions gen{threads};
    auto got = NestedSamples(*db, fractions, 7, gen).ValueOrAbort();
    ASSERT_EQ(got.size(), golden.size());
    for (size_t i = 0; i < golden.size(); ++i) {
      EXPECT_EQ(ContentHash(*got[i]), ContentHash(*golden[i]));
    }
  }
}

TEST(GenParallelTest, RunnerReportsPhaseSeconds) {
  ExperimentConfig config;
  config.blueprint = XiamiLike(0.5);
  config.seed = 9;
  config.target_snapshot = 3;
  config.scaler = "Rand";
  config.gen_threads = 8;
  config.iterations = 1;
  const ExperimentResult result =
      RunExperiment(config).ValueOrAbort();
  EXPECT_GT(result.generate_seconds, 0.0);
  EXPECT_GT(result.scale_seconds, 0.0);
  EXPECT_GT(result.verify_seconds, 0.0);
}

}  // namespace
}  // namespace aspect
