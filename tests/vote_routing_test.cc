// Tests for scope-indexed validator routing (--route-votes): routed
// voting must be bitwise identical to full voting in every execution
// mode and at every thread count while actually pruning votes, the
// row-interval exemption must prune validators whose certified range
// is disjoint from the touched rows, and the sampled pruning audit
// must catch a validator whose declared read scope under-reports what
// its votes depend on — then keep it off the routed path for the rest
// of the run.
#include <gtest/gtest.h>

#include <cmath>

#include "aspect/coordinator.h"
#include "aspect/tweak_context.h"
#include "properties/simple.h"
#include "relational/modlog.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

namespace aspect {
namespace {

// Byte-level equality: slots, tombstones, and every cell's state (a
// kNull cell is not a kEmpty cell even though both read back as Null).
void ExpectDatabasesIdentical(const Database& a, const Database& b) {
  ASSERT_EQ(a.num_tables(), b.num_tables());
  for (int t = 0; t < a.num_tables(); ++t) {
    const Table& ta = a.table(t);
    const Table& tb = b.table(t);
    ASSERT_EQ(ta.NumSlots(), tb.NumSlots()) << ta.name();
    ASSERT_EQ(ta.NumTuples(), tb.NumTuples()) << ta.name();
    for (TupleId tid = 0; tid < ta.NumSlots(); ++tid) {
      ASSERT_EQ(ta.IsLive(tid), tb.IsLive(tid)) << ta.name() << " " << tid;
      for (int c = 0; c < ta.num_columns(); ++c) {
        ASSERT_EQ(static_cast<int>(ta.column(c).state(tid)),
                  static_cast<int>(tb.column(c).state(tid)))
            << ta.name() << " " << tid << " col " << c;
        if (ta.column(c).IsValue(tid)) {
          ASSERT_EQ(ta.column(c).Get(tid), tb.column(c).Get(tid))
              << ta.name() << " " << tid << " col " << c;
        }
      }
    }
  }
}

// Entry-level equality of two modification logs: same modifications,
// same order, same pre-images, same assigned tuple ids.
void ExpectLogsIdentical(const ModificationLog& a, const ModificationLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    const ModificationLog::Entry& ea = a.entries()[static_cast<size_t>(i)];
    const ModificationLog::Entry& eb = b.entries()[static_cast<size_t>(i)];
    ASSERT_EQ(static_cast<int>(ea.mod.kind), static_cast<int>(eb.mod.kind))
        << "entry " << i;
    ASSERT_EQ(ea.mod.table, eb.mod.table) << "entry " << i;
    ASSERT_EQ(ea.mod.tuples, eb.mod.tuples) << "entry " << i;
    ASSERT_EQ(ea.mod.cols, eb.mod.cols) << "entry " << i;
    ASSERT_EQ(ea.mod.values, eb.mod.values) << "entry " << i;
    ASSERT_EQ(ea.old_values, eb.old_values) << "entry " << i;
    ASSERT_EQ(ea.new_tuple, eb.new_tuple) << "entry " << i;
  }
}

std::vector<TupleId> LiveTuples(const Table& t) {
  std::vector<TupleId> live;
  t.ForEachLive([&](TupleId tid) { live.push_back(tid); });
  return live;
}

struct Outcome {
  RunReport report;
  std::unique_ptr<Database> db;
  std::unique_ptr<ModificationLog> log;
};

void ExpectSameSteps(const RunReport& a, const RunReport& b) {
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < b.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].tool, b.steps[i].tool) << "step " << i;
    EXPECT_EQ(a.steps[i].error_before, b.steps[i].error_before)
        << "step " << i;
    EXPECT_EQ(a.steps[i].error_after, b.steps[i].error_after) << "step " << i;
    EXPECT_EQ(a.steps[i].applied, b.steps[i].applied) << "step " << i;
    EXPECT_EQ(a.steps[i].vetoed, b.steps[i].vetoed) << "step " << i;
    EXPECT_EQ(a.steps[i].batch_final, b.steps[i].batch_final) << "step " << i;
    // Routing never changes how many votes COULD be cast — only how
    // many validators were actually invoked.
    EXPECT_EQ(a.steps[i].votes_total, b.steps[i].votes_total) << "step " << i;
  }
  EXPECT_EQ(a.final_errors, b.final_errors);
}

// ---------------------------------------------------------------------
// Routed vs full voting over a real dataset: three narrow-scope
// ColumnFreq tools plus a TupleCount tool with grow work, so the vote
// loops see both cell writes and row-structure writes. Routed runs
// must be bitwise identical to full voting in the database, the log,
// and the per-step report — across serial, clone and shared modes and
// across thread counts — while skipping a nonzero number of votes.
// ---------------------------------------------------------------------
class VoteRoutingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gen_ = std::make_unique<SnapshotSet>(
        GenerateDataset(XiamiLike(2.0), 11).ValueOrAbort());
    truth_ = gen_->Materialize(4).ValueOrAbort();
    RandScaler rand;
    base_ = rand.Scale(*gen_->Materialize(1).ValueOrAbort(),
                       gen_->SnapshotSizes(4), 11)
                .ValueOrAbort();
    for (const auto& tc : kCols) {
      Table* table = base_->FindTable(tc[0]);
      ASSERT_NE(table, nullptr);
      const int col = table->ColumnIndex(tc[1]);
      std::vector<TupleId> rows = LiveTuples(*table);
      ASSERT_TRUE(base_->Apply(Modification::ReplaceValues(
                                   tc[0], rows, {col}, {Value(int64_t{0})}))
                      .ok());
    }
    // Knock a few Thread tuples out so the TupleCount tool has grow
    // work: its inserts are row-structure writes, the Route() branch
    // the cell-write-only ColumnFreq proposals never reach.
    Table* thread = base_->FindTable("Thread");
    ASSERT_NE(thread, nullptr);
    std::vector<TupleId> live = LiveTuples(*thread);
    ASSERT_GT(live.size(), 8u);
    for (size_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          base_->Apply(Modification::DeleteTuple("Thread", live[i])).ok());
    }
  }

  Outcome RunWith(RouteVotes route, bool parallel, ParallelMode mode,
                  int threads) {
    Outcome out;
    out.db = base_->Clone();
    out.log = std::make_unique<ModificationLog>(out.db.get());
    Coordinator coordinator;
    std::vector<int> order;
    for (const auto& tc : kCols) {
      order.push_back(coordinator.AddTool(std::make_unique<ColumnFreqTool>(
          truth_->schema(), tc[0], tc[1])));
    }
    order.push_back(
        coordinator.AddTool(std::make_unique<TupleCountTool>(truth_->schema())));
    coordinator.SetTargetsFromDataset(*truth_).Check();
    CoordinatorOptions opts;
    opts.seed = 5;
    opts.parallel_pass = parallel;
    opts.parallel_mode = mode;
    opts.pass_threads = threads;
    opts.batch_size = 64;
    opts.route_votes = route;
    out.report = coordinator.Run(out.db.get(), order, opts).ValueOrAbort();
    return out;
  }

  static constexpr const char* kCols[][2] = {
      {"User", "gender"}, {"Photo", "kind"}, {"Thread", "kind"}};

  std::unique_ptr<SnapshotSet> gen_;
  std::unique_ptr<Database> truth_;
  std::unique_ptr<Database> base_;
};

TEST_F(VoteRoutingTest, RoutedMatchesFullAcrossModesAndThreads) {
  const Outcome full_serial =
      RunWith(RouteVotes::kOff, false, ParallelMode::kShared, 1);
  // Full voting never skips and the off mode never audits.
  EXPECT_EQ(full_serial.report.votes_skipped, 0);
  EXPECT_GT(full_serial.report.votes_total, 0);

  for (const RouteVotes route : {RouteVotes::kOn, RouteVotes::kAudit}) {
    const Outcome routed = RunWith(route, false, ParallelMode::kShared, 1);
    ExpectSameSteps(routed.report, full_serial.report);
    ExpectDatabasesIdentical(*routed.db, *full_serial.db);
    ExpectLogsIdentical(*routed.log, *full_serial.log);
    // Routing really pruned something, consulted something, and the
    // audit (debug: every pruned vote; release: sampled) found every
    // declaration honest.
    EXPECT_GT(routed.report.votes_skipped, 0);
    EXPECT_LT(routed.report.votes_skipped, routed.report.votes_total);
    EXPECT_EQ(routed.report.route_audit_violations, 0);
  }

  for (const ParallelMode mode :
       {ParallelMode::kClone, ParallelMode::kShared}) {
    for (const int threads : {1, 2, 8}) {
      const Outcome full = RunWith(RouteVotes::kOff, true, mode, threads);
      const Outcome routed = RunWith(RouteVotes::kOn, true, mode, threads);
      EXPECT_GT(routed.report.parallel_groups, 0)
          << "mode " << static_cast<int>(mode) << " threads " << threads;
      ExpectSameSteps(routed.report, full.report);
      ExpectDatabasesIdentical(*routed.db, *full.db);
      ExpectLogsIdentical(*routed.log, *full.log);
      // ... and both match the serial full-voting run bit for bit.
      ExpectDatabasesIdentical(*routed.db, *full_serial.db);
      ExpectLogsIdentical(*routed.log, *full_serial.log);
      // The serial tuple-count step prunes the off-table ColumnFreq
      // validators even when the ColumnFreq trio ran as a group.
      EXPECT_GT(routed.report.votes_skipped, 0)
          << "mode " << static_cast<int>(mode) << " threads " << threads;
      EXPECT_EQ(routed.report.route_audit_violations, 0);
    }
  }
}

// ---------------------------------------------------------------------
// Row-interval routing: two instances of one ColumnFreqTool split the
// SAME (table, column) into disjoint tuple-id halves. The second
// instance's proposals touch only its own half, so the first — a
// certified-range reader of the same cell atom — must be pruned by
// interval disjointness, and (audit mode, so every pruned vote is
// re-invoked) must genuinely return zero penalty outside its range.
// ---------------------------------------------------------------------
TEST_F(VoteRoutingTest, RowRangeDisjointValidatorIsPruned) {
  const Table* user = base_->FindTable("User");
  ASSERT_NE(user, nullptr);
  const int64_t mid = user->NumSlots() / 2;
  ASSERT_GT(mid, 0);
  const int64_t last = user->NumSlots() - 1;

  const auto run_with = [&](RouteVotes route) {
    Outcome out;
    out.db = base_->Clone();
    out.log = std::make_unique<ModificationLog>(out.db.get());
    Coordinator coordinator;
    auto lo =
        std::make_unique<ColumnFreqTool>(truth_->schema(), "User", "gender");
    lo->SetRowRange(0, mid - 1);
    auto hi =
        std::make_unique<ColumnFreqTool>(truth_->schema(), "User", "gender");
    hi->SetRowRange(mid, last);
    std::vector<int> order = {coordinator.AddTool(std::move(lo)),
                              coordinator.AddTool(std::move(hi))};
    coordinator.SetTargetsFromDataset(*truth_).Check();
    CoordinatorOptions opts;
    opts.seed = 5;
    opts.batch_size = 64;
    opts.route_votes = route;
    out.report = coordinator.Run(out.db.get(), order, opts).ValueOrAbort();
    return out;
  };

  const Outcome full = run_with(RouteVotes::kOff);
  for (const RouteVotes route : {RouteVotes::kOn, RouteVotes::kAudit}) {
    const Outcome routed = run_with(route);
    ExpectSameSteps(routed.report, full.report);
    ExpectDatabasesIdentical(*routed.db, *full.db);
    ExpectLogsIdentical(*routed.log, *full.log);
    // The hi step's only validator (lo) reads the same column but a
    // disjoint certified range: every one of its votes is pruned, and
    // none of the audited ones found a nonzero penalty (the InRange
    // guard makes the zero-outside-scope contract real).
    EXPECT_GT(routed.report.votes_skipped, 0);
    EXPECT_EQ(routed.report.route_audit_violations, 0);
  }
}

// ---------------------------------------------------------------------
// The pruning audit: a validator that certifies reading only A.x but
// actually votes on table B. Routing prunes it from B-writing
// proposals; the audit (the first pruned vote is always checked, in
// release builds too) sees the nonzero penalty, counts the vote as
// cast — same veto as full voting — and distrusts the declaration for
// the rest of the run.
// ---------------------------------------------------------------------
Schema TinySchema() {
  Schema s;
  s.name = "tiny";
  s.tables.push_back({"A", {{"x", ColumnType::kInt64, ""}}});
  s.tables.push_back({"B", {{"x", ColumnType::kInt64, ""}}});
  return s;
}

std::unique_ptr<Database> TinyDb() {
  auto db = Database::Create(TinySchema()).ValueOrAbort();
  for (const char* name : {"A", "B"}) {
    Table* t = db->FindTable(name);
    t->Append({Value(int64_t{1})}).status().Check();
    t->Append({Value(int64_t{2})}).status().Check();
  }
  return db;
}

// Certifies that its votes depend only on A.x — but vetoes every
// modification of table B.
class NarrowLiarTool : public PropertyTool {
 public:
  explicit NarrowLiarTool(const Schema& schema)
      : a_index_(schema.TableIndex("A")) {}
  std::string name() const override { return "narrow-liar"; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0; }
  double ValidationPenalty(const Modification& mod) const override {
    // The lie: a vote that depends on a table the scope never reads.
    return mod.table == "B" ? 1.0 : 0.0;
  }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  AccessScope DeclaredScope() const override {
    AccessScope scope;
    scope.known = true;
    scope.AddRead(a_index_, 0);  // A.x only — says nothing about B
    return scope;
  }
  Status Tweak(TweakContext*) override { return Status::OK(); }

 private:
  int a_index_;
  Database* db_ = nullptr;
};

// Proposes four rewrites of B.x[0]; vetoes are part of the plan.
class BWriterTool : public PropertyTool {
 public:
  explicit BWriterTool(const Schema& schema)
      : b_index_(schema.TableIndex("B")) {}
  std::string name() const override { return "b-writer"; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0; }
  double ValidationPenalty(const Modification&) const override { return 0; }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  AccessScope DeclaredScope() const override {
    AccessScope scope;
    scope.known = true;
    scope.AddWrite(b_index_, 0);  // B.x
    return scope;
  }
  Status Tweak(TweakContext* ctx) override {
    for (int64_t k = 0; k < 4; ++k) {
      const Status st = ctx->TryApply(
          Modification::ReplaceValues("B", {0}, {0}, {Value(int64_t{10 + k})}));
      if (!st.ok() && !st.IsValidationFailed()) return st;
    }
    return Status::OK();
  }

 private:
  int b_index_;
  Database* db_ = nullptr;
};

TEST(VoteRoutingAuditTest, OverNarrowValidatorIsCaughtAndDistrusted) {
  const Schema schema = TinySchema();
  const auto run_with = [&](RouteVotes route) {
    auto db = TinyDb();
    Coordinator coordinator;
    std::vector<int> order = {
        coordinator.AddTool(std::make_unique<NarrowLiarTool>(schema)),
        coordinator.AddTool(std::make_unique<BWriterTool>(schema)),
    };
    CoordinatorOptions opts;
    opts.seed = 13;
    opts.iterations = 2;
    opts.route_votes = route;
    RunReport report = coordinator.Run(db.get(), order, opts).ValueOrAbort();
    return std::make_pair(std::move(db), std::move(report));
  };

  const auto full = run_with(RouteVotes::kOff);
  // Full voting consults the liar on every proposal: all four rewrites
  // vetoed in both passes, B never changes.
  ASSERT_EQ(full.second.steps.size(), 4u);
  EXPECT_EQ(full.second.steps[1].vetoed, 4);
  EXPECT_EQ(full.second.steps[3].vetoed, 4);
  EXPECT_EQ(full.second.route_audit_violations, 0);

  for (const RouteVotes route : {RouteVotes::kOn, RouteVotes::kAudit}) {
    const auto routed = run_with(route);
    ASSERT_EQ(routed.second.steps.size(), 4u);
    const ToolReport& pass1 = routed.second.steps[1];
    const ToolReport& pass2 = routed.second.steps[3];

    // Pass 1: the liar is pruned from the first proposal; the audit
    // checks that very vote (pruned vote #0 is always audited, in
    // release sampling too), sees the 1.0 penalty, counts it — so the
    // proposal is vetoed exactly as under full voting — and latches
    // the violation. The remaining proposals consult the liar again.
    EXPECT_EQ(pass1.tool, "b-writer");
    EXPECT_EQ(pass1.votes_total, 4);
    EXPECT_EQ(pass1.votes_skipped, 1);
    EXPECT_EQ(pass1.vetoed, 4);
    EXPECT_EQ(pass1.route_audit_violations, 1);

    // Pass 2: the liar's declaration is distrusted for the rest of the
    // run — it votes on everything again.
    EXPECT_EQ(pass2.tool, "b-writer");
    EXPECT_EQ(pass2.votes_total, 4);
    EXPECT_EQ(pass2.votes_skipped, 0);
    EXPECT_EQ(pass2.vetoed, 4);
    EXPECT_EQ(pass2.route_audit_violations, 0);

    EXPECT_EQ(routed.second.route_audit_violations, 1);
    // The audited vote counted, so the outcome matches full voting.
    ExpectDatabasesIdentical(*routed.first, *full.first);
  }
}

}  // namespace
}  // namespace aspect
