// Tests for scope-indexed validator routing (--route-votes): routed
// voting must be bitwise identical to full voting in every execution
// mode and at every thread count while actually pruning votes, the
// row-interval exemption must prune validators whose certified range
// is disjoint from the touched rows, and the sampled pruning audit
// must catch a validator whose declared read scope under-reports what
// its votes depend on — then keep it off the routed path for the rest
// of the run.
#include <gtest/gtest.h>

#include <cmath>

#include "aspect/coordinator.h"
#include "aspect/tweak_context.h"
#include "aspect/vote_index.h"
#include "properties/simple.h"
#include "relational/modlog.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

namespace aspect {
namespace {

// Byte-level equality: slots, tombstones, and every cell's state (a
// kNull cell is not a kEmpty cell even though both read back as Null).
void ExpectDatabasesIdentical(const Database& a, const Database& b) {
  ASSERT_EQ(a.num_tables(), b.num_tables());
  for (int t = 0; t < a.num_tables(); ++t) {
    const Table& ta = a.table(t);
    const Table& tb = b.table(t);
    ASSERT_EQ(ta.NumSlots(), tb.NumSlots()) << ta.name();
    ASSERT_EQ(ta.NumTuples(), tb.NumTuples()) << ta.name();
    for (TupleId tid = 0; tid < ta.NumSlots(); ++tid) {
      ASSERT_EQ(ta.IsLive(tid), tb.IsLive(tid)) << ta.name() << " " << tid;
      for (int c = 0; c < ta.num_columns(); ++c) {
        ASSERT_EQ(static_cast<int>(ta.column(c).state(tid)),
                  static_cast<int>(tb.column(c).state(tid)))
            << ta.name() << " " << tid << " col " << c;
        if (ta.column(c).IsValue(tid)) {
          ASSERT_EQ(ta.column(c).Get(tid), tb.column(c).Get(tid))
              << ta.name() << " " << tid << " col " << c;
        }
      }
    }
  }
}

// Entry-level equality of two modification logs: same modifications,
// same order, same pre-images, same assigned tuple ids.
void ExpectLogsIdentical(const ModificationLog& a, const ModificationLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    const ModificationLog::Entry& ea = a.entries()[static_cast<size_t>(i)];
    const ModificationLog::Entry& eb = b.entries()[static_cast<size_t>(i)];
    ASSERT_EQ(static_cast<int>(ea.mod.kind), static_cast<int>(eb.mod.kind))
        << "entry " << i;
    ASSERT_EQ(ea.mod.table, eb.mod.table) << "entry " << i;
    ASSERT_EQ(ea.mod.tuples, eb.mod.tuples) << "entry " << i;
    ASSERT_EQ(ea.mod.cols, eb.mod.cols) << "entry " << i;
    ASSERT_EQ(ea.mod.values, eb.mod.values) << "entry " << i;
    ASSERT_EQ(ea.old_values, eb.old_values) << "entry " << i;
    ASSERT_EQ(ea.new_tuple, eb.new_tuple) << "entry " << i;
  }
}

std::vector<TupleId> LiveTuples(const Table& t) {
  std::vector<TupleId> live;
  t.ForEachLive([&](TupleId tid) { live.push_back(tid); });
  return live;
}

struct Outcome {
  RunReport report;
  std::unique_ptr<Database> db;
  std::unique_ptr<ModificationLog> log;
};

void ExpectSameSteps(const RunReport& a, const RunReport& b) {
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < b.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].tool, b.steps[i].tool) << "step " << i;
    EXPECT_EQ(a.steps[i].error_before, b.steps[i].error_before)
        << "step " << i;
    EXPECT_EQ(a.steps[i].error_after, b.steps[i].error_after) << "step " << i;
    EXPECT_EQ(a.steps[i].applied, b.steps[i].applied) << "step " << i;
    EXPECT_EQ(a.steps[i].vetoed, b.steps[i].vetoed) << "step " << i;
    EXPECT_EQ(a.steps[i].batch_final, b.steps[i].batch_final) << "step " << i;
    // Routing never changes how many votes COULD be cast — only how
    // many validators were actually invoked.
    EXPECT_EQ(a.steps[i].votes_total, b.steps[i].votes_total) << "step " << i;
  }
  EXPECT_EQ(a.final_errors, b.final_errors);
}

// ---------------------------------------------------------------------
// Routed vs full voting over a real dataset: three narrow-scope
// ColumnFreq tools plus a TupleCount tool with grow work, so the vote
// loops see both cell writes and row-structure writes. Routed runs
// must be bitwise identical to full voting in the database, the log,
// and the per-step report — across serial, clone and shared modes and
// across thread counts — while skipping a nonzero number of votes.
// ---------------------------------------------------------------------
class VoteRoutingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gen_ = std::make_unique<SnapshotSet>(
        GenerateDataset(XiamiLike(2.0), 11).ValueOrAbort());
    truth_ = gen_->Materialize(4).ValueOrAbort();
    RandScaler rand;
    base_ = rand.Scale(*gen_->Materialize(1).ValueOrAbort(),
                       gen_->SnapshotSizes(4), 11)
                .ValueOrAbort();
    for (const auto& tc : kCols) {
      Table* table = base_->FindTable(tc[0]);
      ASSERT_NE(table, nullptr);
      const int col = table->ColumnIndex(tc[1]);
      std::vector<TupleId> rows = LiveTuples(*table);
      ASSERT_TRUE(base_->Apply(Modification::ReplaceValues(
                                   tc[0], rows, {col}, {Value(int64_t{0})}))
                      .ok());
    }
    // Knock a few Thread tuples out so the TupleCount tool has grow
    // work: its inserts are row-structure writes, the Route() branch
    // the cell-write-only ColumnFreq proposals never reach.
    Table* thread = base_->FindTable("Thread");
    ASSERT_NE(thread, nullptr);
    std::vector<TupleId> live = LiveTuples(*thread);
    ASSERT_GT(live.size(), 8u);
    for (size_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          base_->Apply(Modification::DeleteTuple("Thread", live[i])).ok());
    }
  }

  Outcome RunWith(RouteVotes route, bool parallel, ParallelMode mode,
                  int threads, int batch_size = 64,
                  bool rebuild_per_step = false) {
    Outcome out;
    out.db = base_->Clone();
    out.log = std::make_unique<ModificationLog>(out.db.get());
    Coordinator coordinator;
    std::vector<int> order;
    for (const auto& tc : kCols) {
      order.push_back(coordinator.AddTool(std::make_unique<ColumnFreqTool>(
          truth_->schema(), tc[0], tc[1])));
    }
    order.push_back(
        coordinator.AddTool(std::make_unique<TupleCountTool>(truth_->schema())));
    coordinator.SetTargetsFromDataset(*truth_).Check();
    CoordinatorOptions opts;
    opts.seed = 5;
    opts.parallel_pass = parallel;
    opts.parallel_mode = mode;
    opts.pass_threads = threads;
    opts.batch_size = batch_size;
    opts.route_votes = route;
    opts.route_rebuild_per_step = rebuild_per_step;
    out.report = coordinator.Run(out.db.get(), order, opts).ValueOrAbort();
    return out;
  }

  static constexpr const char* kCols[][2] = {
      {"User", "gender"}, {"Photo", "kind"}, {"Thread", "kind"}};

  std::unique_ptr<SnapshotSet> gen_;
  std::unique_ptr<Database> truth_;
  std::unique_ptr<Database> base_;
};

TEST_F(VoteRoutingTest, RoutedMatchesFullAcrossModesAndThreads) {
  const Outcome full_serial =
      RunWith(RouteVotes::kOff, false, ParallelMode::kShared, 1);
  // Full voting never skips and the off mode never audits.
  EXPECT_EQ(full_serial.report.votes_skipped, 0);
  EXPECT_GT(full_serial.report.votes_total, 0);

  for (const RouteVotes route : {RouteVotes::kOn, RouteVotes::kAudit}) {
    const Outcome routed = RunWith(route, false, ParallelMode::kShared, 1);
    ExpectSameSteps(routed.report, full_serial.report);
    ExpectDatabasesIdentical(*routed.db, *full_serial.db);
    ExpectLogsIdentical(*routed.log, *full_serial.log);
    // Routing really pruned something, consulted something, and the
    // audit (debug: every pruned vote; release: sampled) found every
    // declaration honest.
    EXPECT_GT(routed.report.votes_skipped, 0);
    EXPECT_LT(routed.report.votes_skipped, routed.report.votes_total);
    EXPECT_EQ(routed.report.route_audit_violations, 0);
  }

  for (const ParallelMode mode :
       {ParallelMode::kClone, ParallelMode::kShared}) {
    for (const int threads : {1, 2, 8}) {
      const Outcome full = RunWith(RouteVotes::kOff, true, mode, threads);
      const Outcome routed = RunWith(RouteVotes::kOn, true, mode, threads);
      EXPECT_GT(routed.report.parallel_groups, 0)
          << "mode " << static_cast<int>(mode) << " threads " << threads;
      ExpectSameSteps(routed.report, full.report);
      ExpectDatabasesIdentical(*routed.db, *full.db);
      ExpectLogsIdentical(*routed.log, *full.log);
      // ... and both match the serial full-voting run bit for bit.
      ExpectDatabasesIdentical(*routed.db, *full_serial.db);
      ExpectLogsIdentical(*routed.log, *full_serial.log);
      // The serial tuple-count step prunes the off-table ColumnFreq
      // validators even when the ColumnFreq trio ran as a group.
      EXPECT_GT(routed.report.votes_skipped, 0)
          << "mode " << static_cast<int>(mode) << " threads " << threads;
      EXPECT_EQ(routed.report.route_audit_violations, 0);
    }
  }
}

// ---------------------------------------------------------------------
// Row-interval routing: two instances of one ColumnFreqTool split the
// SAME (table, column) into disjoint tuple-id halves. The second
// instance's proposals touch only its own half, so the first — a
// certified-range reader of the same cell atom — must be pruned by
// interval disjointness, and (audit mode, so every pruned vote is
// re-invoked) must genuinely return zero penalty outside its range.
// ---------------------------------------------------------------------
TEST_F(VoteRoutingTest, RowRangeDisjointValidatorIsPruned) {
  const Table* user = base_->FindTable("User");
  ASSERT_NE(user, nullptr);
  const int64_t mid = user->NumSlots() / 2;
  ASSERT_GT(mid, 0);
  const int64_t last = user->NumSlots() - 1;

  const auto run_with = [&](RouteVotes route) {
    Outcome out;
    out.db = base_->Clone();
    out.log = std::make_unique<ModificationLog>(out.db.get());
    Coordinator coordinator;
    auto lo =
        std::make_unique<ColumnFreqTool>(truth_->schema(), "User", "gender");
    lo->SetRowRange(0, mid - 1);
    auto hi =
        std::make_unique<ColumnFreqTool>(truth_->schema(), "User", "gender");
    hi->SetRowRange(mid, last);
    std::vector<int> order = {coordinator.AddTool(std::move(lo)),
                              coordinator.AddTool(std::move(hi))};
    coordinator.SetTargetsFromDataset(*truth_).Check();
    CoordinatorOptions opts;
    opts.seed = 5;
    opts.batch_size = 64;
    opts.route_votes = route;
    out.report = coordinator.Run(out.db.get(), order, opts).ValueOrAbort();
    return out;
  };

  const Outcome full = run_with(RouteVotes::kOff);
  for (const RouteVotes route : {RouteVotes::kOn, RouteVotes::kAudit}) {
    const Outcome routed = run_with(route);
    ExpectSameSteps(routed.report, full.report);
    ExpectDatabasesIdentical(*routed.db, *full.db);
    ExpectLogsIdentical(*routed.log, *full.log);
    // The hi step's only validator (lo) reads the same column but a
    // disjoint certified range: every one of its votes is pruned, and
    // none of the audited ones found a nonzero penalty (the InRange
    // guard makes the zero-outside-scope contract real).
    EXPECT_GT(routed.report.votes_skipped, 0);
    EXPECT_EQ(routed.report.route_audit_violations, 0);
  }
}

// =====================================================================
// Direct-drive VoteIndex tests: routing decisions, the aggregation
// skip, the unknown-table fallback, and incremental maintenance
// checked against from-scratch rebuilds.
// =====================================================================

Schema PairSchema() {
  Schema s;
  s.name = "pair";
  s.tables.push_back({"T",
                      {{"x", ColumnType::kInt64, ""},
                       {"y", ColumnType::kInt64, ""}}});
  s.tables.push_back({"U", {{"x", ColumnType::kInt64, ""}}});
  return s;
}

// OR-union of single-modification Route calls: the reference the
// batched (and aggregated) paths must reproduce.
ConsultMask RouteUnion(const VoteIndex& index,
                       std::span<const Modification> mods) {
  ConsultMask acc;
  acc.Reset(index.num_validators());
  ConsultMask one;
  for (size_t i = 0; i < mods.size(); ++i) {
    index.Route(mods.subspan(i, 1), &one);
    for (size_t v = 0; v < one.size(); ++v) {
      if (one.Test(v)) acc.SetBit(v);
    }
  }
  return acc;
}

TEST(VoteIndexTest, AggregateSkipsCollectingOnceRangedReadersConsulted) {
  const Schema schema = PairSchema();
  VoteIndex index;
  index.Reset(&schema);
  AccessScope scope;
  scope.known = true;
  scope.AddRead(0, 0);             // T.x, unranged
  scope.AddReadRange(0, 1, 0, 3);  // T.y, rows [0, 3]
  ASSERT_EQ(index.AddValidator(scope), 0);

  // Nine mods (the aggregate regime) each writing T.x and T.y: the
  // unranged T.x read consults the validator on the first mod, so the
  // T.y interval aggregation has nothing left to decide and must not
  // collect a single tuple id.
  std::vector<Modification> both;
  for (int64_t i = 0; i < 9; ++i) {
    both.push_back(Modification::ReplaceValues(
        "T", {i}, {0, 1}, {Value(int64_t{1}), Value(int64_t{2})}));
  }
  ConsultMask consult;
  RouteMetrics metrics;
  index.Route(both, &consult, &metrics);
  EXPECT_TRUE(consult.Test(0));
  EXPECT_EQ(metrics.interval_inserts, 0);
  EXPECT_EQ(metrics.fallbacks, 0);

  // Control: with only the ranged T.y read the aggregation must run —
  // one insert per modification — and the overlap with [0, 3] consults.
  VoteIndex ranged_only;
  ranged_only.Reset(&schema);
  AccessScope ranged;
  ranged.known = true;
  ranged.AddReadRange(0, 1, 0, 3);
  ranged_only.AddValidator(ranged);
  std::vector<Modification> y_only;
  for (int64_t i = 0; i < 9; ++i) {
    y_only.push_back(
        Modification::ReplaceValues("T", {i}, {1}, {Value(int64_t{2})}));
  }
  RouteMetrics control;
  ranged_only.Route(y_only, &consult, &control);
  EXPECT_TRUE(consult.Test(0));
  EXPECT_EQ(control.interval_inserts, 9);
}

TEST(VoteIndexTest, UnknownTableFallbackFillsMaskAndClearsScratch) {
  const Schema schema = PairSchema();
  VoteIndex index;
  index.Reset(&schema);
  AccessScope scope;
  scope.known = true;
  scope.AddReadRange(0, 1, 0, 3);  // T.y rows [0, 3]
  index.AddValidator(scope);

  // An aggregate batch that seeds the T.y scratch with in-range rows,
  // then names a table the schema does not know: the consult mask is
  // filled, the fallback counted, and the half-built scratch discarded.
  std::vector<Modification> poisoned;
  for (int64_t i = 0; i < 9; ++i) {
    poisoned.push_back(
        Modification::ReplaceValues("T", {i}, {1}, {Value(int64_t{7})}));
  }
  poisoned.push_back(
      Modification::ReplaceValues("Nope", {0}, {0}, {Value(int64_t{7})}));
  ConsultMask consult;
  RouteMetrics metrics;
  index.Route(poisoned, &consult, &metrics);
  EXPECT_EQ(metrics.fallbacks, 1);
  EXPECT_EQ(consult.CountSet(), 1u);

  // A fresh aggregate batch disjoint from [0, 3]: stale intervals left
  // over from the aborted call would wrongly consult the validator.
  std::vector<Modification> disjoint;
  for (int64_t i = 10; i < 19; ++i) {
    disjoint.push_back(
        Modification::ReplaceValues("T", {i}, {1}, {Value(int64_t{7})}));
  }
  RouteMetrics clean;
  index.Route(disjoint, &consult, &clean);
  EXPECT_FALSE(consult.Test(0));
  EXPECT_EQ(clean.fallbacks, 0);
}

TEST(VoteIndexTest, IncrementalMatchesRebuildThroughWidenAndDistrust) {
  const Schema schema = PairSchema();

  std::vector<AccessScope> scopes;
  AccessScope widened;  // hull-widened ranged reader of T.y
  widened.known = true;
  widened.AddRead(0, 0);
  widened.AddReadRange(0, 1, 0, 2);
  widened.AddReadRange(0, 1, 5, 7);  // duplicate atom: widens to [0, 7]
  scopes.push_back(widened);
  AccessScope whole;  // whole-table U reader plus a far T.y range
  whole.known = true;
  whole.AddRead(1);
  whole.AddReadRange(0, 1, 10, 12);
  scopes.push_back(whole);
  scopes.push_back(AccessScope());  // unknown: always-vote
  AccessScope observed;             // observed-only: reads incomplete
  observed.known = true;
  observed.reads_complete = false;
  observed.AddWrite(0, 0);
  scopes.push_back(observed);

  VoteIndex incremental;
  incremental.Reset(&schema);
  for (const AccessScope& s : scopes) incremental.AddValidator(s);
  VoteIndex rebuilt;
  rebuilt.Build(&schema, scopes);
  EXPECT_TRUE(incremental.DebugEquals(rebuilt));

  // A write inside the widened hull but outside both declared pieces:
  // hull routing must consult — the conservative meaning of widening.
  const Modification probe =
      Modification::ReplaceValues("T", {4}, {1}, {Value(int64_t{0})});
  ConsultMask consult;
  incremental.Route(std::span<const Modification>(&probe, 1), &consult);
  EXPECT_TRUE(consult.Test(0));   // hull [0, 7] contains row 4
  EXPECT_FALSE(consult.Test(1));  // [10, 12] does not
  EXPECT_TRUE(consult.Test(2));   // unknown scopes always vote
  EXPECT_TRUE(consult.Test(3));   // incomplete reads always vote

  // Distrust degrades in place; a fresh build over the degraded scope
  // list lands on the identical structure. Idempotent.
  incremental.Distrust(1);
  std::vector<AccessScope> degraded = scopes;
  degraded[1] = AccessScope();
  VoteIndex fresh;
  fresh.Build(&schema, degraded);
  EXPECT_TRUE(incremental.DebugEquals(fresh));
  incremental.Distrust(1);
  EXPECT_TRUE(incremental.DebugEquals(fresh));

  // Growth after a distrust keeps the identity.
  AccessScope late;
  late.known = true;
  late.AddReadRange(1, 0, 0, 4);
  EXPECT_EQ(incremental.AddValidator(late), 4);
  degraded.push_back(late);
  fresh.Build(&schema, degraded);
  EXPECT_TRUE(incremental.DebugEquals(fresh));
}

TEST(VoteIndexTest, RowStructureWritesDisturbRangedCellReaders) {
  const Schema schema = PairSchema();
  VoteIndex index;
  index.Reset(&schema);
  AccessScope scope;
  scope.known = true;
  scope.AddReadRange(0, 1, 5, 7);  // T.y rows [5, 7]
  index.AddValidator(scope);

  ConsultMask consult;
  const Modification cell =
      Modification::ReplaceValues("T", {0}, {1}, {Value(int64_t{0})});
  index.Route(std::span<const Modification>(&cell, 1), &consult);
  EXPECT_FALSE(consult.Test(0));  // row 0 outside [5, 7]

  // A tuple insert in the same batch is a row-structure write: no
  // interval exemption (its id is not assigned yet), so the ranged
  // reader is consulted even though the cell write alone is exempt.
  const std::vector<Modification> mixed = {
      Modification::InsertTuple("T", {Value(int64_t{1}), Value(int64_t{2})}),
      cell,
  };
  index.Route(mixed, &consult);
  EXPECT_TRUE(consult.Test(0));
}

TEST(VoteIndexTest, AggregateThresholdMatchesPerModUnion) {
  const Schema schema = PairSchema();
  VoteIndex index;
  index.Reset(&schema);
  AccessScope lo;
  lo.known = true;
  lo.AddReadRange(0, 1, 0, 3);
  AccessScope hi;
  hi.known = true;
  hi.AddReadRange(0, 1, 10, 12);
  AccessScope other_col;
  other_col.known = true;
  other_col.AddRead(0, 0);  // T.x — the batch writes only T.y
  AccessScope whole_u;
  whole_u.known = true;
  whole_u.AddRead(1);  // whole-table U
  index.AddValidator(lo);
  index.AddValidator(hi);
  index.AddValidator(other_col);
  index.AddValidator(whole_u);
  index.AddValidator(AccessScope());  // always-vote

  std::vector<Modification> mods;
  for (const int64_t row : {0, 1, 2, 11, 20, 21, 22, 23, 24}) {
    mods.push_back(
        Modification::ReplaceValues("T", {row}, {1}, {Value(int64_t{0})}));
  }

  // The 9-mod batch takes the aggregated-interval path; its first 8
  // mods take the per-tuple path. Both must equal the per-mod union.
  ConsultMask batch9;
  index.Route(mods, &batch9);
  EXPECT_EQ(batch9, RouteUnion(index, mods));
  ConsultMask batch8;
  index.Route(std::span<const Modification>(mods).first(8), &batch8);
  EXPECT_EQ(batch8,
            RouteUnion(index, std::span<const Modification>(mods).first(8)));

  EXPECT_TRUE(batch9.Test(0));   // rows 0..2 hit [0, 3]
  EXPECT_TRUE(batch9.Test(1));   // row 11 hits [10, 12]
  EXPECT_FALSE(batch9.Test(2));  // T.x never written
  EXPECT_FALSE(batch9.Test(3));  // table U never touched
  EXPECT_TRUE(batch9.Test(4));   // unknown scope
}

// ---------------------------------------------------------------------
// Incremental maintenance: the run-wide index with O(1) deltas must be
// indistinguishable — database, log, per-step report, pruning counts —
// from tearing the index down and rebuilding it from certified scopes
// on every serial step (route_rebuild_per_step, the pre-incremental
// behaviour kept as a baseline). In debug builds every routed step
// additionally asserts the incremental index is structurally identical
// to a from-scratch rebuild.
// ---------------------------------------------------------------------
TEST_F(VoteRoutingTest, IncrementalIndexMatchesPerStepRebuild) {
  const Outcome incremental =
      RunWith(RouteVotes::kOn, false, ParallelMode::kShared, 1);
  const Outcome rebuilt =
      RunWith(RouteVotes::kOn, false, ParallelMode::kShared, 1,
              /*batch_size=*/64, /*rebuild_per_step=*/true);
  ExpectSameSteps(rebuilt.report, incremental.report);
  ExpectDatabasesIdentical(*rebuilt.db, *incremental.db);
  ExpectLogsIdentical(*rebuilt.log, *incremental.log);
  EXPECT_EQ(rebuilt.report.votes_skipped, incremental.report.votes_skipped);
  // Both record the maintenance time behind the same metric; only the
  // amount of work behind it differs.
  EXPECT_GE(incremental.report.route_index_build_seconds, 0.0);
  EXPECT_GE(rebuilt.report.route_index_build_seconds, 0.0);
  // No unknown-table proposals in this workload.
  EXPECT_EQ(incremental.report.route_fallbacks, 0);
}

// ---------------------------------------------------------------------
// The aggregate threshold: a batch of 8 modifications routes with
// per-tuple interval tests, a batch of 9 aggregates touched ids into
// interval sets. Both regimes must stay bitwise identical to full
// voting.
// ---------------------------------------------------------------------
TEST_F(VoteRoutingTest, AggregateThresholdBatchSizesMatchFull) {
  for (const int batch_size : {8, 9}) {
    const Outcome full = RunWith(RouteVotes::kOff, false,
                                 ParallelMode::kShared, 1, batch_size);
    const Outcome routed = RunWith(RouteVotes::kOn, false,
                                   ParallelMode::kShared, 1, batch_size);
    ExpectSameSteps(routed.report, full.report);
    ExpectDatabasesIdentical(*routed.db, *full.db);
    ExpectLogsIdentical(*routed.log, *full.log);
    EXPECT_GT(routed.report.votes_skipped, 0) << "batch " << batch_size;
    EXPECT_EQ(routed.report.route_audit_violations, 0)
        << "batch " << batch_size;
  }
}

// ---------------------------------------------------------------------
// The pruning audit: a validator that certifies reading only A.x but
// actually votes on table B. Routing prunes it from B-writing
// proposals; the audit (the first pruned vote is always checked, in
// release builds too) sees the nonzero penalty, counts the vote as
// cast — same veto as full voting — and distrusts the declaration for
// the rest of the run.
// ---------------------------------------------------------------------
Schema TinySchema() {
  Schema s;
  s.name = "tiny";
  s.tables.push_back({"A", {{"x", ColumnType::kInt64, ""}}});
  s.tables.push_back({"B", {{"x", ColumnType::kInt64, ""}}});
  return s;
}

std::unique_ptr<Database> TinyDb() {
  auto db = Database::Create(TinySchema()).ValueOrAbort();
  for (const char* name : {"A", "B"}) {
    Table* t = db->FindTable(name);
    t->Append({Value(int64_t{1})}).status().Check();
    t->Append({Value(int64_t{2})}).status().Check();
  }
  return db;
}

// Certifies that its votes depend only on A.x — but vetoes every
// modification of table B.
class NarrowLiarTool : public PropertyTool {
 public:
  explicit NarrowLiarTool(const Schema& schema)
      : a_index_(schema.TableIndex("A")) {}
  std::string name() const override { return "narrow-liar"; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0; }
  double ValidationPenalty(const Modification& mod) const override {
    // The lie: a vote that depends on a table the scope never reads.
    return mod.table == "B" ? 1.0 : 0.0;
  }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  AccessScope DeclaredScope() const override {
    AccessScope scope;
    scope.known = true;
    scope.AddRead(a_index_, 0);  // A.x only — says nothing about B
    return scope;
  }
  Status Tweak(TweakContext*) override { return Status::OK(); }

 private:
  int a_index_;
  Database* db_ = nullptr;
};

// Proposes four rewrites of B.x[0]; vetoes are part of the plan.
class BWriterTool : public PropertyTool {
 public:
  explicit BWriterTool(const Schema& schema)
      : b_index_(schema.TableIndex("B")) {}
  std::string name() const override { return "b-writer"; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0; }
  double ValidationPenalty(const Modification&) const override { return 0; }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  AccessScope DeclaredScope() const override {
    AccessScope scope;
    scope.known = true;
    scope.AddWrite(b_index_, 0);  // B.x
    return scope;
  }
  Status Tweak(TweakContext* ctx) override {
    for (int64_t k = 0; k < 4; ++k) {
      const Status st = ctx->TryApply(
          Modification::ReplaceValues("B", {0}, {0}, {Value(int64_t{10 + k})}));
      if (!st.ok() && !st.IsValidationFailed()) return st;
    }
    return Status::OK();
  }

 private:
  int b_index_;
  Database* db_ = nullptr;
};

TEST(VoteRoutingAuditTest, OverNarrowValidatorIsCaughtAndDistrusted) {
  const Schema schema = TinySchema();
  const auto run_with = [&](RouteVotes route, bool rebuild_per_step = false) {
    auto db = TinyDb();
    Coordinator coordinator;
    std::vector<int> order = {
        coordinator.AddTool(std::make_unique<NarrowLiarTool>(schema)),
        coordinator.AddTool(std::make_unique<BWriterTool>(schema)),
    };
    CoordinatorOptions opts;
    opts.seed = 13;
    opts.iterations = 2;
    opts.route_votes = route;
    opts.route_rebuild_per_step = rebuild_per_step;
    RunReport report = coordinator.Run(db.get(), order, opts).ValueOrAbort();
    return std::make_pair(std::move(db), std::move(report));
  };

  const auto full = run_with(RouteVotes::kOff);
  // Full voting consults the liar on every proposal: all four rewrites
  // vetoed in both passes, B never changes.
  ASSERT_EQ(full.second.steps.size(), 4u);
  EXPECT_EQ(full.second.steps[1].vetoed, 4);
  EXPECT_EQ(full.second.steps[3].vetoed, 4);
  EXPECT_EQ(full.second.route_audit_violations, 0);

  for (const RouteVotes route : {RouteVotes::kOn, RouteVotes::kAudit}) {
   // The distrust-and-degrade sequence must play out identically under
   // the incrementally maintained run-wide index and under per-step
   // rebuilds from the (degraded) scope list.
   for (const bool rebuild : {false, true}) {
    const auto routed = run_with(route, rebuild);
    ASSERT_EQ(routed.second.steps.size(), 4u);
    const ToolReport& pass1 = routed.second.steps[1];
    const ToolReport& pass2 = routed.second.steps[3];

    // Pass 1: the liar is pruned from the first proposal; the audit
    // checks that very vote (pruned vote #0 is always audited, in
    // release sampling too), sees the 1.0 penalty, counts it — so the
    // proposal is vetoed exactly as under full voting — and latches
    // the violation. The remaining proposals consult the liar again.
    EXPECT_EQ(pass1.tool, "b-writer");
    EXPECT_EQ(pass1.votes_total, 4);
    EXPECT_EQ(pass1.votes_skipped, 1);
    EXPECT_EQ(pass1.vetoed, 4);
    EXPECT_EQ(pass1.route_audit_violations, 1);

    // Pass 2: the liar's declaration is distrusted for the rest of the
    // run — it votes on everything again.
    EXPECT_EQ(pass2.tool, "b-writer");
    EXPECT_EQ(pass2.votes_total, 4);
    EXPECT_EQ(pass2.votes_skipped, 0);
    EXPECT_EQ(pass2.vetoed, 4);
    EXPECT_EQ(pass2.route_audit_violations, 0);

    EXPECT_EQ(routed.second.route_audit_violations, 1);
    // The audited vote counted, so the outcome matches full voting.
    ExpectDatabasesIdentical(*routed.first, *full.first);
   }
  }
}

// ---------------------------------------------------------------------
// Hull widening end-to-end: a validator that declares two disjoint row
// ranges of the same atom. The scope (and so the index) widens them to
// the hull, which must keep a write in the gap between the pieces on
// the voted path — and prune a write outside the hull.
// ---------------------------------------------------------------------
std::unique_ptr<Database> TinyDbWithRows(int64_t a_rows) {
  auto db = Database::Create(TinySchema()).ValueOrAbort();
  Table* a = db->FindTable("A");
  for (int64_t i = 0; i < a_rows; ++i) {
    a->Append({Value(int64_t{i})}).status().Check();
  }
  db->FindTable("B")->Append({Value(int64_t{1})}).status().Check();
  return db;
}

// Declares A.x rows [0, 2] and [6, 8] — widened to the hull [0, 8] —
// and vetoes exactly the writes of A.x row 4: a row inside the hull
// but outside both declared pieces, which the certified range still
// covers.
class HullValidatorTool : public PropertyTool {
 public:
  explicit HullValidatorTool(const Schema& schema)
      : a_index_(schema.TableIndex("A")) {}
  std::string name() const override { return "hull-validator"; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0; }
  double ValidationPenalty(const Modification& mod) const override {
    if (mod.table != "A" || mod.kind != OpKind::kReplaceValues) return 0.0;
    for (const TupleId tid : mod.tuples) {
      if (tid == 4) return 1.0;
    }
    return 0.0;
  }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  AccessScope DeclaredScope() const override {
    AccessScope scope;
    scope.known = true;
    scope.AddReadRange(a_index_, 0, 0, 2);
    scope.AddReadRange(a_index_, 0, 6, 8);  // widens to the hull [0, 8]
    return scope;
  }
  Status Tweak(TweakContext*) override { return Status::OK(); }

 private:
  int a_index_;
  Database* db_ = nullptr;
};

// Proposes a write in the hull gap (row 4, vetoed) and one past the
// hull (row 9, applied with the validator's vote pruned).
class GapWriterTool : public PropertyTool {
 public:
  explicit GapWriterTool(const Schema& schema)
      : a_index_(schema.TableIndex("A")) {}
  std::string name() const override { return "gap-writer"; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0; }
  double ValidationPenalty(const Modification&) const override { return 0; }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  AccessScope DeclaredScope() const override {
    AccessScope scope;
    scope.known = true;
    scope.AddWrite(a_index_, 0);  // A.x
    return scope;
  }
  Status Tweak(TweakContext* ctx) override {
    for (const int64_t row : {int64_t{4}, int64_t{9}}) {
      const Status st = ctx->TryApply(Modification::ReplaceValues(
          "A", {row}, {0}, {Value(int64_t{100 + row})}));
      if (!st.ok() && !st.IsValidationFailed()) return st;
    }
    return Status::OK();
  }

 private:
  int a_index_;
  Database* db_ = nullptr;
};

TEST(VoteRoutingHullTest, HullWidenedDuplicateAtomRoutesConservatively) {
  const Schema schema = TinySchema();
  const auto run_with = [&](RouteVotes route) {
    auto db = TinyDbWithRows(10);
    Coordinator coordinator;
    std::vector<int> order = {
        coordinator.AddTool(std::make_unique<HullValidatorTool>(schema)),
        coordinator.AddTool(std::make_unique<GapWriterTool>(schema)),
    };
    CoordinatorOptions opts;
    opts.seed = 13;
    opts.iterations = 1;
    opts.route_votes = route;
    RunReport report = coordinator.Run(db.get(), order, opts).ValueOrAbort();
    return std::make_pair(std::move(db), std::move(report));
  };
  const auto full = run_with(RouteVotes::kOff);
  EXPECT_EQ(full.second.votes_skipped, 0);
  for (const RouteVotes route : {RouteVotes::kOn, RouteVotes::kAudit}) {
    const auto routed = run_with(route);
    ExpectDatabasesIdentical(*routed.first, *full.first);
    // Row 4 (inside the hull) was voted on and vetoed; row 9 (outside)
    // was pruned, and the audited pruned vote returned zero.
    EXPECT_EQ(routed.second.votes_skipped, 1);
    EXPECT_EQ(routed.second.route_audit_violations, 0);
  }
}

// ---------------------------------------------------------------------
// The unknown-table fallback end-to-end: a proposal naming a table the
// schema does not know routes conservatively and is counted on the
// report, where it distinguishes such proposals from legitimately
// routed (fully consulted) ones.
// ---------------------------------------------------------------------

// A routable validator with an honest narrow scope; never vetoes.
class PassiveTool : public PropertyTool {
 public:
  explicit PassiveTool(const Schema& schema)
      : a_index_(schema.TableIndex("A")) {}
  std::string name() const override { return "passive"; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0; }
  double ValidationPenalty(const Modification&) const override { return 0; }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  AccessScope DeclaredScope() const override {
    AccessScope scope;
    scope.known = true;
    scope.AddRead(a_index_, 0);
    return scope;
  }
  Status Tweak(TweakContext*) override { return Status::OK(); }

 private:
  int a_index_;
  Database* db_ = nullptr;
};

// Proposes a write to a table the schema does not know (the router's
// conservative fallback) plus one legitimate write. The ghost write
// fails at apply time; the tool swallows the failure.
class GhostWriterTool : public PropertyTool {
 public:
  explicit GhostWriterTool(const Schema&) {}
  std::string name() const override { return "ghost-writer"; }
  Status SetTargetFromDataset(const Database&) override {
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override { return Status::OK(); }
  Status Bind(Database* db) override {
    db_ = db;
    return Status::OK();
  }
  void Unbind() override { db_ = nullptr; }
  bool bound() const override { return db_ != nullptr; }
  double Error() const override { return 0; }
  double ValidationPenalty(const Modification&) const override { return 0; }
  void OnApplied(const Modification&, const std::vector<Value>&,
                 TupleId) override {}
  AccessScope DeclaredScope() const override { return AccessScope(); }
  Status Tweak(TweakContext* ctx) override {
    const Status ghost = ctx->TryApply(Modification::ReplaceValues(
        "Ghost", {0}, {0}, {Value(int64_t{1})}));
    if (ghost.ok()) return Status::Invalid("ghost write applied");
    return ctx->TryApply(
        Modification::ReplaceValues("A", {0}, {0}, {Value(int64_t{42})}));
  }

 private:
  Database* db_ = nullptr;
};

TEST(VoteRoutingFallbackTest, UnknownTableProposalsAreCountedOnTheReport) {
  const Schema schema = TinySchema();
  const auto run_with = [&](RouteVotes route) {
    auto db = TinyDb();
    Coordinator coordinator;
    std::vector<int> order = {
        coordinator.AddTool(std::make_unique<PassiveTool>(schema)),
        coordinator.AddTool(std::make_unique<GhostWriterTool>(schema)),
    };
    CoordinatorOptions opts;
    opts.seed = 13;
    opts.iterations = 1;
    opts.route_votes = route;
    RunReport report = coordinator.Run(db.get(), order, opts).ValueOrAbort();
    return report;
  };
  EXPECT_EQ(run_with(RouteVotes::kOff).route_fallbacks, 0);
  for (const RouteVotes route : {RouteVotes::kOn, RouteVotes::kAudit}) {
    const RunReport report = run_with(route);
    EXPECT_EQ(report.route_fallbacks, 1);
    // The run summary names the fallback so a filled consult mask is
    // distinguishable from a legitimately routed proposal.
    EXPECT_NE(report.ToString().find("unknown-table fallback"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace aspect
