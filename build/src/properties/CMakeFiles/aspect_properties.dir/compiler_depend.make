# Empty compiler generated dependencies file for aspect_properties.
# This may be replaced when dependencies are built.
