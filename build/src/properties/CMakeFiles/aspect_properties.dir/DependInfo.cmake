
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/properties/builtin.cc" "src/properties/CMakeFiles/aspect_properties.dir/builtin.cc.o" "gcc" "src/properties/CMakeFiles/aspect_properties.dir/builtin.cc.o.d"
  "/root/repo/src/properties/chain_stats.cc" "src/properties/CMakeFiles/aspect_properties.dir/chain_stats.cc.o" "gcc" "src/properties/CMakeFiles/aspect_properties.dir/chain_stats.cc.o.d"
  "/root/repo/src/properties/coappear.cc" "src/properties/CMakeFiles/aspect_properties.dir/coappear.cc.o" "gcc" "src/properties/CMakeFiles/aspect_properties.dir/coappear.cc.o.d"
  "/root/repo/src/properties/degree.cc" "src/properties/CMakeFiles/aspect_properties.dir/degree.cc.o" "gcc" "src/properties/CMakeFiles/aspect_properties.dir/degree.cc.o.d"
  "/root/repo/src/properties/joint.cc" "src/properties/CMakeFiles/aspect_properties.dir/joint.cc.o" "gcc" "src/properties/CMakeFiles/aspect_properties.dir/joint.cc.o.d"
  "/root/repo/src/properties/linear.cc" "src/properties/CMakeFiles/aspect_properties.dir/linear.cc.o" "gcc" "src/properties/CMakeFiles/aspect_properties.dir/linear.cc.o.d"
  "/root/repo/src/properties/pairwise.cc" "src/properties/CMakeFiles/aspect_properties.dir/pairwise.cc.o" "gcc" "src/properties/CMakeFiles/aspect_properties.dir/pairwise.cc.o.d"
  "/root/repo/src/properties/simple.cc" "src/properties/CMakeFiles/aspect_properties.dir/simple.cc.o" "gcc" "src/properties/CMakeFiles/aspect_properties.dir/simple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aspect/CMakeFiles/aspect_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/aspect_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/aspect_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aspect_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
