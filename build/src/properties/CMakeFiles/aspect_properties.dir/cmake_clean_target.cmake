file(REMOVE_RECURSE
  "libaspect_properties.a"
)
