file(REMOVE_RECURSE
  "CMakeFiles/aspect_properties.dir/builtin.cc.o"
  "CMakeFiles/aspect_properties.dir/builtin.cc.o.d"
  "CMakeFiles/aspect_properties.dir/chain_stats.cc.o"
  "CMakeFiles/aspect_properties.dir/chain_stats.cc.o.d"
  "CMakeFiles/aspect_properties.dir/coappear.cc.o"
  "CMakeFiles/aspect_properties.dir/coappear.cc.o.d"
  "CMakeFiles/aspect_properties.dir/degree.cc.o"
  "CMakeFiles/aspect_properties.dir/degree.cc.o.d"
  "CMakeFiles/aspect_properties.dir/joint.cc.o"
  "CMakeFiles/aspect_properties.dir/joint.cc.o.d"
  "CMakeFiles/aspect_properties.dir/linear.cc.o"
  "CMakeFiles/aspect_properties.dir/linear.cc.o.d"
  "CMakeFiles/aspect_properties.dir/pairwise.cc.o"
  "CMakeFiles/aspect_properties.dir/pairwise.cc.o.d"
  "CMakeFiles/aspect_properties.dir/simple.cc.o"
  "CMakeFiles/aspect_properties.dir/simple.cc.o.d"
  "libaspect_properties.a"
  "libaspect_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspect_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
