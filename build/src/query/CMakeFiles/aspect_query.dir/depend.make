# Empty dependencies file for aspect_query.
# This may be replaced when dependencies are built.
