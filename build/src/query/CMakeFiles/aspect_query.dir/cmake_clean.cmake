file(REMOVE_RECURSE
  "CMakeFiles/aspect_query.dir/engine.cc.o"
  "CMakeFiles/aspect_query.dir/engine.cc.o.d"
  "CMakeFiles/aspect_query.dir/queries.cc.o"
  "CMakeFiles/aspect_query.dir/queries.cc.o.d"
  "CMakeFiles/aspect_query.dir/sql.cc.o"
  "CMakeFiles/aspect_query.dir/sql.cc.o.d"
  "libaspect_query.a"
  "libaspect_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspect_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
