file(REMOVE_RECURSE
  "libaspect_query.a"
)
