file(REMOVE_RECURSE
  "libaspect_stats.a"
)
