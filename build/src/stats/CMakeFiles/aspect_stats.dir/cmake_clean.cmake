file(REMOVE_RECURSE
  "CMakeFiles/aspect_stats.dir/fitting.cc.o"
  "CMakeFiles/aspect_stats.dir/fitting.cc.o.d"
  "CMakeFiles/aspect_stats.dir/freq_dist.cc.o"
  "CMakeFiles/aspect_stats.dir/freq_dist.cc.o.d"
  "CMakeFiles/aspect_stats.dir/sampler.cc.o"
  "CMakeFiles/aspect_stats.dir/sampler.cc.o.d"
  "libaspect_stats.a"
  "libaspect_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspect_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
