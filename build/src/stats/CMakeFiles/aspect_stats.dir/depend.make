# Empty dependencies file for aspect_stats.
# This may be replaced when dependencies are built.
