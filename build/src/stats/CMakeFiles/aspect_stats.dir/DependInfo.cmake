
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/fitting.cc" "src/stats/CMakeFiles/aspect_stats.dir/fitting.cc.o" "gcc" "src/stats/CMakeFiles/aspect_stats.dir/fitting.cc.o.d"
  "/root/repo/src/stats/freq_dist.cc" "src/stats/CMakeFiles/aspect_stats.dir/freq_dist.cc.o" "gcc" "src/stats/CMakeFiles/aspect_stats.dir/freq_dist.cc.o.d"
  "/root/repo/src/stats/sampler.cc" "src/stats/CMakeFiles/aspect_stats.dir/sampler.cc.o" "gcc" "src/stats/CMakeFiles/aspect_stats.dir/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aspect_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/aspect_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
