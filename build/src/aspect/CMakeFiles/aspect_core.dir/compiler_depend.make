# Empty compiler generated dependencies file for aspect_core.
# This may be replaced when dependencies are built.
