file(REMOVE_RECURSE
  "libaspect_core.a"
)
