
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aspect/access_monitor.cc" "src/aspect/CMakeFiles/aspect_core.dir/access_monitor.cc.o" "gcc" "src/aspect/CMakeFiles/aspect_core.dir/access_monitor.cc.o.d"
  "/root/repo/src/aspect/coordinator.cc" "src/aspect/CMakeFiles/aspect_core.dir/coordinator.cc.o" "gcc" "src/aspect/CMakeFiles/aspect_core.dir/coordinator.cc.o.d"
  "/root/repo/src/aspect/overlap.cc" "src/aspect/CMakeFiles/aspect_core.dir/overlap.cc.o" "gcc" "src/aspect/CMakeFiles/aspect_core.dir/overlap.cc.o.d"
  "/root/repo/src/aspect/registry.cc" "src/aspect/CMakeFiles/aspect_core.dir/registry.cc.o" "gcc" "src/aspect/CMakeFiles/aspect_core.dir/registry.cc.o.d"
  "/root/repo/src/aspect/target_generator.cc" "src/aspect/CMakeFiles/aspect_core.dir/target_generator.cc.o" "gcc" "src/aspect/CMakeFiles/aspect_core.dir/target_generator.cc.o.d"
  "/root/repo/src/aspect/targets_io.cc" "src/aspect/CMakeFiles/aspect_core.dir/targets_io.cc.o" "gcc" "src/aspect/CMakeFiles/aspect_core.dir/targets_io.cc.o.d"
  "/root/repo/src/aspect/tweak_context.cc" "src/aspect/CMakeFiles/aspect_core.dir/tweak_context.cc.o" "gcc" "src/aspect/CMakeFiles/aspect_core.dir/tweak_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aspect_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/aspect_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/aspect_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
