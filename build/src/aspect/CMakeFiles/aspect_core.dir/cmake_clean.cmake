file(REMOVE_RECURSE
  "CMakeFiles/aspect_core.dir/access_monitor.cc.o"
  "CMakeFiles/aspect_core.dir/access_monitor.cc.o.d"
  "CMakeFiles/aspect_core.dir/coordinator.cc.o"
  "CMakeFiles/aspect_core.dir/coordinator.cc.o.d"
  "CMakeFiles/aspect_core.dir/overlap.cc.o"
  "CMakeFiles/aspect_core.dir/overlap.cc.o.d"
  "CMakeFiles/aspect_core.dir/registry.cc.o"
  "CMakeFiles/aspect_core.dir/registry.cc.o.d"
  "CMakeFiles/aspect_core.dir/target_generator.cc.o"
  "CMakeFiles/aspect_core.dir/target_generator.cc.o.d"
  "CMakeFiles/aspect_core.dir/targets_io.cc.o"
  "CMakeFiles/aspect_core.dir/targets_io.cc.o.d"
  "CMakeFiles/aspect_core.dir/tweak_context.cc.o"
  "CMakeFiles/aspect_core.dir/tweak_context.cc.o.d"
  "libaspect_core.a"
  "libaspect_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspect_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
