# Empty dependencies file for aspect_common.
# This may be replaced when dependencies are built.
