file(REMOVE_RECURSE
  "CMakeFiles/aspect_common.dir/logging.cc.o"
  "CMakeFiles/aspect_common.dir/logging.cc.o.d"
  "CMakeFiles/aspect_common.dir/rng.cc.o"
  "CMakeFiles/aspect_common.dir/rng.cc.o.d"
  "CMakeFiles/aspect_common.dir/status.cc.o"
  "CMakeFiles/aspect_common.dir/status.cc.o.d"
  "CMakeFiles/aspect_common.dir/string_util.cc.o"
  "CMakeFiles/aspect_common.dir/string_util.cc.o.d"
  "libaspect_common.a"
  "libaspect_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspect_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
