file(REMOVE_RECURSE
  "libaspect_common.a"
)
