file(REMOVE_RECURSE
  "libaspect_workload.a"
)
