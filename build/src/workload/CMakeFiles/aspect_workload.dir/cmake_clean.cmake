file(REMOVE_RECURSE
  "CMakeFiles/aspect_workload.dir/blueprint.cc.o"
  "CMakeFiles/aspect_workload.dir/blueprint.cc.o.d"
  "CMakeFiles/aspect_workload.dir/chronological.cc.o"
  "CMakeFiles/aspect_workload.dir/chronological.cc.o.d"
  "CMakeFiles/aspect_workload.dir/generator.cc.o"
  "CMakeFiles/aspect_workload.dir/generator.cc.o.d"
  "libaspect_workload.a"
  "libaspect_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspect_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
