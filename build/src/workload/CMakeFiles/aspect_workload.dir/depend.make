# Empty dependencies file for aspect_workload.
# This may be replaced when dependencies are built.
