
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scaler/sampling_scaler.cc" "src/scaler/CMakeFiles/aspect_scaler.dir/sampling_scaler.cc.o" "gcc" "src/scaler/CMakeFiles/aspect_scaler.dir/sampling_scaler.cc.o.d"
  "/root/repo/src/scaler/size_scaler.cc" "src/scaler/CMakeFiles/aspect_scaler.dir/size_scaler.cc.o" "gcc" "src/scaler/CMakeFiles/aspect_scaler.dir/size_scaler.cc.o.d"
  "/root/repo/src/scaler/upsizer.cc" "src/scaler/CMakeFiles/aspect_scaler.dir/upsizer.cc.o" "gcc" "src/scaler/CMakeFiles/aspect_scaler.dir/upsizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aspect_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/aspect_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
