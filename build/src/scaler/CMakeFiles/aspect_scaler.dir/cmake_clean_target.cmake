file(REMOVE_RECURSE
  "libaspect_scaler.a"
)
