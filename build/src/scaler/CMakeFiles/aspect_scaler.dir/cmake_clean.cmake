file(REMOVE_RECURSE
  "CMakeFiles/aspect_scaler.dir/sampling_scaler.cc.o"
  "CMakeFiles/aspect_scaler.dir/sampling_scaler.cc.o.d"
  "CMakeFiles/aspect_scaler.dir/size_scaler.cc.o"
  "CMakeFiles/aspect_scaler.dir/size_scaler.cc.o.d"
  "CMakeFiles/aspect_scaler.dir/upsizer.cc.o"
  "CMakeFiles/aspect_scaler.dir/upsizer.cc.o.d"
  "libaspect_scaler.a"
  "libaspect_scaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspect_scaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
