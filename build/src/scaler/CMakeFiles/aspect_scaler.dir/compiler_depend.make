# Empty compiler generated dependencies file for aspect_scaler.
# This may be replaced when dependencies are built.
