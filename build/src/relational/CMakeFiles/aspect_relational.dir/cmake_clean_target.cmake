file(REMOVE_RECURSE
  "libaspect_relational.a"
)
