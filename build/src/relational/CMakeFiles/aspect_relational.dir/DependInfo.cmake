
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/column.cc" "src/relational/CMakeFiles/aspect_relational.dir/column.cc.o" "gcc" "src/relational/CMakeFiles/aspect_relational.dir/column.cc.o.d"
  "/root/repo/src/relational/csv.cc" "src/relational/CMakeFiles/aspect_relational.dir/csv.cc.o" "gcc" "src/relational/CMakeFiles/aspect_relational.dir/csv.cc.o.d"
  "/root/repo/src/relational/database.cc" "src/relational/CMakeFiles/aspect_relational.dir/database.cc.o" "gcc" "src/relational/CMakeFiles/aspect_relational.dir/database.cc.o.d"
  "/root/repo/src/relational/integrity.cc" "src/relational/CMakeFiles/aspect_relational.dir/integrity.cc.o" "gcc" "src/relational/CMakeFiles/aspect_relational.dir/integrity.cc.o.d"
  "/root/repo/src/relational/modlog.cc" "src/relational/CMakeFiles/aspect_relational.dir/modlog.cc.o" "gcc" "src/relational/CMakeFiles/aspect_relational.dir/modlog.cc.o.d"
  "/root/repo/src/relational/refcount.cc" "src/relational/CMakeFiles/aspect_relational.dir/refcount.cc.o" "gcc" "src/relational/CMakeFiles/aspect_relational.dir/refcount.cc.o.d"
  "/root/repo/src/relational/refgraph.cc" "src/relational/CMakeFiles/aspect_relational.dir/refgraph.cc.o" "gcc" "src/relational/CMakeFiles/aspect_relational.dir/refgraph.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/relational/CMakeFiles/aspect_relational.dir/schema.cc.o" "gcc" "src/relational/CMakeFiles/aspect_relational.dir/schema.cc.o.d"
  "/root/repo/src/relational/schema_text.cc" "src/relational/CMakeFiles/aspect_relational.dir/schema_text.cc.o" "gcc" "src/relational/CMakeFiles/aspect_relational.dir/schema_text.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/relational/CMakeFiles/aspect_relational.dir/table.cc.o" "gcc" "src/relational/CMakeFiles/aspect_relational.dir/table.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/relational/CMakeFiles/aspect_relational.dir/value.cc.o" "gcc" "src/relational/CMakeFiles/aspect_relational.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aspect_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
