# Empty compiler generated dependencies file for aspect_relational.
# This may be replaced when dependencies are built.
