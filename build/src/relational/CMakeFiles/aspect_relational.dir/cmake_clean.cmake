file(REMOVE_RECURSE
  "CMakeFiles/aspect_relational.dir/column.cc.o"
  "CMakeFiles/aspect_relational.dir/column.cc.o.d"
  "CMakeFiles/aspect_relational.dir/csv.cc.o"
  "CMakeFiles/aspect_relational.dir/csv.cc.o.d"
  "CMakeFiles/aspect_relational.dir/database.cc.o"
  "CMakeFiles/aspect_relational.dir/database.cc.o.d"
  "CMakeFiles/aspect_relational.dir/integrity.cc.o"
  "CMakeFiles/aspect_relational.dir/integrity.cc.o.d"
  "CMakeFiles/aspect_relational.dir/modlog.cc.o"
  "CMakeFiles/aspect_relational.dir/modlog.cc.o.d"
  "CMakeFiles/aspect_relational.dir/refcount.cc.o"
  "CMakeFiles/aspect_relational.dir/refcount.cc.o.d"
  "CMakeFiles/aspect_relational.dir/refgraph.cc.o"
  "CMakeFiles/aspect_relational.dir/refgraph.cc.o.d"
  "CMakeFiles/aspect_relational.dir/schema.cc.o"
  "CMakeFiles/aspect_relational.dir/schema.cc.o.d"
  "CMakeFiles/aspect_relational.dir/schema_text.cc.o"
  "CMakeFiles/aspect_relational.dir/schema_text.cc.o.d"
  "CMakeFiles/aspect_relational.dir/table.cc.o"
  "CMakeFiles/aspect_relational.dir/table.cc.o.d"
  "CMakeFiles/aspect_relational.dir/value.cc.o"
  "CMakeFiles/aspect_relational.dir/value.cc.o.d"
  "libaspect_relational.a"
  "libaspect_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspect_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
