# Empty dependencies file for aspect_measure.
# This may be replaced when dependencies are built.
