file(REMOVE_RECURSE
  "libaspect_measure.a"
)
