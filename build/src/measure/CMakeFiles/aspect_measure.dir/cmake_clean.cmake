file(REMOVE_RECURSE
  "CMakeFiles/aspect_measure.dir/profile.cc.o"
  "CMakeFiles/aspect_measure.dir/profile.cc.o.d"
  "CMakeFiles/aspect_measure.dir/runner.cc.o"
  "CMakeFiles/aspect_measure.dir/runner.cc.o.d"
  "libaspect_measure.a"
  "libaspect_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspect_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
