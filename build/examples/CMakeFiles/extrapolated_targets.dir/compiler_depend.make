# Empty compiler generated dependencies file for extrapolated_targets.
# This may be replaced when dependencies are built.
