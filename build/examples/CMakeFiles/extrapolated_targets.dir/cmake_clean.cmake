file(REMOVE_RECURSE
  "CMakeFiles/extrapolated_targets.dir/extrapolated_targets.cpp.o"
  "CMakeFiles/extrapolated_targets.dir/extrapolated_targets.cpp.o.d"
  "extrapolated_targets"
  "extrapolated_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extrapolated_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
