file(REMOVE_RECURSE
  "CMakeFiles/benchmark_scaling.dir/benchmark_scaling.cpp.o"
  "CMakeFiles/benchmark_scaling.dir/benchmark_scaling.cpp.o.d"
  "benchmark_scaling"
  "benchmark_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
