# Empty dependencies file for benchmark_scaling.
# This may be replaced when dependencies are built.
