# Empty dependencies file for aspect_cli.
# This may be replaced when dependencies are built.
