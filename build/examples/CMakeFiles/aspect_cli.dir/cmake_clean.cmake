file(REMOVE_RECURSE
  "CMakeFiles/aspect_cli.dir/aspect_cli.cpp.o"
  "CMakeFiles/aspect_cli.dir/aspect_cli.cpp.o.d"
  "aspect_cli"
  "aspect_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspect_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
