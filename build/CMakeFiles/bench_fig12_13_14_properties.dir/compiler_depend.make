# Empty compiler generated dependencies file for bench_fig12_13_14_properties.
# This may be replaced when dependencies are built.
