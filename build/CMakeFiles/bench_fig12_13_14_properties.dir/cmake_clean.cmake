file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_13_14_properties.dir/bench/bench_fig12_13_14_properties.cc.o"
  "CMakeFiles/bench_fig12_13_14_properties.dir/bench/bench_fig12_13_14_properties.cc.o.d"
  "bench/bench_fig12_13_14_properties"
  "bench/bench_fig12_13_14_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_14_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
