# Empty dependencies file for bench_fig25_26_27_properties_douban.
# This may be replaced when dependencies are built.
