# Empty dependencies file for bench_ablation_scalers.
# This may be replaced when dependencies are built.
