
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_scalers.cc" "CMakeFiles/bench_ablation_scalers.dir/bench/bench_ablation_scalers.cc.o" "gcc" "CMakeFiles/bench_ablation_scalers.dir/bench/bench_ablation_scalers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/aspect_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/properties/CMakeFiles/aspect_properties.dir/DependInfo.cmake"
  "/root/repo/build/src/aspect/CMakeFiles/aspect_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/aspect_query.dir/DependInfo.cmake"
  "/root/repo/build/src/scaler/CMakeFiles/aspect_scaler.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/aspect_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/aspect_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/aspect_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aspect_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
