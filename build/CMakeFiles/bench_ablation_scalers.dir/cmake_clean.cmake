file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scalers.dir/bench/bench_ablation_scalers.cc.o"
  "CMakeFiles/bench_ablation_scalers.dir/bench/bench_ablation_scalers.cc.o.d"
  "bench/bench_ablation_scalers"
  "bench/bench_ablation_scalers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scalers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
