# Empty dependencies file for bench_fig17_time.
# This may be replaced when dependencies are built.
