file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_queries.dir/bench/bench_fig15_queries.cc.o"
  "CMakeFiles/bench_fig15_queries.dir/bench/bench_fig15_queries.cc.o.d"
  "bench/bench_fig15_queries"
  "bench/bench_fig15_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
