file(REMOVE_RECURSE
  "CMakeFiles/bench_fig35_time_douban.dir/bench/bench_fig35_time_douban.cc.o"
  "CMakeFiles/bench_fig35_time_douban.dir/bench/bench_fig35_time_douban.cc.o.d"
  "bench/bench_fig35_time_douban"
  "bench/bench_fig35_time_douban.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig35_time_douban.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
