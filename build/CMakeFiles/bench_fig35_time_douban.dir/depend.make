# Empty dependencies file for bench_fig35_time_douban.
# This may be replaced when dependencies are built.
