# Empty dependencies file for bench_fig32_33_34_iteration_tables.
# This may be replaced when dependencies are built.
