# Empty compiler generated dependencies file for bench_fig31_query_iterations.
# This may be replaced when dependencies are built.
