file(REMOVE_RECURSE
  "CMakeFiles/bench_fig31_query_iterations.dir/bench/bench_fig31_query_iterations.cc.o"
  "CMakeFiles/bench_fig31_query_iterations.dir/bench/bench_fig31_query_iterations.cc.o.d"
  "bench/bench_fig31_query_iterations"
  "bench/bench_fig31_query_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig31_query_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
