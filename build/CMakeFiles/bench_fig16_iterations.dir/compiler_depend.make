# Empty compiler generated dependencies file for bench_fig16_iterations.
# This may be replaced when dependencies are built.
