file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_iterations.dir/bench/bench_fig16_iterations.cc.o"
  "CMakeFiles/bench_fig16_iterations.dir/bench/bench_fig16_iterations.cc.o.d"
  "bench/bench_fig16_iterations"
  "bench/bench_fig16_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
