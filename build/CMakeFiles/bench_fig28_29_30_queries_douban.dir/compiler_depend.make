# Empty compiler generated dependencies file for bench_fig28_29_30_queries_douban.
# This may be replaced when dependencies are built.
