file(REMOVE_RECURSE
  "CMakeFiles/bench_fig28_29_30_queries_douban.dir/bench/bench_fig28_29_30_queries_douban.cc.o"
  "CMakeFiles/bench_fig28_29_30_queries_douban.dir/bench/bench_fig28_29_30_queries_douban.cc.o.d"
  "bench/bench_fig28_29_30_queries_douban"
  "bench/bench_fig28_29_30_queries_douban.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig28_29_30_queries_douban.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
