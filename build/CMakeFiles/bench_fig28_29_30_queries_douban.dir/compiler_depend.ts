# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig28_29_30_queries_douban.
