file(REMOVE_RECURSE
  "CMakeFiles/target_modes_test.dir/target_modes_test.cc.o"
  "CMakeFiles/target_modes_test.dir/target_modes_test.cc.o.d"
  "target_modes_test"
  "target_modes_test.pdb"
  "target_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/target_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
