# Empty compiler generated dependencies file for target_modes_test.
# This may be replaced when dependencies are built.
