file(REMOVE_RECURSE
  "CMakeFiles/simple_test.dir/simple_test.cc.o"
  "CMakeFiles/simple_test.dir/simple_test.cc.o.d"
  "simple_test"
  "simple_test.pdb"
  "simple_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
