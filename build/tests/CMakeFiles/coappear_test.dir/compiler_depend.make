# Empty compiler generated dependencies file for coappear_test.
# This may be replaced when dependencies are built.
