file(REMOVE_RECURSE
  "CMakeFiles/coappear_test.dir/coappear_test.cc.o"
  "CMakeFiles/coappear_test.dir/coappear_test.cc.o.d"
  "coappear_test"
  "coappear_test.pdb"
  "coappear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coappear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
