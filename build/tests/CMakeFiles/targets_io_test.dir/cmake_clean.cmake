file(REMOVE_RECURSE
  "CMakeFiles/targets_io_test.dir/targets_io_test.cc.o"
  "CMakeFiles/targets_io_test.dir/targets_io_test.cc.o.d"
  "targets_io_test"
  "targets_io_test.pdb"
  "targets_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/targets_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
