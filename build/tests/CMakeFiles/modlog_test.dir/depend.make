# Empty dependencies file for modlog_test.
# This may be replaced when dependencies are built.
