file(REMOVE_RECURSE
  "CMakeFiles/modlog_test.dir/modlog_test.cc.o"
  "CMakeFiles/modlog_test.dir/modlog_test.cc.o.d"
  "modlog_test"
  "modlog_test.pdb"
  "modlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
