# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/scaler_test[1]_include.cmake")
include("/root/repo/build/tests/linear_test[1]_include.cmake")
include("/root/repo/build/tests/coappear_test[1]_include.cmake")
include("/root/repo/build/tests/pairwise_test[1]_include.cmake")
include("/root/repo/build/tests/simple_test[1]_include.cmake")
include("/root/repo/build/tests/coordinator_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/runner_test[1]_include.cmake")
include("/root/repo/build/tests/degree_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/target_modes_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/targets_io_test[1]_include.cmake")
include("/root/repo/build/tests/retail_test[1]_include.cmake")
include("/root/repo/build/tests/modlog_test[1]_include.cmake")
include("/root/repo/build/tests/joint_test[1]_include.cmake")
