// Statistical extrapolation (Target Generator mode (c), Sec. III-C):
// when no ground truth exists at the target size, ASPECT takes
// snapshots of the empirical dataset (chronological, or VDFS-style
// nested samples when there is no time attribute), fits each property
// statistic against dataset size, and extrapolates to the target.
//
// The example extrapolates the comments-per-review distribution of a
// book network from snapshots D1..D4 to the (unseen) size of D6, and
// compares against the real D6.
//
// Build & run:  ./build/examples/extrapolated_targets
#include <cstdio>

#include "aspect/target_generator.h"
#include "stats/sampler.h"
#include "workload/generator.h"

using namespace aspect;

namespace {

/// Property statistic: frequency distribution of comments-per-review.
FrequencyDistribution CommentsPerReview(const Database& db) {
  FrequencyDistribution dist(1);
  const Table* comments = db.FindTable("Review_Comment");
  const Table* reviews = db.FindTable("Review");
  std::map<TupleId, int64_t> per_review;
  comments->ForEachLive([&](TupleId t) {
    ++per_review[comments->column(0).GetInt(t)];
  });
  reviews->ForEachLive([&](TupleId r) {
    const auto it = per_review.find(r);
    dist.Add({it == per_review.end() ? 0 : it->second}, 1);
  });
  return dist;
}

}  // namespace

int main() {
  auto gen = GenerateDataset(DoubanBookLike(0.6), 123).ValueOrAbort();

  // Snapshots available to the Target Generator: D1..D4 only.
  std::vector<std::unique_ptr<Database>> snapshots;
  std::vector<const Database*> views;
  for (int s = 1; s <= 4; ++s) {
    snapshots.push_back(gen.Materialize(s).ValueOrAbort());
    views.push_back(snapshots.back().get());
  }

  // The unseen future the user wants to scale to.
  auto future = gen.Materialize(6).ValueOrAbort();
  const double target_size = static_cast<double>(future->TotalTuples());

  ExtrapolationOptions options;
  options.degree = 1;
  const FrequencyDistribution predicted =
      ExtrapolateDistribution(views, &CommentsPerReview, target_size,
                              options)
          .ValueOrAbort();
  const FrequencyDistribution actual = CommentsPerReview(*future);

  std::printf("comments-per-review distribution at the D6 size:\n");
  std::printf("%-12s%-12s%-12s\n", "#comments", "predicted", "actual");
  for (const auto& [k, c] : actual.counts()) {
    std::printf("%-12lld%-12lld%-12lld\n", static_cast<long long>(k[0]),
                static_cast<long long>(predicted.Count(k)),
                static_cast<long long>(c));
  }
  const double rel =
      static_cast<double>(predicted.L1Distance(actual)) /
      static_cast<double>(actual.TotalMass());
  std::printf("normalized L1 distance predicted vs actual: %.4f\n", rel);

  // The same machinery works without a time attribute: nested VDFS
  // style samples of one snapshot serve as the pseudo-snapshots.
  auto sampled =
      NestedSamples(*snapshots.back(), {0.3, 0.5, 0.7, 0.9}, 5)
          .ValueOrAbort();
  std::vector<const Database*> sample_views;
  for (const auto& s : sampled) sample_views.push_back(s.get());
  const FrequencyDistribution from_samples =
      ExtrapolateDistribution(sample_views, &CommentsPerReview,
                              target_size, options)
          .ValueOrAbort();
  std::printf("via nested samples instead of snapshots: L1 = %.4f\n",
              static_cast<double>(from_samples.L1Distance(actual)) /
                  static_cast<double>(actual.TotalMass()));
  return 0;
}
