// aspect_cli: the end-to-end command line for dataset scaling.
//
//   aspect_cli --schema schema.txt --data in_dir --out out_dir
//              --scale 2.5  [--scaler Dscaler|ReX|Rand|Sampling]
//              [--tools coappear,linear,pairwise] [--iterations 2]
//              [--seed 7] [--truth truth_dir]
//              [--save-targets file] [--load-targets file] [--profile]
//              [--report] [--compare-orders] [--threads N]
//              [--gen-threads N] [--rollback off|clone|undo]
//              [--parallel-pass on|off] [--parallel-mode shared|clone]
//              [--batch N|auto] [--check-scopes off|warn|strict|sampled]
//              [--route-votes off|on|audit]
//
// Besides the registry names, --tools accepts direct column-tool
// specs with an optional row-interval restriction:
//
//   column-freq:TABLE.COLUMN[@LO-HI]
//   null-count:TABLE.COLUMN[@LO-HI]
//   domain-bounds:TABLE.COLUMN[@LO-HI]
//
// A @LO-HI suffix restricts the tool to tuple ids [LO, HI] and makes
// its declared scope row-ranged, so two specs splitting one column
// into disjoint intervals can tweak in the same parallel group.
//
// Reads one CSV per table from --data, scales every table by --scale
// (rounded, at least 1), enforces the chosen properties and writes the
// result to --out. Targets come from --truth when given, otherwise
// from the input dataset itself (repaired onto the feasible set for
// the scaled sizes).
//
// Demo mode: run without arguments to see the whole flow on a bundled
// synthetic dataset.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "analysis/scope_checker.h"
#include "aspect/coordinator.h"
#include "aspect/registry.h"
#include "properties/simple.h"
#include "aspect/targets_io.h"
#include "measure/profile.h"
#include "relational/modlog.h"
#include "common/string_util.h"
#include "relational/csv.h"
#include "relational/integrity.h"
#include "relational/schema_text.h"
#include "scaler/sampling_scaler.h"
#include "scaler/upsizer.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

using namespace aspect;

namespace {

struct Args {
  std::string schema, data, out, truth;
  std::string save_targets, load_targets;
  bool profile = false;
  bool report = false;
  bool compare_orders = false;
  std::string scaler = "Dscaler";
  std::string tools = "coappear,linear,pairwise";
  std::string rollback = "off";
  double scale = 2.0;
  int iterations = 1;
  int threads = 0;
  // Stage-1 workers: size scaling + integrity checks (DESIGN.md §12).
  // 0 = one per hardware thread, 1 = inline; output is identical at
  // every setting.
  int gen_threads = 1;
  bool parallel_pass = false;
  ParallelMode parallel_mode = ParallelMode::kShared;
  int batch = 1;
  bool batch_auto = false;
  uint64_t seed = 1;
  analysis::ScopeCheckMode check_scopes = analysis::ScopeCheckMode::kOff;
  RouteVotes route_votes = RouteVotes::kOff;
};

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    // Accept both "--flag value" and "--flag=value".
    std::string flag = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (const size_t eq = flag.find('='); eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      has_inline = true;
    }
    auto next = [&]() -> Result<std::string> {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) {
        return Status::Invalid(flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (flag == "--schema") {
      ASPECT_ASSIGN_OR_RETURN(args.schema, next());
    } else if (flag == "--data") {
      ASPECT_ASSIGN_OR_RETURN(args.data, next());
    } else if (flag == "--out") {
      ASPECT_ASSIGN_OR_RETURN(args.out, next());
    } else if (flag == "--truth") {
      ASPECT_ASSIGN_OR_RETURN(args.truth, next());
    } else if (flag == "--save-targets") {
      ASPECT_ASSIGN_OR_RETURN(args.save_targets, next());
    } else if (flag == "--load-targets") {
      ASPECT_ASSIGN_OR_RETURN(args.load_targets, next());
    } else if (flag == "--profile") {
      args.profile = true;
    } else if (flag == "--report") {
      args.report = true;
    } else if (flag == "--compare-orders") {
      args.compare_orders = true;
    } else if (flag == "--list-tools") {
      RegisterBuiltinTools();
      for (const std::string& name : ToolRegistry::Global().Names()) {
        std::printf("%s\n", name.c_str());
      }
      std::exit(0);
    } else if (flag == "--scaler") {
      ASPECT_ASSIGN_OR_RETURN(args.scaler, next());
    } else if (flag == "--tools") {
      ASPECT_ASSIGN_OR_RETURN(args.tools, next());
    } else if (flag == "--scale") {
      ASPECT_ASSIGN_OR_RETURN(const std::string v, next());
      args.scale = std::strtod(v.c_str(), nullptr);
    } else if (flag == "--iterations") {
      ASPECT_ASSIGN_OR_RETURN(const std::string v, next());
      args.iterations = std::atoi(v.c_str());
      if (args.iterations < 1) {
        return Status::Invalid("--iterations must be >= 1");
      }
    } else if (flag == "--threads") {
      ASPECT_ASSIGN_OR_RETURN(const std::string v, next());
      args.threads = std::atoi(v.c_str());
      if (args.threads < 0) {
        return Status::Invalid(
            "--threads must be >= 0 (0 = hardware concurrency)");
      }
    } else if (flag == "--gen-threads") {
      ASPECT_ASSIGN_OR_RETURN(const std::string v, next());
      args.gen_threads = std::atoi(v.c_str());
      if (args.gen_threads < 0) {
        return Status::Invalid("--gen-threads must be >= 0");
      }
    } else if (flag == "--parallel-pass") {
      ASPECT_ASSIGN_OR_RETURN(const std::string v, next());
      if (v != "on" && v != "off") {
        return Status::Invalid("--parallel-pass must be on or off");
      }
      args.parallel_pass = v == "on";
    } else if (flag == "--parallel-mode") {
      ASPECT_ASSIGN_OR_RETURN(const std::string v, next());
      if (v == "shared") {
        args.parallel_mode = ParallelMode::kShared;
      } else if (v == "clone") {
        args.parallel_mode = ParallelMode::kClone;
      } else {
        return Status::Invalid("--parallel-mode must be shared or clone");
      }
    } else if (flag == "--batch") {
      ASPECT_ASSIGN_OR_RETURN(const std::string v, next());
      if (v == "auto") {
        args.batch_auto = true;
        args.batch = 1;
      } else {
        args.batch = std::atoi(v.c_str());
        if (args.batch < 1) {
          return Status::Invalid("--batch must be at least 1, or auto");
        }
      }
    } else if (flag == "--check-scopes") {
      ASPECT_ASSIGN_OR_RETURN(const std::string v, next());
      if (!analysis::ParseScopeCheckMode(v, &args.check_scopes)) {
        return Status::Invalid(
            "--check-scopes must be off, warn, strict or sampled");
      }
    } else if (flag == "--route-votes") {
      ASPECT_ASSIGN_OR_RETURN(const std::string v, next());
      if (v == "off") {
        args.route_votes = RouteVotes::kOff;
      } else if (v == "on") {
        args.route_votes = RouteVotes::kOn;
      } else if (v == "audit") {
        args.route_votes = RouteVotes::kAudit;
      } else {
        return Status::Invalid("--route-votes must be off, on or audit");
      }
    } else if (flag == "--rollback") {
      ASPECT_ASSIGN_OR_RETURN(args.rollback, next());
      if (args.rollback != "off" && args.rollback != "clone" &&
          args.rollback != "undo") {
        return Status::Invalid("--rollback must be off, clone or undo");
      }
    } else if (flag == "--seed") {
      ASPECT_ASSIGN_OR_RETURN(const std::string v, next());
      args.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      return Status::Invalid("unknown flag " + flag);
    }
  }
  return args;
}

/// Direct column-tool specs ("column-freq:T.C[@LO-HI]" etc.): these
/// carry a table/column (and optional row interval) the registry's
/// schema-only factories cannot, so they are constructed here.
Result<std::unique_ptr<PropertyTool>> MakeColumnToolSpec(
    const std::string& spec, const Schema& schema) {
  const size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  std::string rest = spec.substr(colon + 1);
  int64_t lo = 0, hi = 0;
  bool has_range = false;
  if (const size_t at = rest.find('@'); at != std::string::npos) {
    const std::string range = rest.substr(at + 1);
    rest = rest.substr(0, at);
    const size_t dash = range.find('-');
    if (dash == std::string::npos || dash == 0 ||
        dash + 1 == range.size()) {
      return Status::Invalid("tool spec range must be @LO-HI: " + spec);
    }
    lo = std::atoll(range.substr(0, dash).c_str());
    hi = std::atoll(range.substr(dash + 1).c_str());
    if (lo < 0 || hi < lo) {
      return Status::Invalid("tool spec range must be 0 <= LO <= HI: " +
                             spec);
    }
    has_range = true;
  }
  const size_t dot = rest.find('.');
  if (dot == std::string::npos) {
    return Status::Invalid("tool spec needs TABLE.COLUMN: " + spec);
  }
  const std::string table = rest.substr(0, dot);
  const std::string column = rest.substr(dot + 1);
  if (kind == "column-freq") {
    auto tool = std::make_unique<ColumnFreqTool>(schema, table, column);
    if (has_range) tool->SetRowRange(lo, hi);
    return std::unique_ptr<PropertyTool>(std::move(tool));
  }
  if (kind == "null-count") {
    auto tool = std::make_unique<NullCountTool>(schema, table, column);
    if (has_range) tool->SetRowRange(lo, hi);
    return std::unique_ptr<PropertyTool>(std::move(tool));
  }
  if (kind == "domain-bounds") {
    auto tool = std::make_unique<DomainBoundsTool>(schema, table, column);
    if (has_range) tool->SetRowRange(lo, hi);
    return std::unique_ptr<PropertyTool>(std::move(tool));
  }
  return Status::Invalid("unknown tool spec " + spec);
}

Result<std::unique_ptr<SizeScaler>> MakeScaler(const std::string& name) {
  if (name == "Dscaler")
    return std::unique_ptr<SizeScaler>(new DscalerScaler());
  if (name == "ReX") return std::unique_ptr<SizeScaler>(new RexScaler());
  if (name == "Rand") return std::unique_ptr<SizeScaler>(new RandScaler());
  if (name == "Sampling")
    return std::unique_ptr<SizeScaler>(new SamplingScaler());
  if (name == "UpSizeR")
    return std::unique_ptr<SizeScaler>(new UpSizerScaler());
  return Status::Invalid("unknown scaler " + name);
}

Status Run(const Args& args) {
  // Demo mode: fabricate input under a temp dir.
  Args a = args;
  if (a.schema.empty()) {
    std::printf("no --schema given: running the bundled demo\n");
    const auto dir =
        std::filesystem::temp_directory_path() / "aspect_cli_demo";
    auto gen = GenerateDataset(DoubanMusicLike(0.4), 42);
    ASPECT_RETURN_NOT_OK(gen.status());
    ASPECT_ASSIGN_OR_RETURN(auto demo_db,
                            gen.ValueOrDie().Materialize(3));
    ASPECT_RETURN_NOT_OK(ExportCsv(*demo_db, (dir / "data").string()));
    std::ofstream schema_file(dir / "schema.txt");
    schema_file << FormatSchemaText(demo_db->schema());
    schema_file.close();
    a.schema = (dir / "schema.txt").string();
    a.data = (dir / "data").string();
    a.out = (dir / "out").string();
  }
  if (a.data.empty() || a.out.empty()) {
    return Status::Invalid("--data and --out are required");
  }

  ASPECT_ASSIGN_OR_RETURN(const Schema schema, LoadSchemaFile(a.schema));
  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> source,
                          ImportCsv(schema, a.data));
  IntegrityOptions verify;
  verify.threads = a.gen_threads;
  ASPECT_RETURN_NOT_OK(CheckIntegrity(*source, verify));
  std::printf("loaded %lld tuples from %s\n",
              static_cast<long long>(source->TotalTuples()),
              a.data.c_str());
  if (a.profile) {
    ASPECT_ASSIGN_OR_RETURN(const DatasetProfile profile,
                            ProfileDataset(*source));
    std::printf("%s", profile.ToString().c_str());
    return Status::OK();
  }

  std::vector<int64_t> targets;
  for (int t = 0; t < source->num_tables(); ++t) {
    targets.push_back(std::max<int64_t>(
        1, static_cast<int64_t>(
               source->table(t).NumTuples() * a.scale + 0.5)));
  }
  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<SizeScaler> scaler,
                          MakeScaler(a.scaler));
  const GenOptions gen{a.gen_threads};
  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> scaled,
                          scaler->Scale(*source, targets, a.seed, gen));
  std::printf("scaled by %.2fx with %s: %lld tuples\n", a.scale,
              a.scaler.c_str(),
              static_cast<long long>(scaled->TotalTuples()));

  RegisterBuiltinTools();
  Coordinator coordinator;
  std::vector<int> order;
  for (const std::string& tool : Split(a.tools, ',')) {
    if (tool.empty()) continue;
    if (tool.rfind("column-freq:", 0) == 0 ||
        tool.rfind("null-count:", 0) == 0 ||
        tool.rfind("domain-bounds:", 0) == 0) {
      ASPECT_ASSIGN_OR_RETURN(auto t, MakeColumnToolSpec(tool, schema));
      order.push_back(coordinator.AddTool(std::move(t)));
      continue;
    }
    ASPECT_ASSIGN_OR_RETURN(
        auto t, ToolRegistry::Global().Make(tool, schema));
    order.push_back(coordinator.AddTool(std::move(t)));
  }
  std::unique_ptr<Database> truth;
  if (!a.truth.empty()) {
    ASPECT_ASSIGN_OR_RETURN(truth, ImportCsv(schema, a.truth));
  }
  if (!a.load_targets.empty()) {
    ASPECT_RETURN_NOT_OK(LoadTargets(&coordinator, a.load_targets));
    std::printf("loaded targets from %s\n", a.load_targets.c_str());
  } else {
    ASPECT_RETURN_NOT_OK(
        coordinator.SetTargetsFromDataset(truth ? *truth : *source));
  }
  if (!a.save_targets.empty()) {
    ASPECT_RETURN_NOT_OK(SaveTargets(coordinator, a.save_targets));
    std::printf("saved targets to %s\n", a.save_targets.c_str());
  }

  CoordinatorOptions options;
  options.iterations = a.iterations;
  options.seed = a.seed;
  options.order_search_threads = a.threads;
  options.parallel_pass = a.parallel_pass;
  options.pass_threads = a.threads;
  options.parallel_mode = a.parallel_mode;
  options.batch_size = a.batch;
  options.batch_auto = a.batch_auto;
  options.rollback_on_regression = a.rollback != "off";
  options.rollback_mode =
      a.rollback == "clone" ? RollbackMode::kClone : RollbackMode::kUndoLog;
  options.check_scopes = a.check_scopes;
  options.route_votes = a.route_votes;
  if (a.compare_orders && order.size() >= 2 && order.size() <= 4) {
    // Try every permutation on a scratch copy (the Property Tweaking
    // Order Problem, answered empirically) and keep the best.
    std::vector<std::vector<int>> candidates;
    std::vector<int> perm = order;
    std::sort(perm.begin(), perm.end());
    do {
      candidates.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
    ASPECT_ASSIGN_OR_RETURN(
        const auto outcomes,
        coordinator.CompareOrders(*scaled, candidates, options));
    std::printf("order comparison (best first):\n");
    for (const auto& outcome : outcomes) {
      std::string label;
      for (const int id : outcome.order) {
        if (!label.empty()) label += "-";
        label += coordinator.tool(id)->name();
      }
      std::printf("  %-40s total error %.6f\n", label.c_str(),
                  outcome.total_error);
    }
    order = outcomes.front().order;
  }
  std::unique_ptr<ModificationLog> log;
  if (a.report) log = std::make_unique<ModificationLog>(scaled.get());
  ASPECT_ASSIGN_OR_RETURN(const RunReport report,
                          coordinator.Run(scaled.get(), order, options));
  std::printf("%s\n", report.ToString().c_str());
  if (a.check_scopes != analysis::ScopeCheckMode::kOff) {
    if (report.scope_violations.empty()) {
      std::printf("scope check: all tools conformant\n");
    } else {
      std::printf("scope check: %zu violation(s)\n",
                  report.scope_violations.size());
      for (const analysis::ScopeViolation& v : report.scope_violations) {
        std::printf("  %s\n", v.ToString().c_str());
      }
    }
  }
  if (log != nullptr) {
    std::printf("tweaking footprint: %s", log->ToString().c_str());
  }
  ASPECT_RETURN_NOT_OK(CheckIntegrity(*scaled, verify));

  ASPECT_RETURN_NOT_OK(ExportCsv(*scaled, a.out));
  std::printf("wrote %s\n", a.out.c_str());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  const Status st = Run(args.ValueOrDie());
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
