// Quickstart: the full ASPECT pipeline in one file.
//
//   1. Load (here: generate) an empirical dataset D.
//   2. Scale it to the desired size with an off-the-shelf size-scaler.
//   3. Pick tweaking tools from the repository and let the coordinator
//      enforce their properties on the scaled dataset.
//   4. Inspect the errors and export the result as CSV.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <filesystem>

#include "aspect/coordinator.h"
#include "aspect/registry.h"
#include "relational/csv.h"
#include "relational/integrity.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

using namespace aspect;

int main() {
  // --- 1. The empirical dataset -------------------------------------
  // Any FK-consistent relational dataset works; ImportCsv() loads your
  // own. Here we grow a small music social network and pretend its
  // latest snapshot is the empirical D.
  auto gen = GenerateDataset(DoubanMusicLike(0.5), /*seed=*/42)
                 .ValueOrAbort();
  auto empirical = gen.Materialize(3).ValueOrAbort();
  std::printf("empirical D: %lld tuples in %d tables\n",
              static_cast<long long>(empirical->TotalTuples()),
              empirical->num_tables());

  // --- 2. Size scaling ----------------------------------------------
  // Scale every table up ~2.4x (non-uniformly, per-table targets).
  const std::vector<int64_t> targets = gen.SnapshotSizes(5);
  DscalerScaler scaler;
  auto scaled = scaler.Scale(*empirical, targets, /*seed=*/7)
                    .ValueOrAbort();
  CheckIntegrity(*scaled).Check();
  std::printf("scaled D~0: %lld tuples (size contract met, properties "
              "not yet)\n",
              static_cast<long long>(scaled->TotalTuples()));

  // --- 3. Property enforcement ---------------------------------------
  // Pick tools from the repository. Targets come from the ground-truth
  // snapshot here; in production you would extrapolate them
  // (aspect/target_generator.h) or specify them by hand.
  RegisterBuiltinTools();
  auto truth = gen.Materialize(5).ValueOrAbort();
  Coordinator coordinator;
  for (const char* name : {"coappear", "linear", "pairwise"}) {
    coordinator.AddTool(ToolRegistry::Global()
                            .Make(name, empirical->schema())
                            .ValueOrAbort());
  }
  coordinator.SetTargetsFromDataset(*truth).Check();

  CoordinatorOptions options;
  options.iterations = 2;  // a second pass mops up residual error
  options.seed = 1;
  const RunReport report =
      coordinator.Run(scaled.get(), {0, 1, 2}, options).ValueOrAbort();
  std::printf("%s\n", report.ToString().c_str());
  CheckIntegrity(*scaled).Check();

  // --- 4. Export ------------------------------------------------------
  const std::string out =
      (std::filesystem::temp_directory_path() / "aspect_quickstart")
          .string();
  ExportCsv(*scaled, out).Check();
  std::printf("scaled + tweaked dataset exported to %s\n", out.c_str());
  return 0;
}
