// Custom tool: how a developer contributes a new tweaking tool to the
// ASPECT repository (the collaborative model of Sec. I-B / III-C).
//
// The example implements GenderRatioTool from scratch: it enforces a
// target fraction of male users - the user-input Target Generator mode
// from the paper ("the user may want to specify the fraction of males
// in D~"). All five components are spelled out:
//
//   Target Generator     : SetTargetFraction / SetTargetFromDataset
//   Property Evaluator   : Error()
//   Tweaking Algorithm   : Tweak()
//   Property Validator   : ValidationPenalty()
//   Statistics Updater   : OnApplied()
//
// The tool is then registered and composed with the built-in pairwise
// tool; the coordinator routes every proposal through both validators.
//
// Build & run:  ./build/examples/custom_tool
#include <cmath>
#include <cstdio>

#include "aspect/coordinator.h"
#include "aspect/registry.h"
#include "aspect/tweak_context.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

using namespace aspect;

namespace {

class GenderRatioTool : public PropertyTool {
 public:
  explicit GenderRatioTool(const Schema& schema) {
    user_table_ = schema.user_table;
  }

  std::string name() const override { return "gender-ratio"; }

  // ---- Target Generator ----
  void SetTargetFraction(double males) { target_fraction_ = males; }
  Status SetTargetFromDataset(const Database& truth) override {
    const Table* users = truth.FindTable(user_table_);
    if (users == nullptr) return Status::KeyError("no user table");
    const int col = users->ColumnIndex("gender");
    int64_t males = 0;
    users->ForEachLive([&](TupleId t) {
      males += users->column(col).GetInt(t) == 0;
    });
    target_fraction_ = static_cast<double>(males) /
                       static_cast<double>(users->NumTuples());
    return Status::OK();
  }
  Status RepairTarget() override { return Status::OK(); }
  Status CheckTargetFeasible() const override {
    return target_fraction_ >= 0 && target_fraction_ <= 1
               ? Status::OK()
               : Status::Infeasible("fraction outside [0,1]");
  }

  // ---- Binding + Statistics Updater ----
  Status Bind(Database* db) override {
    db_ = db;
    const Table* users = db_->FindTable(user_table_);
    gender_col_ = users->ColumnIndex("gender");
    males_ = 0;
    users->ForEachLive([&](TupleId t) {
      males_ += users->column(gender_col_).GetInt(t) == 0;
    });
    db_->AddListener(this);
    return Status::OK();
  }
  void Unbind() override {
    if (db_ != nullptr) db_->RemoveListener(this);
    db_ = nullptr;
  }
  bool bound() const override { return db_ != nullptr; }

  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override {
    (void)new_tuple;
    if (mod.table != user_table_ ||
        mod.kind != OpKind::kReplaceValues) {
      return;
    }
    for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
      if (mod.cols[cj] != gender_col_) continue;
      for (size_t tj = 0; tj < mod.tuples.size(); ++tj) {
        males_ -= old_values[tj * mod.cols.size() + cj].int64() == 0;
        males_ += mod.values[cj].int64() == 0;
      }
    }
  }

  // ---- Property Evaluator ----
  double Error() const override {
    const double n = static_cast<double>(
        db_->FindTable(user_table_)->NumTuples());
    return std::fabs(static_cast<double>(males_) / n - target_fraction_);
  }

  // ---- Property Validator ----
  double ValidationPenalty(const Modification& mod) const override {
    if (mod.table != user_table_ ||
        mod.kind != OpKind::kReplaceValues) {
      return 0.0;
    }
    int64_t delta = 0;
    const Table* users = db_->FindTable(user_table_);
    for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
      if (mod.cols[cj] != gender_col_) continue;
      for (const TupleId t : mod.tuples) {
        delta -= users->column(gender_col_).GetInt(t) == 0;
        delta += mod.values[cj].int64() == 0;
      }
    }
    if (delta == 0) return 0.0;
    const double n = static_cast<double>(users->NumTuples());
    const double now = std::fabs(static_cast<double>(males_) / n -
                                 target_fraction_);
    const double then = std::fabs(
        static_cast<double>(males_ + delta) / n - target_fraction_);
    return then - now;
  }

  // ---- Tweaking Algorithm ----
  Status Tweak(TweakContext* ctx) override {
    Table* users = db_->FindTable(user_table_);
    const int64_t n = users->NumTuples();
    int64_t want = static_cast<int64_t>(
        std::llround(target_fraction_ * static_cast<double>(n)));
    while (males_ != want) {
      const int64_t from = males_ < want ? 1 : 0;
      const TupleId t = ctx->rng()->UniformInt(0, users->NumSlots() - 1);
      if (!users->IsLive(t) ||
          users->column(gender_col_).GetInt(t) != from) {
        continue;
      }
      // Propose through the context so other tools can vote.
      Status st = ctx->TryApply(Modification::ReplaceValues(
          user_table_, {t}, {gender_col_}, {Value(1 - from)}));
      if (st.IsValidationFailed()) continue;  // pick another user
      ASPECT_RETURN_NOT_OK(st);
    }
    return Status::OK();
  }

 private:
  std::string user_table_;
  Database* db_ = nullptr;
  int gender_col_ = -1;
  int64_t males_ = 0;
  double target_fraction_ = 0.5;
};

}  // namespace

int main() {
  auto gen = GenerateDataset(DoubanMusicLike(0.5), 11).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler scaler;
  auto scaled = scaler
                    .Scale(*gen.Materialize(2).ValueOrAbort(),
                           gen.SnapshotSizes(4), 3)
                    .ValueOrAbort();

  // Contribute the new tool to the repository, like any developer
  // would, then compose it with a built-in tool by name.
  RegisterBuiltinTools();
  ToolRegistry::Global().Register("gender-ratio", [](const Schema& s) {
    auto tool = std::make_unique<GenderRatioTool>(s);
    tool->SetTargetFraction(0.70);  // user-input target: 70% male
    return tool;
  });

  Coordinator coordinator;
  coordinator.AddTool(ToolRegistry::Global()
                          .Make("gender-ratio", truth->schema())
                          .ValueOrAbort());
  coordinator.AddTool(ToolRegistry::Global()
                          .Make("pairwise", truth->schema())
                          .ValueOrAbort());
  coordinator.tool(1)->SetTargetFromDataset(*truth).Check();

  CoordinatorOptions options;
  options.seed = 5;
  const RunReport report =
      coordinator.Run(scaled.get(), {0, 1}, options).ValueOrAbort();
  std::printf("%s\n", report.ToString().c_str());
  std::printf("gender-ratio error after run: %.6f (target fraction "
              "0.70 enforced)\n",
              report.final_errors[0]);
  return 0;
}
