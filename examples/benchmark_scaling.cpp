// Application-specific benchmarking (the paper's motivating scenario):
// a start-up scales its small dataset UP 3x to stress-test a system,
// and an enterprise scales a large dataset DOWN to answer aggregate
// queries quickly. Both need the scaled data to keep answering their
// application's queries like the original - that's what the property
// tools enforce.
//
// Build & run:  ./build/examples/benchmark_scaling
#include <cstdio>

#include "aspect/coordinator.h"
#include "aspect/registry.h"
#include "query/queries.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

using namespace aspect;

namespace {

void Report(const char* title, const Database& truth,
            const Database& scaled) {
  std::printf("%s\n", title);
  const auto suite = QuerySuiteFor(truth.schema()).ValueOrAbort();
  for (const NamedQuery& q : suite) {
    const double qt = q.eval(truth).ValueOrAbort();
    const double qs = q.eval(scaled).ValueOrAbort();
    std::printf("  %s (%s): truth %.2f, scaled %.2f, rel.err %.4f\n",
                q.name.c_str(), q.description.c_str(), qt, qs,
                QueryError(q, truth, scaled).ValueOrAbort());
  }
}

std::unique_ptr<Database> ScaleAndTweak(const Database& source,
                                        const Database& truth,
                                        const std::vector<int64_t>& sizes) {
  DscalerScaler scaler;
  auto scaled = scaler.Scale(source, sizes, 9).ValueOrAbort();
  RegisterBuiltinTools();
  Coordinator coordinator;
  for (const char* name : {"coappear", "linear", "pairwise"}) {
    coordinator.AddTool(ToolRegistry::Global()
                            .Make(name, source.schema())
                            .ValueOrAbort());
  }
  coordinator.SetTargetsFromDataset(truth).Check();
  CoordinatorOptions options;
  options.iterations = 2;
  options.seed = 2;
  coordinator.Run(scaled.get(), {0, 1, 2}, options).ValueOrAbort();
  return scaled;
}

}  // namespace

int main() {
  auto gen = GenerateDataset(DoubanBookLike(0.5), 77).ValueOrAbort();

  // Scale UP: D2 -> size of D5 (the start-up stress test). D5 is the
  // ground truth the scaled dataset should behave like.
  {
    auto source = gen.Materialize(2).ValueOrAbort();
    auto truth = gen.Materialize(5).ValueOrAbort();
    auto scaled = ScaleAndTweak(*source, *truth, gen.SnapshotSizes(5));
    std::printf("scale-up: %lld -> %lld tuples\n",
                static_cast<long long>(source->TotalTuples()),
                static_cast<long long>(scaled->TotalTuples()));
    Report("queries after scale-up + tweaking:", *truth, *scaled);
  }

  // Scale DOWN: D5 -> size of D2 (the enterprise sample). D2 is the
  // ground truth for what a small version should look like.
  {
    auto source = gen.Materialize(5).ValueOrAbort();
    auto truth = gen.Materialize(2).ValueOrAbort();
    auto scaled = ScaleAndTweak(*source, *truth, gen.SnapshotSizes(2));
    std::printf("scale-down: %lld -> %lld tuples\n",
                static_cast<long long>(source->TotalTuples()),
                static_cast<long long>(scaled->TotalTuples()));
    Report("queries after scale-down + tweaking:", *truth, *scaled);
  }
  return 0;
}
