// Ablation: validator voting on vs off (Sec. III-C). DESIGN.md calls
// this design choice out: voting lets already-enforced properties veto
// damaging proposals at the cost of retries. The bench compares final
// errors and tweaking time for each permutation with and without
// validation on Rand-Xiami.
#include "bench_util.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("ablation_validation");
  Banner("Ablation: validator voting on/off (Rand-XiamiLike, D4)");
  Header({"order", "L(on)", "L(off)", "C(on)", "C(off)", "P(on)",
          "P(off)", "s(on)", "s(off)"});
  for (const std::string& label : SixPermutations()) {
    ExperimentConfig c;
    c.blueprint = XiamiLike(0.4);
    c.seed = kSeed;
    c.source_snapshot = 1;
    c.target_snapshot = 4;
    c.scaler = "Rand";
    c.order = OrderFromLabel(label).ValueOrAbort();
    c.validate = true;
    const ExperimentResult on = RunExperiment(c).ValueOrAbort();
    c.validate = false;
    const ExperimentResult off = RunExperiment(c).ValueOrAbort();
    Cell(label);
    Cell(on.after.linear);
    Cell(off.after.linear);
    Cell(on.after.coappear);
    Cell(off.after.coappear);
    Cell(on.after.pairwise);
    Cell(off.after.pairwise);
    Cell(on.tweak_seconds);
    Cell(off.tweak_seconds);
    EndRow();
  }
  return 0;
}
