// Shared helpers for the figure-reproduction benches: fixed-width
// table printing and the common experiment grid drivers.
//
// Every bench prints the same rows/series as the corresponding figure
// or table in the paper; EXPERIMENTS.md records the comparison.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "measure/runner.h"

namespace aspect {
namespace bench {

/// The seed used by every figure bench (fully deterministic output).
inline constexpr uint64_t kSeed = 20190401;

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Header(const std::vector<std::string>& cols) {
  for (const std::string& c : cols) std::printf("%-10s", c.c_str());
  std::printf("\n");
}

inline void Cell(const std::string& s) { std::printf("%-10s", s.c_str()); }

inline void Cell(double v) {
  if (v == 0) {
    std::printf("%-10s", "0");
  } else if (v < 0.001) {
    std::printf("%-10.1e", v);
  } else if (v >= 1000) {
    std::printf("%-10.0f", v);
  } else {
    std::printf("%-10.4f", v);
  }
}

inline void EndRow() { std::printf("\n"); }

/// Pulls the named property error out of an experiment result.
inline double PropertyOf(const PropertyErrors& e, const std::string& name) {
  if (name == "linear") return e.linear;
  if (name == "coappear") return e.coappear;
  return e.pairwise;
}

}  // namespace bench
}  // namespace aspect
