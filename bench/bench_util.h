// Shared helpers for the figure-reproduction benches: fixed-width
// table printing and the common experiment grid drivers.
//
// Every bench prints the same rows/series as the corresponding figure
// or table in the paper; EXPERIMENTS.md records the comparison.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "measure/runner.h"

namespace aspect {
namespace bench {

/// The seed used by every figure bench (fully deterministic output).
inline constexpr uint64_t kSeed = 20190401;

class BenchReport;

/// The report the free helpers (Banner) feed phases into.
inline BenchReport*& ActiveBenchReport() {
  static BenchReport* active = nullptr;
  return active;
}

/// Machine-readable run record. Construct one at the top of main and
/// every Banner() becomes a timed phase; the destructor writes
/// BENCH_<name>.json (name, wall-clock ms, tuples/s, hardware thread
/// count, serial-equivalence verdict, per-phase breakdown, free-form
/// metrics and notes) into the working directory so CI and regression
/// scripts can diff runs without scraping the tables.
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)), start_(Clock::now()) {
    ActiveBenchReport() = this;
  }
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() {
    if (ActiveBenchReport() == this) ActiveBenchReport() = nullptr;
    Write();
  }

  /// Starts a new timed phase, ending the previous one.
  void Phase(const std::string& title) {
    ClosePhase();
    current_ = title;
    in_phase_ = true;
    phase_start_ = Clock::now();
  }

  /// Tuples processed by the bench; reported as tuples/s over the
  /// whole wall clock.
  void AddTuples(int64_t n) { tuples_ += n; }

  /// Free-form scalar (speedups, errors, thread counts, ...).
  void Metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Free-form string annotation; emitted under a "notes" object (only
  /// present when at least one note was added). Use for machine-state
  /// caveats a scalar can't carry, e.g. why a comparison was skipped.
  void Note(const std::string& key, const std::string& text) {
    notes_.emplace_back(key, text);
  }

  /// Records whether every parallel configuration in this bench ended
  /// bit-identical (or error-identical) to its serial equivalent.
  /// Benches that assert the identity call this after the checks pass;
  /// the JSON then carries "serial_equivalent": true/false so CI can
  /// gate on it without scraping stdout.
  void SerialEquivalent(bool ok) {
    serial_equivalent_ = ok;
    has_serial_equivalent_ = true;
  }

  /// JSON string escaping for the report writer. Besides quotes and
  /// backslashes this must escape every control character below 0x20
  /// (JSON forbids them raw inside strings): the common ones get their
  /// two-character forms, the rest the \u00XX form.
  static std::string Escaped(const std::string& s) {
    static const char* kHex = "0123456789abcdef";
    std::string out;
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        case '\r':
          out += "\\r";
          break;
        case '\b':
          out += "\\b";
          break;
        case '\f':
          out += "\\f";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out += "\\u00";
            out.push_back(kHex[(c >> 4) & 0xf]);
            out.push_back(kHex[c & 0xf]);
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  }

 private:
  using Clock = std::chrono::steady_clock;

  static double MsBetween(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  }

  void ClosePhase() {
    if (!in_phase_) return;
    phases_.emplace_back(current_, MsBetween(phase_start_, Clock::now()));
    in_phase_ = false;
  }

  void Write() {
    ClosePhase();
    const double wall_ms = MsBetween(start_, Clock::now());
    const std::string path = "BENCH_" + name_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"name\": \"%s\",\n", Escaped(name_).c_str());
    std::fprintf(f, "  \"wall_clock_ms\": %.3f,\n", wall_ms);
    std::fprintf(f, "  \"tuples\": %lld,\n",
                 static_cast<long long>(tuples_));
    std::fprintf(f, "  \"tuples_per_s\": %.1f,\n",
                 tuples_ > 0 ? tuples_ / (wall_ms / 1000.0) : 0.0);
    // Machine context: thread-count-sensitive metrics (speedups, phase
    // seconds) only compare across runs on the same hardware width.
    std::fprintf(f, "  \"hardware_threads\": %d,\n",
                 ThreadPool::HardwareThreads());
    if (has_serial_equivalent_) {
      std::fprintf(f, "  \"serial_equivalent\": %s,\n",
                   serial_equivalent_ ? "true" : "false");
    }
    if (!notes_.empty()) {
      std::fprintf(f, "  \"notes\": {");
      for (size_t i = 0; i < notes_.size(); ++i) {
        std::fprintf(f, "%s\n    \"%s\": \"%s\"", i == 0 ? "" : ",",
                     Escaped(notes_[i].first).c_str(),
                     Escaped(notes_[i].second).c_str());
      }
      std::fprintf(f, "\n  },\n");
    }
    std::fprintf(f, "  \"phases\": [");
    for (size_t i = 0; i < phases_.size(); ++i) {
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"ms\": %.3f}",
                   i == 0 ? "" : ",", Escaped(phases_[i].first).c_str(),
                   phases_[i].second);
    }
    std::fprintf(f, "\n  ],\n  \"metrics\": {");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %.6f", i == 0 ? "" : ",",
                   Escaped(metrics_[i].first).c_str(), metrics_[i].second);
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }

  std::string name_;
  Clock::time_point start_;
  Clock::time_point phase_start_;
  std::string current_;
  bool in_phase_ = false;
  int64_t tuples_ = 0;
  bool serial_equivalent_ = false;
  bool has_serial_equivalent_ = false;
  std::vector<std::pair<std::string, double>> phases_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> notes_;
};

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (ActiveBenchReport() != nullptr) ActiveBenchReport()->Phase(title);
}

inline void Header(const std::vector<std::string>& cols) {
  for (const std::string& c : cols) std::printf("%-10s", c.c_str());
  std::printf("\n");
}

inline void Cell(const std::string& s) { std::printf("%-10s", s.c_str()); }

inline void Cell(double v) {
  if (v == 0) {
    std::printf("%-10s", "0");
  } else if (v < 0.001) {
    std::printf("%-10.1e", v);
  } else if (v >= 1000) {
    std::printf("%-10.0f", v);
  } else {
    std::printf("%-10.4f", v);
  }
}

inline void EndRow() { std::printf("\n"); }

/// Pulls the named property error out of an experiment result.
inline double PropertyOf(const PropertyErrors& e, const std::string& name) {
  if (name == "linear") return e.linear;
  if (name == "coappear") return e.coappear;
  return e.pairwise;
}

}  // namespace bench
}  // namespace aspect
