// Reproduces the error-analysis observations of Sec. IV (Figs. 7-8):
//
//  - Fig. 7: the same properties enforced by the same tools on
//    *different datasets* can end at different minimal errors.
//  - Fig. 8: the same tools on the *same dataset* can end at different
//    errors depending on the (randomized) execution.
//
// Both effects are why the paper poses the Property Tweaking Bound
// Problem instead of proving general bounds. The bench quantifies them
// on Rand-scaled DoubanMusic data with the C-P-L order (the earlier
// tools' final errors are the execution-dependent quantity).
#include "aspect/coordinator.h"
#include "bench_util.h"
#include "properties/coappear.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("error_analysis");
  Banner("Sec. IV / Fig. 7: same tools, different datasets");
  Header({"dataset", "coappear", "pairwise", "linear"});
  for (const uint64_t data_seed : {1u, 2u, 3u, 4u}) {
    ExperimentConfig c;
    c.blueprint = DoubanMusicLike(0.3);
    c.seed = data_seed;
    c.scaler = "Rand";
    c.order = OrderFromLabel("C-P-L").ValueOrAbort();
    const ExperimentResult r = RunExperiment(c).ValueOrAbort();
    Cell("D#" + std::to_string(data_seed));
    Cell(r.after.coappear);
    Cell(r.after.pairwise);
    Cell(r.after.linear);
    EndRow();
  }

  Banner("Sec. IV / Fig. 8: same dataset, different executions");
  Header({"run", "coappear", "pairwise", "linear"});
  auto gen = GenerateDataset(DoubanMusicLike(0.3), 5).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler scaler;
  auto scaled_base = scaler
                         .Scale(*gen.Materialize(1).ValueOrAbort(),
                                gen.SnapshotSizes(4), 5)
                         .ValueOrAbort();
  for (const uint64_t tweak_seed : {11u, 12u, 13u, 14u}) {
    auto scaled = scaled_base->Clone();  // identical starting dataset
    Coordinator coordinator;
    const int li = coordinator.AddTool(
        std::make_unique<LinearPropertyTool>(truth->schema()));
    const int co = coordinator.AddTool(
        std::make_unique<CoappearPropertyTool>(truth->schema()));
    const int pa = coordinator.AddTool(
        std::make_unique<PairwisePropertyTool>(truth->schema()));
    coordinator.SetTargetsFromDataset(*truth).Check();
    CoordinatorOptions opts;
    opts.seed = tweak_seed;  // only the execution randomness differs
    const RunReport report =
        coordinator.Run(scaled.get(), {co, pa, li}, opts).ValueOrAbort();
    Cell("run" + std::to_string(tweak_seed));
    Cell(report.final_errors[static_cast<size_t>(co)]);
    Cell(report.final_errors[static_cast<size_t>(pa)]);
    Cell(report.final_errors[static_cast<size_t>(li)]);
    EndRow();
  }
  std::printf("identical datasets + identical tools still end at "
              "different errors per execution - the premise of the "
              "Property Tweaking Bound Problem (Sec. VIII-A).\n");
  return 0;
}
