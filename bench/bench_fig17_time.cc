// Reproduces Fig. 17: execution time of each tweaking permutation on
// the Xiami-like dataset, per size-scaler and snapshot.
//
// Expected shapes: time grows roughly linearly with dataset size;
// L-first orders (L-C-P, L-P-C) are the cheapest; scalers with larger
// initial error need more tweaking time.
#include "bench_util.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("fig17_time");
  const std::vector<std::string> scalers = {"Dscaler", "ReX", "Rand"};
  const std::vector<std::string> perms = SixPermutations();
  const std::vector<int> snapshots = {2, 3, 4, 5, 6};

  Banner("Figure 17: tweaking execution time in seconds (XiamiLike)");
  for (const std::string& scaler : scalers) {
    std::printf("-- %s-Xiami --\n", scaler.c_str());
    std::vector<std::string> cols = {"snapshot"};
    cols.insert(cols.end(), perms.begin(), perms.end());
    Header(cols);
    for (const int snap : snapshots) {
      Cell("D" + std::to_string(snap));
      for (const std::string& label : perms) {
        ExperimentConfig c;
        c.blueprint = XiamiLike(0.5);
        c.seed = kSeed;
        c.source_snapshot = 1;
        c.target_snapshot = snap;
        c.scaler = scaler;
        c.order = OrderFromLabel(label).ValueOrAbort();
        Cell(RunExperiment(c).ValueOrAbort().tweak_seconds);
      }
      EndRow();
    }
  }
  return 0;
}
