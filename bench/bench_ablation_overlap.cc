// Ablation: overlap detection (observations O1-O4). Runs the three
// complex tools plus two single-column tools on Rand-Xiami, prints the
// access-monitor overlap graph, its independent classes and the
// maximum independent set - the O2 machinery in action.
#include "aspect/overlap.h"
#include "bench_util.h"
#include "properties/coappear.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "properties/simple.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("ablation_overlap");
  auto gen = GenerateDataset(XiamiLike(0.4), kSeed).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler rand;
  auto scaled = rand.Scale(*gen.Materialize(2).ValueOrAbort(),
                           gen.SnapshotSizes(4), kSeed)
                    .ValueOrAbort();

  Coordinator coordinator;
  std::vector<std::string> names;
  names.push_back("linear");
  coordinator.AddTool(
      std::make_unique<LinearPropertyTool>(truth->schema()));
  names.push_back("coappear");
  coordinator.AddTool(
      std::make_unique<CoappearPropertyTool>(truth->schema()));
  names.push_back("pairwise");
  coordinator.AddTool(
      std::make_unique<PairwisePropertyTool>(truth->schema()));
  names.push_back("freq:User.gender");
  coordinator.AddTool(std::make_unique<ColumnFreqTool>(
      truth->schema(), "User", "gender"));
  names.push_back("freq:Photo.kind");
  coordinator.AddTool(
      std::make_unique<ColumnFreqTool>(truth->schema(), "Photo", "kind"));
  coordinator.SetTargetsFromDataset(*truth).Check();

  CoordinatorOptions opts;
  opts.seed = kSeed;
  coordinator.Run(scaled.get(), {0, 1, 2, 3, 4}, opts).ValueOrAbort();

  const AccessMonitor* monitor = coordinator.last_monitor();
  Banner("Ablation: tool overlap graph (O1-O4)");
  Header({"tool", "cells", "overlaps-with"});
  const auto adj = monitor->OverlapGraph();
  for (size_t i = 0; i < names.size(); ++i) {
    Cell(names[i]);
    Cell(std::to_string(monitor->CellsTouched(static_cast<int>(i))));
    std::string overlaps;
    for (size_t j = 0; j < names.size(); ++j) {
      if (adj[i][j]) overlaps += names[j] + " ";
    }
    std::printf("%s", overlaps.empty() ? "-" : overlaps.c_str());
    EndRow();
  }
  const auto mis = MaximumIndependentSet(adj);
  std::printf("maximum independent set:");
  for (const int v : mis) std::printf(" %s", names[static_cast<size_t>(v)].c_str());
  std::printf("\nindependent classes:\n");
  for (const auto& cls : IndependentClasses(adj)) {
    std::printf(" ");
    for (const int v : cls) {
      std::printf(" %s", names[static_cast<size_t>(v)].c_str());
    }
    std::printf("\n");
  }
  return 0;
}
