// Reproduces Figs. 25, 26 and 27 (Appendix X-E): linear / coappear /
// pairwise property error on the three Douban-like datasets, for all
// scalers and permutations.
//
// Expected shapes match Figs. 12-14: huge reductions everywhere, the
// later a tool runs the smaller its error; highly-overlapping groups
// (Review as both post table and coappear member) retain the largest
// residuals when their tool runs early.
#include <map>

#include "bench_util.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("fig25_26_27_properties_douban");
  struct DatasetRef {
    const char* name;
    DatasetBlueprint (*factory)(double);
  };
  const DatasetRef datasets[] = {{"DoubanMovie", &DoubanMovieLike},
                                 {"DoubanMusic", &DoubanMusicLike},
                                 {"DoubanBook", &DoubanBookLike}};
  const std::vector<std::string> scalers = {"Dscaler", "ReX", "Rand"};
  const std::vector<std::string> perms = SixPermutations();
  const std::vector<int> snapshots = {2, 4, 6};

  const std::map<std::string, std::string> figure = {
      {"linear", "Figure 25: linear property error (Douban datasets)"},
      {"coappear", "Figure 26: coappear property error (Douban datasets)"},
      {"pairwise", "Figure 27: pairwise property error (Douban datasets)"}};

  // property -> dataset -> scaler -> snapshot -> column -> error.
  std::map<std::string,
           std::map<std::string,
                    std::map<std::string,
                             std::map<int, std::map<std::string, double>>>>>
      grid;
  for (const DatasetRef& ds : datasets) {
    for (const std::string& scaler : scalers) {
      for (const int snap : snapshots) {
        ExperimentConfig base;
        base.blueprint = ds.factory(0.5);
        base.seed = kSeed;
        base.source_snapshot = 1;
        base.target_snapshot = snap;
        base.scaler = scaler;
        ExperimentConfig baseline = base;
        baseline.tweak = false;
        const ExperimentResult nb = RunExperiment(baseline).ValueOrAbort();
        for (const char* prop : {"linear", "coappear", "pairwise"}) {
          grid[prop][ds.name][scaler][snap]["No-Tweak"] =
              PropertyOf(nb.before, prop);
        }
        for (const std::string& label : perms) {
          ExperimentConfig c = base;
          c.order = OrderFromLabel(label).ValueOrAbort();
          const ExperimentResult r = RunExperiment(c).ValueOrAbort();
          for (const char* prop : {"linear", "coappear", "pairwise"}) {
            grid[prop][ds.name][scaler][snap][label] =
                PropertyOf(r.after, prop);
          }
        }
      }
    }
  }
  for (const char* prop : {"linear", "coappear", "pairwise"}) {
    Banner(figure.at(prop));
    for (const DatasetRef& ds : datasets) {
      for (const std::string& scaler : scalers) {
        std::printf("-- %s-%s --\n", scaler.c_str(), ds.name);
        std::vector<std::string> cols = {"snapshot", "No-Tweak"};
        cols.insert(cols.end(), perms.begin(), perms.end());
        Header(cols);
        for (const int snap : snapshots) {
          Cell("D" + std::to_string(snap));
          Cell(grid[prop][ds.name][scaler][snap]["No-Tweak"]);
          for (const std::string& label : perms) {
            Cell(grid[prop][ds.name][scaler][snap][label]);
          }
          EndRow();
        }
      }
    }
  }
  return 0;
}
