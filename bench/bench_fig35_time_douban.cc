// Reproduces Fig. 35 (Appendix X-G): tweaking execution time on the
// three Douban-like datasets per scaler, snapshot and permutation.
//
// Expected shapes: roughly linear growth with dataset size; the
// largest dataset (DoubanMovie) costs the most; L-first orders are the
// cheapest.
#include "bench_util.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("fig35_time_douban");
  struct DatasetRef {
    const char* name;
    DatasetBlueprint (*factory)(double);
  };
  const DatasetRef datasets[] = {{"DoubanMovie", &DoubanMovieLike},
                                 {"DoubanMusic", &DoubanMusicLike},
                                 {"DoubanBook", &DoubanBookLike}};
  const std::vector<std::string> scalers = {"Dscaler", "ReX", "Rand"};
  const std::vector<std::string> perms = SixPermutations();
  const std::vector<int> snapshots = {2, 4, 6};

  Banner("Figure 35: tweaking execution time in seconds (Douban)");
  for (const DatasetRef& ds : datasets) {
    for (const std::string& scaler : scalers) {
      std::printf("-- %s-%s --\n", scaler.c_str(), ds.name);
      std::vector<std::string> cols = {"snapshot"};
      cols.insert(cols.end(), perms.begin(), perms.end());
      Header(cols);
      for (const int snap : snapshots) {
        Cell("D" + std::to_string(snap));
        for (const std::string& label : perms) {
          ExperimentConfig c;
          c.blueprint = ds.factory(0.5);
          c.seed = kSeed;
          c.source_snapshot = 1;
          c.target_snapshot = snap;
          c.scaler = scaler;
          c.order = OrderFromLabel(label).ValueOrAbort();
          Cell(RunExperiment(c).ValueOrAbort().tweak_seconds);
        }
        EndRow();
      }
    }
  }
  return 0;
}
