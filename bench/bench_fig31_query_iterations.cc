// Reproduces Fig. 31 (Appendix X-E2): the Q1 error of L-C-P on
// Dscaler-DoubanBook across 1..4 iterations. In the paper the single
// pass can even be worse than the baseline (Q1 is linear-related and
// T_linear is modified by the later tools); from the second iteration
// the error collapses below 1e-3.
#include "bench_util.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("fig31_query_iterations");
  Banner("Figure 31: L-C-P query errors vs iterations "
         "(Dscaler-DoubanBook)");
  ExperimentConfig base;
  base.blueprint = DoubanBookLike(0.5);
  base.seed = kSeed;
  base.source_snapshot = 1;
  base.target_snapshot = 5;
  base.scaler = "Dscaler";
  base.order = OrderFromLabel("L-C-P").ValueOrAbort();
  base.run_queries = true;

  ExperimentConfig baseline = base;
  baseline.tweak = false;
  const ExperimentResult nb = RunExperiment(baseline).ValueOrAbort();

  Header({"query", "No-Tweak", "iter1", "iter2", "iter3", "iter4"});
  std::vector<ExperimentResult> per_iter;
  for (int iters = 1; iters <= 4; ++iters) {
    ExperimentConfig c = base;
    c.iterations = iters;
    per_iter.push_back(RunExperiment(c).ValueOrAbort());
  }
  for (size_t q = 0; q < nb.query_errors_before.size(); ++q) {
    Cell(nb.query_errors_before[q].first);
    Cell(nb.query_errors_before[q].second);
    for (const ExperimentResult& r : per_iter) {
      Cell(r.query_errors_after[q].second);
    }
    EndRow();
  }
  return 0;
}
