// Ablation: the rollback-on-regression safety net (an extension beyond
// the paper's O4 accepted-error policy). Compares each permutation's
// final errors and rollback overhead on Rand-Xiami across the three
// policies: off, clone (deep-copy snapshot per step, O(database)) and
// undo (revert the step's modification log, O(modifications)). Both
// restore modes reach identical errors; the rb_s columns show what the
// safety net itself costs.
#include "aspect/coordinator.h"
#include "bench_util.h"
#include "properties/coappear.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("ablation_rollback");
  auto gen = GenerateDataset(XiamiLike(0.4), kSeed).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler rand;
  auto base = rand.Scale(*gen.Materialize(1).ValueOrAbort(),
                         gen.SnapshotSizes(4), kSeed)
                  .ValueOrAbort();

  Banner("Ablation: rollback-on-regression (Rand-XiamiLike, D4)");
  Header({"order", "tot(off)", "tot(clon)", "tot(undo)", "rb_s(clon)",
          "rb_s(undo)", "undone"});
  for (const std::string& label : SixPermutations()) {
    // 0 = off, 1 = clone, 2 = undo log.
    double totals[3] = {0, 0, 0};
    double rollback_seconds[3] = {0, 0, 0};
    int64_t undone_mods = 0;
    for (const int mode : {0, 1, 2}) {
      auto scaled = base->Clone();
      Coordinator coordinator;
      coordinator.AddTool(
          std::make_unique<LinearPropertyTool>(truth->schema()));
      coordinator.AddTool(
          std::make_unique<CoappearPropertyTool>(truth->schema()));
      coordinator.AddTool(
          std::make_unique<PairwisePropertyTool>(truth->schema()));
      coordinator.SetTargetsFromDataset(*truth).Check();
      std::vector<int> order;
      for (const std::string& tool :
           OrderFromLabel(label).ValueOrAbort()) {
        order.push_back(coordinator.FindTool(tool));
      }
      CoordinatorOptions opts;
      opts.seed = kSeed;
      opts.rollback_on_regression = mode != 0;
      opts.rollback_mode =
          mode == 1 ? RollbackMode::kClone : RollbackMode::kUndoLog;
      const RunReport report =
          coordinator.Run(scaled.get(), order, opts).ValueOrAbort();
      for (const double e : report.final_errors) totals[mode] += e;
      for (const ToolReport& s : report.steps) {
        rollback_seconds[mode] += s.rollback_seconds;
        if (mode == 2 && s.rolled_back) undone_mods += s.rollback_mods;
      }
    }
    Cell(label);
    Cell(totals[0]);
    Cell(totals[1]);
    Cell(totals[2]);
    Cell(rollback_seconds[1]);
    Cell(rollback_seconds[2]);
    Cell(std::to_string(undone_mods));
    EndRow();
  }
  return 0;
}
