// Ablation: the rollback-on-regression safety net (an extension beyond
// the paper's O4 accepted-error policy). Compares each permutation's
// final errors and tweak time with and without rollback on Rand-Xiami:
// rollback guarantees no step leaves the guarded error worse, at the
// cost of one database snapshot per step.
#include "aspect/coordinator.h"
#include "bench_util.h"
#include "properties/coappear.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  auto gen = GenerateDataset(XiamiLike(0.4), kSeed).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler rand;
  auto base = rand.Scale(*gen.Materialize(1).ValueOrAbort(),
                         gen.SnapshotSizes(4), kSeed)
                  .ValueOrAbort();

  Banner("Ablation: rollback-on-regression (Rand-XiamiLike, D4)");
  Header({"order", "total(off)", "total(on)", "s(off)", "s(on)"});
  for (const std::string& label : SixPermutations()) {
    double totals[2] = {0, 0};
    double seconds[2] = {0, 0};
    for (const bool rollback : {false, true}) {
      auto scaled = base->Clone();
      Coordinator coordinator;
      coordinator.AddTool(
          std::make_unique<LinearPropertyTool>(truth->schema()));
      coordinator.AddTool(
          std::make_unique<CoappearPropertyTool>(truth->schema()));
      coordinator.AddTool(
          std::make_unique<PairwisePropertyTool>(truth->schema()));
      coordinator.SetTargetsFromDataset(*truth).Check();
      std::vector<int> order;
      for (const std::string& tool :
           OrderFromLabel(label).ValueOrAbort()) {
        order.push_back(coordinator.FindTool(tool));
      }
      CoordinatorOptions opts;
      opts.seed = kSeed;
      opts.rollback_on_regression = rollback;
      const RunReport report =
          coordinator.Run(scaled.get(), order, opts).ValueOrAbort();
      for (const double e : report.final_errors) {
        totals[rollback ? 1 : 0] += e;
      }
      for (const ToolReport& s : report.steps) {
        seconds[rollback ? 1 : 0] += s.seconds;
      }
    }
    Cell(label);
    Cell(totals[0]);
    Cell(totals[1]);
    Cell(seconds[0]);
    Cell(seconds[1]);
    EndRow();
  }
  return 0;
}
