// Reproduces Fig. 15: query errors Q1-Q4 on the Xiami-like dataset for
// Dscaler and Rand (ReX is omitted exactly as in the paper: it cannot
// scale to the ground-truth sizes, so there is no ground truth for its
// query results), across snapshots and all six permutations.
//
// Expected shape: all permutations push every query error below ~0.05.
#include <map>

#include "bench_util.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("fig15_queries");
  const std::vector<std::string> scalers = {"Dscaler", "Rand"};
  const std::vector<std::string> perms = SixPermutations();
  const std::vector<int> snapshots = {2, 3, 4, 5};

  Banner("Figure 15: query errors Q1-Q4 (XiamiLike)");
  for (const std::string& scaler : scalers) {
    // query -> snapshot -> column -> error.
    std::map<std::string, std::map<int, std::map<std::string, double>>> grid;
    for (const int snap : snapshots) {
      ExperimentConfig base;
      base.blueprint = XiamiLike(0.5);
      base.seed = kSeed;
      base.source_snapshot = 1;
      base.target_snapshot = snap;
      base.scaler = scaler;
      base.run_queries = true;

      ExperimentConfig baseline = base;
      baseline.tweak = false;
      const ExperimentResult nb = RunExperiment(baseline).ValueOrAbort();
      for (const auto& [q, err] : nb.query_errors_before) {
        grid[q][snap]["No-Tweak"] = err;
      }
      for (const std::string& label : perms) {
        ExperimentConfig c = base;
        c.order = OrderFromLabel(label).ValueOrAbort();
        const ExperimentResult r = RunExperiment(c).ValueOrAbort();
        for (const auto& [q, err] : r.query_errors_after) {
          grid[q][snap][label] = err;
        }
      }
    }
    for (const auto& [q, rows] : grid) {
      std::printf("-- %s-Xiami, %s --\n", scaler.c_str(), q.c_str());
      std::vector<std::string> cols = {"snapshot", "No-Tweak"};
      cols.insert(cols.end(), perms.begin(), perms.end());
      Header(cols);
      for (const int snap : snapshots) {
        Cell("D" + std::to_string(snap));
        Cell(rows.at(snap).at("No-Tweak"));
        for (const std::string& label : perms) {
          Cell(rows.at(snap).at(label));
        }
        EndRow();
      }
    }
  }
  return 0;
}
