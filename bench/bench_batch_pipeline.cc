// Batched modification pipeline vs the serial per-modification
// baseline: a 3-tool column-frequency enforcement pass on Rand-scaled
// Xiami-like social-network data, run with batch=1 on one thread (the
// historical path) and batched under the O1-parallel pass scheduler at
// 8 threads — in both parallel execution models: clone-and-merge and
// the zero-copy shared-database mode with write leases.
//
// The setup itself is benched too: stage 1 (generate + materialize +
// Rand-scale + integrity check) runs once serial and once with 8
// shard workers, asserts the two outputs hash identically, and
// reports stage1_serial_s / stage1_parallel_s / stage1_speedup.
//
// The three tools write disjoint (table, column) access sets, so the
// parallel pass may run them concurrently (observation O1) and the
// batched path folds up to 256 same-value replacements into a single
// broadcast modification: one validator vote, one columnar write, one
// log segment. Every configuration must end at identical per-tool
// errors; the bench aborts if any differs. The phase columns break a
// group's coordinator-side overhead down: setup (clones + rebase-to-
// clone, or lease partition + route assembly), merge (move-merge +
// replay, or modlog splice alone), rebase (hand-back + rebinds) —
// shared mode's merge and rebase are ~0 by construction.
#include <chrono>

#include "aspect/coordinator.h"
#include "bench_util.h"
#include "properties/coappear.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "properties/simple.h"
#include "relational/fingerprint.h"
#include "relational/integrity.h"
#include "relational/modlog.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

using namespace aspect;
using namespace aspect::bench;

namespace {

constexpr int kBatch = 256;
constexpr int kThreads = 8;

struct ToolRef {
  const char* table;
  const char* column;
};
constexpr ToolRef kTools[] = {
    {"User", "gender"}, {"Photo", "kind"}, {"Space", "kind"}};

struct RunOutcome {
  double seconds = 0;
  int64_t applied = 0;
  int64_t vetoed = 0;
  int64_t groups = 0;
  double setup_s = 0;
  double merge_s = 0;
  double rebase_s = 0;
  std::vector<double> errors;
};

RunOutcome RunOnce(const Database& base, const Database& truth,
                   bool parallel, ParallelMode mode, int batch,
                   int threads, bool verbose) {
  auto scaled = base.Clone();
  // Log the enforcement modifications like the CLI's --report and the
  // replay-onto-snapshot path do: the log is a per-modification
  // listener, so the serial baseline pays one entry per modification
  // while the batched pipeline delivers one segment per batch.
  ModificationLog log(scaled.get());
  Coordinator coordinator;
  std::vector<int> order;
  for (const ToolRef& t : kTools) {
    order.push_back(coordinator.AddTool(std::make_unique<ColumnFreqTool>(
        truth.schema(), t.table, t.column)));
  }
  coordinator.SetTargetsFromDataset(truth).Check();
  CoordinatorOptions opts;
  opts.seed = kSeed;
  opts.parallel_pass = parallel;
  opts.parallel_mode = mode;
  opts.pass_threads = threads;
  opts.batch_size = batch;
  const auto t0 = std::chrono::steady_clock::now();
  const RunReport report =
      coordinator.Run(scaled.get(), order, opts).ValueOrAbort();
  RunOutcome out;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.groups = report.parallel_groups;
  out.setup_s = report.group_setup_seconds;
  out.merge_s = report.group_merge_seconds;
  out.rebase_s = report.group_rebase_seconds;
  out.errors = report.final_errors;
  for (const ToolReport& step : report.steps) {
    out.applied += step.applied;
    out.vetoed += step.vetoed;
    if (verbose) {
      std::printf("  step %-16s %.4fs applied=%lld%s\n",
                  step.tool.c_str(), step.seconds,
                  static_cast<long long>(step.applied),
                  step.parallel ? " (parallel)" : "");
    }
  }
  return out;
}

/// Best of `kReps` identical runs: the coordinator is deterministic for
/// a fixed seed, so repetitions only differ by scheduling noise and the
/// minimum is the honest cost on a busy machine.
RunOutcome Best(const Database& base, const Database& truth, bool parallel,
                ParallelMode mode, int batch, int threads) {
  constexpr int kReps = 5;
  RunOutcome best;
  for (int r = 0; r < kReps; ++r) {
    RunOutcome o =
        RunOnce(base, truth, parallel, mode, batch, threads, r == 0);
    if (r == 0 || o.seconds < best.seconds) best = std::move(o);
  }
  return best;
}

/// Row-range split phase: every enforced column is handed to TWO
/// ColumnFreq tools holding disjoint tuple-id halves of the column.
/// Under interval-blind grouping the pair conflicts (same cell atom),
/// so every parallel group this phase forms exists only thanks to the
/// row-range declarations and their row-range write leases — the
/// row_range_groups metric records how many. Final errors must match
/// the serial run exactly, like every other configuration.
bool RangeSplitPhase(const Database& base, const Database& truth,
                     BenchReport* report) {
  Banner("Row-range split: 2 half-column tools per column, shared leases");
  struct SplitOutcome {
    double seconds = 0;
    int64_t groups = 0;
    int64_t rr_groups = 0;
    std::vector<double> errors;
  };
  const auto run = [&](bool parallel) {
    auto scaled = base.Clone();
    Coordinator coordinator;
    std::vector<int> order;
    for (const ToolRef& t : kTools) {
      const Table* table = scaled->FindTable(t.table);
      const int64_t mid = table->NumSlots() / 2;
      auto lo = std::make_unique<ColumnFreqTool>(truth.schema(), t.table,
                                                 t.column);
      lo->SetRowRange(0, mid - 1);
      auto hi = std::make_unique<ColumnFreqTool>(truth.schema(), t.table,
                                                 t.column);
      hi->SetRowRange(mid, table->NumSlots() - 1);
      order.push_back(coordinator.AddTool(std::move(lo)));
      order.push_back(coordinator.AddTool(std::move(hi)));
    }
    coordinator.SetTargetsFromDataset(truth).Check();
    CoordinatorOptions opts;
    opts.seed = kSeed;
    opts.parallel_pass = parallel;
    opts.parallel_mode = ParallelMode::kShared;
    opts.pass_threads = parallel ? kThreads : 1;
    opts.batch_size = kBatch;
    const auto t0 = std::chrono::steady_clock::now();
    const RunReport rep =
        coordinator.Run(scaled.get(), order, opts).ValueOrAbort();
    SplitOutcome out;
    out.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    out.groups = rep.parallel_groups;
    out.rr_groups = rep.row_range_groups;
    out.errors = rep.final_errors;
    return out;
  };

  const SplitOutcome serial = run(false);
  const SplitOutcome shared = run(true);
  Header({"config", "seconds", "groups", "rr_groups"});
  Cell("serial");
  Cell(serial.seconds);
  Cell(std::to_string(serial.groups));
  Cell(std::to_string(serial.rr_groups));
  EndRow();
  Cell("shared");
  Cell(shared.seconds);
  Cell(std::to_string(shared.groups));
  Cell(std::to_string(shared.rr_groups));
  EndRow();
  for (size_t i = 0; i < serial.errors.size(); ++i) {
    if (serial.errors[i] != shared.errors[i]) {
      std::fprintf(stderr,
                   "FAIL: range-split final error of tool %zu differs: "
                   "%.9f vs %.9f\n",
                   i, serial.errors[i], shared.errors[i]);
      return false;
    }
  }
  if (shared.rr_groups <= 0) {
    std::fprintf(stderr,
                 "FAIL: range-split run formed no row-range groups\n");
    return false;
  }
  report->Metric("row_range_groups", static_cast<double>(shared.rr_groups));
  report->Metric("range_split_serial_s", serial.seconds);
  report->Metric("range_split_shared_s", shared.seconds);
  report->Metric("range_split_speedup",
                 serial.seconds / std::max(1e-9, shared.seconds));
  if (ThreadPool::HardwareThreads() == 1) {
    const char* note =
        "hardware_threads == 1: row-range groups still form (the "
        "correctness checks above ran), but range_split_speedup measures "
        "oversubscription, not parallelism";
    std::printf("note: %s\n", note);
    report->Note("range_split_note", note);
  }
  return true;
}

/// Vote-routing phase: every enforced column is split into forty-eight
/// row-range slices, one ColumnFreq tool each, so a late step's
/// proposal batch faces up to 143 enforced validators of which at most
/// one (the same-column slice covering the touched rows — and the
/// touched rows are the proposing slice's own, so in fact none) can be
/// disturbed. Full voting pays every validator on every batch; routed
/// voting consults only scope-overlapping ones. The runs must agree on
/// every final error — routing is a pure skip of provably-zero votes —
/// and audit mode re-invokes sampled pruned votes to prove it.
bool ValidationPhase(const Database& base, const Database& truth,
                     BenchReport* report) {
  Banner("Vote routing: 48 row-range slices per column, routed vs full");
  struct VoteOutcome {
    double seconds = 0;
    double build_seconds = 0;
    int64_t votes_total = 0;
    int64_t votes_skipped = 0;
    int64_t violations = 0;
    std::vector<double> errors;
  };
  const auto run_once = [&](RouteVotes route, bool rebuild_per_step) {
    auto scaled = base.Clone();
    Coordinator coordinator;
    std::vector<int> order;
    constexpr int kSlices = 48;
    for (const ToolRef& t : kTools) {
      const Table* table = scaled->FindTable(t.table);
      const int64_t slots = table->NumSlots();
      for (int s = 0; s < kSlices; ++s) {
        const int64_t lo = slots * s / kSlices;
        const int64_t hi =
            (s == kSlices - 1 ? slots : slots * (s + 1) / kSlices) - 1;
        if (lo > hi) continue;
        auto tool = std::make_unique<ColumnFreqTool>(truth.schema(), t.table,
                                                     t.column);
        tool->SetRowRange(lo, hi);
        order.push_back(coordinator.AddTool(std::move(tool)));
      }
    }
    coordinator.SetTargetsFromDataset(truth).Check();
    CoordinatorOptions opts;
    opts.seed = kSeed;
    // Serial pass on purpose: this phase measures the cost of the vote
    // loops themselves, so the routed-vs-full comparison is honest on
    // any machine, including 1-core runners. Per-modification proposals
    // (batch=1) are the regime where that cost bites: one vote per
    // validator per modification, instead of one per 256-row batch.
    opts.batch_size = 1;
    opts.route_votes = route;
    opts.route_rebuild_per_step = rebuild_per_step;
    const auto t0 = std::chrono::steady_clock::now();
    const RunReport rep =
        coordinator.Run(scaled.get(), order, opts).ValueOrAbort();
    VoteOutcome out;
    out.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    out.build_seconds = rep.route_index_build_seconds;
    out.votes_total = rep.votes_total;
    out.votes_skipped = rep.votes_skipped;
    out.violations = rep.route_audit_violations;
    out.errors = rep.final_errors;
    return out;
  };
  const auto best = [&](RouteVotes route, bool rebuild_per_step = false) {
    constexpr int kReps = 3;
    VoteOutcome best_out;
    for (int r = 0; r < kReps; ++r) {
      VoteOutcome o = run_once(route, rebuild_per_step);
      if (r == 0 || o.seconds < best_out.seconds) best_out = std::move(o);
    }
    return best_out;
  };

  const VoteOutcome full = best(RouteVotes::kOff);
  const VoteOutcome routed = best(RouteVotes::kOn);
  // Same routed configuration, but the index is torn down and rebuilt
  // from certified scopes on every serial step (the pre-incremental
  // behaviour, kept behind CoordinatorOptions::route_rebuild_per_step)
  // — the voting is identical, only the maintenance cost differs.
  const VoteOutcome rebuilt = best(RouteVotes::kOn, /*rebuild_per_step=*/true);
  const VoteOutcome audit = best(RouteVotes::kAudit);
  Header({"config", "seconds", "index_build_s", "votes_total",
          "votes_skipped"});
  const auto row = [](const char* label, const VoteOutcome& o) {
    Cell(label);
    Cell(o.seconds);
    Cell(o.build_seconds);
    Cell(std::to_string(o.votes_total));
    Cell(std::to_string(o.votes_skipped));
    EndRow();
  };
  row("full", full);
  row("routed", routed);
  row("routed-rebuild", rebuilt);
  row("audit", audit);
  for (const VoteOutcome* o : {&routed, &rebuilt, &audit}) {
    for (size_t i = 0; i < full.errors.size(); ++i) {
      if (full.errors[i] != o->errors[i]) {
        std::fprintf(stderr,
                     "FAIL: routed final error of tool %zu differs: "
                     "%.9f vs %.9f\n",
                     i, full.errors[i], o->errors[i]);
        return false;
      }
    }
    if (o->violations != 0) {
      std::fprintf(stderr,
                   "FAIL: vote-routing audit flagged %lld violations on "
                   "honest tools\n",
                   static_cast<long long>(o->violations));
      return false;
    }
  }
  if (routed.votes_skipped <= 0 || routed.votes_total <= 0) {
    std::fprintf(stderr, "FAIL: routed run pruned no votes\n");
    return false;
  }
  const double route_speedup = full.seconds / std::max(1e-9, routed.seconds);
  const double route_incremental_speedup =
      rebuilt.seconds / std::max(1e-9, routed.seconds);
  std::printf("identical final errors; %lld/%lld votes skipped; "
              "route speedup %.2fx (audit %.2fx); incremental index "
              "%.2fx vs per-step rebuild (build %.4fs vs %.4fs)\n",
              static_cast<long long>(routed.votes_skipped),
              static_cast<long long>(routed.votes_total), route_speedup,
              full.seconds / std::max(1e-9, audit.seconds),
              route_incremental_speedup, routed.build_seconds,
              rebuilt.build_seconds);
  report->Metric("votes_total", static_cast<double>(routed.votes_total));
  report->Metric("votes_skipped", static_cast<double>(routed.votes_skipped));
  report->Metric("route_full_s", full.seconds);
  report->Metric("route_routed_s", routed.seconds);
  report->Metric("route_rebuild_s", rebuilt.seconds);
  report->Metric("route_audit_s", audit.seconds);
  report->Metric("route_speedup", route_speedup);
  report->Metric("route_incremental_speedup", route_incremental_speedup);
  report->Metric("route_index_build_s", routed.build_seconds);
  report->Metric("route_index_build_rebuild_s", rebuilt.build_seconds);
  return true;
}

/// Swap-rebase microbench: the cost of handing a bound complex tool to
/// a content-identical database — the operation the parallel pass pays
/// twice per group member in clone mode (main -> clone -> main) — with
/// the pointer-swap Rebase override vs the Unbind+Bind rebuild it
/// replaced.
void RebaseMicrobench(BenchReport* report) {
  Banner("Swap-rebase microbench (DoubanMusicLike, complex tools)");
  auto gen = GenerateDataset(DoubanMusicLike(4.0), kSeed).ValueOrAbort();
  auto db = gen.Materialize(2).ValueOrAbort();
  auto twin = db->Clone();
  const Schema& schema = db->schema();

  std::vector<std::unique_ptr<PropertyTool>> tools;
  tools.push_back(std::make_unique<LinearPropertyTool>(schema));
  tools.push_back(std::make_unique<CoappearPropertyTool>(schema));
  tools.push_back(std::make_unique<PairwisePropertyTool>(schema));

  Header({"tool", "swap_ms", "rebuild_ms"});
  double swap_total = 0, rebuild_total = 0;
  for (auto& tool : tools) {
    tool->SetTargetFromDataset(*db).Check();
    tool->Bind(db.get()).Check();
    constexpr int kRounds = 20;
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kRounds; ++r) {
      // One round trip, like a clone-mode group member.
      tool->Rebase(twin.get()).Check();
      tool->Rebase(db.get()).Check();
    }
    const double swap_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        kRounds;
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kRounds; ++r) {
      tool->Unbind();
      tool->Bind(twin.get()).Check();
      tool->Unbind();
      tool->Bind(db.get()).Check();
    }
    const double rebuild_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        kRounds;
    Cell(tool->name());
    Cell(swap_ms);
    Cell(rebuild_ms);
    EndRow();
    swap_total += swap_ms;
    rebuild_total += rebuild_ms;
    tool->Unbind();
  }
  report->Metric("rebase_swap_ms", swap_total);
  report->Metric("rebase_rebuild_ms", rebuild_total);
}

}  // namespace

/// One full stage-1 pass — grow the blueprint dataset, materialize the
/// source and truth snapshots, Rand-scale to the truth sizes, and
/// verify referential integrity — at the given shard-worker count.
struct Stage1Result {
  std::unique_ptr<Database> truth;
  std::unique_ptr<Database> base;
  double seconds = 0;
};

Stage1Result RunStage1(int threads) {
  const GenOptions gen{threads};
  IntegrityOptions verify;
  verify.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  auto snapshots = GenerateDataset(XiamiLike(48.0), kSeed, gen).ValueOrAbort();
  Stage1Result out;
  out.truth = snapshots.Materialize(4, gen).ValueOrAbort();
  RandScaler rand;
  out.base = rand.Scale(*snapshots.Materialize(1, gen).ValueOrAbort(),
                        snapshots.SnapshotSizes(4), kSeed, gen)
                 .ValueOrAbort();
  CheckIntegrity(*out.base, verify).Check();
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

int main() {
  BenchReport report("batch_pipeline");
  Banner("Stage 1: generate + Rand-scale (XiamiLike), serial vs sharded");
  // The sharded row generators are bitwise deterministic in the worker
  // count (DESIGN.md §12), so the 1-thread and N-thread passes must
  // hash identically — the bench aborts if they do not, and the
  // N-thread databases then seed every tweaking phase below.
  Stage1Result s1_serial = RunStage1(1);
  Stage1Result s1_par = RunStage1(kThreads);
  const uint64_t truth_hash = ContentHash(*s1_serial.truth);
  const uint64_t base_hash = ContentHash(*s1_serial.base);
  if (truth_hash != ContentHash(*s1_par.truth) ||
      base_hash != ContentHash(*s1_par.base)) {
    std::fprintf(stderr,
                 "FAIL: stage-1 output differs between 1 and %d "
                 "generation threads\n",
                 kThreads);
    return 1;
  }
  Header({"config", "seconds"});
  Cell("serial");
  Cell(s1_serial.seconds);
  EndRow();
  Cell("sharded-" + std::to_string(kThreads) + "t");
  Cell(s1_par.seconds);
  EndRow();
  const double stage1_speedup =
      s1_serial.seconds / std::max(1e-9, s1_par.seconds);
  std::printf("stage-1 hashes identical (%016llx); speedup %.2fx\n",
              static_cast<unsigned long long>(base_hash), stage1_speedup);
  report.Metric("stage1_serial_s", s1_serial.seconds);
  report.Metric("stage1_parallel_s", s1_par.seconds);
  report.Metric("stage1_speedup", stage1_speedup);
  report.Metric("gen_threads", kThreads);
  if (ThreadPool::HardwareThreads() == 1) {
    report.Note("stage1_note",
                "hardware_threads == 1: sharded timings oversubscribe one "
                "core; stage1_speedup is not meaningful");
  }

  auto truth = std::move(s1_par.truth);
  auto base = std::move(s1_par.base);
  // Rand clones tuples, so the scaled columns already match the target
  // frequencies; flatten each enforced column to a constant to make
  // the tools rebuild the whole distribution.
  for (const ToolRef& t : kTools) {
    Table* table = base->FindTable(t.table);
    const int col = table->ColumnIndex(t.column);
    std::vector<TupleId> rows;
    table->ForEachLive([&](TupleId tid) { rows.push_back(tid); });
    base->Apply(Modification::ReplaceValues(t.table, rows, {col},
                                            {Value(int64_t{0})}))
        .Check();
  }
  std::printf("scaled dataset: %lld tuples\n",
              static_cast<long long>(base->TotalTuples()));
  report.AddTuples(base->TotalTuples());

  Banner("Serial per-modification baseline (batch=1, serial pass)");
  const RunOutcome serial =
      Best(*base, *truth, false, ParallelMode::kShared, 1, 1);
  Banner("Batched + O1-parallel, shared database (batch=" +
         std::to_string(kBatch) + ", " + std::to_string(kThreads) +
         " threads)");
  const RunOutcome shared =
      Best(*base, *truth, true, ParallelMode::kShared, kBatch, kThreads);
  Banner("Batched + O1-parallel, clone-and-merge (batch=" +
         std::to_string(kBatch) + ", " + std::to_string(kThreads) +
         " threads)");
  const RunOutcome clone =
      Best(*base, *truth, true, ParallelMode::kClone, kBatch, kThreads);

  const RunOutcome batch_only =
      Best(*base, *truth, false, ParallelMode::kShared, kBatch, 1);
  const RunOutcome par_only =
      Best(*base, *truth, true, ParallelMode::kShared, 1, kThreads);
  const RunOutcome batched_1t =
      Best(*base, *truth, true, ParallelMode::kShared, kBatch, 1);

  Banner("Batch pipeline: serial vs batched+parallel (clone vs shared)");
  Header({"config", "seconds", "applied", "vetoed", "setup_ms",
          "merge_ms", "rebase_ms", "err0", "err1", "err2"});
  const auto row = [](const char* label, const RunOutcome& o) {
    Cell(label);
    Cell(o.seconds);
    Cell(std::to_string(o.applied));
    Cell(std::to_string(o.vetoed));
    Cell(o.setup_s * 1e3);
    Cell(o.merge_s * 1e3);
    Cell(o.rebase_s * 1e3);
    for (const double e : o.errors) Cell(e);
    EndRow();
  };
  row("serial", serial);
  row("batch-only", batch_only);
  row("par-only", par_only);
  row("batched-clone", clone);
  row("batched-shared", shared);
  row("batched-1t", batched_1t);

  const RunOutcome* const all[] = {&batch_only, &par_only, &clone,
                                   &shared,     &batched_1t};
  for (const RunOutcome* o : all) {
    for (size_t i = 0; i < serial.errors.size(); ++i) {
      if (serial.errors[i] != o->errors[i]) {
        std::fprintf(
            stderr,
            "FAIL: final error of tool %zu differs: %.9f vs %.9f\n", i,
            serial.errors[i], o->errors[i]);
        return 1;
      }
    }
  }
  const double speedup = serial.seconds / std::max(1e-9, shared.seconds);
  std::printf(
      "identical final errors across all configs; speedup %.2fx "
      "(shared), %.2fx (clone)\n",
      speedup, serial.seconds / std::max(1e-9, clone.seconds));
  report.Metric("serial_s", serial.seconds);
  report.Metric("batched_parallel_s", shared.seconds);
  report.Metric("clone_s", clone.seconds);
  report.Metric("shared_s", shared.seconds);
  report.Metric("speedup", speedup);
  report.Metric("batch", kBatch);
  report.Metric("threads", kThreads);
  report.Metric("groups", static_cast<double>(shared.groups));
  report.Metric("clone_setup_ms", clone.setup_s * 1e3);
  report.Metric("clone_merge_ms", clone.merge_s * 1e3);
  report.Metric("clone_rebase_ms", clone.rebase_s * 1e3);
  report.Metric("shared_setup_ms", shared.setup_s * 1e3);
  report.Metric("shared_merge_ms", shared.merge_s * 1e3);
  report.Metric("shared_rebase_ms", shared.rebase_s * 1e3);

  if (!RangeSplitPhase(*base, *truth, &report)) return 1;
  if (!ValidationPhase(*base, *truth, &report)) return 1;

  RebaseMicrobench(&report);
  // Every parallel configuration above was checked against its serial
  // equivalent: stage-1 by content hash, the tweaking configs and the
  // range-split run by final per-tool errors. Reaching this point means
  // all of them matched.
  report.SerialEquivalent(true);
  return 0;
}
