// Batched modification pipeline vs the serial per-modification
// baseline: a 3-tool column-frequency enforcement pass on Rand-scaled
// Xiami-like social-network data, run once with batch=1 on one thread
// (the historical path) and once with batch=64 under the O1-parallel
// pass scheduler at 8 threads.
//
// The three tools write disjoint (table, column) access sets, so the
// parallel pass may run them concurrently (observation O1) and the
// batched path folds up to 64 same-value replacements into a single
// broadcast modification: one validator vote, one columnar write, one
// log segment. Both runs must end at identical per-tool errors; the
// bench aborts if they do not.
#include <chrono>

#include "aspect/coordinator.h"
#include "bench_util.h"
#include "properties/simple.h"
#include "relational/modlog.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

using namespace aspect;
using namespace aspect::bench;

namespace {

constexpr int kBatch = 256;
constexpr int kThreads = 8;

struct ToolRef {
  const char* table;
  const char* column;
};
constexpr ToolRef kTools[] = {
    {"User", "gender"}, {"Photo", "kind"}, {"Space", "kind"}};

struct RunOutcome {
  double seconds = 0;
  int64_t applied = 0;
  int64_t vetoed = 0;
  std::vector<double> errors;
};

RunOutcome RunOnce(const Database& base, const Database& truth,
                   bool parallel, int batch, int threads,
                   bool verbose) {
  auto scaled = base.Clone();
  // Log the enforcement modifications like the CLI's --report and the
  // replay-onto-snapshot path do: the log is a per-modification
  // listener, so the serial baseline pays one entry per modification
  // while the batched pipeline delivers one segment per batch.
  ModificationLog log(scaled.get());
  Coordinator coordinator;
  std::vector<int> order;
  for (const ToolRef& t : kTools) {
    order.push_back(coordinator.AddTool(std::make_unique<ColumnFreqTool>(
        truth.schema(), t.table, t.column)));
  }
  coordinator.SetTargetsFromDataset(truth).Check();
  CoordinatorOptions opts;
  opts.seed = kSeed;
  opts.parallel_pass = parallel;
  opts.pass_threads = threads;
  opts.batch_size = batch;
  const auto t0 = std::chrono::steady_clock::now();
  const RunReport report =
      coordinator.Run(scaled.get(), order, opts).ValueOrAbort();
  RunOutcome out;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.errors = report.final_errors;
  for (const ToolReport& step : report.steps) {
    out.applied += step.applied;
    out.vetoed += step.vetoed;
    if (verbose) {
      std::printf("  step %-16s %.4fs applied=%lld%s\n",
                  step.tool.c_str(), step.seconds,
                  static_cast<long long>(step.applied),
                  step.parallel ? " (parallel)" : "");
    }
  }
  return out;
}

/// Best of `kReps` identical runs: the coordinator is deterministic for
/// a fixed seed, so repetitions only differ by scheduling noise and the
/// minimum is the honest cost on a busy machine.
RunOutcome Best(const Database& base, const Database& truth, bool parallel,
                int batch, int threads) {
  constexpr int kReps = 5;
  RunOutcome best;
  for (int r = 0; r < kReps; ++r) {
    RunOutcome o = RunOnce(base, truth, parallel, batch, threads, r == 0);
    if (r == 0 || o.seconds < best.seconds) best = std::move(o);
  }
  return best;
}

}  // namespace

int main() {
  BenchReport report("batch_pipeline");
  Banner("Setup: generate + Rand-scale (XiamiLike)");
  auto gen = GenerateDataset(XiamiLike(48.0), kSeed).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler rand;
  auto base = rand.Scale(*gen.Materialize(1).ValueOrAbort(),
                         gen.SnapshotSizes(4), kSeed)
                  .ValueOrAbort();
  // Rand clones tuples, so the scaled columns already match the target
  // frequencies; flatten each enforced column to a constant to make
  // the tools rebuild the whole distribution.
  for (const ToolRef& t : kTools) {
    Table* table = base->FindTable(t.table);
    const int col = table->ColumnIndex(t.column);
    std::vector<TupleId> rows;
    table->ForEachLive([&](TupleId tid) { rows.push_back(tid); });
    base->Apply(Modification::ReplaceValues(t.table, rows, {col},
                                            {Value(int64_t{0})}))
        .Check();
  }
  std::printf("scaled dataset: %lld tuples\n",
              static_cast<long long>(base->TotalTuples()));
  report.AddTuples(base->TotalTuples());

  Banner("Serial per-modification baseline (batch=1, serial pass)");
  const RunOutcome serial = Best(*base, *truth, false, 1, 1);
  Banner("Batched + O1-parallel (batch=" + std::to_string(kBatch) +
         ", " + std::to_string(kThreads) + " threads)");
  const RunOutcome batched = Best(*base, *truth, true, kBatch, kThreads);

  const RunOutcome batch_only = Best(*base, *truth, false, kBatch, 1);
  const RunOutcome par_only = Best(*base, *truth, true, 1, kThreads);
  const RunOutcome batched_1t = Best(*base, *truth, true, kBatch, 1);

  Banner("Batch pipeline: serial vs batched+parallel");
  Header({"config", "seconds", "applied", "vetoed", "err0", "err1",
          "err2"});
  const auto row = [](const char* label, const RunOutcome& o) {
    Cell(label);
    Cell(o.seconds);
    Cell(std::to_string(o.applied));
    Cell(std::to_string(o.vetoed));
    for (const double e : o.errors) Cell(e);
    EndRow();
  };
  row("serial", serial);
  row("batch-only", batch_only);
  row("par-only", par_only);
  row("batched", batched);
  row("batched-1t", batched_1t);

  for (size_t i = 0; i < serial.errors.size(); ++i) {
    if (serial.errors[i] != batched.errors[i]) {
      std::fprintf(stderr,
                   "FAIL: final error of tool %zu differs: %.9f vs %.9f\n",
                   i, serial.errors[i], batched.errors[i]);
      return 1;
    }
  }
  const double speedup = serial.seconds / std::max(1e-9, batched.seconds);
  std::printf("identical final errors; speedup %.2fx\n", speedup);
  report.Metric("serial_s", serial.seconds);
  report.Metric("batched_parallel_s", batched.seconds);
  report.Metric("speedup", speedup);
  report.Metric("batch", kBatch);
  report.Metric("threads", kThreads);
  return 0;
}
