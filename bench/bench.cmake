# One binary per figure/table group of the paper plus ablations and a
# google-benchmark micro suite. Running every binary regenerates the
# full evaluation (see EXPERIMENTS.md).
function(aspect_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE
    aspect_measure
    aspect_properties
    aspect_core
    aspect_query
    aspect_scaler
    aspect_workload
    aspect_stats
    aspect_relational
    aspect_common
  )
endfunction()

aspect_add_bench(bench_fig12_13_14_properties)
aspect_add_bench(bench_fig15_queries)
aspect_add_bench(bench_fig16_iterations)
aspect_add_bench(bench_fig17_time)
aspect_add_bench(bench_fig25_26_27_properties_douban)
aspect_add_bench(bench_fig28_29_30_queries_douban)
aspect_add_bench(bench_fig31_query_iterations)
aspect_add_bench(bench_fig32_33_34_iteration_tables)
aspect_add_bench(bench_fig35_time_douban)
aspect_add_bench(bench_ablation_order)
aspect_add_bench(bench_ablation_validation)
aspect_add_bench(bench_ablation_overlap)
aspect_add_bench(bench_error_analysis)
aspect_add_bench(bench_scalability)
aspect_add_bench(bench_ablation_scalers)
aspect_add_bench(bench_ablation_rollback)
aspect_add_bench(bench_batch_pipeline)

add_executable(bench_micro_ops ${CMAKE_SOURCE_DIR}/bench/bench_micro_ops.cc)
set_target_properties(bench_micro_ops PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
target_link_libraries(bench_micro_ops PRIVATE
  aspect_properties aspect_core aspect_scaler aspect_workload
  aspect_stats aspect_relational aspect_common benchmark::benchmark)
