// Ablation: size-scaler comparison. Stage 1 of ASPECT is pluggable
// (Sec. III-A: "S0 could be any tool"); this bench compares the five
// shipped scalers by the property errors they leave *before* tweaking
// and by where C-P-L tweaking lands afterwards.
//
// Expected shape: the correlation-aware scalers (Dscaler, UpSizeR)
// leave the smallest initial errors; Rand the largest; Sampling is
// scale-down oriented, so in this scale-UP scenario its cloning
// inflates coappear multiplicities and it starts worst of all. After
// tweaking, every scaler converges to the same small residuals - the
// paper's point that property enforcement is orthogonal to S0.
#include "bench_util.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("ablation_scalers");
  Banner("Ablation: size-scalers before/after tweaking "
         "(DoubanMusicLike, D4, C-P-L)");
  Header({"scaler", "L-before", "L-after", "C-before", "C-after",
          "P-before", "P-after", "tweak-s"});
  for (const char* scaler :
       {"Dscaler", "UpSizeR", "Sampling", "ReX", "Rand"}) {
    ExperimentConfig c;
    c.blueprint = DoubanMusicLike(0.5);
    c.seed = kSeed;
    c.source_snapshot = 1;
    c.target_snapshot = 4;
    c.scaler = scaler;
    c.order = OrderFromLabel("C-P-L").ValueOrAbort();
    const ExperimentResult r = RunExperiment(c).ValueOrAbort();
    Cell(scaler);
    Cell(r.before.linear);
    Cell(r.after.linear);
    Cell(r.before.coappear);
    Cell(r.after.coappear);
    Cell(r.before.pairwise);
    Cell(r.after.pairwise);
    Cell(r.tweak_seconds);
    EndRow();
  }
  return 0;
}
