// Reproduces Fig. 16: property error of the C-L-P and C-P-L orders on
// Dscaler-Xiami as the whole permutation is iterated 1..3 times
// (Sec. VII-C).
//
// Expected shape: errors drop sharply with the second iteration and
// stabilise around or below ~0.02 by the third.
#include "bench_util.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("fig16_iterations");
  Banner("Figure 16: error vs tweaking iterations (Dscaler-Xiami)");
  for (const std::string& label : {std::string("C-L-P"), std::string("C-P-L")}) {
    std::printf("-- %s --\n", label.c_str());
    Header({"property", "iter1", "iter2", "iter3"});
    std::vector<PropertyErrors> per_iter;
    for (int iters = 1; iters <= 3; ++iters) {
      ExperimentConfig c;
      c.blueprint = XiamiLike(0.5);
      c.seed = kSeed;
      c.source_snapshot = 1;
      c.target_snapshot = 5;
      c.scaler = "Dscaler";
      c.order = OrderFromLabel(label).ValueOrAbort();
      c.iterations = iters;
      per_iter.push_back(RunExperiment(c).ValueOrAbort().after);
    }
    for (const char* prop : {"coappear", "linear", "pairwise"}) {
      Cell(prop);
      for (const PropertyErrors& e : per_iter) Cell(PropertyOf(e, prop));
      EndRow();
    }
  }
  return 0;
}
