// Ablation: the Property Tweaking Order Problem (Sec. VIII-A,
// Theorems 6-8) on same-column frequency-distribution tools.
//
// Three tools enforce different distributions over one column; per
// Theorem 6 the total error after a sequential run is
// sum_i ||pi_i - pi_last||, so Theorem 8 predicts the order ending
// with the "median" distribution is optimal. The bench runs all six
// orders and prints measured vs predicted totals.
#include <algorithm>
#include <chrono>

#include "aspect/coordinator.h"
#include "bench_util.h"
#include "properties/coappear.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "properties/simple.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

using namespace aspect;
using namespace aspect::bench;

namespace {

Schema OneColumnSchema() {
  Schema s;
  s.name = "order-ablation";
  s.tables.push_back({"T", {{"v", ColumnType::kInt64, ""}}});
  return s;
}

FrequencyDistribution Dist(std::vector<std::pair<int64_t, int64_t>> e) {
  FrequencyDistribution d(1);
  for (const auto& [v, c] : e) d.Add({v}, c);
  return d;
}

}  // namespace

int main() {
  BenchReport report("ablation_order");
  const Schema schema = OneColumnSchema();
  const int64_t population = 1200;
  const std::vector<FrequencyDistribution> pis = {
      Dist({{0, 900}, {1, 200}, {2, 100}}),
      Dist({{0, 100}, {1, 200}, {2, 900}}),
      Dist({{0, 400}, {1, 400}, {2, 400}}),
  };

  Banner("Ablation: Property Tweaking Order Problem (Theorems 6-8)");
  Header({"order", "measured", "predicted"});
  double best_measured = 1e18;
  std::string best_order;
  std::vector<int> order = {0, 1, 2};
  std::sort(order.begin(), order.end());
  do {
    auto db = Database::Create(schema).ValueOrAbort();
    Rng rng(kSeed);
    for (int64_t i = 0; i < population; ++i) {
      db->FindTable("T")
          ->Append({Value(rng.UniformInt(0, 2))})
          .status()
          .Check();
    }
    Coordinator coordinator;
    std::vector<ColumnFreqTool*> tools;
    for (int i = 0; i < 3; ++i) {
      auto t = std::make_unique<ColumnFreqTool>(schema, "T", "v",
                                                "f" + std::to_string(i));
      t->SetTargetDistribution(pis[static_cast<size_t>(i)]).Check();
      tools.push_back(t.get());
      coordinator.AddTool(std::move(t));
    }
    CoordinatorOptions opts;
    opts.validate = false;
    opts.repair_targets = false;
    opts.seed = kSeed;
    coordinator.Run(db.get(), order, opts).ValueOrAbort();
    double measured = 0;
    for (ColumnFreqTool* t : tools) {
      t->Bind(db.get()).Check();
      measured += t->Error();
      t->Unbind();
    }
    // Theorem 6 prediction: sum_i ||pi_i - pi_last|| / |T|.
    const int last = order.back();
    double predicted = 0;
    for (int i = 0; i < 3; ++i) {
      predicted += static_cast<double>(
                       pis[static_cast<size_t>(i)].L1Distance(
                           pis[static_cast<size_t>(last)])) /
                   static_cast<double>(population);
    }
    std::string label;
    for (const int i : order) {
      if (!label.empty()) label += "-";
      label += "f" + std::to_string(i);
    }
    Cell(label);
    Cell(measured);
    Cell(predicted);
    EndRow();
    if (measured < best_measured) {
      best_measured = measured;
      best_order = label;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  std::printf("best order: %s (Theorem 8 predicts the median f2 last)\n",
              best_order.c_str());

  // Wall-clock of the order search itself: CompareOrders probes the
  // same six candidate orders at 1 thread and at one per core. The
  // rankings and errors are identical; only the elapsed time changes.
  auto gen = GenerateDataset(XiamiLike(0.4), kSeed).ValueOrAbort();
  auto truth = gen.Materialize(4).ValueOrAbort();
  RandScaler rand;
  auto base = rand.Scale(*gen.Materialize(1).ValueOrAbort(),
                         gen.SnapshotSizes(4), kSeed)
                  .ValueOrAbort();
  Coordinator coordinator;
  coordinator.AddTool(
      std::make_unique<LinearPropertyTool>(truth->schema()));
  coordinator.AddTool(
      std::make_unique<CoappearPropertyTool>(truth->schema()));
  coordinator.AddTool(
      std::make_unique<PairwisePropertyTool>(truth->schema()));
  coordinator.SetTargetsFromDataset(*truth).Check();
  std::vector<std::vector<int>> orders;
  for (const auto& [perm_label, perm] :
       AllPermutations(coordinator, {0, 1, 2})) {
    orders.push_back(perm);
  }

  Banner("Parallel order search (CompareOrders, Rand-XiamiLike D4)");
  Header({"threads", "seconds", "speedup", "best", "best-err"});
  double serial_seconds = 0;
  for (const int threads : {1, 0}) {  // 0 = one per hardware thread
    CoordinatorOptions opts;
    opts.seed = kSeed;
    opts.order_search_threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcomes =
        coordinator.CompareOrders(*base, orders, opts).ValueOrAbort();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    if (threads == 1) serial_seconds = seconds;
    std::string best;
    for (const int id : outcomes.front().order) {
      if (!best.empty()) best += "-";
      best += coordinator.tool(id)->name().substr(0, 1);
    }
    Cell(std::to_string(threads));
    Cell(seconds);
    Cell(serial_seconds / std::max(1e-9, seconds));
    Cell(best);
    Cell(outcomes.front().total_error);
    EndRow();
  }
  return 0;
}
