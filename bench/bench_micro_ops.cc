// Google-benchmark microbenches of the substrate hot paths: uniform
// API modifications, incremental ChainStats maintenance, frequency-
// distribution updates, and the three size-scalers.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "properties/chain_stats.h"
#include "relational/refgraph.h"
#include "scaler/size_scaler.h"
#include "stats/freq_dist.h"
#include "workload/generator.h"

namespace aspect {
namespace {

const SnapshotSet& SharedDataset() {
  static SnapshotSet* set = [] {
    auto gen = GenerateDataset(DoubanMusicLike(0.5), 7).ValueOrAbort();
    return new SnapshotSet(std::move(gen));
  }();
  return *set;
}

void BM_ReplaceValues(benchmark::State& state) {
  auto db = SharedDataset().Materialize(3).ValueOrAbort();
  Table* t = db->FindTable("Album_Heard");
  const int64_t albums = db->FindTable("Album")->NumTuples();
  Rng rng(1);
  for (auto _ : state) {
    const TupleId tid = rng.UniformInt(0, t->NumTuples() - 1);
    const Modification mod = Modification::ReplaceValues(
        "Album_Heard", {tid}, {0}, {Value(rng.UniformInt(0, albums - 1))});
    benchmark::DoNotOptimize(db->Apply(mod));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReplaceValues);

void BM_InsertDeleteTuple(benchmark::State& state) {
  auto db = SharedDataset().Materialize(3).ValueOrAbort();
  Rng rng(2);
  const int64_t albums = db->FindTable("Album")->NumTuples();
  const int64_t users = db->FindTable("User")->NumTuples();
  for (auto _ : state) {
    TupleId nt = kInvalidTuple;
    db->Apply(Modification::InsertTuple(
                  "Album_Heard",
                  {Value(rng.UniformInt(0, albums - 1)),
                   Value(rng.UniformInt(0, users - 1)), Value(int64_t{1})}),
              &nt)
        .Check();
    db->Apply(Modification::DeleteTuple("Album_Heard", nt)).Check();
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_InsertDeleteTuple);

void BM_ChainStatsMove(benchmark::State& state) {
  auto db = SharedDataset().Materialize(3).ValueOrAbort();
  ReferenceGraph graph(db->schema());
  const auto chains = graph.MaximalChains();
  const ReferenceChain* chain = &chains[0];
  for (const auto& c : chains) {
    if (c.length() > chain->length()) chain = &c;
  }
  ChainStats stats(*chain);
  stats.Build(*db);
  const int level = chain->length() - 1;
  const Table& top =
      db->table(chain->tables[static_cast<size_t>(level)]);
  const Table& parent =
      db->table(chain->tables[static_cast<size_t>(level - 1)]);
  Rng rng(3);
  for (auto _ : state) {
    const TupleId child = rng.UniformInt(0, top.NumTuples() - 1);
    const TupleId new_parent = rng.UniformInt(0, parent.NumTuples() - 1);
    stats.Detach(level, child);
    stats.Attach(level, child, new_parent);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChainStatsMove);

void BM_JoinMatrixFromScratch(benchmark::State& state) {
  auto db = SharedDataset().Materialize(3).ValueOrAbort();
  ReferenceGraph graph(db->schema());
  const auto chains = graph.MaximalChains();
  for (auto _ : state) {
    for (const auto& chain : chains) {
      benchmark::DoNotOptimize(ComputeJoinMatrix(*db, chain));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(chains.size()) *
                          state.iterations());
}
BENCHMARK(BM_JoinMatrixFromScratch);

void BM_FreqDistAdd(benchmark::State& state) {
  FrequencyDistribution dist(3);
  Rng rng(4);
  for (auto _ : state) {
    dist.Add({rng.UniformInt(0, 9), rng.UniformInt(0, 9),
              rng.UniformInt(0, 9)},
             1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreqDistAdd);

void BM_Scaler(benchmark::State& state) {
  const auto& set = SharedDataset();
  auto source = set.Materialize(2).ValueOrAbort();
  const auto targets = set.SnapshotSizes(4);
  const auto scalers = BuiltinScalers();
  const SizeScaler& scaler = *scalers[static_cast<size_t>(state.range(0))];
  int64_t tuples = 0;
  for (auto _ : state) {
    auto scaled = scaler.Scale(*source, targets, 5).ValueOrAbort();
    tuples += scaled->TotalTuples();
    benchmark::DoNotOptimize(scaled);
  }
  state.SetItemsProcessed(tuples);
  state.SetLabel(scaler.name());
}
BENCHMARK(BM_Scaler)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace aspect

// Expanded BENCHMARK_MAIN so the run is wrapped in a BenchReport like
// every other bench binary.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  aspect::bench::BenchReport report("micro_ops");
  report.Phase("benchmarks");
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
