// Ablation: scalability of the full pipeline. Fig. 17 shows execution
// time growing linearly with dataset size across snapshots; this bench
// extends the claim across generator scales (4x more data per step)
// and reports tuples-per-second throughput for scaling + tweaking.
#include <chrono>

#include "aspect/coordinator.h"
#include "bench_util.h"
#include "properties/coappear.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "scaler/size_scaler.h"
#include "workload/generator.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("scalability");
  Banner("Ablation: pipeline scalability (Rand-XiamiLike, C-L-P, D4)");
  Header({"scale", "tuples", "tweak-s", "tuples/s", "err-L", "err-C",
          "err-P"});
  for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    ExperimentConfig c;
    c.blueprint = XiamiLike(scale);
    c.seed = kSeed;
    c.source_snapshot = 1;
    c.target_snapshot = 4;
    c.scaler = "Rand";
    c.order = OrderFromLabel("C-L-P").ValueOrAbort();
    const ExperimentResult r = RunExperiment(c).ValueOrAbort();
    // Tuple count of the tweaked dataset.
    auto gen = GenerateDataset(c.blueprint, c.seed).ValueOrAbort();
    int64_t tuples = 0;
    for (const int64_t s : gen.SnapshotSizes(4)) tuples += s;
    report.AddTuples(tuples);
    Cell(scale);
    Cell(std::to_string(tuples));
    Cell(r.tweak_seconds);
    Cell(static_cast<double>(tuples) / std::max(1e-9, r.tweak_seconds));
    Cell(r.after.linear);
    Cell(r.after.coappear);
    Cell(r.after.pairwise);
    EndRow();
  }

  // How the order search scales with workers: the six candidate
  // permutations probed serially and with one worker per core.
  Banner("Order-search scalability (CompareOrders, Rand-XiamiLike D4)");
  Header({"scale", "threads", "seconds", "speedup"});
  for (const double scale : {0.25, 0.5}) {
    auto gen = GenerateDataset(XiamiLike(scale), kSeed).ValueOrAbort();
    auto truth = gen.Materialize(4).ValueOrAbort();
    RandScaler rand;
    auto base = rand.Scale(*gen.Materialize(1).ValueOrAbort(),
                           gen.SnapshotSizes(4), kSeed)
                    .ValueOrAbort();
    Coordinator coordinator;
    coordinator.AddTool(
        std::make_unique<LinearPropertyTool>(truth->schema()));
    coordinator.AddTool(
        std::make_unique<CoappearPropertyTool>(truth->schema()));
    coordinator.AddTool(
        std::make_unique<PairwisePropertyTool>(truth->schema()));
    coordinator.SetTargetsFromDataset(*truth).Check();
    std::vector<std::vector<int>> orders;
    for (const auto& [label, order] :
         AllPermutations(coordinator, {0, 1, 2})) {
      orders.push_back(order);
    }
    double serial_seconds = 0;
    for (const int threads : {1, 0}) {
      CoordinatorOptions opts;
      opts.seed = kSeed;
      opts.order_search_threads = threads;
      const auto t0 = std::chrono::steady_clock::now();
      coordinator.CompareOrders(*base, orders, opts).ValueOrAbort();
      const double seconds =
          std::chrono::duration<double>(
              std::chrono::steady_clock::now() - t0)
              .count();
      if (threads == 1) serial_seconds = seconds;
      Cell(scale);
      Cell(std::to_string(threads));
      Cell(seconds);
      Cell(serial_seconds / std::max(1e-9, seconds));
      EndRow();
    }
  }
  return 0;
}
