// Ablation: scalability of the full pipeline. Fig. 17 shows execution
// time growing linearly with dataset size across snapshots; this bench
// extends the claim across generator scales (4x more data per step)
// and reports tuples-per-second throughput for scaling + tweaking.
#include "bench_util.h"
#include "workload/generator.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  Banner("Ablation: pipeline scalability (Rand-XiamiLike, C-L-P, D4)");
  Header({"scale", "tuples", "tweak-s", "tuples/s", "err-L", "err-C",
          "err-P"});
  for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    ExperimentConfig c;
    c.blueprint = XiamiLike(scale);
    c.seed = kSeed;
    c.source_snapshot = 1;
    c.target_snapshot = 4;
    c.scaler = "Rand";
    c.order = OrderFromLabel("C-L-P").ValueOrAbort();
    const ExperimentResult r = RunExperiment(c).ValueOrAbort();
    // Tuple count of the tweaked dataset.
    auto gen = GenerateDataset(c.blueprint, c.seed).ValueOrAbort();
    int64_t tuples = 0;
    for (const int64_t s : gen.SnapshotSizes(4)) tuples += s;
    Cell(scale);
    Cell(std::to_string(tuples));
    Cell(r.tweak_seconds);
    Cell(static_cast<double>(tuples) / std::max(1e-9, r.tweak_seconds));
    Cell(r.after.linear);
    Cell(r.after.coappear);
    Cell(r.after.pairwise);
    EndRow();
  }
  return 0;
}
