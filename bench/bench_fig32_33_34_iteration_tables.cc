// Reproduces Figs. 32, 33 and 34 (Appendix X-F): property error after
// 1..4 iterations for every permutation, one table per size-scaler
// (Dscaler / ReX / Rand), on the Xiami-like dataset.
//
// Expected shape: more iterations, less error; by iteration 2-3 the
// residuals sit around 0.02 or below (order-of-magnitude reductions
// from the No-Tweak baseline).
#include "bench_util.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("fig32_33_34_iteration_tables");
  struct FigRef {
    const char* figure;
    const char* scaler;
  };
  const FigRef figs[] = {{"Figure 32", "Dscaler"},
                         {"Figure 33", "ReX"},
                         {"Figure 34", "Rand"}};
  for (const FigRef& fig : figs) {
    Banner(std::string(fig.figure) + ": error after 1..4 iterations (" +
           fig.scaler + "-Xiami)");
    ExperimentConfig base;
    base.blueprint = XiamiLike(0.4);
    base.seed = kSeed;
    base.source_snapshot = 1;
    base.target_snapshot = 4;
    base.scaler = fig.scaler;

    ExperimentConfig baseline = base;
    baseline.tweak = false;
    const ExperimentResult nb = RunExperiment(baseline).ValueOrAbort();

    for (const char* prop : {"linear", "coappear", "pairwise"}) {
      std::printf("-- %s property --\n", prop);
      Header({"order", "No-Tweak", "iter1", "iter2", "iter3", "iter4"});
      for (const std::string& label : SixPermutations()) {
        Cell(label);
        Cell(PropertyOf(nb.before, prop));
        for (int iters = 1; iters <= 4; ++iters) {
          ExperimentConfig c = base;
          c.order = OrderFromLabel(label).ValueOrAbort();
          c.iterations = iters;
          Cell(PropertyOf(RunExperiment(c).ValueOrAbort().after, prop));
        }
        EndRow();
      }
    }
  }
  return 0;
}
