// Reproduces Figs. 28, 29 and 30 (Appendix X-E2): query errors Q1-Q4
// on DoubanMovie / DoubanMusic / DoubanBook for Dscaler and Rand.
//
// Expected shape: tweaking reduces query errors to < 0.05 for most
// permutations; linear-related queries suffer when T_linear runs first
// (the paper's Fig. 30 L-C-P exception).
#include <map>

#include "bench_util.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("fig28_29_30_queries_douban");
  struct DatasetRef {
    const char* name;
    const char* figure;
    DatasetBlueprint (*factory)(double);
  };
  const DatasetRef datasets[] = {
      {"DoubanMovie", "Figure 28", &DoubanMovieLike},
      {"DoubanMusic", "Figure 29", &DoubanMusicLike},
      {"DoubanBook", "Figure 30", &DoubanBookLike}};
  const std::vector<std::string> scalers = {"Dscaler", "Rand"};
  const std::vector<std::string> perms = SixPermutations();
  const std::vector<int> snapshots = {3, 5};

  for (const DatasetRef& ds : datasets) {
    Banner(std::string(ds.figure) + ": query errors Q1-Q4 (" + ds.name +
           ")");
    for (const std::string& scaler : scalers) {
      std::map<std::string, std::map<int, std::map<std::string, double>>>
          grid;
      for (const int snap : snapshots) {
        ExperimentConfig base;
        base.blueprint = ds.factory(0.5);
        base.seed = kSeed;
        base.source_snapshot = 1;
        base.target_snapshot = snap;
        base.scaler = scaler;
        base.run_queries = true;
        ExperimentConfig baseline = base;
        baseline.tweak = false;
        const ExperimentResult nb = RunExperiment(baseline).ValueOrAbort();
        for (const auto& [q, err] : nb.query_errors_before) {
          grid[q][snap]["No-Tweak"] = err;
        }
        for (const std::string& label : perms) {
          ExperimentConfig c = base;
          c.order = OrderFromLabel(label).ValueOrAbort();
          const ExperimentResult r = RunExperiment(c).ValueOrAbort();
          for (const auto& [q, err] : r.query_errors_after) {
            grid[q][snap][label] = err;
          }
        }
      }
      for (const auto& [q, rows] : grid) {
        std::printf("-- %s-%s, %s --\n", scaler.c_str(), ds.name,
                    q.c_str());
        std::vector<std::string> cols = {"snapshot", "No-Tweak"};
        cols.insert(cols.end(), perms.begin(), perms.end());
        Header(cols);
        for (const int snap : snapshots) {
          Cell("D" + std::to_string(snap));
          Cell(rows.at(snap).at("No-Tweak"));
          for (const std::string& label : perms) {
            Cell(rows.at(snap).at(label));
          }
          EndRow();
        }
      }
    }
  }
  return 0;
}
