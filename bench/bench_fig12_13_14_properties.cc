// Reproduces Figs. 12, 13 and 14 of the paper: linear / coappear /
// pairwise property error on the Xiami-like dataset, for snapshots
// D2..D6, size-scalers Dscaler / ReX / Rand, the No-Tweak baseline and
// all six tweaking permutations.
//
// Expected shapes (paper): tweaking reduces every error by orders of
// magnitude; the later a tool runs, the smaller its error; orders
// ending in the tool's letter reach ~0.
#include <map>

#include "bench_util.h"

using namespace aspect;
using namespace aspect::bench;

int main() {
  BenchReport report("fig12_13_14_properties");
  const std::vector<std::string> scalers = {"Dscaler", "ReX", "Rand"};
  const std::vector<std::string> perms = SixPermutations();
  const std::vector<int> snapshots = {2, 3, 4, 5, 6};

  // property -> scaler -> snapshot -> column -> error.
  std::map<std::string,
           std::map<std::string, std::map<int, std::map<std::string, double>>>>
      grid;

  for (const std::string& scaler : scalers) {
    for (const int snap : snapshots) {
      ExperimentConfig base;
      base.blueprint = XiamiLike(0.5);
      base.seed = kSeed;
      base.source_snapshot = 1;
      base.target_snapshot = snap;
      base.scaler = scaler;

      ExperimentConfig baseline = base;
      baseline.tweak = false;
      const ExperimentResult nb = RunExperiment(baseline).ValueOrAbort();
      for (const char* prop : {"linear", "coappear", "pairwise"}) {
        grid[prop][scaler][snap]["No-Tweak"] = PropertyOf(nb.before, prop);
      }
      for (const std::string& label : perms) {
        ExperimentConfig c = base;
        c.order = OrderFromLabel(label).ValueOrAbort();
        const ExperimentResult r = RunExperiment(c).ValueOrAbort();
        for (const char* prop : {"linear", "coappear", "pairwise"}) {
          grid[prop][scaler][snap][label] = PropertyOf(r.after, prop);
        }
      }
    }
  }

  const std::map<std::string, std::string> figure = {
      {"linear", "Figure 12: linear property error (XiamiLike)"},
      {"coappear", "Figure 13: coappear property error (XiamiLike)"},
      {"pairwise", "Figure 14: pairwise property error (XiamiLike)"}};
  for (const char* prop : {"linear", "coappear", "pairwise"}) {
    Banner(figure.at(prop));
    for (const std::string& scaler : scalers) {
      std::printf("-- %s-Xiami --\n", scaler.c_str());
      std::vector<std::string> cols = {"snapshot", "No-Tweak"};
      cols.insert(cols.end(), perms.begin(), perms.end());
      Header(cols);
      for (const int snap : snapshots) {
        Cell("D" + std::to_string(snap));
        Cell(grid[prop][scaler][snap]["No-Tweak"]);
        for (const std::string& label : perms) {
          Cell(grid[prop][scaler][snap][label]);
        }
        EndRow();
      }
    }
  }
  return 0;
}
