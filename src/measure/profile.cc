#include "measure/profile.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/string_util.h"
#include "relational/refgraph.h"

namespace aspect {

std::string DatasetProfile::ToString() const {
  std::ostringstream os;
  os << "dataset " << name << ": " << total_tuples << " tuples in "
     << table_sizes.size() << " tables\n";
  os << "tables:\n";
  for (const auto& [table, size] : table_sizes) {
    os << StrFormat("  %-24s %lld\n", table.c_str(),
                    static_cast<long long>(size));
  }
  os << "foreign-key edges (" << edges.size() << "):\n";
  for (const EdgeProfile& e : edges) {
    os << StrFormat(
        "  %-32s -> %-16s fanout mean %.2f max %lld, %lld/%lld parents "
        "hit\n",
        e.child.c_str(), e.parent.c_str(), e.mean_fanout,
        static_cast<long long>(e.max_fanout),
        static_cast<long long>(e.parents_hit),
        static_cast<long long>(e.parents));
  }
  os << "maximal reference chains (" << chains.size()
     << ", the linear property domain):\n";
  for (const std::string& c : chains) os << "  " << c << "\n";
  os << "coappear groups (" << coappear_groups.size() << "):\n";
  for (const std::string& g : coappear_groups) os << "  " << g << "\n";
  os << "response2post instantiations (" << response_specs.size()
     << ", the pairwise property domain):\n";
  for (const std::string& r : response_specs) os << "  " << r << "\n";
  return os.str();
}

Result<DatasetProfile> ProfileDataset(const Database& db) {
  DatasetProfile profile;
  profile.name = db.name();
  profile.total_tuples = db.TotalTuples();
  for (int t = 0; t < db.num_tables(); ++t) {
    profile.table_sizes.emplace_back(db.table(t).name(),
                                     db.table(t).NumTuples());
  }
  ReferenceGraph graph(db.schema());
  for (const FkEdge& e : graph.edges()) {
    const Table& child = db.table(e.child_table);
    const Table& parent = db.table(e.parent_table);
    EdgeProfile ep;
    ep.child = child.name() + "." + child.column(e.fk_col).name();
    ep.parent = parent.name();
    ep.parents = parent.NumTuples();
    std::map<TupleId, int64_t> fanout;
    child.ForEachLive([&](TupleId t) {
      if (child.column(e.fk_col).IsValue(t)) {
        ++fanout[child.column(e.fk_col).GetInt(t)];
        ++ep.children;
      }
    });
    ep.parents_hit = static_cast<int64_t>(fanout.size());
    for (const auto& [p, d] : fanout) {
      ep.max_fanout = std::max(ep.max_fanout, d);
    }
    ep.mean_fanout = ep.parents == 0
                         ? 0.0
                         : static_cast<double>(ep.children) /
                               static_cast<double>(ep.parents);
    profile.edges.push_back(std::move(ep));
  }
  for (const ReferenceChain& chain : graph.MaximalChains()) {
    profile.chains.push_back(chain.ToString(db.schema()));
  }
  for (const CoappearGroup& group : graph.CoappearGroups()) {
    profile.coappear_groups.push_back(group.ToString(db.schema()));
  }
  for (const ResponseSpec& r : db.schema().responses) {
    profile.response_specs.push_back(
        r.response_table + " responds to " + r.post_table + " (user " +
        db.schema().user_table + ")");
  }
  return profile;
}

}  // namespace aspect
