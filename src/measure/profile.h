// Dataset profiling: a structural summary of a database - table sizes,
// per-edge fan-out statistics, the discovered reference chains and
// coappear groups, and sonSchema annotations. Used by aspect_cli
// (--profile) and handy when bringing a new empirical dataset into
// ASPECT (which properties exist to be enforced?).
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"

namespace aspect {

struct EdgeProfile {
  std::string child;        // "Comment.post"
  std::string parent;       // "Post"
  int64_t children = 0;     // live referencing tuples
  int64_t parents = 0;      // live referenced tuples
  int64_t parents_hit = 0;  // parents with at least one child
  int64_t max_fanout = 0;
  double mean_fanout = 0;   // children / parents
};

struct DatasetProfile {
  std::string name;
  int64_t total_tuples = 0;
  std::vector<std::pair<std::string, int64_t>> table_sizes;
  std::vector<EdgeProfile> edges;
  std::vector<std::string> chains;          // rendered maximal chains
  std::vector<std::string> coappear_groups; // rendered groups
  std::vector<std::string> response_specs;  // "Comment -> Post by User"

  /// Human-readable multi-line report.
  std::string ToString() const;
};

/// Profiles the database (structure from the schema, statistics from
/// the live tuples).
Result<DatasetProfile> ProfileDataset(const Database& db);

}  // namespace aspect
