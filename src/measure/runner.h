// Experiment runner: the shared harness behind every bench binary.
// One experiment = the paper's full pipeline (Sec. VI):
//
//   D_source --size-scaler--> D~0 --T_a, T_b, T_c (a permutation)--> D~
//
// with targets extracted from the ground-truth snapshot D_target,
// repaired onto the feasible set when the scaler missed the sizes
// (ReX), and errors measured with the paper's per-property measures
// plus the Q1-Q4 query errors.
#pragma once

#include <string>
#include <vector>

#include "aspect/coordinator.h"
#include "common/result.h"
#include "workload/blueprint.h"

namespace aspect {

struct ExperimentConfig {
  DatasetBlueprint blueprint;
  uint64_t seed = 1;
  /// Snapshot used as ASPECT's empirical input D.
  int source_snapshot = 1;
  /// Ground-truth snapshot D_i defining sizes and targets.
  int target_snapshot = 4;
  /// "Dscaler", "ReX" or "Rand".
  std::string scaler = "Dscaler";
  /// Tool order, e.g. {"coappear", "linear", "pairwise"}.
  std::vector<std::string> order = {"coappear", "linear", "pairwise"};
  int iterations = 1;
  bool validate = true;
  /// false = the No-Tweak baseline (size scaling only).
  bool tweak = true;
  /// Also evaluate the dataset's Q1-Q4 query errors.
  bool run_queries = false;
  /// Run access-disjoint tools of each pass concurrently (observation
  /// O1); deterministic for a fixed seed regardless of thread count.
  bool parallel_pass = false;
  /// Worker threads for the parallel pass (0 = hardware concurrency).
  int pass_threads = 0;
  /// Execution model of the parallel pass: zero-copy shared-database
  /// with write leases (the default), or legacy clone-and-merge.
  ParallelMode parallel_mode = ParallelMode::kShared;
  /// Preferred modifications per batched proposal (1 = no batching).
  int batch_size = 1;
  /// Autotune the batch size from the veto rate (--batch=auto).
  bool batch_auto = false;
  /// Worker threads for stage 1 — dataset generation, snapshot
  /// materialization, size scaling, and integrity verification
  /// (0 = hardware concurrency, 1 = inline). Results are bitwise
  /// identical at every setting (DESIGN.md §12).
  int gen_threads = 1;
  /// Scope-indexed validator routing for the tweak vote loops
  /// (bitwise identical to full voting; DESIGN.md §14).
  RouteVotes route_votes = RouteVotes::kOff;
};

/// The three property errors of Sec. VI-C1.
struct PropertyErrors {
  double linear = 0;
  double coappear = 0;
  double pairwise = 0;
};

struct ExperimentResult {
  PropertyErrors before;  // after size scaling, before tweaking
  PropertyErrors after;   // after the tweaking permutation
  /// Wall-clock seconds spent inside the tweaking algorithms.
  double tweak_seconds = 0;
  /// Stage-1 phase timings (seconds): growing + materializing the
  /// blueprint dataset, size-scaling it, and the post-scale/post-tweak
  /// referential-integrity checks.
  double generate_seconds = 0;
  double scale_seconds = 0;
  double verify_seconds = 0;
  /// Query name -> relative error, before and after tweaking
  /// (only filled when run_queries is set).
  std::vector<std::pair<std::string, double>> query_errors_before;
  std::vector<std::pair<std::string, double>> query_errors_after;
  RunReport report;
};

Result<ExperimentResult> RunExperiment(const ExperimentConfig& config);

/// The paper's six permutation labels over {linear, coappear,
/// pairwise}: "L-C-P", "L-P-C", "C-L-P", "C-P-L", "P-L-C", "P-C-L".
std::vector<std::string> SixPermutations();

/// Expands a label like "C-L-P" to tool names.
Result<std::vector<std::string>> OrderFromLabel(const std::string& label);

}  // namespace aspect
