#include "measure/runner.h"

#include <chrono>

#include "common/string_util.h"
#include "properties/coappear.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "query/queries.h"
#include "relational/integrity.h"
#include "scaler/sampling_scaler.h"
#include "scaler/size_scaler.h"
#include "scaler/upsizer.h"
#include "workload/generator.h"

namespace aspect {
namespace {

Result<std::unique_ptr<SizeScaler>> MakeScaler(const std::string& name) {
  if (name == "Dscaler") {
    return std::unique_ptr<SizeScaler>(new DscalerScaler());
  }
  if (name == "ReX") return std::unique_ptr<SizeScaler>(new RexScaler());
  if (name == "Rand") return std::unique_ptr<SizeScaler>(new RandScaler());
  if (name == "UpSizeR") {
    return std::unique_ptr<SizeScaler>(new UpSizerScaler());
  }
  if (name == "Sampling") {
    return std::unique_ptr<SizeScaler>(new SamplingScaler());
  }
  return Status::Invalid(StrFormat("unknown scaler '%s'", name.c_str()));
}

/// Binds measurement tools (targets from truth, repaired for the
/// database's actual sizes) and reads the three property errors.
Result<PropertyErrors> Measure(Database* db, const Database& truth) {
  PropertyErrors errors;
  LinearPropertyTool linear(truth.schema());
  CoappearPropertyTool coappear(truth.schema());
  PairwisePropertyTool pairwise(truth.schema());
  ASPECT_RETURN_NOT_OK(linear.SetTargetFromDataset(truth));
  ASPECT_RETURN_NOT_OK(coappear.SetTargetFromDataset(truth));
  ASPECT_RETURN_NOT_OK(pairwise.SetTargetFromDataset(truth));
  ASPECT_RETURN_NOT_OK(linear.Bind(db));
  ASPECT_RETURN_NOT_OK(linear.RepairTarget());
  errors.linear = linear.Error();
  linear.Unbind();
  ASPECT_RETURN_NOT_OK(coappear.Bind(db));
  ASPECT_RETURN_NOT_OK(coappear.RepairTarget());
  errors.coappear = coappear.Error();
  coappear.Unbind();
  ASPECT_RETURN_NOT_OK(pairwise.Bind(db));
  ASPECT_RETURN_NOT_OK(pairwise.RepairTarget());
  errors.pairwise = pairwise.Error();
  pairwise.Unbind();
  return errors;
}

Result<std::vector<std::pair<std::string, double>>> MeasureQueries(
    const Schema& schema, const Database& truth, const Database& scaled) {
  ASPECT_ASSIGN_OR_RETURN(std::vector<NamedQuery> suite,
                          QuerySuiteFor(schema));
  std::vector<std::pair<std::string, double>> out;
  for (const NamedQuery& q : suite) {
    ASPECT_ASSIGN_OR_RETURN(const double err, QueryError(q, truth, scaled));
    out.emplace_back(q.name, err);
  }
  return out;
}

}  // namespace

std::vector<std::string> SixPermutations() {
  return {"L-C-P", "L-P-C", "C-L-P", "C-P-L", "P-L-C", "P-C-L"};
}

Result<std::vector<std::string>> OrderFromLabel(const std::string& label) {
  std::vector<std::string> order;
  for (const char c : label) {
    switch (c) {
      case 'L':
        order.push_back("linear");
        break;
      case 'C':
        order.push_back("coappear");
        break;
      case 'P':
        order.push_back("pairwise");
        break;
      case '-':
        break;
      default:
        return Status::Invalid(
            StrFormat("bad permutation label '%s'", label.c_str()));
    }
  }
  if (order.size() != 3) {
    return Status::Invalid(
        StrFormat("bad permutation label '%s'", label.c_str()));
  }
  return order;
}

Result<ExperimentResult> RunExperiment(const ExperimentConfig& config) {
  // Reject nonsense thread/batch knobs up front with a field-named
  // message instead of silently clamping (or crashing) deep inside a
  // phase; the CLI mirrors these checks at flag-parse time.
  if (config.gen_threads < 0) {
    return Status::Invalid(StrFormat(
        "ExperimentConfig::gen_threads must be >= 0 "
        "(0 = hardware concurrency), got %d",
        config.gen_threads));
  }
  if (config.pass_threads < 0) {
    return Status::Invalid(StrFormat(
        "ExperimentConfig::pass_threads must be >= 0 "
        "(0 = hardware concurrency), got %d",
        config.pass_threads));
  }
  if (config.batch_size < 1) {
    return Status::Invalid(
        StrFormat("ExperimentConfig::batch_size must be >= 1, got %d",
                  config.batch_size));
  }
  if (config.iterations < 1) {
    return Status::Invalid(
        StrFormat("ExperimentConfig::iterations must be >= 1, got %d",
                  config.iterations));
  }
  ExperimentResult result;
  const GenOptions gen{config.gen_threads};
  IntegrityOptions verify;
  verify.threads = config.gen_threads;

  const auto gen_start = std::chrono::steady_clock::now();
  ASPECT_ASSIGN_OR_RETURN(
      SnapshotSet snapshots,
      GenerateDataset(config.blueprint, config.seed, gen));
  ASPECT_ASSIGN_OR_RETURN(
      std::unique_ptr<Database> source,
      snapshots.Materialize(config.source_snapshot, gen));
  ASPECT_ASSIGN_OR_RETURN(
      std::unique_ptr<Database> truth,
      snapshots.Materialize(config.target_snapshot, gen));
  result.generate_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    gen_start)
          .count();

  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<SizeScaler> scaler,
                          MakeScaler(config.scaler));
  const auto scale_start = std::chrono::steady_clock::now();
  ASPECT_ASSIGN_OR_RETURN(
      std::unique_ptr<Database> scaled,
      scaler->Scale(*source,
                    snapshots.SnapshotSizes(config.target_snapshot),
                    config.seed, gen));
  result.scale_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    scale_start)
          .count();

  const auto verify_start = std::chrono::steady_clock::now();
  ASPECT_RETURN_NOT_OK(CheckIntegrity(*scaled, verify));
  result.verify_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    verify_start)
          .count();
  ASPECT_ASSIGN_OR_RETURN(result.before, Measure(scaled.get(), *truth));
  if (config.run_queries) {
    ASPECT_ASSIGN_OR_RETURN(
        result.query_errors_before,
        MeasureQueries(truth->schema(), *truth, *scaled));
  }
  if (!config.tweak) {
    result.after = result.before;
    result.query_errors_after = result.query_errors_before;
    return result;
  }

  Coordinator coordinator;
  coordinator.AddTool(
      std::make_unique<LinearPropertyTool>(truth->schema()));
  coordinator.AddTool(
      std::make_unique<CoappearPropertyTool>(truth->schema()));
  coordinator.AddTool(
      std::make_unique<PairwisePropertyTool>(truth->schema()));
  ASPECT_RETURN_NOT_OK(coordinator.SetTargetsFromDataset(*truth));
  std::vector<int> order;
  for (const std::string& name : config.order) {
    const int id = coordinator.FindTool(name);
    if (id < 0) {
      return Status::Invalid(StrFormat("unknown tool '%s'", name.c_str()));
    }
    order.push_back(id);
  }
  CoordinatorOptions opts;
  opts.iterations = config.iterations;
  opts.validate = config.validate;
  opts.seed = config.seed + 1;
  opts.parallel_pass = config.parallel_pass;
  opts.pass_threads = config.pass_threads;
  opts.parallel_mode = config.parallel_mode;
  opts.batch_size = config.batch_size;
  opts.batch_auto = config.batch_auto;
  opts.route_votes = config.route_votes;
  ASPECT_ASSIGN_OR_RETURN(result.report,
                          coordinator.Run(scaled.get(), order, opts));
  for (const ToolReport& step : result.report.steps) {
    result.tweak_seconds += step.seconds;
  }
  const auto recheck_start = std::chrono::steady_clock::now();
  ASPECT_RETURN_NOT_OK(CheckIntegrity(*scaled, verify));
  result.verify_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    recheck_start)
          .count();
  ASPECT_ASSIGN_OR_RETURN(result.after, Measure(scaled.get(), *truth));
  if (config.run_queries) {
    ASPECT_ASSIGN_OR_RETURN(
        result.query_errors_after,
        MeasureQueries(truth->schema(), *truth, *scaled));
  }
  return result;
}

}  // namespace aspect
