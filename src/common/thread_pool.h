// ThreadPool: a small fixed-size worker pool for embarrassingly
// parallel library work (the coordinator's order search runs each
// candidate permutation on its own snapshot, Sec. VIII-A).
//
// Tasks are plain std::function<void()>; error propagation is the
// caller's job (collect per-task Status into a pre-sized vector and
// inspect it after Wait(), so failures are reported in a deterministic
// order regardless of scheduling).
//
// All shared state is guarded by mu_ and annotated for Clang's
// -Wthread-safety analysis (common/thread_annotations.h).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aspect {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Safe to call from any thread, including from a
  /// running task.
  void Submit(std::function<void()> task) ASPECT_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished running.
  void Wait() ASPECT_EXCLUDES(mu_);

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static int HardwareThreads();

 private:
  void WorkerLoop() ASPECT_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ ASPECT_GUARDED_BY(mu_);
  // Queued plus currently-running tasks.
  size_t in_flight_ ASPECT_GUARDED_BY(mu_) = 0;
  bool stop_ ASPECT_GUARDED_BY(mu_) = false;
  // Written only by the constructor, before any worker can observe it.
  std::vector<std::thread> workers_;
};

}  // namespace aspect
