// ThreadPool: a small fixed-size worker pool for embarrassingly
// parallel library work (the coordinator's order search runs each
// candidate permutation on its own snapshot, Sec. VIII-A).
//
// Tasks are plain std::function<void()>; error propagation is the
// caller's job (collect per-task Status into a pre-sized vector and
// inspect it after Wait(), so failures are reported in a deterministic
// order regardless of scheduling).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aspect {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Safe to call from any thread, including from a
  /// running task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void Wait();

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  // Queued plus currently-running tasks.
  size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace aspect
