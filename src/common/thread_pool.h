// ThreadPool: a small fixed-size worker pool for embarrassingly
// parallel library work (the coordinator's order search runs each
// candidate permutation on its own snapshot, Sec. VIII-A).
//
// Tasks are plain std::function<void()>; error propagation is the
// caller's job (collect per-task Status into a pre-sized vector and
// inspect it after Wait(), so failures are reported in a deterministic
// order regardless of scheduling).
//
// All shared state is guarded by mu_ and annotated for Clang's
// -Wthread-safety analysis (common/thread_annotations.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aspect {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Safe to call from any thread, including from a
  /// running task.
  void Submit(std::function<void()> task) ASPECT_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished running.
  void Wait() ASPECT_EXCLUDES(mu_);

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static int HardwareThreads();

  /// Process-wide shared pool, created lazily on first use and grown
  /// (drained, joined, and replaced) whenever a caller asks for more
  /// workers than it has — phases that request fewer simply leave the
  /// extra workers idle, which cannot change any output (every sharded
  /// producer is thread-count invariant by construction, DESIGN.md §12).
  /// The pool is intentionally never destroyed: it is reachable from a
  /// function-local static, so parked workers can never race static
  /// destruction at process exit (shutdown-order safe) and leak
  /// checkers stay quiet. Phases use the pool strictly one after
  /// another; Wait() waits for every submitted task, so two truly
  /// concurrent client phases would serialize against each other.
  ///
  /// Returns nullptr when called from a worker thread of any pool:
  /// a nested Submit+Wait on the shared pool would deadlock (the
  /// waiting task itself counts as in flight), so nested phases must
  /// run inline — every call site already treats a null pool as "run
  /// serially".
  static ThreadPool* Shared(int num_threads);

  /// True when the calling thread is a worker of any ThreadPool.
  static bool OnWorkerThread();

  /// Total pools this process has constructed — a test hook: two
  /// consecutive phases that both use Shared() must not move it.
  static int64_t PoolsCreated();

 private:
  void WorkerLoop() ASPECT_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ ASPECT_GUARDED_BY(mu_);
  // Queued plus currently-running tasks.
  size_t in_flight_ ASPECT_GUARDED_BY(mu_) = 0;
  bool stop_ ASPECT_GUARDED_BY(mu_) = false;
  // Written only by the constructor, before any worker can observe it.
  std::vector<std::thread> workers_;
};

}  // namespace aspect
