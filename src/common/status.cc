#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace aspect {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kKeyError:
      return "Key error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kValidationFailed:
      return "Validation failed";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

void Status::Check() const {
  if (ok()) return;
  std::fprintf(stderr, "Status check failed: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace aspect
