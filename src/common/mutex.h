// Annotated mutex primitives: thin wrappers over std::mutex /
// std::condition_variable_any that carry Clang thread-safety
// capability attributes (common/thread_annotations.h), so
// -Wthread-safety can verify GUARDED_BY contracts. libstdc++'s
// std::mutex has no such attributes; wrapping is the portable way to
// make the analysis see the lock.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace aspect {

/// A std::mutex the thread-safety analysis can track. Satisfies
/// BasicLockable, so std::condition_variable_any can wait on it.
class ASPECT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ASPECT_ACQUIRE() { mu_.lock(); }
  void unlock() ASPECT_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex (the annotated std::lock_guard analogue).
class ASPECT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ASPECT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ASPECT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() atomically releases
/// and reacquires the lock, so from the caller's point of view the
/// capability is held across the call — which is exactly what the
/// REQUIRES annotation states; the internal unlock/relock is opaque to
/// the analysis (it happens inside the standard library).
class CondVar {
 public:
  /// Blocks until notified AND pred() holds. Caller must hold `mu`.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) ASPECT_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace aspect
