// Clang thread-safety annotation macros (-Wthread-safety). Under any
// other compiler (or Clang without the attribute) every macro expands
// to nothing, so annotated code stays portable; the CI thread-safety
// job builds with clang++ -Wthread-safety -Werror to enforce them.
//
// Conventions (see DESIGN.md section 9):
//   - Every mutex-protected member is declared ASPECT_GUARDED_BY(mu_).
//   - Private helpers that assume the caller holds the lock are
//     annotated ASPECT_REQUIRES(mu_), never documented in prose only.
//   - Prefer the annotated aspect::Mutex / aspect::MutexLock wrappers
//     (common/mutex.h) over raw std::mutex: libstdc++'s std::mutex
//     carries no capability attributes, so the analysis cannot track
//     it.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define ASPECT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ASPECT_THREAD_ANNOTATION
#define ASPECT_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (a lock).
#define ASPECT_CAPABILITY(x) ASPECT_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define ASPECT_SCOPED_CAPABILITY ASPECT_THREAD_ANNOTATION(scoped_lockable)

/// The member may only be accessed while holding the given capability.
#define ASPECT_GUARDED_BY(x) ASPECT_THREAD_ANNOTATION(guarded_by(x))

/// The pointed-to data may only be accessed while holding the
/// capability (the pointer itself is unguarded).
#define ASPECT_PT_GUARDED_BY(x) ASPECT_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the capabilities.
#define ASPECT_REQUIRES(...) \
  ASPECT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the capability and does not release it.
#define ASPECT_ACQUIRE(...) \
  ASPECT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the capability (which must be held).
#define ASPECT_RELEASE(...) \
  ASPECT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function may only be called while NOT holding the capabilities.
#define ASPECT_EXCLUDES(...) \
  ASPECT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: the function body is not analyzed. Reserve for
/// constructs the analysis cannot model (condition-variable waits).
#define ASPECT_NO_THREAD_SAFETY_ANALYSIS \
  ASPECT_THREAD_ANNOTATION(no_thread_safety_analysis)
