// Row-shard partitioning for the parallel columnar stage-1 pipeline
// (synthetic generation, size scaling, integrity verification —
// DESIGN.md Sec. 12).
//
// The output of a sharded producer must be bitwise identical at every
// thread count, so shard boundaries are a pure function of the row
// count (a fixed grain, never derived from the thread count) and each
// shard derives its own RNG stream from a stable label (Rng::Fork).
// Threads only decide how many shards run at once.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace aspect {

class ThreadPool;

/// Options for the stage-1 generation/scaling/verification paths.
struct GenOptions {
  /// Worker threads for row-shard execution: 1 (default) runs the
  /// shards inline on the caller — still the sharded algorithm, so
  /// the produced bytes are identical at every setting — and 0 means
  /// one per hardware thread.
  int threads = 1;
};

/// Fixed shard grain in rows. Deliberately a constant: the shard
/// decomposition (and therefore the per-shard RNG stream tree) must
/// depend only on the row count for thread-count-independent output.
inline constexpr int64_t kGenShardRows = 2048;

/// Stream label for the serial side-channel of a sharded producer
/// (degree-sequence sampling, candidate shuffles, top-up loops):
/// far outside the dense [0, num_shards) label range of the row
/// shards, so the two never collide in one table's stream tree.
inline constexpr uint64_t kAuxStreamLabel = 0xA5FEC7'5E71A1ull;

/// One contiguous row range [begin, end) plus its stable index — the
/// shard's position in the decomposition and its RNG fork label.
struct RowShard {
  int64_t begin = 0;
  int64_t end = 0;
  uint64_t index = 0;
};

/// GenOptions::threads resolution: 0 -> hardware concurrency,
/// anything else clamped to at least 1.
int ResolveGenThreads(int threads);

/// Splits [0, rows) into fixed-grain shards (empty for rows <= 0).
std::vector<RowShard> PartitionRows(int64_t rows,
                                    int64_t grain = kGenShardRows);

/// Runs `fn` over every shard: inline in shard order when `pool` is
/// null, otherwise concurrently on the pool (blocking until every
/// shard has finished). `fn` must confine its writes to shard-private
/// state (its own staging block, its own status slot); callers splice
/// the per-shard results together in shard order afterwards.
void RunShards(const std::vector<RowShard>& shards, ThreadPool* pool,
               const std::function<void(const RowShard&)>& fn);

}  // namespace aspect
