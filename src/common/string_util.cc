#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace aspect {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                          s[b] == '\n')) {
    ++b;
  }
  size_t e = s.size();
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace aspect
