#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace aspect {
namespace {

std::atomic<int64_t> g_pools_created{0};
thread_local bool tls_on_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  g_pools_created.fetch_add(1, std::memory_order_relaxed);
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    all_done_.Wait(mu_, [this]() ASPECT_REQUIRES(mu_) {
      return in_flight_ == 0;
    });
    stop_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  all_done_.Wait(mu_, [this]() ASPECT_REQUIRES(mu_) {
    return in_flight_ == 0;
  });
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool* ThreadPool::Shared(int num_threads) {
  if (OnWorkerThread()) return nullptr;
  const int want = std::max(1, num_threads);
  // Both the guard and the pool are heap-allocated and reachable only
  // through function-local statics: never destroyed (see the header's
  // shutdown-order note), never reported as leaked.
  static Mutex* mu = new Mutex;
  static ThreadPool** slot = new ThreadPool*(nullptr);
  MutexLock lock(*mu);
  if (*slot == nullptr || (*slot)->num_threads() < want) {
    // Growing replaces the pool; the old destructor drains and joins.
    // Phases use the shared pool sequentially, so nothing else can be
    // holding the old pointer across this call.
    delete *slot;
    *slot = new ThreadPool(want);
  }
  return *slot;
}

bool ThreadPool::OnWorkerThread() { return tls_on_worker; }

int64_t ThreadPool::PoolsCreated() {
  return g_pools_created.load(std::memory_order_relaxed);
}

void ThreadPool::WorkerLoop() {
  tls_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      work_available_.Wait(mu_, [this]() ASPECT_REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace aspect
