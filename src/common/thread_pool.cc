#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace aspect {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    all_done_.Wait(mu_, [this]() ASPECT_REQUIRES(mu_) {
      return in_flight_ == 0;
    });
    stop_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  all_done_.Wait(mu_, [this]() ASPECT_REQUIRES(mu_) {
    return in_flight_ == 0;
  });
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      work_available_.Wait(mu_, [this]() ASPECT_REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace aspect
