// Status: error propagation without exceptions, in the style of
// Arrow/RocksDB. Functions that can fail return Status (or Result<T>,
// see result.h); callers propagate with ASPECT_RETURN_NOT_OK.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace aspect {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kKeyError = 2,         // lookup of a table/column/tuple that does not exist
  kOutOfRange = 3,       // index or id out of range
  kNotImplemented = 4,
  kIoError = 5,
  kInfeasible = 6,       // a target property violates its necessary conditions
  kValidationFailed = 7, // a proposed modification was vetoed by validators
  kInternal = 8,
};

/// Returns a human-readable name for `code` ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: OK, or a code plus message.
///
/// An OK Status carries no allocation; error states allocate a small
/// state block. Status is cheap to move and to copy-on-OK.
class Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_)
                            : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status ValidationFailed(std::string msg) {
    return Status(StatusCode::kValidationFailed, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  bool IsInfeasible() const { return code() == StatusCode::kInfeasible; }
  bool IsValidationFailed() const {
    return code() == StatusCode::kValidationFailed;
  }

  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Use only in
  /// tests, benches and examples, never in library code.
  void Check() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& st) {
  return os << st.ToString();
}

}  // namespace aspect
