#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace aspect {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0) return 0;
  if (mean < 64.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double prod = 1.0;
    int64_t n = -1;
    do {
      ++n;
      prod *= UniformDouble();
    } while (prod > limit);
    return n;
  }
  // Normal approximation with continuity correction for large means.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 <= 0) u1 = 1e-300;
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double v = mean + std::sqrt(mean) * z + 0.5;
  return v < 0 ? 0 : static_cast<int64_t>(v);
}

int64_t Rng::Geometric(double p) {
  assert(p > 0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = UniformDouble();
  if (u <= 0) u = 1e-300;
  return static_cast<int64_t>(std::log(u) / std::log1p(-p));
}

int64_t Rng::Zipf(int64_t n, double s) {
  assert(n >= 1);
  if (n == 1) return 1;
  if (s <= 0) return UniformInt(1, n);
  // Rejection sampling from the continuous envelope g(x) ~ x^-s on
  // [0.5, n + 0.5]: invert the envelope CDF, round to the nearest rank
  // k, and accept with probability (k^-s x^s) / M where
  // M = ((k + 0.5) / k)^s bounds the ratio over the rank's interval.
  const double a = 0.5;
  const double b = static_cast<double>(n) + 0.5;
  for (;;) {
    const double u = UniformDouble();
    double x;
    if (s == 1.0) {
      x = a * std::pow(b / a, u);
    } else {
      const double a1 = std::pow(a, 1.0 - s);
      const double b1 = std::pow(b, 1.0 - s);
      x = std::pow(u * (b1 - a1) + a1, 1.0 / (1.0 - s));
    }
    const int64_t k = static_cast<int64_t>(x + 0.5);
    if (k < 1 || k > n) continue;
    const double ratio = std::pow(x / (static_cast<double>(k) + 0.5), s);
    if (UniformDouble() <= ratio) return k;
  }
}

Result<size_t> Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    if (!(w >= 0)) {  // negative or NaN
      return Status::Invalid("WeightedIndex: negative or NaN weight");
    }
    total += w;
  }
  if (!(total > 0)) {
    return Status::Invalid("WeightedIndex: weights sum to zero");
  }
  double r = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() {
  Rng child(0);
  for (auto& s : child.s_) s = Next();
  return child;
}

Rng Rng::Fork(uint64_t label) const {
  Rng child(0);
  // Each child word runs SplitMix64 over a mix of the parent word, the
  // label, and the previously derived word — a counter-mode derivation
  // that reads (never advances) the parent state.
  uint64_t carry = label;
  for (int i = 0; i < 4; ++i) {
    uint64_t sm = s_[i] ^ (carry + 0x9E3779B97F4A7C15ull *
                                       (static_cast<uint64_t>(i) + 1));
    child.s_[i] = SplitMix64(&sm);
    carry = child.s_[i];
  }
  // xoshiro256** cannot leave the all-zero state; re-seed in the
  // astronomically unlikely event the derivation lands there.
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0) {
    child.Seed(label);
  }
  return child;
}

}  // namespace aspect
