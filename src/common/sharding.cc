#include "common/sharding.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace aspect {

int ResolveGenThreads(int threads) {
  if (threads == 0) return ThreadPool::HardwareThreads();
  return std::max(1, threads);
}

std::vector<RowShard> PartitionRows(int64_t rows, int64_t grain) {
  std::vector<RowShard> shards;
  if (rows <= 0) return shards;
  grain = std::max<int64_t>(1, grain);
  shards.reserve(static_cast<size_t>((rows + grain - 1) / grain));
  for (int64_t begin = 0; begin < rows; begin += grain) {
    RowShard shard;
    shard.begin = begin;
    shard.end = std::min(rows, begin + grain);
    shard.index = static_cast<uint64_t>(begin / grain);
    shards.push_back(shard);
  }
  return shards;
}

void RunShards(const std::vector<RowShard>& shards, ThreadPool* pool,
               const std::function<void(const RowShard&)>& fn) {
  if (pool == nullptr || shards.size() <= 1) {
    for (const RowShard& shard : shards) fn(shard);
    return;
  }
  for (const RowShard& shard : shards) {
    pool->Submit([&fn, &shard] { fn(shard); });
  }
  pool->Wait();
}

}  // namespace aspect
