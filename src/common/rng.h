// Deterministic pseudo-random number generation for the whole library.
//
// Every randomized component (generators, scalers, tweaking algorithms)
// takes an explicit Rng or seed, so experiments and tests are exactly
// reproducible. The engine is xoshiro256**, seeded through SplitMix64.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"

namespace aspect {

/// xoshiro256** PRNG with distribution helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0xA5FEC7u) { Seed(seed); }

  /// Re-seeds the generator (SplitMix64 state expansion).
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Poisson-distributed count with the given mean (Knuth for small
  /// means, normal approximation above 64).
  int64_t Poisson(double mean);

  /// Geometric number of failures before first success, p in (0, 1].
  int64_t Geometric(double p);

  /// Zipf-distributed rank in [1, n] with exponent `s` (rejection
  /// sampling, correct for s >= 0; s = 0 degenerates to uniform).
  int64_t Zipf(int64_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Linear scan; intended for small weight vectors. Invalid when the
  /// weights are empty, contain a negative/NaN entry, or sum to zero
  /// (previously this silently returned index 0 in release builds).
  Result<size_t> WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Forks an independent child generator (for parallel-safe use).
  /// Consumes four outputs of this generator to seed the child.
  Rng Fork();

  /// Counter-based splittable stream: derives the child generator from
  /// this generator's *current state* and `label` without consuming any
  /// output, so any set of labels can be forked in any order — or
  /// concurrently from a shared const parent — and each label always
  /// yields the same stream. Distinct labels yield decorrelated streams
  /// (SplitMix64 mixing of state ⊕ label). This is what makes sharded
  /// row generation bitwise-reproducible at every thread count.
  Rng Fork(uint64_t label) const;

 private:
  uint64_t s_[4];
};

}  // namespace aspect
