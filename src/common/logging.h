// Minimal leveled logger used by long-running benches and the
// coordinator. Defaults to WARNING so unit tests stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace aspect {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace aspect

#define ASPECT_LOG(level)                                              \
  ::aspect::internal::LogMessage(::aspect::LogLevel::k##level, __FILE__, \
                                 __LINE__)
