#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace aspect {
namespace {
// Atomic so worker threads (parallel order search) can log while the
// main thread adjusts the level.
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= static_cast<int>(g_level.load())) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace aspect
