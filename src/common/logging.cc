#include "common/logging.h"

#include <cstdio>

namespace aspect {
namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= static_cast<int>(g_level)) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace aspect
