// Result<T>: a value or an error Status, in the style of arrow::Result.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace aspect {

/// Holds either a successfully computed T or the Status describing why
/// the computation failed. A Result constructed from an OK Status is a
/// programming error and is normalized to an Internal error.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : repr_(std::move(status)) {  // NOLINT implicit
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Moves the value out, aborting the process if this Result holds an
  /// error. Use only in tests, benches and examples.
  T ValueOrAbort() && {
    status().Check();
    return std::get<T>(std::move(repr_));
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace aspect

/// Propagates a non-OK Status from an expression to the caller.
#define ASPECT_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::aspect::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

#define ASPECT_CONCAT_IMPL(a, b) a##b
#define ASPECT_CONCAT(a, b) ASPECT_CONCAT_IMPL(a, b)

/// Evaluates an expression returning Result<T>; on success binds the
/// value to `lhs`, otherwise returns the error Status to the caller.
#define ASPECT_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  ASPECT_ASSIGN_OR_RETURN_IMPL(ASPECT_CONCAT(_res_, __LINE__), lhs, rexpr)

#define ASPECT_ASSIGN_OR_RETURN_IMPL(res, lhs, rexpr) \
  auto res = (rexpr);                                 \
  if (!res.ok()) return res.status();                 \
  lhs = std::move(res).ValueOrDie()
