// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aspect {

/// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Splits `s` on the single-character delimiter, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace aspect
