// Coordinator: ASPECT's stage-2 driver (Fig. 2 / Sec. III-B). Applies
// the registered tweaking tools to a scaled database in a chosen order,
// routing every proposed modification through the validators of the
// tools applied earlier, and optionally iterating the whole permutation
// several times (Sec. VII-C).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "aspect/access_monitor.h"
#include "aspect/property_tool.h"
#include "common/result.h"
#include "common/rng.h"

namespace aspect {

struct CoordinatorOptions {
  /// Number of full passes over the tool order (Sec. VII-C shows 2-3
  /// passes drive residual errors to ~0.02).
  int iterations = 1;
  /// When positive, stop iterating early once a full pass improves the
  /// summed error by less than this absolute amount ("the room for
  /// improvement becomes limited", Sec. VII-C).
  double converge_epsilon = 0.0;
  /// If false, validators never vote (ablation: raw sequential tweak).
  bool validate = true;
  /// Safety net beyond the paper: snapshot the database before each
  /// tool and roll the step back if it left the summed error of the
  /// already-enforced properties plus its own *higher* than before
  /// (O4's accepted-error policy, but bounded). Costs one deep copy
  /// per step.
  bool rollback_on_regression = false;
  /// Repair each tool's target onto its feasible set before tweaking
  /// (needed for ReX-scaled data, Sec. VI-B).
  bool repair_targets = true;
  /// RNG seed for all tweaking randomness.
  uint64_t seed = 1;
};

/// Per-tool outcome of one coordinator run.
struct ToolReport {
  std::string tool;
  double error_before = 0;
  double error_after = 0;
  int64_t applied = 0;
  int64_t vetoed = 0;
  int64_t forced = 0;
  double seconds = 0;
};

struct RunReport {
  /// One entry per (iteration, tool-in-order) step, in execution order.
  std::vector<ToolReport> steps;
  /// Final error per registered tool (tool registration order).
  std::vector<double> final_errors;
  double total_seconds = 0;

  std::string ToString() const;
};

class Coordinator {
 public:
  /// Registers a tool; returns its id (registration order).
  int AddTool(std::unique_ptr<PropertyTool> tool);

  int num_tools() const { return static_cast<int>(tools_.size()); }
  PropertyTool* tool(int id) { return tools_[static_cast<size_t>(id)].get(); }
  const PropertyTool* tool(int id) const {
    return tools_[static_cast<size_t>(id)].get();
  }

  /// Finds a tool id by name (-1 if absent).
  int FindTool(const std::string& name) const;

  /// Sets every tool's target from the ground-truth dataset.
  Status SetTargetsFromDataset(const Database& ground_truth);

  /// Runs the tools over `db` in the given order (a permutation of a
  /// subset of tool ids). Tools are bound to `db` for the duration and
  /// unbound afterwards.
  Result<RunReport> Run(Database* db, const std::vector<int>& order,
                        const CoordinatorOptions& options);

  /// The access monitor of the last Run (overlap analysis, O2).
  const AccessMonitor* last_monitor() const { return monitor_.get(); }

  /// Outcome of trying one tool order on a scratch copy.
  struct OrderOutcome {
    std::vector<int> order;
    double total_error = 0;  // summed final error over the order's tools
    RunReport report;
  };

  /// The pragmatic answer to the Property Tweaking Order Problem
  /// (Sec. VIII-A): runs every candidate order on a clone of `db`
  /// (leaving `db` untouched) and reports the outcomes sorted by total
  /// final error, best first.
  Result<std::vector<OrderOutcome>> CompareOrders(
      const Database& db, const std::vector<std::vector<int>>& orders,
      const CoordinatorOptions& options);

 private:
  std::vector<std::unique_ptr<PropertyTool>> tools_;
  std::unique_ptr<AccessMonitor> monitor_;
};

/// All 6 orderings of three tool ids, in the paper's naming scheme
/// (e.g. "C-L-P" = coappear, then linear, then pairwise). The label
/// uses the first letter of each tool's name, upper-cased.
std::vector<std::pair<std::string, std::vector<int>>> AllPermutations(
    const Coordinator& coordinator, const std::vector<int>& tool_ids);

}  // namespace aspect
