// Coordinator: ASPECT's stage-2 driver (Fig. 2 / Sec. III-B). Applies
// the registered tweaking tools to a scaled database in a chosen order,
// routing every proposed modification through the validators of the
// tools applied earlier, and optionally iterating the whole permutation
// several times (Sec. VII-C).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/scope_checker.h"
#include "aspect/access_monitor.h"
#include "aspect/property_tool.h"
#include "aspect/vote_index.h"
#include "common/result.h"
#include "common/rng.h"

namespace aspect {

/// Execution model of the O1-parallel pass (options.parallel_pass).
enum class ParallelMode : int {
  /// Clone-and-merge: each group task runs on a partial clone of the
  /// main database (Database::CloneAtoms over its declared atoms) and
  /// the written columns are move-merged back after the barrier. The
  /// legacy model; pays a clone per task and a merge per group.
  kClone = 0,
  /// Shared-database: the group partitions the members' certified
  /// write scopes into per-(table, column) write leases on the main
  /// database and the tasks tweak the shared tables directly. No
  /// clone, no merge; per-thread listener routing keeps each tool's
  /// statistics private, and per-lease modlog segments splice in group
  /// order, so output stays bitwise identical to serial (DESIGN.md
  /// Sec. 10). The default.
  kShared = 1,
};

/// How rollback_on_regression restores the pre-step state.
enum class RollbackMode : int {
  /// Deep-copy the database before every tool step and restore the
  /// copy on regression. O(database) per step.
  kClone = 0,
  /// Record an undo log (ModificationLog pre-images) during the step
  /// and revert it in reverse on regression. O(modifications in the
  /// step) per step — the default.
  kUndoLog = 1,
};

struct CoordinatorOptions {
  /// Number of full passes over the tool order (Sec. VII-C shows 2-3
  /// passes drive residual errors to ~0.02).
  int iterations = 1;
  /// When positive, stop iterating early once a full pass improves the
  /// summed error by less than this absolute amount ("the room for
  /// improvement becomes limited", Sec. VII-C).
  double converge_epsilon = 0.0;
  /// If false, validators never vote (ablation: raw sequential tweak).
  bool validate = true;
  /// Safety net beyond the paper: guard each tool step and roll it
  /// back if it left the summed error of the already-enforced
  /// properties plus its own *higher* than before (O4's accepted-error
  /// policy, but bounded). Cost depends on rollback_mode.
  bool rollback_on_regression = false;
  /// Restore strategy for rollback_on_regression. kUndoLog reverts the
  /// step's recorded modifications in reverse (cheap); kClone restores
  /// a per-step deep copy. Both restore byte-identical state.
  RollbackMode rollback_mode = RollbackMode::kUndoLog;
  /// Worker threads for CompareOrders (one candidate order per task):
  /// 0 = one per hardware thread, 1 = serial. Rankings and errors are
  /// identical for every thread count: each candidate runs on its own
  /// database snapshot with its own cloned tools, seeded only by
  /// `seed`.
  int order_search_threads = 0;
  /// Repair each tool's target onto its feasible set before tweaking
  /// (needed for ReX-scaled data, Sec. VI-B).
  bool repair_targets = true;
  /// RNG seed for all tweaking randomness.
  uint64_t seed = 1;
  /// Run each pass O1-parallel: consecutive order positions whose
  /// declared access scopes provably cannot disturb each other — and
  /// whose enforced validators' votes are provably zero — are tweaked
  /// concurrently on database clones, with the written columns merged
  /// back afterwards. Falls back to serial steps when scopes are
  /// undeclared (the AccessMonitor's observed scope covers writes
  /// only, which cannot prove the tool's reads safe), scopes overlap,
  /// or rollback_on_regression is on. For a fixed seed the results are
  /// identical for every thread count; see DESIGN.md for the
  /// determinism argument.
  bool parallel_pass = false;
  /// Worker threads for parallel_pass groups: 0 = one per hardware
  /// thread, 1 = run the same grouped schedule on the calling thread.
  int pass_threads = 0;
  /// Execution model for parallel_pass groups; see ParallelMode. Both
  /// modes produce bitwise-identical results; kShared eliminates the
  /// per-task clone and per-group merge.
  ParallelMode parallel_mode = ParallelMode::kShared;
  /// Batch-size hint handed to tools via TweakContext::batch_hint():
  /// how many modifications to group per proposal. 1 (the default)
  /// keeps the historical one-modification-at-a-time pipeline
  /// bit-identical.
  int batch_size = 1;
  /// Veto-rate-driven batch-size autotuning (the CLI's --batch=auto):
  /// each step starts from batch_size and TweakContext grows the hint
  /// on sustained accepted proposals and shrinks it on vetoes. The
  /// size a step settled on is reported in ToolReport::batch_final.
  /// Deterministic across serial/clone/shared execution: parallel
  /// group members provably receive zero vetoes, so their hint follows
  /// the same trajectory in every mode.
  bool batch_auto = false;
  /// Scope-conformance checking (src/analysis): kWarn / kStrict
  /// install access probes around every Tweak and diff each tool's
  /// observed read+write footprint — including per-tuple row intervals
  /// — against its DeclaredScope(); a caught tool's declaration is
  /// distrusted for the rest of the run (it falls back to the observed
  /// scope, i.e. the serial path). kStrict additionally fails the run
  /// if any violation was recorded. kSampled runs only the cheap
  /// sampled lease canary on parallel tasks (the release-build default
  /// behaviour, selectable explicitly for CI). kOff (the default)
  /// installs no footprint probes; release builds still arm the
  /// sampled canary.
  analysis::ScopeCheckMode check_scopes = analysis::ScopeCheckMode::kOff;
  /// Scope-indexed validator routing (the CLI's --route-votes): serial
  /// steps consult a VoteIndex over the enforced validators' certified
  /// scopes — the same certification the lease partitioner trusts —
  /// and proposals consult only the validators their write footprint
  /// could disturb. Every skipped vote is provably zero, so
  /// results are bitwise identical to full voting; the sampled pruning
  /// audit (kOn: debug always / release 1-in-64; kAudit: always)
  /// enforces that claim at runtime and a caught validator is
  /// distrusted — full voting and the serial path — for the rest of
  /// the run. kOff (the default) keeps the legacy everyone-votes loop.
  /// The index is maintained *incrementally* across the run: built
  /// once, grown by one validator when a tool is first enforced, and
  /// degraded in place when a distrust event latches — per-step setup
  /// is O(change), not O(fleet) (debug builds cross-check against a
  /// from-scratch rebuild every step).
  RouteVotes route_votes = RouteVotes::kOff;
  /// Testing / benchmarking escape hatch: resolve every enforced scope
  /// and rebuild the routing index from scratch on each serial step
  /// (the pre-incremental behaviour) instead of maintaining it
  /// incrementally. Voting results are bitwise identical either way;
  /// only RunReport::route_index_build_seconds differs. The bench's
  /// route_incremental_speedup metric compares the two.
  bool route_rebuild_per_step = false;
};

/// Per-tool outcome of one coordinator run.
struct ToolReport {
  std::string tool;
  double error_before = 0;
  double error_after = 0;
  int64_t applied = 0;
  int64_t vetoed = 0;
  int64_t forced = 0;
  double seconds = 0;
  /// Rollback safety-net cost of this step (rollback_on_regression):
  /// seconds spent snapshotting and, if the step regressed, restoring.
  double rollback_seconds = 0;
  /// Modifications recorded in the step's undo log (kUndoLog only) —
  /// the rollback cost is linear in this, not in the database size.
  int64_t rollback_mods = 0;
  /// True if the step regressed and was rolled back.
  bool rolled_back = false;
  /// True if the step ran inside an O1-parallel group (parallel_pass).
  bool parallel = false;
  /// The batch-size hint the step ended on: options.batch_size, or the
  /// autotuned size when options.batch_auto chose a different one.
  int batch_final = 1;
  /// Validator votes a full-voting run would have cast during this
  /// step (validators per proposal, summed over proposals).
  int64_t votes_total = 0;
  /// The subset of votes_total proven zero by the routing index and
  /// skipped (options.route_votes != kOff; always 0 otherwise).
  int64_t votes_skipped = 0;
  /// Pruned votes the sampled audit invoked anyway and found nonzero —
  /// validators whose declared read scope lied. Each one was distrusted
  /// for the rest of the run.
  int64_t route_audit_violations = 0;
  /// Proposals this step routed conservatively (everyone voted)
  /// because a modification named a table the schema does not know.
  /// Without the counter such proposals are indistinguishable from
  /// legitimately routed ones; audit mode also warns once.
  int64_t route_fallbacks = 0;
};

struct RunReport {
  /// Why the iteration loop stopped (meaningful with converge_epsilon).
  enum class StopReason : int {
    kIterationsExhausted = 0,
    /// A full pass improved the total error by less than epsilon.
    kConverged = 1,
    /// A full pass made the total error strictly worse. Previously
    /// this was silently reported as convergence.
    kRegressed = 2,
  };

  /// One entry per (iteration, tool-in-order) step, in execution order.
  std::vector<ToolReport> steps;
  /// Final error per registered tool (tool registration order).
  std::vector<double> final_errors;
  /// Scope violations recorded by the conformance checker
  /// (options.check_scopes != kOff). In strict mode a non-empty list
  /// means the run itself returned an error; in warn mode the run
  /// completes and this is the diagnosis.
  std::vector<analysis::ScopeViolation> scope_violations;
  double total_seconds = 0;
  StopReason stop_reason = StopReason::kIterationsExhausted;

  /// Phase breakdown of the O1-parallel groups (parallel_pass only).
  /// Setup: clone construction and rebase-to-clone (clone mode) or
  /// lease partition and listener-route assembly (shared mode). Merge:
  /// column/table move-merge plus notification replay (clone mode) or
  /// modlog splice alone (shared mode, where merge work is ~0 by
  /// construction). Rebase: handing the members back to the main
  /// database and rebinding disturbed non-members — with the pointer-
  /// swap Rebase overrides this is ~0 for every built-in tool.
  int64_t parallel_groups = 0;
  /// The subset of parallel_groups that exist only thanks to row-range
  /// declarations: some member pair overlaps on a (table, column) atom
  /// under the interval-blind rules and was admitted because its
  /// declared row intervals are disjoint.
  int64_t row_range_groups = 0;
  /// Out-of-lease writes latched by the per-task lease probes — the
  /// full probes (debug / checker-on) or the sampled release canary.
  /// Each one discarded its group, distrusted the offender, and fell
  /// back to the deterministic serial redo.
  int64_t lease_violations = 0;
  /// Vote-routing totals over all steps (options.route_votes): votes a
  /// full-voting run would have cast, the subset routing proved zero
  /// and skipped, and the audit catches (see ToolReport).
  int64_t votes_total = 0;
  int64_t votes_skipped = 0;
  int64_t route_audit_violations = 0;
  /// Unknown-table conservative routing fallbacks over all steps.
  int64_t route_fallbacks = 0;
  /// Seconds spent building and incrementally maintaining the routing
  /// index (options.route_votes != kOff). With the incremental path
  /// this stays ~0 after the first step of a pass regardless of fleet
  /// size; options.route_rebuild_per_step restores the O(fleet)
  /// per-step cost for comparison.
  double route_index_build_seconds = 0;
  double group_setup_seconds = 0;
  double group_merge_seconds = 0;
  double group_rebase_seconds = 0;

  std::string ToString() const;
};

const char* StopReasonToString(RunReport::StopReason reason);

class Coordinator {
 public:
  /// Registers a tool; returns its id (registration order).
  int AddTool(std::unique_ptr<PropertyTool> tool);

  int num_tools() const { return static_cast<int>(tools_.size()); }
  PropertyTool* tool(int id) { return tools_[static_cast<size_t>(id)].get(); }
  const PropertyTool* tool(int id) const {
    return tools_[static_cast<size_t>(id)].get();
  }

  /// Finds a tool id by name (-1 if absent).
  int FindTool(const std::string& name) const;

  /// Sets every tool's target from the ground-truth dataset.
  Status SetTargetsFromDataset(const Database& ground_truth);

  /// Runs the tools over `db` in the given order (a permutation of a
  /// subset of tool ids). Tools are bound to `db` for the duration and
  /// unbound afterwards.
  Result<RunReport> Run(Database* db, const std::vector<int>& order,
                        const CoordinatorOptions& options);

  /// The access monitor of the last Run (overlap analysis, O2).
  const AccessMonitor* last_monitor() const { return monitor_.get(); }

  /// The scope checker of the last Run (null unless that run had
  /// options.check_scopes != kOff). Exposes per-tool conformance and
  /// the recorded violations.
  const analysis::ScopeChecker* last_checker() const {
    return checker_.get();
  }

  /// Outcome of trying one tool order on a scratch copy.
  struct OrderOutcome {
    std::vector<int> order;
    double total_error = 0;  // summed final error over the order's tools
    double seconds = 0;      // wall-clock of this candidate's run
    RunReport report;
  };

  /// The pragmatic answer to the Property Tweaking Order Problem
  /// (Sec. VIII-A): runs every candidate order on a clone of `db`
  /// (leaving `db` untouched) and reports the outcomes sorted by total
  /// final error, best first.
  ///
  /// Candidates are independent, so when every tool supports Clone()
  /// they run concurrently on options.order_search_threads workers,
  /// each on its own snapshot with its own tool set. Rankings and
  /// errors are byte-identical for every thread count. If any tool
  /// cannot be cloned, candidates run serially on the shared tools.
  Result<std::vector<OrderOutcome>> CompareOrders(
      const Database& db, const std::vector<std::vector<int>>& orders,
      const CoordinatorOptions& options);

 private:
  std::vector<std::unique_ptr<PropertyTool>> tools_;
  std::unique_ptr<AccessMonitor> monitor_;
  std::unique_ptr<analysis::ScopeChecker> checker_;
};

/// All orderings of the given tool ids, in the paper's naming scheme
/// (e.g. "C-L-P" = coappear, then linear, then pairwise). Each tool is
/// labelled by the shortest upper-cased prefix of its name that is
/// unique among the given tools ("coappear"/"chain" become CO/CH);
/// duplicate names fall back to the full name plus "#<id>".
std::vector<std::pair<std::string, std::vector<int>>> AllPermutations(
    const Coordinator& coordinator, const std::vector<int>& tool_ids);

}  // namespace aspect
