// AccessScope: the (table, column) cell sets a tweaking tool reads and
// writes, used by the O1-parallel pass (Sec. IV, observation O1: tools
// whose access sets do not overlap provably cannot disturb each other,
// so their tweaks commute and their cross-votes are always zero).
//
// A scope is either *declared* by the tool up front
// (PropertyTool::DeclaredScope) or *observed* empirically by the
// AccessMonitor after the tool has run once (O2). An unknown scope
// conservatively conflicts with everything, which is what forces the
// coordinator's serial fallback on a first pass of undeclared tools.
// An observed scope is built from recorded writes only, so its read
// set is incomplete (reads_complete = false) and read-side checks
// treat it just as conservatively: undeclared tools stay serial.
#pragma once

#include <set>
#include <utility>

namespace aspect {

struct AccessScope {
  /// One accessed region: (table index, column index). A column of
  /// kWholeTable marks row-structure access (tuple inserts/deletes, or
  /// an unpredictable column set) and overlaps every atom on that
  /// table.
  using Atom = std::pair<int, int>;
  static constexpr int kWholeTable = -1;

  /// False = the scope is not known (the conservative default): it
  /// must be treated as conflicting with everything.
  bool known = false;
  /// True when `reads` accounts for every cell the tool may read.
  /// Declared scopes are complete contracts; an observed scope is
  /// reconstructed from recorded *writes* only, so its read set is a
  /// lower bound and this is false — read-side checks (WritesDisturb
  /// with this scope as the reader) must then treat the scope as
  /// conservatively disturbed by everything. Writes stay trustworthy
  /// either way: the coordinator's runtime scope guard verifies them.
  bool reads_complete = true;
  std::set<Atom> reads;
  std::set<Atom> writes;

  /// Adds a read atom (column defaults to the whole table).
  void AddRead(int table, int column = kWholeTable);
  /// Adds a write atom; a written cell is also a read (tools consult
  /// what they write), so the atom lands in both sets.
  void AddWrite(int table, int column = kWholeTable);
  /// Unions `other` into this scope; the result is known only if both
  /// inputs are.
  void MergeFrom(const AccessScope& other);
};

/// True when two atoms can address a common cell: same table, and at
/// least one side is kWholeTable or the columns coincide.
bool AtomsOverlap(AccessScope::Atom a, AccessScope::Atom b);

/// True when any atom of `a` overlaps any atom of `b`.
bool AtomSetsOverlap(const std::set<AccessScope::Atom>& a,
                     const std::set<AccessScope::Atom>& b);

/// Directed disturbance test: can `writer`'s writes change a cell that
/// `reader` reads? Unknown scopes disturb (and are disturbed by)
/// everything. When this is false, every one of `reader`'s validator
/// votes on `writer`'s proposals is provably zero, and `reader`'s
/// statistics are unchanged by `writer`'s tweaks (O1).
bool WritesDisturb(const AccessScope& writer, const AccessScope& reader);

/// Symmetric conflict for the independence graph fed to
/// IndependentClasses: either side's writes intersect the other's
/// reads (writes are reads too, so write-write overlap is included).
bool ScopesConflict(const AccessScope& a, const AccessScope& b);

}  // namespace aspect
