// Forwarding header: AccessScope moved to the analysis library
// (src/analysis/access_scope.h) so the scope-conformance checker and
// the coordinator share one definition without a dependency cycle.
#pragma once

#include "analysis/access_scope.h"
