// Overlap analysis (observations O1-O4): given the tool-overlap graph
// from the AccessMonitor, finds the non-overlapping tool sets whose
// properties provably cannot disturb each other (O1). Finding the
// largest such set is maximum independent set; the paper cites
// Robson's O(1.22^n) bound - for the handful of tools in a run, the
// exact branch-and-bound below is instant.
#pragma once

#include <vector>

namespace aspect {

/// Exact maximum independent set of an undirected graph given as an
/// adjacency matrix. Returns the vertex set (sorted ascending).
/// Intended for small n (tools in a run); complexity is exponential.
std::vector<int> MaximumIndependentSet(
    const std::vector<std::vector<bool>>& adj);

/// Greedy partition of the vertices into independent sets (a proper
/// coloring by another name): tools within one class can be tweaked
/// in any relative order without interference.
std::vector<std::vector<int>> IndependentClasses(
    const std::vector<std::vector<bool>>& adj);

}  // namespace aspect
