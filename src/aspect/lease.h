// Write leases: the ownership protocol of the shared-database parallel
// pass (DESIGN.md Sec. 10). Before a parallel group runs, the
// coordinator partitions the members' certified write scopes into
// per-(table, column) leases on the main database. Tools then tweak
// the shared tables directly — no clone, no merge — and the lease set
// is the proof that no cell has two concurrent writers: group
// formation already guarantees the scopes are pairwise non-conflicting,
// so the partition is a disjointness certificate, not a lock table.
//
// Enforcement is layered. Release builds trust the certified scopes
// and verify after the fact (the recorder's written-atom set is diffed
// against the lease when the group joins). Debug and checker-on builds
// additionally observe every semantic write at Apply time through the
// PR 3 access probes (LeaseProbeSink below) so an out-of-lease write is
// pinpointed at the violating modification, not at the group barrier.
#pragma once

#include <set>
#include <vector>

#include "analysis/probe.h"
#include "aspect/access_scope.h"

namespace aspect {

/// One member's write ownership inside a shared-mode parallel group.
struct WriteLease {
  /// Tool id of the lease holder.
  int tool_id = -1;
  /// The certified write atoms the holder may touch: (table, column)
  /// cells, (table, kWholeTable), or (table, kRowStructure). A
  /// kRowStructure lease makes the holder the table's only structural
  /// mutator for the group (insert/delete slot allocation is sharded
  /// per table, so this is also the no-contention guarantee).
  std::set<AccessScope::Atom> writes;
};

/// Builds one lease per member from its certified write scope and
/// verifies the partition is truly pairwise disjoint (no atom of one
/// lease overlaps an atom of another, under the same overlap rules
/// that formed the group). Returns false — and the caller must fall
/// back to the clone-and-merge path — if any two leases overlap; with
/// correctly formed groups this never happens, so the check is cheap
/// insurance against a planner bug corrupting the shared database.
bool PartitionWriteLeases(const std::vector<int>& tool_ids,
                          const std::vector<AccessScope>& scopes,
                          std::vector<WriteLease>* leases);

/// Probe sink wrapper a shared-mode task installs for its Tweak: reads
/// and writes forward to `inner` (the conformance FootprintRecorder,
/// or null when no checker is installed), and every written atom is
/// additionally checked against the task's lease. The first
/// out-of-lease write is latched for the group's discard diagnostic.
/// Strictly thread-local, like every probe sink.
class LeaseProbeSink : public analysis::AccessProbeSink {
 public:
  LeaseProbeSink(const WriteLease* lease, analysis::AccessProbeSink* inner)
      : lease_(lease), inner_(inner) {}

  void OnRead(int table, int column) override {
    if (inner_ != nullptr) inner_->OnRead(table, column);
  }

  void OnWrite(int table, int column) override {
    if (inner_ != nullptr) inner_->OnWrite(table, column);
    if (!violated_ && !AtomCoveredBy({table, column}, lease_->writes)) {
      violated_ = true;
      violation_ = {table, column};
    }
  }

  /// True once a write outside the lease was observed.
  bool violated() const { return violated_; }
  /// The first out-of-lease atom (meaningful when violated()).
  AccessScope::Atom violation() const { return violation_; }

 private:
  const WriteLease* lease_;
  analysis::AccessProbeSink* inner_;
  bool violated_ = false;
  AccessScope::Atom violation_{-1, -1};
};

}  // namespace aspect
