// Write leases: the ownership protocol of the shared-database parallel
// pass (DESIGN.md Sec. 10). Before a parallel group runs, the
// coordinator partitions the members' certified write scopes into
// per-(table, column) leases on the main database. Tools then tweak
// the shared tables directly — no clone, no merge — and the lease set
// is the proof that no cell has two concurrent writers: group
// formation already guarantees the scopes are pairwise non-conflicting,
// so the partition is a disjointness certificate, not a lock table.
//
// Enforcement is layered. Debug and checker-on builds observe every
// semantic write at Apply time through the PR 3 access probes
// (LeaseProbeSink below) so an out-of-lease write is pinpointed at the
// violating modification, not at the group barrier. Release builds
// verify the recorder's written-atom set against the lease at the
// group barrier AND run the sink in sampled-canary mode: one in
// kSampleStride semantic writes pays the containment check, so a
// lying declaration is still caught cheaply without --check-scopes.
//
// Leases may be row-ranged: a cell atom declared with AddWriteRange
// carries its [lo, hi] tuple interval into the lease, two leases may
// then hold disjoint ranges of the SAME (table, column), and coverage
// of a write requires the row to sit inside the holder's interval.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "analysis/probe.h"
#include "aspect/access_scope.h"

namespace aspect {

/// One member's write ownership inside a shared-mode parallel group.
struct WriteLease {
  /// Tool id of the lease holder.
  int tool_id = -1;
  /// The certified write atoms the holder may touch: (table, column)
  /// cells, (table, kWholeTable), or (table, kRowStructure). A
  /// kRowStructure lease makes the holder the table's only structural
  /// mutator for the group (insert/delete slot allocation is sharded
  /// per table, so this is also the no-contention guarantee).
  std::set<AccessScope::Atom> writes;
  /// Row-interval restriction per cell atom, copied from the certified
  /// scope's declaration: an entry limits the holder's writes on that
  /// column to tuple ids [lo, hi]; an absent entry leaves the atom
  /// whole-column.
  std::map<AccessScope::Atom, std::pair<int64_t, int64_t>> row_ranges;

  /// True when a write of (table, column) at `row` is inside this
  /// lease: the atom must be covered, and a row-ranged atom must
  /// contain the row (a non-attributable kProbeAllRows write never
  /// satisfies a ranged atom).
  bool Covers(int table, int column, int64_t row) const;
};

/// Builds one lease per member from its certified write scope and
/// verifies the partition is truly pairwise disjoint (no atom of one
/// lease overlaps an atom of another, under the same overlap rules
/// that formed the group — two leases holding disjoint row ranges of
/// one column do NOT overlap). Returns false — and the caller must
/// fall back to the clone-and-merge path — if any two leases overlap;
/// with correctly formed groups this never happens, so the check is
/// cheap insurance against a planner bug corrupting the shared
/// database.
bool PartitionWriteLeases(const std::vector<int>& tool_ids,
                          const std::vector<AccessScope>& scopes,
                          std::vector<WriteLease>* leases);

/// Probe sink wrapper a parallel task installs for its Tweak: reads
/// and writes forward to `inner` (the conformance FootprintRecorder,
/// or null when no checker is installed), and written atoms are
/// additionally checked against the task's lease. The first
/// out-of-lease write is latched for the group's discard diagnostic.
/// In sampled mode — the release-build canary — only one in
/// kSampleStride writes pays the containment check (the first write is
/// always checked), which is enough to latch a systematically lying
/// declaration at ~1.6% of the full-probe cost. Strictly thread-local,
/// like every probe sink.
class LeaseProbeSink : public analysis::AccessProbeSink {
 public:
  /// Every sampled-mode sink checks write 0, then every 64th.
  static constexpr int kSampleStride = 64;

  LeaseProbeSink(const WriteLease* lease, analysis::AccessProbeSink* inner,
                 bool sampled = false)
      : lease_(lease), inner_(inner), sampled_(sampled) {}

  void OnRead(int table, int column,
              int64_t row = analysis::kProbeAllRows) override {
    if (inner_ != nullptr) inner_->OnRead(table, column, row);
  }

  void OnWrite(int table, int column,
               int64_t row = analysis::kProbeAllRows) override {
    if (inner_ != nullptr) inner_->OnWrite(table, column, row);
    if (violated_) return;
    if (sampled_ && (count_++ % kSampleStride) != 0) return;
    if (!lease_->Covers(table, column, row)) {
      violated_ = true;
      violation_ = {table, column};
      violation_row_ = row;
    }
  }

  /// True once a write outside the lease was observed.
  bool violated() const { return violated_; }
  /// The first out-of-lease atom (meaningful when violated()).
  AccessScope::Atom violation() const { return violation_; }
  /// The offending tuple id (kProbeAllRows when not attributable).
  int64_t violation_row() const { return violation_row_; }

 private:
  const WriteLease* lease_;
  analysis::AccessProbeSink* inner_;
  const bool sampled_;
  uint64_t count_ = 0;
  bool violated_ = false;
  AccessScope::Atom violation_{-1, -1};
  int64_t violation_row_ = analysis::kProbeAllRows;
};

}  // namespace aspect
