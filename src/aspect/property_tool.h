// PropertyTool: the uniform interface every tweaking tool implements
// (Sec. III-C). A tool bundles the paper's five components:
//
//   Target Generator     - SetTarget* methods (user input / developer
//                          generation / statistical extrapolation)
//   Tweaking Algorithm   - Tweak(), proposing modifications through a
//                          TweakContext
//   Property Evaluator   - Error(), the property distance to target
//   Property Validator   - ValidationPenalty(), voting on proposals
//   Statistics Updater   - OnApplied() (from ModificationListener),
//                          incremental statistics maintenance
//
// Tools are independently developed; ASPECT coordinates them through
// this interface, which is what makes the repository collaborative.
#pragma once

#include <iosfwd>
#include <limits>
#include <memory>
#include <span>
#include <string>

#include "aspect/access_scope.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "relational/database.h"

namespace aspect {

class TweakContext;

class PropertyTool : public ModificationListener {
 public:
  ~PropertyTool() override = default;

  /// Stable tool name ("linear", "coappear", ...).
  virtual std::string name() const = 0;

  /// Deep-copies this tool's configuration and targets so several
  /// copies can run on different databases concurrently (the parallel
  /// order search of Coordinator::CompareOrders). Only meaningful for
  /// an unbound tool; bound state is rebuilt by Bind. Tools that do
  /// not support cloning return nullptr, and the order search falls
  /// back to running candidates serially on the shared tool set.
  virtual std::unique_ptr<PropertyTool> Clone() const { return nullptr; }

  // --- Target Generator ------------------------------------------------
  /// Extracts the target property statistics from a ground-truth
  /// dataset (the default Target Generator mode used in Sec. VI).
  virtual Status SetTargetFromDataset(const Database& ground_truth) = 0;

  /// Projects the current target onto the feasible set for the bound
  /// database's table sizes (the necessary conditions of Sec. V). Used
  /// when the size-scaler could not hit the ground-truth sizes, as the
  /// paper does for ReX (Sec. VI-B). Requires a bound database.
  virtual Status RepairTarget() = 0;

  /// Verifies the target satisfies this property's necessary
  /// conditions for the bound database; Infeasible otherwise.
  virtual Status CheckTargetFeasible() const = 0;

  /// Serializes / restores the target statistics (so a target
  /// extracted once can be reused without the ground-truth dataset;
  /// see aspect/targets_io.h). Optional: the default declines.
  virtual Status SaveTarget(std::ostream* out) const {
    (void)out;
    return Status::NotImplemented(name() + ": SaveTarget");
  }
  virtual Status LoadTarget(std::istream* in) {
    (void)in;
    return Status::NotImplemented(name() + ": LoadTarget");
  }

  // --- Binding ----------------------------------------------------------
  /// Attaches to `db`: scans it to build the property statistics and
  /// registers as a modification listener. A tool is bound to at most
  /// one database at a time.
  virtual Status Bind(Database* db) = 0;
  virtual void Unbind() = 0;
  virtual bool bound() const = 0;

  /// Moves a bound tool onto `db` WITHOUT rescanning, assuming `db`'s
  /// content is identical, tuple id for tuple id, to the currently
  /// bound database for every table in the tool's access set. The
  /// default rebuilds from scratch (Unbind + Bind); tools whose bound
  /// state is keyed only by stable tuple ids can override with a
  /// listener re-registration and pointer swap. The O1-parallel pass
  /// uses this to hand tools between the main database and content-
  /// identical task clones without paying two full rescans per pass.
  virtual Status Rebase(Database* db) {
    Unbind();
    return Bind(db);
  }

  /// Appends every ModificationListener a bound tool has registered on
  /// its database: the tool itself plus any auxiliary listeners its
  /// Bind installed (e.g. coappear's RefCounter). The shared-database
  /// parallel pass routes exactly this set (plus the task's write
  /// recorder) to the task's thread, and excludes it from the
  /// post-group notification replay, so a tool's statistics see each
  /// of its own writes exactly once. Only meaningful while bound.
  virtual void AppendListeners(std::vector<ModificationListener*>* out) {
    out->push_back(this);
  }

  // --- Property Evaluator -----------------------------------------------
  /// Error of the bound database's property against the target, using
  /// the paper's measure for this property (Sec. VI-C). Requires bound.
  virtual double Error() const = 0;

  // --- Property Validator -----------------------------------------------
  /// How much this (already enforced) property would be hurt by `mod`:
  /// > 0 means the tool votes against. The default coordinator policy
  /// rejects any positive penalty (Sec. III-C voting). Contract: a
  /// penalty is a would-be-error minus current-error difference and
  /// errors are nonnegative, so a single-modification penalty is never
  /// below -Error(); the capped batch vote below relies on this bound.
  virtual double ValidationPenalty(const Modification& mod) const = 0;

  /// "No early exit" cap for ValidationPenaltyBatch (the uncapped
  /// overload passes it).
  static constexpr double kNoPenaltyCap =
      std::numeric_limits<double>::infinity();

  /// Safety margin for composite early-exit bounds: an implementation
  /// should stop only when its provable lower bound on the final
  /// penalty clears `veto_cap` by more than this (scaled by the
  /// bound's magnitude), so the tiny floating-point rounding the bound
  /// arithmetic itself carries can never flip a boundary veto decision
  /// relative to uncapped pricing. The built-in composite tools keep
  /// their delta bookkeeping in exact integers, which makes this
  /// margin comfortably conservative.
  static constexpr double kPenaltyCapSlack = 1e-9;

  /// Vote on a whole batch as one composite proposal: the penalty the
  /// property incurs if ALL of `mods` are applied. The default sums
  /// the single-modification penalties, which matches the composite
  /// semantics whenever the modifications touch disjoint statistics;
  /// tools whose penalty is non-additive override this with an exact
  /// cumulative simulation. Used by TweakContext::TryApplyBatch.
  ///
  /// `veto_cap` is an early-exit license, not a semantic change: the
  /// caller only distinguishes results above the cap from results at
  /// or below it, so an implementation may stop as soon as the final
  /// penalty is *provably* above the cap and return any partial value
  /// that is itself above the cap. The default loop uses the
  /// ValidationPenalty lower bound of -Error(): once the running sum
  /// can no longer fall back to the cap on the members still ahead,
  /// the tail is skipped. The veto decision is exactly the uncapped
  /// one — a vetoed batch merely stops pricing its remaining members.
  virtual double ValidationPenaltyBatch(std::span<const Modification> mods,
                                        double veto_cap) const {
    double total = 0;
    size_t remaining = mods.size();
    double floor_per_mod = 0;  // computed lazily, only past the cap
    bool have_floor = false;
    for (const Modification& m : mods) {
      total += ValidationPenalty(m);
      --remaining;
      if (total > veto_cap) {
        if (remaining == 0) break;
        if (!have_floor) {
          floor_per_mod = -Error();
          have_floor = true;
        }
        if (total + static_cast<double>(remaining) * floor_per_mod >
            veto_cap) {
          break;
        }
      }
    }
    return total;
  }

  /// Uncapped convenience overload. Not virtual: override the capped
  /// form (and re-expose this one with a using-declaration).
  double ValidationPenaltyBatch(std::span<const Modification> mods) const {
    return ValidationPenaltyBatch(mods, kNoPenaltyCap);
  }

  /// The (table, column) atoms this tool's Tweak may read and write,
  /// derived from its configured schema. Used by the O1-parallel pass
  /// to prove two tools independent before running them concurrently;
  /// a declared scope is a completeness contract for BOTH sets (reads
  /// and writes). The default is an unknown scope, which keeps the
  /// tool on the serial path: the AccessMonitor's observed scope (O2)
  /// covers writes only, which is not enough to join a parallel group.
  virtual AccessScope DeclaredScope() const { return AccessScope(); }

  // --- Tweaking Algorithm -----------------------------------------------
  /// Tweaks the bound database toward the target, proposing every
  /// modification through `ctx` so other tools' validators can vote.
  virtual Status Tweak(TweakContext* ctx) = 0;
};

}  // namespace aspect
