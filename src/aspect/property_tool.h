// PropertyTool: the uniform interface every tweaking tool implements
// (Sec. III-C). A tool bundles the paper's five components:
//
//   Target Generator     - SetTarget* methods (user input / developer
//                          generation / statistical extrapolation)
//   Tweaking Algorithm   - Tweak(), proposing modifications through a
//                          TweakContext
//   Property Evaluator   - Error(), the property distance to target
//   Property Validator   - ValidationPenalty(), voting on proposals
//   Statistics Updater   - OnApplied() (from ModificationListener),
//                          incremental statistics maintenance
//
// Tools are independently developed; ASPECT coordinates them through
// this interface, which is what makes the repository collaborative.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>

#include "aspect/access_scope.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "relational/database.h"

namespace aspect {

class TweakContext;

class PropertyTool : public ModificationListener {
 public:
  ~PropertyTool() override = default;

  /// Stable tool name ("linear", "coappear", ...).
  virtual std::string name() const = 0;

  /// Deep-copies this tool's configuration and targets so several
  /// copies can run on different databases concurrently (the parallel
  /// order search of Coordinator::CompareOrders). Only meaningful for
  /// an unbound tool; bound state is rebuilt by Bind. Tools that do
  /// not support cloning return nullptr, and the order search falls
  /// back to running candidates serially on the shared tool set.
  virtual std::unique_ptr<PropertyTool> Clone() const { return nullptr; }

  // --- Target Generator ------------------------------------------------
  /// Extracts the target property statistics from a ground-truth
  /// dataset (the default Target Generator mode used in Sec. VI).
  virtual Status SetTargetFromDataset(const Database& ground_truth) = 0;

  /// Projects the current target onto the feasible set for the bound
  /// database's table sizes (the necessary conditions of Sec. V). Used
  /// when the size-scaler could not hit the ground-truth sizes, as the
  /// paper does for ReX (Sec. VI-B). Requires a bound database.
  virtual Status RepairTarget() = 0;

  /// Verifies the target satisfies this property's necessary
  /// conditions for the bound database; Infeasible otherwise.
  virtual Status CheckTargetFeasible() const = 0;

  /// Serializes / restores the target statistics (so a target
  /// extracted once can be reused without the ground-truth dataset;
  /// see aspect/targets_io.h). Optional: the default declines.
  virtual Status SaveTarget(std::ostream* out) const {
    (void)out;
    return Status::NotImplemented(name() + ": SaveTarget");
  }
  virtual Status LoadTarget(std::istream* in) {
    (void)in;
    return Status::NotImplemented(name() + ": LoadTarget");
  }

  // --- Binding ----------------------------------------------------------
  /// Attaches to `db`: scans it to build the property statistics and
  /// registers as a modification listener. A tool is bound to at most
  /// one database at a time.
  virtual Status Bind(Database* db) = 0;
  virtual void Unbind() = 0;
  virtual bool bound() const = 0;

  /// Moves a bound tool onto `db` WITHOUT rescanning, assuming `db`'s
  /// content is identical, tuple id for tuple id, to the currently
  /// bound database for every table in the tool's access set. The
  /// default rebuilds from scratch (Unbind + Bind); tools whose bound
  /// state is keyed only by stable tuple ids can override with a
  /// listener re-registration and pointer swap. The O1-parallel pass
  /// uses this to hand tools between the main database and content-
  /// identical task clones without paying two full rescans per pass.
  virtual Status Rebase(Database* db) {
    Unbind();
    return Bind(db);
  }

  /// Appends every ModificationListener a bound tool has registered on
  /// its database: the tool itself plus any auxiliary listeners its
  /// Bind installed (e.g. coappear's RefCounter). The shared-database
  /// parallel pass routes exactly this set (plus the task's write
  /// recorder) to the task's thread, and excludes it from the
  /// post-group notification replay, so a tool's statistics see each
  /// of its own writes exactly once. Only meaningful while bound.
  virtual void AppendListeners(std::vector<ModificationListener*>* out) {
    out->push_back(this);
  }

  // --- Property Evaluator -----------------------------------------------
  /// Error of the bound database's property against the target, using
  /// the paper's measure for this property (Sec. VI-C). Requires bound.
  virtual double Error() const = 0;

  // --- Property Validator -----------------------------------------------
  /// How much this (already enforced) property would be hurt by `mod`:
  /// > 0 means the tool votes against. The default coordinator policy
  /// rejects any positive penalty (Sec. III-C voting).
  virtual double ValidationPenalty(const Modification& mod) const = 0;

  /// Vote on a whole batch as one composite proposal: the penalty the
  /// property incurs if ALL of `mods` are applied. The default sums
  /// the single-modification penalties, which matches the composite
  /// semantics whenever the modifications touch disjoint statistics;
  /// tools whose penalty is non-additive override this with an exact
  /// cumulative simulation. Used by TweakContext::TryApplyBatch.
  virtual double ValidationPenaltyBatch(
      std::span<const Modification> mods) const {
    double total = 0;
    for (const Modification& m : mods) total += ValidationPenalty(m);
    return total;
  }

  /// The (table, column) atoms this tool's Tweak may read and write,
  /// derived from its configured schema. Used by the O1-parallel pass
  /// to prove two tools independent before running them concurrently;
  /// a declared scope is a completeness contract for BOTH sets (reads
  /// and writes). The default is an unknown scope, which keeps the
  /// tool on the serial path: the AccessMonitor's observed scope (O2)
  /// covers writes only, which is not enough to join a parallel group.
  virtual AccessScope DeclaredScope() const { return AccessScope(); }

  // --- Tweaking Algorithm -----------------------------------------------
  /// Tweaks the bound database toward the target, proposing every
  /// modification through `ctx` so other tools' validators can vote.
  virtual Status Tweak(TweakContext* ctx) = 0;
};

}  // namespace aspect
