// PropertyTool: the uniform interface every tweaking tool implements
// (Sec. III-C). A tool bundles the paper's five components:
//
//   Target Generator     - SetTarget* methods (user input / developer
//                          generation / statistical extrapolation)
//   Tweaking Algorithm   - Tweak(), proposing modifications through a
//                          TweakContext
//   Property Evaluator   - Error(), the property distance to target
//   Property Validator   - ValidationPenalty(), voting on proposals
//   Statistics Updater   - OnApplied() (from ModificationListener),
//                          incremental statistics maintenance
//
// Tools are independently developed; ASPECT coordinates them through
// this interface, which is what makes the repository collaborative.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "relational/database.h"

namespace aspect {

class TweakContext;

class PropertyTool : public ModificationListener {
 public:
  ~PropertyTool() override = default;

  /// Stable tool name ("linear", "coappear", ...).
  virtual std::string name() const = 0;

  /// Deep-copies this tool's configuration and targets so several
  /// copies can run on different databases concurrently (the parallel
  /// order search of Coordinator::CompareOrders). Only meaningful for
  /// an unbound tool; bound state is rebuilt by Bind. Tools that do
  /// not support cloning return nullptr, and the order search falls
  /// back to running candidates serially on the shared tool set.
  virtual std::unique_ptr<PropertyTool> Clone() const { return nullptr; }

  // --- Target Generator ------------------------------------------------
  /// Extracts the target property statistics from a ground-truth
  /// dataset (the default Target Generator mode used in Sec. VI).
  virtual Status SetTargetFromDataset(const Database& ground_truth) = 0;

  /// Projects the current target onto the feasible set for the bound
  /// database's table sizes (the necessary conditions of Sec. V). Used
  /// when the size-scaler could not hit the ground-truth sizes, as the
  /// paper does for ReX (Sec. VI-B). Requires a bound database.
  virtual Status RepairTarget() = 0;

  /// Verifies the target satisfies this property's necessary
  /// conditions for the bound database; Infeasible otherwise.
  virtual Status CheckTargetFeasible() const = 0;

  /// Serializes / restores the target statistics (so a target
  /// extracted once can be reused without the ground-truth dataset;
  /// see aspect/targets_io.h). Optional: the default declines.
  virtual Status SaveTarget(std::ostream* out) const {
    (void)out;
    return Status::NotImplemented(name() + ": SaveTarget");
  }
  virtual Status LoadTarget(std::istream* in) {
    (void)in;
    return Status::NotImplemented(name() + ": LoadTarget");
  }

  // --- Binding ----------------------------------------------------------
  /// Attaches to `db`: scans it to build the property statistics and
  /// registers as a modification listener. A tool is bound to at most
  /// one database at a time.
  virtual Status Bind(Database* db) = 0;
  virtual void Unbind() = 0;
  virtual bool bound() const = 0;

  // --- Property Evaluator -----------------------------------------------
  /// Error of the bound database's property against the target, using
  /// the paper's measure for this property (Sec. VI-C). Requires bound.
  virtual double Error() const = 0;

  // --- Property Validator -----------------------------------------------
  /// How much this (already enforced) property would be hurt by `mod`:
  /// > 0 means the tool votes against. The default coordinator policy
  /// rejects any positive penalty (Sec. III-C voting).
  virtual double ValidationPenalty(const Modification& mod) const = 0;

  // --- Tweaking Algorithm -----------------------------------------------
  /// Tweaks the bound database toward the target, proposing every
  /// modification through `ctx` so other tools' validators can vote.
  virtual Status Tweak(TweakContext* ctx) = 0;
};

}  // namespace aspect
