// AccessMonitor: records which cells each tool modified, implementing
// observation O2 of the paper - because every tweak flows through the
// uniform API, ASPECT knows when two tools touched the same tuples and
// can build the tool-overlap graph.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

#include "aspect/access_scope.h"
#include "relational/database.h"

namespace aspect {

class AccessMonitor {
 public:
  explicit AccessMonitor(int num_tools);

  int num_tools() const { return static_cast<int>(touched_.size()); }

  /// Records the cells written by `mod` on behalf of tool `tool_id`.
  /// `table_index` is the table's index in the schema.
  void Record(int tool_id, int table_index, const Modification& mod);

  /// Unions another monitor's records into this one (same num_tools).
  /// The parallel pass records each task into a private monitor and
  /// merges the successful ones, so a discarded attempt leaves no
  /// phantom cells behind.
  void MergeFrom(const AccessMonitor& other);

  /// Move-merge: same union, but a tool whose records are empty on this
  /// side adopts the other side's sets wholesale instead of re-inserting
  /// tens of thousands of cell keys one by one. This is the common case
  /// when merging a parallel task's monitor (the main monitor is reset
  /// per Run and each tool runs once per pass). `other` is left empty.
  void MergeFrom(AccessMonitor&& other);

  /// True if the two tools wrote at least one common cell. Row
  /// insert/delete counts as touching every column of that tuple.
  bool Overlaps(int a, int b) const;

  /// Number of distinct cells tool `tool_id` wrote.
  int64_t CellsTouched(int tool_id) const {
    return static_cast<int64_t>(touched_[static_cast<size_t>(tool_id)].size());
  }

  /// Adjacency matrix of the overlap graph (see overlap.h).
  std::vector<std::vector<bool>> OverlapGraph() const;

  /// The coarse (table, column) scope tool `tool_id` was observed to
  /// write (O2's empirical answer to "what does this tool access?").
  /// Row inserts/deletes coarsen to (table, kWholeTable). The monitor
  /// only sees modifications, so the scope's read set is just a copy
  /// of the writes and is marked incomplete (reads_complete == false):
  /// read-side checks must not treat it as the tool's full read set.
  /// Unknown (scope.known == false) until the tool records something.
  AccessScope ObservedScope(int tool_id) const;

 private:
  // Cell key: (table, tuple, column) packed into 64 bits; column -1
  // (whole row) is recorded as a per-column fan-out.
  static uint64_t CellKey(int table, TupleId tuple, int col);

  std::vector<std::unordered_set<uint64_t>> touched_;
  // Coarse (table, column) write atoms per tool, for ObservedScope.
  std::vector<std::set<AccessScope::Atom>> atoms_;
};

}  // namespace aspect
