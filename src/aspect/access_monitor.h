// AccessMonitor: records which cells each tool modified, implementing
// observation O2 of the paper - because every tweak flows through the
// uniform API, ASPECT knows when two tools touched the same tuples and
// can build the tool-overlap graph.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "relational/database.h"

namespace aspect {

class AccessMonitor {
 public:
  explicit AccessMonitor(int num_tools);

  int num_tools() const { return static_cast<int>(touched_.size()); }

  /// Records the cells written by `mod` on behalf of tool `tool_id`.
  /// `table_index` is the table's index in the schema.
  void Record(int tool_id, int table_index, const Modification& mod);

  /// True if the two tools wrote at least one common cell. Row
  /// insert/delete counts as touching every column of that tuple.
  bool Overlaps(int a, int b) const;

  /// Number of distinct cells tool `tool_id` wrote.
  int64_t CellsTouched(int tool_id) const {
    return static_cast<int64_t>(touched_[static_cast<size_t>(tool_id)].size());
  }

  /// Adjacency matrix of the overlap graph (see overlap.h).
  std::vector<std::vector<bool>> OverlapGraph() const;

 private:
  // Cell key: (table, tuple, column) packed into 64 bits; column -1
  // (whole row) is recorded as a per-column fan-out.
  static uint64_t CellKey(int table, TupleId tuple, int col);

  std::vector<std::unordered_set<uint64_t>> touched_;
};

}  // namespace aspect
