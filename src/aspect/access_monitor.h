// AccessMonitor: records which cells each tool modified, implementing
// observation O2 of the paper - because every tweak flows through the
// uniform API, ASPECT knows when two tools touched the same tuples and
// can build the tool-overlap graph.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

#include "aspect/access_scope.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "relational/database.h"

namespace aspect {

/// Thread-safe: every method locks mu_, so a monitor may be shared
/// between the coordinating thread and task threads (the parallel pass
/// today keeps one private monitor per task and merges after the pool
/// barrier, but the ROADMAP's shared-database design records into one
/// monitor concurrently). The guard contracts are enforced at compile
/// time by Clang's -Wthread-safety analysis.
class AccessMonitor {
 public:
  explicit AccessMonitor(int num_tools);

  int num_tools() const { return num_tools_; }

  /// Records the cells written by `mod` on behalf of tool `tool_id`.
  /// `table_index` is the table's index in the schema.
  void Record(int tool_id, int table_index, const Modification& mod)
      ASPECT_EXCLUDES(mu_);

  /// Unions another monitor's records into this one (same num_tools).
  /// The parallel pass records each task into a private monitor and
  /// merges the successful ones, so a discarded attempt leaves no
  /// phantom cells behind.
  void MergeFrom(const AccessMonitor& other) ASPECT_EXCLUDES(mu_);

  /// Move-merge: same union, but a tool whose records are empty on this
  /// side adopts the other side's sets wholesale instead of re-inserting
  /// tens of thousands of cell keys one by one. This is the common case
  /// when merging a parallel task's monitor (the main monitor is reset
  /// per Run and each tool runs once per pass). `other` is left empty.
  void MergeFrom(AccessMonitor&& other) ASPECT_EXCLUDES(mu_);

  /// True if the two tools wrote at least one common cell. Row
  /// insert/delete counts as touching every column of that tuple.
  bool Overlaps(int a, int b) const ASPECT_EXCLUDES(mu_);

  /// Number of distinct cells tool `tool_id` wrote.
  int64_t CellsTouched(int tool_id) const ASPECT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return static_cast<int64_t>(touched_[static_cast<size_t>(tool_id)].size());
  }

  /// Adjacency matrix of the overlap graph (see overlap.h).
  std::vector<std::vector<bool>> OverlapGraph() const ASPECT_EXCLUDES(mu_);

  /// The coarse (table, column) scope tool `tool_id` was observed to
  /// write (O2's empirical answer to "what does this tool access?").
  /// Row inserts/deletes coarsen to (table, kWholeTable). The monitor
  /// only sees modifications, so the scope's read set is just a copy
  /// of the writes and is marked incomplete (reads_complete == false):
  /// read-side checks must not treat it as the tool's full read set.
  /// Unknown (scope.known == false) until the tool records something.
  AccessScope ObservedScope(int tool_id) const ASPECT_EXCLUDES(mu_);

 private:
  // Cell key: (table, tuple, column) packed into 64 bits; column -1
  // (whole row) is recorded as a per-column fan-out.
  static uint64_t CellKey(int table, TupleId tuple, int col);

  bool OverlapsLocked(int a, int b) const ASPECT_REQUIRES(mu_);

  const int num_tools_;
  mutable Mutex mu_;
  std::vector<std::unordered_set<uint64_t>> touched_ ASPECT_GUARDED_BY(mu_);
  // Coarse (table, column) write atoms per tool, for ObservedScope.
  std::vector<std::set<AccessScope::Atom>> atoms_ ASPECT_GUARDED_BY(mu_);
};

}  // namespace aspect
