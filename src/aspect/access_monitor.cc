#include "aspect/access_monitor.h"

#include <algorithm>
#include <cassert>

namespace aspect {

AccessMonitor::AccessMonitor(int num_tools)
    : num_tools_(num_tools),
      touched_(static_cast<size_t>(num_tools)),
      atoms_(static_cast<size_t>(num_tools)) {}

uint64_t AccessMonitor::CellKey(int table, TupleId tuple, int col) {
  // 12 bits table | 40 bits tuple | 12 bits column.
  return (static_cast<uint64_t>(table) << 52) |
         ((static_cast<uint64_t>(tuple) & 0xFFFFFFFFFFull) << 12) |
         (static_cast<uint64_t>(col) & 0xFFFull);
}

void AccessMonitor::Record(int tool_id, int table_index,
                           const Modification& mod) {
  if (tool_id < 0 || tool_id >= num_tools()) return;
  MutexLock lock(mu_);
  auto& set = touched_[static_cast<size_t>(tool_id)];
  auto& atoms = atoms_[static_cast<size_t>(tool_id)];
  switch (mod.kind) {
    case OpKind::kDeleteValues:
    case OpKind::kInsertValues:
    case OpKind::kReplaceValues:
      for (const int c : mod.cols) {
        atoms.insert({table_index, c});
      }
      for (const TupleId t : mod.tuples) {
        for (const int c : mod.cols) {
          set.insert(CellKey(table_index, t, c));
        }
      }
      break;
    case OpKind::kInsertTuple:
      // New tuples cannot overlap with cells other tools wrote before,
      // but later writes to them can; record the whole row under a
      // synthetic column fan-out once the id is known via the tuples
      // vector (the coordinator records post-apply with the new id).
      atoms.insert({table_index, AccessScope::kWholeTable});
      for (const TupleId t : mod.tuples) {
        for (size_t c = 0; c < mod.values.size(); ++c) {
          set.insert(CellKey(table_index, t, static_cast<int>(c)));
        }
      }
      break;
    case OpKind::kDeleteTuple:
      atoms.insert({table_index, AccessScope::kWholeTable});
      for (const TupleId t : mod.tuples) {
        // A row deletion touches every column; 64 columns is far above
        // any schema in this repo.
        for (int c = 0; c < 64; ++c) {
          set.insert(CellKey(table_index, t, c));
        }
      }
      break;
  }
}

void AccessMonitor::MergeFrom(const AccessMonitor& other) {
  MutexLock lock(mu_);
  MutexLock other_lock(other.mu_);
  const size_t n =
      std::min(touched_.size(), other.touched_.size());
  for (size_t i = 0; i < n; ++i) {
    touched_[i].insert(other.touched_[i].begin(), other.touched_[i].end());
    atoms_[i].insert(other.atoms_[i].begin(), other.atoms_[i].end());
  }
}

void AccessMonitor::MergeFrom(AccessMonitor&& other) {
  MutexLock lock(mu_);
  MutexLock other_lock(other.mu_);
  const size_t n =
      std::min(touched_.size(), other.touched_.size());
  for (size_t i = 0; i < n; ++i) {
    if (touched_[i].empty()) {
      touched_[i] = std::move(other.touched_[i]);
    } else {
      touched_[i].insert(other.touched_[i].begin(), other.touched_[i].end());
    }
    other.touched_[i].clear();
    if (atoms_[i].empty()) {
      atoms_[i] = std::move(other.atoms_[i]);
    } else {
      atoms_[i].insert(other.atoms_[i].begin(), other.atoms_[i].end());
    }
    other.atoms_[i].clear();
  }
}

bool AccessMonitor::Overlaps(int a, int b) const {
  MutexLock lock(mu_);
  return OverlapsLocked(a, b);
}

bool AccessMonitor::OverlapsLocked(int a, int b) const {
  const auto& sa = touched_[static_cast<size_t>(a)];
  const auto& sb = touched_[static_cast<size_t>(b)];
  const auto& small = sa.size() <= sb.size() ? sa : sb;
  const auto& large = sa.size() <= sb.size() ? sb : sa;
  for (const uint64_t key : small) {
    if (large.count(key) > 0) return true;
  }
  return false;
}

AccessScope AccessMonitor::ObservedScope(int tool_id) const {
  AccessScope scope;
  if (tool_id < 0 || tool_id >= num_tools()) return scope;
  MutexLock lock(mu_);
  const auto& atoms = atoms_[static_cast<size_t>(tool_id)];
  if (atoms.empty()) return scope;  // never ran: unknown
  scope.known = true;
  // The monitor records modifications, i.e. writes; the tool may well
  // read cells it never wrote, so the reconstructed read set is only a
  // lower bound and must not be trusted for read-side checks.
  scope.reads_complete = false;
  for (const AccessScope::Atom& a : atoms) {
    scope.AddWrite(a.first, a.second);
  }
  return scope;
}

std::vector<std::vector<bool>> AccessMonitor::OverlapGraph() const {
  const int n = num_tools();
  std::vector<std::vector<bool>> adj(
      static_cast<size_t>(n), std::vector<bool>(static_cast<size_t>(n)));
  MutexLock lock(mu_);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const bool o = OverlapsLocked(a, b);
      adj[static_cast<size_t>(a)][static_cast<size_t>(b)] = o;
      adj[static_cast<size_t>(b)][static_cast<size_t>(a)] = o;
    }
  }
  return adj;
}

}  // namespace aspect
