// Target persistence: save every tool's target statistics to one file
// and restore them later, so a target set extracted (or extrapolated)
// once can drive many scaling runs without the ground-truth dataset.
//
// File format: a header line, then per tool a line "tool <name>"
// followed by the tool's own serialization (see each tool's
// SaveTarget). Tools that do not implement persistence are skipped on
// save and must not appear on load.
#pragma once

#include <string>

#include "aspect/coordinator.h"
#include "common/status.h"

namespace aspect {

/// Saves the targets of every persistence-capable registered tool.
Status SaveTargets(const Coordinator& coordinator, const std::string& path);

/// Restores targets into the coordinator's tools by name. Unknown tool
/// names in the file are an error; tools absent from the file keep
/// their current targets.
Status LoadTargets(Coordinator* coordinator, const std::string& path);

}  // namespace aspect
