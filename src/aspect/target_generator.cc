#include "aspect/target_generator.h"

#include <cmath>
#include <map>

#include "stats/fitting.h"

namespace aspect {

Result<FrequencyDistribution> ExtrapolateDistribution(
    const std::vector<const Database*>& snapshots,
    const DistributionExtractor& extract, double target_size,
    const ExtrapolationOptions& options) {
  if (static_cast<int>(snapshots.size()) < options.degree + 1) {
    return Status::Invalid("not enough snapshots for extrapolation degree");
  }
  std::vector<double> sizes;
  std::vector<FrequencyDistribution> dists;
  for (const Database* db : snapshots) {
    sizes.push_back(static_cast<double>(db->TotalTuples()));
    dists.push_back(extract(*db));
  }
  const int dim = dists.empty() ? 1 : dists[0].dim();
  // Union of keys across snapshots; missing keys count as zero.
  std::map<FrequencyDistribution::Key, std::vector<double>> trajectories;
  for (size_t s = 0; s < dists.size(); ++s) {
    for (const auto& [key, count] : dists[s].counts()) {
      auto [it, inserted] = trajectories.try_emplace(
          key, std::vector<double>(dists.size(), 0.0));
      it->second[s] = static_cast<double>(count);
    }
  }
  FrequencyDistribution out(dim);
  for (const auto& [key, ys] : trajectories) {
    ASPECT_ASSIGN_OR_RETURN(std::vector<double> fit,
                            PolyFit(sizes, ys, options.degree));
    const double predicted = PolyEval(fit, target_size);
    const int64_t count = static_cast<int64_t>(std::llround(predicted));
    if (count >= options.min_count) out.Add(key, count);
  }
  return out;
}

}  // namespace aspect
