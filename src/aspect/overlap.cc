#include "aspect/overlap.h"

#include <algorithm>

namespace aspect {
namespace {

void Search(const std::vector<std::vector<bool>>& adj,
            std::vector<int>* candidates, std::vector<int>* current,
            std::vector<int>* best) {
  if (current->size() + candidates->size() <= best->size()) return;
  if (candidates->empty()) {
    if (current->size() > best->size()) *best = *current;
    return;
  }
  // Branch on the candidate with the most candidate-neighbours (fail
  // fast); include-then-exclude.
  size_t pick = 0;
  int max_deg = -1;
  for (size_t i = 0; i < candidates->size(); ++i) {
    int deg = 0;
    for (const int v : *candidates) {
      if (adj[static_cast<size_t>((*candidates)[i])][static_cast<size_t>(v)]) {
        ++deg;
      }
    }
    if (deg > max_deg) {
      max_deg = deg;
      pick = i;
    }
  }
  const int v = (*candidates)[pick];
  // Include v.
  std::vector<int> next;
  for (const int u : *candidates) {
    if (u != v && !adj[static_cast<size_t>(v)][static_cast<size_t>(u)]) {
      next.push_back(u);
    }
  }
  current->push_back(v);
  Search(adj, &next, current, best);
  current->pop_back();
  // Exclude v.
  std::vector<int> rest;
  for (const int u : *candidates) {
    if (u != v) rest.push_back(u);
  }
  Search(adj, &rest, current, best);
}

}  // namespace

std::vector<int> MaximumIndependentSet(
    const std::vector<std::vector<bool>>& adj) {
  std::vector<int> candidates;
  for (size_t i = 0; i < adj.size(); ++i) {
    candidates.push_back(static_cast<int>(i));
  }
  std::vector<int> current, best;
  Search(adj, &candidates, &current, &best);
  std::sort(best.begin(), best.end());
  return best;
}

std::vector<std::vector<int>> IndependentClasses(
    const std::vector<std::vector<bool>>& adj) {
  const int n = static_cast<int>(adj.size());
  std::vector<std::vector<int>> classes;
  for (int v = 0; v < n; ++v) {
    bool done = false;
    for (auto& cls : classes) {
      bool ok = true;
      for (const int u : cls) {
        if (adj[static_cast<size_t>(v)][static_cast<size_t>(u)]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        cls.push_back(v);
        done = true;
        break;
      }
    }
    if (!done) classes.push_back({v});
  }
  return classes;
}

}  // namespace aspect
