#include "aspect/registry.h"

#include "common/string_util.h"

namespace aspect {

ToolRegistry& ToolRegistry::Global() {
  static ToolRegistry* registry = new ToolRegistry();
  return *registry;
}

void ToolRegistry::Register(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

Result<std::unique_ptr<PropertyTool>> ToolRegistry::Make(
    const std::string& name, const Schema& schema) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::KeyError(
        StrFormat("no tool '%s' in the repository", name.c_str()));
  }
  return it->second(schema);
}

std::vector<std::string> ToolRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, f] : factories_) names.push_back(name);
  return names;
}

}  // namespace aspect
