// ToolRegistry: the collaborative repository at the heart of ASPECT's
// pitch (Sec. I-B). Developers register factories for their tweaking
// tools under a name; users compose scaled datasets by picking tools
// from the repository by name.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aspect/property_tool.h"
#include "common/result.h"

namespace aspect {

class ToolRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<PropertyTool>(const Schema& schema)>;

  /// The process-wide repository.
  static ToolRegistry& Global();

  /// Registers a factory under `name`; replaces an existing entry.
  void Register(const std::string& name, Factory factory);

  /// Instantiates the named tool for a schema.
  Result<std::unique_ptr<PropertyTool>> Make(const std::string& name,
                                             const Schema& schema) const;

  /// Names of all registered tools, sorted.
  std::vector<std::string> Names() const;

  bool Contains(const std::string& name) const {
    return factories_.count(name) > 0;
  }

 private:
  std::map<std::string, Factory> factories_;
};

/// Registers the tools shipped with this repository (linear, coappear,
/// pairwise, column-frequency, null-count, tuple-count) into the
/// global registry. Idempotent.
void RegisterBuiltinTools();

}  // namespace aspect
