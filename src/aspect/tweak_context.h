// TweakContext: the coordinator-provided channel through which a
// tweaking algorithm modifies the dataset.
//
// Every proposal is first put to the vote of the validators of the
// already-applied tools (Sec. III-C): if any votes against, the
// proposal is rejected and the tool must find an alternative. After
// enough failed alternatives a tool may ForceApply, accepting the
// error increase, exactly as the paper allows ("If no such alternative
// is possible, ASPECT can allow a modification to proceed").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "relational/database.h"

namespace aspect {

class PropertyTool;

/// Records which cells each tool wrote, for overlap detection (O2).
class AccessMonitor;

class TweakContext {
 public:
  TweakContext(Database* db, std::vector<PropertyTool*> validators,
               Rng* rng, AccessMonitor* monitor = nullptr,
               int tool_id = -1);

  Database* db() { return db_; }
  const Database& db() const { return *db_; }
  Rng* rng() { return rng_; }

  /// Applies `mod` if every validator accepts it; returns
  /// ValidationFailed (without applying) otherwise.
  Status TryApply(const Modification& mod, TupleId* new_tuple = nullptr);

  /// Applies `mod` regardless of votes (accepted error increase).
  Status ForceApply(const Modification& mod, TupleId* new_tuple = nullptr);

  /// Puts the whole batch to the vote as ONE composite proposal
  /// (PropertyTool::ValidationPenaltyBatch): if any validator's batch
  /// penalty is positive, nothing is applied, vetoed() grows by one,
  /// and ValidationFailed is returned. Otherwise all modifications are
  /// applied atomically (Database::ApplyBatch) with a single listener
  /// notification. Caller contract: no two modifications in the batch
  /// may touch the same tuple (see DESIGN.md). `new_tuples`, when
  /// non-null, receives one id per modification (kInvalidTuple for
  /// non-inserts).
  Status TryApplyBatch(std::span<const Modification> mods,
                       std::vector<TupleId>* new_tuples = nullptr);

  /// Applies the batch regardless of votes (counts forced() once if
  /// any validator objected).
  Status ForceApplyBatch(std::span<const Modification> mods,
                         std::vector<TupleId>* new_tuples = nullptr);

  /// Batch-size hint from CoordinatorOptions.batch_size: how many
  /// modifications a tool should try to group per proposal. 1 (the
  /// default) means the tool should use the single-modification path,
  /// keeping pre-batching behaviour bit-identical.
  int batch_hint() const { return batch_hint_; }
  void set_batch_hint(int hint) { batch_hint_ = hint < 1 ? 1 : hint; }

  /// Veto-rate-driven autotuning (CoordinatorOptions.batch_auto): when
  /// on, batch_hint() halves whenever validators object to a proposal
  /// (vetoed, or forced through over an objection) and doubles — up to
  /// kMaxAutoBatch — after kGrowStreak consecutive objection-free
  /// proposals. A tool that re-reads batch_hint() each round thus
  /// adapts its proposal size to the current veto pressure: large
  /// batches while everything is accepted, back to fine-grained
  /// proposals as soon as vetoes appear (a vetoed batch rejects all
  /// its modifications at once, so high veto rates make big batches
  /// wasteful). Deterministic: the hint trajectory depends only on the
  /// proposal/vote sequence, which is identical across the serial,
  /// clone-parallel and shared-parallel execution modes.
  bool batch_auto() const { return batch_auto_; }
  void set_batch_auto(bool on) { batch_auto_ = on; }

  static constexpr int kGrowStreak = 8;
  static constexpr int kMaxAutoBatch = 256;

  /// Number of proposals rejected by validators so far.
  int64_t vetoed() const { return vetoed_; }
  /// Number of modifications applied bypassing a veto.
  int64_t forced() const { return forced_; }
  /// Number of modifications applied (accepted + forced).
  int64_t applied() const { return applied_; }

 private:
  Status Apply(const Modification& mod, TupleId* new_tuple);
  Status ApplyBatch(std::span<const Modification> mods,
                    std::vector<TupleId>* new_tuples);
  /// Autotuning hooks (no-ops unless batch_auto): an objection shrinks
  /// the hint and resets the streak; an objection-free proposal grows
  /// it after a sustained streak.
  void OnObjection();
  void OnClean();

  Database* db_;
  std::vector<PropertyTool*> validators_;
  Rng* rng_;
  AccessMonitor* monitor_;
  int tool_id_;
  int batch_hint_ = 1;
  bool batch_auto_ = false;
  int accept_streak_ = 0;
  int64_t vetoed_ = 0;
  int64_t forced_ = 0;
  int64_t applied_ = 0;
};

}  // namespace aspect
