// TweakContext: the coordinator-provided channel through which a
// tweaking algorithm modifies the dataset.
//
// Every proposal is first put to the vote of the validators of the
// already-applied tools (Sec. III-C): if any votes against, the
// proposal is rejected and the tool must find an alternative. After
// enough failed alternatives a tool may ForceApply, accepting the
// error increase, exactly as the paper allows ("If no such alternative
// is possible, ASPECT can allow a modification to proceed").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "aspect/vote_index.h"
#include "common/rng.h"
#include "common/status.h"
#include "relational/database.h"

namespace aspect {

class PropertyTool;

/// Records which cells each tool wrote, for overlap detection (O2).
class AccessMonitor;

class TweakContext {
 public:
  TweakContext(Database* db, std::vector<PropertyTool*> validators,
               Rng* rng, AccessMonitor* monitor = nullptr,
               int tool_id = -1);

  Database* db() { return db_; }
  const Database& db() const { return *db_; }
  Rng* rng() { return rng_; }

  /// Applies `mod` if every validator accepts it; returns
  /// ValidationFailed (without applying) otherwise.
  Status TryApply(const Modification& mod, TupleId* new_tuple = nullptr);

  /// Applies `mod` regardless of votes (accepted error increase).
  Status ForceApply(const Modification& mod, TupleId* new_tuple = nullptr);

  /// Puts the whole batch to the vote as ONE composite proposal
  /// (PropertyTool::ValidationPenaltyBatch): if any validator's batch
  /// penalty is positive, nothing is applied, vetoed() grows by one,
  /// and ValidationFailed is returned. Otherwise all modifications are
  /// applied atomically (Database::ApplyBatch) with a single listener
  /// notification. Caller contract: no two modifications in the batch
  /// may touch the same tuple (see DESIGN.md). `new_tuples`, when
  /// non-null, receives one id per modification (kInvalidTuple for
  /// non-inserts).
  Status TryApplyBatch(std::span<const Modification> mods,
                       std::vector<TupleId>* new_tuples = nullptr);

  /// Applies the batch regardless of votes (counts forced() once if
  /// any validator objected).
  Status ForceApplyBatch(std::span<const Modification> mods,
                         std::vector<TupleId>* new_tuples = nullptr);

  /// Batch-size hint from CoordinatorOptions.batch_size: how many
  /// modifications a tool should try to group per proposal. 1 (the
  /// default) means the tool should use the single-modification path,
  /// keeping pre-batching behaviour bit-identical.
  int batch_hint() const { return batch_hint_; }
  void set_batch_hint(int hint) { batch_hint_ = hint < 1 ? 1 : hint; }

  /// Veto-rate-driven autotuning (CoordinatorOptions.batch_auto): when
  /// on, batch_hint() halves whenever validators object to a proposal
  /// (vetoed, or forced through over an objection) and doubles — up to
  /// kMaxAutoBatch — after kGrowStreak consecutive objection-free
  /// proposals. A tool that re-reads batch_hint() each round thus
  /// adapts its proposal size to the current veto pressure: large
  /// batches while everything is accepted, back to fine-grained
  /// proposals as soon as vetoes appear (a vetoed batch rejects all
  /// its modifications at once, so high veto rates make big batches
  /// wasteful). Deterministic: the hint trajectory depends only on the
  /// proposal/vote sequence, which is identical across the serial,
  /// clone-parallel and shared-parallel execution modes.
  bool batch_auto() const { return batch_auto_; }
  void set_batch_auto(bool on) { batch_auto_ = on; }

  static constexpr int kGrowStreak = 8;
  static constexpr int kMaxAutoBatch = 256;

  /// Number of proposals rejected by validators so far.
  int64_t vetoed() const { return vetoed_; }
  /// Number of modifications applied bypassing a veto.
  int64_t forced() const { return forced_; }
  /// Number of modifications applied (accepted + forced).
  int64_t applied() const { return applied_; }

  /// Slot sentinel for set_vote_routing: the stepping tool is not in
  /// the index's validator list.
  static constexpr size_t kNoSelfSlot = static_cast<size_t>(-1);

  /// Enables scope-routed voting: proposals consult only the
  /// validators `index` maps to their write footprint (plus the
  /// always-vote fallback set); every skipped vote is provably zero.
  /// `index` must outlive the context and describe the coordinator's
  /// *enforced* list — this context's validator list with the stepping
  /// tool itself spliced in at `self_slot` (kNoSelfSlot when the tool
  /// is not yet enforced, i.e. the lists coincide). Indexing the
  /// enforced list is what lets the coordinator maintain ONE index
  /// incrementally across steps instead of rebuilding a per-step
  /// permutation; the context maps validator i to index slot
  /// i + (i >= self_slot). Routed loops walk the validators in their
  /// original order, so veto decisions, veto attribution and the
  /// autotuning trajectory are bitwise identical to full voting.
  void set_vote_routing(const VoteIndex* index, RouteVotes mode,
                        size_t self_slot = kNoSelfSlot);

  /// One audit catch: a routed-away validator that, when invoked
  /// anyway by the sampled pruning audit, returned a nonzero penalty —
  /// its declared read scope lied. The vote still counts (the actual
  /// penalty decides), the validator is consulted on every later
  /// proposal of this context, and the coordinator distrusts its
  /// certification for the rest of the run.
  struct RouteViolation {
    int validator;  // index into the constructor's validator list
    std::string name;
    double penalty;
  };

  /// Validator votes a full-voting run would have cast so far (the
  /// per-proposal validator count, routed or not).
  int64_t votes_total() const { return votes_total_; }
  /// The subset of votes_total() proven zero and skipped by routing.
  int64_t votes_skipped() const { return votes_skipped_; }
  /// Proposals routed conservatively because a modification named a
  /// table the schema does not know (everyone voted; nothing was
  /// pruned). Surfaced as RunReport::route_fallbacks; audit mode also
  /// latches a one-time warning naming the table.
  int64_t route_fallbacks() const { return route_metrics_.fallbacks; }
  const std::vector<RouteViolation>& route_violations() const {
    return route_violations_;
  }

  /// Release-build sampling stride of the pruning audit (RouteVotes::
  /// kOn): pruned vote #0 is always audited, then every 64th — the
  /// same cadence as the lease canary, and deterministic, so a lying
  /// declaration is caught on its first pruned vote in every build.
  static constexpr int64_t kRouteAuditStride = 64;

 private:
  Status Apply(const Modification& mod, TupleId* new_tuple);
  Status ApplyBatch(std::span<const Modification> mods,
                    std::vector<TupleId>* new_tuples);
  /// True when vote routing is active for this context.
  bool Routed() const {
    return vote_index_ != nullptr && route_mode_ != RouteVotes::kOff;
  }
  /// The index slot of validator `i`: identical until self_slot_,
  /// shifted past the stepping tool's own slot after it.
  size_t SlotOf(size_t i) const {
    return self_slot_ != kNoSelfSlot && i >= self_slot_ ? i + 1 : i;
  }
  /// True when the routed consult mask says validator `i` must vote.
  bool Consulted(size_t i) const { return consult_.Test(SlotOf(i)); }
  /// Fills consult_ for `mods` (index routing plus the local distrust
  /// overlay from earlier audit catches) and returns the number of
  /// validators the mask prunes.
  int64_t RouteConsult(std::span<const Modification> mods);
  /// Sampling decision for one pruned vote; advances the counter.
  bool ShouldAuditPrune();
  /// The vote of validator `i` on `mods` under routing: skipped when
  /// pruned (0 unless a sampled audit catches a lie, in which case the
  /// actual penalty is returned and the violation latched).
  double RoutedBatchVote(size_t i, std::span<const Modification> mods,
                        double veto_cap);
  double RoutedSingleVote(size_t i, const Modification& mod);
  /// True when one of the next `pruned` pruned-vote ordinals is an
  /// audit sample. The vote loops use it to pick between the fast
  /// path — skip every pruned validator with one batched counter
  /// update — and the per-vote path that performs the sampled audits.
  bool AuditDueWithin(int64_t pruned) const;
  /// Routes `mods`, casts the consulted votes in validator-list order,
  /// and returns the index of the first objecting validator (-1 when
  /// none). Handles skipped-vote accounting and sampled audits; veto
  /// attribution matches full voting because pruned votes are provably
  /// (and, when audited, verifiably) zero.
  int RoutedObjector(std::span<const Modification> mods, double veto_cap);
  void LatchRouteViolation(size_t i, double penalty);
  /// Autotuning hooks (no-ops unless batch_auto): an objection shrinks
  /// the hint and resets the streak; an objection-free proposal grows
  /// it after a sustained streak.
  void OnObjection();
  void OnClean();

  Database* db_;
  std::vector<PropertyTool*> validators_;
  Rng* rng_;
  AccessMonitor* monitor_;
  int tool_id_;
  int batch_hint_ = 1;
  bool batch_auto_ = false;
  int accept_streak_ = 0;
  int64_t vetoed_ = 0;
  int64_t forced_ = 0;
  int64_t applied_ = 0;
  const VoteIndex* vote_index_ = nullptr;
  RouteVotes route_mode_ = RouteVotes::kOff;
  /// Position of the stepping tool itself in the index's enforced
  /// list, or kNoSelfSlot when absent (first pass of the tool).
  size_t self_slot_ = kNoSelfSlot;
  /// Scratch consult mask for the current proposal, indexed by
  /// *enforced-list slot* (set = must vote). Reused across proposals.
  ConsultMask consult_;
  /// Fallback / aggregation counters from every Route call.
  RouteMetrics route_metrics_;
  /// One-time latch for the audit-mode unknown-table warning.
  bool route_fallback_warned_ = false;
  /// Validators caught by the audit: consulted on every later
  /// proposal regardless of what the index says. The flag saves the
  /// per-proposal overlay scan on the (overwhelming) clean path.
  std::vector<uint8_t> route_local_distrust_;
  bool route_any_distrust_ = false;
  int64_t votes_total_ = 0;
  int64_t votes_skipped_ = 0;
  int64_t pruned_seen_ = 0;
  std::vector<RouteViolation> route_violations_;
};

}  // namespace aspect
