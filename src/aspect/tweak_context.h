// TweakContext: the coordinator-provided channel through which a
// tweaking algorithm modifies the dataset.
//
// Every proposal is first put to the vote of the validators of the
// already-applied tools (Sec. III-C): if any votes against, the
// proposal is rejected and the tool must find an alternative. After
// enough failed alternatives a tool may ForceApply, accepting the
// error increase, exactly as the paper allows ("If no such alternative
// is possible, ASPECT can allow a modification to proceed").
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "relational/database.h"

namespace aspect {

class PropertyTool;

/// Records which cells each tool wrote, for overlap detection (O2).
class AccessMonitor;

class TweakContext {
 public:
  TweakContext(Database* db, std::vector<PropertyTool*> validators,
               Rng* rng, AccessMonitor* monitor = nullptr,
               int tool_id = -1);

  Database* db() { return db_; }
  const Database& db() const { return *db_; }
  Rng* rng() { return rng_; }

  /// Applies `mod` if every validator accepts it; returns
  /// ValidationFailed (without applying) otherwise.
  Status TryApply(const Modification& mod, TupleId* new_tuple = nullptr);

  /// Applies `mod` regardless of votes (accepted error increase).
  Status ForceApply(const Modification& mod, TupleId* new_tuple = nullptr);

  /// Number of proposals rejected by validators so far.
  int64_t vetoed() const { return vetoed_; }
  /// Number of modifications applied bypassing a veto.
  int64_t forced() const { return forced_; }
  /// Number of modifications applied (accepted + forced).
  int64_t applied() const { return applied_; }

 private:
  Status Apply(const Modification& mod, TupleId* new_tuple);

  Database* db_;
  std::vector<PropertyTool*> validators_;
  Rng* rng_;
  AccessMonitor* monitor_;
  int tool_id_;
  int64_t vetoed_ = 0;
  int64_t forced_ = 0;
  int64_t applied_ = 0;
};

}  // namespace aspect
