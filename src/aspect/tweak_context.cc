#include "aspect/tweak_context.h"

#include "analysis/probe.h"
#include "aspect/access_monitor.h"
#include "aspect/property_tool.h"

namespace aspect {

TweakContext::TweakContext(Database* db,
                           std::vector<PropertyTool*> validators, Rng* rng,
                           AccessMonitor* monitor, int tool_id)
    : db_(db),
      validators_(std::move(validators)),
      rng_(rng),
      monitor_(monitor),
      tool_id_(tool_id) {}

void TweakContext::OnObjection() {
  if (!batch_auto_) return;
  if (batch_hint_ > 1) batch_hint_ /= 2;
  accept_streak_ = 0;
}

void TweakContext::OnClean() {
  if (!batch_auto_) return;
  if (++accept_streak_ < kGrowStreak) return;
  accept_streak_ = 0;
  batch_hint_ = batch_hint_ < kMaxAutoBatch / 2 ? batch_hint_ * 2
                                                : kMaxAutoBatch;
}

Status TweakContext::Apply(const Modification& mod, TupleId* new_tuple) {
  TupleId inserted = kInvalidTuple;
  ASPECT_RETURN_NOT_OK(db_->Apply(mod, &inserted));
  ++applied_;
  if (new_tuple != nullptr) *new_tuple = inserted;
  if (monitor_ != nullptr) {
    const int table_index = db_->schema().TableIndex(mod.table);
    if (mod.kind == OpKind::kInsertTuple) {
      // Record under the id the insert actually produced.
      Modification with_id = mod;
      with_id.tuples = {inserted};
      monitor_->Record(tool_id_, table_index, with_id);
    } else {
      monitor_->Record(tool_id_, table_index, mod);
    }
  }
  return Status::OK();
}

Status TweakContext::TryApply(const Modification& mod, TupleId* new_tuple) {
  {
    // Validator voting reads the *validators'* statistics, not the
    // proposing tool's cells; keep it out of the tool's observed
    // footprint (scope-conformance probes, analysis/probe.h).
    analysis::ScopedProbeSuppress suppress;
    for (PropertyTool* v : validators_) {
      if (v->ValidationPenalty(mod) > 0) {
        ++vetoed_;
        OnObjection();
        return Status::ValidationFailed("vetoed by " + v->name());
      }
    }
  }
  OnClean();
  return Apply(mod, new_tuple);
}

Status TweakContext::ForceApply(const Modification& mod,
                                TupleId* new_tuple) {
  {
    analysis::ScopedProbeSuppress suppress;
    bool objected = false;
    for (PropertyTool* v : validators_) {
      if (v->ValidationPenalty(mod) > 0) {
        ++forced_;
        objected = true;
        break;
      }
    }
    if (objected) {
      OnObjection();
    } else {
      OnClean();
    }
  }
  return Apply(mod, new_tuple);
}

Status TweakContext::ApplyBatch(std::span<const Modification> mods,
                                std::vector<TupleId>* new_tuples) {
  std::vector<TupleId> inserted;
  ASPECT_RETURN_NOT_OK(db_->ApplyBatch(mods, &inserted));
  applied_ += static_cast<int64_t>(mods.size());
  if (monitor_ != nullptr) {
    for (size_t i = 0; i < mods.size(); ++i) {
      const Modification& mod = mods[i];
      const int table_index = db_->schema().TableIndex(mod.table);
      if (mod.kind == OpKind::kInsertTuple) {
        Modification with_id = mod;
        with_id.tuples = {inserted[i]};
        monitor_->Record(tool_id_, table_index, with_id);
      } else {
        monitor_->Record(tool_id_, table_index, mod);
      }
    }
  }
  if (new_tuples != nullptr) *new_tuples = std::move(inserted);
  return Status::OK();
}

Status TweakContext::TryApplyBatch(std::span<const Modification> mods,
                                   std::vector<TupleId>* new_tuples) {
  if (mods.empty()) {
    if (new_tuples != nullptr) new_tuples->clear();
    return Status::OK();
  }
  {
    analysis::ScopedProbeSuppress suppress;
    for (PropertyTool* v : validators_) {
      if (v->ValidationPenaltyBatch(mods) > 0) {
        ++vetoed_;
        OnObjection();
        return Status::ValidationFailed("batch vetoed by " + v->name());
      }
    }
  }
  OnClean();
  return ApplyBatch(mods, new_tuples);
}

Status TweakContext::ForceApplyBatch(std::span<const Modification> mods,
                                     std::vector<TupleId>* new_tuples) {
  if (mods.empty()) {
    if (new_tuples != nullptr) new_tuples->clear();
    return Status::OK();
  }
  {
    analysis::ScopedProbeSuppress suppress;
    bool objected = false;
    for (PropertyTool* v : validators_) {
      if (v->ValidationPenaltyBatch(mods) > 0) {
        ++forced_;
        objected = true;
        break;
      }
    }
    if (objected) {
      OnObjection();
    } else {
      OnClean();
    }
  }
  return ApplyBatch(mods, new_tuples);
}

}  // namespace aspect
