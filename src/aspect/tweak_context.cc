#include "aspect/tweak_context.h"

#include <algorithm>
#include <cassert>

#include "analysis/probe.h"
#include "aspect/access_monitor.h"
#include "aspect/property_tool.h"
#include "common/logging.h"

namespace aspect {
namespace {

// The coordinator vetoes on any penalty > 0 (Sec. III-C), so batch
// votes may stop pricing once the sum provably stays above zero — the
// early-exit cap handed to ValidationPenaltyBatch. Exact for every
// implementation honoring the cap contract (property_tool.h), so the
// veto decisions are bitwise identical to uncapped voting.
constexpr double kVetoCap = 0.0;

}  // namespace

TweakContext::TweakContext(Database* db,
                           std::vector<PropertyTool*> validators, Rng* rng,
                           AccessMonitor* monitor, int tool_id)
    : db_(db),
      validators_(std::move(validators)),
      rng_(rng),
      monitor_(monitor),
      tool_id_(tool_id) {}

void TweakContext::set_vote_routing(const VoteIndex* index, RouteVotes mode,
                                    size_t self_slot) {
  // Precondition: `index` describes the coordinator's enforced list —
  // this context's validator list with the stepping tool spliced in at
  // `self_slot` (kNoSelfSlot when absent).
  vote_index_ = mode == RouteVotes::kOff ? nullptr : index;
  route_mode_ = mode;
  self_slot_ = self_slot;
  assert(vote_index_ == nullptr ||
         vote_index_->num_validators() ==
             validators_.size() + (self_slot_ != kNoSelfSlot ? 1 : 0));
  route_local_distrust_.assign(validators_.size(), 0);
  route_any_distrust_ = false;
}

int64_t TweakContext::RouteConsult(std::span<const Modification> mods) {
  const int64_t fallbacks_before = route_metrics_.fallbacks;
  vote_index_->Route(mods, &consult_, &route_metrics_);
  if (route_mode_ == RouteVotes::kAudit && !route_fallback_warned_ &&
      route_metrics_.fallbacks != fallbacks_before) {
    // Rare conservative bail: without this latch the proposal would be
    // indistinguishable from a legitimately routed one.
    route_fallback_warned_ = true;
    const std::string* unknown = nullptr;
    for (const Modification& mod : mods) {
      if (db_->schema().TableIndex(mod.table) < 0) {
        unknown = &mod.table;
        break;
      }
    }
    ASPECT_LOG(Warning)
        << "vote routing fell back to consulting every validator: "
        << "proposal names unknown table '"
        << (unknown != nullptr ? *unknown : std::string("?")) << "'";
  }
  if (route_any_distrust_) {
    for (size_t i = 0; i < validators_.size(); ++i) {
      if (route_local_distrust_[i]) consult_.SetBit(SlotOf(i));
    }
  }
  // Pruned validators = the validator list minus the set bits at
  // validator slots (the stepping tool's own slot, when present, is
  // not a validator and is excluded from the count).
  size_t consulted = consult_.CountSet();
  if (self_slot_ != kNoSelfSlot && consult_.Test(self_slot_)) --consulted;
  return static_cast<int64_t>(validators_.size()) -
         static_cast<int64_t>(consulted);
}

bool TweakContext::ShouldAuditPrune() {
  const int64_t n = pruned_seen_++;
  if (route_mode_ == RouteVotes::kAudit) return true;
#ifndef NDEBUG
  (void)n;
  return true;  // debug builds audit every pruned vote
#else
  // Pruned vote #0 is always audited (the lease-canary cadence), so a
  // lying declaration is caught deterministically in release too.
  return n % kRouteAuditStride == 0;
#endif
}

void TweakContext::LatchRouteViolation(size_t i, double penalty) {
  route_local_distrust_[i] = 1;
  route_any_distrust_ = true;
  route_violations_.push_back(
      {static_cast<int>(i), validators_[i]->name(), penalty});
}

double TweakContext::RoutedSingleVote(size_t i, const Modification& mod) {
  if (Consulted(i)) return validators_[i]->ValidationPenalty(mod);
  ++votes_skipped_;
  if (!ShouldAuditPrune()) return 0.0;
  const double p = validators_[i]->ValidationPenalty(mod);
  if (p != 0.0) {
    // The routing index proved this vote zero; a nonzero return means
    // the validator reads outside its certified scope. Latch, keep the
    // validator on the full-voting path, and let the real penalty
    // decide the proposal.
    LatchRouteViolation(i, p);
    return p;
  }
  return 0.0;
}

double TweakContext::RoutedBatchVote(size_t i,
                                     std::span<const Modification> mods,
                                     double veto_cap) {
  if (Consulted(i)) {
    return validators_[i]->ValidationPenaltyBatch(mods, veto_cap);
  }
  ++votes_skipped_;
  if (!ShouldAuditPrune()) return 0.0;
  // The audit must see the exact composite penalty: uncapped.
  const double p = validators_[i]->ValidationPenaltyBatch(mods);
  if (p != 0.0) {
    LatchRouteViolation(i, p);
    return p;
  }
  return 0.0;
}

bool TweakContext::AuditDueWithin(int64_t pruned) const {
  if (pruned <= 0) return false;
  if (route_mode_ == RouteVotes::kAudit) return true;
#ifndef NDEBUG
  return true;  // debug builds audit every pruned vote
#else
  // First audit ordinal at or after pruned_seen_ — due iff it falls
  // before the window ends. A veto may cut the window short, but a
  // shorter window can only make a due audit undue, and the per-vote
  // path re-checks each ordinal, so the cadence stays exact.
  const int64_t next = (pruned_seen_ + kRouteAuditStride - 1) /
                       kRouteAuditStride * kRouteAuditStride;
  return next < pruned_seen_ + pruned;
#endif
}

int TweakContext::RoutedObjector(std::span<const Modification> mods,
                                 double veto_cap) {
  const int64_t pruned_expected = RouteConsult(mods);
  const bool single = mods.size() == 1;
  if (!AuditDueWithin(pruned_expected)) {
    // Fast path: no pruned vote of this proposal is an audit sample,
    // so skipping costs one counter update — the vote loop is
    // O(consulted validators), not O(all validators' penalty calls).
    int64_t pruned = 0;
    for (size_t i = 0; i < validators_.size(); ++i) {
      if (!Consulted(i)) {
        ++pruned;
        continue;
      }
      const double p =
          single ? validators_[i]->ValidationPenalty(mods[0])
                 : validators_[i]->ValidationPenaltyBatch(mods, veto_cap);
      if (p > 0) {
        votes_skipped_ += pruned;
        pruned_seen_ += pruned;
        return static_cast<int>(i);
      }
    }
    votes_skipped_ += pruned;
    pruned_seen_ += pruned;
    return -1;
  }
  for (size_t i = 0; i < validators_.size(); ++i) {
    const double p = single ? RoutedSingleVote(i, mods[0])
                            : RoutedBatchVote(i, mods, veto_cap);
    if (p > 0) return static_cast<int>(i);
  }
  return -1;
}

void TweakContext::OnObjection() {
  if (!batch_auto_) return;
  if (batch_hint_ > 1) batch_hint_ /= 2;
  accept_streak_ = 0;
}

void TweakContext::OnClean() {
  if (!batch_auto_) return;
  if (++accept_streak_ < kGrowStreak) return;
  accept_streak_ = 0;
  batch_hint_ = batch_hint_ < kMaxAutoBatch / 2 ? batch_hint_ * 2
                                                : kMaxAutoBatch;
}

Status TweakContext::Apply(const Modification& mod, TupleId* new_tuple) {
  TupleId inserted = kInvalidTuple;
  ASPECT_RETURN_NOT_OK(db_->Apply(mod, &inserted));
  ++applied_;
  if (new_tuple != nullptr) *new_tuple = inserted;
  if (monitor_ != nullptr) {
    const int table_index = db_->schema().TableIndex(mod.table);
    if (mod.kind == OpKind::kInsertTuple) {
      // Record under the id the insert actually produced.
      Modification with_id = mod;
      with_id.tuples = {inserted};
      monitor_->Record(tool_id_, table_index, with_id);
    } else {
      monitor_->Record(tool_id_, table_index, mod);
    }
  }
  return Status::OK();
}

Status TweakContext::TryApply(const Modification& mod, TupleId* new_tuple) {
  {
    // Validator voting reads the *validators'* statistics, not the
    // proposing tool's cells; keep it out of the tool's observed
    // footprint (scope-conformance probes, analysis/probe.h).
    analysis::ScopedProbeSuppress suppress;
    votes_total_ += static_cast<int64_t>(validators_.size());
    if (Routed()) {
      const int bad = RoutedObjector({&mod, 1}, kVetoCap);
      if (bad >= 0) {
        ++vetoed_;
        OnObjection();
        return Status::ValidationFailed("vetoed by " +
                                        validators_[bad]->name());
      }
    } else {
      for (PropertyTool* v : validators_) {
        if (v->ValidationPenalty(mod) > 0) {
          ++vetoed_;
          OnObjection();
          return Status::ValidationFailed("vetoed by " + v->name());
        }
      }
    }
  }
  OnClean();
  return Apply(mod, new_tuple);
}

Status TweakContext::ForceApply(const Modification& mod,
                                TupleId* new_tuple) {
  {
    analysis::ScopedProbeSuppress suppress;
    votes_total_ += static_cast<int64_t>(validators_.size());
    bool objected = false;
    if (Routed()) {
      if (RoutedObjector({&mod, 1}, kVetoCap) >= 0) {
        ++forced_;
        objected = true;
      }
    } else {
      for (PropertyTool* v : validators_) {
        if (v->ValidationPenalty(mod) > 0) {
          ++forced_;
          objected = true;
          break;
        }
      }
    }
    if (objected) {
      OnObjection();
    } else {
      OnClean();
    }
  }
  return Apply(mod, new_tuple);
}

Status TweakContext::ApplyBatch(std::span<const Modification> mods,
                                std::vector<TupleId>* new_tuples) {
  std::vector<TupleId> inserted;
  ASPECT_RETURN_NOT_OK(db_->ApplyBatch(mods, &inserted));
  applied_ += static_cast<int64_t>(mods.size());
  if (monitor_ != nullptr) {
    for (size_t i = 0; i < mods.size(); ++i) {
      const Modification& mod = mods[i];
      const int table_index = db_->schema().TableIndex(mod.table);
      if (mod.kind == OpKind::kInsertTuple) {
        Modification with_id = mod;
        with_id.tuples = {inserted[i]};
        monitor_->Record(tool_id_, table_index, with_id);
      } else {
        monitor_->Record(tool_id_, table_index, mod);
      }
    }
  }
  if (new_tuples != nullptr) *new_tuples = std::move(inserted);
  return Status::OK();
}

Status TweakContext::TryApplyBatch(std::span<const Modification> mods,
                                   std::vector<TupleId>* new_tuples) {
  if (mods.empty()) {
    if (new_tuples != nullptr) new_tuples->clear();
    return Status::OK();
  }
  {
    analysis::ScopedProbeSuppress suppress;
    votes_total_ += static_cast<int64_t>(validators_.size());
    if (Routed()) {
      const int bad = RoutedObjector(mods, kVetoCap);
      if (bad >= 0) {
        ++vetoed_;
        OnObjection();
        return Status::ValidationFailed("batch vetoed by " +
                                        validators_[bad]->name());
      }
    } else {
      for (PropertyTool* v : validators_) {
        if (v->ValidationPenaltyBatch(mods, kVetoCap) > 0) {
          ++vetoed_;
          OnObjection();
          return Status::ValidationFailed("batch vetoed by " + v->name());
        }
      }
    }
  }
  OnClean();
  return ApplyBatch(mods, new_tuples);
}

Status TweakContext::ForceApplyBatch(std::span<const Modification> mods,
                                     std::vector<TupleId>* new_tuples) {
  if (mods.empty()) {
    if (new_tuples != nullptr) new_tuples->clear();
    return Status::OK();
  }
  {
    analysis::ScopedProbeSuppress suppress;
    votes_total_ += static_cast<int64_t>(validators_.size());
    bool objected = false;
    if (Routed()) {
      if (RoutedObjector(mods, kVetoCap) >= 0) {
        ++forced_;
        objected = true;
      }
    } else {
      for (PropertyTool* v : validators_) {
        if (v->ValidationPenaltyBatch(mods, kVetoCap) > 0) {
          ++forced_;
          objected = true;
          break;
        }
      }
    }
    if (objected) {
      OnObjection();
    } else {
      OnClean();
    }
  }
  return ApplyBatch(mods, new_tuples);
}

}  // namespace aspect
