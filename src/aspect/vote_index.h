// VoteIndex: scope-indexed validator routing for the vote loops.
//
// The inner loop of the collaborative framework puts every proposed
// modification to the vote of every enforced validator (Sec. III-C).
// After the scope-certification work of the O1-parallel pass, the
// coordinator already knows exactly which (table, column) atoms — and
// which tuple-id intervals — each validator's statistics read. A write
// that provably cannot reach a validator's statistics cannot change
// its vote (the ValidationDisturb argument that makes shared-mode
// leases sound), so the vote is provably zero and need not be cast.
//
// This index inverts the certified DeclaredScope() stats_reads of a
// vote-ordered validator list into per-table / per-atom reader
// buckets. Routing a proposal batch derives its write atoms exactly as
// the lease write recorder does (cell ops touch (table, column) at the
// listed tuple ids; tuple inserts/deletes are row-structure writes,
// which disturb every reader of the table) and consults only the
// overlapping readers. Validators whose scope is unknown, whose read
// set is incomplete (observed-only scopes), or whose declaration the
// checker/lease/audit machinery has distrusted always vote — the
// conservative fallback that keeps pruning sound.
//
// The index is *incrementally maintained*: only two events can change
// it mid-run — the enforced list growing by one validator
// (AddValidator) and a distrust/degrade event (Distrust) — so the
// coordinator applies O(change) deltas instead of re-resolving and
// rebuilding over the whole fleet each step. Build is defined as Reset
// plus a loop of AddValidator, and Distrust removes exactly the bucket
// entries a fresh Build over the degraded scope list would never have
// created, so an incrementally maintained index is structurally
// identical to a from-scratch rebuild (DebugEquals; the coordinator
// asserts this in debug builds).
//
// The writer side of the ranged-reader exemption is *exact*: the
// batch's touched tuple ids per cell atom are aggregated into a
// RowIntervalSet, so a reader certified to [lo, hi] is skipped iff the
// batch truly stays outside its interval — strictly stronger than the
// declared-vs-declared test RangedWritesDisturb applies. Aggregation
// is skipped for an atom once every one of its ranged readers is
// already consulted, and the interval sets are per-bucket scratch
// reused across calls, so the hot path allocates nothing in steady
// state. The scratch makes Route logically const but NOT reentrant:
// an index must only be routed from one thread at a time (each
// serial-stepping coordinator owns its own index, which satisfies
// this).
//
// Soundness is audited at runtime: TweakContext samples pruned votes
// (debug: every one; release: the first, then 1/64, mirroring the
// lease canary) and invokes the pruned validator anyway. A nonzero
// return means the declaration lied; the audit latches a diagnostic
// and the coordinator distrusts the tool's routing (and its scope
// certification) for the rest of the run. See DESIGN.md Sec. 14.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "analysis/access_scope.h"
#include "analysis/row_intervals.h"
#include "relational/database.h"

namespace aspect {

/// Validator-routing mode (CoordinatorOptions.route_votes and the
/// CLI's --route-votes).
enum class RouteVotes : int {
  /// Legacy full voting: every enforced validator votes on every
  /// proposal. No index is built.
  kOff = 0,
  /// Scope-routed voting with the sampled pruning audit (debug builds
  /// audit every pruned vote, release builds the first then 1/64).
  kOn = 1,
  /// Scope-routed voting with every pruned vote audited, in every
  /// build configuration. The CI conformance mode.
  kAudit = 2,
};

/// A word-packed bitset sized to a validator list: the consult set a
/// Route call produces (bit i set = validator i must vote). Replaces
/// the per-proposal std::vector<uint8_t> assign with one word copy and
/// keeps its capacity across proposals, so the routed vote hot path
/// performs no allocation in steady state. Cleared tail bits past
/// size() are an invariant every mutator maintains, which is what lets
/// CountSet and operator== work word-wise.
class ConsultMask {
 public:
  /// Resizes to `n` bits, all clear. Reuses capacity.
  void Reset(size_t n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0);
  }

  /// Grows by one bit at the end.
  void PushBack(bool set) {
    if ((size_ & 63) == 0) words_.push_back(0);
    if (set) words_[size_ >> 6] |= uint64_t{1} << (size_ & 63);
    ++size_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Named SetBit (not Set) so call sites stay visibly distinct from
  // the storage mutators the lease/write lint polices.
  void SetBit(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }

  /// Sets every bit (the conservative everyone-votes fallback).
  void SetAll();

  /// Number of set bits (popcount over the words).
  size_t CountSet() const;

  /// Becomes a copy of `other`, reusing capacity.
  void CopyFrom(const ConsultMask& other) {
    size_ = other.size_;
    words_.assign(other.words_.begin(), other.words_.end());
  }

  friend bool operator==(const ConsultMask&, const ConsultMask&) = default;

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Per-Route-call observability counters, accumulated by the caller.
struct RouteMetrics {
  /// Proposals routed conservatively because a modification named a
  /// table the schema does not know: the consult set was filled, so
  /// the proposal is indistinguishable from a fully-consulted routed
  /// one unless counted here (RunReport::route_fallbacks).
  int64_t fallbacks = 0;
  /// Tuple ids aggregated into per-atom interval sets on the large-
  /// batch path. The skip-when-all-consulted fix keeps this from
  /// growing once an atom's ranged readers are all marked; the
  /// regression test pins the count.
  int64_t interval_inserts = 0;
};

class VoteIndex {
 public:
  /// Empties the index and binds it to `schema` (which must outlive
  /// the index). Bucket and scratch capacity is released; the index
  /// is ready for AddValidator.
  void Reset(const Schema* schema);

  /// Appends one validator (index num_validators() before the call)
  /// with its *certified* scope: the declaration when the coordinator
  /// trusts it, else the observed (write-only, reads_complete = false)
  /// scope, which routes the validator to the always-vote set. O(atoms
  /// of the scope). Returns the new validator's index.
  int AddValidator(const AccessScope& scope);

  /// Degrades validator `idx` to the always-vote set and removes its
  /// bucket entries — exactly the state a fresh Build over the same
  /// list with this validator's scope degraded to observed would
  /// produce (the property DebugEquals checks). Idempotent; O(buckets
  /// the validator appears in).
  void Distrust(int idx);

  /// Builds the index for a vote-ordered validator list in one shot:
  /// Reset plus AddValidator per scope. `scopes[i]` is the certified
  /// scope of the i-th validator.
  void Build(const Schema* schema, std::span<const AccessScope> scopes);

  size_t num_validators() const { return always_.size(); }

  /// Fills `consult` (resized to num_validators()) with a set bit for
  /// every validator whose certified statistics a write in `mods`
  /// could disturb — including all always-vote validators — and a
  /// clear bit for every validator whose votes on this batch are
  /// provably zero. `metrics`, when non-null, accumulates fallback and
  /// aggregation counters. Not reentrant (see the scratch note in the
  /// file comment): one Route call at a time per index.
  void Route(std::span<const Modification> mods, ConsultMask* consult,
             RouteMetrics* metrics = nullptr) const;

  /// Structural identity with `other` (same always-vote set, same
  /// reader buckets in the same order). The debug-build cross-check
  /// that an incrementally maintained index matches a from-scratch
  /// rebuild; scratch state is excluded.
  bool DebugEquals(const VoteIndex& other) const;

 private:
  /// One cell-atom reader; `ranged` readers certify all their reads of
  /// the atom stay inside [lo, hi].
  struct RangedReader {
    int idx;
    bool ranged;
    int64_t lo;
    int64_t hi;

    friend bool operator==(const RangedReader&,
                           const RangedReader&) = default;
  };

  /// The readers of one cell atom plus the Route-call scratch that
  /// aggregates the batch's touched tuple ids for them. The scratch is
  /// mutable (Route is logically const) and always left empty between
  /// calls; it exists to reuse interval-set capacity instead of
  /// rebuilding a std::map<Atom, RowIntervalSet> per proposal.
  struct CellBucket {
    std::vector<RangedReader> readers;
    mutable analysis::RowIntervalSet touched;
  };

  /// Returns every used bucket's scratch to the empty state.
  void ClearTouchedScratch() const;

  const Schema* schema_ = nullptr;
  /// Uncertified (unknown / incomplete-reads / distrusted) validators:
  /// consulted on every proposal. Route starts from a word copy.
  ConsultMask always_;
  /// Per table: every validator with any stats_read atom on the table.
  /// A row-structure write (tuple insert/delete) disturbs all of them
  /// — new or removed live rows carry cells in every column. Kept
  /// sorted unique: AddValidator appends a strictly increasing index
  /// (guarded against the same validator holding several atoms of one
  /// table, which arrive consecutively from the sorted scope set).
  std::map<int, std::vector<int>> table_readers_;
  /// Per table: validators reading (table, kWholeTable) — disturbed by
  /// any write to the table, cell or structural.
  std::map<int, std::vector<int>> whole_table_readers_;
  /// Per cell atom: validators reading exactly that column, with their
  /// certified row interval when declared.
  std::map<AccessScope::Atom, CellBucket> cell_readers_;
  /// The buckets whose scratch the current Route call populated.
  mutable std::vector<const CellBucket*> touched_scratch_;
};

}  // namespace aspect
