// VoteIndex: scope-indexed validator routing for the vote loops.
//
// The inner loop of the collaborative framework puts every proposed
// modification to the vote of every enforced validator (Sec. III-C).
// After the scope-certification work of the O1-parallel pass, the
// coordinator already knows exactly which (table, column) atoms — and
// which tuple-id intervals — each validator's statistics read. A write
// that provably cannot reach a validator's statistics cannot change
// its vote (the ValidationDisturb argument that makes shared-mode
// leases sound), so the vote is provably zero and need not be cast.
//
// This index inverts the certified DeclaredScope() stats_reads of a
// vote-ordered validator list into per-table / per-atom reader
// buckets. Routing a proposal batch derives its write atoms exactly as
// the lease write recorder does (cell ops touch (table, column) at the
// listed tuple ids; tuple inserts/deletes are row-structure writes,
// which disturb every reader of the table) and consults only the
// overlapping readers. Validators whose scope is unknown, whose read
// set is incomplete (observed-only scopes), or whose declaration the
// checker/lease/audit machinery has distrusted always vote — the
// conservative fallback that keeps pruning sound.
//
// The writer side of the ranged-reader exemption is *exact*: the
// batch's touched tuple ids per cell atom are aggregated into a
// RowIntervalSet, so a reader certified to [lo, hi] is skipped iff the
// batch truly stays outside its interval — strictly stronger than the
// declared-vs-declared test RangedWritesDisturb applies.
//
// Soundness is audited at runtime: TweakContext samples pruned votes
// (debug: every one; release: the first, then 1/64, mirroring the
// lease canary) and invokes the pruned validator anyway. A nonzero
// return means the declaration lied; the audit latches a diagnostic
// and the coordinator distrusts the tool's routing (and its scope
// certification) for the rest of the run. See DESIGN.md Sec. 14.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "analysis/access_scope.h"
#include "relational/database.h"

namespace aspect {

/// Validator-routing mode (CoordinatorOptions.route_votes and the
/// CLI's --route-votes).
enum class RouteVotes : int {
  /// Legacy full voting: every enforced validator votes on every
  /// proposal. No index is built.
  kOff = 0,
  /// Scope-routed voting with the sampled pruning audit (debug builds
  /// audit every pruned vote, release builds the first then 1/64).
  kOn = 1,
  /// Scope-routed voting with every pruned vote audited, in every
  /// build configuration. The CI conformance mode.
  kAudit = 2,
};

class VoteIndex {
 public:
  /// Builds the index for a vote-ordered validator list. `scopes[i]`
  /// is the *certified* scope of the i-th validator: its declaration
  /// when the coordinator still trusts it, else the observed
  /// (write-only, reads_complete = false) scope, which routes the
  /// validator to the always-vote set. `schema` must outlive the
  /// index.
  void Build(const Schema* schema, std::span<const AccessScope> scopes);

  size_t num_validators() const { return always_.size(); }

  /// Fills `consult` (resized to num_validators()) with 1 for every
  /// validator whose certified statistics a write in `mods` could
  /// disturb — including all always-vote validators — and 0 for every
  /// validator whose votes on this batch are provably zero.
  void Route(std::span<const Modification> mods,
             std::vector<uint8_t>* consult) const;

 private:
  /// One cell-atom reader; `ranged` readers certify all their reads of
  /// the atom stay inside [lo, hi].
  struct RangedReader {
    int idx;
    bool ranged;
    int64_t lo;
    int64_t hi;
  };

  const Schema* schema_ = nullptr;
  /// Uncertified (unknown / incomplete-reads) validators: consulted on
  /// every proposal.
  std::vector<uint8_t> always_;
  /// Per table: every validator with any stats_read atom on the table.
  /// A row-structure write (tuple insert/delete) disturbs all of them
  /// — new or removed live rows carry cells in every column.
  std::map<int, std::vector<int>> table_readers_;
  /// Per table: validators reading (table, kWholeTable) — disturbed by
  /// any write to the table, cell or structural.
  std::map<int, std::vector<int>> whole_table_readers_;
  /// Per cell atom: validators reading exactly that column, with their
  /// certified row interval when declared.
  std::map<AccessScope::Atom, std::vector<RangedReader>> cell_readers_;
};

}  // namespace aspect
