#include "aspect/access_scope.h"

namespace aspect {

void AccessScope::AddRead(int table, int column) {
  reads.insert({table, column});
}

void AccessScope::AddWrite(int table, int column) {
  writes.insert({table, column});
  reads.insert({table, column});
}

void AccessScope::MergeFrom(const AccessScope& other) {
  known = known && other.known;
  reads_complete = reads_complete && other.reads_complete;
  reads.insert(other.reads.begin(), other.reads.end());
  writes.insert(other.writes.begin(), other.writes.end());
}

bool AtomsOverlap(AccessScope::Atom a, AccessScope::Atom b) {
  if (a.first != b.first) return false;
  return a.second == AccessScope::kWholeTable ||
         b.second == AccessScope::kWholeTable || a.second == b.second;
}

bool AtomSetsOverlap(const std::set<AccessScope::Atom>& a,
                     const std::set<AccessScope::Atom>& b) {
  // Atom sets are tiny (a handful of (table, column) pairs per tool),
  // so the quadratic scan beats anything cleverer.
  for (const AccessScope::Atom& x : a) {
    for (const AccessScope::Atom& y : b) {
      if (AtomsOverlap(x, y)) return true;
    }
  }
  return false;
}

bool WritesDisturb(const AccessScope& writer, const AccessScope& reader) {
  if (!writer.known || !reader.known) return true;
  // A reader whose read set is a lower bound (observed scope) may read
  // cells it never wrote; without the full set, disturbance cannot be
  // ruled out.
  if (!reader.reads_complete) return true;
  return AtomSetsOverlap(writer.writes, reader.reads);
}

bool ScopesConflict(const AccessScope& a, const AccessScope& b) {
  return WritesDisturb(a, b) || WritesDisturb(b, a);
}

}  // namespace aspect
