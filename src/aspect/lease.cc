#include "aspect/lease.h"

#include <cstddef>

namespace aspect {
using std::size_t;

bool PartitionWriteLeases(const std::vector<int>& tool_ids,
                          const std::vector<AccessScope>& scopes,
                          std::vector<WriteLease>* leases) {
  leases->clear();
  leases->reserve(tool_ids.size());
  for (size_t i = 0; i < tool_ids.size(); ++i) {
    WriteLease lease;
    lease.tool_id = tool_ids[i];
    lease.writes = scopes[i].writes;
    leases->push_back(std::move(lease));
  }
  // Disjointness certificate. Every write atom is also in its writer's
  // read set (AccessScope::AddWrite), so two scopes with overlapping
  // writes always conflict under the directional rules that formed the
  // group — a well-formed group passes; a failure means the planner
  // handed us a group it should not have.
  for (size_t a = 0; a < leases->size(); ++a) {
    for (size_t b = a + 1; b < leases->size(); ++b) {
      if (AtomSetsOverlap((*leases)[a].writes, (*leases)[b].writes)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace aspect
