#include "aspect/lease.h"

#include <cstddef>

namespace aspect {
using std::size_t;

bool WriteLease::Covers(int table, int column, int64_t row) const {
  const AccessScope::Atom a{table, column};
  if (!AtomCoveredBy(a, writes)) return false;
  const auto it = row_ranges.find(a);
  if (it == row_ranges.end()) return true;
  // A ranged atom demands row attribution: an all-rows write cannot be
  // proven inside the interval, so it does not count as covered.
  return row != analysis::kProbeAllRows && row >= it->second.first &&
         row <= it->second.second;
}

namespace {

/// Atom-set overlap with the row-interval exemption: two leases that
/// hold the same cell column restricted to disjoint tuple intervals do
/// not overlap. Sentinel atoms and unranged cells keep the coarse
/// AtomsOverlap semantics.
bool LeasesOverlap(const WriteLease& a, const WriteLease& b) {
  for (const AccessScope::Atom& x : a.writes) {
    for (const AccessScope::Atom& y : b.writes) {
      if (!AtomsOverlap(x, y)) continue;
      if (x == y && x.second >= 0) {
        const auto xi = a.row_ranges.find(x);
        const auto yi = b.row_ranges.find(y);
        if (xi != a.row_ranges.end() && yi != b.row_ranges.end() &&
            (xi->second.second < yi->second.first ||
             yi->second.second < xi->second.first)) {
          continue;  // disjoint row ranges of one column coexist
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace

bool PartitionWriteLeases(const std::vector<int>& tool_ids,
                          const std::vector<AccessScope>& scopes,
                          std::vector<WriteLease>* leases) {
  leases->clear();
  leases->reserve(tool_ids.size());
  for (size_t i = 0; i < tool_ids.size(); ++i) {
    WriteLease lease;
    lease.tool_id = tool_ids[i];
    lease.writes = scopes[i].writes;
    for (const AccessScope::Atom& a : lease.writes) {
      if (const auto* range = scopes[i].RangeOf(a)) {
        lease.row_ranges.emplace(a, *range);
      }
    }
    leases->push_back(std::move(lease));
  }
  // Disjointness certificate. Every write atom is also in its writer's
  // read set (AccessScope::AddWrite), so two scopes with overlapping
  // writes always conflict under the directional rules that formed the
  // group — a well-formed group passes; a failure means the planner
  // handed us a group it should not have. Row-ranged leases are held
  // to the same interval exemption the grouping predicate used.
  for (size_t a = 0; a < leases->size(); ++a) {
    for (size_t b = a + 1; b < leases->size(); ++b) {
      if (LeasesOverlap((*leases)[a], (*leases)[b])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace aspect
