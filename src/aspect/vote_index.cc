#include "aspect/vote_index.h"

#include <algorithm>
#include <bit>

namespace aspect {

void ConsultMask::SetAll() {
  std::fill(words_.begin(), words_.end(), ~uint64_t{0});
  const size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

size_t ConsultMask::CountSet() const {
  size_t n = 0;
  for (const uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

void VoteIndex::Reset(const Schema* schema) {
  schema_ = schema;
  always_.Reset(0);
  table_readers_.clear();
  whole_table_readers_.clear();
  cell_readers_.clear();
  touched_scratch_.clear();
}

int VoteIndex::AddValidator(const AccessScope& s) {
  const int idx = static_cast<int>(always_.size());
  // An unknown scope conflicts with everything; an observed scope's
  // read set is a lower bound (reads_complete = false), so neither
  // can certify any vote as zero.
  if (!s.known || !s.reads_complete) {
    always_.PushBack(true);
    return idx;
  }
  always_.PushBack(false);
  for (const AccessScope::Atom& r : s.stats_reads) {
    std::vector<int>& readers = table_readers_[r.first];
    // `idx` is strictly greater than every index already bucketed, so
    // the sorted-unique invariant Build used to restore with a final
    // sort+unique pass reduces to a guarded append: the same validator
    // holding several atoms of one table arrives consecutively
    // (stats_reads is an ordered set).
    if (readers.empty() || readers.back() != idx) readers.push_back(idx);
    if (r.second == AccessScope::kWholeTable) {
      whole_table_readers_[r.first].push_back(idx);
    } else if (r.second >= 0) {
      RangedReader reader{idx, false, 0, 0};
      if (const auto* range = s.RangeOf(r)) {
        reader.ranged = true;
        reader.lo = range->first;
        reader.hi = range->second;
      }
      cell_readers_[r].readers.push_back(reader);
    }
    // kRowStructure readers are disturbed only by row-structure
    // writes, which consult table_readers_; cell writes never change
    // what a pure row-structure reader observes.
  }
  return idx;
}

void VoteIndex::Distrust(int idx) {
  if (idx < 0 || static_cast<size_t>(idx) >= always_.size()) return;
  always_.SetBit(idx);
  // Remove every bucket entry, erasing keys whose reader lists empty
  // out: a fresh Build over the degraded scope list would never have
  // created them, and DebugEquals compares keys structurally.
  for (auto* buckets : {&table_readers_, &whole_table_readers_}) {
    for (auto it = buckets->begin(); it != buckets->end();) {
      std::vector<int>& readers = it->second;
      readers.erase(std::remove(readers.begin(), readers.end(), idx),
                    readers.end());
      it = readers.empty() ? buckets->erase(it) : std::next(it);
    }
  }
  for (auto it = cell_readers_.begin(); it != cell_readers_.end();) {
    std::vector<RangedReader>& readers = it->second.readers;
    readers.erase(std::remove_if(
                      readers.begin(), readers.end(),
                      [idx](const RangedReader& r) { return r.idx == idx; }),
                  readers.end());
    it = readers.empty() ? cell_readers_.erase(it) : std::next(it);
  }
}

void VoteIndex::Build(const Schema* schema,
                      std::span<const AccessScope> scopes) {
  Reset(schema);
  for (const AccessScope& s : scopes) AddValidator(s);
}

bool VoteIndex::DebugEquals(const VoteIndex& other) const {
  if (always_ != other.always_) return false;
  if (table_readers_ != other.table_readers_) return false;
  if (whole_table_readers_ != other.whole_table_readers_) return false;
  if (cell_readers_.size() != other.cell_readers_.size()) return false;
  auto a = cell_readers_.begin();
  auto b = other.cell_readers_.begin();
  for (; a != cell_readers_.end(); ++a, ++b) {
    if (a->first != b->first) return false;
    if (a->second.readers != b->second.readers) return false;
  }
  return true;
}

void VoteIndex::ClearTouchedScratch() const {
  for (const CellBucket* bucket : touched_scratch_) bucket->touched.Clear();
  touched_scratch_.clear();
}

void VoteIndex::Route(std::span<const Modification> mods,
                      ConsultMask* consult, RouteMetrics* metrics) const {
  consult->CopyFrom(always_);
  // Exact touched tuple ids per cell atom, collected only for atoms
  // that still have unconsulted ranged readers: a reader certified to
  // [lo, hi] is consulted iff the batch actually writes inside its
  // interval. Small batches (the per-modification TryApply path) check
  // each reader's interval directly against the modification's tuple
  // ids; only large batches pay for aggregating the ids into the
  // bucket's scratch interval set, which amortizes the per-reader scan
  // across many modifications.
  const bool aggregate = mods.size() > 8;
  // Batches overwhelmingly target one table; cache the last name
  // lookup so routing does not redo the string search per mod.
  const std::string* last_name = nullptr;
  int last_index = -1;
  for (const Modification& mod : mods) {
    if (last_name == nullptr || mod.table != *last_name) {
      last_name = &mod.table;
      last_index = schema_->TableIndex(mod.table);
    }
    const int t = last_index;
    if (t < 0) {
      // A table the schema does not know — route conservatively,
      // counting the fallback so run reports can tell such proposals
      // from legitimately routed ones.
      ClearTouchedScratch();
      consult->SetAll();
      if (metrics != nullptr) ++metrics->fallbacks;
      return;
    }
    if (mod.kind == OpKind::kInsertTuple ||
        mod.kind == OpKind::kDeleteTuple) {
      // Row-structure write: disturbs every reader of the table (the
      // new/removed live row carries cells in every column), with no
      // row-interval exemption — the insert's id is not assigned yet.
      const auto it = table_readers_.find(t);
      if (it != table_readers_.end()) {
        for (const int idx : it->second) consult->SetBit(idx);
      }
      continue;
    }
    const auto whole = whole_table_readers_.find(t);
    for (const int c : mod.cols) {
      if (whole != whole_table_readers_.end()) {
        for (const int idx : whole->second) consult->SetBit(idx);
      }
      const auto it = cell_readers_.find({t, c});
      if (it == cell_readers_.end()) continue;
      const CellBucket& bucket = it->second;
      bool collect = false;
      for (const RangedReader& r : bucket.readers) {
        if (!r.ranged) {
          consult->SetBit(r.idx);
        } else if (consult->Test(r.idx)) {
          // Already consulted; its interval can decide nothing more.
        } else if (!aggregate) {
          for (const TupleId tid : mod.tuples) {
            if (tid >= r.lo && tid <= r.hi) {
              consult->SetBit(r.idx);
              break;
            }
          }
        } else {
          collect = true;
        }
      }
      // Once every ranged reader of the atom is consulted there is
      // nothing left for more tuple ids to decide — skip the
      // aggregation entirely instead of growing the interval set for
      // the rest of the batch.
      if (collect && !mod.tuples.empty()) {
        if (bucket.touched.empty()) touched_scratch_.push_back(&bucket);
        for (const TupleId tid : mod.tuples) bucket.touched.Add(tid);
        if (metrics != nullptr) {
          metrics->interval_inserts +=
              static_cast<int64_t>(mod.tuples.size());
        }
      }
    }
  }
  for (const CellBucket* bucket : touched_scratch_) {
    for (const RangedReader& r : bucket->readers) {
      if (r.ranged && !consult->Test(r.idx) &&
          bucket->touched.OverlapsRange(r.lo, r.hi)) {
        consult->SetBit(r.idx);
      }
    }
    bucket->touched.Clear();
  }
  touched_scratch_.clear();
}

}  // namespace aspect
