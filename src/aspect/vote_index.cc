#include "aspect/vote_index.h"

#include <algorithm>

#include "analysis/row_intervals.h"

namespace aspect {

void VoteIndex::Build(const Schema* schema,
                      std::span<const AccessScope> scopes) {
  schema_ = schema;
  always_.assign(scopes.size(), 0);
  table_readers_.clear();
  whole_table_readers_.clear();
  cell_readers_.clear();
  for (size_t i = 0; i < scopes.size(); ++i) {
    const AccessScope& s = scopes[i];
    const int idx = static_cast<int>(i);
    // An unknown scope conflicts with everything; an observed scope's
    // read set is a lower bound (reads_complete = false), so neither
    // can certify any vote as zero.
    if (!s.known || !s.reads_complete) {
      always_[i] = 1;
      continue;
    }
    for (const AccessScope::Atom& r : s.stats_reads) {
      table_readers_[r.first].push_back(idx);
      if (r.second == AccessScope::kWholeTable) {
        whole_table_readers_[r.first].push_back(idx);
      } else if (r.second >= 0) {
        RangedReader reader{idx, false, 0, 0};
        if (const auto* range = s.RangeOf(r)) {
          reader.ranged = true;
          reader.lo = range->first;
          reader.hi = range->second;
        }
        cell_readers_[r].push_back(reader);
      }
      // kRowStructure readers are disturbed only by row-structure
      // writes, which consult table_readers_; cell writes never change
      // what a pure row-structure reader observes.
    }
  }
  // A validator holding several atoms on one table lands in
  // table_readers_ once per atom; dedup so Route marks each just once.
  for (auto& [table, readers] : table_readers_) {
    std::sort(readers.begin(), readers.end());
    readers.erase(std::unique(readers.begin(), readers.end()),
                  readers.end());
  }
}

void VoteIndex::Route(std::span<const Modification> mods,
                      std::vector<uint8_t>* consult) const {
  consult->assign(always_.begin(), always_.end());
  // Exact touched tuple ids per cell atom, collected only for atoms
  // with ranged readers: a reader certified to [lo, hi] is consulted
  // iff the batch actually writes inside its interval. Small batches
  // (the per-modification TryApply path) check each reader's interval
  // directly against the modification's tuple ids; only large batches
  // pay for aggregating the ids into a RowIntervalSet, which amortizes
  // the per-reader scan across many modifications.
  const bool aggregate = mods.size() > 8;
  std::map<AccessScope::Atom, analysis::RowIntervalSet> touched;
  // Batches overwhelmingly target one table; cache the last name
  // lookup so routing does not redo the string search per mod.
  const std::string* last_name = nullptr;
  int last_index = -1;
  for (const Modification& mod : mods) {
    if (last_name == nullptr || mod.table != *last_name) {
      last_name = &mod.table;
      last_index = schema_->TableIndex(mod.table);
    }
    const int t = last_index;
    if (t < 0) {
      // A table the schema does not know — route conservatively.
      std::fill(consult->begin(), consult->end(), 1);
      return;
    }
    if (mod.kind == OpKind::kInsertTuple ||
        mod.kind == OpKind::kDeleteTuple) {
      // Row-structure write: disturbs every reader of the table (the
      // new/removed live row carries cells in every column), with no
      // row-interval exemption — the insert's id is not assigned yet.
      const auto it = table_readers_.find(t);
      if (it != table_readers_.end()) {
        for (const int idx : it->second) (*consult)[idx] = 1;
      }
      continue;
    }
    const auto whole = whole_table_readers_.find(t);
    for (const int c : mod.cols) {
      if (whole != whole_table_readers_.end()) {
        for (const int idx : whole->second) (*consult)[idx] = 1;
      }
      const auto it = cell_readers_.find({t, c});
      if (it == cell_readers_.end()) continue;
      bool has_ranged = false;
      for (const RangedReader& r : it->second) {
        if (!r.ranged) {
          (*consult)[r.idx] = 1;
        } else if (!aggregate) {
          if ((*consult)[r.idx]) continue;
          for (const TupleId tid : mod.tuples) {
            if (tid >= r.lo && tid <= r.hi) {
              (*consult)[r.idx] = 1;
              break;
            }
          }
        } else {
          has_ranged = true;
        }
      }
      if (has_ranged) {
        analysis::RowIntervalSet& rows = touched[{t, c}];
        for (const TupleId tid : mod.tuples) rows.Add(tid);
      }
    }
  }
  for (const auto& [atom, rows] : touched) {
    for (const RangedReader& r : cell_readers_.at(atom)) {
      if (r.ranged && rows.OverlapsRange(r.lo, r.hi)) {
        (*consult)[r.idx] = 1;
      }
    }
  }
}

}  // namespace aspect
