#include "aspect/coordinator.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <map>
#include <optional>
#include <sstream>

#include "analysis/probe.h"
#include "aspect/lease.h"
#include "aspect/overlap.h"
#include "aspect/tweak_context.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "relational/modlog.h"

namespace aspect {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Listener attached to a parallel task's database clone. Records every
/// applied modification (with pre-images and delivery shape) so the
/// coordinator can replay the notifications to the main database's
/// remaining listeners after the merge, and the coarse (table, column)
/// atoms actually written so the task's assumed scope can be verified.
class WriteRecorder : public ModificationListener {
 public:
  /// `record_entries` = false tracks only the written atoms (the scope
  /// guard); full notification copies are kept only when somebody will
  /// actually replay them, since the copies dominate the recorder's
  /// per-modification cost.
  WriteRecorder(const Schema* schema, bool record_entries)
      : schema_(schema), record_entries_(record_entries) {}

  /// One notification to replay: `count` entries starting at `begin`,
  /// delivered as OnAppliedBatch when `batch`, else as a single
  /// OnApplied call.
  struct Delivery {
    size_t begin = 0;
    size_t count = 0;
    bool batch = false;
  };

  void OnApplied(const Modification& mod, const std::vector<Value>& old_values,
                 TupleId new_tuple) override {
    AddAtoms(mod);
    if (!record_entries_) return;
    deliveries_.push_back({mods_.size(), 1, false});
    mods_.push_back(mod);
    old_values_.push_back(old_values);
    new_tuples_.push_back(new_tuple);
  }

  void OnAppliedBatch(std::span<const Modification> mods,
                      std::span<const std::vector<Value>> old_values,
                      std::span<const TupleId> new_tuples) override {
    if (!record_entries_) {
      for (const Modification& m : mods) AddAtoms(m);
      return;
    }
    deliveries_.push_back({mods_.size(), mods.size(), true});
    for (size_t i = 0; i < mods.size(); ++i) {
      AddAtoms(mods[i]);
      mods_.push_back(mods[i]);
      old_values_.push_back(old_values[i]);
      new_tuples_.push_back(new_tuples[i]);
    }
  }

  /// Replays every recorded notification, in order and with the
  /// original delivery shape, to `listener`.
  void ReplayTo(ModificationListener* listener) const {
    for (const Delivery& d : deliveries_) {
      if (d.batch) {
        listener->OnAppliedBatch(
            std::span<const Modification>(&mods_[d.begin], d.count),
            std::span<const std::vector<Value>>(&old_values_[d.begin],
                                                d.count),
            std::span<const TupleId>(&new_tuples_[d.begin], d.count));
      } else {
        listener->OnApplied(mods_[d.begin], old_values_[d.begin],
                            new_tuples_[d.begin]);
      }
    }
  }

  /// Reverts every recorded modification on `db`, newest first, using
  /// the captured pre-images (Database::Undo). The shared-database
  /// pass discards a failed group this way: its writes landed directly
  /// in the main database, so dropping a clone is not an option.
  /// Listeners are not notified; callers rebuild listener-held state.
  Status UndoOnto(Database* db) const {
    for (size_t i = mods_.size(); i-- > 0;) {
      ASPECT_RETURN_NOT_OK(
          db->Undo(mods_[i], old_values_[i], new_tuples_[i]));
    }
    return Status::OK();
  }

  /// Equivalent to ReplayTo for a modification log, but moves the
  /// recorded entries instead of copying them through the listener
  /// interface (the recorder is discarded after the merge, so the
  /// copies would be pure waste). Valid once; leaves the recorder's
  /// written-atom set intact.
  void MoveInto(ModificationLog* log) {
    for (const Delivery& d : deliveries_) {
      if (d.batch) log->CountAdoptedBatch();
      for (size_t i = d.begin; i < d.begin + d.count; ++i) {
        ModificationLog::Entry e;
        e.mod = std::move(mods_[i]);
        e.old_values = std::move(old_values_[i]);
        e.new_tuple = new_tuples_[i];
        log->Adopt(std::move(e));
      }
    }
    deliveries_.clear();
    mods_.clear();
    old_values_.clear();
    new_tuples_.clear();
  }

  /// Coarse (table, column) atoms actually written on the clone, in
  /// *merge* terms: a tuple insert/delete physically changes every
  /// column, so it lands here as (table, kWholeTable) and the merge
  /// moves the table whole.
  const std::set<AccessScope::Atom>& written() const { return written_; }

  /// The same writes in *declaration* terms: tuple ops are
  /// (table, kRowStructure), matching what DeclaredScope() promises
  /// and what Database::Apply probes. The scope guard diffs this set
  /// against the task's declared writes.
  const std::set<AccessScope::Atom>& semantic_written() const {
    return semantic_;
  }

 private:
  void AddAtoms(const Modification& mod) {
    const int t = schema_->TableIndex(mod.table);
    switch (mod.kind) {
      case OpKind::kDeleteValues:
      case OpKind::kInsertValues:
      case OpKind::kReplaceValues:
        for (const int c : mod.cols) {
          written_.insert({t, c});
          semantic_.insert({t, c});
        }
        break;
      case OpKind::kInsertTuple:
      case OpKind::kDeleteTuple:
        written_.insert({t, AccessScope::kWholeTable});
        semantic_.insert({t, AccessScope::kRowStructure});
        break;
    }
  }

  const Schema* schema_;
  bool record_entries_ = true;
  std::set<AccessScope::Atom> written_;
  std::set<AccessScope::Atom> semantic_;
  std::vector<Modification> mods_;
  std::vector<std::vector<Value>> old_values_;
  std::vector<TupleId> new_tuples_;
  std::vector<Delivery> deliveries_;
};

}  // namespace

const char* StopReasonToString(RunReport::StopReason reason) {
  switch (reason) {
    case RunReport::StopReason::kIterationsExhausted:
      return "iterations exhausted";
    case RunReport::StopReason::kConverged:
      return "converged";
    case RunReport::StopReason::kRegressed:
      return "regressed";
  }
  return "?";
}

std::string RunReport::ToString() const {
  std::ostringstream os;
  for (const ToolReport& s : steps) {
    os << StrFormat("%-10s error %.6f -> %.6f (applied %lld, vetoed %lld, "
                    "forced %lld, %.2fs)",
                    s.tool.c_str(), s.error_before, s.error_after,
                    static_cast<long long>(s.applied),
                    static_cast<long long>(s.vetoed),
                    static_cast<long long>(s.forced), s.seconds);
    if (s.rolled_back) {
      os << StrFormat(" [rolled back %lld mods in %.3fs]",
                      static_cast<long long>(s.rollback_mods),
                      s.rollback_seconds);
    } else if (s.rollback_seconds > 0) {
      os << StrFormat(" [rollback net %.3fs]", s.rollback_seconds);
    }
    if (s.parallel) os << " [parallel]";
    if (s.batch_final > 1) {
      os << StrFormat(" [batch %d]", s.batch_final);
    }
    if (s.votes_skipped > 0) {
      os << StrFormat(" [votes %lld/%lld skipped]",
                      static_cast<long long>(s.votes_skipped),
                      static_cast<long long>(s.votes_total));
    }
    if (s.route_audit_violations > 0) {
      os << StrFormat(" [route audit: %lld violation(s)]",
                      static_cast<long long>(s.route_audit_violations));
    }
    if (s.route_fallbacks > 0) {
      os << StrFormat(" [route fallbacks %lld]",
                      static_cast<long long>(s.route_fallbacks));
    }
    os << "\n";
  }
  if (votes_skipped > 0 || route_audit_violations > 0 ||
      route_fallbacks > 0) {
    os << StrFormat("vote routing: %lld/%lld votes skipped",
                    static_cast<long long>(votes_skipped),
                    static_cast<long long>(votes_total));
    if (route_audit_violations > 0) {
      os << StrFormat(", %lld audit violation(s)",
                      static_cast<long long>(route_audit_violations));
    }
    if (route_fallbacks > 0) {
      os << StrFormat(", %lld unknown-table fallback(s)",
                      static_cast<long long>(route_fallbacks));
    }
    os << "\n";
  }
  os << StrFormat("total %.2fs", total_seconds);
  if (stop_reason != StopReason::kIterationsExhausted) {
    os << " (" << StopReasonToString(stop_reason) << ")";
  }
  return os.str();
}

int Coordinator::AddTool(std::unique_ptr<PropertyTool> tool) {
  tools_.push_back(std::move(tool));
  return static_cast<int>(tools_.size()) - 1;
}

int Coordinator::FindTool(const std::string& name) const {
  for (size_t i = 0; i < tools_.size(); ++i) {
    if (tools_[i]->name() == name) return static_cast<int>(i);
  }
  return -1;
}

Status Coordinator::SetTargetsFromDataset(const Database& ground_truth) {
  for (const auto& t : tools_) {
    ASPECT_RETURN_NOT_OK(t->SetTargetFromDataset(ground_truth));
  }
  return Status::OK();
}

Result<RunReport> Coordinator::Run(Database* db,
                                   const std::vector<int>& order,
                                   const CoordinatorOptions& options) {
  for (const int id : order) {
    if (id < 0 || id >= num_tools()) {
      return Status::OutOfRange(StrFormat("tool id %d", id));
    }
  }
  RunReport report;
  const double run_start = Now();
  monitor_ = std::make_unique<AccessMonitor>(num_tools());
  checker_.reset();
  // kSampled deliberately creates no checker: it selects the lease-
  // canary-only path (what release builds do at kOff), with no
  // footprint recording or conformance diffing.
  if (options.check_scopes == analysis::ScopeCheckMode::kWarn ||
      options.check_scopes == analysis::ScopeCheckMode::kStrict) {
    checker_ = std::make_unique<analysis::ScopeChecker>(options.check_scopes,
                                                        num_tools());
  }
  // Footprint recorders are dense bitmaps shaped by the schema.
  std::vector<int> columns_per_table;
  columns_per_table.reserve(static_cast<size_t>(db->num_tables()));
  for (int i = 0; i < db->num_tables(); ++i) {
    columns_per_table.push_back(db->table(i).num_columns());
  }
  Rng rng(options.seed);

  // Bind all tools in the order so each maintains statistics (and can
  // validate) from the start of the run.
  for (const int id : order) {
    PropertyTool* t = tools_[static_cast<size_t>(id)].get();
    ASPECT_RETURN_NOT_OK(t->Bind(db));
    if (options.repair_targets) {
      ASPECT_RETURN_NOT_OK(t->RepairTarget());
    }
  }

  // Validators accumulate: a tool that has completed at least one
  // Tweak vetoes later tools' damaging proposals (Sec. III-C).
  std::vector<int> enforced;
  double prev_total = -1;
  // Undo-log rollback records every step's modifications with
  // pre-images; a regressed step is reverted in reverse at a cost
  // linear in the step's modifications, not the database size.
  const bool undo_mode = options.rollback_on_regression &&
                         options.rollback_mode == RollbackMode::kUndoLog;
  std::unique_ptr<ModificationLog> undo_log;
  if (undo_mode) undo_log = std::make_unique<ModificationLog>(db);

  // One preforked RNG child per order position of the current pass.
  // The fork sequence is identical to forking immediately before each
  // step (one Fork per step, in order), so serial results are
  // unchanged, and each parallel task's randomness is fixed before any
  // scheduling happens.
  std::vector<Rng> children;

  // Tools whose lease probes (full or sampled canary) caught an
  // out-of-lease write. The checker distrusts via its own violation
  // record; this set covers the canary-only configurations (kOff in
  // release, kSampled anywhere), where no checker exists but a caught
  // liar must still be kept off the parallel fast path.
  std::set<int> lease_distrusted;

  // Tools whose pruned votes the routing audit caught returning a
  // nonzero penalty (options.route_votes): the declared read scope
  // lied, so the declaration is distrusted exactly like a lease catch
  // — the tool votes on everything and plans serially from here on.
  std::set<int> route_distrusted;

  // Scope the pass planner assumes for a tool: declared if the tool
  // knows it, else what the AccessMonitor has observed so far (O2),
  // else unknown (which keeps the tool serial). A tool the checker,
  // the lease probes, or the vote-routing audit have caught violating
  // its declaration is distrusted: its declaration is ignored for the
  // rest of the run, so it degrades to the observed (write-only) scope
  // and the serial path.
  const auto resolve_scope = [this, &lease_distrusted,
                              &route_distrusted](int id) {
    if ((checker_ == nullptr || !checker_->IsDistrusted(id)) &&
        lease_distrusted.count(id) == 0 && route_distrusted.count(id) == 0) {
      AccessScope s = tools_[static_cast<size_t>(id)]->DeclaredScope();
      if (s.known) return s;
    }
    return monitor_->ObservedScope(id);
  };

  // 0-based pass index, for violation diagnostics ("first seen in
  // pass N"); advanced by the iteration loop below.
  int cur_pass = 0;

  // Incrementally maintained vote-routing index over the *enforced*
  // list (slot j <-> enforced[j]; the list only grows and never
  // reorders). Exactly two events change what a from-scratch Build
  // over resolve_scope would produce: a tool joining the enforced
  // list, and a distrust event degrading a tool's certified scope to
  // observed. Everything else resolve_scope depends on is inert here —
  // an observed scope evolves as the monitor records writes, but every
  // !known / !reads_complete scope contributes the identical index
  // state (always-vote bit, no buckets), and declarations are stable
  // for the duration of a run. So syncing = append the new enforced
  // tools + degrade the newly distrusted slots, O(change) per step
  // (the debug cross-check in serial_step asserts this equals a fresh
  // rebuild).
  VoteIndex route_index;
  route_index.Reset(&db->schema());
  double route_index_build_seconds = 0;
  // Per enforced slot: 1 once the slot has been degraded in the index.
  std::vector<uint8_t> route_index_degraded;
  // Distrust events are detected by a monotone epoch (set sizes plus
  // the checker's violation count): the O(fleet) flag re-scan runs
  // only when the epoch moved, not on every step.
  size_t route_distrust_epoch = 0;

  const auto tool_distrusted = [&](int id) {
    return (checker_ != nullptr && checker_->IsDistrusted(id)) ||
           lease_distrusted.count(id) != 0 || route_distrusted.count(id) != 0;
  };

  const auto sync_route_index = [&]() {
    while (route_index.num_validators() < enforced.size()) {
      const size_t slot = route_index.num_validators();
      const int id = enforced[slot];
      route_index.AddValidator(resolve_scope(id));
      route_index_degraded.push_back(tool_distrusted(id) ? 1 : 0);
    }
    const size_t epoch =
        lease_distrusted.size() + route_distrusted.size() +
        (checker_ != nullptr ? checker_->NumViolations() : 0);
    if (epoch == route_distrust_epoch) return;
    route_distrust_epoch = epoch;
    for (size_t j = 0; j < enforced.size(); ++j) {
      if (!route_index_degraded[j] && tool_distrusted(enforced[j])) {
        route_index.Distrust(static_cast<int>(j));
        route_index_degraded[j] = 1;
      }
    }
  };

  // Autotuned batch-size hint per tool (options.batch_auto): a step
  // starts from the size the tool's previous step settled on, so the
  // tuning survives across passes. Committed only by steps that stuck
  // (serial steps and successful parallel groups, in execution order),
  // so a discarded group's serial redo starts from the same hint the
  // group did — the trajectory is identical in every execution mode.
  std::vector<int> tool_batch_hint(static_cast<size_t>(num_tools()),
                                   options.batch_size);

  // One serial tool step (the historical path); `child` is the
  // position's preforked RNG.
  const auto serial_step = [&](size_t pos, Rng* child) -> Status {
    const int id = order[pos];
    PropertyTool* t = tools_[static_cast<size_t>(id)].get();
    std::vector<PropertyTool*> validators;
    std::vector<int> validator_ids;
    if (options.validate) {
      for (const int e : enforced) {
        if (e != id) {
          validators.push_back(tools_[static_cast<size_t>(e)].get());
          validator_ids.push_back(e);
        }
      }
    }
    TweakContext ctx(db, std::move(validators), child, monitor_.get(), id);
    ctx.set_batch_hint(options.batch_auto
                           ? tool_batch_hint[static_cast<size_t>(id)]
                           : options.batch_size);
    ctx.set_batch_auto(options.batch_auto);
    // Vote routing: the run-wide incremental index over the enforced
    // validators' certified scopes — exactly what resolve_scope
    // certifies for the lease partitioner, with distrusted
    // declarations degrading to observed (incomplete) scopes and
    // therefore to the always-vote set. Synced by O(change) deltas;
    // the stepping tool's own slot (when already enforced) is handed
    // to the context so its vote loops skip it.
    VoteIndex rebuilt_index;  // only used with route_rebuild_per_step
    if (options.route_votes != RouteVotes::kOff && !validator_ids.empty()) {
      const double build0 = Now();
      sync_route_index();
      size_t self_slot = TweakContext::kNoSelfSlot;
      for (size_t j = 0; j < enforced.size(); ++j) {
        if (enforced[j] == id) {
          self_slot = j;
          break;
        }
      }
      const VoteIndex* index = &route_index;
      if (options.route_rebuild_per_step) {
        // The pre-incremental behaviour, kept as a measurable baseline:
        // re-resolve and rebuild over the whole enforced fleet.
        std::vector<AccessScope> scopes;
        scopes.reserve(enforced.size());
        for (const int e : enforced) scopes.push_back(resolve_scope(e));
        rebuilt_index.Build(&db->schema(), scopes);
        index = &rebuilt_index;
      }
      route_index_build_seconds += Now() - build0;
#ifndef NDEBUG
      {
        // Debug cross-check: the incrementally maintained index must
        // be structurally identical to a from-scratch rebuild over the
        // currently resolved scopes (see the sync_route_index note for
        // why this is a pure function of enforced order + distrust).
        std::vector<AccessScope> scopes;
        scopes.reserve(enforced.size());
        for (const int e : enforced) scopes.push_back(resolve_scope(e));
        VoteIndex fresh;
        fresh.Build(&db->schema(), scopes);
        assert(route_index.DebugEquals(fresh));
      }
#endif
      ctx.set_vote_routing(index, options.route_votes, self_slot);
    }
    ToolReport step;
    step.tool = t->name();
    step.error_before = t->Error();
    // For rollback: the summed error of everything already enforced
    // plus this tool, and a way to restore the pre-step state.
    std::unique_ptr<Database> snapshot;
    double guarded_before = 0;
    if (options.rollback_on_regression) {
      const double snap0 = Now();
      if (undo_mode) {
        undo_log->Clear();
      } else {
        snapshot = db->Clone();
      }
      step.rollback_seconds += Now() - snap0;
      guarded_before = step.error_before;
      for (const int e : enforced) {
        if (e != id) guarded_before += tools_[static_cast<size_t>(e)]->Error();
      }
    }
    const double t0 = Now();
    Status st;
    if (checker_ != nullptr) {
      analysis::FootprintRecorder footprint(columns_per_table);
      {
        analysis::ScopedAccessProbe probe(&footprint);
        st = t->Tweak(&ctx);
      }
      checker_->CheckStep(id, t->name(), t->DeclaredScope(), footprint,
                          cur_pass);
    } else {
      st = t->Tweak(&ctx);
    }
    step.seconds = Now() - t0;
    if (!st.ok()) {
      for (const int uid : order) {
        tools_[static_cast<size_t>(uid)]->Unbind();
      }
      return st;
    }
    if (options.rollback_on_regression) {
      if (undo_mode) step.rollback_mods = undo_log->size();
      double guarded_after = t->Error();
      for (const int e : enforced) {
        if (e != id) guarded_after += tools_[static_cast<size_t>(e)]->Error();
      }
      if (guarded_after > guarded_before + 1e-12) {
        // Restore the pre-step state and rebuild every bound tool's
        // statistics.
        const double undo0 = Now();
        for (const int uid : order) {
          tools_[static_cast<size_t>(uid)]->Unbind();
        }
        if (undo_mode) {
          ASPECT_RETURN_NOT_OK(undo_log->UndoOnto(db));
          undo_log->Clear();
        } else {
          ASPECT_RETURN_NOT_OK(db->CopyContentFrom(*snapshot));
        }
        for (const int uid : order) {
          ASPECT_RETURN_NOT_OK(tools_[static_cast<size_t>(uid)]->Bind(db));
        }
        step.rolled_back = true;
        step.rollback_seconds += Now() - undo0;
        ASPECT_LOG(Info) << "rolled back " << t->name()
                         << " (regression " << guarded_before << " -> "
                         << guarded_after << ")";
      }
    }
    step.error_after = t->Error();
    step.applied = ctx.applied();
    step.vetoed = ctx.vetoed();
    step.forced = ctx.forced();
    step.batch_final = ctx.batch_hint();
    step.votes_total = ctx.votes_total();
    step.votes_skipped = ctx.votes_skipped();
    step.route_audit_violations =
        static_cast<int64_t>(ctx.route_violations().size());
    step.route_fallbacks = ctx.route_fallbacks();
    for (const TweakContext::RouteViolation& v : ctx.route_violations()) {
      route_distrusted.insert(validator_ids[static_cast<size_t>(v.validator)]);
      ASPECT_LOG(Info) << "vote-routing audit: pruned validator " << v.name
                       << " returned penalty " << v.penalty << " during "
                       << t->name()
                       << "; declaration distrusted, full voting restored";
    }
    if (options.batch_auto) {
      tool_batch_hint[static_cast<size_t>(id)] = ctx.batch_hint();
    }
    ASPECT_LOG(Info) << "tweak " << step.tool << ": "
                     << step.error_before << " -> " << step.error_after;
    report.steps.push_back(std::move(step));
    if (std::find(enforced.begin(), enforced.end(), id) == enforced.end()) {
      enforced.push_back(id);
    }
    return Status::OK();
  };

  // A position may run inside a parallel group only if its scope is
  // known with a complete read set — an observed (write-only) scope
  // cannot prove the tool's reads are undisturbed by co-members, so
  // such tools stay on the serial path — and every enforced
  // validator's vote on its proposals is provably zero. A vote depends
  // on the validator's *statistics* (its Error/ValidationPenalty
  // inputs), so the eligibility test is against stats_reads
  // (ValidationDisturb), not the full Tweak read set: a validator's
  // Tweak-only reads (e.g. TupleCountTool's whole template rows)
  // cannot change its votes. ValidationDisturb still refuses to
  // certify validators with incomplete read sets. Votes of group
  // co-members are covered by the group's pairwise non-conflict.
  const auto parallel_eligible = [&](size_t pos, AccessScope* out) {
    const AccessScope s = resolve_scope(order[pos]);
    if (!s.known || !s.reads_complete) return false;
    // A known-but-empty scope means the tool touches no data at all.
    // Grouping it buys nothing and used to cost something: CloneAtoms
    // with an empty `touched` set still deep-copies the schema
    // scaffolding (every table as an empty shell). Run it serially.
    if (s.reads.empty() && s.writes.empty()) return false;
    if (options.validate) {
      for (const int e : enforced) {
        if (e == order[pos]) continue;
        if (ValidationDisturb(s, resolve_scope(e))) return false;
      }
    }
    *out = s;
    return true;
  };

  // One worker pool for the whole run (thread spawns are too expensive
  // to pay per group); fetched lazily from the process-wide shared pool
  // once parallel eligibility is established, below. Stays null when
  // this Run itself executes on a pool worker (the parallel order
  // search), in which case groups run serially inline.
  ThreadPool* pass_pool = nullptr;

  // State of one parallel task: the tool runs on its own clone of the
  // main database with a recording listener and a private monitor, so
  // nothing it does is visible to other tasks until the merge.
  struct GroupTask {
    size_t pos = 0;
    int id = -1;
    AccessScope scope;
    Rng rng;
    std::unique_ptr<Database> clone;
    std::unique_ptr<WriteRecorder> recorder;
    std::unique_ptr<AccessMonitor> local_monitor;
    /// Observed read+write footprint of the task's Tweak (conformance
    /// checking only; null when no checker is installed).
    std::unique_ptr<analysis::FootprintRecorder> footprint;
    /// Shared mode only: the task's write ownership on the main
    /// database (null in clone mode) and its private notification
    /// route — the member tool's own listeners plus the recorder.
    /// Database::Apply on the task's thread notifies only this route.
    const WriteLease* lease = nullptr;
    std::vector<ModificationListener*> route;
    /// Probe-enforced configurations (full probes in debug/checker-on
    /// runs, the sampled canary elsewhere): the first write observed
    /// outside the lease, latched by LeaseProbeSink.
    bool lease_violated = false;
    AccessScope::Atom lease_violation{-1, -1};
    int64_t lease_violation_row = analysis::kProbeAllRows;
    Status status = Status::OK();
    double seconds = 0;
    int64_t applied = 0;
    int64_t vetoed = 0;
    int64_t forced = 0;
    int batch_final = 1;
  };

  // Runs the given consecutive, pairwise non-conflicting order
  // positions concurrently (clone-and-merge), falling back to a
  // deterministic serial redo of the whole group if any task errors or
  // writes outside its assumed scope.
  const auto run_group = [&](const std::vector<size_t>& members,
                             const std::vector<AccessScope>& mscopes)
      -> Status {
    const double setup0 = Now();
    // Write leases are built in BOTH execution modes. Shared mode uses
    // them as the ownership partition on the main database; clone mode
    // gets them purely as canaries — an out-of-lease (in particular
    // out-of-range) write on a clone would otherwise be silently
    // dropped by the range-limited merge below, which is worse than
    // being clobbered. The partition cannot fail for a correctly
    // formed group (every write atom is also a read atom, so
    // overlapping writers always conflict at grouping time, and
    // row-ranged leases reuse the grouping's interval exemption); if
    // it ever does, clone-and-merge is the safe fallback — each lease
    // still describes its own member's certified writes, so the
    // canaries stay valid.
    std::vector<WriteLease> leases;
    bool shared = options.parallel_mode == ParallelMode::kShared;
    {
      std::vector<int> member_ids;
      member_ids.reserve(members.size());
      for (const size_t m : members) member_ids.push_back(order[m]);
      if (!PartitionWriteLeases(member_ids, mscopes, &leases) && shared) {
        ASPECT_LOG(Warning)
            << "write-lease partition found overlapping write scopes in a "
               "supposedly non-conflicting group; falling back to "
               "clone-and-merge";
        shared = false;
      }
    }

    // Each member's own listener set — the tool plus its auxiliary
    // listeners (e.g. coappear's RefCounter), via AppendListeners. In
    // shared mode this is the task's private notification route; in
    // both modes it is excluded from the post-group replay, because a
    // member's listeners already saw its writes live (shared) or on
    // its clone after the swap-Rebase moved them over (clone).
    // Filtering by AppendListeners rather than by tool pointer also
    // fixes a latent clone-mode bug: a member's auxiliary listener
    // used to stay in the replay set even though Rebase had moved (or,
    // with the default Unbind+Bind Rebase, destroyed) it.
    std::vector<std::vector<ModificationListener*>> member_listeners(
        members.size());
    std::set<const ModificationListener*> excluded;
    for (size_t k = 0; k < members.size(); ++k) {
      tools_[static_cast<size_t>(order[members[k]])]->AppendListeners(
          &member_listeners[k]);
      excluded.insert(member_listeners[k].begin(), member_listeners[k].end());
    }
    for (const auto& t : tools_) {
      excluded.insert(static_cast<const ModificationListener*>(t.get()));
    }
    // The listeners that need the group's notifications replayed after
    // the barrier — modification logs and other observers that are
    // neither tools (bound tools are handled by the rebind rules) nor
    // a member's own listeners. Computed up front: when there are none
    // (and no undo log is needed), the recorders skip the notification
    // copies entirely.
    std::vector<ModificationListener*> replay_to;
    for (ModificationListener* l : db->listeners()) {
      if (excluded.count(l) == 0) replay_to.push_back(l);
    }

    std::vector<GroupTask> tasks(members.size());
    std::vector<double> error_before(members.size(), 0.0);
    for (size_t k = 0; k < members.size(); ++k) {
      GroupTask& task = tasks[k];
      task.pos = members[k];
      task.id = order[task.pos];
      task.scope = mscopes[k];
      // Copy, not the child itself: a scope violation redoes the group
      // serially with the pristine children.
      task.rng = children[task.pos];
      // Measured at group start, this equals the serial value: the
      // co-members scheduled before this position cannot disturb the
      // tool's reads.
      error_before[k] = tools_[static_cast<size_t>(task.id)]->Error();
    }
    for (size_t k = 0; k < tasks.size(); ++k) {
      GroupTask& task = tasks[k];
      PropertyTool* t = tools_[static_cast<size_t>(task.id)].get();
      // Shared mode records entries even with no replay target: a
      // discarded group must undo writes that already landed in the
      // main database.
      task.recorder = std::make_unique<WriteRecorder>(
          &db->schema(), shared || !replay_to.empty());
      task.local_monitor = std::make_unique<AccessMonitor>(num_tools());
      if (checker_ != nullptr) {
        task.footprint =
            std::make_unique<analysis::FootprintRecorder>(columns_per_table);
      }
      // In shared mode the lease is the task's write ownership on the
      // main database; in clone mode it is a canary only (the clone
      // merge consults the declared ranges, not the lease).
      task.lease = &leases[k];
      if (shared) {
        // Zero-copy setup: the tool stays bound to the main database.
        // Its route is the only notification target on the task's
        // thread, so its statistics updates fire privately and
        // siblings see nothing.
        task.route = member_listeners[k];
        task.route.push_back(task.recorder.get());
        continue;
      }
      if (t->DeclaredScope().known) {
        // A declared scope is a complete access-set contract, so the
        // task only needs the atoms it names: scoped columns are deep-
        // copied, the rest of their tables become kEmpty shells, and
        // the clone cost scales with the tool's scope (a kWholeTable
        // atom maps to CloneAtoms' negative-column whole-table copy).
        std::set<AccessScope::Atom> touched;
        touched.insert(task.scope.reads.begin(), task.scope.reads.end());
        touched.insert(task.scope.writes.begin(), task.scope.writes.end());
        task.clone = db->CloneAtoms(touched);
      } else {
        task.clone = db->Clone();
      }
      // Move the tool onto its clone now, while the group is still
      // serial: Rebase unhooks the tool from the shared main
      // database's listener list, which concurrent tasks must not
      // mutate. The clone is content-identical for every table in the
      // task's scope, so a bound tool keeps its statistics (no
      // rescan).
      task.status = t->Rebase(task.clone.get());
      if (task.status.ok()) {
        task.clone->AddListener(task.recorder.get());
      }
    }
    report.group_setup_seconds += Now() - setup0;
    ++report.parallel_groups;
    // A group that only exists thanks to row-range declarations: some
    // member pair overlaps on an atom under the interval-blind rules
    // and was admitted because the declared intervals are disjoint.
    for (size_t a = 0; a < mscopes.size(); ++a) {
      bool counted = false;
      for (size_t b = a + 1; b < mscopes.size(); ++b) {
        if (WritesDisturbAtoms(mscopes[a].writes, mscopes[b].reads) ||
            WritesDisturbAtoms(mscopes[b].writes, mscopes[a].reads)) {
          ++report.row_range_groups;
          counted = true;
          break;
        }
      }
      if (counted) break;
    }
    const auto run_task = [&](GroupTask& task) {
      if (!task.status.ok()) return;
      PropertyTool* t = tools_[static_cast<size_t>(task.id)].get();
      Database* task_db = task.clone != nullptr ? task.clone.get() : db;
      // No validators: eligibility proved every enforced vote is zero,
      // and co-member votes are zero by the group's non-conflict.
      TweakContext ctx(task_db, {}, &task.rng, task.local_monitor.get(),
                       task.id);
      ctx.set_batch_hint(options.batch_auto
                             ? tool_batch_hint[static_cast<size_t>(task.id)]
                             : options.batch_size);
      ctx.set_batch_auto(options.batch_auto);
      // Shared mode: divert this thread's Apply notifications to the
      // task's private route for the duration of the Tweak.
      std::optional<Database::ScopedListenerRoute> route;
      if (shared) route.emplace(&task.route);
      // Lease enforcement at Apply time: debug builds and checker-on
      // runs observe every semantic write through the access probes
      // and pinpoint the first out-of-lease write at the violating
      // modification. Everything else — release builds at kOff, and
      // kSampled anywhere — runs the sampled canary: one write in
      // LeaseProbeSink::kSampleStride (the first one always) pays the
      // containment check, so a lying declaration is still caught
      // without --check-scopes, alongside the atom-level recorder diff
      // at the barrier.
#ifdef NDEBUG
      const bool probe_full = task.footprint != nullptr;
#else
      const bool probe_full =
          options.check_scopes != analysis::ScopeCheckMode::kSampled;
#endif
      const double t0 = Now();
      if (task.lease != nullptr) {
        LeaseProbeSink sink(task.lease, task.footprint.get(), !probe_full);
        {
          // The probe sink is thread-local, so each worker records
          // into its own task's sink without any sharing.
          analysis::ScopedAccessProbe probe(&sink);
          task.status = t->Tweak(&ctx);
        }
        task.lease_violated = sink.violated();
        task.lease_violation = sink.violation();
        task.lease_violation_row = sink.violation_row();
      } else if (task.footprint != nullptr) {
        analysis::ScopedAccessProbe probe(task.footprint.get());
        task.status = t->Tweak(&ctx);
      } else {
        task.status = t->Tweak(&ctx);
      }
      task.seconds = Now() - t0;
      task.applied = ctx.applied();
      task.vetoed = ctx.vetoed();
      task.forced = ctx.forced();
      task.batch_final = ctx.batch_hint();
      if (task.clone != nullptr) {
        task.clone->RemoveListener(task.recorder.get());
      }
    };
    int threads = options.pass_threads;
    if (threads <= 0) threads = ThreadPool::HardwareThreads();
    if (threads > 1 && tasks.size() > 1 && pass_pool == nullptr) {
      pass_pool = ThreadPool::Shared(threads);
    }
    if (threads > 1 && tasks.size() > 1 && pass_pool != nullptr) {
      for (GroupTask& task : tasks) {
        pass_pool->Submit([&run_task, &task]() { run_task(task); });
      }
      pass_pool->Wait();
    } else {
      for (GroupTask& task : tasks) run_task(task);
    }

    // Verify every task stayed inside the scope the grouping assumed.
    bool discard = false;
    for (GroupTask& task : tasks) {
      PropertyTool* t = tools_[static_cast<size_t>(task.id)].get();
      if (!task.status.ok()) {
        ASPECT_LOG(Warning) << "parallel group discarded: " << t->name()
                            << " failed (" << task.status.ToString()
                            << "); redoing serially";
        discard = true;
        continue;
      }
      if (task.lease_violated) {
        std::ostringstream row_info;
        if (task.lease_violation_row != analysis::kProbeAllRows) {
          row_info << ", row " << task.lease_violation_row;
        }
        ASPECT_LOG(Warning)
            << "parallel group discarded: " << t->name() << " wrote (table "
            << task.lease_violation.first << ", col "
            << task.lease_violation.second << row_info.str()
            << ") outside its write lease; redoing serially and "
               "distrusting its declaration";
        ++report.lease_violations;
        lease_distrusted.insert(task.id);
        discard = true;
        continue;
      }
      for (const AccessScope::Atom& a : task.recorder->semantic_written()) {
        if (!AtomCoveredBy(a, task.scope.writes)) {
          ASPECT_LOG(Warning)
              << "parallel group discarded: " << t->name()
              << " wrote (table " << a.first << ", col " << a.second
              << ") outside its assumed scope; redoing serially and "
                 "distrusting its declaration";
          lease_distrusted.insert(task.id);
          discard = true;
          break;
        }
      }
    }
    // Conformance: diff each task's observed footprint against its
    // declaration, and cross-check that the group members' observed
    // footprints really were pairwise non-disturbing — the grouping
    // was proved on declarations, this verifies it held in fact. Run
    // even when the group is about to be discarded: the violation that
    // caused the discard is exactly what should be reported (and the
    // offender distrusted before the serial redo re-plans).
    if (checker_ != nullptr) {
      std::vector<int> group_tools;
      std::vector<std::string> group_names;
      std::vector<const analysis::FootprintRecorder*> group_prints;
      for (GroupTask& task : tasks) {
        if (!task.status.ok()) continue;
        PropertyTool* t = tools_[static_cast<size_t>(task.id)].get();
        checker_->CheckStep(task.id, t->name(), t->DeclaredScope(),
                            *task.footprint, cur_pass);
        group_tools.push_back(task.id);
        group_names.push_back(t->name());
        group_prints.push_back(task.footprint.get());
      }
      if (group_prints.size() > 1) {
        checker_->CheckGroupDisjoint(group_tools, group_names, group_prints,
                                     cur_pass);
      }
    }
    if (discard) {
      // Restore the pre-group database, then replay the group serially
      // with the pristine preforked RNGs — exact serial semantics, bit
      // for bit. Clone mode just drops the clones (the main database
      // was never touched). Shared mode reverts each recorder's writes
      // from the captured pre-images, newest task first: per table
      // only the row-structure lease holder inserted, so the last-slot
      // invariant of Database::Undo holds, and Undo is listener-silent
      // while the routes kept the main listeners blind during the
      // group — so after the undo only the members' own statistics are
      // stale, and rebinding them below rebuilds exactly those.
      for (GroupTask& task : tasks) {
        PropertyTool* t = tools_[static_cast<size_t>(task.id)].get();
        if (t->bound()) t->Unbind();
        task.clone.reset();
      }
      if (shared) {
        for (size_t k = tasks.size(); k-- > 0;) {
          ASPECT_RETURN_NOT_OK(tasks[k].recorder->UndoOnto(db));
        }
      }
      for (GroupTask& task : tasks) {
        ASPECT_RETURN_NOT_OK(
            tools_[static_cast<size_t>(task.id)]->Bind(db));
      }
      for (GroupTask& task : tasks) {
        ASPECT_RETURN_NOT_OK(serial_step(task.pos, &children[task.pos]));
      }
      return Status::OK();
    }

    // Merge, in order-position order (clone mode only): move each
    // task's written columns (whole tables for row-structure changes)
    // from its clone into the main database — the clone is discarded
    // right after the merge, so stealing the storage avoids a second
    // full copy. Scopes are pairwise disjoint, so no cell is written
    // by two tasks. A task that wrote both (t, kWholeTable) and (t, c)
    // atoms — tuple ops plus cell ops on one table — must move the
    // table exactly once: the whole-table move already carries every
    // column, and a subsequent per-column move would index the
    // moved-from clone table's empty storage. Shared mode has nothing
    // to move — every write already sits in the main tables — so its
    // merge cost is the modlog splice below and nothing else.
    const double merge0 = Now();
    if (!shared) {
      for (GroupTask& task : tasks) {
        const std::set<AccessScope::Atom>& written = task.recorder->written();
        for (const AccessScope::Atom& a : written) {
          Table& dst = db->table(a.first);
          Table& src = task.clone->table(a.first);
          if (a.second == AccessScope::kWholeTable) {
            dst = std::move(src);
          } else if (written.count({a.first, AccessScope::kWholeTable}) ==
                     0) {
            const auto* range = task.scope.RangeOf(a);
            if (range == nullptr) {
              dst.column(a.second) = std::move(src.column(a.second));
            } else {
              // Row-range lease: two group members may hold disjoint
              // ranges of this very column, so a whole-column move
              // would clobber a co-member's merged rows. Copy only the
              // leased range. Group formation keeps structural writers
              // of this table out of the group (a row-structure write
              // disturbs every ranged reader), so the slot counts of
              // clone and main agree and the clamp is just belt and
              // braces against over-wide declarations.
              const int64_t lo = std::max<int64_t>(range->first, 0);
              const int64_t hi = std::min<int64_t>(
                  range->second, dst.column(a.second).size() - 1);
              if (lo <= hi) {
                dst.column(a.second)
                    // aspect-lint: framework-write -- swap-rebase bulk
                    .CopyRowsFrom(src.column(a.second), lo, hi);
              }
            }
          }
        }
      }
    }

    // Replay the recorded notifications (original order and delivery
    // shape) to the main database's remaining listeners, one member
    // segment after another in order-position order — which is exactly
    // the serial per-position segment order, so the spliced log is
    // bitwise identical to the serial one. A lone modification log —
    // the common case — adopts the entries by move.
    for (GroupTask& task : tasks) {
      if (replay_to.size() == 1) {
        if (auto* log = dynamic_cast<ModificationLog*>(replay_to[0])) {
          task.recorder->MoveInto(log);
          continue;
        }
      }
      for (ModificationListener* l : replay_to) {
        task.recorder->ReplayTo(l);
      }
    }
    report.group_merge_seconds += Now() - merge0;

    // Hand the group's tools back to the merged main database (clone
    // mode; shared-mode tools never left it). The merge copied the
    // task's written tables verbatim, so for every table in the tool's
    // scope the main database now equals its clone and Rebase keeps
    // the incrementally maintained statistics.
    const double rebase0 = Now();
    if (!shared) {
      for (GroupTask& task : tasks) {
        PropertyTool* t = tools_[static_cast<size_t>(task.id)].get();
        ASPECT_RETURN_NOT_OK(t->Rebase(db));
        task.clone.reset();
      }
    }
    // Any other bound tool whose statistics the group may have touched
    // (or whose scope is unknown or write-only observed) gets them
    // rebuilt the same way. The rebind test is directional and against
    // stats_reads: Bind only rebuilds statistics, so a tool whose
    // statistics inputs no group write can disturb — e.g. a pure
    // row-structure reader when the group wrote only cells — is
    // provably unchanged (O1) and keeps its state.
    std::set<AccessScope::Atom> group_written;
    std::set<int> group_ids;
    for (GroupTask& task : tasks) {
      group_ids.insert(task.id);
      group_written.insert(task.recorder->written().begin(),
                           task.recorder->written().end());
    }
    std::set<int> considered;
    for (const int v : order) {
      if (group_ids.count(v) > 0 || !considered.insert(v).second) continue;
      PropertyTool* vt = tools_[static_cast<size_t>(v)].get();
      if (!vt->bound()) continue;
      const AccessScope vs = resolve_scope(v);
      if (!vs.known || !vs.reads_complete ||
          WritesDisturbAtoms(group_written, vs.stats_reads)) {
        vt->Unbind();
        ASPECT_RETURN_NOT_OK(vt->Bind(db));
      }
    }
    report.group_rebase_seconds += Now() - rebase0;

    // Adopt the tasks' access records and file the reports in order.
    for (GroupTask& task : tasks) {
      monitor_->MergeFrom(std::move(*task.local_monitor));
    }
    for (size_t k = 0; k < tasks.size(); ++k) {
      GroupTask& task = tasks[k];
      PropertyTool* t = tools_[static_cast<size_t>(task.id)].get();
      ToolReport step;
      step.tool = t->name();
      step.error_before = error_before[k];
      step.error_after = t->Error();
      step.applied = task.applied;
      step.vetoed = task.vetoed;
      step.forced = task.forced;
      step.seconds = task.seconds;
      step.parallel = true;
      step.batch_final = task.batch_final;
      if (options.batch_auto) {
        tool_batch_hint[static_cast<size_t>(task.id)] = task.batch_final;
      }
      ASPECT_LOG(Info) << "tweak " << step.tool << " (parallel): "
                       << step.error_before << " -> " << step.error_after;
      report.steps.push_back(std::move(step));
      if (std::find(enforced.begin(), enforced.end(), task.id) ==
          enforced.end()) {
        enforced.push_back(task.id);
      }
    }
    return Status::OK();
  };

  const bool try_parallel = options.parallel_pass &&
                            !options.rollback_on_regression &&
                            order.size() > 1;
  for (int iter = 0; iter < options.iterations; ++iter) {
    cur_pass = iter;
    children.clear();
    children.reserve(order.size());
    for (size_t i = 0; i < order.size(); ++i) children.push_back(rng.Fork());

    size_t pos = 0;
    while (pos < order.size()) {
      if (!try_parallel) {
        ASPECT_RETURN_NOT_OK(serial_step(pos, &children[pos]));
        ++pos;
        continue;
      }
      // Collect the maximal run of consecutive parallel-eligible
      // positions starting here; anything shorter than two runs serial.
      std::vector<AccessScope> window;
      size_t end = pos;
      while (end < order.size()) {
        AccessScope s;
        if (!parallel_eligible(end, &s)) break;
        window.push_back(std::move(s));
        ++end;
      }
      if (end - pos < 2) {
        ASPECT_RETURN_NOT_OK(serial_step(pos, &children[pos]));
        ++pos;
        continue;
      }
      // Partition the window by scope conflicts (O1): positions in one
      // independence class are pairwise non-conflicting. The group is
      // the maximal consecutive prefix sharing the first position's
      // class — consecutiveness means no conflicting tool was
      // scheduled between the members, so running them concurrently is
      // exactly the commutation O1 licenses.
      const size_t wn = end - pos;
      std::vector<std::vector<bool>> adj(wn, std::vector<bool>(wn, false));
      for (size_t a = 0; a < wn; ++a) {
        for (size_t b = a + 1; b < wn; ++b) {
          const bool c = ScopesConflict(window[a], window[b]);
          adj[a][b] = c;
          adj[b][a] = c;
        }
      }
      const std::vector<std::vector<int>> classes = IndependentClasses(adj);
      std::vector<int> class_of(wn, 0);
      for (size_t k = 0; k < classes.size(); ++k) {
        for (const int v : classes[k]) {
          class_of[static_cast<size_t>(v)] = static_cast<int>(k);
        }
      }
      std::vector<size_t> members = {pos};
      std::vector<AccessScope> mscopes = {window[0]};
      for (size_t j = 1; j < wn; ++j) {
        if (class_of[j] != class_of[0]) break;
        // The same tool twice in one group would race with itself.
        bool duplicate = false;
        for (const size_t m : members) {
          if (order[m] == order[pos + j]) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) break;
        members.push_back(pos + j);
        mscopes.push_back(window[j]);
      }
      if (members.size() < 2) {
        ASPECT_RETURN_NOT_OK(serial_step(pos, &children[pos]));
        ++pos;
        continue;
      }
      ASPECT_RETURN_NOT_OK(run_group(members, mscopes));
      pos = members.back() + 1;
    }
    if (options.converge_epsilon > 0) {
      double total = 0;
      for (const int id : order) {
        total += tools_[static_cast<size_t>(id)]->Error();
      }
      if (prev_total >= 0) {
        const double improvement = prev_total - total;
        if (improvement < 0) {
          // A pass that made things worse is not convergence: report
          // it as a regression (previously conflated with kConverged).
          report.stop_reason = RunReport::StopReason::kRegressed;
          ASPECT_LOG(Warning)
              << "pass " << iter + 1 << " regressed: total error "
              << prev_total << " -> " << total;
          break;
        }
        if (improvement < options.converge_epsilon) {
          report.stop_reason = RunReport::StopReason::kConverged;
          break;
        }
      }
      prev_total = total;
    }
  }

  report.final_errors.resize(tools_.size(), 0.0);
  for (size_t i = 0; i < tools_.size(); ++i) {
    if (tools_[i]->bound()) {
      report.final_errors[i] = tools_[i]->Error();
    }
  }
  for (const int id : order) {
    tools_[static_cast<size_t>(id)]->Unbind();
  }
  report.total_seconds = Now() - run_start;
  for (const ToolReport& s : report.steps) {
    report.votes_total += s.votes_total;
    report.votes_skipped += s.votes_skipped;
    report.route_audit_violations += s.route_audit_violations;
    report.route_fallbacks += s.route_fallbacks;
  }
  report.route_index_build_seconds = route_index_build_seconds;
  if (checker_ != nullptr) {
    report.scope_violations = checker_->violations();
    if (options.check_scopes == analysis::ScopeCheckMode::kStrict &&
        !checker_->ok()) {
      return Status::ValidationFailed(StrFormat(
          "scope check (strict): %zu violation(s), first: %s",
          report.scope_violations.size(),
          report.scope_violations.front().ToString().c_str()));
    }
  }
  return report;
}

Result<std::vector<Coordinator::OrderOutcome>> Coordinator::CompareOrders(
    const Database& db, const std::vector<std::vector<int>>& orders,
    const CoordinatorOptions& options) {
  const size_t n = orders.size();
  std::vector<OrderOutcome> outcomes(n);

  // Candidates are independent given their own tool set: Run seeds its
  // RNG from options.seed, so a worker Coordinator with cloned tools
  // and a database snapshot produces exactly the serial result.
  const auto clone_tools = [this]() {
    std::vector<std::unique_ptr<PropertyTool>> clones;
    clones.reserve(tools_.size());
    for (const auto& t : tools_) {
      std::unique_ptr<PropertyTool> c = t->Clone();
      if (c == nullptr) return std::vector<std::unique_ptr<PropertyTool>>();
      clones.push_back(std::move(c));
    }
    return clones;
  };
  bool cloneable = !tools_.empty();
  if (cloneable) {
    cloneable = clone_tools().size() == tools_.size();
  }

  if (!cloneable) {
    // Legacy path for tools without Clone(): candidates share this
    // coordinator's tools and must run one at a time.
    for (size_t i = 0; i < n; ++i) {
      std::unique_ptr<Database> scratch = db.Clone();
      OrderOutcome& outcome = outcomes[i];
      outcome.order = orders[i];
      const double t0 = Now();
      ASPECT_ASSIGN_OR_RETURN(outcome.report,
                              Run(scratch.get(), orders[i], options));
      outcome.seconds = Now() - t0;
      for (const int id : orders[i]) {
        outcome.total_error +=
            outcome.report.final_errors[static_cast<size_t>(id)];
      }
    }
  } else {
    std::vector<Status> statuses(n, Status::OK());
    std::vector<std::unique_ptr<AccessMonitor>> monitors(n);
    const auto run_one = [&](size_t i) {
      Coordinator worker;
      for (auto& c : clone_tools()) worker.AddTool(std::move(c));
      std::unique_ptr<Database> scratch = db.Clone();
      OrderOutcome& outcome = outcomes[i];
      outcome.order = orders[i];
      const double t0 = Now();
      Result<RunReport> r = worker.Run(scratch.get(), orders[i], options);
      outcome.seconds = Now() - t0;
      if (!r.ok()) {
        statuses[i] = r.status();
        return;
      }
      outcome.report = std::move(r).ValueOrDie();
      for (const int id : orders[i]) {
        outcome.total_error +=
            outcome.report.final_errors[static_cast<size_t>(id)];
      }
      monitors[i] = std::move(worker.monitor_);
    };
    int threads = options.order_search_threads;
    if (threads <= 0) threads = ThreadPool::HardwareThreads();
    threads = std::min<int>(threads, static_cast<int>(n));
    ThreadPool* pool = threads > 1 ? ThreadPool::Shared(threads) : nullptr;
    if (pool != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        pool->Submit([&run_one, i]() { run_one(i); });
      }
      pool->Wait();
    } else {
      for (size_t i = 0; i < n; ++i) run_one(i);
    }
    for (const Status& st : statuses) {
      if (!st.ok()) return st;
    }
    // Keep last_monitor() meaningful: adopt the final candidate's
    // monitor, matching what a serial sequence of Runs would leave.
    for (size_t i = n; i-- > 0;) {
      if (monitors[i] != nullptr) {
        monitor_ = std::move(monitors[i]);
        break;
      }
    }
  }

  std::stable_sort(outcomes.begin(), outcomes.end(),
                   [](const OrderOutcome& a, const OrderOutcome& b) {
                     return a.total_error < b.total_error;
                   });
  return outcomes;
}

std::vector<std::pair<std::string, std::vector<int>>> AllPermutations(
    const Coordinator& coordinator, const std::vector<int>& tool_ids) {
  std::vector<int> ids = tool_ids;
  std::sort(ids.begin(), ids.end());

  // Label each tool with the shortest prefix of its name that no other
  // participating tool's name shares; first initials alone collide for
  // names like "coappear" and "chain".
  std::map<int, std::string> prefix;
  for (const int id : ids) {
    const std::string& name = coordinator.tool(id)->name();
    std::string label;
    for (size_t len = 1; len <= name.size(); ++len) {
      bool unique = true;
      for (const int other : ids) {
        if (other == id) continue;
        const std::string& o = coordinator.tool(other)->name();
        if (o.compare(0, len, name, 0, len) == 0) {
          unique = false;
          break;
        }
      }
      if (unique) {
        label = name.substr(0, len);
        break;
      }
    }
    if (label.empty()) {
      // No distinguishing prefix: another tool's name is a duplicate
      // (or an extension) of this one. Use the full name, plus the id
      // for exact duplicates.
      label = name.empty() ? "?" : name;
      for (const int other : ids) {
        if (other != id && coordinator.tool(other)->name() == name) {
          label += "#" + std::to_string(id);
          break;
        }
      }
    }
    for (char& c : label) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    prefix[id] = label;
  }

  std::vector<std::pair<std::string, std::vector<int>>> out;
  do {
    std::string label;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) label += "-";
      label += prefix[ids[i]];
    }
    out.emplace_back(label, ids);
  } while (std::next_permutation(ids.begin(), ids.end()));
  return out;
}

}  // namespace aspect
