#include "aspect/coordinator.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <map>
#include <sstream>

#include "aspect/tweak_context.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "relational/modlog.h"

namespace aspect {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* StopReasonToString(RunReport::StopReason reason) {
  switch (reason) {
    case RunReport::StopReason::kIterationsExhausted:
      return "iterations exhausted";
    case RunReport::StopReason::kConverged:
      return "converged";
    case RunReport::StopReason::kRegressed:
      return "regressed";
  }
  return "?";
}

std::string RunReport::ToString() const {
  std::ostringstream os;
  for (const ToolReport& s : steps) {
    os << StrFormat("%-10s error %.6f -> %.6f (applied %lld, vetoed %lld, "
                    "forced %lld, %.2fs)",
                    s.tool.c_str(), s.error_before, s.error_after,
                    static_cast<long long>(s.applied),
                    static_cast<long long>(s.vetoed),
                    static_cast<long long>(s.forced), s.seconds);
    if (s.rolled_back) {
      os << StrFormat(" [rolled back %lld mods in %.3fs]",
                      static_cast<long long>(s.rollback_mods),
                      s.rollback_seconds);
    } else if (s.rollback_seconds > 0) {
      os << StrFormat(" [rollback net %.3fs]", s.rollback_seconds);
    }
    os << "\n";
  }
  os << StrFormat("total %.2fs", total_seconds);
  if (stop_reason != StopReason::kIterationsExhausted) {
    os << " (" << StopReasonToString(stop_reason) << ")";
  }
  return os.str();
}

int Coordinator::AddTool(std::unique_ptr<PropertyTool> tool) {
  tools_.push_back(std::move(tool));
  return static_cast<int>(tools_.size()) - 1;
}

int Coordinator::FindTool(const std::string& name) const {
  for (size_t i = 0; i < tools_.size(); ++i) {
    if (tools_[i]->name() == name) return static_cast<int>(i);
  }
  return -1;
}

Status Coordinator::SetTargetsFromDataset(const Database& ground_truth) {
  for (const auto& t : tools_) {
    ASPECT_RETURN_NOT_OK(t->SetTargetFromDataset(ground_truth));
  }
  return Status::OK();
}

Result<RunReport> Coordinator::Run(Database* db,
                                   const std::vector<int>& order,
                                   const CoordinatorOptions& options) {
  for (const int id : order) {
    if (id < 0 || id >= num_tools()) {
      return Status::OutOfRange(StrFormat("tool id %d", id));
    }
  }
  RunReport report;
  const double run_start = Now();
  monitor_ = std::make_unique<AccessMonitor>(num_tools());
  Rng rng(options.seed);

  // Bind all tools in the order so each maintains statistics (and can
  // validate) from the start of the run.
  for (const int id : order) {
    PropertyTool* t = tools_[static_cast<size_t>(id)].get();
    ASPECT_RETURN_NOT_OK(t->Bind(db));
    if (options.repair_targets) {
      ASPECT_RETURN_NOT_OK(t->RepairTarget());
    }
  }

  // Validators accumulate: a tool that has completed at least one
  // Tweak vetoes later tools' damaging proposals (Sec. III-C).
  std::vector<int> enforced;
  double prev_total = -1;
  // Undo-log rollback records every step's modifications with
  // pre-images; a regressed step is reverted in reverse at a cost
  // linear in the step's modifications, not the database size.
  const bool undo_mode = options.rollback_on_regression &&
                         options.rollback_mode == RollbackMode::kUndoLog;
  std::unique_ptr<ModificationLog> undo_log;
  if (undo_mode) undo_log = std::make_unique<ModificationLog>(db);
  for (int iter = 0; iter < options.iterations; ++iter) {
    for (const int id : order) {
      PropertyTool* t = tools_[static_cast<size_t>(id)].get();
      std::vector<PropertyTool*> validators;
      if (options.validate) {
        for (const int e : enforced) {
          if (e != id) {
            validators.push_back(tools_[static_cast<size_t>(e)].get());
          }
        }
      }
      Rng child = rng.Fork();
      TweakContext ctx(db, std::move(validators), &child, monitor_.get(),
                       id);
      ToolReport step;
      step.tool = t->name();
      step.error_before = t->Error();
      // For rollback: the summed error of everything already enforced
      // plus this tool, and a way to restore the pre-step state.
      std::unique_ptr<Database> snapshot;
      double guarded_before = 0;
      if (options.rollback_on_regression) {
        const double snap0 = Now();
        if (undo_mode) {
          undo_log->Clear();
        } else {
          snapshot = db->Clone();
        }
        step.rollback_seconds += Now() - snap0;
        guarded_before = step.error_before;
        for (const int e : enforced) {
          if (e != id) guarded_before += tools_[static_cast<size_t>(e)]->Error();
        }
      }
      const double t0 = Now();
      const Status st = t->Tweak(&ctx);
      step.seconds = Now() - t0;
      if (!st.ok()) {
        for (const int uid : order) {
          tools_[static_cast<size_t>(uid)]->Unbind();
        }
        return st;
      }
      if (options.rollback_on_regression) {
        if (undo_mode) step.rollback_mods = undo_log->size();
        double guarded_after = t->Error();
        for (const int e : enforced) {
          if (e != id) guarded_after += tools_[static_cast<size_t>(e)]->Error();
        }
        if (guarded_after > guarded_before + 1e-12) {
          // Restore the pre-step state and rebuild every bound tool's
          // statistics.
          const double undo0 = Now();
          for (const int uid : order) {
            tools_[static_cast<size_t>(uid)]->Unbind();
          }
          if (undo_mode) {
            ASPECT_RETURN_NOT_OK(undo_log->UndoOnto(db));
            undo_log->Clear();
          } else {
            ASPECT_RETURN_NOT_OK(db->CopyContentFrom(*snapshot));
          }
          for (const int uid : order) {
            ASPECT_RETURN_NOT_OK(tools_[static_cast<size_t>(uid)]->Bind(db));
          }
          step.rolled_back = true;
          step.rollback_seconds += Now() - undo0;
          ASPECT_LOG(Info) << "rolled back " << t->name()
                           << " (regression " << guarded_before << " -> "
                           << guarded_after << ")";
        }
      }
      step.error_after = t->Error();
      step.applied = ctx.applied();
      step.vetoed = ctx.vetoed();
      step.forced = ctx.forced();
      ASPECT_LOG(Info) << "tweak " << step.tool << ": "
                       << step.error_before << " -> " << step.error_after;
      report.steps.push_back(std::move(step));
      if (std::find(enforced.begin(), enforced.end(), id) ==
          enforced.end()) {
        enforced.push_back(id);
      }
    }
    if (options.converge_epsilon > 0) {
      double total = 0;
      for (const int id : order) {
        total += tools_[static_cast<size_t>(id)]->Error();
      }
      if (prev_total >= 0) {
        const double improvement = prev_total - total;
        if (improvement < 0) {
          // A pass that made things worse is not convergence: report
          // it as a regression (previously conflated with kConverged).
          report.stop_reason = RunReport::StopReason::kRegressed;
          ASPECT_LOG(Warning)
              << "pass " << iter + 1 << " regressed: total error "
              << prev_total << " -> " << total;
          break;
        }
        if (improvement < options.converge_epsilon) {
          report.stop_reason = RunReport::StopReason::kConverged;
          break;
        }
      }
      prev_total = total;
    }
  }

  report.final_errors.resize(tools_.size(), 0.0);
  for (size_t i = 0; i < tools_.size(); ++i) {
    if (tools_[i]->bound()) {
      report.final_errors[i] = tools_[i]->Error();
    }
  }
  for (const int id : order) {
    tools_[static_cast<size_t>(id)]->Unbind();
  }
  report.total_seconds = Now() - run_start;
  return report;
}

Result<std::vector<Coordinator::OrderOutcome>> Coordinator::CompareOrders(
    const Database& db, const std::vector<std::vector<int>>& orders,
    const CoordinatorOptions& options) {
  const size_t n = orders.size();
  std::vector<OrderOutcome> outcomes(n);

  // Candidates are independent given their own tool set: Run seeds its
  // RNG from options.seed, so a worker Coordinator with cloned tools
  // and a database snapshot produces exactly the serial result.
  const auto clone_tools = [this]() {
    std::vector<std::unique_ptr<PropertyTool>> clones;
    clones.reserve(tools_.size());
    for (const auto& t : tools_) {
      std::unique_ptr<PropertyTool> c = t->Clone();
      if (c == nullptr) return std::vector<std::unique_ptr<PropertyTool>>();
      clones.push_back(std::move(c));
    }
    return clones;
  };
  bool cloneable = !tools_.empty();
  if (cloneable) {
    cloneable = clone_tools().size() == tools_.size();
  }

  if (!cloneable) {
    // Legacy path for tools without Clone(): candidates share this
    // coordinator's tools and must run one at a time.
    for (size_t i = 0; i < n; ++i) {
      std::unique_ptr<Database> scratch = db.Clone();
      OrderOutcome& outcome = outcomes[i];
      outcome.order = orders[i];
      const double t0 = Now();
      ASPECT_ASSIGN_OR_RETURN(outcome.report,
                              Run(scratch.get(), orders[i], options));
      outcome.seconds = Now() - t0;
      for (const int id : orders[i]) {
        outcome.total_error +=
            outcome.report.final_errors[static_cast<size_t>(id)];
      }
    }
  } else {
    std::vector<Status> statuses(n, Status::OK());
    std::vector<std::unique_ptr<AccessMonitor>> monitors(n);
    const auto run_one = [&](size_t i) {
      Coordinator worker;
      for (auto& c : clone_tools()) worker.AddTool(std::move(c));
      std::unique_ptr<Database> scratch = db.Clone();
      OrderOutcome& outcome = outcomes[i];
      outcome.order = orders[i];
      const double t0 = Now();
      Result<RunReport> r = worker.Run(scratch.get(), orders[i], options);
      outcome.seconds = Now() - t0;
      if (!r.ok()) {
        statuses[i] = r.status();
        return;
      }
      outcome.report = std::move(r).ValueOrDie();
      for (const int id : orders[i]) {
        outcome.total_error +=
            outcome.report.final_errors[static_cast<size_t>(id)];
      }
      monitors[i] = std::move(worker.monitor_);
    };
    int threads = options.order_search_threads;
    if (threads <= 0) threads = ThreadPool::HardwareThreads();
    threads = std::min<int>(threads, static_cast<int>(n));
    if (threads > 1) {
      ThreadPool pool(threads);
      for (size_t i = 0; i < n; ++i) {
        pool.Submit([&run_one, i]() { run_one(i); });
      }
      pool.Wait();
    } else {
      for (size_t i = 0; i < n; ++i) run_one(i);
    }
    for (const Status& st : statuses) {
      if (!st.ok()) return st;
    }
    // Keep last_monitor() meaningful: adopt the final candidate's
    // monitor, matching what a serial sequence of Runs would leave.
    for (size_t i = n; i-- > 0;) {
      if (monitors[i] != nullptr) {
        monitor_ = std::move(monitors[i]);
        break;
      }
    }
  }

  std::stable_sort(outcomes.begin(), outcomes.end(),
                   [](const OrderOutcome& a, const OrderOutcome& b) {
                     return a.total_error < b.total_error;
                   });
  return outcomes;
}

std::vector<std::pair<std::string, std::vector<int>>> AllPermutations(
    const Coordinator& coordinator, const std::vector<int>& tool_ids) {
  std::vector<int> ids = tool_ids;
  std::sort(ids.begin(), ids.end());

  // Label each tool with the shortest prefix of its name that no other
  // participating tool's name shares; first initials alone collide for
  // names like "coappear" and "chain".
  std::map<int, std::string> prefix;
  for (const int id : ids) {
    const std::string& name = coordinator.tool(id)->name();
    std::string label;
    for (size_t len = 1; len <= name.size(); ++len) {
      bool unique = true;
      for (const int other : ids) {
        if (other == id) continue;
        const std::string& o = coordinator.tool(other)->name();
        if (o.compare(0, len, name, 0, len) == 0) {
          unique = false;
          break;
        }
      }
      if (unique) {
        label = name.substr(0, len);
        break;
      }
    }
    if (label.empty()) {
      // No distinguishing prefix: another tool's name is a duplicate
      // (or an extension) of this one. Use the full name, plus the id
      // for exact duplicates.
      label = name.empty() ? "?" : name;
      for (const int other : ids) {
        if (other != id && coordinator.tool(other)->name() == name) {
          label += "#" + std::to_string(id);
          break;
        }
      }
    }
    for (char& c : label) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    prefix[id] = label;
  }

  std::vector<std::pair<std::string, std::vector<int>>> out;
  do {
    std::string label;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) label += "-";
      label += prefix[ids[i]];
    }
    out.emplace_back(label, ids);
  } while (std::next_permutation(ids.begin(), ids.end()));
  return out;
}

}  // namespace aspect
