#include "aspect/coordinator.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "aspect/tweak_context.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace aspect {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string RunReport::ToString() const {
  std::ostringstream os;
  for (const ToolReport& s : steps) {
    os << StrFormat("%-10s error %.6f -> %.6f (applied %lld, vetoed %lld, "
                    "forced %lld, %.2fs)\n",
                    s.tool.c_str(), s.error_before, s.error_after,
                    static_cast<long long>(s.applied),
                    static_cast<long long>(s.vetoed),
                    static_cast<long long>(s.forced), s.seconds);
  }
  os << StrFormat("total %.2fs", total_seconds);
  return os.str();
}

int Coordinator::AddTool(std::unique_ptr<PropertyTool> tool) {
  tools_.push_back(std::move(tool));
  return static_cast<int>(tools_.size()) - 1;
}

int Coordinator::FindTool(const std::string& name) const {
  for (size_t i = 0; i < tools_.size(); ++i) {
    if (tools_[i]->name() == name) return static_cast<int>(i);
  }
  return -1;
}

Status Coordinator::SetTargetsFromDataset(const Database& ground_truth) {
  for (const auto& t : tools_) {
    ASPECT_RETURN_NOT_OK(t->SetTargetFromDataset(ground_truth));
  }
  return Status::OK();
}

Result<RunReport> Coordinator::Run(Database* db,
                                   const std::vector<int>& order,
                                   const CoordinatorOptions& options) {
  for (const int id : order) {
    if (id < 0 || id >= num_tools()) {
      return Status::OutOfRange(StrFormat("tool id %d", id));
    }
  }
  RunReport report;
  const double run_start = Now();
  monitor_ = std::make_unique<AccessMonitor>(num_tools());
  Rng rng(options.seed);

  // Bind all tools in the order so each maintains statistics (and can
  // validate) from the start of the run.
  for (const int id : order) {
    PropertyTool* t = tools_[static_cast<size_t>(id)].get();
    ASPECT_RETURN_NOT_OK(t->Bind(db));
    if (options.repair_targets) {
      ASPECT_RETURN_NOT_OK(t->RepairTarget());
    }
  }

  // Validators accumulate: a tool that has completed at least one
  // Tweak vetoes later tools' damaging proposals (Sec. III-C).
  std::vector<int> enforced;
  double prev_total = -1;
  for (int iter = 0; iter < options.iterations; ++iter) {
    for (const int id : order) {
      PropertyTool* t = tools_[static_cast<size_t>(id)].get();
      std::vector<PropertyTool*> validators;
      if (options.validate) {
        for (const int e : enforced) {
          if (e != id) {
            validators.push_back(tools_[static_cast<size_t>(e)].get());
          }
        }
      }
      Rng child = rng.Fork();
      TweakContext ctx(db, std::move(validators), &child, monitor_.get(),
                       id);
      ToolReport step;
      step.tool = t->name();
      step.error_before = t->Error();
      // For rollback: the summed error of everything already enforced
      // plus this tool, and a snapshot to restore.
      std::unique_ptr<Database> snapshot;
      double guarded_before = 0;
      if (options.rollback_on_regression) {
        snapshot = db->Clone();
        guarded_before = step.error_before;
        for (const int e : enforced) {
          if (e != id) guarded_before += tools_[static_cast<size_t>(e)]->Error();
        }
      }
      const double t0 = Now();
      const Status st = t->Tweak(&ctx);
      step.seconds = Now() - t0;
      if (!st.ok()) {
        for (const int uid : order) {
          tools_[static_cast<size_t>(uid)]->Unbind();
        }
        return st;
      }
      if (options.rollback_on_regression) {
        double guarded_after = t->Error();
        for (const int e : enforced) {
          if (e != id) guarded_after += tools_[static_cast<size_t>(e)]->Error();
        }
        if (guarded_after > guarded_before + 1e-12) {
          // Restore the snapshot and rebuild every bound tool's state.
          for (const int uid : order) {
            tools_[static_cast<size_t>(uid)]->Unbind();
          }
          ASPECT_RETURN_NOT_OK(db->CopyContentFrom(*snapshot));
          for (const int uid : order) {
            ASPECT_RETURN_NOT_OK(tools_[static_cast<size_t>(uid)]->Bind(db));
          }
          ASPECT_LOG(Info) << "rolled back " << t->name()
                           << " (regression " << guarded_before << " -> "
                           << guarded_after << ")";
        }
      }
      step.error_after = t->Error();
      step.applied = ctx.applied();
      step.vetoed = ctx.vetoed();
      step.forced = ctx.forced();
      ASPECT_LOG(Info) << "tweak " << step.tool << ": "
                       << step.error_before << " -> " << step.error_after;
      report.steps.push_back(std::move(step));
      if (std::find(enforced.begin(), enforced.end(), id) ==
          enforced.end()) {
        enforced.push_back(id);
      }
    }
    if (options.converge_epsilon > 0) {
      double total = 0;
      for (const int id : order) {
        total += tools_[static_cast<size_t>(id)]->Error();
      }
      if (prev_total >= 0 &&
          prev_total - total < options.converge_epsilon) {
        break;
      }
      prev_total = total;
    }
  }

  report.final_errors.resize(tools_.size(), 0.0);
  for (size_t i = 0; i < tools_.size(); ++i) {
    if (tools_[i]->bound()) {
      report.final_errors[i] = tools_[i]->Error();
    }
  }
  for (const int id : order) {
    tools_[static_cast<size_t>(id)]->Unbind();
  }
  report.total_seconds = Now() - run_start;
  return report;
}

Result<std::vector<Coordinator::OrderOutcome>> Coordinator::CompareOrders(
    const Database& db, const std::vector<std::vector<int>>& orders,
    const CoordinatorOptions& options) {
  std::vector<OrderOutcome> outcomes;
  for (const std::vector<int>& order : orders) {
    std::unique_ptr<Database> scratch = db.Clone();
    OrderOutcome outcome;
    outcome.order = order;
    ASPECT_ASSIGN_OR_RETURN(outcome.report,
                            Run(scratch.get(), order, options));
    for (const int id : order) {
      outcome.total_error +=
          outcome.report.final_errors[static_cast<size_t>(id)];
    }
    outcomes.push_back(std::move(outcome));
  }
  std::stable_sort(outcomes.begin(), outcomes.end(),
                   [](const OrderOutcome& a, const OrderOutcome& b) {
                     return a.total_error < b.total_error;
                   });
  return outcomes;
}

std::vector<std::pair<std::string, std::vector<int>>> AllPermutations(
    const Coordinator& coordinator, const std::vector<int>& tool_ids) {
  std::vector<int> ids = tool_ids;
  std::sort(ids.begin(), ids.end());
  std::vector<std::pair<std::string, std::vector<int>>> out;
  do {
    std::string label;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) label += "-";
      const std::string& name =
          coordinator.tool(ids[i])->name();
      label += static_cast<char>(
          std::toupper(static_cast<unsigned char>(name.empty() ? '?' : name[0])));
    }
    out.emplace_back(label, ids);
  } while (std::next_permutation(ids.begin(), ids.end()));
  return out;
}

}  // namespace aspect
