#include "aspect/targets_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace aspect {

namespace {
constexpr const char* kHeader = "aspect-targets v1";
}  // namespace

Status SaveTargets(const Coordinator& coordinator,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  out << kHeader << "\n";
  for (int i = 0; i < coordinator.num_tools(); ++i) {
    const PropertyTool* tool = coordinator.tool(i);
    std::ostringstream body;
    const Status st = tool->SaveTarget(&body);
    if (st.code() == StatusCode::kNotImplemented) continue;
    ASPECT_RETURN_NOT_OK(st);
    out << "tool " << tool->name() << "\n" << body.str();
  }
  return Status::OK();
}

Status LoadTargets(Coordinator* coordinator, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::IoError("bad targets file header");
  }
  std::string tag;
  while (in >> tag) {
    if (tag != "tool") {
      return Status::IoError(
          StrFormat("expected 'tool', got '%s'", tag.c_str()));
    }
    std::string name;
    if (!(in >> name)) return Status::IoError("truncated targets file");
    const int id = coordinator->FindTool(name);
    if (id < 0) {
      return Status::KeyError(
          StrFormat("targets file names unknown tool '%s'", name.c_str()));
    }
    ASPECT_RETURN_NOT_OK(coordinator->tool(id)->LoadTarget(&in));
  }
  return Status::OK();
}

}  // namespace aspect
