// Target generation (Sec. III-C). The three modes:
//
//  (a) User input           - every tool exposes an explicit SetTarget
//                             overload for its statistics type.
//  (b) Developer generation - tool-specific code (e.g. the default of
//                             extracting from the ground truth).
//  (c) Statistical extrapolation - this module: extract a frequency
//      distribution from each snapshot D1..Dr (or from nested VDFS
//      samples, stats/sampler.h), fit each statistic against dataset
//      size, and evaluate the fit at the target size.
#pragma once

#include <functional>
#include <vector>

#include "common/result.h"
#include "relational/database.h"
#include "stats/freq_dist.h"

namespace aspect {

/// Extracts one frequency distribution from a database (a property
/// statistic, e.g. comments-per-post).
using DistributionExtractor =
    std::function<FrequencyDistribution(const Database&)>;

struct ExtrapolationOptions {
  /// Degree of the per-key least-squares polynomial in dataset size.
  int degree = 1;
  /// Keys whose extrapolated count falls below this are dropped.
  int64_t min_count = 1;
};

/// Extrapolates the distribution to a dataset of `target_size` total
/// tuples, given snapshots of increasing size. Each key's count is
/// fitted against snapshot total size with a polynomial; the total
/// sizes come from the snapshots themselves. Needs at least
/// options.degree + 1 snapshots.
Result<FrequencyDistribution> ExtrapolateDistribution(
    const std::vector<const Database*>& snapshots,
    const DistributionExtractor& extract, double target_size,
    const ExtrapolationOptions& options = {});

}  // namespace aspect
