// Minimal aggregate query engine over the relational layer: the
// primitives needed by the paper's query-similarity experiments
// (Sec. VII-B): hash-join style traversals, COUNT(DISTINCT ...),
// group-by-having and averages over FK fan-outs.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "common/result.h"
#include "relational/database.h"

namespace aspect {

/// Number of distinct values in a FK column (live tuples only).
Result<int64_t> CountDistinctFk(const Database& db,
                                const std::string& table,
                                const std::string& fk_col);

/// Per-parent fan-out: parent tuple id -> number of live child tuples
/// referencing it through `fk_col`.
Result<std::map<TupleId, int64_t>> FanOut(const Database& db,
                                          const std::string& table,
                                          const std::string& fk_col);

/// Per-parent distinct-secondary counts: for each value of `group_col`
/// the number of distinct values of `distinct_col` among its tuples.
Result<std::map<TupleId, int64_t>> DistinctPerGroup(
    const Database& db, const std::string& table,
    const std::string& group_col, const std::string& distinct_col);

/// COUNT of users who authored at least one post that received at
/// least one response (the Q1 family: "users who uploaded a photo with
/// commenters").
Result<int64_t> CountUsersWithRespondedPost(const Database& db,
                                            const ResponseSpec& spec);

/// COUNT of entities referenced by [1, k] distinct users through an
/// activity table (the Q2 family: "MVs commented on by at most 10
/// different users").
Result<int64_t> CountEntitiesWithAtMostKUsers(const Database& db,
                                              const std::string& activity,
                                              const std::string& entity_col,
                                              const std::string& user_col,
                                              int64_t k);

/// AVG over all entities of the number of distinct users interacting
/// with them (the Q3 family: "average number of listeners per song").
/// Entities without interactions count as zero.
Result<double> AvgDistinctUsersPerEntity(const Database& db,
                                         const std::string& entity_table,
                                         const std::string& activity,
                                         const std::string& entity_col,
                                         const std::string& user_col);

/// COUNT of unordered user pairs {u, v}, u != v, interacting through a
/// response2post table (the Q4 family).
Result<int64_t> CountInteractingUserPairs(const Database& db,
                                          const ResponseSpec& spec);

}  // namespace aspect
