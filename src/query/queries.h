// The paper's per-dataset query families (Sec. VII-B, Figs. 15/28-30):
// each dataset gets four aggregate queries Q1-Q4 tied to the three
// enforced properties (linear joins, coappear multiplicities, pairwise
// interactions).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"

namespace aspect {

struct NamedQuery {
  std::string name;
  std::string description;
  std::function<Result<double>(const Database&)> eval;
};

/// The Q1-Q4 suite for one of the four built-in dataset schemas
/// (dispatches on schema.name). Fails for unknown schemas.
Result<std::vector<NamedQuery>> QuerySuiteFor(const Schema& schema);

/// Relative query error |q(truth) - q(scaled)| / q(truth) (Sec. VI-C2);
/// zero-valued truths fall back to the absolute difference.
Result<double> QueryError(const NamedQuery& q, const Database& truth,
                          const Database& scaled);

}  // namespace aspect
