// A small SQL subset for aggregate queries over the relational layer -
// enough to express the paper's query-similarity workload (Sec. VII-B)
// declaratively, and a second, independent implementation to
// cross-validate the hand-written query engine.
//
// Supported grammar (keywords case-insensitive):
//
//   query       := SELECT select_list FROM source join* where?
//                  (GROUP BY colref having?)?
//   select_list := select_item (',' select_item)*
//   select_item := aggregate (AS ident)? | colref (AS ident)?
//   aggregate   := COUNT '(' '*' ')'
//                | COUNT '(' DISTINCT colref ')'
//                | COUNT '(' colref ')'
//                | SUM '(' colref ')'
//                | AVG '(' colref ')'
//                | MIN '(' colref ')' | MAX '(' colref ')'
//   source      := ident | '(' query ')' (AS? ident)?
//   join        := JOIN ident ON colref '=' colref
//   where       := WHERE condition (AND condition)*
//   having      := HAVING condition (AND condition)*
//   condition   := operand cmp operand
//   operand     := colref | number | aggregate   (aggregates in HAVING)
//   cmp         := '=' | '!=' | '<' | '<=' | '>' | '>='
//   colref      := ident ('.' ident)?
//
// Every table exposes its tuple id as the pseudo-column `id`, so FK
// joins read `JOIN Post ON Comment.post = Post.id`. Without GROUP BY,
// the select list must be one aggregate and the query returns its
// scalar; with GROUP BY, one row per group (use as a subquery).
#pragma once

#include <string>

#include "common/result.h"
#include "relational/database.h"

namespace aspect {

/// Parses and executes a scalar aggregate query.
Result<double> ExecuteScalarQuery(const Database& db,
                                  const std::string& sql);

}  // namespace aspect
