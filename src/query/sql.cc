#include "query/sql.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/string_util.h"

namespace aspect {
namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kSymbol, kEnd } kind = kEnd;
  std::string text;   // idents upper-cased copy in `upper`
  std::string upper;
  double number = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) {
    size_t i = 0;
    while (i < input.size()) {
      const char c = input[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token t;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < input.size() &&
               (std::isalnum(static_cast<unsigned char>(input[j])) ||
                input[j] == '_')) {
          ++j;
        }
        t.kind = Token::kIdent;
        t.text = input.substr(i, j - i);
        t.upper = t.text;
        for (char& ch : t.upper) {
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        }
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && i + 1 < input.size() &&
                  std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
        size_t j = i + 1;
        while (j < input.size() &&
               (std::isdigit(static_cast<unsigned char>(input[j])) ||
                input[j] == '.')) {
          ++j;
        }
        t.kind = Token::kNumber;
        t.text = input.substr(i, j - i);
        t.number = std::strtod(t.text.c_str(), nullptr);
        i = j;
      } else {
        t.kind = Token::kSymbol;
        // Two-character comparators.
        if (i + 1 < input.size() &&
            ((c == '<' && input[i + 1] == '=') ||
             (c == '>' && input[i + 1] == '=') ||
             (c == '!' && input[i + 1] == '='))) {
          t.text = input.substr(i, 2);
          i += 2;
        } else {
          t.text = std::string(1, c);
          ++i;
        }
      }
      tokens_.push_back(std::move(t));
    }
    Token end;
    end.kind = Token::kEnd;
    tokens_.push_back(end);
  }

  const Token& Peek(int ahead = 0) const {
    const size_t i = std::min(pos_ + static_cast<size_t>(ahead),
                              tokens_.size() - 1);
    return tokens_[i];
  }
  Token Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool AcceptKeyword(const char* kw) {
    if (Peek().kind == Token::kIdent && Peek().upper == kw) {
      Next();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* s) {
    if (Peek().kind == Token::kSymbol && Peek().text == s) {
      Next();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::Invalid(StrFormat("SQL: expected %s near '%s'", kw,
                                       Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) {
      return Status::Invalid(StrFormat("SQL: expected '%s' near '%s'", s,
                                       Peek().text.c_str()));
    }
    return Status::OK();
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------

struct ColRef {
  std::string table;  // may be empty (unqualified)
  std::string column;
  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

enum class AggKind {
  kCountStar,
  kCountDistinct,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax
};

struct Aggregate {
  AggKind kind = AggKind::kCountStar;
  ColRef col;
};

struct SelectItem {
  bool is_agg = false;
  Aggregate agg;
  ColRef col;
  std::string alias;
};

struct Operand {
  enum Kind { kCol, kNum, kAgg } kind = kNum;
  ColRef col;
  double num = 0;
  Aggregate agg;
};

struct Condition {
  Operand lhs;
  std::string cmp;
  Operand rhs;
};

struct Join {
  std::string table;
  ColRef left, right;
};

struct Query {
  std::vector<SelectItem> select;
  std::string from_table;
  std::unique_ptr<Query> from_subquery;
  std::string from_alias;
  std::vector<Join> joins;
  std::vector<Condition> where;
  bool has_group = false;
  ColRef group_col;
  std::vector<Condition> having;
};

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

Result<ColRef> ParseColRef(Lexer* lex) {
  if (lex->Peek().kind != Token::kIdent) {
    return Status::Invalid(StrFormat("SQL: expected column near '%s'",
                                     lex->Peek().text.c_str()));
  }
  ColRef ref;
  ref.column = lex->Next().text;
  if (lex->AcceptSymbol(".")) {
    if (lex->Peek().kind != Token::kIdent) {
      return Status::Invalid("SQL: expected column after '.'");
    }
    ref.table = ref.column;
    ref.column = lex->Next().text;
  }
  return ref;
}

bool PeekAggregate(const Lexer& lex) {
  const std::string& kw = lex.Peek().upper;
  return lex.Peek(1).kind == Token::kSymbol && lex.Peek(1).text == "(" &&
         (kw == "COUNT" || kw == "SUM" || kw == "AVG" || kw == "MIN" ||
          kw == "MAX");
}

Result<Aggregate> ParseAggregate(Lexer* lex) {
  Aggregate agg;
  const std::string kw = lex->Next().upper;
  ASPECT_RETURN_NOT_OK(lex->ExpectSymbol("("));
  if (kw == "COUNT") {
    if (lex->AcceptSymbol("*")) {
      agg.kind = AggKind::kCountStar;
    } else if (lex->AcceptKeyword("DISTINCT")) {
      agg.kind = AggKind::kCountDistinct;
      ASPECT_ASSIGN_OR_RETURN(agg.col, ParseColRef(lex));
    } else {
      agg.kind = AggKind::kCount;
      ASPECT_ASSIGN_OR_RETURN(agg.col, ParseColRef(lex));
    }
  } else {
    agg.kind = kw == "SUM"   ? AggKind::kSum
               : kw == "AVG" ? AggKind::kAvg
               : kw == "MIN" ? AggKind::kMin
                             : AggKind::kMax;
    ASPECT_ASSIGN_OR_RETURN(agg.col, ParseColRef(lex));
  }
  ASPECT_RETURN_NOT_OK(lex->ExpectSymbol(")"));
  return agg;
}

Result<Operand> ParseOperand(Lexer* lex, bool allow_agg) {
  Operand op;
  if (lex->Peek().kind == Token::kNumber) {
    op.kind = Operand::kNum;
    op.num = lex->Next().number;
    return op;
  }
  if (PeekAggregate(*lex)) {
    if (!allow_agg) {
      return Status::Invalid("SQL: aggregates are only valid in HAVING");
    }
    op.kind = Operand::kAgg;
    ASPECT_ASSIGN_OR_RETURN(op.agg, ParseAggregate(lex));
    return op;
  }
  op.kind = Operand::kCol;
  ASPECT_ASSIGN_OR_RETURN(op.col, ParseColRef(lex));
  return op;
}

Result<std::vector<Condition>> ParseConditions(Lexer* lex, bool allow_agg) {
  std::vector<Condition> out;
  do {
    Condition cond;
    ASPECT_ASSIGN_OR_RETURN(cond.lhs, ParseOperand(lex, allow_agg));
    const Token& t = lex->Peek();
    if (t.kind != Token::kSymbol ||
        (t.text != "=" && t.text != "!=" && t.text != "<" &&
         t.text != "<=" && t.text != ">" && t.text != ">=")) {
      return Status::Invalid(StrFormat("SQL: expected comparator near '%s'",
                                       t.text.c_str()));
    }
    cond.cmp = lex->Next().text;
    ASPECT_ASSIGN_OR_RETURN(cond.rhs, ParseOperand(lex, allow_agg));
    out.push_back(std::move(cond));
  } while (lex->AcceptKeyword("AND"));
  return out;
}

Result<std::unique_ptr<Query>> ParseQuery(Lexer* lex) {
  auto q = std::make_unique<Query>();
  ASPECT_RETURN_NOT_OK(lex->ExpectKeyword("SELECT"));
  do {
    SelectItem item;
    if (PeekAggregate(*lex)) {
      item.is_agg = true;
      ASPECT_ASSIGN_OR_RETURN(item.agg, ParseAggregate(lex));
    } else {
      ASPECT_ASSIGN_OR_RETURN(item.col, ParseColRef(lex));
    }
    if (lex->AcceptKeyword("AS")) {
      if (lex->Peek().kind != Token::kIdent) {
        return Status::Invalid("SQL: expected alias after AS");
      }
      item.alias = lex->Next().text;
    }
    q->select.push_back(std::move(item));
  } while (lex->AcceptSymbol(","));

  ASPECT_RETURN_NOT_OK(lex->ExpectKeyword("FROM"));
  if (lex->AcceptSymbol("(")) {
    ASPECT_ASSIGN_OR_RETURN(q->from_subquery, ParseQuery(lex));
    ASPECT_RETURN_NOT_OK(lex->ExpectSymbol(")"));
    lex->AcceptKeyword("AS");
    if (lex->Peek().kind == Token::kIdent) {
      q->from_alias = lex->Next().text;
    }
  } else {
    if (lex->Peek().kind != Token::kIdent) {
      return Status::Invalid("SQL: expected table after FROM");
    }
    q->from_table = lex->Next().text;
  }

  while (lex->AcceptKeyword("JOIN")) {
    Join join;
    if (lex->Peek().kind != Token::kIdent) {
      return Status::Invalid("SQL: expected table after JOIN");
    }
    join.table = lex->Next().text;
    ASPECT_RETURN_NOT_OK(lex->ExpectKeyword("ON"));
    ASPECT_ASSIGN_OR_RETURN(join.left, ParseColRef(lex));
    ASPECT_RETURN_NOT_OK(lex->ExpectSymbol("="));
    ASPECT_ASSIGN_OR_RETURN(join.right, ParseColRef(lex));
    q->joins.push_back(std::move(join));
  }
  if (lex->AcceptKeyword("WHERE")) {
    ASPECT_ASSIGN_OR_RETURN(q->where,
                            ParseConditions(lex, /*allow_agg=*/false));
  }
  if (lex->AcceptKeyword("GROUP")) {
    ASPECT_RETURN_NOT_OK(lex->ExpectKeyword("BY"));
    q->has_group = true;
    ASPECT_ASSIGN_OR_RETURN(q->group_col, ParseColRef(lex));
    if (lex->AcceptKeyword("HAVING")) {
      ASPECT_ASSIGN_OR_RETURN(q->having,
                              ParseConditions(lex, /*allow_agg=*/true));
    }
  }
  return q;
}

// ---------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------

struct RowSet {
  // Column names are "alias.column".
  std::vector<std::string> cols;
  std::vector<std::vector<Value>> rows;
};

Result<int> ResolveCol(const RowSet& rs, const ColRef& ref) {
  const std::string want = ref.ToString();
  int found = -1;
  for (size_t i = 0; i < rs.cols.size(); ++i) {
    const std::string& name = rs.cols[i];
    const bool match =
        ref.table.empty()
            ? (name.size() > ref.column.size() &&
               name.compare(name.size() - ref.column.size(),
                            ref.column.size(), ref.column) == 0 &&
               name[name.size() - ref.column.size() - 1] == '.')
            : name == want;
    if (match) {
      if (found >= 0) {
        return Status::Invalid(
            StrFormat("SQL: ambiguous column '%s'", want.c_str()));
      }
      found = static_cast<int>(i);
    }
  }
  if (found < 0) {
    return Status::KeyError(StrFormat("SQL: no column '%s'", want.c_str()));
  }
  return found;
}

Result<RowSet> ScanTable(const Database& db, const std::string& table) {
  const Table* t = db.FindTable(table);
  if (t == nullptr) {
    return Status::KeyError(StrFormat("SQL: no table '%s'", table.c_str()));
  }
  RowSet rs;
  rs.cols.push_back(table + ".id");
  for (int c = 0; c < t->num_columns(); ++c) {
    rs.cols.push_back(table + "." + t->column(c).name());
  }
  t->ForEachLive([&](TupleId tid) {
    std::vector<Value> row;
    row.reserve(rs.cols.size());
    row.push_back(Value(static_cast<int64_t>(tid)));
    for (int c = 0; c < t->num_columns(); ++c) {
      row.push_back(t->column(c).Get(tid));
    }
    rs.rows.push_back(std::move(row));
  });
  return rs;
}

double NumericOf(const Value& v) {
  if (v.is_int64()) return static_cast<double>(v.int64());
  if (v.is_double()) return v.dbl();
  return 0.0;
}

bool CompareValues(const Value& a, const std::string& cmp, const Value& b) {
  if (a.is_string() || b.is_string()) {
    if (cmp == "=") return a == b;
    if (cmp == "!=") return a != b;
    return false;  // ordering strings vs numbers: unsupported
  }
  const double x = NumericOf(a);
  const double y = NumericOf(b);
  if (cmp == "=") return x == y;
  if (cmp == "!=") return x != y;
  if (cmp == "<") return x < y;
  if (cmp == "<=") return x <= y;
  if (cmp == ">") return x > y;
  return x >= y;
}

Result<bool> EvalWhere(const RowSet& rs, const std::vector<Value>& row,
                       const Condition& cond) {
  auto value_of = [&](const Operand& op) -> Result<Value> {
    if (op.kind == Operand::kNum) return Value(op.num);
    if (op.kind == Operand::kCol) {
      ASPECT_ASSIGN_OR_RETURN(const int i, ResolveCol(rs, op.col));
      return row[static_cast<size_t>(i)];
    }
    return Status::Invalid("SQL: aggregate outside HAVING");
  };
  ASPECT_ASSIGN_OR_RETURN(const Value lhs, value_of(cond.lhs));
  ASPECT_ASSIGN_OR_RETURN(const Value rhs, value_of(cond.rhs));
  return CompareValues(lhs, cond.cmp, rhs);
}

/// Computes one aggregate over a set of row indexes.
Result<double> ComputeAggregate(const RowSet& rs,
                                const std::vector<size_t>& rows,
                                const Aggregate& agg) {
  if (agg.kind == AggKind::kCountStar) {
    return static_cast<double>(rows.size());
  }
  ASPECT_ASSIGN_OR_RETURN(const int col, ResolveCol(rs, agg.col));
  switch (agg.kind) {
    case AggKind::kCountDistinct: {
      std::set<Value> seen;
      for (const size_t r : rows) {
        const Value& v = rs.rows[r][static_cast<size_t>(col)];
        if (!v.is_null()) seen.insert(v);
      }
      return static_cast<double>(seen.size());
    }
    case AggKind::kCount: {
      int64_t n = 0;
      for (const size_t r : rows) {
        n += !rs.rows[r][static_cast<size_t>(col)].is_null();
      }
      return static_cast<double>(n);
    }
    case AggKind::kSum:
    case AggKind::kAvg: {
      double sum = 0;
      int64_t n = 0;
      for (const size_t r : rows) {
        const Value& v = rs.rows[r][static_cast<size_t>(col)];
        if (v.is_null()) continue;
        sum += NumericOf(v);
        ++n;
      }
      if (agg.kind == AggKind::kSum) return sum;
      return n == 0 ? 0.0 : sum / static_cast<double>(n);
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      bool any = false;
      double best = 0;
      for (const size_t r : rows) {
        const Value& v = rs.rows[r][static_cast<size_t>(col)];
        if (v.is_null()) continue;
        const double x = NumericOf(v);
        if (!any || (agg.kind == AggKind::kMin ? x < best : x > best)) {
          best = x;
          any = true;
        }
      }
      return best;
    }
    case AggKind::kCountStar:
      break;
  }
  return Status::Internal("unreachable aggregate");
}

Result<RowSet> ExecuteRowSet(const Database& db, const Query& q);

Result<RowSet> ExecuteSource(const Database& db, const Query& q) {
  if (q.from_subquery != nullptr) {
    ASPECT_ASSIGN_OR_RETURN(RowSet rs, ExecuteRowSet(db, *q.from_subquery));
    if (!q.from_alias.empty()) {
      for (std::string& name : rs.cols) {
        const size_t dot = name.find('.');
        name = q.from_alias + "." + name.substr(dot + 1);
      }
    }
    return rs;
  }
  return ScanTable(db, q.from_table);
}

Result<RowSet> ExecuteJoinsAndWhere(const Database& db, const Query& q) {
  ASPECT_ASSIGN_OR_RETURN(RowSet rs, ExecuteSource(db, q));
  for (const Join& join : q.joins) {
    ASPECT_ASSIGN_OR_RETURN(RowSet right, ScanTable(db, join.table));
    // Decide which side of the ON clause lives where.
    ColRef left_ref = join.left;
    ColRef right_ref = join.right;
    if (!ResolveCol(rs, left_ref).ok()) std::swap(left_ref, right_ref);
    ASPECT_ASSIGN_OR_RETURN(const int li, ResolveCol(rs, left_ref));
    ASPECT_ASSIGN_OR_RETURN(const int ri, ResolveCol(right, right_ref));
    std::map<Value, std::vector<size_t>> hash;
    for (size_t r = 0; r < right.rows.size(); ++r) {
      const Value& v = right.rows[r][static_cast<size_t>(ri)];
      if (!v.is_null()) hash[v].push_back(r);
    }
    RowSet joined;
    joined.cols = rs.cols;
    joined.cols.insert(joined.cols.end(), right.cols.begin(),
                       right.cols.end());
    for (const auto& lrow : rs.rows) {
      const Value& v = lrow[static_cast<size_t>(li)];
      const auto it = hash.find(v);
      if (v.is_null() || it == hash.end()) continue;
      for (const size_t r : it->second) {
        std::vector<Value> row = lrow;
        row.insert(row.end(), right.rows[r].begin(), right.rows[r].end());
        joined.rows.push_back(std::move(row));
      }
    }
    rs = std::move(joined);
  }
  if (!q.where.empty()) {
    RowSet filtered;
    filtered.cols = rs.cols;
    for (const auto& row : rs.rows) {
      bool keep = true;
      for (const Condition& cond : q.where) {
        ASPECT_ASSIGN_OR_RETURN(const bool ok, EvalWhere(rs, row, cond));
        keep &= ok;
        if (!keep) break;
      }
      if (keep) filtered.rows.push_back(row);
    }
    rs = std::move(filtered);
  }
  return rs;
}

Result<RowSet> ExecuteRowSet(const Database& db, const Query& q) {
  ASPECT_ASSIGN_OR_RETURN(RowSet rs, ExecuteJoinsAndWhere(db, q));
  if (!q.has_group) {
    // Project the select list (aggregates become single-row output).
    bool any_agg = false;
    for (const SelectItem& item : q.select) any_agg |= item.is_agg;
    if (any_agg) {
      std::vector<size_t> all(rs.rows.size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = i;
      RowSet out;
      std::vector<Value> row;
      int agg_index = 0;
      for (const SelectItem& item : q.select) {
        if (!item.is_agg) {
          return Status::Invalid(
              "SQL: mixing columns and aggregates needs GROUP BY");
        }
        out.cols.push_back(
            "q." + (item.alias.empty()
                        ? "agg" + std::to_string(agg_index)
                        : item.alias));
        ++agg_index;
        ASPECT_ASSIGN_OR_RETURN(const double v,
                                ComputeAggregate(rs, all, item.agg));
        row.push_back(Value(v));
      }
      out.rows.push_back(std::move(row));
      return out;
    }
    // Plain projection.
    RowSet out;
    std::vector<int> idx;
    for (const SelectItem& item : q.select) {
      ASPECT_ASSIGN_OR_RETURN(const int i, ResolveCol(rs, item.col));
      idx.push_back(i);
      out.cols.push_back("q." + (item.alias.empty() ? item.col.column
                                                    : item.alias));
    }
    for (const auto& row : rs.rows) {
      std::vector<Value> projected;
      for (const int i : idx) projected.push_back(row[static_cast<size_t>(i)]);
      out.rows.push_back(std::move(projected));
    }
    return out;
  }

  // GROUP BY: bucket rows, evaluate HAVING, project the select list.
  ASPECT_ASSIGN_OR_RETURN(const int gi, ResolveCol(rs, q.group_col));
  std::map<Value, std::vector<size_t>> groups;
  for (size_t r = 0; r < rs.rows.size(); ++r) {
    groups[rs.rows[r][static_cast<size_t>(gi)]].push_back(r);
  }
  RowSet out;
  int agg_index = 0;
  for (const SelectItem& item : q.select) {
    std::string name;
    if (!item.alias.empty()) {
      name = item.alias;
    } else if (item.is_agg) {
      name = "agg" + std::to_string(agg_index);
    } else {
      name = item.col.column;
    }
    if (item.is_agg) ++agg_index;
    out.cols.push_back("q." + name);
  }
  for (const auto& [key, rows] : groups) {
    bool keep = true;
    for (const Condition& cond : q.having) {
      auto value_of = [&](const Operand& op) -> Result<double> {
        if (op.kind == Operand::kNum) return op.num;
        if (op.kind == Operand::kAgg) {
          return ComputeAggregate(rs, rows, op.agg);
        }
        ASPECT_ASSIGN_OR_RETURN(const int i, ResolveCol(rs, op.col));
        return NumericOf(rs.rows[rows.front()][static_cast<size_t>(i)]);
      };
      ASPECT_ASSIGN_OR_RETURN(const double lhs, value_of(cond.lhs));
      ASPECT_ASSIGN_OR_RETURN(const double rhs, value_of(cond.rhs));
      keep &= CompareValues(Value(lhs), cond.cmp, Value(rhs));
      if (!keep) break;
    }
    if (!keep) continue;
    std::vector<Value> row;
    for (const SelectItem& item : q.select) {
      if (item.is_agg) {
        ASPECT_ASSIGN_OR_RETURN(const double v,
                                ComputeAggregate(rs, rows, item.agg));
        row.push_back(Value(v));
      } else {
        ASPECT_ASSIGN_OR_RETURN(const int i, ResolveCol(rs, item.col));
        row.push_back(rs.rows[rows.front()][static_cast<size_t>(i)]);
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace

Result<double> ExecuteScalarQuery(const Database& db,
                                  const std::string& sql) {
  Lexer lex(sql);
  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Query> q, ParseQuery(&lex));
  if (lex.Peek().kind != Token::kEnd) {
    return Status::Invalid(StrFormat("SQL: trailing input near '%s'",
                                     lex.Peek().text.c_str()));
  }
  ASPECT_ASSIGN_OR_RETURN(RowSet rs, ExecuteRowSet(db, *q));
  if (rs.rows.size() != 1 || rs.rows[0].size() != 1) {
    return Status::Invalid(StrFormat(
        "SQL: scalar query produced %zu rows x %zu cols", rs.rows.size(),
        rs.rows.empty() ? 0 : rs.rows[0].size()));
  }
  return NumericOf(rs.rows[0][0]);
}

}  // namespace aspect
