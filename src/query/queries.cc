#include "query/queries.h"

#include <cmath>
#include <set>

#include "common/string_util.h"
#include "query/engine.h"

namespace aspect {
namespace {

const ResponseSpec* FindSpec(const Schema& schema,
                             const std::string& response_table) {
  for (const ResponseSpec& r : schema.responses) {
    if (r.response_table == response_table) return &r;
  }
  return nullptr;
}

/// COUNT(DISTINCT grandparent): child -> parent -> grandparent, where
/// the child table marks "parents with at least one child".
Result<double> CountGrandparentsWithRespondedChild(
    const Database& db, const std::string& child,
    const std::string& child_fk, const std::string& parent,
    const std::string& parent_fk) {
  const Table* c = db.FindTable(child);
  const Table* p = db.FindTable(parent);
  if (c == nullptr || p == nullptr) {
    return Status::KeyError("missing table for grandparent query");
  }
  const int cfk = c->ColumnIndex(child_fk);
  const int pfk = p->ColumnIndex(parent_fk);
  if (cfk < 0 || pfk < 0) {
    return Status::KeyError("missing column for grandparent query");
  }
  std::set<TupleId> parents;
  c->ForEachLive([&](TupleId t) {
    if (c->column(cfk).IsValue(t)) parents.insert(c->column(cfk).GetInt(t));
  });
  std::set<TupleId> grandparents;
  for (const TupleId pid : parents) {
    if (p->IsLive(pid) && p->column(pfk).IsValue(pid)) {
      grandparents.insert(p->column(pfk).GetInt(pid));
    }
  }
  return static_cast<double>(grandparents.size());
}

NamedQuery UsersWithRespondedPost(const Schema& schema,
                                  const std::string& response_table,
                                  const std::string& label) {
  const ResponseSpec* spec = FindSpec(schema, response_table);
  NamedQuery q;
  q.name = "Q1";
  q.description = label;
  q.eval = [spec](const Database& db) -> Result<double> {
    if (spec == nullptr) return Status::KeyError("no response spec");
    ASPECT_ASSIGN_OR_RETURN(int64_t n, CountUsersWithRespondedPost(db, *spec));
    return static_cast<double>(n);
  };
  return q;
}

NamedQuery AtMostKUsers(const std::string& activity,
                        const std::string& entity_col,
                        const std::string& user_col,
                        const std::string& label) {
  NamedQuery q;
  q.name = "Q2";
  q.description = label;
  q.eval = [=](const Database& db) -> Result<double> {
    ASPECT_ASSIGN_OR_RETURN(
        int64_t n,
        CountEntitiesWithAtMostKUsers(db, activity, entity_col, user_col, 10));
    return static_cast<double>(n);
  };
  return q;
}

NamedQuery AvgUsers(const std::string& entity_table,
                    const std::string& activity,
                    const std::string& entity_col,
                    const std::string& user_col,
                    const std::string& label) {
  NamedQuery q;
  q.name = "Q3";
  q.description = label;
  q.eval = [=](const Database& db) -> Result<double> {
    return AvgDistinctUsersPerEntity(db, entity_table, activity, entity_col,
                                     user_col);
  };
  return q;
}

NamedQuery InteractingPairs(const Schema& schema,
                            const std::string& response_table,
                            const std::string& label) {
  const ResponseSpec* spec = FindSpec(schema, response_table);
  NamedQuery q;
  q.name = "Q4";
  q.description = label;
  q.eval = [spec](const Database& db) -> Result<double> {
    if (spec == nullptr) return Status::KeyError("no response spec");
    ASPECT_ASSIGN_OR_RETURN(int64_t n, CountInteractingUserPairs(db, *spec));
    return static_cast<double>(n);
  };
  return q;
}

}  // namespace

Result<std::vector<NamedQuery>> QuerySuiteFor(const Schema& schema) {
  std::vector<NamedQuery> out;
  if (schema.name == "XiamiLike") {
    out.push_back(UsersWithRespondedPost(
        schema, "Photo_Comment", "users who uploaded a photo with commenters"));
    out.push_back(AtMostKUsers("MV_Comment", "fk_MV_0", "fk_User_1",
                               "MVs commented on by at most 10 users"));
    out.push_back(AvgUsers("Song", "Listen_Song", "fk_Song_0", "fk_User_1",
                           "average listeners per song"));
    out.push_back(InteractingPairs(
        schema, "Space_Comment", "user pairs interacting via profile page"));
    return out;
  }
  if (schema.name == "DoubanMovieLike") {
    NamedQuery q1;
    q1.name = "Q1";
    q1.description = "movies with video clips that have commenters";
    q1.eval = [](const Database& db) {
      return CountGrandparentsWithRespondedChild(
          db, "Trailer_Comment", "fk_Trailer_0", "Trailer", "fk_Movie_0");
    };
    out.push_back(std::move(q1));
    out.push_back(AtMostKUsers("Movie_Comment", "fk_Movie_0", "fk_User_1",
                               "movies commented on by at most 10 users"));
    out.push_back(AvgUsers("Movie", "Movie_Actor", "fk_Movie_1", "fk_Star_0",
                           "average stars per movie"));
    out.push_back(InteractingPairs(schema, "Review_Comment",
                                   "user pairs interacting via reviews"));
    return out;
  }
  if (schema.name == "DoubanMusicLike") {
    out.push_back(UsersWithRespondedPost(
        schema, "Review_Comment", "users with a review that has commenters"));
    out.push_back(AtMostKUsers("Artist_Fan", "fk_Artist_0", "fk_User_1",
                               "artists with at most 10 fans"));
    out.push_back(AvgUsers("Album", "Album_Wish", "fk_Album_0", "fk_User_1",
                           "average interested listeners per album"));
    out.push_back(InteractingPairs(schema, "Review_Comment",
                                   "user pairs interacting via reviews"));
    return out;
  }
  if (schema.name == "DoubanBookLike") {
    out.push_back(UsersWithRespondedPost(
        schema, "Review_Comment", "users with a book review that has "
                                  "commenters"));
    out.push_back(AtMostKUsers("Diary_Comment", "fk_Diary_0", "fk_User_1",
                               "diaries with at most 10 commenters"));
    out.push_back(AtMostKUsers("User_Fan", "fk_User_1", "fk_User_0",
                               "users with at most 10 fans"));
    out.back().name = "Q3";
    out.back().description = "users with at most 10 fans";
    out.push_back(InteractingPairs(schema, "Review_Comment",
                                   "user pairs interacting via reviews"));
    return out;
  }
  if (schema.name == "RetailLike") {
    NamedQuery q1;
    q1.name = "Q1";
    q1.description = "customers with an order that has lineitems";
    q1.eval = [](const Database& db) {
      return CountGrandparentsWithRespondedChild(
          db, "Lineitem", "fk_Orders_0", "Orders", "fk_Customer_0");
    };
    out.push_back(std::move(q1));
    out.push_back(AtMostKUsers("Lineitem", "fk_Orders_0", "fk_Part_1",
                               "orders with at most 10 distinct parts"));
    out.push_back(AvgUsers("Part", "Lineitem", "fk_Part_1", "fk_Orders_0",
                           "average distinct orders per part"));
    out.push_back(AtMostKUsers("PartSupp", "fk_Part_0", "fk_Supplier_1",
                               "parts with at most 10 suppliers"));
    out.back().name = "Q4";
    return out;
  }
  return Status::Invalid(
      StrFormat("no query suite for schema '%s'", schema.name.c_str()));
}

Result<double> QueryError(const NamedQuery& q, const Database& truth,
                          const Database& scaled) {
  ASPECT_ASSIGN_OR_RETURN(const double qt, q.eval(truth));
  ASPECT_ASSIGN_OR_RETURN(const double qs, q.eval(scaled));
  if (qt == 0.0) return std::fabs(qs - qt);
  return std::fabs(qs - qt) / std::fabs(qt);
}

}  // namespace aspect
