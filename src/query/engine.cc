#include "query/engine.h"

#include <algorithm>

#include "common/string_util.h"

namespace aspect {
namespace {

struct ColRef {
  const Table* table;
  int col;
};

Result<ColRef> Resolve(const Database& db, const std::string& table,
                       const std::string& col) {
  const Table* t = db.FindTable(table);
  if (t == nullptr) {
    return Status::KeyError(StrFormat("no table '%s'", table.c_str()));
  }
  const int c = t->ColumnIndex(col);
  if (c < 0) {
    return Status::KeyError(
        StrFormat("no column '%s.%s'", table.c_str(), col.c_str()));
  }
  return ColRef{t, c};
}

}  // namespace

Result<int64_t> CountDistinctFk(const Database& db,
                                const std::string& table,
                                const std::string& fk_col) {
  ASPECT_ASSIGN_OR_RETURN(ColRef ref, Resolve(db, table, fk_col));
  std::set<int64_t> seen;
  ref.table->ForEachLive([&](TupleId t) {
    if (ref.table->column(ref.col).IsValue(t)) {
      seen.insert(ref.table->column(ref.col).GetInt(t));
    }
  });
  return static_cast<int64_t>(seen.size());
}

Result<std::map<TupleId, int64_t>> FanOut(const Database& db,
                                          const std::string& table,
                                          const std::string& fk_col) {
  ASPECT_ASSIGN_OR_RETURN(ColRef ref, Resolve(db, table, fk_col));
  std::map<TupleId, int64_t> counts;
  ref.table->ForEachLive([&](TupleId t) {
    if (ref.table->column(ref.col).IsValue(t)) {
      ++counts[ref.table->column(ref.col).GetInt(t)];
    }
  });
  return counts;
}

Result<std::map<TupleId, int64_t>> DistinctPerGroup(
    const Database& db, const std::string& table,
    const std::string& group_col, const std::string& distinct_col) {
  ASPECT_ASSIGN_OR_RETURN(ColRef group, Resolve(db, table, group_col));
  ASPECT_ASSIGN_OR_RETURN(ColRef dist, Resolve(db, table, distinct_col));
  std::map<TupleId, std::set<int64_t>> sets;
  group.table->ForEachLive([&](TupleId t) {
    if (group.table->column(group.col).IsValue(t) &&
        dist.table->column(dist.col).IsValue(t)) {
      sets[group.table->column(group.col).GetInt(t)].insert(
          dist.table->column(dist.col).GetInt(t));
    }
  });
  std::map<TupleId, int64_t> out;
  for (const auto& [g, s] : sets) out[g] = static_cast<int64_t>(s.size());
  return out;
}

Result<int64_t> CountUsersWithRespondedPost(const Database& db,
                                            const ResponseSpec& spec) {
  const Table* resp = db.FindTable(spec.response_table);
  const Table* post = db.FindTable(spec.post_table);
  if (resp == nullptr || post == nullptr) {
    return Status::KeyError("response/post table missing");
  }
  std::set<TupleId> responded_posts;
  resp->ForEachLive([&](TupleId t) {
    if (resp->column(spec.post_col).IsValue(t)) {
      responded_posts.insert(resp->column(spec.post_col).GetInt(t));
    }
  });
  std::set<TupleId> users;
  for (const TupleId p : responded_posts) {
    if (post->IsLive(p) && post->column(spec.author_col).IsValue(p)) {
      users.insert(post->column(spec.author_col).GetInt(p));
    }
  }
  return static_cast<int64_t>(users.size());
}

Result<int64_t> CountEntitiesWithAtMostKUsers(const Database& db,
                                              const std::string& activity,
                                              const std::string& entity_col,
                                              const std::string& user_col,
                                              int64_t k) {
  auto counts_res = DistinctPerGroup(db, activity, entity_col, user_col);
  if (!counts_res.ok()) return counts_res.status();
  const auto& counts = counts_res.ValueOrDie();
  int64_t n = 0;
  for (const auto& [entity, distinct_users] : counts) {
    if (distinct_users >= 1 && distinct_users <= k) ++n;
  }
  return n;
}

Result<double> AvgDistinctUsersPerEntity(const Database& db,
                                         const std::string& entity_table,
                                         const std::string& activity,
                                         const std::string& entity_col,
                                         const std::string& user_col) {
  const Table* entities = db.FindTable(entity_table);
  if (entities == nullptr) {
    return Status::KeyError("no table " + entity_table);
  }
  auto counts_res = DistinctPerGroup(db, activity, entity_col, user_col);
  if (!counts_res.ok()) return counts_res.status();
  const auto& counts = counts_res.ValueOrDie();
  if (entities->NumTuples() == 0) return 0.0;
  double total = 0;
  for (const auto& [entity, distinct_users] : counts) {
    total += static_cast<double>(distinct_users);
  }
  return total / static_cast<double>(entities->NumTuples());
}

Result<int64_t> CountInteractingUserPairs(const Database& db,
                                          const ResponseSpec& spec) {
  const Table* resp = db.FindTable(spec.response_table);
  const Table* post = db.FindTable(spec.post_table);
  if (resp == nullptr || post == nullptr) {
    return Status::KeyError("response/post table missing");
  }
  std::set<std::pair<TupleId, TupleId>> pairs;
  resp->ForEachLive([&](TupleId t) {
    if (!resp->column(spec.responder_col).IsValue(t) ||
        !resp->column(spec.post_col).IsValue(t)) {
      return;
    }
    const TupleId u = resp->column(spec.responder_col).GetInt(t);
    const TupleId p = resp->column(spec.post_col).GetInt(t);
    if (!post->IsLive(p) || !post->column(spec.author_col).IsValue(p)) {
      return;
    }
    const TupleId v = post->column(spec.author_col).GetInt(p);
    if (u == v) return;
    pairs.insert({std::min(u, v), std::max(u, v)});
  });
  return static_cast<int64_t>(pairs.size());
}

}  // namespace aspect
