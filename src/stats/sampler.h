// Nested FK-consistent sampling, standing in for the VDFS sampling the
// paper defaults to in the Target Generator (Sec. III-C): when the
// dataset has no time attribute, ASPECT samples sub-datasets
// D1 < D2 < ... < Dr of increasing size and extrapolates property
// statistics across them.
//
// Each tuple draws a level u in [0,1), lifted to at least the maximum
// level of its FK parents; sample i keeps every tuple with
// u < fractions[i]. This makes the samples nested and FK-closed by
// construction (a kept child's parents are always kept).
#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/sharding.h"
#include "relational/database.h"

namespace aspect {

/// Produces nested samples of `db`, one per entry of `fractions`
/// (values in (0, 1], need not be sorted; each output i keeps roughly
/// fractions[i] of each root table). Tuple ids are re-densified, FK
/// values remapped. Level draws and row materialization shard across
/// `gen.threads` workers with per-shard RNG streams (DESIGN.md §12);
/// the produced samples are bitwise identical at every thread count.
Result<std::vector<std::unique_ptr<Database>>> NestedSamples(
    const Database& db, const std::vector<double>& fractions,
    uint64_t seed, const GenOptions& gen = {});

}  // namespace aspect
