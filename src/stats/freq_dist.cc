#include "stats/freq_dist.h"

#include <cassert>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

namespace aspect {

void FrequencyDistribution::Add(const Key& key, int64_t delta) {
  assert(static_cast<int>(key.size()) == dim_);
  if (delta == 0) return;
  auto [it, inserted] = counts_.try_emplace(key, 0);
  it->second += delta;
  if (it->second == 0) counts_.erase(it);
}

int64_t FrequencyDistribution::Count(const Key& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

int64_t FrequencyDistribution::TotalMass() const {
  int64_t total = 0;
  for (const auto& [k, c] : counts_) total += c;
  return total;
}

int64_t FrequencyDistribution::TotalAbsMass() const {
  int64_t total = 0;
  for (const auto& [k, c] : counts_) total += std::llabs(c);
  return total;
}

int64_t FrequencyDistribution::WeightedSum(int d) const {
  assert(d >= 0 && d < dim_);
  int64_t total = 0;
  for (const auto& [k, c] : counts_) {
    total += k[static_cast<size_t>(d)] * c;
  }
  return total;
}

int64_t FrequencyDistribution::L1Distance(
    const FrequencyDistribution& other) const {
  assert(dim_ == other.dim_);
  int64_t total = 0;
  auto a = counts_.begin();
  auto b = other.counts_.begin();
  while (a != counts_.end() || b != other.counts_.end()) {
    if (b == other.counts_.end() ||
        (a != counts_.end() && a->first < b->first)) {
      total += std::llabs(a->second);
      ++a;
    } else if (a == counts_.end() || b->first < a->first) {
      total += std::llabs(b->second);
      ++b;
    } else {
      total += std::llabs(a->second - b->second);
      ++a;
      ++b;
    }
  }
  return total;
}

FrequencyDistribution FrequencyDistribution::Difference(
    const FrequencyDistribution& other) const {
  assert(dim_ == other.dim_);
  FrequencyDistribution out(dim_);
  out.counts_ = counts_;
  for (const auto& [k, c] : other.counts_) out.Add(k, -c);
  return out;
}

std::string FrequencyDistribution::ToString(int64_t max_entries) const {
  std::ostringstream os;
  os << "{";
  int64_t shown = 0;
  for (const auto& [k, c] : counts_) {
    if (shown++ == max_entries) {
      os << " ...";
      break;
    }
    if (shown > 1) os << ", ";
    os << "(";
    for (size_t i = 0; i < k.size(); ++i) {
      if (i > 0) os << ",";
      os << k[i];
    }
    os << "):" << c;
  }
  os << "}";
  return os.str();
}

void FrequencyDistribution::Write(std::ostream* out) const {
  *out << "dist " << dim_ << " " << counts_.size() << "\n";
  for (const auto& [k, c] : counts_) {
    for (const int64_t v : k) *out << v << " ";
    *out << c << "\n";
  }
}

Result<FrequencyDistribution> FrequencyDistribution::Read(std::istream* in) {
  std::string tag;
  int dim = 0;
  int64_t entries = 0;
  if (!(*in >> tag >> dim >> entries) || tag != "dist" || dim < 1 ||
      entries < 0) {
    return Status::IoError("bad distribution header");
  }
  FrequencyDistribution out(dim);
  for (int64_t e = 0; e < entries; ++e) {
    Key key(static_cast<size_t>(dim));
    for (int64_t& v : key) {
      if (!(*in >> v)) return Status::IoError("truncated distribution");
    }
    int64_t count = 0;
    if (!(*in >> count)) return Status::IoError("truncated distribution");
    out.Add(key, count);
  }
  return out;
}

int64_t ManhattanDistance(const FrequencyDistribution::Key& a,
                          const FrequencyDistribution::Key& b) {
  assert(a.size() == b.size());
  int64_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) total += std::llabs(a[i] - b[i]);
  return total;
}

}  // namespace aspect
