// FrequencyDistribution: a sparse frequency distribution over integer
// vectors. This is the common representation of the paper's property
// statistics:
//   - the coappear distribution xi(v1..vk)   (Definition 4),
//   - the pairwise distribution rho(x, y)    (Definition 5),
//   - single-column frequency distributions  (Theorems 6-8).
//
// Keys are vectors of int64 of a fixed dimension; values are signed
// counts (signed so tools can form difference distributions like
// xi* = xi - xi~). Entries reaching zero are erased, so iteration only
// visits non-zero keys. Iteration order is deterministic
// (lexicographic), which keeps every randomized experiment reproducible.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace aspect {

class FrequencyDistribution {
 public:
  using Key = std::vector<int64_t>;
  using Map = std::map<Key, int64_t>;

  /// Creates a distribution over keys of the given dimension.
  explicit FrequencyDistribution(int dim = 1) : dim_(dim) {}

  int dim() const { return dim_; }

  /// Adds `delta` to the count of `key` (erasing the entry at zero).
  void Add(const Key& key, int64_t delta = 1);

  /// Count of `key` (0 when absent).
  int64_t Count(const Key& key) const;

  /// Number of distinct non-zero keys.
  int64_t NumKeys() const { return static_cast<int64_t>(counts_.size()); }

  /// Sum of counts over all stored keys.
  int64_t TotalMass() const;

  /// Sum of |count| over all stored keys.
  int64_t TotalAbsMass() const;

  /// Weighted sum over dimension d: sum_v v[d] * f(v).
  int64_t WeightedSum(int d) const;

  /// L1 distance: sum_v |f(v) - g(v)|. Dimensions must match.
  int64_t L1Distance(const FrequencyDistribution& other) const;

  /// this - other, key-wise.
  FrequencyDistribution Difference(const FrequencyDistribution& other) const;

  /// Reads the underlying map (non-zero entries only).
  const Map& counts() const { return counts_; }

  void Clear() { counts_.clear(); }

  bool operator==(const FrequencyDistribution& other) const {
    return dim_ == other.dim_ && counts_ == other.counts_;
  }

  /// "{(v1,..,vk): n, ...}" for debugging; large distributions truncate.
  std::string ToString(int64_t max_entries = 16) const;

  /// Serializes as lines "v1 v2 ... vk count" preceded by a header
  /// "dist <dim> <entries>"; Read parses the same format.
  void Write(std::ostream* out) const;
  static Result<FrequencyDistribution> Read(std::istream* in);

 private:
  int dim_;
  Map counts_;
};

/// Manhattan (L1) distance between two keys of equal dimension.
int64_t ManhattanDistance(const FrequencyDistribution::Key& a,
                          const FrequencyDistribution::Key& b);

}  // namespace aspect
