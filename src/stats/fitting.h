// Curve fitting for the Target Generator's statistical-extrapolation
// mode (Sec. III-C): statistics of snapshots D1..Dr are fitted against
// snapshot size and extrapolated to the target size.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace aspect {

/// Least-squares polynomial fit of degree `degree` through the points
/// (xs[i], ys[i]). Returns coefficients c0..c_degree (lowest first).
/// Fails if there are fewer points than coefficients or the normal
/// equations are singular.
Result<std::vector<double>> PolyFit(const std::vector<double>& xs,
                                    const std::vector<double>& ys,
                                    int degree);

/// Evaluates a polynomial (coefficients lowest-degree first) at x.
double PolyEval(const std::vector<double>& coeffs, double x);

/// Maximum-likelihood Poisson mean of the samples (the sample mean).
double PoissonMle(const std::vector<int64_t>& samples);

/// Fits log(y) = log(a) + b*log(x), returning {a, b}; ignores
/// non-positive points. Fails with fewer than two usable points.
Result<std::vector<double>> PowerLawFit(const std::vector<double>& xs,
                                        const std::vector<double>& ys);

}  // namespace aspect
