#include "stats/sampler.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"
#include "relational/refgraph.h"

namespace aspect {

Result<std::vector<std::unique_ptr<Database>>> NestedSamples(
    const Database& db, const std::vector<double>& fractions,
    uint64_t seed) {
  for (const double f : fractions) {
    if (f <= 0 || f > 1) {
      return Status::Invalid(StrFormat("bad sample fraction %f", f));
    }
  }
  ReferenceGraph graph(db.schema());
  if (!graph.IsAcyclic()) {
    return Status::Invalid("sampling requires an acyclic FK graph");
  }
  // Topological order, parents first (Kahn on the reversed FK edges).
  const int n = db.num_tables();
  std::vector<int> out_degree(static_cast<size_t>(n), 0);
  for (int t = 0; t < n; ++t) {
    out_degree[static_cast<size_t>(t)] =
        static_cast<int>(graph.OutEdges(t).size());
  }
  std::vector<int> order;
  std::vector<int> ready;
  for (int t = 0; t < n; ++t) {
    if (out_degree[static_cast<size_t>(t)] == 0) ready.push_back(t);
  }
  while (!ready.empty()) {
    const int t = ready.back();
    ready.pop_back();
    order.push_back(t);
    for (const FkEdge& e : graph.InEdges(t)) {
      if (--out_degree[static_cast<size_t>(e.child_table)] == 0) {
        ready.push_back(e.child_table);
      }
    }
  }

  // Per-table per-tuple level (keyed by slot id; dead slots unused).
  Rng rng(seed);
  std::vector<std::vector<double>> level(static_cast<size_t>(n));
  for (const int ti : order) {
    const Table& t = db.table(ti);
    auto& lv = level[static_cast<size_t>(ti)];
    lv.assign(static_cast<size_t>(t.NumSlots()), 2.0);  // 2.0 = excluded
    t.ForEachLive([&](TupleId tid) {
      double u = rng.UniformDouble();
      for (int ci = 0; ci < t.num_columns(); ++ci) {
        const Column& col = t.column(ci);
        if (!col.is_foreign_key() || !col.IsValue(tid)) continue;
        const int pi = db.schema().TableIndex(col.ref_table());
        u = std::max(u, level[static_cast<size_t>(pi)]
                            [static_cast<size_t>(col.GetInt(tid))]);
      }
      lv[static_cast<size_t>(tid)] = u;
    });
  }

  std::vector<std::unique_ptr<Database>> samples;
  for (const double cut : fractions) {
    ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> sample,
                            Database::Create(db.schema()));
    // Id remap per table, filled parents-first.
    std::vector<std::vector<TupleId>> remap(static_cast<size_t>(n));
    for (const int ti : order) {
      const Table& src = db.table(ti);
      Table* dst = sample->FindTable(src.name());
      auto& rm = remap[static_cast<size_t>(ti)];
      rm.assign(static_cast<size_t>(src.NumSlots()), kInvalidTuple);
      Status failure = Status::OK();
      src.ForEachLive([&](TupleId tid) {
        if (!failure.ok()) return;
        if (level[static_cast<size_t>(ti)][static_cast<size_t>(tid)] >=
            cut) {
          return;
        }
        std::vector<Value> row = src.GetRow(tid);
        for (int ci = 0; ci < src.num_columns(); ++ci) {
          const Column& col = src.column(ci);
          if (!col.is_foreign_key() || row[static_cast<size_t>(ci)].is_null()) {
            continue;
          }
          const int pi = db.schema().TableIndex(col.ref_table());
          const TupleId mapped =
              remap[static_cast<size_t>(pi)]
                   [static_cast<size_t>(row[static_cast<size_t>(ci)].int64())];
          row[static_cast<size_t>(ci)] = Value(static_cast<int64_t>(mapped));
        }
        auto appended = dst->Append(row);
        if (!appended.ok()) {
          failure = appended.status();
          return;
        }
        rm[static_cast<size_t>(tid)] = appended.ValueOrDie();
      });
      ASPECT_RETURN_NOT_OK(failure);
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace aspect
