#include "stats/sampler.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "relational/refgraph.h"
#include "relational/rowgen.h"

namespace aspect {

Result<std::vector<std::unique_ptr<Database>>> NestedSamples(
    const Database& db, const std::vector<double>& fractions,
    uint64_t seed, const GenOptions& gen) {
  for (const double f : fractions) {
    if (f <= 0 || f > 1) {
      return Status::Invalid(StrFormat("bad sample fraction %f", f));
    }
  }
  ReferenceGraph graph(db.schema());
  if (!graph.IsAcyclic()) {
    return Status::Invalid("sampling requires an acyclic FK graph");
  }
  // Topological order, parents first (Kahn on the reversed FK edges).
  const int n = db.num_tables();
  std::vector<int> out_degree(static_cast<size_t>(n), 0);
  for (int t = 0; t < n; ++t) {
    out_degree[static_cast<size_t>(t)] =
        static_cast<int>(graph.OutEdges(t).size());
  }
  std::vector<int> order;
  std::vector<int> ready;
  for (int t = 0; t < n; ++t) {
    if (out_degree[static_cast<size_t>(t)] == 0) ready.push_back(t);
  }
  while (!ready.empty()) {
    const int t = ready.back();
    ready.pop_back();
    order.push_back(t);
    for (const FkEdge& e : graph.InEdges(t)) {
      if (--out_degree[static_cast<size_t>(e.child_table)] == 0) {
        ready.push_back(e.child_table);
      }
    }
  }

  const int threads = ResolveGenThreads(gen.threads);
  ThreadPool* pool =
      threads > 1 ? ThreadPool::Shared(threads) : nullptr;
  const Rng root(seed);

  // Per-table per-tuple level (keyed by slot id; dead slots unused).
  // Each table's slot range shards with per-shard streams: a shard's
  // draws depend only on its own slots' liveness, and lifting reads
  // parent levels that are complete by topological order, so shards
  // write disjoint lv ranges with no coordination.
  std::vector<std::vector<double>> level(static_cast<size_t>(n));
  for (const int ti : order) {
    const Table& t = db.table(ti);
    auto& lv = level[static_cast<size_t>(ti)];
    lv.assign(static_cast<size_t>(t.NumSlots()), 2.0);  // 2.0 = excluded
    const Rng table_stream = root.Fork(static_cast<uint64_t>(ti));
    const std::vector<RowShard> shards = PartitionRows(t.NumSlots());
    RunShards(shards, pool, [&](const RowShard& shard) {
      Rng rng = table_stream.Fork(shard.index);
      for (int64_t tid = shard.begin; tid < shard.end; ++tid) {
        if (!t.IsLive(tid)) continue;
        double u = rng.UniformDouble();
        for (int ci = 0; ci < t.num_columns(); ++ci) {
          const Column& col = t.column(ci);
          if (!col.is_foreign_key() || !col.IsValue(tid)) continue;
          const int pi = db.schema().TableIndex(col.ref_table());
          u = std::max(u, level[static_cast<size_t>(pi)]
                              [static_cast<size_t>(col.GetInt(tid))]);
        }
        lv[static_cast<size_t>(tid)] = u;
      }
    });
  }

  std::vector<std::unique_ptr<Database>> samples;
  const Rng unused(0);  // materialization draws nothing
  for (const double cut : fractions) {
    ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> sample,
                            Database::Create(db.schema()));
    // Id remap per table, filled parents-first. The kept list and the
    // remap are known before any row is built (kept tuple i gets id i
    // in an empty destination table), so the rows shard freely.
    std::vector<std::vector<TupleId>> remap(static_cast<size_t>(n));
    for (const int ti : order) {
      const Table& src = db.table(ti);
      Table* dst = sample->FindTable(src.name());
      auto& rm = remap[static_cast<size_t>(ti)];
      rm.assign(static_cast<size_t>(src.NumSlots()), kInvalidTuple);
      std::vector<TupleId> kept;
      src.ForEachLive([&](TupleId tid) {
        if (level[static_cast<size_t>(ti)][static_cast<size_t>(tid)] >=
            cut) {
          return;
        }
        rm[static_cast<size_t>(tid)] =
            static_cast<TupleId>(kept.size());
        kept.push_back(tid);
      });
      ASPECT_RETURN_NOT_OK(GenerateRowsSharded(
          dst, static_cast<int64_t>(kept.size()), unused, pool,
          [&](int64_t i, Rng* /*rng*/, std::vector<Value>* row_out) {
            const TupleId tid = kept[static_cast<size_t>(i)];
            std::vector<Value> row = src.GetRow(tid);
            for (int ci = 0; ci < src.num_columns(); ++ci) {
              const Column& col = src.column(ci);
              if (!col.is_foreign_key() ||
                  row[static_cast<size_t>(ci)].is_null()) {
                continue;
              }
              const int pi = db.schema().TableIndex(col.ref_table());
              const TupleId mapped =
                  remap[static_cast<size_t>(pi)][static_cast<size_t>(
                      row[static_cast<size_t>(ci)].int64())];
              row[static_cast<size_t>(ci)] =
                  Value(static_cast<int64_t>(mapped));
            }
            *row_out = std::move(row);
            return Status::OK();
          }));
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace aspect
