#include "stats/fitting.h"

#include <cmath>

namespace aspect {
namespace {

/// Solves the dense linear system A x = b by Gaussian elimination with
/// partial pivoting. A is row-major n x n.
Result<std::vector<double>> SolveLinear(std::vector<double> a,
                                        std::vector<double> b) {
  const size_t n = b.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) {
        pivot = r;
      }
    }
    if (std::fabs(a[pivot * n + col]) < 1e-12) {
      return Status::Invalid("singular system in least-squares fit");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a[pivot * n + c], a[col * n + c]);
      std::swap(b[pivot], b[col]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / a[col * n + col];
      for (size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= a[ri * n + c] * x[c];
    x[ri] = acc / a[ri * n + ri];
  }
  return x;
}

}  // namespace

Result<std::vector<double>> PolyFit(const std::vector<double>& xs,
                                    const std::vector<double>& ys,
                                    int degree) {
  if (degree < 0) return Status::Invalid("negative degree");
  const size_t m = static_cast<size_t>(degree) + 1;
  if (xs.size() != ys.size() || xs.size() < m) {
    return Status::Invalid("not enough points for polynomial fit");
  }
  // Normal equations: (V^T V) c = V^T y with Vandermonde V.
  std::vector<double> ata(m * m, 0.0);
  std::vector<double> aty(m, 0.0);
  for (size_t i = 0; i < xs.size(); ++i) {
    std::vector<double> powers(2 * m - 1, 1.0);
    for (size_t p = 1; p < powers.size(); ++p) {
      powers[p] = powers[p - 1] * xs[i];
    }
    for (size_t r = 0; r < m; ++r) {
      for (size_t c = 0; c < m; ++c) ata[r * m + c] += powers[r + c];
      aty[r] += powers[r] * ys[i];
    }
  }
  return SolveLinear(std::move(ata), std::move(aty));
}

double PolyEval(const std::vector<double>& coeffs, double x) {
  double acc = 0.0;
  for (size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

double PoissonMle(const std::vector<int64_t>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const int64_t s : samples) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples.size());
}

Result<std::vector<double>> PowerLawFit(const std::vector<double>& xs,
                                        const std::vector<double>& ys) {
  std::vector<double> lx, ly;
  for (size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if (xs[i] > 0 && ys[i] > 0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  ASPECT_ASSIGN_OR_RETURN(std::vector<double> line, PolyFit(lx, ly, 1));
  return std::vector<double>{std::exp(line[0]), line[1]};
}

}  // namespace aspect
