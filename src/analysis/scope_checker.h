// ScopeChecker: the runtime half of the scope-conformance analyzer
// (DESIGN.md Sec. 9). Every fast path of the coordinator — parallel
// grouping, zero-vote validator pruning, rebind skipping — trusts each
// tool's self-declared AccessScope. The coordinator's write-side scope
// guard already verifies writes; this checker closes the read side:
// a FootprintRecorder (an AccessProbeSink) captures the full observed
// read+write footprint of each Tweak, and CheckStep diffs it against
// DeclaredScope(). Undeclared reads are the dangerous invisible class:
// they silently produce stale rebind decisions and wrong parallel
// groupings without ever corrupting a cell themselves.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/access_scope.h"
#include "analysis/probe.h"
#include "analysis/row_intervals.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aspect::analysis {

/// What to do with observed scope violations.
enum class ScopeCheckMode : int {
  kOff = 0,     ///< no full probes; release builds still run the
                ///< sampled lease canary on parallel tasks
  kWarn = 1,    ///< record + log violations, keep running
  kStrict = 2,  ///< record + log, and fail the run that saw any
  /// No footprint recording or conformance diffing — only the cheap
  /// sampled lease canary on parallel tasks (the release-build default
  /// behaviour, selectable explicitly so debug builds and CI can
  /// exercise exactly that path).
  kSampled = 3,
};

/// Parses "off" / "warn" / "strict" / "sampled" (--check-scopes=).
bool ParseScopeCheckMode(const std::string& text, ScopeCheckMode* mode);
const char* ScopeCheckModeToString(ScopeCheckMode mode);

/// One observed departure from a declared scope.
struct ScopeViolation {
  enum class Kind : int {
    /// The tool read an atom its declared read set does not cover.
    kUndeclaredRead = 0,
    /// The tool wrote an atom its declared write set does not cover.
    kUndeclaredWrite = 1,
    /// Two members of one parallel group had overlapping observed
    /// footprints (one's writes disturb the other's reads) — the
    /// grouping's independence proof was built on false declarations.
    kGroupOverlap = 2,
  };

  Kind kind = Kind::kUndeclaredRead;
  int tool = -1;
  std::string tool_name;
  /// kGroupOverlap only: the disturbed co-member.
  int other_tool = -1;
  std::string other_tool_name;
  int table = -1;
  /// Column index, or AccessScope::kWholeTable / kRowStructure.
  int column = -1;
  /// For a row-range violation (the atom itself was declared but the
  /// observed rows left its declared interval): one offending tuple
  /// id. -1 when the violation is atom-level or not row-attributable.
  int64_t row = -1;
  /// First pass (0-based iteration of Coordinator::Run) that observed
  /// this violation.
  int first_pass = 0;

  std::string ToString() const;
};

/// Per-tool conformance summary after a checked run.
enum class Conformance : int {
  /// The declaration cannot be certified: unknown, or its read set is
  /// a lower bound (reads_complete == false). Never conformant —
  /// observed (write-only) scopes land here by construction.
  kNotCertifiable = 0,
  kConformant = 1,
  kViolating = 2,
};

/// Dense per-thread footprint recorder. Probes fire per cell access on
/// hot scan loops, so the atom-level record stays O(1) and
/// allocation-free: one byte per (table, column-slot) with bit 0 =
/// read, bit 1 = write, and bits 2 / 3 marking a read / write that was
/// not row-attributable (kProbeAllRows). Column slots fold the
/// sentinels in: kRowStructure -> 0, kWholeTable -> 1, column c ->
/// c + 2. Row-attributed cell accesses additionally land in a
/// compressed RowIntervalSet per (table, column): scans touch rows in
/// order, so the interval append is the O(1) tail fast path and the
/// map lookup amortises over a handful of touched atoms.
class FootprintRecorder : public AccessProbeSink {
 public:
  /// `columns_per_table[t]` = number of columns of table t.
  explicit FootprintRecorder(const std::vector<int>& columns_per_table);

  void OnRead(int table, int column, int64_t row = kProbeAllRows) override;
  void OnWrite(int table, int column, int64_t row = kProbeAllRows) override;

  /// Resets all bits and intervals (shape is kept).
  void Clear();

  bool Empty() const;
  /// The recorded footprint as coarse scope atoms.
  std::set<AccessScope::Atom> ReadAtoms() const;
  std::set<AccessScope::Atom> WriteAtoms() const;

  /// The row-attributed rows read / written at a cell atom, or nullptr
  /// when none were recorded. Meaningful only alongside the all-rows
  /// flags below: an atom with the flag set was also touched without
  /// row attribution, so its interval set is a lower bound.
  const RowIntervalSet* ReadRows(int table, int column) const;
  const RowIntervalSet* WriteRows(int table, int column) const;
  /// True when the atom saw a read / write with no row attribution.
  bool ReadAllRows(int table, int column) const;
  bool WriteAllRows(int table, int column) const;

 private:
  static size_t Slot(int column) { return static_cast<size_t>(column + 2); }
  std::vector<std::vector<unsigned char>> bits_;
  /// Keyed by (table, column), cell atoms only (column >= 0).
  std::map<AccessScope::Atom, RowIntervalSet> read_rows_;
  std::map<AccessScope::Atom, RowIntervalSet> write_rows_;
};

/// Accumulates violations across a run. The coordinator owns one per
/// checked Run; tests may drive it directly. Thread-safe: all mutable
/// state is guarded by mu_ (enforced by -Wthread-safety), so check
/// calls may come from task threads in a future shared-database pass;
/// today the coordinator only calls it from the coordinating thread.
class ScopeChecker {
 public:
  ScopeChecker(ScopeCheckMode mode, int num_tools);

  ScopeCheckMode mode() const { return mode_; }

  /// True when `declared` is a certifiable contract: known with a
  /// complete read set. An AccessMonitor-observed scope is never
  /// certifiable (reads_complete == false), so it can never be
  /// reported conformant — only a real declaration can.
  static bool CanCertify(const AccessScope& declared);

  /// Diffs one tool step's observed footprint against its declaration
  /// and records any undeclared atoms (deduplicated across passes; the
  /// diagnostic keeps the first offending pass). A non-certifiable
  /// declaration records no violations but pins the tool's conformance
  /// at kNotCertifiable.
  void CheckStep(int tool, const std::string& tool_name,
                 const AccessScope& declared, const FootprintRecorder& observed,
                 int pass) ASPECT_EXCLUDES(mu_);

  /// Debug cross-check after a parallel group: verifies the members'
  /// *observed* footprints were pairwise non-disturbing (directional,
  /// both ways). A failure means the group's independence held only on
  /// paper.
  void CheckGroupDisjoint(const std::vector<int>& tools,
                          const std::vector<std::string>& tool_names,
                          const std::vector<const FootprintRecorder*>& prints,
                          int pass) ASPECT_EXCLUDES(mu_);

  /// True once `tool` has any recorded violation: its declaration has
  /// been caught lying, and the coordinator must stop trusting it
  /// (falling back to the observed scope, i.e. the serial path).
  bool IsDistrusted(int tool) const ASPECT_EXCLUDES(mu_);

  Conformance ToolConformance(int tool) const ASPECT_EXCLUDES(mu_);

  std::vector<ScopeViolation> violations() const ASPECT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return violations_;
  }
  /// Monotone violation count, without copying the list. Distrust can
  /// only flip when this grows, which lets the coordinator's routing
  /// index re-scan distrust flags only on change (an O(1) epoch test
  /// per step instead of an O(fleet) scan).
  size_t NumViolations() const ASPECT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return violations_.size();
  }
  bool ok() const ASPECT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return violations_.empty();
  }

 private:
  void Add(ScopeViolation v) ASPECT_REQUIRES(mu_);

  const ScopeCheckMode mode_;
  mutable Mutex mu_;
  /// -1 unchecked, else Conformance.
  std::vector<signed char> state_ ASPECT_GUARDED_BY(mu_);
  /// Dedup key: (tool, kind, table, column).
  std::set<std::tuple<int, int, int, int>> seen_ ASPECT_GUARDED_BY(mu_);
  std::vector<ScopeViolation> violations_ ASPECT_GUARDED_BY(mu_);
};

}  // namespace aspect::analysis
