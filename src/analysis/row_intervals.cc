#include "analysis/row_intervals.h"

#include <algorithm>

#include "common/string_util.h"

namespace aspect::analysis {

void RowIntervalSet::AddRange(int64_t lo, int64_t hi) {
  if (lo > hi) return;
  // Fast path: extend or append at the tail. Probe streams from a scan
  // hit this for every row after the first.
  if (!intervals_.empty()) {
    Interval& last = intervals_.back();
    if (lo >= last.first) {
      if (lo <= last.second + 1) {
        last.second = std::max(last.second, hi);
        return;
      }
      intervals_.emplace_back(lo, hi);
      return;
    }
  } else {
    intervals_.emplace_back(lo, hi);
    return;
  }
  // General case: find every interval that overlaps or abuts [lo, hi],
  // replace the run with its hull. `it` is the first interval whose
  // upper end could reach lo - 1 (abutment coalesces too).
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), lo,
      [](const Interval& iv, int64_t key) { return iv.second < key - 1; });
  if (it == intervals_.end() || it->first > hi + 1) {
    intervals_.insert(it, {lo, hi});
    return;
  }
  auto last = it;
  int64_t new_lo = std::min(it->first, lo);
  int64_t new_hi = hi;
  while (last != intervals_.end() && last->first <= hi + 1) {
    new_hi = std::max(new_hi, last->second);
    ++last;
  }
  it->first = new_lo;
  it->second = new_hi;
  intervals_.erase(it + 1, last);
}

bool RowIntervalSet::Contains(int64_t row) const {
  return OverlapsRange(row, row);
}

bool RowIntervalSet::OverlapsRange(int64_t lo, int64_t hi) const {
  if (lo > hi) return false;
  const auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), lo,
      [](const Interval& iv, int64_t key) { return iv.second < key; });
  return it != intervals_.end() && it->first <= hi;
}

bool RowIntervalSet::Overlaps(const RowIntervalSet& other) const {
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  while (a != intervals_.end() && b != other.intervals_.end()) {
    if (a->second < b->first) {
      ++a;
    } else if (b->second < a->first) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

bool RowIntervalSet::Within(int64_t lo, int64_t hi) const {
  if (intervals_.empty()) return true;
  return intervals_.front().first >= lo && intervals_.back().second <= hi;
}

int64_t RowIntervalSet::FirstOutside(int64_t lo, int64_t hi) const {
  for (const Interval& iv : intervals_) {
    if (iv.first < lo) return iv.first;
    if (iv.second > hi) return std::max(iv.first, hi + 1);
  }
  return -1;
}

void RowIntervalSet::MergeFrom(const RowIntervalSet& other) {
  for (const Interval& iv : other.intervals_) {
    AddRange(iv.first, iv.second);
  }
}

std::string RowIntervalSet::ToString() const {
  std::string out;
  for (const Interval& iv : intervals_) {
    if (!out.empty()) out.push_back(' ');
    if (iv.first == iv.second) {
      out += StrFormat("[%lld]", static_cast<long long>(iv.first));
    } else {
      out += StrFormat("[%lld-%lld]", static_cast<long long>(iv.first),
                       static_cast<long long>(iv.second));
    }
  }
  return out;
}

}  // namespace aspect::analysis
