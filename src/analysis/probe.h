// Access probes: the runtime hook layer of the scope-conformance
// analyzer (DESIGN.md Sec. 9). Column/Table/Database call ProbeRead /
// ProbeWrite on every cell access; with no sink installed (the normal
// case) a probe is one thread-local null check. The coordinator
// installs a per-tool FootprintRecorder (scope_checker.h) around each
// Tweak, and the recorded footprint is diffed against the tool's
// DeclaredScope() — catching the undeclared *reads* that the write-only
// scope guard of the O1-parallel pass cannot see.
//
// This header is intentionally dependency-free (no relational/ or
// aspect/ includes) so the relational layer can call the probes without
// a link-time dependency on the analysis library.
#pragma once

#include <cstdint>

namespace aspect::analysis {

/// Column-index sentinels of a probed atom, numerically identical to
/// AccessScope::kWholeTable / kRowStructure (access_scope.h keeps them
/// in sync with a static_assert).
inline constexpr int kProbeWholeTable = -1;
/// Row-structure access: liveness bits, slot counts, and tuple
/// inserts/deletes — distinct from the cells of any one column.
inline constexpr int kProbeRowStructure = -2;

/// Row sentinel for a probe that is not attributable to one tuple
/// (whole-table and row-structure accesses, broadcast writes observed
/// without per-row attribution). Sinks treat it as "all rows".
inline constexpr int64_t kProbeAllRows = -1;

/// Receiver of probe events. Implementations must be cheap (a probe
/// can fire for every cell read of a scan) and are used strictly
/// thread-locally: the installing thread is the only caller. `row` is
/// the stable tuple id of the touched cell, or kProbeAllRows when the
/// access is not row-attributable.
class AccessProbeSink {
 public:
  virtual ~AccessProbeSink() = default;
  virtual void OnRead(int table, int column, int64_t row = kProbeAllRows) = 0;
  virtual void OnWrite(int table, int column,
                       int64_t row = kProbeAllRows) = 0;
};

namespace internal {
/// The calling thread's installed sink (null = probes disabled). A
/// plain thread_local keeps installation race-free by construction:
/// parallel-pass tasks record into private recorders without sharing.
inline thread_local AccessProbeSink* tls_sink = nullptr;
}  // namespace internal

inline bool ProbeInstalled() { return internal::tls_sink != nullptr; }

/// Records a read of (table, column) at `row` against the installed
/// sink, if any. A negative table (unset probe id) is ignored.
inline void ProbeRead(int table, int column, int64_t row = kProbeAllRows) {
  if (internal::tls_sink != nullptr && table >= 0) {
    internal::tls_sink->OnRead(table, column, row);
  }
}

/// Records a write of (table, column) at `row` against the installed
/// sink.
inline void ProbeWrite(int table, int column, int64_t row = kProbeAllRows) {
  if (internal::tls_sink != nullptr && table >= 0) {
    internal::tls_sink->OnWrite(table, column, row);
  }
}

/// RAII sink installation for the current thread. Nesting restores the
/// previous sink on destruction.
class ScopedAccessProbe {
 public:
  explicit ScopedAccessProbe(AccessProbeSink* sink)
      : prev_(internal::tls_sink) {
    internal::tls_sink = sink;
  }
  ~ScopedAccessProbe() { internal::tls_sink = prev_; }

  ScopedAccessProbe(const ScopedAccessProbe&) = delete;
  ScopedAccessProbe& operator=(const ScopedAccessProbe&) = delete;

 private:
  AccessProbeSink* prev_;
};

/// RAII probe suppression: the framework uses this around work that is
/// not the instrumented tool's own access — pre-image capture, listener
/// notification, validator voting, undo — so footprints are attributed
/// to the right party.
class ScopedProbeSuppress {
 public:
  ScopedProbeSuppress() : prev_(internal::tls_sink) {
    internal::tls_sink = nullptr;
  }
  ~ScopedProbeSuppress() { internal::tls_sink = prev_; }

  ScopedProbeSuppress(const ScopedProbeSuppress&) = delete;
  ScopedProbeSuppress& operator=(const ScopedProbeSuppress&) = delete;

 private:
  AccessProbeSink* prev_;
};

}  // namespace aspect::analysis
