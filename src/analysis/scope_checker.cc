#include "analysis/scope_checker.h"

#include <sstream>

#include "common/logging.h"

namespace aspect::analysis {
namespace {

const char* KindToString(ScopeViolation::Kind kind) {
  switch (kind) {
    case ScopeViolation::Kind::kUndeclaredRead:
      return "undeclared read";
    case ScopeViolation::Kind::kUndeclaredWrite:
      return "undeclared write";
    case ScopeViolation::Kind::kGroupOverlap:
      return "parallel-group overlap";
  }
  return "?";
}

std::string ColumnToString(int column) {
  if (column == AccessScope::kWholeTable) return "whole-table";
  if (column == AccessScope::kRowStructure) return "row-structure";
  return "col " + std::to_string(column);
}

}  // namespace

bool ParseScopeCheckMode(const std::string& text, ScopeCheckMode* mode) {
  if (text == "off") {
    *mode = ScopeCheckMode::kOff;
  } else if (text == "warn") {
    *mode = ScopeCheckMode::kWarn;
  } else if (text == "strict") {
    *mode = ScopeCheckMode::kStrict;
  } else if (text == "sampled") {
    *mode = ScopeCheckMode::kSampled;
  } else {
    return false;
  }
  return true;
}

const char* ScopeCheckModeToString(ScopeCheckMode mode) {
  switch (mode) {
    case ScopeCheckMode::kOff:
      return "off";
    case ScopeCheckMode::kWarn:
      return "warn";
    case ScopeCheckMode::kStrict:
      return "strict";
    case ScopeCheckMode::kSampled:
      return "sampled";
  }
  return "?";
}

std::string ScopeViolation::ToString() const {
  std::ostringstream os;
  os << KindToString(kind) << ": tool " << tool_name;
  if (kind == Kind::kGroupOverlap) {
    os << " disturbs " << other_tool_name;
  }
  os << " at (table " << table << ", " << ColumnToString(column);
  if (row >= 0) os << ", row " << row << " outside declared range";
  os << "), first seen in pass " << first_pass + 1;
  return os.str();
}

FootprintRecorder::FootprintRecorder(const std::vector<int>& columns_per_table)
    : bits_(columns_per_table.size()) {
  for (size_t t = 0; t < bits_.size(); ++t) {
    bits_[t].assign(Slot(columns_per_table[t]), 0);
  }
}

void FootprintRecorder::OnRead(int table, int column, int64_t row) {
  unsigned char& b = bits_[static_cast<size_t>(table)][Slot(column)];
  b |= 1;
  if (column < 0) return;  // sentinel atoms carry no row attribution
  if (row == kProbeAllRows) {
    b |= 4;
    return;
  }
  read_rows_[{table, column}].Add(row);
}

void FootprintRecorder::OnWrite(int table, int column, int64_t row) {
  unsigned char& b = bits_[static_cast<size_t>(table)][Slot(column)];
  b |= 2;
  if (column < 0) return;
  if (row == kProbeAllRows) {
    b |= 8;
    return;
  }
  write_rows_[{table, column}].Add(row);
}

void FootprintRecorder::Clear() {
  for (auto& row : bits_) row.assign(row.size(), 0);
  read_rows_.clear();
  write_rows_.clear();
}

const RowIntervalSet* FootprintRecorder::ReadRows(int table,
                                                  int column) const {
  const auto it = read_rows_.find({table, column});
  return it == read_rows_.end() ? nullptr : &it->second;
}

const RowIntervalSet* FootprintRecorder::WriteRows(int table,
                                                   int column) const {
  const auto it = write_rows_.find({table, column});
  return it == write_rows_.end() ? nullptr : &it->second;
}

bool FootprintRecorder::ReadAllRows(int table, int column) const {
  return (bits_[static_cast<size_t>(table)][Slot(column)] & 4) != 0;
}

bool FootprintRecorder::WriteAllRows(int table, int column) const {
  return (bits_[static_cast<size_t>(table)][Slot(column)] & 8) != 0;
}

bool FootprintRecorder::Empty() const {
  for (const auto& row : bits_) {
    for (const unsigned char b : row) {
      if (b != 0) return false;
    }
  }
  return true;
}

std::set<AccessScope::Atom> FootprintRecorder::ReadAtoms() const {
  std::set<AccessScope::Atom> out;
  for (size_t t = 0; t < bits_.size(); ++t) {
    for (size_t s = 0; s < bits_[t].size(); ++s) {
      if ((bits_[t][s] & 1) != 0) {
        out.insert({static_cast<int>(t), static_cast<int>(s) - 2});
      }
    }
  }
  return out;
}

std::set<AccessScope::Atom> FootprintRecorder::WriteAtoms() const {
  std::set<AccessScope::Atom> out;
  for (size_t t = 0; t < bits_.size(); ++t) {
    for (size_t s = 0; s < bits_[t].size(); ++s) {
      if ((bits_[t][s] & 2) != 0) {
        out.insert({static_cast<int>(t), static_cast<int>(s) - 2});
      }
    }
  }
  return out;
}

ScopeChecker::ScopeChecker(ScopeCheckMode mode, int num_tools)
    : mode_(mode), state_(static_cast<size_t>(num_tools), -1) {}

bool ScopeChecker::CanCertify(const AccessScope& declared) {
  return declared.known && declared.reads_complete;
}

void ScopeChecker::Add(ScopeViolation v) {
  if (!seen_.insert({v.tool, static_cast<int>(v.kind), v.table, v.column})
           .second) {
    return;
  }
  state_[static_cast<size_t>(v.tool)] =
      static_cast<signed char>(Conformance::kViolating);
  ASPECT_LOG(Warning) << "scope violation: " << v.ToString();
  violations_.push_back(std::move(v));
}

void ScopeChecker::CheckStep(int tool, const std::string& tool_name,
                             const AccessScope& declared,
                             const FootprintRecorder& observed, int pass) {
  MutexLock lock(mu_);
  signed char& st = state_[static_cast<size_t>(tool)];
  if (!CanCertify(declared)) {
    // An unknown or write-only-observed scope makes no checkable
    // claim; the tool simply can never be certified conformant.
    if (st != static_cast<signed char>(Conformance::kViolating)) {
      st = static_cast<signed char>(Conformance::kNotCertifiable);
    }
    return;
  }
  // Shared by both directions: does the observed row set at a covered,
  // range-declared cell atom leave the declared interval? Returns true
  // and fills `bad_row` (-1 when the escape was a non-attributable
  // all-rows access) on escape.
  const auto escapes_range = [&](const AccessScope::Atom& a, bool all_rows,
                                 const RowIntervalSet* rows,
                                 int64_t* bad_row) {
    const auto* range = declared.RangeOf(a);
    if (range == nullptr) return false;
    *bad_row = -1;
    if (all_rows) return true;
    if (rows == nullptr) return false;
    *bad_row = rows->FirstOutside(range->first, range->second);
    return *bad_row >= 0;
  };
  for (const AccessScope::Atom& a : observed.ReadAtoms()) {
    int64_t bad_row = -1;
    if (AtomCoveredBy(a, declared.reads)) {
      if (a.second < 0 ||
          !escapes_range(a, observed.ReadAllRows(a.first, a.second),
                         observed.ReadRows(a.first, a.second), &bad_row)) {
        continue;
      }
    }
    ScopeViolation v;
    v.kind = ScopeViolation::Kind::kUndeclaredRead;
    v.tool = tool;
    v.tool_name = tool_name;
    v.table = a.first;
    v.column = a.second;
    v.row = bad_row;
    v.first_pass = pass;
    Add(std::move(v));
  }
  for (const AccessScope::Atom& a : observed.WriteAtoms()) {
    int64_t bad_row = -1;
    if (AtomCoveredBy(a, declared.writes)) {
      if (a.second < 0 ||
          !escapes_range(a, observed.WriteAllRows(a.first, a.second),
                         observed.WriteRows(a.first, a.second), &bad_row)) {
        continue;
      }
    }
    ScopeViolation v;
    v.kind = ScopeViolation::Kind::kUndeclaredWrite;
    v.tool = tool;
    v.tool_name = tool_name;
    v.table = a.first;
    v.column = a.second;
    v.row = bad_row;
    v.first_pass = pass;
    Add(std::move(v));
  }
  if (st == -1) st = static_cast<signed char>(Conformance::kConformant);
}

void ScopeChecker::CheckGroupDisjoint(
    const std::vector<int>& tools, const std::vector<std::string>& tool_names,
    const std::vector<const FootprintRecorder*>& prints, int pass) {
  MutexLock lock(mu_);
  // Pairwise, directional: i's observed writes must not disturb j's
  // observed reads. Footprints are tiny (coarse atoms), so the
  // quadratic pass over group members is negligible next to the
  // tweaks themselves.
  std::vector<std::set<AccessScope::Atom>> reads(prints.size());
  std::vector<std::set<AccessScope::Atom>> writes(prints.size());
  for (size_t i = 0; i < prints.size(); ++i) {
    reads[i] = prints[i]->ReadAtoms();
    writes[i] = prints[i]->WriteAtoms();
  }
  for (size_t i = 0; i < prints.size(); ++i) {
    for (size_t j = 0; j < prints.size(); ++j) {
      if (i == j) continue;
      for (const AccessScope::Atom& w : writes[i]) {
        bool disturbed = false;
        for (const AccessScope::Atom& r : reads[j]) {
          if (!WriteAtomDisturbsRead(w, r)) continue;
          // Interval exemption, mirroring the grouping predicate: the
          // same cell atom with fully row-attributed access on both
          // sides and disjoint observed row sets did not interact.
          if (w == r && w.second >= 0 &&
              !prints[i]->WriteAllRows(w.first, w.second) &&
              !prints[j]->ReadAllRows(r.first, r.second)) {
            const RowIntervalSet* wr = prints[i]->WriteRows(w.first, w.second);
            const RowIntervalSet* rr = prints[j]->ReadRows(r.first, r.second);
            if (wr == nullptr || rr == nullptr || !wr->Overlaps(*rr)) {
              continue;
            }
          }
          disturbed = true;
          break;
        }
        if (disturbed) {
          ScopeViolation v;
          v.kind = ScopeViolation::Kind::kGroupOverlap;
          v.tool = tools[i];
          v.tool_name = tool_names[i];
          v.other_tool = tools[j];
          v.other_tool_name = tool_names[j];
          v.table = w.first;
          v.column = w.second;
          v.first_pass = pass;
          Add(std::move(v));
        }
      }
    }
  }
}

bool ScopeChecker::IsDistrusted(int tool) const {
  MutexLock lock(mu_);
  return state_[static_cast<size_t>(tool)] ==
         static_cast<signed char>(Conformance::kViolating);
}

Conformance ScopeChecker::ToolConformance(int tool) const {
  MutexLock lock(mu_);
  const signed char st = state_[static_cast<size_t>(tool)];
  if (st < 0) return Conformance::kNotCertifiable;
  return static_cast<Conformance>(st);
}

}  // namespace aspect::analysis
