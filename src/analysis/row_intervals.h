// RowIntervalSet: a compressed set of tuple ids kept as sorted,
// disjoint, merged closed intervals [lo, hi].
//
// The scope-conformance analyzer aggregates per-tuple access probes
// into one of these per (table, column) atom, and the row-range write
// leases test containment against them. Tools touch rows in runs (scan
// order or per-victim batches), so the representation stays tiny: the
// common Add pattern extends the last interval in O(1).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace aspect::analysis {

/// Sorted, disjoint, merged closed intervals of int64 row ids.
/// Adjacent intervals ([1,3] and [4,6]) are coalesced.
class RowIntervalSet {
 public:
  using Interval = std::pair<int64_t, int64_t>;  // [lo, hi], inclusive

  bool empty() const { return intervals_.empty(); }
  int64_t NumIntervals() const {
    return static_cast<int64_t>(intervals_.size());
  }
  const std::vector<Interval>& intervals() const { return intervals_; }

  void Clear() { intervals_.clear(); }

  /// Inserts one row. Amortized O(1) when rows arrive in nondecreasing
  /// order near the tail (the probe aggregation pattern); O(n) worst
  /// case for a row that splits the middle of the set.
  void Add(int64_t row) { AddRange(row, row); }

  /// Inserts the closed range [lo, hi] (no-op when lo > hi).
  void AddRange(int64_t lo, int64_t hi);

  /// True when `row` lies in some interval.
  bool Contains(int64_t row) const;

  /// True when any row of [lo, hi] lies in some interval.
  bool OverlapsRange(int64_t lo, int64_t hi) const;

  /// True when the two sets share at least one row.
  bool Overlaps(const RowIntervalSet& other) const;

  /// True when every stored row lies inside [lo, hi]. An empty set is
  /// trivially within any range.
  bool Within(int64_t lo, int64_t hi) const;

  /// The smallest stored row outside [lo, hi], or -1 when Within. Used
  /// to name the offending tuple in scope-violation diagnostics.
  int64_t FirstOutside(int64_t lo, int64_t hi) const;

  /// Unions `other` into this set.
  void MergeFrom(const RowIntervalSet& other);

  /// "[1-3] [7] [9-12]" — diagnostics only.
  std::string ToString() const;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace aspect::analysis
