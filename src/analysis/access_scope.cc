#include "analysis/access_scope.h"

namespace aspect {

void AccessScope::AddRead(int table, int column) {
  reads.insert({table, column});
  stats_reads.insert({table, column});
}

void AccessScope::AddWrite(int table, int column) {
  writes.insert({table, column});
  reads.insert({table, column});
  stats_reads.insert({table, column});
}

void AccessScope::AddTweakOnlyRead(int table, int column) {
  reads.insert({table, column});
}

void AccessScope::MergeFrom(const AccessScope& other) {
  known = known && other.known;
  reads_complete = reads_complete && other.reads_complete;
  reads.insert(other.reads.begin(), other.reads.end());
  writes.insert(other.writes.begin(), other.writes.end());
  stats_reads.insert(other.stats_reads.begin(), other.stats_reads.end());
}

bool AtomsOverlap(AccessScope::Atom a, AccessScope::Atom b) {
  if (a.first != b.first) return false;
  // Without direction, row structure and cells must be assumed to
  // interact (an insert materialises cells in every column).
  if (a.second == AccessScope::kRowStructure ||
      b.second == AccessScope::kRowStructure) {
    return true;
  }
  return a.second == AccessScope::kWholeTable ||
         b.second == AccessScope::kWholeTable || a.second == b.second;
}

bool AtomSetsOverlap(const std::set<AccessScope::Atom>& a,
                     const std::set<AccessScope::Atom>& b) {
  // Atom sets are tiny (a handful of (table, column) pairs per tool),
  // so the quadratic scan beats anything cleverer.
  for (const AccessScope::Atom& x : a) {
    for (const AccessScope::Atom& y : b) {
      if (AtomsOverlap(x, y)) return true;
    }
  }
  return false;
}

bool WriteAtomDisturbsRead(AccessScope::Atom w, AccessScope::Atom r) {
  if (w.first != r.first) return false;
  // Inserting/deleting rows changes the live cell set of every column.
  if (w.second == AccessScope::kRowStructure) return true;
  if (w.second == AccessScope::kWholeTable ||
      r.second == AccessScope::kWholeTable) {
    return true;
  }
  // A cell write leaves the row skeleton untouched.
  if (r.second == AccessScope::kRowStructure) return false;
  return w.second == r.second;
}

bool WritesDisturbAtoms(const std::set<AccessScope::Atom>& writes,
                        const std::set<AccessScope::Atom>& reads) {
  for (const AccessScope::Atom& w : writes) {
    for (const AccessScope::Atom& r : reads) {
      if (WriteAtomDisturbsRead(w, r)) return true;
    }
  }
  return false;
}

bool AtomCoveredBy(AccessScope::Atom a,
                   const std::set<AccessScope::Atom>& declared) {
  if (declared.count(a) > 0) return true;
  if (declared.count({a.first, AccessScope::kWholeTable}) > 0) return true;
  // kRowStructure covers only row-structure atoms; a cell atom needs a
  // matching column or the whole table.
  return false;
}

bool WritesDisturb(const AccessScope& writer, const AccessScope& reader) {
  if (!writer.known || !reader.known) return true;
  // A reader whose read set is a lower bound (observed scope) may read
  // cells it never wrote; without the full set, disturbance cannot be
  // ruled out.
  if (!reader.reads_complete) return true;
  return WritesDisturbAtoms(writer.writes, reader.reads);
}

bool ValidationDisturb(const AccessScope& writer, const AccessScope& reader) {
  if (!writer.known || !reader.known) return true;
  if (!reader.reads_complete) return true;
  return WritesDisturbAtoms(writer.writes, reader.stats_reads);
}

bool ScopesConflict(const AccessScope& a, const AccessScope& b) {
  return WritesDisturb(a, b) || WritesDisturb(b, a);
}

}  // namespace aspect
