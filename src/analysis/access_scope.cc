#include "analysis/access_scope.h"

#include <algorithm>

namespace aspect {

void AccessScope::AddRead(int table, int column) {
  reads.insert({table, column});
  stats_reads.insert({table, column});
  // An unranged declaration claims the whole column; it supersedes any
  // earlier range for the atom.
  row_ranges.erase({table, column});
}

void AccessScope::AddWrite(int table, int column) {
  writes.insert({table, column});
  reads.insert({table, column});
  stats_reads.insert({table, column});
  row_ranges.erase({table, column});
}

void AccessScope::AddTweakOnlyRead(int table, int column) {
  reads.insert({table, column});
  row_ranges.erase({table, column});
}

void AccessScope::AddReadRange(int table, int column, int64_t lo,
                               int64_t hi) {
  const Atom a{table, column};
  const bool already_unranged =
      (reads.count(a) > 0 || writes.count(a) > 0) && row_ranges.count(a) == 0;
  reads.insert(a);
  stats_reads.insert(a);
  if (already_unranged) return;  // unrestricted wins over any range
  const auto [it, inserted] = row_ranges.emplace(a, std::make_pair(lo, hi));
  if (!inserted) {
    it->second.first = std::min(it->second.first, lo);
    it->second.second = std::max(it->second.second, hi);
  }
}

void AccessScope::AddWriteRange(int table, int column, int64_t lo,
                                int64_t hi) {
  const Atom a{table, column};
  const bool already_unranged =
      (reads.count(a) > 0 || writes.count(a) > 0) && row_ranges.count(a) == 0;
  writes.insert(a);
  reads.insert(a);
  stats_reads.insert(a);
  if (already_unranged) return;
  const auto [it, inserted] = row_ranges.emplace(a, std::make_pair(lo, hi));
  if (!inserted) {
    it->second.first = std::min(it->second.first, lo);
    it->second.second = std::max(it->second.second, hi);
  }
}

const std::pair<int64_t, int64_t>* AccessScope::RangeOf(const Atom& a) const {
  const auto it = row_ranges.find(a);
  return it == row_ranges.end() ? nullptr : &it->second;
}

void AccessScope::MergeFrom(const AccessScope& other) {
  known = known && other.known;
  reads_complete = reads_complete && other.reads_complete;
  // Range merge before the set unions (it consults which atoms each
  // side touches): an atom ranged on both sides merges to the hull; an
  // atom one side touches without a range ends up unrestricted.
  const auto touches = [](const AccessScope& s, const Atom& a) {
    return s.reads.count(a) > 0 || s.writes.count(a) > 0;
  };
  std::map<Atom, std::pair<int64_t, int64_t>> merged;
  for (const auto& [atom, range] : row_ranges) {
    if (touches(other, atom)) {
      const auto it = other.row_ranges.find(atom);
      if (it == other.row_ranges.end()) continue;
      merged[atom] = {std::min(range.first, it->second.first),
                      std::max(range.second, it->second.second)};
    } else {
      merged[atom] = range;
    }
  }
  for (const auto& [atom, range] : other.row_ranges) {
    if (merged.count(atom) > 0 || touches(*this, atom)) continue;
    merged[atom] = range;
  }
  row_ranges = std::move(merged);
  reads.insert(other.reads.begin(), other.reads.end());
  writes.insert(other.writes.begin(), other.writes.end());
  stats_reads.insert(other.stats_reads.begin(), other.stats_reads.end());
}

bool AtomsOverlap(AccessScope::Atom a, AccessScope::Atom b) {
  if (a.first != b.first) return false;
  // Without direction, row structure and cells must be assumed to
  // interact (an insert materialises cells in every column).
  if (a.second == AccessScope::kRowStructure ||
      b.second == AccessScope::kRowStructure) {
    return true;
  }
  return a.second == AccessScope::kWholeTable ||
         b.second == AccessScope::kWholeTable || a.second == b.second;
}

bool AtomSetsOverlap(const std::set<AccessScope::Atom>& a,
                     const std::set<AccessScope::Atom>& b) {
  // Atom sets are tiny (a handful of (table, column) pairs per tool),
  // so the quadratic scan beats anything cleverer.
  for (const AccessScope::Atom& x : a) {
    for (const AccessScope::Atom& y : b) {
      if (AtomsOverlap(x, y)) return true;
    }
  }
  return false;
}

bool WriteAtomDisturbsRead(AccessScope::Atom w, AccessScope::Atom r) {
  if (w.first != r.first) return false;
  // Inserting/deleting rows changes the live cell set of every column.
  if (w.second == AccessScope::kRowStructure) return true;
  if (w.second == AccessScope::kWholeTable ||
      r.second == AccessScope::kWholeTable) {
    return true;
  }
  // A cell write leaves the row skeleton untouched.
  if (r.second == AccessScope::kRowStructure) return false;
  return w.second == r.second;
}

bool WritesDisturbAtoms(const std::set<AccessScope::Atom>& writes,
                        const std::set<AccessScope::Atom>& reads) {
  for (const AccessScope::Atom& w : writes) {
    for (const AccessScope::Atom& r : reads) {
      if (WriteAtomDisturbsRead(w, r)) return true;
    }
  }
  return false;
}

bool AtomCoveredBy(AccessScope::Atom a,
                   const std::set<AccessScope::Atom>& declared) {
  if (declared.count(a) > 0) return true;
  if (declared.count({a.first, AccessScope::kWholeTable}) > 0) return true;
  // kRowStructure covers only row-structure atoms; a cell atom needs a
  // matching column or the whole table.
  return false;
}

namespace {

/// WritesDisturbAtoms with the row-interval exemption: a disturbance
/// through the exact same cell atom is discounted when both scopes
/// restrict that atom to disjoint tuple-id ranges. The exemption never
/// applies across granularities (a whole-table or row-structure atom
/// interacting with a ranged cell atom stays a disturbance), which is
/// why the atom-set helpers above remain interval-blind.
bool RangedWritesDisturb(const AccessScope& writer,
                         const std::set<AccessScope::Atom>& reads,
                         const AccessScope& reader) {
  for (const AccessScope::Atom& w : writer.writes) {
    for (const AccessScope::Atom& r : reads) {
      if (!WriteAtomDisturbsRead(w, r)) continue;
      if (w == r && w.second >= 0) {
        const auto* wr = writer.RangeOf(w);
        const auto* rr = reader.RangeOf(r);
        if (wr != nullptr && rr != nullptr &&
            (wr->second < rr->first || rr->second < wr->first)) {
          continue;  // certified-disjoint row ranges cannot interact
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace

bool WritesDisturb(const AccessScope& writer, const AccessScope& reader) {
  if (!writer.known || !reader.known) return true;
  // A reader whose read set is a lower bound (observed scope) may read
  // cells it never wrote; without the full set, disturbance cannot be
  // ruled out.
  if (!reader.reads_complete) return true;
  return RangedWritesDisturb(writer, reader.reads, reader);
}

bool ValidationDisturb(const AccessScope& writer, const AccessScope& reader) {
  if (!writer.known || !reader.known) return true;
  if (!reader.reads_complete) return true;
  return RangedWritesDisturb(writer, reader.stats_reads, reader);
}

bool ScopesConflict(const AccessScope& a, const AccessScope& b) {
  return WritesDisturb(a, b) || WritesDisturb(b, a);
}

}  // namespace aspect
