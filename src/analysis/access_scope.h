// AccessScope: the (table, column) cell sets a tweaking tool reads and
// writes, used by the O1-parallel pass (Sec. IV, observation O1: tools
// whose access sets do not overlap provably cannot disturb each other,
// so their tweaks commute and their cross-votes are always zero).
//
// A scope is either *declared* by the tool up front
// (PropertyTool::DeclaredScope) or *observed* empirically by the
// AccessMonitor after the tool has run once (O2). An unknown scope
// conservatively conflicts with everything, which is what forces the
// coordinator's serial fallback on a first pass of undeclared tools.
// An observed scope is built from recorded writes only, so its read
// set is incomplete (reads_complete = false) and read-side checks
// treat it just as conservatively: undeclared tools stay serial.
//
// Atoms distinguish three granularities per table:
//   (t, c >= 0)         one column's cells
//   (t, kRowStructure)  the row skeleton: liveness bits, slot counts,
//                       and tuple inserts/deletes
//   (t, kWholeTable)    everything above at once
// The distinction is directional: a row insert/delete changes what any
// reader of the table sees (new/removed live cells), but a cell write
// never changes the row structure. WriteAtomDisturbsRead encodes this,
// which is what lets TupleCountTool declare row-structure-only writes
// without serializing every cell tool that follows it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "analysis/probe.h"

namespace aspect {

struct AccessScope {
  /// One accessed region: (table index, column index). The column
  /// holds a real index or one of the sentinels below.
  using Atom = std::pair<int, int>;
  /// All cells and the row structure of the table (an unpredictable
  /// column set); overlaps every atom on that table.
  static constexpr int kWholeTable = -1;
  /// Row-structure access only: tuple inserts/deletes, liveness and
  /// slot-count reads — no named column's cell values.
  static constexpr int kRowStructure = -2;

  static_assert(kWholeTable == analysis::kProbeWholeTable &&
                    kRowStructure == analysis::kProbeRowStructure,
                "probe sentinels must match AccessScope sentinels");

  /// False = the scope is not known (the conservative default): it
  /// must be treated as conflicting with everything.
  bool known = false;
  /// True when `reads` accounts for every cell the tool may read.
  /// Declared scopes are complete contracts; an observed scope is
  /// reconstructed from recorded *writes* only, so its read set is a
  /// lower bound and this is false — read-side checks (WritesDisturb
  /// with this scope as the reader) must then treat the scope as
  /// conservatively disturbed by everything. Writes stay trustworthy
  /// either way: the coordinator's runtime scope guard verifies them,
  /// and the ScopeChecker (src/analysis) verifies the read side.
  bool reads_complete = true;
  /// Everything the tool's Tweak may touch. `reads` is the full
  /// Tweak-time read footprint (what the parallel grouping must keep
  /// undisturbed while the tool runs); `writes` the full write
  /// footprint.
  std::set<Atom> reads;
  std::set<Atom> writes;
  /// The subset of `reads` that the tool's Error(),
  /// ValidationPenalty() and incrementally maintained statistics
  /// depend on. AddRead/AddWrite populate it alongside `reads`;
  /// AddTweakOnlyRead records a read the Tweak needs but the
  /// statistics do not (e.g. TupleCountTool reading whole template
  /// rows it clones). The enforced-validator eligibility check
  /// (ValidationDisturb) and the post-group rebind decision use this
  /// set: a write that cannot reach a validator's statistics cannot
  /// change its votes or its error.
  std::set<Atom> stats_reads;

  /// Row-interval restriction per atom: when a cell atom (column >= 0)
  /// maps to a closed tuple-id range [lo, hi], the tool certifies that
  /// every read AND write it performs on that column stays inside the
  /// range. An absent entry means unrestricted (the default and the
  /// conservative meaning). Two scopes that both restrict the same
  /// cell atom to disjoint ranges provably cannot disturb each other
  /// through it — the exemption WritesDisturb/ValidationDisturb apply
  /// and the row-range write leases enforce. Sentinel atoms
  /// (kWholeTable, kRowStructure) never carry ranges.
  std::map<Atom, std::pair<int64_t, int64_t>> row_ranges;

  /// Adds a read atom (column defaults to the whole table).
  void AddRead(int table, int column = kWholeTable);
  /// Adds a write atom; a written cell is also a read (tools consult
  /// what they write), so the atom lands in both sets.
  void AddWrite(int table, int column = kWholeTable);
  /// Adds a read the Tweak performs but the tool's statistics and
  /// votes do not depend on (lands in `reads` only).
  void AddTweakOnlyRead(int table, int column = kWholeTable);
  /// Like AddRead / AddWrite for a cell atom restricted to tuple ids
  /// [lo, hi]. Declaring the same atom again widens the range to the
  /// hull; mixing a ranged declaration with an unranged one for the
  /// same atom leaves the atom unrestricted.
  void AddReadRange(int table, int column, int64_t lo, int64_t hi);
  void AddWriteRange(int table, int column, int64_t lo, int64_t hi);
  /// The declared range of `a`, or nullptr when unrestricted.
  const std::pair<int64_t, int64_t>* RangeOf(const Atom& a) const;
  /// Unions `other` into this scope; the result is known only if both
  /// inputs are.
  void MergeFrom(const AccessScope& other);
};

/// True when two atoms can address a common cell or structure: same
/// table, and at least one side is kWholeTable, or the columns
/// coincide, or either side is kRowStructure (the symmetric,
/// conservative approximation — use WriteAtomDisturbsRead when the
/// direction is known).
bool AtomsOverlap(AccessScope::Atom a, AccessScope::Atom b);

/// True when any atom of `a` overlaps any atom of `b`.
bool AtomSetsOverlap(const std::set<AccessScope::Atom>& a,
                     const std::set<AccessScope::Atom>& b);

/// Directed atom test: can a write to `w` change what a reader of `r`
/// observes? Row-structure writes (inserts/deletes) disturb every
/// reader of the table — new live rows carry cells in every column —
/// but a cell write never disturbs a pure row-structure reader.
bool WriteAtomDisturbsRead(AccessScope::Atom w, AccessScope::Atom r);

/// Directed set test over WriteAtomDisturbsRead.
bool WritesDisturbAtoms(const std::set<AccessScope::Atom>& writes,
                        const std::set<AccessScope::Atom>& reads);

/// True when observed atom `a` lies inside the declared set
/// `declared`: listed exactly, or covered by that table's kWholeTable
/// atom. A row-structure atom is also covered by kRowStructure; a cell
/// atom is NOT (row-structure declarations make no claim about cell
/// values). The runtime scope guard and the ScopeChecker both use
/// this covering relation.
bool AtomCoveredBy(AccessScope::Atom a,
                   const std::set<AccessScope::Atom>& declared);

/// Directed disturbance test: can `writer`'s writes change a cell that
/// `reader` reads? Unknown scopes disturb (and are disturbed by)
/// everything. When this is false, `reader`'s Tweak-time view of the
/// database is unchanged by `writer`'s tweaks (O1).
bool WritesDisturb(const AccessScope& writer, const AccessScope& reader);

/// Like WritesDisturb but against the reader's statistics footprint
/// (stats_reads) instead of its full Tweak read set. When false, every
/// one of `reader`'s validator votes on `writer`'s proposals is
/// provably zero and `reader`'s statistics and error are unchanged by
/// `writer`'s tweaks — the condition the parallel pass needs from
/// enforced validators that are not in the group.
bool ValidationDisturb(const AccessScope& writer, const AccessScope& reader);

/// Symmetric conflict for the independence graph fed to
/// IndependentClasses: either side's writes intersect the other's
/// reads (writes are reads too, so write-write overlap is included).
bool ScopesConflict(const AccessScope& a, const AccessScope& b);

}  // namespace aspect
