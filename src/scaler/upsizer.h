// UpSizerScaler: a size-scaler modelled on UpSizeR [34], the first
// Dataset Scaling Problem solution (cited as an S0 candidate in
// Sec. II). Where the Dscaler stand-in replays per-tuple templates
// with proportional key remapping, UpSizeR regenerates each FK edge
// from its *degree distribution*: every synthetic parent draws a
// fan-out from the empirical distribution (rescaled so totals match),
// and children are dealt onto parents accordingly. Attribute columns
// and secondary FKs come from per-child templates, preserving joint
// column correlation.
//
// Contract (Sec. III-A): exact per-table sizes and valid foreign keys.
#pragma once

#include "scaler/size_scaler.h"

namespace aspect {

class UpSizerScaler : public SizeScaler {
 public:
  std::string name() const override { return "UpSizeR"; }
  Result<std::unique_ptr<Database>> Scale(
      const Database& source, const std::vector<int64_t>& target_sizes,
      uint64_t seed, const GenOptions& gen = {}) const override;
};

}  // namespace aspect
