#include "scaler/size_scaler.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "relational/refgraph.h"
#include "relational/rowgen.h"

namespace aspect {
namespace {

/// Tables in parents-first order (fails on cyclic FK graphs). This
/// ordering is what makes the sharded generators coordination-free: a
/// child table's FK domain is its parents' final tuple counts, which
/// are constants by the time the child's shards run.
Result<std::vector<int>> TopoOrder(const Database& db) {
  ReferenceGraph graph(db.schema());
  if (!graph.IsAcyclic()) {
    return Status::Invalid("size scaling requires an acyclic FK graph");
  }
  const int n = db.num_tables();
  std::vector<int> out_degree(static_cast<size_t>(n), 0);
  std::vector<int> order, ready;
  for (int t = 0; t < n; ++t) {
    out_degree[static_cast<size_t>(t)] =
        static_cast<int>(graph.OutEdges(t).size());
    if (out_degree[static_cast<size_t>(t)] == 0) ready.push_back(t);
  }
  while (!ready.empty()) {
    const int t = ready.back();
    ready.pop_back();
    order.push_back(t);
    for (const FkEdge& e : graph.InEdges(t)) {
      if (--out_degree[static_cast<size_t>(e.child_table)] == 0) {
        ready.push_back(e.child_table);
      }
    }
  }
  return order;
}

Status CheckTargets(const Database& source,
                    const std::vector<int64_t>& target_sizes) {
  if (static_cast<int>(target_sizes.size()) != source.num_tables()) {
    return Status::Invalid(
        StrFormat("expected %d target sizes, got %zu", source.num_tables(),
                  target_sizes.size()));
  }
  for (const int64_t s : target_sizes) {
    if (s < 1) return Status::Invalid("target sizes must be positive");
  }
  return Status::OK();
}

/// Shard pool for one Scale call: null (inline execution) unless more
/// than one worker was requested.
ThreadPool* MakeGenPool(const GenOptions& gen) {
  const int threads = ResolveGenThreads(gen.threads);
  if (threads <= 1) return nullptr;
  return ThreadPool::Shared(threads);
}

}  // namespace

Result<std::unique_ptr<Database>> RandScaler::Scale(
    const Database& source, const std::vector<int64_t>& target_sizes,
    uint64_t seed, const GenOptions& gen) const {
  ASPECT_RETURN_NOT_OK(CheckTargets(source, target_sizes));
  ASPECT_ASSIGN_OR_RETURN(std::vector<int> order, TopoOrder(source));
  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> out,
                          Database::Create(source.schema()));
  ThreadPool* pool = MakeGenPool(gen);
  const Rng root(seed);
  for (const int ti : order) {
    const Table& src = source.table(ti);
    Table* dst = out->FindTable(src.name());
    const std::vector<TupleId> live = src.LiveTuples();
    if (live.empty()) {
      return Status::Invalid(
          StrFormat("source table '%s' is empty", src.name().c_str()));
    }
    // FK domains are the parents' final sizes — constants here thanks
    // to the topological order, so shards need no coordination.
    std::vector<int64_t> parent_size(
        static_cast<size_t>(src.num_columns()), 0);
    for (int ci = 0; ci < src.num_columns(); ++ci) {
      const Column& col = src.column(ci);
      if (!col.is_foreign_key()) continue;
      const int pi = source.schema().TableIndex(col.ref_table());
      parent_size[static_cast<size_t>(ci)] = out->table(pi).NumTuples();
    }
    const int64_t n_live = static_cast<int64_t>(live.size());
    const Rng table_stream = root.Fork(static_cast<uint64_t>(ti));
    ASPECT_RETURN_NOT_OK(GenerateRowsSharded(
        dst, target_sizes[static_cast<size_t>(ti)], table_stream,
        pool,
        [&](int64_t /*row*/, Rng* rng, std::vector<Value>* row_out) {
          for (int ci = 0; ci < src.num_columns(); ++ci) {
            const Column& col = src.column(ci);
            if (col.is_foreign_key()) {
              (*row_out)[static_cast<size_t>(ci)] = Value(rng->UniformInt(
                  0, parent_size[static_cast<size_t>(ci)] - 1));
            } else {
              // Sample the attribute from a random source tuple, so
              // value domains stay realistic even though joint
              // structure is lost.
              const TupleId t = live[static_cast<size_t>(
                  rng->UniformInt(0, n_live - 1))];
              (*row_out)[static_cast<size_t>(ci)] = col.Get(t);
            }
          }
          return Status::OK();
        }));
  }
  return out;
}

int64_t RexScaler::Factor(const Database& source,
                          const std::vector<int64_t>& target_sizes) {
  double sum = 0;
  int counted = 0;
  for (int ti = 0; ti < source.num_tables(); ++ti) {
    const int64_t n = source.table(ti).NumTuples();
    if (n == 0 || ti >= static_cast<int>(target_sizes.size())) continue;
    sum += static_cast<double>(target_sizes[static_cast<size_t>(ti)]) /
           static_cast<double>(n);
    ++counted;
  }
  if (counted == 0) return 1;
  const int64_t s = static_cast<int64_t>(std::llround(sum / counted));
  return std::max<int64_t>(1, s);
}

Result<std::unique_ptr<Database>> RexScaler::Scale(
    const Database& source, const std::vector<int64_t>& target_sizes,
    uint64_t seed, const GenOptions& gen) const {
  (void)seed;  // ReX is deterministic.
  ASPECT_RETURN_NOT_OK(CheckTargets(source, target_sizes));
  ASPECT_ASSIGN_OR_RETURN(std::vector<int> order, TopoOrder(source));
  const int64_t s = Factor(source, target_sizes);
  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> out,
                          Database::Create(source.schema()));
  ThreadPool* pool = MakeGenPool(gen);
  // Position of each live source tuple within its table (for key
  // remapping: replica r of source index i gets id i*s + r).
  std::vector<std::vector<int64_t>> index_of(
      static_cast<size_t>(source.num_tables()));
  for (int ti = 0; ti < source.num_tables(); ++ti) {
    const Table& src = source.table(ti);
    auto& idx = index_of[static_cast<size_t>(ti)];
    idx.assign(static_cast<size_t>(src.NumSlots()), -1);
    int64_t next = 0;
    src.ForEachLive([&](TupleId t) {
      idx[static_cast<size_t>(t)] = next++;
    });
  }
  const Rng root(0);  // ReX draws nothing; streams exist for the driver.
  for (const int ti : order) {
    const Table& src = source.table(ti);
    Table* dst = out->FindTable(src.name());
    const std::vector<TupleId> live = src.LiveTuples();
    // Row j is replica r = j % s of source index i = j / s — the same
    // (source index, replica) interleaving as the serial append loop,
    // so replica r of source index i keeps the predictable id i*s + r.
    ASPECT_RETURN_NOT_OK(GenerateRowsSharded(
        dst, static_cast<int64_t>(live.size()) * s, root.Fork(0),
        pool,
        [&](int64_t j, Rng* /*rng*/, std::vector<Value>* row_out) {
          const TupleId t = live[static_cast<size_t>(j / s)];
          const int64_t r = j % s;
          std::vector<Value> row = src.GetRow(t);
          for (int ci = 0; ci < src.num_columns(); ++ci) {
            const Column& col = src.column(ci);
            if (!col.is_foreign_key() ||
                row[static_cast<size_t>(ci)].is_null()) {
              continue;
            }
            const int pi = source.schema().TableIndex(col.ref_table());
            const int64_t parent_index =
                index_of[static_cast<size_t>(pi)]
                        [static_cast<size_t>(row[static_cast<size_t>(ci)]
                                                 .int64())];
            row[static_cast<size_t>(ci)] = Value(parent_index * s + r);
          }
          *row_out = std::move(row);
          return Status::OK();
        }));
  }
  return out;
}

Result<std::unique_ptr<Database>> DscalerScaler::Scale(
    const Database& source, const std::vector<int64_t>& target_sizes,
    uint64_t seed, const GenOptions& gen) const {
  ASPECT_RETURN_NOT_OK(CheckTargets(source, target_sizes));
  ASPECT_ASSIGN_OR_RETURN(std::vector<int> order, TopoOrder(source));
  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> out,
                          Database::Create(source.schema()));
  ThreadPool* pool = MakeGenPool(gen);
  const Rng root(seed);
  for (const int ti : order) {
    const Table& src = source.table(ti);
    Table* dst = out->FindTable(src.name());
    const std::vector<TupleId> live = src.LiveTuples();
    if (live.empty()) {
      return Status::Invalid(
          StrFormat("source table '%s' is empty", src.name().c_str()));
    }
    const int64_t n_src = static_cast<int64_t>(live.size());
    const int64_t n_dst = target_sizes[static_cast<size_t>(ti)];
    // Source and scaled parent domain sizes per FK column — constants
    // by topological order (parents are already complete).
    std::vector<int64_t> par_src(static_cast<size_t>(src.num_columns()), 0);
    std::vector<int64_t> par_dst(static_cast<size_t>(src.num_columns()), 0);
    for (int ci = 0; ci < src.num_columns(); ++ci) {
      const Column& col = src.column(ci);
      if (!col.is_foreign_key()) continue;
      const int pi = source.schema().TableIndex(col.ref_table());
      par_src[static_cast<size_t>(ci)] = source.table(pi).NumTuples();
      par_dst[static_cast<size_t>(ci)] = out->table(pi).NumTuples();
    }
    const Rng table_stream = root.Fork(static_cast<uint64_t>(ti));
    ASPECT_RETURN_NOT_OK(GenerateRowsSharded(
        dst, n_dst, table_stream, pool,
        [&](int64_t j, Rng* rng, std::vector<Value>* row_out) {
          // Template tuple: cycle through the source so every source
          // tuple contributes (this is the per-tuple correlation
          // database: synthetic tuple j inherits the joint
          // FK/attribute pattern of its template).
          const TupleId tmpl = live[static_cast<size_t>(j % n_src)];
          const int64_t round = j / n_src;
          std::vector<Value> row = src.GetRow(tmpl);
          for (int ci = 0; ci < src.num_columns(); ++ci) {
            const Column& col = src.column(ci);
            if (!col.is_foreign_key() ||
                row[static_cast<size_t>(ci)].is_null()) {
              continue;
            }
            const int64_t p_src = row[static_cast<size_t>(ci)].int64();
            const int64_t n_par_src = par_src[static_cast<size_t>(ci)];
            const int64_t n_par_dst = par_dst[static_cast<size_t>(ci)];
            // Proportional remap of the parent id into the scaled
            // parent domain. Round 0 is deterministic (keeps the
            // strongest correlation); later rounds jitter within the
            // stratum so replicas spread over the enlarged domain.
            double pos = static_cast<double>(p_src);
            if (round > 0) pos += rng->UniformDouble();
            int64_t p_dst = static_cast<int64_t>(
                pos * static_cast<double>(n_par_dst) /
                static_cast<double>(n_par_src));
            p_dst = std::clamp<int64_t>(p_dst, 0, n_par_dst - 1);
            row[static_cast<size_t>(ci)] = Value(p_dst);
          }
          *row_out = std::move(row);
          return Status::OK();
        }));
  }
  return out;
}

std::vector<std::unique_ptr<SizeScaler>> BuiltinScalers() {
  std::vector<std::unique_ptr<SizeScaler>> out;
  out.push_back(std::make_unique<DscalerScaler>());
  out.push_back(std::make_unique<RexScaler>());
  out.push_back(std::make_unique<RandScaler>());
  return out;
}

}  // namespace aspect
