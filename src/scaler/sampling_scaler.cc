#include "scaler/sampling_scaler.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "relational/refgraph.h"
#include "relational/rowgen.h"

namespace aspect {

Result<std::unique_ptr<Database>> SamplingScaler::Scale(
    const Database& source, const std::vector<int64_t>& target_sizes,
    uint64_t seed, const GenOptions& gen) const {
  if (static_cast<int>(target_sizes.size()) != source.num_tables()) {
    return Status::Invalid("sampling: wrong number of target sizes");
  }
  ReferenceGraph graph(source.schema());
  if (!graph.IsAcyclic()) {
    return Status::Invalid("sampling requires an acyclic FK graph");
  }
  const int n = source.num_tables();
  std::vector<int> out_degree(static_cast<size_t>(n), 0);
  std::vector<int> order, ready;
  for (int t = 0; t < n; ++t) {
    out_degree[static_cast<size_t>(t)] =
        static_cast<int>(graph.OutEdges(t).size());
    if (out_degree[static_cast<size_t>(t)] == 0) ready.push_back(t);
  }
  while (!ready.empty()) {
    const int t = ready.back();
    ready.pop_back();
    order.push_back(t);
    for (const FkEdge& e : graph.InEdges(t)) {
      if (--out_degree[static_cast<size_t>(e.child_table)] == 0) {
        ready.push_back(e.child_table);
      }
    }
  }

  const Rng root(seed);
  const int pool_threads = ResolveGenThreads(gen.threads);
  ThreadPool* pool =
      pool_threads > 1 ? ThreadPool::Shared(pool_threads) : nullptr;
  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> out,
                          Database::Create(source.schema()));
  std::vector<std::vector<TupleId>> remap(static_cast<size_t>(n));
  for (const int ti : order) {
    const Table& src = source.table(ti);
    Table* dst = out->FindTable(src.name());
    const int64_t want = target_sizes[static_cast<size_t>(ti)];
    if (want < 1) return Status::Invalid("sampling: target below 1");
    auto& rm = remap[static_cast<size_t>(ti)];
    rm.assign(static_cast<size_t>(src.NumSlots()), kInvalidTuple);
    const Rng table_stream = root.Fork(static_cast<uint64_t>(ti));
    // Serial side-channel stream for the candidate shuffle and the
    // top-up loop; the sampled-row shards fork from table_stream with
    // dense labels that cannot collide with it.
    Rng aux = table_stream.Fork(kAuxStreamLabel);

    // Candidates: live tuples whose parents all survived. Inherently
    // sequential (depends on the parents' remap), but cheap.
    std::vector<TupleId> candidates;
    src.ForEachLive([&](TupleId t) {
      for (int ci = 0; ci < src.num_columns(); ++ci) {
        const Column& col = src.column(ci);
        if (!col.is_foreign_key() || !col.IsValue(t)) continue;
        const int pi = source.schema().TableIndex(col.ref_table());
        if (remap[static_cast<size_t>(pi)]
                 [static_cast<size_t>(col.GetInt(t))] == kInvalidTuple) {
          return;
        }
      }
      candidates.push_back(t);
    });
    aux.Shuffle(&candidates);
    if (static_cast<int64_t>(candidates.size()) > want) {
      candidates.resize(static_cast<size_t>(want));
    }
    // The destination table is empty here and blocks splice in shard
    // order, so candidate i materializes with id i: the remap is known
    // before any row is built, which is what lets the rows build in
    // parallel.
    for (size_t i = 0; i < candidates.size(); ++i) {
      rm[static_cast<size_t>(candidates[i])] = static_cast<TupleId>(i);
    }
    auto build_from = [&](TupleId tmpl, std::vector<Value>* row_out) {
      std::vector<Value> row = src.GetRow(tmpl);
      for (int ci = 0; ci < src.num_columns(); ++ci) {
        const Column& col = src.column(ci);
        if (!col.is_foreign_key() ||
            row[static_cast<size_t>(ci)].is_null()) {
          continue;
        }
        const int pi = source.schema().TableIndex(col.ref_table());
        row[static_cast<size_t>(ci)] = Value(static_cast<int64_t>(
            remap[static_cast<size_t>(pi)][static_cast<size_t>(
                row[static_cast<size_t>(ci)].int64())]));
      }
      *row_out = std::move(row);
    };
    ASPECT_RETURN_NOT_OK(GenerateRowsSharded(
        dst, static_cast<int64_t>(candidates.size()), table_stream,
        pool,
        [&](int64_t i, Rng* /*rng*/, std::vector<Value>* row_out) {
          build_from(candidates[static_cast<size_t>(i)], row_out);
          return Status::OK();
        }));
    // Top up by cloning sampled survivors (scale-up within the sampled
    // world); fall back to random valid FKs if nothing survived. The
    // clones are not recorded in the remap, so the sequential aux
    // stream keeps this short tail deterministic and simple.
    while (dst->NumTuples() < want) {
      if (!candidates.empty()) {
        const TupleId tmpl = candidates[static_cast<size_t>(
            aux.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
        std::vector<Value> row;
        build_from(tmpl, &row);
        // aspect-lint: framework-write -- scaler builds a fresh database
        ASPECT_RETURN_NOT_OK(dst->Append(row).status());
        continue;
      }
      std::vector<Value> row;
      for (int ci = 0; ci < src.num_columns(); ++ci) {
        const Column& col = src.column(ci);
        if (col.is_foreign_key()) {
          const int pi = source.schema().TableIndex(col.ref_table());
          row.push_back(Value(
              aux.UniformInt(0, out->table(pi).NumTuples() - 1)));
        } else {
          row.push_back(col.Get(src.LiveTuples().front()));
        }
      }
      // aspect-lint: framework-write -- scaler builds a fresh database
      ASPECT_RETURN_NOT_OK(dst->Append(row).status());
    }
  }
  return out;
}

}  // namespace aspect
