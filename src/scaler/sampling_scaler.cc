#include "scaler/sampling_scaler.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"
#include "relational/refgraph.h"

namespace aspect {

Result<std::unique_ptr<Database>> SamplingScaler::Scale(
    const Database& source, const std::vector<int64_t>& target_sizes,
    uint64_t seed) const {
  if (static_cast<int>(target_sizes.size()) != source.num_tables()) {
    return Status::Invalid("sampling: wrong number of target sizes");
  }
  ReferenceGraph graph(source.schema());
  if (!graph.IsAcyclic()) {
    return Status::Invalid("sampling requires an acyclic FK graph");
  }
  const int n = source.num_tables();
  std::vector<int> out_degree(static_cast<size_t>(n), 0);
  std::vector<int> order, ready;
  for (int t = 0; t < n; ++t) {
    out_degree[static_cast<size_t>(t)] =
        static_cast<int>(graph.OutEdges(t).size());
    if (out_degree[static_cast<size_t>(t)] == 0) ready.push_back(t);
  }
  while (!ready.empty()) {
    const int t = ready.back();
    ready.pop_back();
    order.push_back(t);
    for (const FkEdge& e : graph.InEdges(t)) {
      if (--out_degree[static_cast<size_t>(e.child_table)] == 0) {
        ready.push_back(e.child_table);
      }
    }
  }

  Rng rng(seed);
  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> out,
                          Database::Create(source.schema()));
  std::vector<std::vector<TupleId>> remap(static_cast<size_t>(n));
  for (const int ti : order) {
    const Table& src = source.table(ti);
    Table* dst = out->FindTable(src.name());
    const int64_t want = target_sizes[static_cast<size_t>(ti)];
    if (want < 1) return Status::Invalid("sampling: target below 1");
    auto& rm = remap[static_cast<size_t>(ti)];
    rm.assign(static_cast<size_t>(src.NumSlots()), kInvalidTuple);

    // Candidates: live tuples whose parents all survived.
    std::vector<TupleId> candidates;
    src.ForEachLive([&](TupleId t) {
      for (int ci = 0; ci < src.num_columns(); ++ci) {
        const Column& col = src.column(ci);
        if (!col.is_foreign_key() || !col.IsValue(t)) continue;
        const int pi = source.schema().TableIndex(col.ref_table());
        if (remap[static_cast<size_t>(pi)]
                 [static_cast<size_t>(col.GetInt(t))] == kInvalidTuple) {
          return;
        }
      }
      candidates.push_back(t);
    });
    rng.Shuffle(&candidates);
    if (static_cast<int64_t>(candidates.size()) > want) {
      candidates.resize(static_cast<size_t>(want));
    }
    auto append_from = [&](TupleId tmpl, bool record) -> Status {
      std::vector<Value> row = src.GetRow(tmpl);
      for (int ci = 0; ci < src.num_columns(); ++ci) {
        const Column& col = src.column(ci);
        if (!col.is_foreign_key() ||
            row[static_cast<size_t>(ci)].is_null()) {
          continue;
        }
        const int pi = source.schema().TableIndex(col.ref_table());
        row[static_cast<size_t>(ci)] = Value(static_cast<int64_t>(
            remap[static_cast<size_t>(pi)][static_cast<size_t>(
                row[static_cast<size_t>(ci)].int64())]));
      }
      ASPECT_ASSIGN_OR_RETURN(const TupleId id, dst->Append(row));
      if (record) rm[static_cast<size_t>(tmpl)] = id;
      return Status::OK();
    };
    for (const TupleId t : candidates) {
      ASPECT_RETURN_NOT_OK(append_from(t, /*record=*/true));
    }
    // Top up by cloning sampled survivors (scale-up within the sampled
    // world); fall back to random valid FKs if nothing survived.
    while (dst->NumTuples() < want) {
      if (!candidates.empty()) {
        const TupleId tmpl = candidates[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
        ASPECT_RETURN_NOT_OK(append_from(tmpl, /*record=*/false));
        continue;
      }
      std::vector<Value> row;
      for (int ci = 0; ci < src.num_columns(); ++ci) {
        const Column& col = src.column(ci);
        if (col.is_foreign_key()) {
          const int pi = source.schema().TableIndex(col.ref_table());
          row.push_back(Value(
              rng.UniformInt(0, out->table(pi).NumTuples() - 1)));
        } else {
          row.push_back(col.Get(src.LiveTuples().front()));
        }
      }
      ASPECT_RETURN_NOT_OK(dst->Append(row).status());
    }
  }
  return out;
}

}  // namespace aspect
