// SamplingScaler: a fourth size-scaler, oriented at scale-DOWN (the
// enterprise use case of the paper's introduction). Parents are
// sampled first; children keep only tuples whose parents survived
// (preserving real joint structure), then each table is trimmed or
// topped up to hit the exact targets.
//
// Like every scaler it only honours the size-scaler contract of
// Sec. III-A - exact sizes, valid FKs - leaving property enforcement
// to the tweaking stage.
#pragma once

#include "scaler/size_scaler.h"

namespace aspect {

class SamplingScaler : public SizeScaler {
 public:
  std::string name() const override { return "Sampling"; }
  Result<std::unique_ptr<Database>> Scale(
      const Database& source, const std::vector<int64_t>& target_sizes,
      uint64_t seed, const GenOptions& gen = {}) const override;
};

}  // namespace aspect
