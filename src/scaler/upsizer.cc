#include "scaler/upsizer.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "relational/refgraph.h"
#include "relational/rowgen.h"

namespace aspect {
namespace {

/// Samples a degree sequence of length `parents` from the empirical
/// multiset `empirical`, then adjusts it so it sums to `children`.
std::vector<int64_t> SampleDegreeSequence(
    const std::vector<int64_t>& empirical, int64_t parents,
    int64_t children, Rng* rng) {
  std::vector<int64_t> seq(static_cast<size_t>(parents), 0);
  for (auto& d : seq) {
    d = empirical[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(empirical.size()) - 1))];
  }
  int64_t total = std::accumulate(seq.begin(), seq.end(), int64_t{0});
  // Stochastic fix-up: spread the residual one unit at a time, biased
  // toward already-loaded parents when adding (rich get richer) and
  // away from empty parents when removing.
  while (total != children) {
    const size_t i =
        static_cast<size_t>(rng->UniformInt(0, parents - 1));
    if (total < children) {
      ++seq[i];
      ++total;
    } else if (seq[i] > 0) {
      --seq[i];
      --total;
    }
  }
  return seq;
}

}  // namespace

Result<std::unique_ptr<Database>> UpSizerScaler::Scale(
    const Database& source, const std::vector<int64_t>& target_sizes,
    uint64_t seed, const GenOptions& gen) const {
  if (static_cast<int>(target_sizes.size()) != source.num_tables()) {
    return Status::Invalid("UpSizeR: wrong number of target sizes");
  }
  ReferenceGraph graph(source.schema());
  if (!graph.IsAcyclic()) {
    return Status::Invalid("UpSizeR requires an acyclic FK graph");
  }
  const int n = source.num_tables();
  std::vector<int> out_degree(static_cast<size_t>(n), 0);
  std::vector<int> order, ready;
  for (int t = 0; t < n; ++t) {
    out_degree[static_cast<size_t>(t)] =
        static_cast<int>(graph.OutEdges(t).size());
    if (out_degree[static_cast<size_t>(t)] == 0) ready.push_back(t);
  }
  while (!ready.empty()) {
    const int t = ready.back();
    ready.pop_back();
    order.push_back(t);
    for (const FkEdge& e : graph.InEdges(t)) {
      if (--out_degree[static_cast<size_t>(e.child_table)] == 0) {
        ready.push_back(e.child_table);
      }
    }
  }

  const Rng root(seed);
  const int pool_threads = ResolveGenThreads(gen.threads);
  ThreadPool* pool =
      pool_threads > 1 ? ThreadPool::Shared(pool_threads) : nullptr;
  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> out,
                          Database::Create(source.schema()));
  for (const int ti : order) {
    const Table& src = source.table(ti);
    Table* dst = out->FindTable(src.name());
    const int64_t want = target_sizes[static_cast<size_t>(ti)];
    if (want < 1) return Status::Invalid("UpSizeR: target below 1");
    const std::vector<TupleId> live = src.LiveTuples();
    if (live.empty()) {
      return Status::Invalid(
          StrFormat("UpSizeR: source table '%s' empty", src.name().c_str()));
    }
    const Rng table_stream = root.Fork(static_cast<uint64_t>(ti));
    // Serial side-channel stream for degree-sequence sampling and the
    // parent_of shuffle — inherently sequential work; row shards fork
    // from table_stream with dense labels that cannot collide with it.
    Rng aux = table_stream.Fork(kAuxStreamLabel);

    // Primary FK: the first FK column. Its degree distribution is
    // preserved by construction.
    int primary = -1;
    for (int c = 0; c < src.num_columns(); ++c) {
      if (src.column(c).is_foreign_key()) {
        primary = c;
        break;
      }
    }

    std::vector<TupleId> parent_of;  // new parent per new child
    if (primary >= 0) {
      const int pi = source.schema().TableIndex(
          src.column(primary).ref_table());
      const Table& src_parent = source.table(pi);
      // Empirical per-parent fan-out, zeros included.
      std::vector<int64_t> fanout(
          static_cast<size_t>(src_parent.NumSlots()), 0);
      int64_t counted_children = 0;
      for (const TupleId t : live) {
        if (src.column(primary).IsValue(t)) {
          ++fanout[static_cast<size_t>(src.column(primary).GetInt(t))];
          ++counted_children;
        }
      }
      std::vector<int64_t> empirical;
      src_parent.ForEachLive([&](TupleId p) {
        empirical.push_back(fanout[static_cast<size_t>(p)]);
      });
      (void)counted_children;
      const int64_t new_parents = out->table(pi).NumTuples();
      const std::vector<int64_t> seq =
          SampleDegreeSequence(empirical, new_parents, want, &aux);
      // Deal children onto parents per the sampled sequence.
      parent_of.reserve(static_cast<size_t>(want));
      for (int64_t p = 0; p < new_parents; ++p) {
        for (int64_t d = 0; d < seq[static_cast<size_t>(p)]; ++d) {
          parent_of.push_back(p);
        }
      }
      aux.Shuffle(&parent_of);
    }

    // Secondary-FK domain sizes — constants by topological order.
    std::vector<int64_t> sec_src(static_cast<size_t>(src.num_columns()), 0);
    std::vector<int64_t> sec_dst(static_cast<size_t>(src.num_columns()), 0);
    for (int c = 0; c < src.num_columns(); ++c) {
      const Column& col = src.column(c);
      if (!col.is_foreign_key() || c == primary) continue;
      const int pi = source.schema().TableIndex(col.ref_table());
      sec_src[static_cast<size_t>(c)] = source.table(pi).NumTuples();
      sec_dst[static_cast<size_t>(c)] = out->table(pi).NumTuples();
    }

    const int64_t n_live = static_cast<int64_t>(live.size());
    ASPECT_RETURN_NOT_OK(GenerateRowsSharded(
        dst, want, table_stream, pool,
        [&](int64_t j, Rng* rng, std::vector<Value>* row_out) {
          // Template child for attributes and secondary FKs.
          const TupleId tmpl =
              live[static_cast<size_t>(rng->UniformInt(0, n_live - 1))];
          std::vector<Value> row = src.GetRow(tmpl);
          for (int c = 0; c < src.num_columns(); ++c) {
            const Column& col = src.column(c);
            if (!col.is_foreign_key() ||
                row[static_cast<size_t>(c)].is_null()) {
              continue;
            }
            if (c == primary) {
              row[static_cast<size_t>(c)] = Value(static_cast<int64_t>(
                  parent_of[static_cast<size_t>(j)]));
              continue;
            }
            // Secondary FK: proportional remap with jitter, preserving
            // the template's joint pattern approximately.
            const int64_t n_src = sec_src[static_cast<size_t>(c)];
            const int64_t n_dst = sec_dst[static_cast<size_t>(c)];
            const double pos =
                static_cast<double>(row[static_cast<size_t>(c)].int64()) +
                rng->UniformDouble();
            int64_t mapped = static_cast<int64_t>(
                pos * static_cast<double>(n_dst) /
                static_cast<double>(n_src));
            mapped = std::clamp<int64_t>(mapped, 0, n_dst - 1);
            row[static_cast<size_t>(c)] = Value(mapped);
          }
          *row_out = std::move(row);
          return Status::OK();
        }));
  }
  return out;
}

}  // namespace aspect
