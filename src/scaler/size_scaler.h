// SizeScaler: stage 1 of ASPECT (Sec. III-A). A size-scaler turns the
// empirical dataset D into a synthetic D~0 with the requested per-table
// tuple counts and no invalid foreign keys; anything beyond that
// contract (correlation, join structure) is technique-specific and is
// what the property-enforcement stage then repairs.
//
// Every scaler generates through the sharded columnar pipeline
// (relational/rowgen.h, DESIGN.md §12): tables are produced in
// parents-first topological order, each table's rows are partitioned
// into fixed-grain shards with private RNG streams, and shards run on
// a thread pool when GenOptions::threads > 1. The output is bitwise
// identical at every thread count.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sharding.h"
#include "relational/database.h"

namespace aspect {

class SizeScaler {
 public:
  virtual ~SizeScaler() = default;

  virtual std::string name() const = 0;

  /// Scales `source` to a new database. `target_sizes` gives the
  /// desired live tuple count per table in schema order. Techniques
  /// that cannot hit arbitrary sizes (ReX scales every table by one
  /// integer factor) produce their nearest achievable sizes instead.
  /// `gen` controls shard parallelism; the result does not depend on
  /// it (callers through a base pointer note that default arguments
  /// bind statically, so every override re-declares the same default).
  virtual Result<std::unique_ptr<Database>> Scale(
      const Database& source, const std::vector<int64_t>& target_sizes,
      uint64_t seed, const GenOptions& gen = {}) const = 0;
};

/// Rand (Sec. VI-B): random tuples subject to (i) expected table sizes
/// and (ii) valid foreign keys. The weakest baseline.
class RandScaler : public SizeScaler {
 public:
  std::string name() const override { return "Rand"; }
  Result<std::unique_ptr<Database>> Scale(
      const Database& source, const std::vector<int64_t>& target_sizes,
      uint64_t seed, const GenOptions& gen = {}) const override;
};

/// ReX [8]: representative extrapolation by a single integer factor s;
/// every source tuple is cloned s times and replica r of a child
/// references replica r of its parent.
class RexScaler : public SizeScaler {
 public:
  std::string name() const override { return "ReX"; }

  /// The integer factor ReX will use for the given targets: the
  /// rounded mean of target/source size ratios, at least 1.
  static int64_t Factor(const Database& source,
                        const std::vector<int64_t>& target_sizes);

  Result<std::unique_ptr<Database>> Scale(
      const Database& source, const std::vector<int64_t>& target_sizes,
      uint64_t seed, const GenOptions& gen = {}) const override;
};

/// Dscaler [37]: non-uniform scaling driven by a per-tuple correlation
/// database. Each synthetic tuple is extrapolated from a source
/// template tuple, and FK values are remapped proportionally into the
/// scaled parent domain (with stratified jitter across replica
/// rounds), preserving joint inter-column correlation and approximate
/// per-parent fan-out.
class DscalerScaler : public SizeScaler {
 public:
  std::string name() const override { return "Dscaler"; }
  Result<std::unique_ptr<Database>> Scale(
      const Database& source, const std::vector<int64_t>& target_sizes,
      uint64_t seed, const GenOptions& gen = {}) const override;
};

/// All three built-in scalers, in the order the paper plots them.
std::vector<std::unique_ptr<SizeScaler>> BuiltinScalers();

}  // namespace aspect
