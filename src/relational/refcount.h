// RefCounter: maintains, for every table, the number of inbound live
// foreign-key references per tuple. Tweaking tools use it to pick
// deletion victims that no tuple references, so referential integrity
// survives every tweak.
#pragma once

#include <vector>

#include "relational/database.h"

namespace aspect {

class RefCounter : public ModificationListener {
 public:
  /// Builds counts from `db` and registers as a listener. The counter
  /// must not outlive the database.
  explicit RefCounter(Database* db);
  ~RefCounter() override;

  RefCounter(const RefCounter&) = delete;
  RefCounter& operator=(const RefCounter&) = delete;

  /// Number of live tuples referencing tuple `t` of table `table`.
  int64_t Count(int table, TupleId t) const;

  /// True if no live tuple references tuple `t` of table `table`.
  bool Unreferenced(int table, TupleId t) const {
    return Count(table, t) == 0;
  }

  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override;

 private:
  void Adjust(int table, int col, const Value& v, int64_t delta);

  Database* db_;
  std::vector<std::vector<int64_t>> counts_;
};

}  // namespace aspect
