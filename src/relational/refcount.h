// RefCounter: maintains, for every table, the number of inbound live
// foreign-key references per tuple. Tweaking tools use it to pick
// deletion victims that no tuple references, so referential integrity
// survives every tweak.
#pragma once

#include <vector>

#include "relational/database.h"

namespace aspect {

class RefCounter : public ModificationListener {
 public:
  /// Builds counts from `db` and registers as a listener. The counter
  /// must not outlive the database.
  explicit RefCounter(Database* db);
  ~RefCounter() override;

  RefCounter(const RefCounter&) = delete;
  RefCounter& operator=(const RefCounter&) = delete;

  /// Number of live tuples referencing tuple `t` of table `table`.
  int64_t Count(int table, TupleId t) const;

  /// True if no live tuple references tuple `t` of table `table`.
  bool Unreferenced(int table, TupleId t) const {
    return Count(table, t) == 0;
  }

  /// Moves the listener registration to `db` without rebuilding the
  /// counts (the pointer-swap Rebase of the owning tool). Valid only
  /// under the PropertyTool::Rebase contract: `db` is content-identical
  /// to the current database, tuple id for tuple id, for every table
  /// whose inbound foreign-key columns lie in the owning tool's access
  /// set. Counts of tables outside that set may go stale across a
  /// parallel group (co-members' notifications are routed away); the
  /// owning tool must only query tables it covers — coappear's
  /// declared scope names every FK column referencing a member table,
  /// so its member-table counts stay exact.
  void Rebase(Database* db);

  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override;

 private:
  void Adjust(int table, int col, const Value& v, int64_t delta);

  Database* db_;
  std::vector<std::vector<int64_t>> counts_;
};

}  // namespace aspect
