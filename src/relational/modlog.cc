#include "relational/modlog.h"

#include <sstream>

#include "common/string_util.h"

namespace aspect {

ModificationLog::ModificationLog(Database* db) : db_(db) {
  db_->AddListener(this);
}

ModificationLog::~ModificationLog() {
  if (db_ != nullptr) db_->RemoveListener(this);
}

void ModificationLog::OnApplied(const Modification& mod,
                                const std::vector<Value>& old_values,
                                TupleId new_tuple) {
  if (!recording_) return;
  Entry e;
  e.mod = mod;
  e.old_values = old_values;
  e.new_tuple = new_tuple;
  entries_.push_back(std::move(e));
}

void ModificationLog::OnAppliedBatch(
    std::span<const Modification> mods,
    std::span<const std::vector<Value>> old_values,
    std::span<const TupleId> new_tuples) {
  if (!recording_) return;
  ++num_batches_;
  entries_.reserve(entries_.size() + mods.size());
  for (size_t i = 0; i < mods.size(); ++i) {
    Entry e;
    e.mod = mods[i];
    e.old_values = old_values[i];
    e.new_tuple = new_tuples[i];
    entries_.push_back(std::move(e));
  }
}

Status ModificationLog::ReplayOnto(Database* target) const {
  for (const Entry& e : entries_) {
    TupleId new_tuple = kInvalidTuple;
    ASPECT_RETURN_NOT_OK(target->Apply(e.mod, &new_tuple));
    if (e.mod.kind == OpKind::kInsertTuple && new_tuple != e.new_tuple) {
      return Status::Internal(StrFormat(
          "replay divergence: insert produced id %lld, log has %lld",
          static_cast<long long>(new_tuple),
          static_cast<long long>(e.new_tuple)));
    }
  }
  return Status::OK();
}

Status ModificationLog::UndoOnto(Database* target) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    ASPECT_RETURN_NOT_OK(target->Undo(it->mod, it->old_values,
                                      it->new_tuple));
  }
  return Status::OK();
}

std::map<std::string, ModificationLog::TableSummary>
ModificationLog::Summarize() const {
  std::map<std::string, TableSummary> out;
  for (const Entry& e : entries_) {
    TableSummary& s = out[e.mod.table];
    switch (e.mod.kind) {
      case OpKind::kDeleteValues:
      case OpKind::kInsertValues:
      case OpKind::kReplaceValues:
        s.cells_written += static_cast<int64_t>(e.mod.tuples.size()) *
                           static_cast<int64_t>(e.mod.cols.size());
        break;
      case OpKind::kInsertTuple:
        ++s.rows_inserted;
        break;
      case OpKind::kDeleteTuple:
        ++s.rows_deleted;
        break;
    }
  }
  return out;
}

std::string ModificationLog::ToString() const {
  std::ostringstream os;
  os << entries_.size() << " modifications\n";
  for (const auto& [table, s] : Summarize()) {
    os << StrFormat("  %-24s cells %-8lld +rows %-6lld -rows %lld\n",
                    table.c_str(), static_cast<long long>(s.cells_written),
                    static_cast<long long>(s.rows_inserted),
                    static_cast<long long>(s.rows_deleted));
  }
  return os.str();
}

}  // namespace aspect
