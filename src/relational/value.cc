#include "relational/value.h"

#include <cstdio>

namespace aspect {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
    case ColumnType::kForeignKey:
      return "fk";
  }
  return "?";
}

std::string Value::ToString() const {
  if (is_null()) return "";
  if (is_int64()) return std::to_string(int64());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", dbl());
    return buf;
  }
  return str();
}

}  // namespace aspect
